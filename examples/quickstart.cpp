// Quickstart: the paper's flow end-to-end on a five-minute example.
//
// Circuit: a two-stage RC pulse-shaping network whose resistors have
// random mismatch. Measurement: the 50%-crossing delay of the output.
// We run
//   1. the pseudo-noise mismatch analysis (PSS + LPTV noise at 1 Hz), and
//   2. a small Monte-Carlo as ground truth,
// and print sigma(delay) from both along with the per-source breakdown —
// the same flow the benchmark circuits use, minus the transistors.
#include <cstdio>

#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "core/mismatch_analysis.hpp"
#include "core/monte_carlo.hpp"
#include "engine/transient.hpp"
#include "meas/measure.hpp"
#include "util/units.hpp"

using namespace psmn;

int main() {
  // ---- build the circuit ------------------------------------------------
  const Real period = 1e-6;
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId mid = nl.node("mid");
  const NodeId out = nl.node("out");
  nl.add<VSource>("VIN", in, kGround,
                  SourceWave::pulse(0.0, 1.0, 0.1e-6, 10e-9, 10e-9, 0.4e-6,
                                    period),
                  nl);
  nl.add<Resistor>("R1", in, mid, 10e3, nl, /*sigma=*/200.0);
  nl.add<Capacitor>("C1", mid, kGround, 4e-12, nl);
  nl.add<Resistor>("R2", mid, out, 10e3, nl, /*sigma=*/200.0);
  nl.add<Capacitor>("C2", out, kGround, 4e-12, nl);
  MnaSystem sys(nl);
  const int outIdx = nl.nodeIndex(out);
  const int inIdx = nl.nodeIndex(in);

  // ---- pseudo-noise mismatch analysis (the paper's method) --------------
  MismatchAnalysisOptions opt;
  opt.pss.stepsPerPeriod = 500;
  TransientMismatchAnalysis analysis(sys, opt);
  analysis.runDriven(period);

  const VariationResult delayVar = analysis.delayVariation(outIdx);
  std::printf("pseudo-noise analysis (PSS %d shooting iters):\n",
              analysis.pss().shootingIterations);
  std::printf("  sigma(delay) = %ss  [paper-eq.8 convention: %ss]\n",
              formatEng(delayVar.sigma()).c_str(),
              formatEng(std::sqrt(delayVar.paperVariance)).c_str());
  std::printf("  breakdown:\n");
  for (size_t i = 0; i < delayVar.sourceNames.size(); ++i) {
    std::printf("    %-8s %+ss\n", delayVar.sourceNames[i].c_str(),
                formatEng(delayVar.scaledSens[i]).c_str());
  }

  // ---- Monte-Carlo ground truth -----------------------------------------
  auto measureDelayOnce = [&](const MnaSystem& s) -> RealVector {
    TranOptions topt;
    topt.method = IntegrationMethod::kBackwardEuler;
    const TransientResult tr =
        runTransient(s, 0.0, period, period / 500.0, topt);
    const Waveform win = makeWaveform(tr.times, tr.states, inIdx);
    const Waveform wout = makeWaveform(tr.times, tr.states, outIdx);
    return {measureDelay(win, wout, 0.5, +1, +1)};
  };

  McOptions mopt;
  mopt.samples = 300;
  MonteCarloEngine mc(sys, mopt);
  const McResult mcr = mc.run({"delay"}, measureDelayOnce);
  std::printf("monte-carlo (%zu samples, %.2fs):\n", mopt.samples,
              mcr.elapsedSeconds);
  std::printf("  sigma(delay) = %ss  (95%% conf +-%.1f%%)\n",
              formatEng(mcr.sigma()).c_str(),
              100.0 * sigmaConfidence95(mopt.samples));

  const Real ratio = delayVar.sigma() / mcr.sigma();
  std::printf("agreement: pseudo-noise / MC sigma ratio = %.3f\n", ratio);
  return (ratio > 0.8 && ratio < 1.25) ? 0 : 1;
}
