// Example: frequency variation of a 5-stage ring oscillator (paper
// SS IV-C, V-C), with the discrete-adjoint PPV cross-check.
#include <cmath>
#include <cstdio>

#include "circuit/stdcell.hpp"
#include "core/mismatch_analysis.hpp"
#include "rf/ppv.hpp"
#include "util/units.hpp"

using namespace psmn;

int main() {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  const RingOscillatorCircuit osc = buildRingOscillator(nl, kit);
  MnaSystem sys(nl);

  // Kick the ring, free-run to the limit cycle, estimate the period.
  const RingWarmup warm = warmupRingOscillator(sys, osc);
  std::printf("transient period estimate: %ss\n",
              formatEng(warm.periodEstimate).c_str());

  MismatchAnalysisOptions opt;
  opt.pss.stepsPerPeriod = 400;
  TransientMismatchAnalysis analysis(sys, opt);
  analysis.runAutonomous(warm.periodEstimate, warm.phaseIndex, warm.state);
  const Real f0 = 1.0 / analysis.pss().period;
  std::printf("PSS period: %ss (f0 = %sHz), %d shooting iterations\n",
              formatEng(analysis.pss().period).c_str(),
              formatEng(f0).c_str(), analysis.pss().shootingIterations);

  const VariationResult fv = analysis.frequencyVariation(warm.phaseIndex);
  std::printf("\nsigma(f) = %sHz  (%.3f%% of f0)   [eq. 9 convention: %sHz]\n",
              formatEng(fv.sigma()).c_str(), 100.0 * fv.sigma() / f0,
              formatEng(std::sqrt(fv.paperVariance)).c_str());

  // Independent cross-check: discrete-adjoint PPV period sensitivities.
  const PpvResult ppv = computePpv(sys, analysis.pss());
  const auto sources = sys.collectSources(true, false);
  Real var = 0.0;
  for (size_t i = 0; i < sources.size(); ++i) {
    const Real s =
        ppv.frequencySensitivity(sys, analysis.pss(), sources[i]) *
        sources[i].sigma;
    var += s * s;
  }
  std::printf("PPV cross-check: sigma(f) = %sHz\n",
              formatEng(std::sqrt(var)).c_str());

  std::printf("\ntop contributors:\n");
  for (size_t i = 0; i < fv.sourceNames.size(); ++i) {
    if (std::fabs(fv.scaledSens[i]) < 0.15 * fv.sigma()) continue;
    std::printf("  %-10s %+sHz\n", fv.sourceNames[i].c_str(),
                formatEng(fv.scaledSens[i], 3).c_str());
  }
  return 0;
}
