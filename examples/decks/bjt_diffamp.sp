bjt differential amplifier with degeneration and mirror mismatch
* Degenerated npn pair over a mirrored tail sink, loaded by a pnp current
* mirror; single-ended output taken at the mirror side into RL. The model
* cards carry the paper's per-device mismatch annotations (ais on the
* saturation current, abf on beta), and the degeneration resistors add
* sigma= spreads, so the deck is ready for the seeded sweep:
*
*   netlist_runner examples/decks/bjt_diffamp.sp --sweep mc:64 --jobs 0 --probe out
*
* Nominal run (operating point + 10 mV step response):
*
*   netlist_runner examples/decks/bjt_diffamp.sp
*
.model nqx npn is=5f bf=200 br=4 vaf=100 cje=1p cjc=0.5p tf=0.3n ais=0.02 abf=0.01
.model pqx pnp is=2f bf=50 br=2 vaf=50 cje=1.5p cjc=1p tf=1n ais=0.02 abf=0.01

VCC vcc 0 5
VEE vee 0 -5
VINP inp 0 PULSE(0 0.01 100n 10n 10n 0.5u 1u)
VINN inn 0 0

* Bias: RB sets ~1.1 mA in the diode reference; the area=2 tail sink
* mirrors it up to ~2.2 mA.
RB vcc nb 8.2k
QB nb nb vee nqx
QT tail nb vee nqx area=2

* Degenerated input pair.
Q1 l1 inp e1 nqx
Q2 out inn e2 nqx
RE1 e1 tail 100 sigma=0.5
RE2 e2 tail 100 sigma=0.5

* Degenerated pnp mirror load; the diode side is l1, the output side
* drives RL directly.
Q3 l1 l1 m1 pqx
Q4 out l1 m2 pqx
RM1 m1 vcc 100 sigma=0.5
RM2 m2 vcc 100 sigma=0.5

RL out 0 10k
CL out 0 2p

.op
.tran 2n 1u
.end
