push-pull class-ab bjt output stage with complementary power models
* Diode-biased push-pull follower: the class-AB string (QA1/QA2) rides
* around the input node, so the npn and pnp followers each idle one
* junction drop away from the output and hand over smoothly through the
* crossover. The power output devices use their own model cards (lower
* beta, higher IS than the small-signal pair in bjt_diffamp.sp) plus
* area=2 scaling — together the two decks form the example model-card
* corpus for the Ebers-Moll device.
*
*   netlist_runner examples/decks/bjt_outputstage.sp
*   netlist_runner examples/decks/bjt_outputstage.sp --sweep mc:64 --jobs 0 --probe out
*
.model nsd npn is=5f bf=200 br=4 vaf=100 cje=1p cjc=0.5p tf=0.3n ais=0.02 abf=0.01
.model npow npn is=10f bf=80 br=3 vaf=60 cje=4p cjc=2p tf=1n ais=0.03 abf=0.015
.model ppow pnp is=5f bf=40 br=2 vaf=40 cje=6p cjc=4p tf=2.5n ais=0.03 abf=0.015

VCC vcc 0 5
VEE vee 0 -5
VIN in 0 PULSE(0 1 100n 20n 20n 0.4u 1u)

* Bias legs set ~1 mA through the class-AB string; the string straddles
* the input so abt/abb track in +/- one V_BE.
RB1 vcc abt 4.3k
QA1 abt abt in nsd
QA2 in in abb nsd
RB2 abb vee 4.3k

* Complementary followers with current-sense resistors into the load.
QO1 vcc abt so1 npow area=2
QO2 vee abb so2 ppow area=2
RS1 so1 out 27
RS2 so2 out 27

RL out 0 1k
CL out 0 10p

.op
.tran 2n 1u
.end
