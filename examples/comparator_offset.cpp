// Example: input-offset variation of a StrongARM clocked comparator
// (paper SS IV-A, Fig. 6, Fig. 10).
//
// Builds the offset-nulling feedback testbench, runs the pseudo-noise
// mismatch analysis, and prints sigma(VOS) with the per-transistor
// breakdown and the eq. 14-16 sizing guidance.
#include <cstdio>

#include "circuit/stdcell.hpp"
#include "core/design_sensitivity.hpp"
#include "core/mismatch_analysis.hpp"
#include "core/pseudo_noise.hpp"
#include "util/units.hpp"

using namespace psmn;

int main() {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  const ComparatorTestbench tb = buildComparatorTestbench(nl, kit);
  MnaSystem sys(nl);

  std::printf("%s\n", formatPseudoNoiseReport(sys).c_str());

  MismatchAnalysisOptions opt;
  opt.pss.stepsPerPeriod = 400;
  opt.pss.warmupCycles = 40;
  TransientMismatchAnalysis analysis(sys, opt);
  analysis.runDriven(tb.clkPeriod);
  std::printf("PSS: metastable orbit found in %d shooting iteration(s)\n",
              analysis.pss().shootingIterations);

  const VariationResult v = analysis.dcVariation(tb.vosIndex);
  std::printf("sigma(input offset) = %sV\n\n", formatEng(v.sigma()).c_str());

  std::printf("per-source contributions (S_i * sigma_i):\n");
  for (size_t i = 0; i < v.sourceNames.size(); ++i) {
    if (std::fabs(v.scaledSens[i]) < 0.02 * v.sigma()) continue;
    std::printf("  %-10s %+sV\n", v.sourceNames[i].c_str(),
                formatEng(v.scaledSens[i], 3).c_str());
  }

  std::printf("\nwidth sensitivities (eq. 16) — where to spend area:\n");
  for (const auto& ws : widthSensitivities(nl, v)) {
    if (ws.relativeImpact < 0.01) continue;
    std::printf("  %-5s W=%sum  impact %.1f%%  dVar/dW=%s\n",
                ws.device.c_str(), formatEng(1e6 * ws.width, 3).c_str(),
                100.0 * ws.relativeImpact,
                formatEng(ws.dVarianceDWidth, 3).c_str());
  }
  return 0;
}
