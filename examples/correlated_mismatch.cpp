// Example: correlated mismatch (paper SS III-C, eq. 6).
//
// The two resistors of a divider share a spatial gradient: their
// mismatches are correlated with coefficient rho. The correlated model is
// declared once and drives both the pseudo-noise analysis (through
// composite sources built from the Cholesky factor A, C = A A^T) and the
// Monte-Carlo engine — demonstrating the paper's warning that ignoring
// correlations misestimates variation.
#include <cmath>
#include <cstdio>

#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "core/correlated_mismatch.hpp"
#include "core/monte_carlo.hpp"
#include "engine/dc.hpp"
#include "engine/sensitivity.hpp"
#include "util/units.hpp"

using namespace psmn;

int main() {
  Netlist nl;
  const NodeId top = nl.node("top");
  const NodeId mid = nl.node("mid");
  nl.add<VSource>("V1", top, kGround, SourceWave::dc(2.0), nl);
  auto& r1 = nl.add<Resistor>("R1", top, mid, 1e3, nl, /*sigma=*/10.0);
  auto& r2 = nl.add<Resistor>("R2", mid, kGround, 1e3, nl, /*sigma=*/10.0);
  MnaSystem sys(nl);
  const int outIdx = nl.nodeIndex(mid);

  std::printf("divider v(mid): dV/dR1 = -dV/dR2, so correlated R mismatch "
              "cancels.\n\n%-8s %-22s %-22s\n", "rho",
              "sigma(vmid) pseudo-noise", "sigma(vmid) Monte-Carlo");

  for (const Real rho : {0.0, 0.5, 0.9, 1.0}) {
    CorrelatedMismatch corr;
    corr.addUniformCorrelationGroup({{&r1, 0}, {&r2, 0}}, rho);

    // Pseudo-noise path: composite sources, DC-match flavour.
    const auto sources =
        corr.transformSources(sys.collectSources(true, false));
    const DcResult dc = solveDc(sys);
    const RealVector sens = solveDcSensitivity(sys, dc.x, outIdx, sources);
    Real var = 0.0;
    for (size_t i = 0; i < sources.size(); ++i) {
      var += sens[i] * sens[i] * sources[i].sigma * sources[i].sigma;
    }

    // Monte-Carlo path with the same correlation model.
    McOptions mo;
    mo.samples = 2000;
    MonteCarloEngine mc(sys, mo);
    mc.setCorrelatedMismatch(&corr);
    const McResult r = mc.run({"v"}, [&](const MnaSystem& s) {
      return RealVector{solveDc(s).x[outIdx]};
    });

    std::printf("%-8.2f %-22s %-22s\n", rho,
                (formatEng(std::sqrt(var), 3) + "V").c_str(),
                (formatEng(r.sigma(), 3) + "V").c_str());
  }
  std::printf("\nAssuming independence when the process is correlated "
              "over-estimates this\nvariation — the paper's SS III-C point "
              "about misleading estimates.\n");
  return 0;
}
