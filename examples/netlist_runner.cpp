// Example: SPICE-deck front end. Parses a netlist (from a file argument or
// a built-in demo deck), runs the analysis cards it contains, and for
// circuits with mismatch annotations runs the pseudo-noise analysis when a
// .pss/.pnoise pair is present.
//
// Demonstrated cards: .op, .tran, .pss <period>, .pnoise <out-node>.
//
// Sweep mode fans the deck's .tran card across N mismatch scenarios on the
// parallel runtime (each scenario re-parses the deck into a private
// netlist, applies its seeded mismatch draw, and runs on its own slot):
//
//   netlist_runner deck.sp --sweep mc:64 --jobs 8 [--seed 1] [--probe out]
//
// Results are reported in scenario order and are bit-identical for every
// --jobs value (per-scenario RNG streams are derived from the scenario
// index, never from thread timing).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "circuit/parser.hpp"
#include "core/mismatch_analysis.hpp"
#include "core/monte_carlo.hpp"
#include "engine/dc.hpp"
#include "engine/transient.hpp"
#include "meas/measure.hpp"
#include "numeric/statistics.hpp"
#include "runtime/scenario_sweep.hpp"
#include "util/units.hpp"

using namespace psmn;

namespace {

const char* kDemoDeck = R"(pulse-shaping network with resistor mismatch
VIN in 0 PULSE(0 1 0.1u 10n 10n 0.4u 1u)
R1 in mid 10k sigma=200
C1 mid 0 4p
R2 mid out 10k sigma=200
C2 out 0 4p
.op
.tran 2n 1u
.pss 1u
.pnoise out
.end
)";

struct RunnerArgs {
  std::string deckPath;
  size_t jobs = 1;        // --jobs N (0 = hardware)
  size_t sweepSamples = 0;  // --sweep mc:N (0 = no sweep)
  uint64_t seed = 1;      // --seed S
  std::string probe;      // --probe <node>; default from the .pnoise card
};

bool parseArgs(int argc, char** argv, RunnerArgs& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (a == "--jobs") {
      args.jobs = std::strtoul(value("--jobs"), nullptr, 10);
    } else if (a == "--seed") {
      args.seed = std::strtoull(value("--seed"), nullptr, 10);
    } else if (a == "--probe") {
      args.probe = value("--probe");
    } else if (a == "--sweep") {
      const std::string spec = value("--sweep");
      if (spec.rfind("mc:", 0) != 0) {
        std::fprintf(stderr, "--sweep expects mc:<N>, got '%s'\n",
                     spec.c_str());
        return false;
      }
      args.sweepSamples = std::strtoul(spec.c_str() + 3, nullptr, 10);
      if (args.sweepSamples == 0) {
        std::fprintf(stderr, "--sweep mc:<N> needs N >= 1\n");
        return false;
      }
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", a.c_str());
      return false;
    } else {
      args.deckPath = a;
    }
  }
  return true;
}

int runSweep(const std::string& deckText, const ParsedCircuit& pc,
             const RunnerArgs& args) {
  // The main-thread parse (`pc`) supplies the analysis cards and defaults;
  // the scenarios re-parse the text into private netlists on their slots.
  Real dt = 0.0, tstop = 0.0;
  std::string probe = args.probe;
  for (const auto& card : pc.analyses) {
    if (card.kind == "tran" && card.args.size() >= 2) {
      const auto dtv = parseSpiceNumber(card.args[0]);
      const auto stopv = parseSpiceNumber(card.args[1]);
      if (!dtv || !stopv) {
        std::fprintf(stderr, "bad .tran card: '%s %s'\n",
                     card.args[0].c_str(), card.args[1].c_str());
        return 1;
      }
      dt = *dtv;
      tstop = *stopv;
    } else if (card.kind == "pnoise" && !card.args.empty() && probe.empty()) {
      probe = card.args[0];
    }
  }
  if (dt <= 0.0 || tstop <= 0.0) {
    std::fprintf(stderr, "--sweep needs a .tran card in the deck\n");
    return 1;
  }
  if (probe.empty()) {
    std::fprintf(stderr,
                 "--sweep needs --probe <node> (or a .pnoise card)\n");
    return 1;
  }
  if (!pc.netlist->findNode(probe)) {
    std::fprintf(stderr, "probe node '%s' is not in the deck\n",
                 probe.c_str());
    return 1;
  }

  // One shared copy of the deck source: each scenario re-parses it into a
  // private netlist and applies its sample draw — applyMismatchSample is
  // the MC engine's own stream, so scenario k reproduces MC sample k.
  const auto deck = std::make_shared<const std::string>(deckText);
  std::vector<SweepScenario> scenarios;
  for (size_t k = 0; k < args.sweepSamples; ++k) {
    SweepScenario sc;
    sc.name = "mc" + std::to_string(k);
    sc.make = [deck, seed = args.seed, k] {
      ParsedCircuit spc = parseNetlistString(*deck);
      spc.netlist->finalize();
      applyMismatchSample(spc.netlist->mismatchParams(), nullptr, seed, k);
      return std::move(spc.netlist);
    };
    sc.analysis = SweepAnalysis::kTransient;
    sc.outNode = probe;
    sc.t1 = tstop;
    sc.dt = dt;
    sc.tran.storeStates = false;
    scenarios.push_back(std::move(sc));
  }

  ThreadPool pool(args.jobs);
  std::printf("sweep: %zu mismatch scenarios of .tran %s %s on %zu job(s), "
              "probe v(%s), seed %llu\n",
              scenarios.size(), formatEng(dt).c_str(),
              formatEng(tstop).c_str(), pool.jobCount(), probe.c_str(),
              static_cast<unsigned long long>(args.seed));
  const auto results = runScenarioSweep(scenarios, pool);

  MomentAccumulator acc;
  size_t failures = 0;
  const int probeIdx = pc.netlist->nodeIndex(probe);
  for (const auto& r : results) {
    if (!r.ok) {
      ++failures;
      std::printf("  %-8s FAILED: %s\n", r.name.c_str(), r.error.c_str());
      continue;
    }
    const Real v = r.finalState.at(probeIdx);
    acc.add(v);
    std::printf("  %-8s v(%s) = %s\n", r.name.c_str(), probe.c_str(),
                formatEng(v).c_str());
  }
  if (acc.count() > 0) {
    std::printf("summary: mean = %sV, sigma = %sV over %zu scenarios "
                "(%zu failed)\n",
                formatEng(acc.mean()).c_str(), formatEng(acc.stddev()).c_str(),
                static_cast<size_t>(acc.count()), failures);
  }
  return failures == results.size() ? 1 : 0;
}

int runCards(const ParsedCircuit& pc, const RunnerArgs& args) {
  Netlist& nl = *pc.netlist;
  MnaSystem sys(nl);
  std::printf("%zu devices, %zu unknowns, %zu mismatch parameters\n\n",
              nl.devices().size(), sys.size(), nl.mismatchParams().size());

  // --jobs also accelerates the card path: the .pnoise flow fans the PSS
  // monodromy columns and the LPTV B_k/V_k recursions across this pool
  // (results are bit-identical for every jobs count).
  std::unique_ptr<ThreadPool> pool;
  if (args.jobs != 1) pool = std::make_unique<ThreadPool>(args.jobs);

  Real pssPeriod = 0.0;
  for (const auto& card : pc.analyses) {
    if (card.kind == "op") {
      const DcResult dc = solveDc(sys);
      std::printf(".op (%d Newton iterations):\n", dc.iterations);
      for (size_t i = 0; i < sys.size(); ++i) {
        std::printf("  %-12s = %s\n", nl.unknownName(i).c_str(),
                    formatEng(dc.x[i]).c_str());
      }
    } else if (card.kind == "tran" && card.args.size() >= 2) {
      const Real dt = *parseSpiceNumber(card.args[0]);
      const Real tstop = *parseSpiceNumber(card.args[1]);
      const TransientResult tr = runTransient(sys, 0.0, tstop, dt, {});
      std::printf(".tran %s %s: %zu steps, final state:\n",
                  card.args[0].c_str(), card.args[1].c_str(), tr.steps);
      for (size_t i = 0; i < sys.size(); ++i) {
        std::printf("  %-12s = %s\n", nl.unknownName(i).c_str(),
                    formatEng(tr.finalState[i]).c_str());
      }
    } else if (card.kind == "pss" && !card.args.empty()) {
      pssPeriod = *parseSpiceNumber(card.args[0]);
      std::printf(".pss period=%ss (deferred until .pnoise)\n",
                  formatEng(pssPeriod).c_str());
    } else if (card.kind == "pnoise" && !card.args.empty()) {
      if (pssPeriod <= 0.0) {
        std::printf(".pnoise ignored: no preceding .pss card\n");
        continue;
      }
      const int outIdx = nl.nodeIndex(card.args[0]);
      MismatchAnalysisOptions opt;
      opt.pss.stepsPerPeriod = 500;
      opt.pss.pool = pool.get();
      opt.pnoise.pool = pool.get();
      TransientMismatchAnalysis an(sys, opt);
      an.runDriven(pssPeriod);
      const VariationResult dc = an.dcVariation(outIdx);
      std::printf(".pnoise at v(%s): baseband sigma = %sV; breakdown:\n",
                  card.args[0].c_str(), formatEng(dc.sigma()).c_str());
      for (size_t i = 0; i < dc.sourceNames.size(); ++i) {
        std::printf("  %-10s %+sV\n", dc.sourceNames[i].c_str(),
                    formatEng(dc.scaledSens[i], 3).c_str());
      }
    } else {
      std::printf(".%s: unsupported card skipped\n", card.kind.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  RunnerArgs args;
  if (!parseArgs(argc, argv, args)) return 1;

  std::string deckText;
  if (!args.deckPath.empty()) {
    std::ifstream in(args.deckPath);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", args.deckPath.c_str());
      return 1;
    }
    std::ostringstream os;
    os << in.rdbuf();
    deckText = os.str();
  } else {
    deckText = kDemoDeck;
    std::printf("(no deck given; running the built-in demo)\n");
  }

  // Solver failures carry a structured post-mortem (FailureDiagnostics):
  // print it and exit nonzero instead of dying on an unhandled exception,
  // so scripted flows get a parseable one-line cause.
  try {
    ParsedCircuit pc = parseNetlistString(deckText);
    std::printf("title: %s\n", pc.title.c_str());
    if (args.sweepSamples > 0) return runSweep(deckText, pc, args);
    return runCards(pc, args);
  } catch (const Error& err) {
    std::fprintf(stderr, "error: %s\n", err.what());
    if (const FailureDiagnostics* d = err.diagnostics()) {
      std::fprintf(stderr, "diagnostics: %s\n", d->describe().c_str());
    }
    return 1;
  } catch (const std::exception& err) {
    std::fprintf(stderr, "error: %s\n", err.what());
    return 1;
  }
}
