// Example: SPICE-deck front end. Parses a netlist (from a file argument or
// a built-in demo deck), runs the analysis cards it contains, and for
// circuits with mismatch annotations runs the pseudo-noise analysis when a
// .pss/.pnoise pair is present.
//
// Demonstrated cards: .op, .tran, .pss <period>, .pnoise <out-node>.
#include <cstdio>
#include <fstream>

#include "circuit/parser.hpp"
#include "core/mismatch_analysis.hpp"
#include "engine/dc.hpp"
#include "engine/transient.hpp"
#include "meas/measure.hpp"
#include "util/units.hpp"

using namespace psmn;

namespace {

const char* kDemoDeck = R"(pulse-shaping network with resistor mismatch
VIN in 0 PULSE(0 1 0.1u 10n 10n 0.4u 1u)
R1 in mid 10k sigma=200
C1 mid 0 4p
R2 mid out 10k sigma=200
C2 out 0 4p
.op
.tran 2n 1u
.pss 1u
.pnoise out
.end
)";

}  // namespace

int main(int argc, char** argv) {
  ParsedCircuit pc;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", argv[1]);
      return 1;
    }
    pc = parseNetlist(in);
  } else {
    pc = parseNetlistString(kDemoDeck);
    std::printf("(no deck given; running the built-in demo)\n");
  }
  std::printf("title: %s\n", pc.title.c_str());
  Netlist& nl = *pc.netlist;
  MnaSystem sys(nl);
  std::printf("%zu devices, %zu unknowns, %zu mismatch parameters\n\n",
              nl.devices().size(), sys.size(), nl.mismatchParams().size());

  Real pssPeriod = 0.0;
  for (const auto& card : pc.analyses) {
    if (card.kind == "op") {
      const DcResult dc = solveDc(sys);
      std::printf(".op (%d Newton iterations):\n", dc.iterations);
      for (size_t i = 0; i < sys.size(); ++i) {
        std::printf("  %-12s = %s\n", nl.unknownName(i).c_str(),
                    formatEng(dc.x[i]).c_str());
      }
    } else if (card.kind == "tran" && card.args.size() >= 2) {
      const Real dt = *parseSpiceNumber(card.args[0]);
      const Real tstop = *parseSpiceNumber(card.args[1]);
      const TransientResult tr = runTransient(sys, 0.0, tstop, dt, {});
      std::printf(".tran %s %s: %zu steps, final state:\n",
                  card.args[0].c_str(), card.args[1].c_str(), tr.steps);
      for (size_t i = 0; i < sys.size(); ++i) {
        std::printf("  %-12s = %s\n", nl.unknownName(i).c_str(),
                    formatEng(tr.finalState[i]).c_str());
      }
    } else if (card.kind == "pss" && !card.args.empty()) {
      pssPeriod = *parseSpiceNumber(card.args[0]);
      std::printf(".pss period=%ss (deferred until .pnoise)\n",
                  formatEng(pssPeriod).c_str());
    } else if (card.kind == "pnoise" && !card.args.empty()) {
      if (pssPeriod <= 0.0) {
        std::printf(".pnoise ignored: no preceding .pss card\n");
        continue;
      }
      const int outIdx = nl.nodeIndex(card.args[0]);
      MismatchAnalysisOptions opt;
      opt.pss.stepsPerPeriod = 500;
      TransientMismatchAnalysis an(sys, opt);
      an.runDriven(pssPeriod);
      const VariationResult dc = an.dcVariation(outIdx);
      std::printf(".pnoise at v(%s): baseband sigma = %sV; breakdown:\n",
                  card.args[0].c_str(), formatEng(dc.sigma()).c_str());
      for (size_t i = 0; i < dc.sourceNames.size(); ++i) {
        std::printf("  %-10s %+sV\n", dc.sourceNames[i].c_str(),
                    formatEng(dc.scaledSens[i], 3).c_str());
      }
    } else {
      std::printf(".%s: unsupported card skipped\n", card.kind.c_str());
    }
  }
  return 0;
}
