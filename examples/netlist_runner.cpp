// Example: SPICE-deck front end. Parses a netlist (from a file argument or
// a built-in demo deck), runs the analysis cards it contains, and for
// circuits with mismatch annotations runs the pseudo-noise analysis when a
// .pss/.pnoise pair is present.
//
// Demonstrated cards: .op, .tran, .pss <period>, .pnoise <out-node>.
//
// Sweep mode fans the deck's .tran card across N mismatch scenarios on the
// parallel runtime (each scenario re-parses the deck into a private
// netlist, applies its seeded mismatch draw, and runs on its own slot):
//
//   netlist_runner deck.sp --sweep mc:64 --jobs 8 [--seed 1] [--probe out]
//                  [--batch]
//
// --batch switches the in-process sweep to scenario-batched evaluation
// (engine/batch_eval.hpp): scenarios are tiled into lanes that share one
// netlist walk per Newton iteration. Results stay bit-identical to the
// scalar sweep; the scalar path remains the default and the oracle.
//
// Results are reported in scenario order and are bit-identical for every
// --jobs value (per-scenario RNG streams are derived from the scenario
// index, never from thread timing).
//
// Multi-process mode (docs/user_guide.md "Multi-process sweeps"):
//
//   netlist_runner deck.sp --sweep mc:64 --procs 4 --jobs 2
//
// shards the sweep across 4 worker processes — re-entries of this binary
// with --worker — each running 2 pool jobs; worker crashes cost bounded
// per-scenario retries, and results (values, stats, counters) stay
// byte-identical to the in-process run for every jobs x procs topology.
//
// Observability flags (docs/user_guide.md "Run reports"):
//   --metrics out.json          machine-readable run report (counters,
//                               phase timers, per-card/per-scenario stats)
//   --trace out.json            Chrome trace-event file (chrome://tracing
//                               or Perfetto)
//   --trace-detail phase|step|kernel   span granularity (default phase)
//   --progress                  one line per scenario as it completes
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "circuit/parser.hpp"
#include "core/mismatch_analysis.hpp"
#include "core/monte_carlo.hpp"
#include "engine/dc.hpp"
#include "engine/transient.hpp"
#include "meas/measure.hpp"
#include "numeric/statistics.hpp"
#include "runtime/process_sweep.hpp"
#include "runtime/scenario_sweep.hpp"
#include "util/trace_export.hpp"
#include "util/units.hpp"

using namespace psmn;

namespace {

const char* kDemoDeck = R"(pulse-shaping network with resistor mismatch
VIN in 0 PULSE(0 1 0.1u 10n 10n 0.4u 1u)
R1 in mid 10k sigma=200
C1 mid 0 4p
R2 mid out 10k sigma=200
C2 out 0 4p
.op
.tran 2n 1u
.pss 1u
.pnoise out
.end
)";

struct RunnerArgs {
  std::string deckPath;
  size_t jobs = 1;        // --jobs N (0 = hardware)
  size_t procs = 1;       // --procs N (>1: multi-process sweep)
  bool worker = false;    // --worker: process-sweep worker re-entry
  size_t sweepSamples = 0;  // --sweep mc:N (0 = no sweep)
  uint64_t seed = 1;      // --seed S
  std::string probe;      // --probe <node>; default from the .pnoise card
  std::string metricsPath;  // --metrics <file>
  std::string tracePath;    // --trace <file>
  TraceDetail traceDetail = TraceDetail::kPhase;  // --trace-detail
  bool progress = false;    // --progress
  bool batch = false;       // --batch: scenario-batched sweep evaluation
};

/// What the metrics report aggregates beyond the registry totals: one
/// SolveStats per analysis card, and the sweep's per-scenario outcomes.
struct RunReport {
  std::vector<std::pair<std::string, SolveStats>> analyses;
  bool haveSweep = false;
  std::vector<SweepResult> sweep;
};

bool parseArgs(int argc, char** argv, RunnerArgs& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (a == "--jobs") {
      args.jobs = std::strtoul(value("--jobs"), nullptr, 10);
    } else if (a == "--procs") {
      args.procs = std::strtoul(value("--procs"), nullptr, 10);
      if (args.procs == 0) {
        std::fprintf(stderr, "--procs needs N >= 1\n");
        return false;
      }
    } else if (a == "--worker") {
      args.worker = true;
    } else if (a == "--seed") {
      args.seed = std::strtoull(value("--seed"), nullptr, 10);
    } else if (a == "--probe") {
      args.probe = value("--probe");
    } else if (a == "--metrics") {
      args.metricsPath = value("--metrics");
    } else if (a == "--trace") {
      args.tracePath = value("--trace");
    } else if (a == "--trace-detail") {
      const std::string d = value("--trace-detail");
      if (d == "phase") {
        args.traceDetail = TraceDetail::kPhase;
      } else if (d == "step") {
        args.traceDetail = TraceDetail::kStep;
      } else if (d == "kernel") {
        args.traceDetail = TraceDetail::kKernel;
      } else {
        std::fprintf(stderr,
                     "--trace-detail expects phase|step|kernel, got '%s'\n",
                     d.c_str());
        return false;
      }
    } else if (a == "--progress") {
      args.progress = true;
    } else if (a == "--batch") {
      args.batch = true;
    } else if (a == "--sweep") {
      const std::string spec = value("--sweep");
      if (spec.rfind("mc:", 0) != 0) {
        std::fprintf(stderr, "--sweep expects mc:<N>, got '%s'\n",
                     spec.c_str());
        return false;
      }
      args.sweepSamples = std::strtoul(spec.c_str() + 3, nullptr, 10);
      if (args.sweepSamples == 0) {
        std::fprintf(stderr, "--sweep mc:<N> needs N >= 1\n");
        return false;
      }
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", a.c_str());
      return false;
    } else {
      args.deckPath = a;
    }
  }
  return true;
}

int runSweep(const std::string& deckText, const ParsedCircuit& pc,
             const RunnerArgs& args, TelemetryRegistry& reg,
             RunReport& report) {
  // The main-thread parse (`pc`) supplies the analysis cards and defaults;
  // the scenarios re-parse the text into private netlists on their slots.
  Real dt = 0.0, tstop = 0.0;
  std::string probe = args.probe;
  for (const auto& card : pc.analyses) {
    if (card.kind == "tran" && card.args.size() >= 2) {
      const auto dtv = parseSpiceNumber(card.args[0]);
      const auto stopv = parseSpiceNumber(card.args[1]);
      if (!dtv || !stopv) {
        std::fprintf(stderr, "bad .tran card: '%s %s'\n",
                     card.args[0].c_str(), card.args[1].c_str());
        return 1;
      }
      dt = *dtv;
      tstop = *stopv;
    } else if (card.kind == "pnoise" && !card.args.empty() && probe.empty()) {
      probe = card.args[0];
    }
  }
  if (dt <= 0.0 || tstop <= 0.0) {
    std::fprintf(stderr, "--sweep needs a .tran card in the deck\n");
    return 1;
  }
  if (probe.empty()) {
    std::fprintf(stderr,
                 "--sweep needs --probe <node> (or a .pnoise card)\n");
    return 1;
  }
  if (!pc.netlist->findNode(probe)) {
    std::fprintf(stderr, "probe node '%s' is not in the deck\n",
                 probe.c_str());
    return 1;
  }

  const size_t total = args.sweepSamples;
  SweepProgressFn onProgress;
  size_t done = 0;
  if (args.progress) {
    // Completion order, serialized by the sweep; the per-scenario lines
    // below stay in input order.
    onProgress = [&](const SweepResult& r) {
      ++done;
      std::printf("progress: [%zu/%zu] %-8s %s (attempts=%d)\n", done, total,
                  r.name.c_str(),
                  r.ok ? (r.recovered ? "recovered" : "ok") : "FAILED",
                  r.attempts);
      std::fflush(stdout);
    };
  }

  std::vector<SweepResult> results;
  if (args.batch && args.procs > 1) {
    std::fprintf(stderr,
                 "--batch applies to in-process sweeps; ignored with "
                 "--procs > 1\n");
  }
  if (args.procs > 1) {
    // Multi-process mode: serializable scenario specs shipped to --worker
    // re-entries of this binary; the workers rebuild sample k's netlist
    // from (seed, k), so results match the in-process path bit for bit.
    std::vector<ProcessScenario> scenarios;
    for (size_t k = 0; k < args.sweepSamples; ++k) {
      ProcessScenario ps;
      ps.name = "mc" + std::to_string(k);
      ps.deckIndex = 0;
      ps.analysis = SweepAnalysis::kTransient;
      ps.outNode = probe;
      ps.t1 = tstop;
      ps.dt = dt;
      ps.tran.storeStates = false;
      ps.applyMismatch = true;
      ps.seed = args.seed;
      ps.sampleIndex = k;
      ps.retry.maxRetries = 2;
      scenarios.push_back(std::move(ps));
    }
    ProcessSweepOptions popt;
    popt.procs = args.procs;
    popt.jobsPerWorker =
        args.jobs == 0 ? ThreadPool::hardwareJobs() : args.jobs;
    std::printf("sweep: %zu mismatch scenarios of .tran %s %s on %zu "
                "proc(s) x %zu job(s), probe v(%s), seed %llu\n",
                scenarios.size(), formatEng(dt).c_str(),
                formatEng(tstop).c_str(), popt.procs, popt.jobsPerWorker,
                probe.c_str(), static_cast<unsigned long long>(args.seed));
    const std::vector<std::string> decks = {deckText};
    results = runProcessSweep(decks, scenarios, popt, &reg, onProgress);
  } else if (args.batch) {
    // Scenario-batched in-process sweep: same deck, window, retry policy,
    // and (seed, k) mismatch stream as the scalar path below — batched
    // results are bit-identical to it (docs/architecture.md "Batched
    // evaluation").
    const auto deck = std::make_shared<const std::string>(deckText);
    BatchSweepSpec spec;
    spec.make = [deck] {
      ParsedCircuit spc = parseNetlistString(*deck);
      return std::move(spc.netlist);
    };
    spec.configure = [seed = args.seed](Netlist& nl, size_t k) {
      applyMismatchSample(nl.mismatchParams(), nullptr, seed, k);
    };
    spec.count = args.sweepSamples;
    spec.outNode = probe;
    spec.t1 = tstop;
    spec.dt = dt;
    spec.tran.storeStates = false;
    spec.retry.maxRetries = 2;
    spec.batch.enabled = true;
    ThreadPool pool(args.jobs);
    pool.attachTelemetry(&reg);
    std::printf("sweep: %zu mismatch scenarios of .tran %s %s on %zu "
                "job(s) [batched, %zu lanes], probe v(%s), seed %llu\n",
                spec.count, formatEng(dt).c_str(), formatEng(tstop).c_str(),
                pool.jobCount(), spec.batch.lanes, probe.c_str(),
                static_cast<unsigned long long>(args.seed));
    results = runScenarioSweepBatched(spec, pool, onProgress);
  } else {
    // One shared copy of the deck source: each scenario re-parses it into
    // a private netlist and applies its sample draw — applyMismatchSample
    // is the MC engine's own stream, so scenario k reproduces MC sample k.
    const auto deck = std::make_shared<const std::string>(deckText);
    std::vector<SweepScenario> scenarios;
    for (size_t k = 0; k < args.sweepSamples; ++k) {
      SweepScenario sc;
      sc.name = "mc" + std::to_string(k);
      sc.make = [deck, seed = args.seed, k] {
        ParsedCircuit spc = parseNetlistString(*deck);
        spc.netlist->finalize();
        applyMismatchSample(spc.netlist->mismatchParams(), nullptr, seed, k);
        return std::move(spc.netlist);
      };
      sc.analysis = SweepAnalysis::kTransient;
      sc.outNode = probe;
      sc.t1 = tstop;
      sc.dt = dt;
      sc.tran.storeStates = false;
      sc.retry.maxRetries = 2;
      scenarios.push_back(std::move(sc));
    }

    ThreadPool pool(args.jobs);
    pool.attachTelemetry(&reg);
    std::printf("sweep: %zu mismatch scenarios of .tran %s %s on %zu "
                "job(s), probe v(%s), seed %llu\n",
                scenarios.size(), formatEng(dt).c_str(),
                formatEng(tstop).c_str(), pool.jobCount(), probe.c_str(),
                static_cast<unsigned long long>(args.seed));
    results = runScenarioSweep(scenarios, pool, onProgress);
  }

  MomentAccumulator acc;
  size_t failures = 0;
  const int probeIdx = pc.netlist->nodeIndex(probe);
  for (const auto& r : results) {
    if (!r.ok) {
      ++failures;
      std::printf("  %-8s FAILED: %s\n", r.name.c_str(), r.error.c_str());
      continue;
    }
    const Real v = r.finalState.at(probeIdx);
    acc.add(v);
    std::printf("  %-8s v(%s) = %s\n", r.name.c_str(), probe.c_str(),
                formatEng(v).c_str());
  }
  if (acc.count() > 0) {
    std::printf("summary: mean = %sV, sigma = %sV over %zu scenarios "
                "(%zu failed)\n",
                formatEng(acc.mean()).c_str(), formatEng(acc.stddev()).c_str(),
                static_cast<size_t>(acc.count()), failures);
  }
  // Recovery report: which scenarios needed the bounded-escalation retries,
  // and the structured post-mortem of each scenario's last failed attempt.
  size_t retried = 0, recovered = 0, totalAttempts = 0;
  for (const auto& r : results) {
    totalAttempts += static_cast<size_t>(r.attempts);
    if (r.attempts > 1) ++retried;
    if (r.recovered) ++recovered;
  }
  if (retried > 0 || failures > 0) {
    std::printf("recovery: %zu scenario(s) retried, %zu recovered, "
                "%zu attempts total\n",
                retried, recovered, totalAttempts);
    for (const auto& r : results) {
      if (!r.hasDiagnostics) continue;
      std::printf("  %-8s %s after %d attempt(s): %s\n", r.name.c_str(),
                  r.ok ? "recovered" : "failed", r.attempts,
                  r.diagnostics.describe().c_str());
    }
  }
  report.haveSweep = true;
  report.sweep = results;
  return failures == results.size() ? 1 : 0;
}

int runCards(const ParsedCircuit& pc, const RunnerArgs& args,
             TelemetryRegistry& reg, RunReport& report) {
  Netlist& nl = *pc.netlist;
  MnaSystem sys(nl);
  std::printf("%zu devices, %zu unknowns, %zu mismatch parameters\n\n",
              nl.devices().size(), sys.size(), nl.mismatchParams().size());

  // --jobs also accelerates the card path: the .pnoise flow fans the PSS
  // monodromy columns and the LPTV B_k/V_k recursions across this pool
  // (results are bit-identical for every jobs count).
  std::unique_ptr<ThreadPool> pool;
  if (args.jobs != 1) {
    pool = std::make_unique<ThreadPool>(args.jobs);
    pool->attachTelemetry(&reg);
  }

  Real pssPeriod = 0.0;
  for (const auto& card : pc.analyses) {
    if (card.kind == "op") {
      const DcResult dc = solveDc(sys);
      std::printf(".op (%llu Newton iterations):\n",
                  static_cast<unsigned long long>(dc.stats.newtonIterations));
      for (size_t i = 0; i < sys.size(); ++i) {
        std::printf("  %-12s = %s\n", nl.unknownName(i).c_str(),
                    formatEng(dc.x[i]).c_str());
      }
      report.analyses.emplace_back(".op", dc.stats);
    } else if (card.kind == "tran" && card.args.size() >= 2) {
      const Real dt = *parseSpiceNumber(card.args[0]);
      const Real tstop = *parseSpiceNumber(card.args[1]);
      const TransientResult tr = runTransient(sys, 0.0, tstop, dt, {});
      std::printf(".tran %s %s: %llu steps, final state:\n",
                  card.args[0].c_str(), card.args[1].c_str(),
                  static_cast<unsigned long long>(tr.stats.steps));
      for (size_t i = 0; i < sys.size(); ++i) {
        std::printf("  %-12s = %s\n", nl.unknownName(i).c_str(),
                    formatEng(tr.finalState[i]).c_str());
      }
      report.analyses.emplace_back(".tran", tr.stats);
    } else if (card.kind == "pss" && !card.args.empty()) {
      pssPeriod = *parseSpiceNumber(card.args[0]);
      std::printf(".pss period=%ss (deferred until .pnoise)\n",
                  formatEng(pssPeriod).c_str());
    } else if (card.kind == "pnoise" && !card.args.empty()) {
      if (pssPeriod <= 0.0) {
        std::printf(".pnoise ignored: no preceding .pss card\n");
        continue;
      }
      const int outIdx = nl.nodeIndex(card.args[0]);
      MismatchAnalysisOptions opt;
      opt.pss.stepsPerPeriod = 500;
      opt.pss.pool = pool.get();
      opt.pnoise.pool = pool.get();
      TransientMismatchAnalysis an(sys, opt);
      an.runDriven(pssPeriod);
      const VariationResult dc = an.dcVariation(outIdx);
      std::printf(".pnoise at v(%s): baseband sigma = %sV; breakdown:\n",
                  card.args[0].c_str(), formatEng(dc.sigma()).c_str());
      for (size_t i = 0; i < dc.sourceNames.size(); ++i) {
        std::printf("  %-10s %+sV\n", dc.sourceNames[i].c_str(),
                    formatEng(dc.scaledSens[i], 3).c_str());
      }
    } else {
      std::printf(".%s: unsupported card skipped\n", card.kind.c_str());
    }
  }
  return 0;
}

/// The --metrics report. Schema (validated by scripts/check_run_report.py):
/// top-level object with schema_version, deck, jobs, procs, counters{},
/// phase_ns{}, analyses[{name, stats{}}], and — in sweep mode —
/// sweep{scenarios, failed, recovered, total_attempts, stats{},
/// per_scenario[{name, ok, attempts, recovered, stats{}, error?}]}.
void writeMetricsReport(std::ostream& os, const RunnerArgs& args, size_t jobs,
                        const TelemetryRegistry& reg,
                        const RunReport& report) {
  JsonWriter w(os);
  w.beginObject();
  w.field("schema_version", uint64_t{1});
  w.field("deck", std::string_view(args.deckPath.empty() ? "(demo)"
                                                         : args.deckPath));
  w.field("jobs", static_cast<uint64_t>(jobs));
  w.field("procs", static_cast<uint64_t>(args.procs));
  writeRegistrySections(w, reg);
  w.key("analyses");
  w.beginArray();
  for (const auto& [name, stats] : report.analyses) {
    w.beginObject();
    w.field("name", std::string_view(name));
    w.key("stats");
    writeSolveStats(w, stats);
    w.endObject();
  }
  w.endArray();
  if (report.haveSweep) {
    SolveStats agg;
    uint64_t failed = 0, recovered = 0, attempts = 0;
    for (const auto& r : report.sweep) {
      agg.add(r.stats);
      if (!r.ok) ++failed;
      if (r.recovered) ++recovered;
      attempts += static_cast<uint64_t>(r.attempts);
    }
    w.key("sweep");
    w.beginObject();
    w.field("scenarios", static_cast<uint64_t>(report.sweep.size()));
    w.field("failed", failed);
    w.field("recovered", recovered);
    w.field("total_attempts", attempts);
    w.key("stats");
    writeSolveStats(w, agg);
    w.key("per_scenario");
    w.beginArray();
    for (const auto& r : report.sweep) {
      w.beginObject();
      w.field("name", std::string_view(r.name));
      w.field("ok", r.ok);
      w.field("attempts", static_cast<uint64_t>(r.attempts));
      w.field("recovered", r.recovered);
      if (!r.error.empty()) w.field("error", std::string_view(r.error));
      if (r.hasDiagnostics) {
        w.field("diagnostics", std::string_view(r.diagnostics.describe()));
      }
      w.key("stats");
      writeSolveStats(w, r.stats);
      w.endObject();
    }
    w.endArray();
    w.endObject();
  }
  w.endObject();
  os << '\n';
}

bool writeReports(const RunnerArgs& args, size_t jobs,
                  const TelemetryRegistry& reg, const RunReport& report) {
  bool ok = true;
  if (!args.metricsPath.empty()) {
    std::ofstream out(args.metricsPath);
    if (!out) {
      std::fprintf(stderr, "cannot write metrics to '%s'\n",
                   args.metricsPath.c_str());
      ok = false;
    } else {
      writeMetricsReport(out, args, jobs, reg, report);
      std::printf("metrics written to %s\n", args.metricsPath.c_str());
    }
  }
  if (!args.tracePath.empty()) {
    std::ofstream out(args.tracePath);
    if (!out) {
      std::fprintf(stderr, "cannot write trace to '%s'\n",
                   args.tracePath.c_str());
      ok = false;
    } else {
      writeChromeTrace(out, reg);
      std::printf("trace written to %s (%zu events)\n",
                  args.tracePath.c_str(), reg.events().size());
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  RunnerArgs args;
  if (!parseArgs(argc, argv, args)) return 1;

  // Worker re-entry: runProcessSweep spawned us with stdin/stdout as the
  // frame channel. No banner, no reports — stdout belongs to the protocol.
  if (args.worker) return runSweepWorker(0, 1);

  std::string deckText;
  if (!args.deckPath.empty()) {
    std::ifstream in(args.deckPath);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", args.deckPath.c_str());
      return 1;
    }
    std::ostringstream os;
    os << in.rdbuf();
    deckText = os.str();
  } else {
    deckText = kDemoDeck;
    std::printf("(no deck given; running the built-in demo)\n");
  }

  // One registry slot per execution slot; the main thread binds slot 0 and
  // the pools bind their drivers (attachTelemetry). Events are only
  // collected when a --trace file was requested.
  const size_t jobs = args.jobs == 0 ? ThreadPool::hardwareJobs() : args.jobs;
  TelemetryRegistry::Options topt;
  topt.collectEvents = !args.tracePath.empty();
  topt.detail = args.traceDetail;
  TelemetryRegistry reg(jobs, topt);
  TelemetryScope mainScope(reg, 0);
  RunReport report;

  // Solver failures carry a structured post-mortem (FailureDiagnostics):
  // print it and exit nonzero instead of dying on an unhandled exception,
  // so scripted flows get a parseable one-line cause.
  try {
    ParsedCircuit pc = [&] {
      TraceSpan span(Phase::kParse, "parse");
      return parseNetlistString(deckText);
    }();
    std::printf("title: %s\n", pc.title.c_str());
    const int rc = args.sweepSamples > 0
                       ? runSweep(deckText, pc, args, reg, report)
                       : runCards(pc, args, reg, report);
    if (!writeReports(args, jobs, reg, report) && rc == 0) return 1;
    return rc;
  } catch (const Error& err) {
    std::fprintf(stderr, "error: %s\n", err.what());
    if (const FailureDiagnostics* d = err.diagnostics()) {
      std::fprintf(stderr, "diagnostics: %s\n", d->describe().c_str());
    }
    return 1;
  } catch (const std::exception& err) {
    std::fprintf(stderr, "error: %s\n", err.what());
    return 1;
  }
}
