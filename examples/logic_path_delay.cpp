// Example: delay variation and delay correlations of the Fig. 7 logic
// path (paper SS IV-B, V-D, Table I).
//
// Shows the edge-delay readout, the eq. 12 correlation between the two
// outputs, and the eq. 13 variance of the difference — all from a single
// pseudo-noise run.
#include <cmath>
#include <cstdio>

#include "circuit/stdcell.hpp"
#include "core/correlation.hpp"
#include "core/mismatch_analysis.hpp"
#include "util/units.hpp"

using namespace psmn;

int main() {
  for (const bool xFirst : {true, false}) {
    Netlist nl;
    auto kit = ProcessKit::cmos130();
    LogicPathOptions lo;
    lo.tRiseX = xFirst ? 1e-9 : 2.5e-9;
    lo.tRiseY = xFirst ? 2.5e-9 : 1e-9;
    const LogicPathCircuit lp = buildLogicPath(nl, kit, lo);
    MnaSystem sys(nl);

    MismatchAnalysisOptions opt;
    opt.pss.stepsPerPeriod = 800;
    opt.pss.warmupCycles = 2;
    TransientMismatchAnalysis analysis(sys, opt);
    analysis.runDriven(lp.period);

    const Real half = kit.vdd / 2;
    const VariationResult dA =
        analysis.edgeDelayVariation(nl.nodeIndex(lp.outA), half, -1);
    const VariationResult dB =
        analysis.edgeDelayVariation(nl.nodeIndex(lp.outB), half, -1);

    std::printf("%s:\n", xFirst ? "X rises first (shared gates a,b)"
                                : "Y rises first (disjoint paths)");
    std::printf("  sigma(delay A) = %ss, sigma(delay B) = %ss\n",
                formatEng(dA.sigma(), 3).c_str(),
                formatEng(dB.sigma(), 3).c_str());
    std::printf("  correlation (eq. 12)        rho        = %+.3f\n",
                correlationOf(dA, dB));
    std::printf("  difference  (eq. 13)        sigma(B-A) = %ss\n\n",
                formatEng(std::sqrt(differenceVariance(dA, dB)), 3).c_str());
  }
  std::printf("paper Table I: rho ~ 0.885 when the critical paths share "
              "gates a and b,\nrho ~ 0.01 when they are disjoint.\n");
  return 0;
}
