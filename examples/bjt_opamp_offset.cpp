// Example: output variation of the 20-transistor bipolar op-amp follower
// (circuit/bjt_opamp) from one transient-sensitivity solve.
//
// The follower closes the op-amp in unity gain around a 0.2 V input step.
// One direct-sensitivity transient (Hocevar recursion riding the Newton
// factorizations) yields dVout/dp for all 44 mismatch parameters — 2 per
// BJT (IS and beta) plus the degeneration resistors — and the predicted
// sigma is cross-checked against a small seeded Monte-Carlo batch.
#include <cmath>
#include <cstdio>
#include <vector>

#include "circuit/bjt_opamp.hpp"
#include "core/monte_carlo.hpp"
#include "engine/transient_sensitivity.hpp"
#include "util/units.hpp"

using namespace psmn;

namespace {

std::unique_ptr<Netlist> makeFollower() {
  auto nl = std::make_unique<Netlist>();
  buildBjtFollower(*nl, BjtKit::bipolar5());
  return nl;
}

}  // namespace

int main() {
  auto nl = makeFollower();
  MnaSystem sys(*nl);
  const auto sources = sys.collectSources(true, false);
  const int out = nl->nodeIndex("out");
  std::printf("bjt op-amp follower: %zu devices, %zu unknowns, "
              "%zu mismatch sources\n",
              nl->devices().size(), sys.size(), sources.size());

  // One sensitivity transient across the 0.2 V step (settled by 600 ns).
  TranOptions topt;
  topt.method = IntegrationMethod::kBackwardEuler;
  const TransientSensitivityResult sens =
      runTransientSensitivity(sys, 0.0, 600e-9, 2e-9, sources, topt);
  const size_t last = sens.times.size() - 1;

  Real var = 0.0;
  std::vector<Real> scaled(sources.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    scaled[i] = sens.sens[i][last][out] * sources[i].sigma;
    var += scaled[i] * scaled[i];
  }
  const Real sigma = std::sqrt(var);
  std::printf("settled v(out) = %sV, predicted sigma = %sV\n\n",
              formatEng(sens.states[last][out]).c_str(),
              formatEng(sigma).c_str());

  std::printf("largest contributors (S_i * sigma_i):\n");
  for (size_t i = 0; i < sources.size(); ++i) {
    if (std::fabs(scaled[i]) < 0.1 * sigma) continue;
    std::printf("  %-10s %+sV\n", sources[i].name.c_str(),
                formatEng(scaled[i], 3).c_str());
  }

  // Cross-check against a seeded Monte-Carlo batch on the parallel
  // runtime (jobs=0: one slot per hardware thread, bit-identical for any
  // jobs count).
  McOptions mopt;
  mopt.samples = 200;
  mopt.seed = 20070604;
  mopt.jobs = 0;
  MonteCarloEngine mc(sys, mopt);
  mc.setNetlistFactory(makeFollower);
  const McResult res = mc.run({"vout"}, [&](const MnaSystem& s) {
    const TransientResult tr = runTransient(s, 0.0, 600e-9, 2e-9, topt);
    return RealVector{tr.finalState[out]};
  });
  std::printf("\nmonte-carlo (%zu samples): sigma = %sV (ratio %.3f)\n",
              mopt.samples, formatEng(res.sigma(0)).c_str(),
              res.sigma(0) / sigma);
  return 0;
}
