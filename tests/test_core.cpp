// Core-layer tests: the mismatch-analysis API, DC-match baseline,
// Monte-Carlo engine, correlation math (eq. 12/13), correlated mismatch
// (eq. 6), design sensitivities (eq. 14-16), Gaussian-mixture extension.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "circuit/stdcell.hpp"
#include "core/correlation.hpp"
#include "core/correlated_mismatch.hpp"
#include "core/dc_match.hpp"
#include "core/design_sensitivity.hpp"
#include "core/gaussian_mixture.hpp"
#include "core/mismatch_analysis.hpp"
#include "core/monte_carlo.hpp"
#include "core/pseudo_noise.hpp"
#include "engine/sensitivity.hpp"
#include "engine/transient.hpp"
#include "meas/histogram.hpp"
#include "meas/measure.hpp"

namespace psmn {
namespace {

// ------------------------------------------------------------- DC match

TEST(DcMatch, DividerVariance) {
  Netlist nl;
  const NodeId top = nl.node("top");
  const NodeId mid = nl.node("mid");
  nl.add<VSource>("V1", top, kGround, SourceWave::dc(2.0), nl);
  nl.add<Resistor>("R1", top, mid, 1e3, nl, 10.0);
  nl.add<Resistor>("R2", mid, kGround, 1e3, nl, 10.0);
  MnaSystem sys(nl);
  const VariationResult v = dcMatchAnalysis(sys, nl.nodeIndex(mid));
  // sigma = sqrt(2) * 0.5e-3 * 10.
  EXPECT_NEAR(v.sigma(), std::sqrt(2.0) * 5e-3, 1e-8);
  ASSERT_EQ(v.scaledSens.size(), 2u);
  EXPECT_NEAR(v.scaledSens[0], -5e-3, 1e-8);
  EXPECT_NEAR(v.scaledSens[1], +5e-3, 1e-8);
  // Anti-correlated contributions -> difference variance doubles, sum ~ 0.
  EXPECT_NEAR(correlationOf(v, v), 1.0, 1e-12);
}

// ------------------------------------------------------ correlation math

VariationResult makeVariation(std::vector<Real> scaled) {
  VariationResult v;
  v.measurement = "test";
  for (size_t i = 0; i < scaled.size(); ++i) {
    v.sourceNames.push_back("s" + std::to_string(i));
    v.scaledSens.push_back(scaled[i]);
  }
  return v;
}

TEST(CorrelationMath, InnerProductIdentities) {
  const VariationResult a = makeVariation({3.0, 4.0});
  const VariationResult b = makeVariation({3.0, -4.0});
  EXPECT_DOUBLE_EQ(a.variance(), 25.0);
  EXPECT_DOUBLE_EQ(covarianceOf(a, b), 9.0 - 16.0);
  EXPECT_DOUBLE_EQ(correlationOf(a, b), -7.0 / 25.0);
  // eq. 13: var(b-a) = var(a)+var(b)-2cov.
  EXPECT_DOUBLE_EQ(differenceVariance(a, b), 25.0 + 25.0 - 2.0 * (-7.0));
  EXPECT_DOUBLE_EQ(sumVariance(a, b), 25.0 + 25.0 + 2.0 * (-7.0));
  // Difference of a variation with itself has zero variance.
  EXPECT_NEAR(differenceVariance(a, a), 0.0, 1e-12);
}

TEST(CorrelationMath, RejectsMismatchedSourceSets) {
  const VariationResult a = makeVariation({1.0});
  VariationResult b = makeVariation({1.0});
  b.sourceNames[0] = "other";
  EXPECT_THROW(covarianceOf(a, b), Error);
}

TEST(CorrelationMath, McCorrelationMatchesEq12OnSharedSourceDividers) {
  // Two dividers sharing R1: outputs are correlated through it.
  Netlist nl;
  const NodeId top = nl.node("top");
  const NodeId mid = nl.node("mid");
  const NodeId out2 = nl.node("out2");
  nl.add<VSource>("V1", top, kGround, SourceWave::dc(2.0), nl);
  nl.add<Resistor>("R1", top, mid, 1e3, nl, 10.0);
  nl.add<Resistor>("R2", mid, kGround, 1e3, nl, 10.0);
  nl.add<Resistor>("R3", mid, out2, 1e3, nl, 10.0);
  nl.add<Resistor>("R4", out2, kGround, 1e3, nl, 10.0);
  MnaSystem sys(nl);
  const VariationResult va = dcMatchAnalysis(sys, nl.nodeIndex(mid));
  const VariationResult vb = dcMatchAnalysis(sys, nl.nodeIndex(out2));
  const Real rhoPredicted = correlationOf(va, vb);

  McOptions mo;
  mo.samples = 4000;
  MonteCarloEngine mc(sys, mo);
  const McResult r = mc.run({"vmid", "vout2"}, [&](const MnaSystem& s) {
    const DcResult dc = solveDc(s);
    return RealVector{dc.x[nl.nodeIndex(mid)], dc.x[nl.nodeIndex(out2)]};
  });
  EXPECT_NEAR(r.correlationBetween(0, 1), rhoPredicted, 0.05);
  EXPECT_NEAR(r.sigma(0), va.sigma(), 0.05 * va.sigma());
  EXPECT_NEAR(r.sigma(1), vb.sigma(), 0.05 * vb.sigma());
}

// ---------------------------------------------------------- Monte-Carlo

TEST(MonteCarlo, DeterministicAcrossRuns) {
  Netlist nl;
  const NodeId a = nl.node("a");
  nl.add<ISource>("I1", kGround, a, SourceWave::dc(1e-3), nl);
  nl.add<Resistor>("R1", a, kGround, 1e3, nl, 10.0);
  MnaSystem sys(nl);
  auto measure = [&](const MnaSystem& s) {
    return RealVector{solveDc(s).x[nl.nodeIndex(a)]};
  };
  McOptions mo;
  mo.samples = 50;
  McResult r1 = MonteCarloEngine(sys, mo).run({"v"}, measure);
  McResult r2 = MonteCarloEngine(sys, mo).run({"v"}, measure);
  ASSERT_EQ(r1.samples.size(), r2.samples.size());
  for (size_t i = 0; i < r1.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.samples[i][0], r2.samples[i][0]);
  }
  mo.seed = 2;
  McResult r3 = MonteCarloEngine(sys, mo).run({"v"}, measure);
  EXPECT_NE(r1.samples[0][0], r3.samples[0][0]);
}

TEST(MonteCarlo, RecoverAnalyticSigma) {
  // v = I*R: sigma_v = I*sigma_R = 1e-3*10 = 10 mV.
  Netlist nl;
  const NodeId a = nl.node("a");
  nl.add<ISource>("I1", kGround, a, SourceWave::dc(1e-3), nl);
  nl.add<Resistor>("R1", a, kGround, 1e3, nl, 10.0);
  MnaSystem sys(nl);
  McOptions mo;
  mo.samples = 3000;
  McResult r = MonteCarloEngine(sys, mo).run({"v"}, [&](const MnaSystem& s) {
    return RealVector{solveDc(s).x[nl.nodeIndex(a)]};
  });
  EXPECT_NEAR(r.sigma(), 10e-3, 0.5e-3);
  EXPECT_NEAR(r.meanOf(), 1.0, 1e-3);
  EXPECT_EQ(r.failedSamples, 0u);
}

TEST(MonteCarlo, FailedSamplesAreCounted) {
  Netlist nl;
  const NodeId a = nl.node("a");
  nl.add<ISource>("I1", kGround, a, SourceWave::dc(1e-3), nl);
  nl.add<Resistor>("R1", a, kGround, 1e3, nl, 10.0);
  MnaSystem sys(nl);
  McOptions mo;
  mo.samples = 20;
  int count = 0;
  McResult r = MonteCarloEngine(sys, mo).run({"v"}, [&](const MnaSystem&) {
    if (++count % 4 == 0) throw SampleFailure("synthetic");
    return RealVector{1.0};
  });
  EXPECT_EQ(r.failedSamples, 5u);
  EXPECT_EQ(r.moments[0].count(), 15u);
}

// ------------------------------------------------- correlated mismatch

TEST(CorrelatedMismatch, PerfectCorrelationCancelsInDivider) {
  // Fully correlated R1/R2 mismatch leaves the divider ratio unchanged.
  Netlist nl;
  const NodeId top = nl.node("top");
  const NodeId mid = nl.node("mid");
  nl.add<VSource>("V1", top, kGround, SourceWave::dc(2.0), nl);
  auto& r1 = nl.add<Resistor>("R1", top, mid, 1e3, nl, 10.0);
  auto& r2 = nl.add<Resistor>("R2", mid, kGround, 1e3, nl, 10.0);
  MnaSystem sys(nl);

  CorrelatedMismatch corr;
  corr.addUniformCorrelationGroup({{&r1, 0}, {&r2, 0}}, 1.0);
  EXPECT_TRUE(corr.covers(&r1, 0));
  EXPECT_TRUE(corr.covers(&r2, 0));

  // Pseudo-noise side: composite sources give (near) zero output variance.
  const auto sources = corr.transformSources(sys.collectSources(true, false));
  const DcResult dc = solveDc(sys);
  const RealVector sens =
      solveDcSensitivity(sys, dc.x, nl.nodeIndex(mid), sources);
  Real var = 0.0;
  for (size_t i = 0; i < sources.size(); ++i) {
    var += sens[i] * sens[i] * sources[i].sigma * sources[i].sigma;
  }
  EXPECT_NEAR(std::sqrt(var), 0.0, 1e-9);

  // Monte-Carlo side agrees.
  McOptions mo;
  mo.samples = 500;
  MonteCarloEngine mc(sys, mo);
  mc.setCorrelatedMismatch(&corr);
  const McResult r = mc.run({"v"}, [&](const MnaSystem& s) {
    return RealVector{solveDc(s).x[nl.nodeIndex(mid)]};
  });
  EXPECT_NEAR(r.sigma(), 0.0, 1e-6);
}

class CorrelatedRho : public ::testing::TestWithParam<Real> {};

TEST_P(CorrelatedRho, DividerVarianceInterpolatesWithRho) {
  // var(vmid) = (dV/dR1 s1)^2 + (dV/dR2 s2)^2 + 2 rho (dV/dR1 s1)(dV/dR2 s2)
  const Real rho = GetParam();
  Netlist nl;
  const NodeId top = nl.node("top");
  const NodeId mid = nl.node("mid");
  nl.add<VSource>("V1", top, kGround, SourceWave::dc(2.0), nl);
  auto& r1 = nl.add<Resistor>("R1", top, mid, 1e3, nl, 10.0);
  auto& r2 = nl.add<Resistor>("R2", mid, kGround, 1e3, nl, 10.0);
  MnaSystem sys(nl);
  CorrelatedMismatch corr;
  corr.addUniformCorrelationGroup({{&r1, 0}, {&r2, 0}}, rho);

  const Real s = 5e-3;  // |dV/dRi| * sigma
  const Real expected = std::sqrt(2.0 * s * s - 2.0 * rho * s * s);

  const auto sources = corr.transformSources(sys.collectSources(true, false));
  const DcResult dc = solveDc(sys);
  const RealVector sens =
      solveDcSensitivity(sys, dc.x, nl.nodeIndex(mid), sources);
  Real var = 0.0;
  for (size_t i = 0; i < sources.size(); ++i) {
    var += sens[i] * sens[i] * sources[i].sigma * sources[i].sigma;
  }
  EXPECT_NEAR(std::sqrt(var), expected, 1e-6 + 1e-6 * expected);

  McOptions mo;
  mo.samples = 3000;
  MonteCarloEngine mc(sys, mo);
  mc.setCorrelatedMismatch(&corr);
  const McResult r = mc.run({"v"}, [&](const MnaSystem& s2) {
    return RealVector{solveDc(s2).x[nl.nodeIndex(mid)]};
  });
  EXPECT_NEAR(r.sigma(), expected, 0.06 * expected + 2e-4);
}

INSTANTIATE_TEST_SUITE_P(Rhos, CorrelatedRho,
                         ::testing::Values(-0.5, 0.0, 0.3, 0.7, 0.95));

TEST(CorrelatedMismatch, RejectsDoubleMembership) {
  Netlist nl;
  const NodeId a = nl.node("a");
  auto& r1 = nl.add<Resistor>("R1", a, kGround, 1e3, nl, 10.0);
  auto& r2 = nl.add<Resistor>("R2", a, kGround, 1e3, nl, 10.0);
  CorrelatedMismatch corr;
  corr.addUniformCorrelationGroup({{&r1, 0}, {&r2, 0}}, 0.5);
  EXPECT_THROW(corr.addUniformCorrelationGroup({{&r1, 0}}, 0.0), Error);
}

// --------------------------------------------------- design sensitivity

TEST(DesignSensitivity, Eq16FromBreakdown) {
  auto kit = ProcessKit::cmos130();
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add<VSource>("VDD", vdd, kGround, SourceWave::dc(kit.vdd), nl);
  nl.add<VSource>("VIN", in, kGround, SourceWave::dc(0.55), nl);
  const InverterCell cell = addInverter(nl, "G1", in, out, vdd, kit, 0.6e-6,
                                        1.2e-6);
  MnaSystem sys(nl);
  const VariationResult v = dcMatchAnalysis(sys, nl.nodeIndex(out));
  const auto ws = widthSensitivities(nl, v);
  ASSERT_EQ(ws.size(), 2u);
  Real shareSum = 0.0;
  for (const auto& w : ws) {
    shareSum += w.varianceShare;
    EXPECT_NEAR(w.dVarianceDWidth, -w.varianceShare / w.width, 1e-18);
    EXPECT_GE(w.relativeImpact, 0.0);
    EXPECT_LE(w.relativeImpact, 1.0);
  }
  EXPECT_NEAR(shareSum, v.variance(), 1e-9 * v.variance());
  (void)cell;
}

TEST(DesignSensitivity, UpsizingReducesVarianceAsPredicted) {
  // Verify eq. 16's 1/W scaling by actually re-running with 2x width of
  // the device. A diode-connected NMOS biased by a current source has
  // dVout/dVT ~ 1 nearly independent of W, isolating the Pelgrom scaling
  // from nominal-operating-point shifts.
  auto kit = ProcessKit::cmos130();
  Netlist nl;
  const NodeId out = nl.node("out");
  nl.add<ISource>("IB", kGround, out, SourceWave::dc(50e-6), nl);
  auto& fet = nl.add<Mosfet>("M1", out, out, kGround, kGround, kit.nmos,
                             2e-6, 0.13e-6, nl);
  MnaSystem sys(nl);
  const VariationResult v1 = dcMatchAnalysis(sys, nl.nodeIndex(out));
  const Real share1 = v1.varianceFromPrefix("M1.");
  // eq. 16 from the breakdown alone, at the original width:
  const auto ws = widthSensitivities(nl, v1);
  ASSERT_EQ(ws.size(), 1u);
  EXPECT_NEAR(ws[0].dVarianceDWidth, -share1 / 2e-6, 1e-9 * share1 / 2e-6);

  fet.setWidth(4e-6);  // 2x
  const VariationResult v2 = dcMatchAnalysis(sys, nl.nodeIndex(out));
  const Real share2 = v2.varianceFromPrefix("M1.");
  // Pelgrom: sigma^2 halves; the mild veff change adds some slack.
  EXPECT_NEAR(share2 / share1, 0.5, 0.12);
}

// --------------------------------------------------- pseudo-noise report

TEST(PseudoNoiseReport, DescribesAllSources) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  buildComparatorTestbench(nl, kit);
  MnaSystem sys(nl);
  const auto infos = describePseudoNoise(sys);
  EXPECT_EQ(infos.size(), 22u);
  for (const auto& info : infos) {
    EXPECT_GT(info.sigma, 0.0);
    EXPECT_NEAR(info.psdAt1Hz, info.sigma * info.sigma, 1e-18);
    EXPECT_TRUE(info.kind == "vth" || info.kind == "beta");
    EXPECT_TRUE(info.areaScaled);
  }
  const std::string report = formatPseudoNoiseReport(sys);
  EXPECT_NE(report.find("M2.dvt"), std::string::npos);
}

TEST(PseudoNoiseReport, IdsSigmaCalibration) {
  auto kit = ProcessKit::cmos130();
  // Paper anchor: 8.32u/0.13u at VGS=1.0 (veff ~ 0.65) -> 3sigma(IDS) of
  // order 10-15%.
  const Real s3 = 3.0 * relativeIdsSigma(*kit.nmos, 8.32e-6, 0.13e-6, 0.65);
  EXPECT_GT(s3, 0.05);
  EXPECT_LT(s3, 0.20);
  // Scale helper inverts exactly.
  const Real scale =
      mismatchScaleFor3SigmaIds(*kit.nmos, 8.32e-6, 0.13e-6, 0.65, 0.14);
  const MosModel scaled = kit.nmos->scaledMismatch(scale);
  EXPECT_NEAR(3.0 * relativeIdsSigma(scaled, 8.32e-6, 0.13e-6, 0.65), 0.14,
              1e-12);
}

// ------------------------------------------------------ gaussian mixture

TEST(GaussianMixture, MomentsOfKnownMixture) {
  MixtureDistribution d;
  d.components = {{0.5, -1.0, 0.2}, {0.5, 1.0, 0.2}};
  EXPECT_NEAR(d.mean(), 0.0, 1e-12);
  EXPECT_NEAR(d.variance(), 1.0 + 0.04, 1e-12);
  EXPECT_NEAR(d.thirdCentralMoment(), 0.0, 1e-12);  // symmetric
  // Asymmetric mixture has nonzero skew.
  d.components = {{0.8, 0.0, 0.1}, {0.2, 2.0, 0.1}};
  EXPECT_GT(d.thirdCentralMoment(), 0.0);
  EXPECT_GT(d.normalizedSkewness(), 0.0);
  // PDF integrates to ~1.
  Real integral = 0.0;
  for (Real x = -2.0; x < 4.0; x += 1e-3) integral += d.pdf(x) * 1e-3;
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(GaussianMixture, LinearCircuitReproducesMcOfBimodalParameter) {
  // R1's mismatch is bimodal (two lots). The mixture analysis projects each
  // lot through its own linear model; MC with matching draws must agree.
  Netlist nl;
  const NodeId a = nl.node("a");
  nl.add<ISource>("I1", kGround, a, SourceWave::dc(1e-3), nl);
  auto& r1 = nl.add<Resistor>("R1", a, kGround, 1e3, nl, 10.0);
  nl.add<Resistor>("R2", a, kGround, 1e3, nl, 5.0);
  MnaSystem sys(nl);
  const int outIdx = nl.nodeIndex(a);

  const std::vector<MixtureComponent> lots = {{0.5, -20.0, 4.0},
                                              {0.5, +20.0, 4.0}};
  const MixtureDistribution dist = gaussianMixtureAnalysis(
      r1, 0, lots, [&]() -> std::pair<Real, VariationResult> {
        const VariationResult v = dcMatchAnalysis(sys, outIdx);
        return {solveDc(sys).x[outIdx], v};
      });

  // Monte-Carlo with the same bimodal draw.
  McOptions mo;
  mo.samples = 4000;
  Rng lotRng(99);
  MomentAccumulator acc;
  for (size_t k = 0; k < mo.samples; ++k) {
    Rng rng = Rng::forSample(7, k);
    const auto& lot = lots[rng.uniform() < 0.5 ? 0 : 1];
    r1.setMismatchDelta(0, rng.gaussian(lot.mean, lot.sigma));
    // R2 keeps its Gaussian draw.
    auto* r2 = dynamic_cast<Resistor*>(nl.find("R2"));
    r2->setMismatchDelta(0, rng.gaussian(0.0, 5.0));
    acc.add(solveDc(sys).x[outIdx]);
  }
  nl.clearMismatch();
  EXPECT_NEAR(dist.mean(), acc.mean(), 3e-3);
  EXPECT_NEAR(dist.sigma(), acc.stddev(), 0.05 * acc.stddev());
}

// ------------------------------------------------------------- histogram

TEST(Histogram, BinsAndDensity) {
  RealVector samples;
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.gaussian(1.0, 0.5));
  const Histogram h = Histogram::fromSamples(samples, 40);
  EXPECT_EQ(h.total, samples.size());
  // Density approximates the Gaussian PDF near the mean.
  Real densAtMean = 0.0;
  for (size_t i = 0; i < h.counts.size(); ++i) {
    if (std::fabs(h.binCenter(i) - 1.0) < h.binWidth()) {
      densAtMean = std::max(densAtMean, h.density(i));
    }
  }
  EXPECT_NEAR(densAtMean, gaussPdf(1.0, 1.0, 0.5), 0.1);
  const std::string art =
      h.render(40, [](Real x) { return gaussPdf(x, 1.0, 0.5); });
  EXPECT_NE(art.find('#'), std::string::npos);
}

}  // namespace
}  // namespace psmn
