// Engine-level tests: DC Newton, transient integration vs. analytic
// solutions, AC, LTI noise (including the kT/C classic), DC and transient
// sensitivities (adjoint == direct == finite difference).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "circuit/diode.hpp"
#include "circuit/mosfet.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "circuit/stdcell.hpp"
#include "engine/ac.hpp"
#include "engine/dc.hpp"
#include "engine/noise.hpp"
#include "engine/sensitivity.hpp"
#include "engine/transient.hpp"
#include "engine/transient_sensitivity.hpp"
#include "meas/measure.hpp"

namespace psmn {
namespace {

// -------------------------------------------------------------------- DC

TEST(Dc, VoltageDivider) {
  Netlist nl;
  const NodeId top = nl.node("top");
  const NodeId mid = nl.node("mid");
  nl.add<VSource>("V1", top, kGround, SourceWave::dc(3.0), nl);
  nl.add<Resistor>("R1", top, mid, 2e3, nl);
  nl.add<Resistor>("R2", mid, kGround, 1e3, nl);
  MnaSystem sys(nl);
  const DcResult dc = solveDc(sys);
  EXPECT_NEAR(dc.x[nl.nodeIndex(mid)], 1.0, 1e-9);
  EXPECT_NEAR(dc.x[nl.nodeIndex(top)], 3.0, 1e-9);
  // Branch current: 1 mA out of the + terminal.
  EXPECT_NEAR(dc.x[2], -1e-3, 1e-9);
}

TEST(Dc, DiodeForwardDrop) {
  Netlist nl;
  const NodeId a = nl.node("a");
  nl.add<ISource>("I1", kGround, a, SourceWave::dc(1e-3), nl);
  nl.add<Diode>("D1", a, kGround, DiodeModel{}, nl);
  MnaSystem sys(nl);
  const DcResult dc = solveDc(sys);
  const Real vt = DiodeModel{}.thermalVoltage();
  const Real expected = vt * std::log(1e-3 / 1e-14 + 1.0);
  EXPECT_NEAR(dc.x[nl.nodeIndex(a)], expected, 1e-6);
}

TEST(Dc, NmosInverterTransferPoint) {
  auto kit = ProcessKit::cmos130();
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add<VSource>("VDD", vdd, kGround, SourceWave::dc(kit.vdd), nl);
  nl.add<VSource>("VIN", in, kGround, SourceWave::dc(0.0), nl);
  addInverter(nl, "G1", in, out, vdd, kit, 0.6e-6, 1.2e-6);
  MnaSystem sys(nl);
  const DcResult dc = solveDc(sys);
  // Input low -> output high.
  EXPECT_NEAR(dc.x[nl.nodeIndex(out)], kit.vdd, 0.01);
}

TEST(Dc, GminSteppingRecoversBistableCircuit) {
  // Cross-coupled inverters with no input: plain Newton from zero may
  // wander; the homotopies must still find a consistent solution.
  auto kit = ProcessKit::cmos130();
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  const NodeId q = nl.node("q");
  const NodeId qb = nl.node("qb");
  nl.add<VSource>("VDD", vdd, kGround, SourceWave::dc(kit.vdd), nl);
  addInverter(nl, "G1", q, qb, vdd, kit, 0.6e-6, 1.2e-6);
  addInverter(nl, "G2", qb, q, vdd, kit, 0.6e-6, 1.2e-6);
  MnaSystem sys(nl);
  const DcResult dc = solveDc(sys);
  // Any valid solution satisfies the residual.
  RealVector f;
  sys.evalDense(dc.x, 0.0, &f, nullptr, nullptr, nullptr, {});
  for (Real v : f) EXPECT_LT(std::fabs(v), 1e-8);
}

TEST(Dc, DeepInverterChainConvergesViaBacktrackingHomotopy) {
  // 256 series inverters from a zero start: the iterate escapes at one
  // specific gmin rung, which defeated the abort-on-failure ladders (the
  // ROADMAP "DC homotopy robustness" item — this exact fixture failed
  // before the ladders learned to backtrack and re-tighten the rung).
  // Deep chains are the scenario-sweep workhorse, so a mid-sweep death
  // here used to take the whole corner batch with it.
  auto kit = ProcessKit::cmos130();
  Netlist nl;
  InverterChainOptions copt;
  copt.stages = 256;
  buildInverterChain(nl, kit, copt);
  MnaSystem sys(nl);
  const DcResult dc = solveDc(sys);
  // Input low at t=0, so even stages sit low and odd stages high.
  EXPECT_NEAR(dc.x[nl.nodeIndex("ch256")], 0.0, 1e-4);
  EXPECT_NEAR(dc.x[nl.nodeIndex("ch255")], kit.vdd, 1e-4);
  RealVector f;
  sys.evalDense(dc.x, 0.0, &f, nullptr, nullptr, nullptr, {});
  for (Real v : f) EXPECT_LT(std::fabs(v), 1e-8);
}

TEST(Dc, ThrowsWhenUnsolvable) {
  // Two ideal voltage sources in parallel with different values.
  Netlist nl;
  const NodeId a = nl.node("a");
  nl.add<VSource>("V1", a, kGround, SourceWave::dc(1.0), nl);
  nl.add<VSource>("V2", a, kGround, SourceWave::dc(2.0), nl);
  MnaSystem sys(nl);
  EXPECT_THROW(solveDc(sys), Error);
}

// -------------------------------------------------------------- transient

class TransientMethods
    : public ::testing::TestWithParam<IntegrationMethod> {};

TEST_P(TransientMethods, RcStepResponseMatchesAnalytic) {
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add<VSource>("V1", in, kGround,
                  SourceWave::pulse(0.0, 1.0, 1e-9, 1e-12, 1e-12, 1.0, 0.0),
                  nl);
  nl.add<Resistor>("R1", in, out, 1e3, nl);
  nl.add<Capacitor>("C1", out, kGround, 1e-9, nl);  // tau = 1 us
  MnaSystem sys(nl);
  TranOptions opt;
  opt.method = GetParam();
  const TransientResult tr = runTransient(sys, 0.0, 5e-6, 5e-9, opt);
  const Waveform w = makeWaveform(tr.times, tr.states, nl.nodeIndex(out));
  const Real tau = 1e-6;
  Real maxErr = 0.0;
  for (size_t k = 0; k < w.size(); ++k) {
    const Real t = w.times[k] - 1e-9;
    const Real expected = t <= 0 ? 0.0 : 1.0 - std::exp(-t / tau);
    maxErr = std::max(maxErr, std::fabs(w.values[k] - expected));
  }
  // BE is O(h): with h/tau = 5e-3 expect ~2.5e-3; TRAP/Gear much better.
  const Real tol =
      GetParam() == IntegrationMethod::kBackwardEuler ? 5e-3 : 5e-4;
  EXPECT_LT(maxErr, tol);
}

INSTANTIATE_TEST_SUITE_P(Methods, TransientMethods,
                         ::testing::Values(IntegrationMethod::kBackwardEuler,
                                           IntegrationMethod::kTrapezoidal,
                                           IntegrationMethod::kGear2));

TEST(Transient, LcTankOscillatesAtResonance) {
  Netlist nl;
  const NodeId a = nl.node("a");
  nl.add<Capacitor>("C1", a, kGround, 1e-9, nl);
  nl.add<Inductor>("L1", a, kGround, 1e-6, nl);
  nl.add<Resistor>("Rbig", a, kGround, 1e9, nl);  // keeps DC well-posed
  MnaSystem sys(nl);
  // Start from a charged cap.
  RealVector x0(sys.size(), 0.0);
  x0[nl.nodeIndex(a)] = 1.0;
  TranOptions opt;
  opt.method = IntegrationMethod::kTrapezoidal;
  opt.initialState = &x0;
  const Real f0 = 1.0 / (2 * std::numbers::pi * std::sqrt(1e-9 * 1e-6));
  const TransientResult tr = runTransient(sys, 0.0, 6.0 / f0, 1.0 / f0 / 400,
                                          opt);
  const Waveform w = makeWaveform(tr.times, tr.states, nl.nodeIndex(a));
  EXPECT_NEAR(measureFrequency(w, 0.0, 4), f0, 0.01 * f0);
  // Trapezoidal preserves the amplitude (no numerical damping).
  Real last = 0.0;
  for (size_t k = 0; k < w.size(); ++k) last = std::max(last, w.values[k]);
  EXPECT_GT(last, 0.98);
}

TEST(Transient, BreakpointsHitPulseEdges) {
  Netlist nl;
  const NodeId in = nl.node("in");
  nl.add<VSource>("V1", in, kGround,
                  SourceWave::pulse(0.0, 1.0, 3.33e-9, 0.1e-9, 0.1e-9, 2e-9,
                                    0.0),
                  nl);
  nl.add<Resistor>("R1", in, kGround, 1e3, nl);
  MnaSystem sys(nl);
  const TransientResult tr = runTransient(sys, 0.0, 10e-9, 1e-9, {});
  // A time point must exist exactly at the pulse start.
  bool found = false;
  for (Real t : tr.times) {
    if (std::fabs(t - 3.33e-9) < 1e-15) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Transient, AdaptiveProducesAccurateRc) {
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add<VSource>("V1", in, kGround,
                  SourceWave::pulse(0.0, 1.0, 1e-9, 1e-10, 1e-10, 1.0, 0.0),
                  nl);
  nl.add<Resistor>("R1", in, out, 1e3, nl);
  nl.add<Capacitor>("C1", out, kGround, 1e-9, nl);
  MnaSystem sys(nl);
  TranOptions opt;
  opt.adaptive = true;
  opt.method = IntegrationMethod::kTrapezoidal;
  const TransientResult tr = runTransient(sys, 0.0, 5e-6, 10e-9, opt);
  const Waveform w = makeWaveform(tr.times, tr.states, nl.nodeIndex(out));
  const Real tau = 1e-6;
  for (size_t k = 0; k < w.size(); ++k) {
    const Real t = w.times[k] - 1e-9;
    const Real expected = t <= 0 ? 0.0 : 1.0 - std::exp(-t / tau);
    EXPECT_NEAR(w.values[k], expected, 5e-3);
  }
}

TEST(Transient, ChargeConservationOnCapDivider) {
  // Two series caps driven by a step: final voltages split by 1/C.
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId mid = nl.node("mid");
  nl.add<VSource>("V1", in, kGround,
                  SourceWave::pulse(0.0, 1.0, 1e-9, 1e-10, 1e-10, 1.0, 0.0),
                  nl);
  nl.add<Capacitor>("C1", in, mid, 2e-12, nl);
  nl.add<Capacitor>("C2", mid, kGround, 1e-12, nl);
  nl.add<Resistor>("Rleak", mid, kGround, 1e12, nl);
  MnaSystem sys(nl);
  const TransientResult tr = runTransient(sys, 0.0, 10e-9, 0.05e-9, {});
  // V(mid) = 1 * C1/(C1+C2) = 2/3.
  EXPECT_NEAR(tr.finalState[nl.nodeIndex(mid)], 2.0 / 3.0, 1e-3);
}

// --------------------------------------------------------------------- AC

class AcFrequencies : public ::testing::TestWithParam<Real> {};

TEST_P(AcFrequencies, RcLowpassTransfer) {
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  auto& vs = nl.add<VSource>("V1", in, kGround, SourceWave::dc(0.0), nl);
  nl.add<Resistor>("R1", in, out, 1e3, nl);
  nl.add<Capacitor>("C1", out, kGround, 1e-9, nl);
  MnaSystem sys(nl);
  const DcResult dc = solveDc(sys);
  RealMatrix g, c;
  linearize(sys, dc.x, &g, &c);
  const Real f = GetParam();
  const CplxVector rhs = acRhsForVSource(sys, vs);
  const CplxVector x = solveAc(g, c, f, rhs);
  const Cplx h = x[nl.nodeIndex(out)];
  const Cplx expected =
      1.0 / (Cplx(1.0, 2 * std::numbers::pi * f * 1e3 * 1e-9));
  EXPECT_NEAR(std::abs(h), std::abs(expected), 1e-9);
  EXPECT_NEAR(std::arg(h), std::arg(expected), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Decades, AcFrequencies,
                         ::testing::Values(1e3, 1e4, 1e5, 159154.9431, 1e6,
                                           1e7));

TEST(Ac, RlcResonancePeak) {
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  auto& vs = nl.add<VSource>("V1", in, kGround, SourceWave::dc(0.0), nl);
  nl.add<Resistor>("R1", in, out, 10.0, nl);
  nl.add<Inductor>("L1", out, nl.node("m"), 1e-6, nl);
  nl.add<Capacitor>("C1", nl.node("m"), kGround, 1e-9, nl);
  MnaSystem sys(nl);
  const DcResult dc = solveDc(sys);
  const Real f0 = 1.0 / (2 * std::numbers::pi * std::sqrt(1e-6 * 1e-9));
  // At series resonance the L-C impedance cancels, so the full source
  // voltage drops across R: v(out) -> 0 and the cap sees the Q-multiplied
  // voltage Q = sqrt(L/C)/R.
  const auto resp =
      solveAcSweep(sys, dc.x, std::vector<Real>{f0},
                   acRhsForVSource(sys, vs));
  EXPECT_NEAR(std::abs(resp[0][nl.nodeIndex(out)]), 0.0, 1e-6);
  const Real q = std::sqrt(1e-6 / 1e-9) / 10.0;
  EXPECT_NEAR(std::abs(resp[0][nl.nodeIndex("m")]), q, 1e-3 * q);
}

// ------------------------------------------------------------------ noise

TEST(Noise, ResistorDividerThermalNoise) {
  Netlist nl;
  const NodeId mid = nl.node("mid");
  auto& r1 = nl.add<Resistor>("R1", mid, kGround, 1e3, nl);
  auto& r2 = nl.add<Resistor>("R2", mid, kGround, 1e3, nl);
  r1.enableThermalNoise(true);
  r2.enableThermalNoise(true);
  MnaSystem sys(nl);
  RealVector xop(sys.size(), 0.0);
  const auto sources = sys.collectSources(false, true);
  ASSERT_EQ(sources.size(), 2u);
  const NoiseResult nr = solveNoise(sys, xop, nl.nodeIndex(mid), 1e3, sources);
  // Parallel 500-ohm resistance: Svv = 4kT * 500.
  const Real expected = 4.0 * kBoltzmann * kRoomTempK * 500.0;
  EXPECT_NEAR(nr.totalPsd, expected, 1e-3 * expected);
}

TEST(Noise, KtOverCIntegral) {
  // Integrated output noise of an RC lowpass must be kT/C regardless of R.
  Netlist nl;
  const NodeId out = nl.node("out");
  auto& r1 = nl.add<Resistor>("R1", out, kGround, 7.7e3, nl);
  r1.enableThermalNoise(true);
  nl.add<Capacitor>("C1", out, kGround, 3e-12, nl);
  MnaSystem sys(nl);
  RealVector xop(sys.size(), 0.0);
  const auto sources = sys.collectSources(false, true);
  // Integrate the PSD over a log grid.
  const RealVector freqs = logspace(1e3, 1e12, 40);
  Real integral = 0.0;
  Real prevF = 0.0, prevPsd = 0.0;
  for (Real f : freqs) {
    const NoiseResult nr =
        solveNoise(sys, xop, nl.nodeIndex(out), f, sources);
    if (prevF > 0.0) integral += 0.5 * (nr.totalPsd + prevPsd) * (f - prevF);
    prevF = f;
    prevPsd = nr.totalPsd;
  }
  const Real expected = kBoltzmann * kRoomTempK / 3e-12;
  EXPECT_NEAR(integral, expected, 0.01 * expected);
}

TEST(Noise, AdjointMatchesDirect) {
  // Property: the adjoint and direct noise analyses agree per source.
  auto kit = ProcessKit::cmos130();
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add<VSource>("VDD", vdd, kGround, SourceWave::dc(kit.vdd), nl);
  nl.add<VSource>("VIN", in, kGround, SourceWave::dc(0.6), nl);
  addInverter(nl, "G1", in, out, vdd, kit, 0.6e-6, 1.2e-6);
  nl.add<Capacitor>("CL", out, kGround, 10e-15, nl);
  MnaSystem sys(nl);
  const DcResult dc = solveDc(sys);
  const auto sources = sys.collectSources(true, false);
  ASSERT_EQ(sources.size(), 4u);
  for (Real f : {1.0, 1e6}) {
    const NoiseResult adj =
        solveNoise(sys, dc.x, nl.nodeIndex(out), f, sources);
    const NoiseResult dir =
        solveNoiseDirect(sys, dc.x, nl.nodeIndex(out), f, sources);
    ASSERT_EQ(adj.contributions.size(), dir.contributions.size());
    for (size_t i = 0; i < adj.contributions.size(); ++i) {
      EXPECT_NEAR(adj.contributions[i].psd, dir.contributions[i].psd,
                  1e-9 * (adj.totalPsd + 1e-300));
    }
    EXPECT_NEAR(adj.totalPsd, dir.totalPsd, 1e-9 * adj.totalPsd);
  }
}

TEST(Noise, FlickerShapeIs1OverF) {
  auto kit = ProcessKit::cmos130();
  auto model = std::make_shared<MosModel>(*kit.nmos);
  model->flickerNoise = true;
  model->kf = 1e-24;
  Netlist nl;
  const NodeId d = nl.node("d");
  nl.add<VSource>("VD", d, kGround, SourceWave::dc(1.0), nl);
  const NodeId g = nl.node("g");
  nl.add<VSource>("VG", g, kGround, SourceWave::dc(1.0), nl);
  nl.add<Mosfet>("M1", d, g, kGround, kGround, model, 2e-6, 0.13e-6, nl);
  MnaSystem sys(nl);
  const DcResult dc = solveDc(sys);
  const auto sources = sys.collectSources(false, true);
  ASSERT_EQ(sources.size(), 1u);
  // Observe the drain branch current noise through the source's own PSD:
  // shape must scale as 1/f.
  const int outIdx = static_cast<int>(sys.size()) - 1;  // i(VG) unused; use d
  (void)outIdx;
  const NoiseResult n1 =
      solveNoise(sys, dc.x, nl.nodeIndex(d), 1.0, sources);
  const NoiseResult n100 =
      solveNoise(sys, dc.x, nl.nodeIndex(d), 100.0, sources);
  // v(d) is pinned by VD, so look at the branch current of VD instead.
  (void)n1;
  (void)n100;
  const int ivd = static_cast<int>(nl.nodeCount()) - 1;  // first branch
  const NoiseResult i1 = solveNoise(sys, dc.x, ivd, 1.0, sources);
  const NoiseResult i100 = solveNoise(sys, dc.x, ivd, 100.0, sources);
  EXPECT_GT(i1.totalPsd, 0.0);
  EXPECT_NEAR(i1.totalPsd / i100.totalPsd, 100.0, 1.0);
}

// ------------------------------------------------------------ sensitivity

TEST(Sensitivity, DividerMatchesAnalyticAndFd) {
  Netlist nl;
  const NodeId top = nl.node("top");
  const NodeId mid = nl.node("mid");
  nl.add<VSource>("V1", top, kGround, SourceWave::dc(2.0), nl);
  auto& r1 = nl.add<Resistor>("R1", top, mid, 1e3, nl, 10.0);
  nl.add<Resistor>("R2", mid, kGround, 1e3, nl, 10.0);
  MnaSystem sys(nl);
  const DcResult dc = solveDc(sys);
  const auto sources = sys.collectSources(true, false);
  ASSERT_EQ(sources.size(), 2u);
  const RealVector sens =
      solveDcSensitivity(sys, dc.x, nl.nodeIndex(mid), sources);
  // vout = 2*R2/(R1+R2): dv/dR1 = -2 R2/(R1+R2)^2 = -0.5e-3,
  //                      dv/dR2 = +2 R1/(R1+R2)^2 = +0.5e-3.
  EXPECT_NEAR(sens[0], -0.5e-3, 1e-9);
  EXPECT_NEAR(sens[1], +0.5e-3, 1e-9);

  // Direct method agrees.
  const RealVector sensD =
      solveDcSensitivityDirect(sys, dc.x, nl.nodeIndex(mid), sources);
  EXPECT_NEAR(sens[0], sensD[0], 1e-12);
  EXPECT_NEAR(sens[1], sensD[1], 1e-12);

  // Finite difference through a re-solve agrees.
  r1.setMismatchDelta(0, 1.0);
  const DcResult dcP = solveDc(sys);
  r1.setMismatchDelta(0, -1.0);
  const DcResult dcM = solveDc(sys);
  r1.setMismatchDelta(0, 0.0);
  const Real fd =
      (dcP.x[nl.nodeIndex(mid)] - dcM.x[nl.nodeIndex(mid)]) / 2.0;
  EXPECT_NEAR(sens[0], fd, 1e-6 * std::fabs(fd) + 1e-12);
}

TEST(Sensitivity, MosfetBiasSensitivityMatchesFd) {
  auto kit = ProcessKit::cmos130();
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add<VSource>("VDD", vdd, kGround, SourceWave::dc(kit.vdd), nl);
  nl.add<VSource>("VIN", in, kGround, SourceWave::dc(0.55), nl);
  addInverter(nl, "G1", in, out, vdd, kit, 0.6e-6, 1.2e-6);
  MnaSystem sys(nl);
  const DcResult dc = solveDc(sys);
  const auto sources = sys.collectSources(true, false);
  const RealVector sens =
      solveDcSensitivity(sys, dc.x, nl.nodeIndex(out), sources);
  DcOptions fdOpt;
  for (size_t i = 0; i < sources.size(); ++i) {
    Device* dev = sources[i].components[0].device;
    const size_t k = sources[i].components[0].index;
    const Real h = sources[i].mkind == MismatchKind::kVth ? 1e-5 : 1e-5;
    dev->setMismatchDelta(k, h);
    const Real vp = solveDc(sys, fdOpt, &dc.x).x[nl.nodeIndex(out)];
    dev->setMismatchDelta(k, -h);
    const Real vm = solveDc(sys, fdOpt, &dc.x).x[nl.nodeIndex(out)];
    dev->setMismatchDelta(k, 0.0);
    const Real fd = (vp - vm) / (2.0 * h);
    EXPECT_NEAR(sens[i], fd, 1e-3 * std::fabs(fd) + 1e-6)
        << sources[i].name;
  }
}

TEST(TransientSensitivity, RcCrossingTimeMatchesFd) {
  // Delay sensitivity of an RC to its resistor value.
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add<VSource>("V1", in, kGround,
                  SourceWave::pulse(0.0, 1.0, 10e-9, 1e-9, 1e-9, 1e-3, 0.0),
                  nl);
  auto& r1 = nl.add<Resistor>("R1", in, out, 1e3, nl, 10.0);
  nl.add<Capacitor>("C1", out, kGround, 1e-9, nl);
  MnaSystem sys(nl);
  const auto sources = sys.collectSources(true, false);
  ASSERT_EQ(sources.size(), 1u);
  const TransientSensitivityResult ts =
      runTransientSensitivity(sys, 0.0, 5e-6, 2e-9, sources, {});
  const Real sDelay =
      ts.crossingTimeSensitivity(0, nl.nodeIndex(out), 0.5, +1);
  // Analytic: tc = tau*ln2 => dtc/dR = C*ln2 = 6.93e-13 s/ohm.
  EXPECT_NEAR(sDelay, 1e-9 * std::log(2.0), 0.02 * 1e-9 * std::log(2.0));

  // Finite-difference cross-check through full re-simulation.
  auto delayAt = [&](Real dr) {
    r1.setMismatchDelta(0, dr);
    const TransientResult tr = runTransient(sys, 0.0, 5e-6, 2e-9, {});
    r1.setMismatchDelta(0, 0.0);
    const Waveform w = makeWaveform(tr.times, tr.states, nl.nodeIndex(out));
    return *w.firstCrossing(0.5, +1);
  };
  const Real fd = (delayAt(5.0) - delayAt(-5.0)) / 10.0;
  EXPECT_NEAR(sDelay, fd, 0.05 * std::fabs(fd));
}

}  // namespace
}  // namespace psmn
