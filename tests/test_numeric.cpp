// Unit and property tests for the numeric substrate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>

#include "numeric/cholesky.hpp"
#include "numeric/dense_lu.hpp"
#include "numeric/fourier.hpp"
#include "numeric/interp.hpp"
#include "numeric/rng.hpp"
#include "numeric/sparse_lu.hpp"
#include "numeric/statistics.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace psmn {
namespace {

RealMatrix randomMatrix(size_t n, Rng& rng, Real diagBoost = 2.0) {
  RealMatrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
    a(i, i) += diagBoost;
  }
  return a;
}

// ------------------------------------------------------------ dense LU

class DenseLuSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(DenseLuSizes, SolvesRandomSystem) {
  const size_t n = GetParam();
  Rng rng(42 + n);
  const RealMatrix a = randomMatrix(n, rng);
  RealVector xTrue(n);
  for (auto& v : xTrue) v = rng.uniform(-5.0, 5.0);
  const RealVector b = matvec(a, std::span<const Real>(xTrue));
  const RealVector x = luSolve(a, std::span<const Real>(b));
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xTrue[i], 1e-9);
}

TEST_P(DenseLuSizes, TransposedSolveMatchesExplicitTranspose) {
  const size_t n = GetParam();
  Rng rng(142 + n);
  const RealMatrix a = randomMatrix(n, rng);
  RealVector b(n);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  DenseLU<Real> lu(a);
  const RealVector x1 = lu.solveTransposed(b);
  const RealVector x2 = luSolve(transpose(a), std::span<const Real>(b));
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DenseLuSizes,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 40));

TEST(DenseLu, ComplexSolve) {
  Rng rng(7);
  const size_t n = 6;
  CplxMatrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j)
      a(i, j) = Cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
    a(i, i) += 3.0;
  }
  CplxVector xTrue(n);
  for (auto& v : xTrue) v = Cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
  const CplxVector b = matvec(a, std::span<const Cplx>(xTrue));
  const CplxVector x = luSolve(a, std::span<const Cplx>(b));
  for (size_t i = 0; i < n; ++i) EXPECT_LT(std::abs(x[i] - xTrue[i]), 1e-10);
}

TEST(DenseLu, ComplexTransposedSolve) {
  Rng rng(17);
  const size_t n = 5;
  CplxMatrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j)
      a(i, j) = Cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
    a(i, i) += 3.0;
  }
  CplxVector b(n);
  for (auto& v : b) v = Cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
  DenseLU<Cplx> lu(a);
  const CplxVector x1 = lu.solveTransposed(b);
  const CplxVector x2 = luSolve(transpose(a), std::span<const Cplx>(b));
  for (size_t i = 0; i < n; ++i) EXPECT_LT(std::abs(x1[i] - x2[i]), 1e-10);
}

TEST(DenseLu, ThrowsOnSingular) {
  RealMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_THROW(DenseLU<Real>{a}, NumericalError);
}

TEST(DenseLu, PivotsZeroDiagonal) {
  // MNA-style matrix with a zero diagonal entry that needs pivoting.
  RealMatrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const RealVector b{3.0, 4.0};
  const RealVector x = luSolve(a, std::span<const Real>(b));
  EXPECT_NEAR(x[0], 4.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(DenseLu, InverseTimesMatrixIsIdentity) {
  Rng rng(3);
  const RealMatrix a = randomMatrix(7, rng);
  const RealMatrix ainv = inverse(a);
  const RealMatrix prod = matmul(a, ainv);
  EXPECT_LT(maxAbsDiff(prod, RealMatrix::identity(7)), 1e-9);
}

// ------------------------------------------------------------ sparse LU

class SparseLuSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(SparseLuSizes, MatchesDenseOnRandomSparseSystem) {
  const size_t n = GetParam();
  Rng rng(1000 + n);
  // Random sparse-ish matrix with guaranteed nonzero diagonal.
  RealMatrix dense(n, n);
  for (size_t i = 0; i < n; ++i) {
    dense(i, i) = rng.uniform(1.0, 3.0);
    for (size_t k = 0; k < 3; ++k) {
      const auto j = static_cast<size_t>(rng.uniform(0.0, 1.0) * n);
      if (j < n && j != i) dense(i, j) = rng.uniform(-1.0, 1.0);
    }
  }
  RealVector xTrue(n);
  for (auto& v : xTrue) v = rng.uniform(-2.0, 2.0);
  const RealVector b = matvec(dense, std::span<const Real>(xTrue));

  const auto sparse = RealSparse::fromDense(dense);
  SparseLU<Real> lu(sparse);
  const RealVector x = lu.solve(b);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xTrue[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SparseLuSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128));

TEST(SparseMatrix, TripletsSumDuplicates) {
  std::vector<Triplet<Real>> trips{{0, 0, 1.0}, {0, 0, 2.0}, {1, 0, -1.0}};
  const auto m = RealSparse::fromTriplets(2, 2, trips);
  EXPECT_EQ(m.nonZeros(), 2u);
  EXPECT_DOUBLE_EQ(m.toDense()(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.toDense()(1, 0), -1.0);
}

TEST(SparseMatrix, MultiplyMatchesDense) {
  Rng rng(5);
  RealMatrix dense(4, 4);
  dense(0, 0) = 2;
  dense(1, 2) = -1;
  dense(3, 1) = 4;
  dense(2, 2) = 1;
  const auto sp = RealSparse::fromDense(dense);
  RealVector x{1, 2, 3, 4};
  const auto y1 = sp.multiply(x);
  const auto y2 = matvec(dense, std::span<const Real>(x));
  for (size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(y1[i], y2[i]);
}

TEST(SparseLu, ThrowsOnSingular) {
  RealMatrix dense(2, 2);
  dense(0, 0) = 1.0;  // second row all zero
  const auto sp = RealSparse::fromDense(dense);
  EXPECT_THROW(SparseLU<Real>{sp}, NumericalError);
}

TEST(SparseMatrix, FindLocatesPatternSlots) {
  std::vector<Triplet<Real>> trips{{0, 0, 1.0}, {2, 0, -1.0}, {1, 1, 2.0}};
  auto m = RealSparse::fromTriplets(3, 3, trips);
  ASSERT_NE(m.find(2, 0), nullptr);
  EXPECT_DOUBLE_EQ(*m.find(2, 0), -1.0);
  EXPECT_EQ(m.find(1, 0), nullptr);   // not in pattern
  EXPECT_EQ(m.find(-1, 0), nullptr);  // ground
  *m.find(1, 1) += 0.5;
  EXPECT_DOUBLE_EQ(m.toDense()(1, 1), 2.5);
  m.zeroValues();
  EXPECT_EQ(m.nonZeros(), 3u);  // pattern kept
  EXPECT_DOUBLE_EQ(m.toDense()(0, 0), 0.0);
}

// Returns a random sparse matrix with the same pattern for every `salt`,
// so refactor() sees identical structure with fresh values.
RealSparse patternedRandom(size_t n, uint64_t seed, uint64_t salt) {
  Rng pat(seed);
  std::vector<std::pair<int, int>> positions;
  for (size_t i = 0; i < n; ++i) {
    positions.emplace_back(static_cast<int>(i), static_cast<int>(i));
    for (size_t k = 0; k < 3; ++k) {
      const auto j = static_cast<size_t>(pat.uniform(0.0, 1.0) * n);
      if (j < n && j != i) {
        positions.emplace_back(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  Rng val(seed * 7919 + salt);
  std::vector<Triplet<Real>> trips;
  for (auto [i, j] : positions) {
    trips.push_back({i, j, i == j ? val.uniform(2.0, 4.0)
                                  : val.uniform(-1.0, 1.0)});
  }
  return RealSparse::fromTriplets(n, n, trips);
}

TEST(SparseLu, RefactorMatchesFullFactor) {
  const size_t n = 40;
  SparseLU<Real> lu(patternedRandom(n, 3, 0));
  for (uint64_t salt = 1; salt <= 4; ++salt) {
    const auto a = patternedRandom(n, 3, salt);
    ASSERT_TRUE(lu.refactor(a));
    RealVector xTrue(n);
    Rng rng(100 + salt);
    for (auto& v : xTrue) v = rng.uniform(-2.0, 2.0);
    const RealVector b = a.multiply(xTrue);
    const RealVector x = lu.solve(b);
    for (size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xTrue[i], 1e-8);
  }
}

TEST(SparseLu, RefactorRejectsCollapsedPivot) {
  // Factor a well-conditioned matrix, then refactor with values that drive
  // the kept pivot to zero: refactor must decline rather than divide by ~0.
  std::vector<Triplet<Real>> good{{0, 0, 4.0}, {1, 1, 3.0}, {0, 1, 1.0}};
  SparseLU<Real> lu(RealSparse::fromTriplets(2, 2, good));
  std::vector<Triplet<Real>> bad{{0, 0, 0.0}, {1, 1, 3.0}, {0, 1, 1.0}};
  EXPECT_FALSE(lu.refactor(RealSparse::fromTriplets(2, 2, bad)));
  EXPECT_FALSE(lu.factored());
  // A full factor restores the solver.
  lu.factor(RealSparse::fromTriplets(2, 2, good));
  EXPECT_TRUE(lu.factored());
}

TEST(SparseLu, RefactorDeclinesAfterFailedFactor) {
  // A factor() that throws mid-build leaves a partial factorization; a
  // subsequent refactor() must refuse to replay it even when the matrix
  // has the same size and nonzero count (the pre-guard cases).
  const size_t n = 8;
  const auto good = patternedRandom(n, 5, 0);
  SparseLU<Real> lu(good);
  // Same pattern as `good`, but one column numerically all-zero: factor()
  // throws partway through with internal state half-built.
  auto poisoned = good;
  {
    const auto ptr = poisoned.colPointers();
    auto vals = poisoned.values();
    for (int k = ptr[3]; k < ptr[4]; ++k) vals[k] = 0.0;
  }
  EXPECT_THROW(lu.factor(poisoned), NumericalError);
  EXPECT_FALSE(lu.factored());
  EXPECT_FALSE(lu.refactor(good));
  lu.factor(good);
  EXPECT_TRUE(lu.factored());
}

TEST(SparseLu, MultiRhsSolveMatchesScatteredSolves) {
  const size_t n = 24;
  const size_t nrhs = 7;
  const auto a = patternedRandom(n, 11, 0);
  SparseLU<Real> lu(a);
  Rng rng(99);
  RealVector batch(n * nrhs);
  for (auto& v : batch) v = rng.uniform(-1.0, 1.0);
  std::vector<RealVector> singles;
  for (size_t r = 0; r < nrhs; ++r) {
    singles.push_back(lu.solve(
        std::span<const Real>(batch.data() + r * n, n)));
  }
  lu.solveManyInPlace(batch, nrhs);
  for (size_t r = 0; r < nrhs; ++r) {
    for (size_t i = 0; i < n; ++i) {
      EXPECT_DOUBLE_EQ(batch[r * n + i], singles[r][i]);
    }
  }
}

TEST(SparseLu, TransposedSolveRecoversKnownSolution) {
  // b = A^T x for a known x; the transposed solve (used by the adjoint
  // LPTV and PPV sweeps) must recover x through the kept L/U pattern,
  // including after a refactor with fresh values.
  const size_t n = 32;
  SparseLU<Real> lu(patternedRandom(n, 17, 0));
  for (uint64_t salt = 0; salt <= 2; ++salt) {
    const auto a = patternedRandom(n, 17, salt);
    if (salt > 0) ASSERT_TRUE(lu.refactor(a));
    RealVector xTrue(n);
    Rng rng(300 + salt);
    for (auto& v : xTrue) v = rng.uniform(-2.0, 2.0);
    const RealVector b =
        matvecT(a.toDense(), std::span<const Real>(xTrue));
    const RealVector x = lu.solveTransposed(b);
    for (size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xTrue[i], 1e-8);
  }
}

TEST(SparseLu, TransposedSolveComplexIsPlainTranspose) {
  // Complex transposed solve must use A^T (not A^H), matching DenseLU.
  const size_t n = 12;
  const auto ar = patternedRandom(n, 23, 0);
  CplxMatrix ac(n, n);
  {
    const auto d = ar.toDense();
    for (size_t i = 0; i < n; ++i)
      for (size_t j = 0; j < n; ++j)
        ac(i, j) = Cplx(d(i, j), 0.1 * d(j, i));
  }
  const auto asp = CplxSparse::fromDense(ac);
  SparseLU<Cplx> lu(asp);
  Rng rng(7);
  CplxVector xTrue(n);
  for (auto& v : xTrue) v = Cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
  const CplxVector b = matvecT(ac, std::span<const Cplx>(xTrue));
  const CplxVector x = lu.solveTransposed(b);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_LT(std::abs(x[i] - xTrue[i]), 1e-9);
  }
}

TEST(SparseLu, TransposedMultiRhsMatchesScatteredSolves) {
  const size_t n = 24;
  const size_t nrhs = 6;
  const auto a = patternedRandom(n, 29, 0);
  SparseLU<Real> lu(a);
  Rng rng(123);
  RealVector batch(n * nrhs);
  for (auto& v : batch) v = rng.uniform(-1.0, 1.0);
  std::vector<RealVector> singles;
  for (size_t r = 0; r < nrhs; ++r) {
    singles.push_back(lu.solveTransposed(
        std::span<const Real>(batch.data() + r * n, n)));
  }
  lu.solveTransposedManyInPlace(batch, nrhs);
  for (size_t r = 0; r < nrhs; ++r) {
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(batch[r * n + i], singles[r][i], 1e-12);
    }
  }
}

// ----------------------------------------------------- orderings / AMD

// Asserts `order` is a permutation of 0..n-1.
void expectValidPermutation(const std::vector<int>& order, size_t n) {
  ASSERT_EQ(order.size(), n);
  std::vector<char> seen(n, 0);
  for (int v : order) {
    ASSERT_GE(v, 0);
    ASSERT_LT(static_cast<size_t>(v), n);
    EXPECT_FALSE(seen[v]) << "column " << v << " appears twice";
    seen[v] = 1;
  }
}

size_t factorNnz(const RealSparse& a, OrderingKind kind) {
  SparseLU<Real> lu(a, 0.1, kind);
  return lu.factorNonZeros();
}

// Arrow matrix with the dense hub FIRST: the worst case for the natural
// order (eliminating the hub first fills the whole matrix) and the
// canonical win for any minimum-degree strategy.
RealSparse arrowMatrix(size_t n) {
  std::vector<Triplet<Real>> t;
  for (size_t i = 0; i < n; ++i) {
    t.push_back({static_cast<int>(i), static_cast<int>(i), 4.0});
    if (i > 0) {
      t.push_back({0, static_cast<int>(i), 1.0});
      t.push_back({static_cast<int>(i), 0, 1.0});
    }
  }
  return RealSparse::fromTriplets(n, n, t);
}

RealSparse bandedMatrix(size_t n, int band) {
  std::vector<Triplet<Real>> t;
  for (int i = 0; i < static_cast<int>(n); ++i) {
    for (int j = std::max(0, i - band);
         j <= std::min(static_cast<int>(n) - 1, i + band); ++j) {
      t.push_back({i, j, i == j ? 4.0 : -0.5});
    }
  }
  return RealSparse::fromTriplets(n, n, t);
}

// Cycle ("ring") plus diagonal: minimum fill is n-3 edges; natural order
// builds an arrow against the wrap-around link.
RealSparse ringMatrix(size_t n) {
  std::vector<Triplet<Real>> t;
  for (int i = 0; i < static_cast<int>(n); ++i) {
    const int next = (i + 1) % static_cast<int>(n);
    t.push_back({i, i, 4.0});
    t.push_back({i, next, -1.0});
    t.push_back({next, i, -1.0});
  }
  return RealSparse::fromTriplets(n, n, t);
}

// 2D five-point grid: every interior column has the same count, so the
// static degree sort degenerates to (nearly) the natural band order while
// AMD finds a nested-dissection-like elimination.
RealSparse gridMatrix(int k) {
  const int n = k * k;
  auto id = [&](int r, int c) { return r * k + c; };
  std::vector<Triplet<Real>> t;
  for (int r = 0; r < k; ++r) {
    for (int c = 0; c < k; ++c) {
      t.push_back({id(r, c), id(r, c), 4.0});
      if (r + 1 < k) {
        t.push_back({id(r, c), id(r + 1, c), -1.0});
        t.push_back({id(r + 1, c), id(r, c), -1.0});
      }
      if (c + 1 < k) {
        t.push_back({id(r, c), id(r, c + 1), -1.0});
        t.push_back({id(r, c + 1), id(r, c), -1.0});
      }
    }
  }
  return RealSparse::fromTriplets(n, n, t);
}

TEST(AmdOrdering, ProducesValidPermutations) {
  for (const auto& a :
       {arrowMatrix(40), bandedMatrix(50, 3), ringMatrix(33), gridMatrix(7),
        patternedRandom(64, 11, 0)}) {
    expectValidPermutation(amdOrder(a.rows(), a.colPointers(), a.rowIndices()),
                           a.rows());
  }
}

TEST(AmdOrdering, HandlesDegenerateInputs) {
  expectValidPermutation(amdOrder(0, std::vector<int>{0}, {}), 0);
  // Diagonal-only matrix: every node is isolated.
  std::vector<Triplet<Real>> t;
  for (int i = 0; i < 5; ++i) t.push_back({i, i, 1.0});
  const auto d = RealSparse::fromTriplets(5, 5, t);
  expectValidPermutation(amdOrder(5, d.colPointers(), d.rowIndices()), 5);
}

TEST(AmdOrdering, ArrowMatrixEliminatesHubLast) {
  const auto a = arrowMatrix(60);
  const size_t amd = factorNnz(a, OrderingKind::kAmd);
  // Hub last -> zero fill: nnz(L+U) equals nnz(A).
  EXPECT_EQ(amd, a.nonZeros());
  EXPECT_LE(amd, factorNnz(a, OrderingKind::kDegree));
  EXPECT_LT(amd, factorNnz(a, OrderingKind::kNatural));
}

TEST(AmdOrdering, BandedMatrixStaysBanded) {
  const auto a = bandedMatrix(64, 2);
  const size_t amd = factorNnz(a, OrderingKind::kAmd);
  EXPECT_LE(amd, factorNnz(a, OrderingKind::kDegree));
  // The natural order is optimal on a band; AMD must not blow it up.
  EXPECT_LE(amd, 2 * factorNnz(a, OrderingKind::kNatural));
}

TEST(AmdOrdering, RingMatrixMatchesMinimumFill) {
  const size_t n = 48;
  const auto a = ringMatrix(n);
  const size_t amd = factorNnz(a, OrderingKind::kAmd);
  EXPECT_LE(amd, factorNnz(a, OrderingKind::kDegree));
  // Minimum fill of a cycle is n-3 edges (2 entries each in L+U).
  EXPECT_LE(amd, a.nonZeros() + 2 * (n - 3));
}

TEST(AmdOrdering, GridBeatsStaticDegreeOrdering) {
  const auto a = gridMatrix(12);  // 144 unknowns
  EXPECT_LT(factorNnz(a, OrderingKind::kAmd),
            factorNnz(a, OrderingKind::kDegree));
}

TEST(AmdOrdering, FactorSolvesAndRefactorsCorrectly) {
  const size_t n = 50;
  SparseLU<Real> lu(patternedRandom(n, 77, 0), 0.1, OrderingKind::kAmd);
  for (uint64_t salt = 1; salt <= 3; ++salt) {
    const auto a = patternedRandom(n, 77, salt);
    ASSERT_TRUE(lu.refactor(a)) << "refactor after AMD ordering";
    RealVector xTrue(n);
    Rng rng(200 + salt);
    for (auto& v : xTrue) v = rng.uniform(-2.0, 2.0);
    const RealVector b = a.multiply(xTrue);
    const RealVector x = lu.solve(b);
    for (size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xTrue[i], 1e-8);
    // Transposed solve against the same AMD-ordered factorization.
    const RealVector bt = [&] {
      RealVector y(n, 0.0);
      const auto ptr = a.colPointers();
      const auto idx = a.rowIndices();
      const auto val = a.values();
      for (size_t j = 0; j < n; ++j) {
        for (int p = ptr[j]; p < ptr[j + 1]; ++p) {
          y[j] += val[p] * xTrue[idx[p]];  // y = A^T xTrue
        }
      }
      return y;
    }();
    const RealVector xt = lu.solveTransposed(bt);
    for (size_t i = 0; i < n; ++i) EXPECT_NEAR(xt[i], xTrue[i], 1e-8);
  }
}

TEST(AmdOrdering, ComplexFactorMatchesDense) {
  const size_t n = 30;
  const auto ar = patternedRandom(n, 55, 0);
  std::vector<Triplet<Cplx>> t;
  const auto ptr = ar.colPointers();
  const auto idx = ar.rowIndices();
  const auto val = ar.values();
  for (int j = 0; j < static_cast<int>(n); ++j) {
    for (int p = ptr[j]; p < ptr[j + 1]; ++p) {
      t.push_back({idx[p], j, Cplx(val[p], idx[p] == j ? 0.3 : 0.1)});
    }
  }
  const auto a = CplxSparse::fromTriplets(n, n, t);
  SparseLU<Cplx> lu(a, 0.1, OrderingKind::kAmd);
  CplxVector xTrue(n);
  for (size_t i = 0; i < n; ++i) {
    xTrue[i] = Cplx(std::sin(0.3 * static_cast<Real>(i)),
                    std::cos(0.7 * static_cast<Real>(i)));
  }
  const CplxVector b = a.multiply(xTrue);
  const CplxVector x = lu.solve(b);
  for (size_t i = 0; i < n; ++i) EXPECT_LT(std::abs(x[i] - xTrue[i]), 1e-8);
}

TEST(DenseLu, MultiRhsSolveMatchesScatteredSolves) {
  const size_t n = 9;
  const size_t nrhs = 4;
  Rng rng(21);
  const DenseLU<Real> lu(randomMatrix(n, rng));
  RealVector batch(n * nrhs);
  for (auto& v : batch) v = rng.uniform(-1.0, 1.0);
  std::vector<RealVector> singles;
  for (size_t r = 0; r < nrhs; ++r) {
    singles.push_back(lu.solve(
        std::span<const Real>(batch.data() + r * n, n)));
  }
  lu.solveManyInPlace(batch, nrhs);
  for (size_t r = 0; r < nrhs; ++r) {
    for (size_t i = 0; i < n; ++i) {
      EXPECT_DOUBLE_EQ(batch[r * n + i], singles[r][i]);
    }
  }
}

// ------------------------------------------------------------- cholesky

TEST(Cholesky, ReconstructsCovariance) {
  Rng rng(11);
  const size_t n = 5;
  RealMatrix b = randomMatrix(n, rng, 0.5);
  RealMatrix c(n, n);
  // C = B B^T is symmetric PSD.
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) {
      Real acc = 0;
      for (size_t k = 0; k < n; ++k) acc += b(i, k) * b(j, k);
      c(i, j) = acc;
    }
  const RealMatrix a = choleskyFactor(c);
  RealMatrix recon(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) {
      Real acc = 0;
      for (size_t k = 0; k < n; ++k) acc += a(i, k) * a(j, k);
      recon(i, j) = acc;
    }
  EXPECT_LT(maxAbsDiff(recon, c), 1e-9);
}

TEST(Cholesky, AcceptsSemiDefinitePerfectCorrelation) {
  RealMatrix c(2, 2);
  c(0, 0) = 1.0;
  c(0, 1) = 1.0;
  c(1, 0) = 1.0;
  c(1, 1) = 1.0;
  const RealMatrix a = choleskyFactor(c);
  EXPECT_NEAR(a(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(a(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(a(1, 1), 0.0, 1e-6);
}

TEST(Cholesky, RejectsIndefinite) {
  RealMatrix c(2, 2);
  c(0, 0) = 1.0;
  c(0, 1) = 2.0;
  c(1, 0) = 2.0;
  c(1, 1) = 1.0;  // eigenvalues 3, -1
  EXPECT_THROW(choleskyFactor(c), NumericalError);
}

TEST(Cholesky, RejectsAsymmetric) {
  RealMatrix c(2, 2);
  c(0, 0) = 1.0;
  c(0, 1) = 0.5;
  c(1, 0) = 0.1;
  c(1, 1) = 1.0;
  EXPECT_THROW(choleskyFactor(c), Error);
}

// -------------------------------------------------------------- fourier

TEST(Fourier, RecoversSingleTone) {
  const int m = 64;
  RealVector x(m);
  const Real amp = 1.7, phase = 0.6;
  for (int k = 0; k < m; ++k) {
    x[k] = amp * std::cos(2.0 * std::numbers::pi * 3.0 * k / m + phase);
  }
  const Cplx c3 = fourierCoefficient(x, 3);
  EXPECT_NEAR(2.0 * std::abs(c3), amp, 1e-12);
  EXPECT_NEAR(std::arg(c3), phase, 1e-12);
  EXPECT_NEAR(std::abs(fourierCoefficient(x, 1)), 0.0, 1e-12);
  EXPECT_NEAR(harmonicAmplitude(x, 3), amp, 1e-12);
}

TEST(Fourier, DcCoefficientIsMean) {
  RealVector x{1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(fourierCoefficient(x, 0).real(), 2.5, 1e-14);
  EXPECT_NEAR(fourierCoefficient(x, 0).imag(), 0.0, 1e-14);
}

TEST(Fourier, EvalReconstructsSamples) {
  const int m = 32;
  RealVector x(m);
  for (int k = 0; k < m; ++k) {
    const Real u = static_cast<Real>(k) / m;
    x[k] = 0.4 + std::sin(2 * std::numbers::pi * u) -
           0.3 * std::cos(2 * std::numbers::pi * 2 * u);
  }
  const auto coeffs = fourierCoefficients(x, 8);
  for (int k = 0; k < m; ++k) {
    EXPECT_NEAR(fourierEval(coeffs, static_cast<Real>(k) / m), x[k], 1e-10);
  }
}

// ------------------------------------------------------------ statistics

TEST(Moments, MatchesClosedFormOnSmallSet) {
  MomentAccumulator acc;
  for (Real v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // unbiased
}

TEST(Moments, GaussianSampleStatistics) {
  Rng rng(123);
  MomentAccumulator acc;
  const Real mu = 3.0, sd = 2.0;
  for (int i = 0; i < 200000; ++i) acc.add(rng.gaussian(mu, sd));
  EXPECT_NEAR(acc.mean(), mu, 0.02);
  EXPECT_NEAR(acc.stddev(), sd, 0.02);
  EXPECT_NEAR(acc.skewness(), 0.0, 0.03);
}

TEST(Moments, SkewedDistributionHasPositiveSkew) {
  Rng rng(9);
  MomentAccumulator acc;
  for (int i = 0; i < 100000; ++i) {
    const Real g = rng.gaussian();
    acc.add(g * g);  // chi-square(1), skewness 2*sqrt(2)
  }
  EXPECT_NEAR(acc.skewness(), 2.0 * std::sqrt(2.0), 0.15);
  EXPECT_GT(acc.normalizedSkewness(), 0.0);
}

TEST(Moments, MergeEqualsSequential) {
  Rng rng(77);
  MomentAccumulator all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const Real v = rng.uniform(-1, 5);
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_NEAR(a.skewness(), all.skewness(), 1e-9);
}

TEST(Correlation, RecoverKnownCorrelation) {
  Rng rng(55);
  const Real rho = 0.7;
  CorrelationAccumulator acc;
  for (int i = 0; i < 200000; ++i) {
    const Real x = rng.gaussian();
    const Real y = rho * x + std::sqrt(1 - rho * rho) * rng.gaussian();
    acc.add(x, y);
  }
  EXPECT_NEAR(acc.correlation(), rho, 0.01);
}

TEST(Statistics, ConfidenceMatchesPaperNumbers) {
  // Paper SS VI: 1000-point MC -> +-4.5%, 10000-point -> +-1.4%.
  EXPECT_NEAR(sigmaConfidence95(1000), 0.044, 0.002);
  EXPECT_NEAR(sigmaConfidence95(10000), 0.014, 0.001);
}

TEST(Rng, DeterministicPerSampleStreams) {
  Rng a = Rng::forSample(1, 7);
  Rng b = Rng::forSample(1, 7);
  Rng c = Rng::forSample(1, 8);
  const Real va = a.gaussian();
  EXPECT_DOUBLE_EQ(va, b.gaussian());
  EXPECT_NE(va, c.gaussian());
}

// ------------------------------------------------------------ interp/units

TEST(Interp, LinearInterpolation) {
  RealVector xs{0.0, 1.0, 2.0};
  RealVector ys{0.0, 10.0, 0.0};
  EXPECT_DOUBLE_EQ(interpLinear(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interpLinear(xs, ys, 1.5), 5.0);
  EXPECT_DOUBLE_EQ(interpLinear(xs, ys, -1.0), 0.0);  // clamps
  EXPECT_DOUBLE_EQ(interpLinear(xs, ys, 3.0), 0.0);
}

TEST(Interp, CrossingPoint) {
  EXPECT_DOUBLE_EQ(crossingPoint(0.0, 0.0, 1.0, 2.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(crossingPoint(2.0, 1.0, 4.0, -1.0, 0.0), 3.0);
}

TEST(Units, ParsesSuffixes) {
  EXPECT_DOUBLE_EQ(*parseSpiceNumber("10p"), 1e-11);
  EXPECT_DOUBLE_EQ(*parseSpiceNumber("3.3k"), 3300.0);
  EXPECT_DOUBLE_EQ(*parseSpiceNumber("2MEG"), 2e6);
  EXPECT_DOUBLE_EQ(*parseSpiceNumber("2m"), 2e-3);
  EXPECT_DOUBLE_EQ(*parseSpiceNumber("1.5u"), 1.5e-6);
  EXPECT_DOUBLE_EQ(*parseSpiceNumber("100n"), 1e-7);
  EXPECT_DOUBLE_EQ(*parseSpiceNumber("4f"), 4e-15);
  EXPECT_DOUBLE_EQ(*parseSpiceNumber("7"), 7.0);
  EXPECT_DOUBLE_EQ(*parseSpiceNumber("10pF"), 1e-11);
  EXPECT_FALSE(parseSpiceNumber("volt").has_value());
}

TEST(Units, FormatsEngineering) {
  EXPECT_EQ(formatEng(0.0287, 3), "28.7m");
  EXPECT_EQ(formatEng(1.25e9, 3), "1.25G");
}

}  // namespace
}  // namespace psmn
