// Telemetry subsystem tests — the three promises docs/architecture.md's
// "Observability" section makes:
//   1. Telemetry never feeds back: engine outputs are bit-identical with a
//      registry bound and without, for every jobs count.
//   2. Registry counter totals are deterministic across jobs counts and
//      steal schedules (slot placement varies, sums never do).
//   3. SolveStats counters have pinned, documented semantics, and trace
//      spans stay well-formed (properly nested per slot) under exceptions
//      and sweep retries.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "circuit/stdcell.hpp"
#include "engine/dc.hpp"
#include "engine/transient.hpp"
#include "runtime/scenario_sweep.hpp"
#include "runtime/thread_pool.hpp"
#include "util/telemetry.hpp"

namespace psmn {
namespace {

// ------------------------------------------------------------- fixtures

std::unique_ptr<Netlist> makeRcNetlist() {
  auto nl = std::make_unique<Netlist>();
  const NodeId top = nl->node("top");
  const NodeId mid = nl->node("mid");
  nl->add<VSource>("V1", top, kGround,
                   SourceWave::pulse(0.0, 2.0, 1e-9, 0.5e-9, 0.5e-9, 6e-9,
                                     20e-9),
                   *nl);
  nl->add<Resistor>("R1", top, mid, 1e3, *nl, /*sigma=*/10.0);
  nl->add<Resistor>("R2", mid, kGround, 1e3, *nl, /*sigma=*/10.0);
  nl->add<Capacitor>("C1", mid, kGround, 1e-12, *nl);
  return nl;
}

std::unique_ptr<Netlist> makeChainNetlist(Real cLoad) {
  auto nl = std::make_unique<Netlist>();
  const ProcessKit kit = ProcessKit::cmos130();
  InverterChainOptions copt;
  copt.stages = 4;
  copt.cLoad = cLoad;
  buildInverterChain(*nl, kit, copt);
  return nl;
}

std::vector<SweepScenario> chainScenarios(int n) {
  std::vector<SweepScenario> scenarios;
  for (int i = 0; i < n; ++i) {
    SweepScenario sc;
    sc.name = "cload_" + std::to_string(i);
    const Real cLoad = 2e-15 * (i + 1);
    sc.make = [cLoad] { return makeChainNetlist(cLoad); };
    sc.analysis = SweepAnalysis::kTransient;
    sc.outNode = "ch4";
    sc.t0 = 0.0;
    sc.t1 = 2e-9;
    sc.dt = 20e-12;
    scenarios.push_back(std::move(sc));
  }
  return scenarios;
}

std::vector<SweepResult> sweepWithTelemetry(
    const std::vector<SweepScenario>& scenarios, size_t jobs,
    TelemetryRegistry* reg) {
  ThreadPool pool(jobs);
  if (reg != nullptr) {
    pool.attachTelemetry(reg);
    TelemetryScope scope(*reg, 0);
    return runScenarioSweep(scenarios, pool);
  }
  return runScenarioSweep(scenarios, pool);
}

// ------------------------------------------------------ probe mechanics

TEST(Telemetry, UnboundProbesAreNoops) {
  EXPECT_FALSE(telemetryBound());
  telemetryCount(Counter::kMnaEvals);  // must not crash, must not record
  EXPECT_FALSE(telemetryBound());
}

TEST(Telemetry, ScopesNestAndRestoreLikeFaultScope) {
  TelemetryRegistry outer(1), inner(1);
  {
    TelemetryScope so(outer, 0);
    EXPECT_TRUE(telemetryBound());
    telemetryCount(Counter::kMnaEvals);
    {
      TelemetryScope si(inner, 0);
      telemetryCount(Counter::kMnaEvals, 2);
    }
    telemetryCount(Counter::kMnaEvals);  // back on `outer`
  }
  EXPECT_FALSE(telemetryBound());
  EXPECT_EQ(outer.counterTotal(Counter::kMnaEvals), 2u);
  EXPECT_EQ(inner.counterTotal(Counter::kMnaEvals), 2u);
}

TEST(Telemetry, OutOfRangeSlotClampsToLastSlot) {
  TelemetryRegistry reg(2);
  TelemetryScope scope(reg, 99);
  telemetryCount(Counter::kMnaEvals);
  EXPECT_EQ(reg.counterTotal(Counter::kMnaEvals), 1u);
}

TEST(Telemetry, CounterAndPhaseNamesAreStable) {
  // The metrics-JSON keys are part of the CI contract
  // (scripts/check_run_report.py, scripts/check_bench_trend.py).
  EXPECT_STREQ(counterName(Counter::kNewtonIterations), "newton_iterations");
  EXPECT_STREQ(counterName(Counter::kFactorNnzTotal), "factor_nnz_total");
  EXPECT_STREQ(counterName(Counter::kScenarioRetries), "scenario_retries");
  EXPECT_STREQ(phaseName(Phase::kTransient), "transient");
  EXPECT_STREQ(phaseName(Phase::kScenario), "scenario");
}

// ---------------------------------------------------- SolveStats pinning

TEST(SolveStats, TransientCountersSatisfyTheKernelInvariants) {
  // integrateStep does exactly one eval, one factor-or-refactor, and one
  // solve per Newton iteration, so those four counters are locked together;
  // `steps` counts accepted steps of the fixed-grid run.
  auto nl = makeRcNetlist();
  nl->finalize();
  MnaSystem sys(*nl);
  const Real dt = 20e-12, t1 = 2e-9;
  const TransientResult tr = runTransient(sys, 0.0, t1, dt, {});

  const uint64_t expectSteps = static_cast<uint64_t>(std::llround(t1 / dt));
  EXPECT_EQ(tr.stats.steps, expectSteps);
  EXPECT_EQ(tr.stats.evals, tr.stats.newtonIterations);
  EXPECT_EQ(tr.stats.solves, tr.stats.newtonIterations);
  EXPECT_EQ(tr.stats.totalFactorizations(), tr.stats.newtonIterations);
  // Every step needs at least one iteration; the linear RC needs few.
  EXPECT_GE(tr.stats.newtonIterations, tr.stats.steps);
  EXPECT_LE(tr.stats.newtonIterations, 4 * tr.stats.steps);
}

TEST(SolveStats, SparseTransientReusesThePatternAndReportsFactorNnz) {
  auto nl = makeChainNetlist(4e-15);
  nl->finalize();
  MnaSystem sys(*nl);
  TranOptions opt;
  opt.solver = LinearSolverKind::kSparse;
  const TransientResult tr = runTransient(sys, 0.0, 2e-9, 20e-12, opt);
  // One symbolic factorization, everything else rides the pivot sequence.
  EXPECT_EQ(tr.stats.factorizations, 1u);
  EXPECT_EQ(tr.stats.refactorizations, tr.stats.newtonIterations - 1);
  EXPECT_GT(tr.stats.factorNnz, 0u);
}

TEST(SolveStats, DcStatsCountAllLadderIterations) {
  auto nl = makeChainNetlist(4e-15);
  nl->finalize();
  MnaSystem sys(*nl);
  const DcResult dc = solveDc(sys);
  EXPECT_GE(dc.stats.newtonIterations, 1u);
  EXPECT_EQ(dc.stats.evals, dc.stats.newtonIterations);
  EXPECT_EQ(dc.stats.solves, dc.stats.newtonIterations);
  EXPECT_EQ(dc.stats.totalFactorizations(), dc.stats.newtonIterations);
  EXPECT_EQ(dc.stats.steps, 0u);
}

TEST(SolveStats, AddAndSinceComposeAndTreatFactorNnzAsALevel) {
  SolveStats a;
  a.newtonIterations = 3;
  a.factorNnz = 100;
  SolveStats b;
  b.newtonIterations = 4;
  b.factorNnz = 0;  // dense leg: must not clobber the sparse level
  SolveStats sum = a;
  sum.add(b);
  EXPECT_EQ(sum.newtonIterations, 7u);
  EXPECT_EQ(sum.factorNnz, 100u);

  SolveStats now = a;
  now.newtonIterations = 10;
  now.factorNnz = 120;
  const SolveStats d = SolveStats::since(a, now);
  EXPECT_EQ(d.newtonIterations, 7u);
  EXPECT_EQ(d.factorNnz, 120u);  // the latest level, not a delta
}

// ------------------------------------- determinism across jobs and on/off

TEST(Telemetry, ResultsBitIdenticalWithTelemetryOnAndOffAcrossJobs) {
  const auto scenarios = chainScenarios(6);
  const auto baseline = sweepWithTelemetry(scenarios, 1, nullptr);

  for (const size_t jobs : {size_t{1}, size_t{2}, size_t{8}}) {
    TelemetryRegistry::Options opt;
    opt.collectEvents = true;
    opt.detail = TraceDetail::kStep;
    TelemetryRegistry reg(jobs, opt);
    const auto traced = sweepWithTelemetry(scenarios, jobs, &reg);
    ASSERT_EQ(traced.size(), baseline.size());
    for (size_t i = 0; i < baseline.size(); ++i) {
      ASSERT_TRUE(traced[i].ok) << traced[i].error;
      ASSERT_EQ(traced[i].waveform.size(), baseline[i].waveform.size());
      for (size_t k = 0; k < baseline[i].waveform.size(); ++k) {
        EXPECT_EQ(traced[i].waveform[k], baseline[i].waveform[k]);
      }
      // Per-result stats are maintained on the evaluating slot and must
      // not depend on the registry or the schedule either.
      EXPECT_EQ(traced[i].stats, baseline[i].stats);
    }
  }
}

TEST(Telemetry, CounterTotalsDeterministicAcrossJobsCounts) {
  const auto scenarios = chainScenarios(6);
  TelemetryRegistry::Totals ref{};
  std::vector<SweepResult> refResults;
  bool first = true;
  for (const size_t jobs : {size_t{1}, size_t{2}, size_t{8}}) {
    TelemetryRegistry reg(jobs);
    const auto results = sweepWithTelemetry(scenarios, jobs, &reg);
    const auto totals = reg.totals();
    if (first) {
      ref = totals;
      refResults = results;
      first = false;
    } else {
      EXPECT_EQ(totals.counters, ref.counters) << "jobs=" << jobs;
    }
    // Cross-check registry counters against the per-result stats: accepted
    // steps are only counted in the transient kernel, so the probe total
    // must equal the sum the engines reported result-side.
    uint64_t steps = 0;
    for (const auto& r : results) steps += r.stats.steps;
    EXPECT_EQ(reg.counterTotal(Counter::kStepsAccepted), steps);
    EXPECT_EQ(reg.counterTotal(Counter::kScenariosRun), scenarios.size());
    EXPECT_EQ(reg.counterTotal(Counter::kScenarioRetries), 0u);
    // The registry's Newton total also covers each scenario's internal DC
    // operating-point solve, which result-side transient stats exclude.
    uint64_t newton = 0;
    for (const auto& r : results) newton += r.stats.newtonIterations;
    EXPECT_GT(reg.counterTotal(Counter::kNewtonIterations), newton);
  }
}

// ------------------------------------------------------------ trace spans

// Spans on one slot must be properly nested: any two are either disjoint
// or one contains the other. Chrome trace viewers render overlapping
// non-nested "X" events on one track as garbage.
void expectWellFormedNesting(const std::vector<TraceEvent>& events) {
  for (size_t i = 0; i < events.size(); ++i) {
    for (size_t j = i + 1; j < events.size(); ++j) {
      const TraceEvent& a = events[i];
      const TraceEvent& b = events[j];
      if (a.slot != b.slot) continue;
      const int64_t aEnd = a.startNs + a.durNs;
      const int64_t bEnd = b.startNs + b.durNs;
      const bool disjoint = aEnd <= b.startNs || bEnd <= a.startNs;
      const bool aInB = b.startNs <= a.startNs && aEnd <= bEnd;
      const bool bInA = a.startNs <= b.startNs && bEnd <= aEnd;
      EXPECT_TRUE(disjoint || aInB || bInA)
          << a.name << " [" << a.startNs << "," << aEnd << ") vs " << b.name
          << " [" << b.startNs << "," << bEnd << ") on slot " << a.slot;
    }
  }
}

TEST(TraceSpans, WellFormedUnderFaultInjectedRetries) {
  // One scenario fails its first attempt and recovers on the retry: the
  // armed fault suppresses transient Newton acceptances for exactly the
  // first attempt's budget, so attempt 1 exhausts maxNewton and throws
  // through the open step spans — whose destructors must still close them
  // correctly — and the retry (doubled budget) converges.
  auto scenarios = chainScenarios(4);
  scenarios[1].faults.arm("tran.newton.converge", 0,
                          scenarios[1].tran.maxNewton);
  scenarios[1].retry.maxRetries = 2;

  TelemetryRegistry::Options opt;
  opt.collectEvents = true;
  opt.detail = TraceDetail::kStep;
  TelemetryRegistry reg(2, opt);
  const auto results = sweepWithTelemetry(scenarios, 2, &reg);

  ASSERT_TRUE(results[1].ok) << results[1].error;
  EXPECT_TRUE(results[1].recovered);
  EXPECT_GT(results[1].attempts, 1);
  EXPECT_GE(reg.counterTotal(Counter::kScenarioRetries), 1u);

  const auto events = reg.events();
  ASSERT_FALSE(events.empty());
  expectWellFormedNesting(events);
  // Every scenario contributes exactly one labelled scenario span (it
  // covers all of that scenario's attempts).
  size_t scenarioSpans = 0;
  bool sawLabel = false;
  for (const TraceEvent& ev : events) {
    ASSERT_NE(ev.name, nullptr);
    EXPECT_GE(ev.durNs, 0);
    if (ev.phase == Phase::kScenario) {
      ++scenarioSpans;
      if (ev.arg == "cload_1") sawLabel = true;
    }
  }
  EXPECT_EQ(scenarioSpans, scenarios.size());
  EXPECT_TRUE(sawLabel);
}

TEST(TraceSpans, DetailLevelGatesStepAndKernelSpans) {
  auto nl = makeRcNetlist();
  nl->finalize();

  const auto runWithDetail = [&](TraceDetail d) {
    TelemetryRegistry::Options opt;
    opt.collectEvents = true;
    opt.detail = d;
    TelemetryRegistry reg(1, opt);
    {
      TelemetryScope scope(reg, 0);
      MnaSystem sys(*nl);
      runTransient(sys, 0.0, 2e-9, 20e-12, {});
    }
    return reg.events();
  };

  const auto hasName = [](const std::vector<TraceEvent>& evs,
                          const char* name) {
    return std::any_of(evs.begin(), evs.end(), [&](const TraceEvent& e) {
      return std::string_view(e.name) == name;
    });
  };

  const auto phaseOnly = runWithDetail(TraceDetail::kPhase);
  EXPECT_TRUE(hasName(phaseOnly, "transient"));
  EXPECT_FALSE(hasName(phaseOnly, "tran_step"));
  EXPECT_FALSE(hasName(phaseOnly, "newton_iter"));

  const auto stepLevel = runWithDetail(TraceDetail::kStep);
  EXPECT_TRUE(hasName(stepLevel, "tran_step"));
  EXPECT_FALSE(hasName(stepLevel, "newton_iter"));

  const auto kernelLevel = runWithDetail(TraceDetail::kKernel);
  EXPECT_TRUE(hasName(kernelLevel, "tran_step"));
  EXPECT_TRUE(hasName(kernelLevel, "newton_iter"));
  expectWellFormedNesting(kernelLevel);
}

}  // namespace
}  // namespace psmn
