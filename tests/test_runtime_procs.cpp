// Multi-process sweep robustness: the wire/frame layers under
// truncation and corruption, and the coordinator's crash-tolerance
// contract — a worker killed mid-shard (injected "worker.exit" SIGKILL),
// a corrupted result frame ("ipc.frame"), a hung worker (inactivity
// timeout), and a worker binary that cannot start must all degrade into
// per-scenario SweepResult data with FailureDiagnostics, bounded
// retries, and input-order completion — never a lost or hung sweep.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "runtime/ipc.hpp"
#include "runtime/process_sweep.hpp"
#include "util/wire.hpp"

namespace psmn {
namespace {

// ------------------------------------------------------------ wire layer

TEST(Wire, PrimitivesRoundTrip) {
  WireWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.i32(-42);
  w.boolean(true);
  w.str("hello");
  w.f64vec(std::vector<double>{1.5, -2.25, 0.0});
  w.u64vec(std::vector<uint64_t>{7, 8});
  w.strvec({"a", "", "bc"});

  WireReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), "hello");
  const RealVector v = r.f64vec();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1.5);
  EXPECT_EQ(v[1], -2.25);
  EXPECT_EQ(v[2], 0.0);
  EXPECT_EQ(r.u64vec(), (std::vector<uint64_t>{7, 8}));
  EXPECT_EQ(r.strvec(), (std::vector<std::string>{"a", "", "bc"}));
  EXPECT_TRUE(r.atEnd());
}

TEST(Wire, DoublesRoundTripBitExactly) {
  // The cross-topology byte-identity guarantee rides on this: NaN
  // payloads, signed zeros, denormals, and infinities must all survive.
  const double values[] = {0.0,
                           -0.0,
                           1.0 / 3.0,
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::denorm_min(),
                           -1.7976931348623157e308};
  WireWriter w;
  for (double v : values) w.f64(v);
  WireReader r(w.bytes());
  for (double v : values) {
    const double got = r.f64();
    EXPECT_EQ(std::memcmp(&got, &v, sizeof v), 0) << v;
  }
}

TEST(Wire, TruncatedPayloadThrowsInsteadOfReadingGarbage) {
  WireWriter w;
  w.u64(12345);
  const std::string bytes = w.bytes();
  WireReader r(std::string_view(bytes).substr(0, 5));
  EXPECT_THROW(r.u64(), Error);
}

TEST(Wire, CorruptLengthPrefixCannotDriveAHugeAllocation) {
  // A length prefix claiming more elements than bytes remain must throw
  // (bounded by remaining()), not attempt a multi-GB vector.
  WireWriter w;
  w.u64(std::numeric_limits<uint64_t>::max());
  WireReader r(w.bytes());
  EXPECT_THROW(r.str(), Error);
}

TEST(Wire, UtilCodecsRoundTrip) {
  SolveStats s;
  s.newtonIterations = 11;
  s.steps = 22;
  s.factorizations = 3;
  s.refactorizations = 19;
  s.solves = 44;
  s.evals = 55;
  s.factorNnz = 1234;

  FailureDiagnostics d;
  d.analysis = "transient";
  d.stage = "newton";
  d.rung = 2;
  d.iteration = 17;
  d.residual = 3.5e-4;
  d.time = 1.25e-9;
  d.hasTime = true;
  d.suspectNodes = {"out", "mid"};
  d.injectedFault = "solver.factor";

  FaultPlan p;
  p.points.push_back(FaultPoint{"worker.exit", 1, 2});
  p.points.push_back(FaultPoint{"ipc.frame", 0, -1});

  WireWriter w;
  wireWrite(w, s);
  wireWrite(w, d);
  wireWrite(w, p);

  WireReader r(w.bytes());
  SolveStats s2;
  FailureDiagnostics d2;
  FaultPlan p2;
  wireRead(r, s2);
  wireRead(r, d2);
  wireRead(r, p2);
  EXPECT_TRUE(r.atEnd());

  EXPECT_EQ(s2.newtonIterations, s.newtonIterations);
  EXPECT_EQ(s2.steps, s.steps);
  EXPECT_EQ(s2.factorizations, s.factorizations);
  EXPECT_EQ(s2.refactorizations, s.refactorizations);
  EXPECT_EQ(s2.solves, s.solves);
  EXPECT_EQ(s2.evals, s.evals);
  EXPECT_EQ(s2.factorNnz, s.factorNnz);

  EXPECT_EQ(d2.analysis, d.analysis);
  EXPECT_EQ(d2.stage, d.stage);
  EXPECT_EQ(d2.rung, d.rung);
  EXPECT_EQ(d2.iteration, d.iteration);
  EXPECT_EQ(d2.residual, d.residual);
  EXPECT_EQ(d2.time, d.time);
  EXPECT_EQ(d2.hasTime, d.hasTime);
  EXPECT_EQ(d2.suspectNodes, d.suspectNodes);
  EXPECT_EQ(d2.injectedFault, d.injectedFault);

  ASSERT_EQ(p2.points.size(), 2u);
  EXPECT_EQ(p2.points[0].site, "worker.exit");
  EXPECT_EQ(p2.points[0].firstHit, 1);
  EXPECT_EQ(p2.points[0].count, 2);
  EXPECT_EQ(p2.points[1].site, "ipc.frame");
  EXPECT_EQ(p2.points[1].count, -1);
}

// ----------------------------------------------------------- frame layer

TEST(IpcFrame, RoundTripsThroughTheParser) {
  const std::string frame = buildFrame(7, "payload bytes");
  FrameParser parser;
  parser.feed(frame.data(), frame.size());
  uint32_t type = 0;
  std::string payload;
  ASSERT_EQ(parser.next(type, payload), FrameParser::Status::kFrame);
  EXPECT_EQ(type, 7u);
  EXPECT_EQ(payload, "payload bytes");
  EXPECT_EQ(parser.next(type, payload), FrameParser::Status::kNeedMore);
}

TEST(IpcFrame, ReassemblesFromSingleByteFeeds) {
  const std::string a = buildFrame(1, "first");
  const std::string b = buildFrame(2, "second");
  const std::string stream = a + b;
  FrameParser parser;
  uint32_t type = 0;
  std::string payload;
  std::vector<std::pair<uint32_t, std::string>> got;
  for (char c : stream) {
    parser.feed(&c, 1);
    while (parser.next(type, payload) == FrameParser::Status::kFrame) {
      got.emplace_back(type, payload);
    }
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (std::pair<uint32_t, std::string>{1, "first"}));
  EXPECT_EQ(got[1], (std::pair<uint32_t, std::string>{2, "second"}));
}

TEST(IpcFrame, ChecksumFlipAndBadMagicAreStickyCorrupt) {
  std::string frame = buildFrame(3, "data");
  frame[frame.size() - 1] ^= 0x01;  // payload bit flip vs stored checksum
  FrameParser parser;
  parser.feed(frame.data(), frame.size());
  uint32_t type = 0;
  std::string payload;
  EXPECT_EQ(parser.next(type, payload), FrameParser::Status::kCorrupt);
  // Sticky by design: feeding good bytes after corruption cannot
  // resynchronize a byte stream safely.
  const std::string good = buildFrame(3, "data");
  parser.feed(good.data(), good.size());
  EXPECT_EQ(parser.next(type, payload), FrameParser::Status::kCorrupt);

  FrameParser parser2;
  std::string bad = buildFrame(3, "data");
  bad[0] ^= 0xff;  // magic
  parser2.feed(bad.data(), bad.size());
  EXPECT_EQ(parser2.next(type, payload), FrameParser::Status::kCorrupt);
}

TEST(IpcFrame, ForceCorruptBuildsAFrameTheParserRejects) {
  const std::string frame = buildFrame(4, "xyz", /*forceCorrupt=*/true);
  FrameParser parser;
  parser.feed(frame.data(), frame.size());
  uint32_t type = 0;
  std::string payload;
  EXPECT_EQ(parser.next(type, payload), FrameParser::Status::kCorrupt);
}

// ------------------------------------------------- coordinator robustness

constexpr const char* kRcDeck = R"(* robustness deck
v1 top 0 pulse(0 2 1n 0.5n 0.5n 6n 20n)
r1 top mid 1k sigma=10
r2 mid 0 1k sigma=10
c1 mid 0 1p
)";

std::string siblingWorkerExe() {
  const std::string self = selfExecutablePath();
  return self.substr(0, self.find_last_of('/') + 1) + "psmn_sweep_worker";
}

std::vector<ProcessScenario> rcScenarios(int n, Real t1 = 20e-9,
                                         Real dt = 0.2e-9) {
  std::vector<ProcessScenario> scenarios;
  for (int k = 0; k < n; ++k) {
    ProcessScenario ps;
    ps.name = "mc" + std::to_string(k);
    ps.deckIndex = 0;
    ps.analysis = SweepAnalysis::kTransient;
    ps.outNode = "mid";
    ps.t1 = t1;
    ps.dt = dt;
    ps.applyMismatch = true;
    ps.seed = 3;
    ps.sampleIndex = size_t(k);
    ps.retry.maxRetries = 2;
    scenarios.push_back(std::move(ps));
  }
  return scenarios;
}

ProcessSweepOptions workerOptions(size_t procs) {
  ProcessSweepOptions opt;
  opt.procs = procs;
  opt.jobsPerWorker = 1;
  opt.workerExe = siblingWorkerExe();
  return opt;
}

TEST(ProcessSweepRobustness, SigkilledWorkerMidShardRecoversInOrder) {
  const auto scenarios = rcScenarios(4);
  const std::vector<std::string> decks = {kRcDeck};

  ProcessSweepOptions opt = workerOptions(1);
  FaultPoint fp;
  fp.site = "worker.exit";
  fp.firstHit = 2;  // SIGKILL before the third result write
  fp.count = 1;
  opt.workerFaults.points.push_back(fp);

  size_t progressCalls = 0;
  const auto results = runProcessSweep(
      decks, scenarios, opt, nullptr,
      [&](const SweepResult&) { ++progressCalls; });

  ASSERT_EQ(results.size(), scenarios.size());
  EXPECT_EQ(progressCalls, scenarios.size());
  size_t recovered = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);  // merged back in input order
    EXPECT_EQ(results[i].name, scenarios[i].name);
    ASSERT_TRUE(results[i].ok) << i << ": " << results[i].error;
    EXPECT_TRUE(results[i].hasCounters) << i;
    if (results[i].recovered) {
      ++recovered;
      EXPECT_GE(results[i].attempts, 2) << i;
    }
  }
  // Exactly one scenario was outstanding when the worker died: the
  // respawn re-ran it (the second spawn's fault ordinal never reaches 2
  // with only the remainder left, so no further kill fires).
  EXPECT_EQ(recovered, 1u);
}

TEST(ProcessSweepRobustness, CorruptResultFrameRecoversViaRespawn) {
  const auto scenarios = rcScenarios(4);
  const std::vector<std::string> decks = {kRcDeck};

  ProcessSweepOptions opt = workerOptions(1);
  FaultPoint fp;
  fp.site = "ipc.frame";
  // Corrupt the THIRD result frame's checksum: the respawn then holds
  // only two scenarios, whose write ordinals (0, 1) never reach the
  // fault again — exactly one recovery.
  fp.firstHit = 2;
  fp.count = 1;
  opt.workerFaults.points.push_back(fp);

  const auto results = runProcessSweep(decks, scenarios, opt);
  ASSERT_EQ(results.size(), scenarios.size());
  size_t recovered = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
    ASSERT_TRUE(results[i].ok) << i << ": " << results[i].error;
    if (results[i].recovered) ++recovered;
  }
  EXPECT_EQ(recovered, 1u);
}

TEST(ProcessSweepRobustness, CrashPastRetryBudgetFailsAsDataWithDiagnostics) {
  // Every result write dies (count = -1) and the budget is zero: every
  // scenario must come back as a FAILED SweepResult with process-sweep
  // diagnostics — never an exception, never a hang, still input order.
  auto scenarios = rcScenarios(3);
  for (auto& ps : scenarios) ps.retry.maxRetries = 0;
  const std::vector<std::string> decks = {kRcDeck};

  ProcessSweepOptions opt = workerOptions(1);
  FaultPoint fp;
  fp.site = "worker.exit";
  fp.firstHit = 0;
  fp.count = -1;
  opt.workerFaults.points.push_back(fp);

  const auto results = runProcessSweep(decks, scenarios, opt);
  ASSERT_EQ(results.size(), scenarios.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
    EXPECT_EQ(results[i].name, scenarios[i].name);
    EXPECT_FALSE(results[i].ok) << i;
    EXPECT_NE(results[i].error.find("worker failure"), std::string::npos)
        << results[i].error;
    ASSERT_TRUE(results[i].hasDiagnostics) << i;
    EXPECT_EQ(results[i].diagnostics.analysis, "process-sweep");
    EXPECT_FALSE(results[i].diagnostics.stage.empty());
  }
}

TEST(ProcessSweepRobustness, UnstartableWorkerFailsShardFastNotBudgetSlow) {
  // /bin/false exits immediately without speaking the protocol. The
  // maxSpawnsWithoutProgress fast path must fail the whole shard after a
  // few spawns even though each scenario's own retry budget is large.
  auto scenarios = rcScenarios(6);
  for (auto& ps : scenarios) ps.retry.maxRetries = 50;
  const std::vector<std::string> decks = {kRcDeck};

  ProcessSweepOptions opt = workerOptions(1);
  opt.workerExe = "/bin/false";
  opt.maxSpawnsWithoutProgress = 3;

  const auto results = runProcessSweep(decks, scenarios, opt);
  ASSERT_EQ(results.size(), scenarios.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_FALSE(results[i].ok) << i;
    EXPECT_NE(results[i].error.find("worker"), std::string::npos)
        << results[i].error;
    EXPECT_TRUE(results[i].hasDiagnostics) << i;
  }
}

TEST(ProcessSweepRobustness, InactivityTimeoutKillsAHungWorker) {
  // One scenario whose transient is far slower than the inactivity
  // window, budget zero: the parent must kill the worker and fail the
  // scenario as data instead of waiting forever.
  auto scenarios = rcScenarios(1, /*t1=*/2e-6, /*dt=*/1e-12);
  scenarios[0].retry.maxRetries = 0;
  scenarios[0].tran.storeStates = false;
  const std::vector<std::string> decks = {kRcDeck};

  ProcessSweepOptions opt = workerOptions(1);
  opt.inactivityTimeout = 0.2;

  const auto results = runProcessSweep(decks, scenarios, opt);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_NE(results[0].error.find("inactivity timeout"), std::string::npos)
      << results[0].error;
  ASSERT_TRUE(results[0].hasDiagnostics);
  EXPECT_EQ(results[0].diagnostics.analysis, "process-sweep");
}

TEST(ProcessSweepRobustness, UnsupportedAnalysisIsRejectedUpFront) {
  auto scenarios = rcScenarios(1);
  scenarios[0].analysis = SweepAnalysis::kPssDriven;
  const std::vector<std::string> decks = {kRcDeck};
  EXPECT_THROW(
      runProcessSweep(decks, scenarios, workerOptions(1)), Error);
}

TEST(ProcessSweepRobustness, EmptyScenarioListIsANoop) {
  const std::vector<std::string> decks = {kRcDeck};
  const auto results =
      runProcessSweep(decks, std::vector<ProcessScenario>{}, workerOptions(2));
  EXPECT_TRUE(results.empty());
}

}  // namespace
}  // namespace psmn
