// RF-layer tests: shooting PSS (driven and autonomous), the LPTV solver
// (degenerate-LTI checks, adjoint == direct), PNOISE readouts, PPV.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "circuit/diode.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "circuit/stdcell.hpp"
#include "engine/ac.hpp"
#include "engine/dc.hpp"
#include "engine/noise.hpp"
#include "engine/transient.hpp"
#include "meas/measure.hpp"
#include "rf/lptv.hpp"
#include "rf/pnoise.hpp"
#include "rf/ppv.hpp"
#include "rf/pss.hpp"
#include "rf/timedomain_noise.hpp"

namespace psmn {
namespace {

constexpr Real kPi = std::numbers::pi_v<Real>;

// Shared fixture circuit: RC lowpass driven by a sine, R has mismatch.
struct RcSineCircuit {
  Netlist nl;
  MnaSystem* sys = nullptr;
  int outIdx = -1;
  Resistor* r1 = nullptr;
  Real freq = 1e6;
  Real r = 1e3, c = 20e-12;  // pole well above drive: partial attenuation

  RcSineCircuit() {
    const NodeId in = nl.node("in");
    const NodeId out = nl.node("out");
    nl.add<VSource>("V1", in, kGround, SourceWave::sine(0.5, 0.4, freq), nl);
    r1 = &nl.add<Resistor>("R1", in, out, r, nl, /*sigma=*/10.0);
    nl.add<Capacitor>("C1", out, kGround, c, nl);
    sys = new MnaSystem(nl);
    outIdx = nl.nodeIndex(out);
  }
  ~RcSineCircuit() { delete sys; }
};

TEST(PssDriven, LinearRcMatchesAcAnalysis) {
  RcSineCircuit ckt;
  PssOptions opt;
  opt.stepsPerPeriod = 2000;  // BE is O(h); fine grid for the comparison
  const PssResult pss = solvePssDriven(*ckt.sys, 1.0 / ckt.freq, opt);

  // Shooting on a linear circuit converges in very few iterations.
  EXPECT_LE(pss.shootingIterations, 3);
  // Periodicity.
  for (size_t i = 0; i < ckt.sys->size(); ++i) {
    EXPECT_NEAR(pss.states.front()[i], pss.states.back()[i], 1e-8);
  }
  // Fundamental matches the AC solution within the BE discretization error.
  const Cplx x1 = pss.fourier(ckt.outIdx, 1);
  const Cplx hExpected =
      1.0 / Cplx(1.0, 2 * kPi * ckt.freq * ckt.r * ckt.c);
  // Drive: 0.5 + 0.4 sin(wt) -> fundamental coefficient of sin is
  // 0.4 * (1/(2j)) at +1 harmonic.
  const Cplx drive1 = 0.4 / Cplx(0.0, 2.0);
  EXPECT_LT(std::abs(x1 - hExpected * drive1), 2e-3);
  // DC component: 0.5 passes straight through.
  EXPECT_NEAR(pss.fourier(ckt.outIdx, 0).real(), 0.5, 1e-4);
}

TEST(PssDriven, MonodromyOfRcIsExpMinusToverTau) {
  RcSineCircuit ckt;
  PssOptions opt;
  opt.stepsPerPeriod = 400;
  const PssResult pss = solvePssDriven(*ckt.sys, 1.0 / ckt.freq, opt);
  // The only dynamic state is v(out); its Floquet multiplier is the BE
  // discretization of exp(-T/tau): (1 + h/tau)^-M.
  const Real tau = ckt.r * ckt.c;
  const Real h = pss.stepSize();
  const Real expected =
      std::pow(1.0 + h / tau, -static_cast<Real>(pss.stepCount()));
  EXPECT_NEAR(pss.monodromy(ckt.outIdx, ckt.outIdx), expected,
              1e-6 * expected + 1e-12);
}

TEST(PssDriven, DiodeRectifierReachesPeriodicState) {
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add<VSource>("V1", in, kGround, SourceWave::sine(0.0, 1.0, 1e6), nl);
  nl.add<Diode>("D1", in, out, DiodeModel{}, nl);
  nl.add<Resistor>("RL", out, kGround, 10e3, nl);
  nl.add<Capacitor>("CL", out, kGround, 100e-12, nl);
  MnaSystem sys(nl);
  PssOptions opt;
  opt.stepsPerPeriod = 600;
  opt.warmupCycles = 2;
  const PssResult pss = solvePssDriven(sys, 1e-6, opt);
  for (size_t i = 0; i < sys.size(); ++i) {
    EXPECT_NEAR(pss.states.front()[i], pss.states.back()[i], 1e-7);
  }
  // Rectified output: positive DC with small ripple.
  const Real vdc = pss.fourier(nl.nodeIndex(out), 0).real();
  EXPECT_GT(vdc, 0.2);
  const Real ripple = 2.0 * std::abs(pss.fourier(nl.nodeIndex(out), 1));
  EXPECT_LT(ripple, 0.5 * vdc);
}

TEST(PssDriven, ShootingBeatsSlowSettlingTransient) {
  // High-Q-ish slow RC settling: tau >> T. Shooting needs a handful of
  // iterations where brute-force settling needs >> tau/T cycles.
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add<VSource>("V1", in, kGround, SourceWave::sine(1.0, 0.5, 1e6), nl);
  nl.add<Resistor>("R1", in, out, 100e3, nl);   // tau = 100 us = 100 T
  nl.add<Capacitor>("C1", out, kGround, 1e-9, nl);
  MnaSystem sys(nl);
  PssOptions opt;
  opt.stepsPerPeriod = 200;
  opt.warmupCycles = 0;
  const PssResult pss = solvePssDriven(sys, 1e-6, opt);
  EXPECT_LE(pss.shootingIterations, 3);
  EXPECT_NEAR(pss.fourier(nl.nodeIndex(out), 0).real(), 1.0, 1e-3);
}

// ------------------------------------------------------------- LPTV / LTI

TEST(Lptv, DegeneratesToAcTransferOnLtiCircuit) {
  // For an LTI circuit the LPTV envelope is constant and equals the AC
  // transfer at the offset frequency; all N != 0 harmonics vanish.
  RcSineCircuit ckt;
  PssOptions opt;
  opt.stepsPerPeriod = 400;
  const PssResult pss = solvePssDriven(*ckt.sys, 1.0 / ckt.freq, opt);
  LptvSolver solver(*ckt.sys, pss);
  const auto sources = ckt.sys->collectSources(true, false);
  ASSERT_EQ(sources.size(), 1u);

  const Real fOff = 1.0;
  const LptvSolution sol = solver.solveDirect(sources, fOff);

  // The resistor-mismatch source is NOT LTI (its modulation follows the
  // current through R1), so instead check via a dedicated LTI circuit: use
  // the sideband-0 response against the quasi-static sensitivity:
  // d v(out)/dR at DC bias = I_R/ ... here we only check harmonic
  // orthogonality of the envelope: the response must be dominated by the
  // N=0 and N=±1 terms that the modulation creates.
  const Cplx p0 = sol.harmonic(0, ckt.outIdx, 0);
  EXPECT_GT(std::abs(p0), 0.0);
}

TEST(Lptv, AdjointMatchesDirectAcrossHarmonics) {
  RcSineCircuit ckt;
  PssOptions opt;
  opt.stepsPerPeriod = 300;
  const PssResult pss = solvePssDriven(*ckt.sys, 1.0 / ckt.freq, opt);
  LptvSolver solver(*ckt.sys, pss);
  const auto sources = ckt.sys->collectSources(true, false);
  const LptvSolution direct = solver.solveDirect(sources, 1.0);
  for (int harmonic : {0, 1, 2, -1}) {
    const CplxVector adj =
        solver.solveAdjoint(sources, 1.0, ckt.outIdx, harmonic);
    for (size_t s = 0; s < sources.size(); ++s) {
      const Cplx d = direct.harmonic(s, ckt.outIdx, harmonic);
      EXPECT_LT(std::abs(adj[s] - d), 1e-9 + 1e-6 * std::abs(d))
          << "harmonic " << harmonic << " source " << s;
    }
  }
}

TEST(Lptv, AdjointMatchesDirectOnSwitchingCircuit) {
  // A genuinely time-varying circuit: CMOS inverter driven by a clock.
  auto kit = ProcessKit::cmos130();
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add<VSource>("VDD", vdd, kGround, SourceWave::dc(kit.vdd), nl);
  const Real period = 4e-9;
  nl.add<VSource>("VIN", in, kGround,
                  SourceWave::pulse(0.0, kit.vdd, 0.0, period / 20,
                                    period / 20, period * 0.45, period),
                  nl);
  addInverter(nl, "G1", in, out, vdd, kit, 0.6e-6, 1.2e-6);
  nl.add<Capacitor>("CL", out, kGround, 10e-15, nl);
  MnaSystem sys(nl);
  PssOptions opt;
  opt.stepsPerPeriod = 200;
  const PssResult pss = solvePssDriven(sys, period, opt);
  LptvSolver solver(sys, pss);
  const auto sources = sys.collectSources(true, false);
  ASSERT_EQ(sources.size(), 4u);
  const LptvSolution direct = solver.solveDirect(sources, 1.0);
  for (int harmonic : {0, 1}) {
    const CplxVector adj =
        solver.solveAdjoint(sources, 1.0, nl.nodeIndex(out), harmonic);
    for (size_t s = 0; s < sources.size(); ++s) {
      const Cplx d = direct.harmonic(s, nl.nodeIndex(out), harmonic);
      EXPECT_LT(std::abs(adj[s] - d), 1e-12 + 1e-6 * std::abs(d))
          << "harmonic " << harmonic << " source " << sources[s].name;
    }
  }
}

TEST(Lptv, BasebandEnvelopeIsQuasiStaticSensitivity) {
  // At a 1 Hz offset the envelope of a driven circuit equals the static
  // sensitivity of the PSS orbit to the parameter: verify against a
  // finite-difference re-shoot for the resistor mismatch.
  RcSineCircuit ckt;
  PssOptions opt;
  opt.stepsPerPeriod = 400;
  const PssResult pss = solvePssDriven(*ckt.sys, 1.0 / ckt.freq, opt);
  LptvSolver solver(*ckt.sys, pss);
  const auto sources = ckt.sys->collectSources(true, false);
  const LptvSolution sol = solver.solveDirect(sources, 1.0);

  const Real dr = 0.5;  // ohms
  ckt.r1->setMismatchDelta(0, dr);
  const PssResult pssP = solvePssDriven(*ckt.sys, 1.0 / ckt.freq, opt);
  ckt.r1->setMismatchDelta(0, -dr);
  const PssResult pssM = solvePssDriven(*ckt.sys, 1.0 / ckt.freq, opt);
  ckt.r1->setMismatchDelta(0, 0.0);

  for (size_t k = 0; k < pss.stepCount(); k += 37) {
    const Real fd = (pssP.states[k][ckt.outIdx] - pssM.states[k][ckt.outIdx]) /
                    (2.0 * dr);
    const Cplx env = sol.envelopes[0][k][ckt.outIdx];
    EXPECT_NEAR(env.real(), fd, 5e-3 * std::fabs(fd) + 1e-9) << "k=" << k;
    EXPECT_LT(std::fabs(env.imag()), 1e-2 * std::fabs(fd) + 1e-9);
  }
}

// --------------------------------------------------------------- PNOISE

TEST(Pnoise, BasebandVarianceMatchesDcSensitivityOnDivider) {
  // DC-driven divider: pnoise baseband at 1 Hz == DC-match variance.
  Netlist nl;
  const NodeId top = nl.node("top");
  const NodeId mid = nl.node("mid");
  nl.add<VSource>("V1", top, kGround, SourceWave::dc(2.0), nl);
  nl.add<Resistor>("R1", top, mid, 1e3, nl, 10.0);
  nl.add<Resistor>("R2", mid, kGround, 1e3, nl, 10.0);
  nl.add<Capacitor>("C1", mid, kGround, 1e-12, nl);
  // Small sine rider so the PSS has a genuine period.
  MnaSystem sys(nl);
  PssOptions opt;
  opt.stepsPerPeriod = 100;
  const PssResult pss = solvePssDriven(sys, 1e-6, opt);
  PnoiseOptions popt;
  PnoiseAnalysis pn(sys, pss, popt);
  pn.run();
  const PnoiseSideband sb = pn.sideband(nl.nodeIndex(mid), 0);
  // sigma_out = |dV/dR| * sigmaR * sqrt(2) = 0.5e-3 * 10 * 1.414 = 7.07e-3.
  const Real expected = 0.5e-3 * 10.0 * std::sqrt(2.0);
  EXPECT_NEAR(std::sqrt(sb.totalPsd), expected, 1e-3 * expected);
  // Both resistors contribute equally.
  ASSERT_EQ(sb.contribution.size(), 2u);
  EXPECT_NEAR(sb.contribution[0], sb.contribution[1],
              1e-6 * sb.contribution[0]);
}

TEST(Pnoise, RejectsOffsetTooCloseToFundamental) {
  RcSineCircuit ckt;
  PssOptions opt;
  opt.stepsPerPeriod = 100;
  const PssResult pss = solvePssDriven(*ckt.sys, 1.0 / ckt.freq, opt);
  PnoiseOptions popt;
  popt.offsetFreq = ckt.freq / 2.0;
  EXPECT_THROW(PnoiseAnalysis(*ckt.sys, pss, popt), Error);
}

TEST(Pnoise, StatisticalWaveformMatchesFdEnvelope) {
  RcSineCircuit ckt;
  PssOptions opt;
  opt.stepsPerPeriod = 200;
  const PssResult pss = solvePssDriven(*ckt.sys, 1.0 / ckt.freq, opt);
  PnoiseAnalysis pn(*ckt.sys, pss, PnoiseOptions{});
  pn.run();
  const StatisticalWaveform sw = statisticalWaveform(pn, ckt.outIdx);
  ASSERT_EQ(sw.sigma.size(), pss.stepCount());
  // sigma(t) = |dvout(t)/dR| * sigmaR; check at a few points by FD.
  const Real dr = 0.5;
  ckt.r1->setMismatchDelta(0, dr);
  const PssResult pssP = solvePssDriven(*ckt.sys, 1.0 / ckt.freq, opt);
  ckt.r1->setMismatchDelta(0, -dr);
  const PssResult pssM = solvePssDriven(*ckt.sys, 1.0 / ckt.freq, opt);
  ckt.r1->setMismatchDelta(0, 0.0);
  for (size_t k = 0; k < pss.stepCount(); k += 29) {
    const Real fd = std::fabs(pssP.states[k][ckt.outIdx] -
                              pssM.states[k][ckt.outIdx]) /
                    (2.0 * dr) * 10.0;  // * sigmaR
    EXPECT_NEAR(sw.sigma[k], fd, 0.01 * fd + 1e-9) << "k=" << k;
  }
  // Envelope helpers.
  EXPECT_NEAR(sw.upper3()[5] - sw.nominal[5], 3.0 * sw.sigma[5], 1e-15);
}

// ----------------------------------------------------------- oscillator

struct RingFixture {
  Netlist nl;
  MnaSystem* sys = nullptr;
  RingOscillatorCircuit osc;
  int phaseIdx = -1;
  RealVector x0;
  Real periodGuess = 0.0;

  explicit RingFixture(Real mismatchScale = 1.0,
                       RingOscillatorOptions oopt = {}) {
    auto kit = ProcessKit::cmos130(mismatchScale);
    osc = buildRingOscillator(nl, kit, oopt);
    sys = new MnaSystem(nl);
    phaseIdx = nl.nodeIndex(osc.stages[0]);

    // Kick and free-run to estimate the period and land near the orbit.
    RealVector kick(sys->size(), 0.0);
    DcOptions dopt;
    kick = solveDc(*sys, dopt).x;
    for (size_t i = 0; i < osc.stages.size(); ++i) {
      kick[nl.nodeIndex(osc.stages[i])] += (i % 2 ? 0.25 : -0.25);
    }
    TranOptions topt;
    topt.method = IntegrationMethod::kBackwardEuler;
    topt.initialState = &kick;
    const TransientResult tr = runTransient(*sys, 0.0, 30e-9, 10e-12, topt);
    const Waveform w = makeWaveform(tr.times, tr.states, phaseIdx);
    periodGuess = measurePeriod(w, 0.6, 3);
    x0 = tr.finalState;
  }
  ~RingFixture() { delete sys; }
};

TEST(PssAutonomous, RingOscillatorConverges) {
  RingFixture ring;
  PssOptions opt;
  opt.stepsPerPeriod = 400;
  const PssResult pss =
      solvePssAutonomous(*ring.sys, ring.periodGuess, ring.phaseIdx, ring.x0,
                         opt);
  // Period close to the transient estimate (BE damping affects both
  // equally since the warmup used the same step size scale).
  EXPECT_NEAR(pss.period, ring.periodGuess, 0.05 * ring.periodGuess);
  // Periodicity.
  for (size_t i = 0; i < ring.sys->size(); ++i) {
    EXPECT_NEAR(pss.states.front()[i], pss.states.back()[i], 1e-7);
  }
  // Rail-to-rail-ish swing.
  const RealVector w = pss.waveform(ring.phaseIdx);
  const Real vmax = *std::max_element(w.begin(), w.end());
  const Real vmin = *std::min_element(w.begin(), w.end());
  EXPECT_GT(vmax, 1.0);
  EXPECT_LT(vmin, 0.2);
  // The monodromy of an oscillator has a Floquet multiplier at 1.
  // Power-check: det(I - Phi) ~ 0 -> (I - Phi) nearly singular. Use the
  // PPV residual instead (computed below in PpvTest).
}

TEST(PssAutonomous, FrequencySensitivityViaPnoiseMatchesReshoot) {
  // The headline oscillator check: eq. 9 frequency sensitivities from the
  // 1 Hz LPTV solve must match finite-difference re-shooting per parameter.
  RingFixture ring;
  PssOptions opt;
  opt.stepsPerPeriod = 300;
  const PssResult pss = solvePssAutonomous(*ring.sys, ring.periodGuess,
                                           ring.phaseIdx, ring.x0, opt);
  PnoiseAnalysis pn(*ring.sys, pss, PnoiseOptions{});
  pn.run();
  const PnoiseSideband sb = pn.sideband(ring.phaseIdx, 1);
  const auto& sources = pn.sources();
  const Cplx v1 = pss.fourier(ring.phaseIdx, 1);

  // Pick the first nmos dvt source and one dbeta source.
  for (size_t si : {size_t{0}, size_t{1}}) {
    const Real sPnoise = (sb.transfer[si] * sb.offsetFreq / v1).real();
    // FD re-shoot.
    Device* dev = sources[si].components[0].device;
    const size_t k = sources[si].components[0].index;
    const Real h = (k == 0) ? 2e-4 : 2e-3;
    dev->setMismatchDelta(k, h);
    const PssResult pssP = solvePssAutonomous(*ring.sys, pss.period,
                                              ring.phaseIdx, pss.states[0],
                                              opt);
    dev->setMismatchDelta(k, -h);
    const PssResult pssM = solvePssAutonomous(*ring.sys, pss.period,
                                              ring.phaseIdx, pss.states[0],
                                              opt);
    dev->setMismatchDelta(k, 0.0);
    const Real fd =
        (1.0 / pssP.period - 1.0 / pssM.period) / (2.0 * h);
    EXPECT_NEAR(sPnoise, fd, 0.03 * std::fabs(fd) + 1e-3)
        << sources[si].name;
  }
}

TEST(Ppv, FrequencySensitivityMatchesPnoiseReadout) {
  RingFixture ring;
  PssOptions opt;
  opt.stepsPerPeriod = 300;
  const PssResult pss = solvePssAutonomous(*ring.sys, ring.periodGuess,
                                           ring.phaseIdx, ring.x0, opt);
  const PpvResult ppv = computePpv(*ring.sys, pss);

  PnoiseAnalysis pn(*ring.sys, pss, PnoiseOptions{});
  pn.run();
  const PnoiseSideband sb = pn.sideband(ring.phaseIdx, 1);
  const Cplx v1 = pss.fourier(ring.phaseIdx, 1);
  const auto& sources = pn.sources();
  for (size_t si = 0; si < std::min<size_t>(4, sources.size()); ++si) {
    const Real fromPnoise = (sb.transfer[si] * sb.offsetFreq / v1).real();
    const Real fromPpv =
        ppv.frequencySensitivity(*ring.sys, pss, sources[si]);
    EXPECT_NEAR(fromPpv, fromPnoise,
                0.02 * std::fabs(fromPnoise) + 1e-3)
        << sources[si].name;
  }
}

TEST(Ppv, RequiresAutonomousResult) {
  RcSineCircuit ckt;
  PssOptions opt;
  opt.stepsPerPeriod = 100;
  const PssResult pss = solvePssDriven(*ckt.sys, 1.0 / ckt.freq, opt);
  EXPECT_THROW(computePpv(*ckt.sys, pss), Error);
}

}  // namespace
}  // namespace psmn
