// Scenario-batched evaluation tests (CTest label: batch).
//
// The contract under test (engine/batch_eval.hpp, docs/architecture.md
// "Batched evaluation"): batched stamps and full batched runs are
// BIT-IDENTICAL to the scalar path, which stays the oracle. Three tiers:
//   * stamp level — fdcheck::checkBatchedLanes sweeps every device class
//     with randomized per-lane draws: scalar-as-oracle bit-identity,
//     Richardson FD through a randomly chosen batch lane, and
//     lane-crosstalk (a perturbation in lane k never leaks into lane w);
//   * run level — runScenarioSweepBatched vs runScenarioSweep on MOSFET
//     chain and BJT op-amp fixtures, dense and sparse backends, pool jobs
//     1/2/8, including the failed-lane delegation to the scalar retry
//     ladder;
//   * engine level — MonteCarloEngine's batched path vs its scalar path,
//     plus the kBatchEvals / kBatchSymbolicReuse telemetry counters.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "circuit/bjt.hpp"
#include "circuit/bjt_opamp.hpp"
#include "circuit/controlled.hpp"
#include "circuit/diode.hpp"
#include "circuit/mosfet.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "circuit/stdcell.hpp"
#include "core/monte_carlo.hpp"
#include "engine/batch_eval.hpp"
#include "fd_check.hpp"
#include "runtime/scenario_sweep.hpp"
#include "runtime/thread_pool.hpp"

namespace psmn {
namespace {

// ------------------------------------------------ stamp-level (fd_check)

void expectBatchedLanesClean(Netlist& nl, size_t lanes = 5,
                             fdcheck::FdOptions opt = {}) {
  const auto failures = fdcheck::checkBatchedLanes(nl, lanes, opt);
  for (const auto& msg : failures) ADD_FAILURE() << msg;
  EXPECT_TRUE(failures.empty());
}

TEST(BatchStamps, PassivesAndIndependentSources) {
  Netlist nl;
  const NodeId a = nl.node("a"), b = nl.node("b"), c = nl.node("c");
  nl.add<Resistor>("R1", a, b, 1e3, nl, 50.0);
  nl.add<Capacitor>("C1", b, kGround, 1e-12, nl, 0.05e-12);
  nl.add<Inductor>("L1", b, c, 1e-6, nl, 0.02e-6);
  nl.add<VSource>("V1", a, kGround, SourceWave::dc(1.0), nl);
  nl.add<ISource>("I1", c, kGround, SourceWave::dc(1e-3), nl);
  expectBatchedLanesClean(nl);
}

TEST(BatchStamps, ControlledSources) {
  // No mismatch parameters: every lane must still reproduce the scalar
  // stamps bit for bit through the no-mismatch evalBatch overrides.
  Netlist nl;
  const NodeId in1 = nl.node("in1"), in2 = nl.node("in2");
  const NodeId o1 = nl.node("o1"), o2 = nl.node("o2"), o3 = nl.node("o3"),
               o4 = nl.node("o4");
  nl.add<Resistor>("Rt1", o1, kGround, 1e3, nl);
  nl.add<Resistor>("Rt2", o2, kGround, 1e3, nl);
  nl.add<Resistor>("Rt3", o3, kGround, 1e3, nl);
  nl.add<Resistor>("Rt4", o4, kGround, 1e3, nl);
  const int senseBranch = static_cast<int>(nl.nodeCount()) - 1;
  nl.add<VSource>("Vsense", in1, kGround, SourceWave::dc(0.0), nl);
  nl.add<Vcvs>("E1", o1, kGround, nl,
               std::vector<ControlTerm>{{nl.nodeIndex(in1), -1, 2.0},
                                        {nl.nodeIndex(in2), -1, -0.5}},
               0.1);
  nl.add<Vccs>("G1", o2, kGround, in1, in2, 1e-3, nl);
  nl.add<Ccvs>("H1", o3, kGround, senseBranch, 50.0, nl);
  nl.add<Cccs>("F1", o4, kGround, senseBranch, 3.0, nl);
  expectBatchedLanesClean(nl);
}

TEST(BatchStamps, DiodeWithJunctionCap) {
  Netlist nl;
  const NodeId a = nl.node("a"), c = nl.node("c");
  DiodeModel dm;
  dm.is = 1e-14;
  dm.n = 1.5;
  dm.cj0 = 2e-12;
  nl.add<Diode>("D1", a, c, dm, nl);
  nl.add<Resistor>("R1", a, kGround, 1e3, nl, 20.0);
  nl.add<Resistor>("R2", c, kGround, 1e3, nl, 20.0);
  expectBatchedLanesClean(nl);
}

std::shared_ptr<const MosModel> mosModel(bool pmos) {
  auto m = std::make_shared<MosModel>();
  m->pmos = pmos;
  m->lambda = 0.05;
  m->gamma = 0.4;
  return m;
}

TEST(BatchStamps, MosfetNmos) {
  Netlist nl;
  const NodeId d = nl.node("d"), g = nl.node("g"), s = nl.node("s"),
               b = nl.node("b");
  nl.add<Mosfet>("M1", d, g, s, b, mosModel(false), 2e-6, 0.13e-6, nl);
  nl.add<Resistor>("Rd", d, kGround, 1e4, nl);
  nl.add<Resistor>("Rs", s, kGround, 1e4, nl);
  expectBatchedLanesClean(nl);
}

TEST(BatchStamps, MosfetPmos) {
  Netlist nl;
  const NodeId d = nl.node("d"), g = nl.node("g"), s = nl.node("s"),
               b = nl.node("b");
  nl.add<Mosfet>("M1", d, g, s, b, mosModel(true), 2e-6, 0.13e-6, nl);
  nl.add<Resistor>("Rd", d, kGround, 1e4, nl);
  nl.add<Resistor>("Rs", s, kGround, 1e4, nl);
  expectBatchedLanesClean(nl);
}

std::shared_ptr<const BjtModel> bjtModel(bool pnp) {
  auto m = std::make_shared<BjtModel>();
  m->pnp = pnp;
  m->is = 5e-15;
  m->bf = 150.0;
  m->br = 4.0;
  m->vaf = 80.0;
  m->cje = 1e-12;
  m->cjc = 0.5e-12;
  m->tf = 0.4e-9;
  return m;
}

TEST(BatchStamps, BjtNpnAndPnp) {
  Netlist nl;
  const NodeId c = nl.node("c"), b = nl.node("b"), e = nl.node("e"),
               c2 = nl.node("c2"), e2 = nl.node("e2");
  nl.add<Bjt>("Q1", c, b, e, bjtModel(false), 1.0, nl);
  nl.add<Bjt>("Q2", c2, b, e2, bjtModel(true), 2.0, nl);
  nl.add<Resistor>("Rc", c, kGround, 1e4, nl);
  nl.add<Resistor>("Re", e, kGround, 1e4, nl);
  nl.add<Resistor>("Rc2", c2, kGround, 1e4, nl);
  nl.add<Resistor>("Re2", e2, kGround, 1e4, nl);
  expectBatchedLanesClean(nl);
}

TEST(BatchStamps, MixedDeviceNetlist) {
  // Everything at once: catches cross-device batched-walk issues (a view
  // pointed at the wrong SoA block, a stale lane mask) that the
  // per-family fixtures cannot.
  Netlist nl;
  const NodeId n1 = nl.node("n1"), n2 = nl.node("n2"), n3 = nl.node("n3"),
               n4 = nl.node("n4");
  nl.add<VSource>("V1", n1, kGround, SourceWave::dc(1.0), nl);
  nl.add<Resistor>("R1", n1, n2, 1e3, nl, 20.0);
  nl.add<Capacitor>("C1", n2, kGround, 1e-12, nl, 0.02e-12);
  nl.add<Mosfet>("M1", n3, n2, kGround, kGround, mosModel(false), 1e-6,
                 0.13e-6, nl);
  nl.add<Bjt>("Q1", n4, n3, kGround, bjtModel(false), 1.0, nl);
  nl.add<Diode>("D1", n4, kGround, DiodeModel{.is = 1e-14, .cj0 = 1e-12}, nl);
  nl.add<Inductor>("L1", n4, n1, 1e-6, nl, 0.01e-6);
  expectBatchedLanesClean(nl, /*lanes=*/8);
}

// --------------------------------------------------- run-level (sweeps)

std::unique_ptr<Netlist> makeChainNetlist() {
  auto nl = std::make_unique<Netlist>();
  const ProcessKit kit = ProcessKit::cmos130();
  InverterChainOptions copt;
  copt.stages = 4;
  copt.cLoad = 4e-15;
  buildInverterChain(*nl, kit, copt);
  return nl;
}

std::unique_ptr<Netlist> makeFollowerNetlist() {
  auto nl = std::make_unique<Netlist>();
  const BjtKit kit = BjtKit::bipolar5();
  BjtFollowerOptions fopt;
  fopt.tStep = 2e-9;
  fopt.tEdge = 1e-9;
  fopt.cLoad = 10e-12;
  buildBjtFollower(*nl, kit, fopt);
  return nl;
}

struct RunFixture {
  NetlistFactory make;
  std::string outNode;
  Real t1 = 0.0, dt = 0.0;
};

RunFixture chainFixture() {
  return {[] { return makeChainNetlist(); }, "ch4", 2e-9, 40e-12};
}

RunFixture followerFixture() {
  return {[] { return makeFollowerNetlist(); }, "out", 8e-9, 0.2e-9};
}

BatchSweepSpec specFor(const RunFixture& fx, size_t count, uint64_t seed,
                       LinearSolverKind solver) {
  BatchSweepSpec spec;
  spec.make = fx.make;
  spec.configure = [seed](Netlist& nl, size_t k) {
    applyMismatchSample(nl.mismatchParams(), nullptr, seed, k);
  };
  spec.count = count;
  spec.outNode = fx.outNode;
  spec.t1 = fx.t1;
  spec.dt = fx.dt;
  spec.tran.solver = solver;
  spec.retry.maxRetries = 2;
  spec.batch.enabled = true;
  spec.batch.lanes = 4;  // count=10 -> one ragged tail tile
  return spec;
}

/// The scalar oracle for `spec`: the same scenarios the batched driver
/// would delegate on failure, run through the plain sweep.
std::vector<SweepScenario> scalarScenarios(const BatchSweepSpec& spec) {
  std::vector<SweepScenario> scenarios;
  for (size_t k = 0; k < spec.count; ++k) {
    SweepScenario sc;
    sc.name = spec.namePrefix + std::to_string(k);
    sc.make = [make = spec.make, configure = spec.configure, k] {
      std::unique_ptr<Netlist> nl = make();
      nl->finalize();
      configure(*nl, k);
      return nl;
    };
    sc.analysis = SweepAnalysis::kTransient;
    sc.outNode = spec.outNode;
    sc.t0 = spec.t0;
    sc.t1 = spec.t1;
    sc.dt = spec.dt;
    sc.tran = spec.tran;
    sc.retry = spec.retry;
    scenarios.push_back(std::move(sc));
  }
  return scenarios;
}

void expectResultsBitIdentical(const std::vector<SweepResult>& a,
                               const std::vector<SweepResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index);
    EXPECT_EQ(a[i].name, b[i].name);
    ASSERT_EQ(a[i].ok, b[i].ok) << a[i].name << ": " << a[i].error << " vs "
                                << b[i].error;
    EXPECT_EQ(a[i].error, b[i].error);
    EXPECT_EQ(a[i].attempts, b[i].attempts);
    EXPECT_EQ(a[i].recovered, b[i].recovered);
    ASSERT_EQ(a[i].times.size(), b[i].times.size());
    for (size_t k = 0; k < a[i].times.size(); ++k) {
      EXPECT_EQ(a[i].times[k], b[i].times[k]) << a[i].name << " t[" << k
                                              << "]";
    }
    ASSERT_EQ(a[i].waveform.size(), b[i].waveform.size());
    for (size_t k = 0; k < a[i].waveform.size(); ++k) {
      EXPECT_EQ(a[i].waveform[k], b[i].waveform[k])
          << a[i].name << " waveform[" << k << "]";
    }
    ASSERT_EQ(a[i].finalState.size(), b[i].finalState.size());
    for (size_t k = 0; k < a[i].finalState.size(); ++k) {
      EXPECT_EQ(a[i].finalState[k], b[i].finalState[k])
          << a[i].name << " finalState[" << k << "]";
    }
    EXPECT_EQ(a[i].stats.steps, b[i].stats.steps) << a[i].name;
    EXPECT_EQ(a[i].stats.newtonIterations, b[i].stats.newtonIterations)
        << a[i].name;
  }
}

class BatchSweepIdentity
    : public ::testing::TestWithParam<LinearSolverKind> {};

TEST_P(BatchSweepIdentity, ChainMatchesScalarAcrossJobCounts) {
  const BatchSweepSpec spec =
      specFor(chainFixture(), /*count=*/10, /*seed=*/7, GetParam());
  const auto scenarios = scalarScenarios(spec);
  ThreadPool p1(1), p2(2), p8(8);
  const auto scalar = runScenarioSweep(scenarios, p1);
  const auto b1 = runScenarioSweepBatched(spec, p1);
  const auto b2 = runScenarioSweepBatched(spec, p2);
  const auto b8 = runScenarioSweepBatched(spec, p8);
  for (const auto& r : scalar) ASSERT_TRUE(r.ok) << r.name << ": " << r.error;
  expectResultsBitIdentical(scalar, b1);
  expectResultsBitIdentical(scalar, b2);
  expectResultsBitIdentical(scalar, b8);
}

TEST_P(BatchSweepIdentity, BjtFollowerMatchesScalar) {
  const BatchSweepSpec spec =
      specFor(followerFixture(), /*count=*/6, /*seed=*/3, GetParam());
  const auto scenarios = scalarScenarios(spec);
  ThreadPool p1(1), p2(2);
  const auto scalar = runScenarioSweep(scenarios, p1);
  const auto b2 = runScenarioSweepBatched(spec, p2);
  for (const auto& r : scalar) ASSERT_TRUE(r.ok) << r.name << ": " << r.error;
  expectResultsBitIdentical(scalar, b2);
}

INSTANTIATE_TEST_SUITE_P(Backends, BatchSweepIdentity,
                         ::testing::Values(LinearSolverKind::kDense,
                                           LinearSolverKind::kSparse),
                         [](const auto& info) {
                           return info.param == LinearSolverKind::kDense
                                      ? "dense"
                                      : "sparse";
                         });

TEST(BatchSweep, FailedLanesDelegateToScalarRetryLadder) {
  // A Newton budget of 1 cannot track the chain through its switching
  // edges: lanes fail in the batch, delegate wholesale to the scalar
  // sweep, and its retry ladder (x2 Newton budget, dt/2, final-attempt
  // BE) recovers them. Outcome records — attempts, recovered, error text
  // of unrecovered lanes — must be exactly what a scalar-only sweep
  // produces.
  BatchSweepSpec spec =
      specFor(chainFixture(), /*count=*/8, /*seed=*/11, LinearSolverKind::kAuto);
  spec.tran.maxNewton = 1;
  const auto scenarios = scalarScenarios(spec);
  ThreadPool p1(1), p2(2);
  const auto scalar = runScenarioSweep(scenarios, p1);
  const auto batched = runScenarioSweepBatched(spec, p2);
  expectResultsBitIdentical(scalar, batched);
  bool anyRetried = false;
  for (const auto& r : scalar) anyRetried |= r.attempts > 1;
  EXPECT_TRUE(anyRetried)
      << "fixture no longer exercises the delegation path";
}

TEST(BatchSweep, TelemetryCountsBatchedWalksAndPatternReuse) {
  const BatchSweepSpec spec = specFor(chainFixture(), /*count=*/8,
                                      /*seed=*/7, LinearSolverKind::kSparse);
  TelemetryRegistry reg(2);
  ThreadPool pool(2);
  pool.attachTelemetry(&reg);
  const auto results = runScenarioSweepBatched(spec, pool);
  for (const auto& r : results) ASSERT_TRUE(r.ok) << r.error;
  const auto totals = reg.totals();
  const auto count = [&](Counter c) {
    return totals.counters[static_cast<size_t>(c)];
  };
  EXPECT_GT(count(Counter::kBatchEvals), 0u);
  // Two tiles of 4 lanes: each builds one pattern and copies it to the
  // other 3 lanes.
  EXPECT_EQ(count(Counter::kBatchSymbolicReuse), 6u);
  EXPECT_EQ(count(Counter::kScenariosRun), 8u);
}

// ------------------------------------------------- engine level (MC)

std::unique_ptr<Netlist> makeRcNetlist() {
  auto nl = std::make_unique<Netlist>();
  const NodeId top = nl->node("top");
  const NodeId mid = nl->node("mid");
  nl->add<VSource>(
      "V1", top, kGround,
      SourceWave::pulse(0.0, 2.0, 1e-9, 0.5e-9, 0.5e-9, 6e-9, 20e-9), *nl);
  nl->add<Resistor>("R1", top, mid, 1e3, *nl, /*sigma=*/10.0);
  nl->add<Resistor>("R2", mid, kGround, 1e3, *nl, /*sigma=*/10.0);
  nl->add<Capacitor>("C1", mid, kGround, 1e-12, *nl, /*sigma=*/0.02e-12);
  return nl;
}

TEST(BatchMc, BatchedEngineMatchesScalarBitForBit) {
  const Real t1 = 10e-9, dt = 0.1e-9;
  auto primary = makeRcNetlist();
  primary->finalize();
  MnaSystem sys(*primary);
  const int midIdx = primary->nodeIndex("mid");
  ASSERT_GE(midIdx, 0);

  TranOptions tran;
  tran.storeStates = false;
  const McMeasure measure = [&, midIdx](const MnaSystem& s) {
    const TransientResult tr = runTransient(s, 0.0, t1, dt, tran);
    return RealVector{tr.finalState.at(midIdx)};
  };

  McOptions opt;
  opt.samples = 11;  // lanes=4 -> ragged tail tile
  opt.seed = 5;

  MonteCarloEngine scalarEngine(sys, opt);
  scalarEngine.setNetlistFactory([] { return makeRcNetlist(); });
  const McResult scalar = scalarEngine.run({"vmid"}, measure);

  opt.batch.enabled = true;
  opt.batch.lanes = 4;
  MonteCarloEngine batchedEngine(sys, opt);
  batchedEngine.setNetlistFactory([] { return makeRcNetlist(); });
  McTransientSpec mspec;
  mspec.t1 = t1;
  mspec.dt = dt;
  mspec.tran = tran;
  mspec.measure = [midIdx](const Netlist&, const TransientResult& tr) {
    return RealVector{tr.finalState.at(midIdx)};
  };
  batchedEngine.setTransientMeasurement(std::move(mspec));
  const McResult batched = batchedEngine.run({"vmid"}, measure);

  ASSERT_EQ(scalar.samples.size(), batched.samples.size());
  for (size_t k = 0; k < scalar.samples.size(); ++k) {
    ASSERT_EQ(scalar.samples[k].size(), batched.samples[k].size());
    for (size_t j = 0; j < scalar.samples[k].size(); ++j) {
      EXPECT_EQ(scalar.samples[k][j], batched.samples[k][j]) << "sample " << k;
    }
  }
  EXPECT_EQ(scalar.failedSamples, batched.failedSamples);
  EXPECT_EQ(scalar.sigma(), batched.sigma());
  EXPECT_EQ(scalar.meanOf(), batched.meanOf());
}

}  // namespace
}  // namespace psmn
