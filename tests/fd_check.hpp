// Finite-difference verification harness for device stamps.
//
// For a finalized netlist, verify at randomized bias points that
//   * G == dF/dx  (central difference of the stamped F vector),
//   * C == dQ/dx  (central difference of the stamped Q vector),
//   * the mismatch injection columns dF/dp, dQ/dp (mismatchStampF/Q)
//     match central differences of F/Q under setMismatchDelta.
// This is the netlist-level contract the Newton solvers and the
// sensitivity/pseudo-noise flows rely on: any analytic-derivative typo in
// any device shows up as a disagreement here.
//
// Numerics: differences use Richardson-extrapolated central differences
// (steps h and h/2, error O(h^4)); plain O(h^2) differencing is not enough
// at 1e-6 relative because smooth-clamp constructions (MOSFET body effect,
// BJT Early floor) concentrate curvature ~1/eps^2 in their transition
// regions. Unknown steps are h_j = h*(1+|x_j|); mismatch-parameter steps
// scale with the parameter's own sigma (an absolute step would be 1e6x
// too coarse for a 1e-12 F capacitor and could drive positive-definite
// parameters negative). Each entry must satisfy
//   |a - fd| <= relTol * (max(|a|, |fd|) + colScale) + noise
// where colScale is the largest analytic magnitude in the perturbed
// column (keeps roundoff on exact-zero entries from failing the check
// while a genuinely missing stamp — analytic 0, FD finite — still does)
// and noise = 1e-14 * sum|perturbed vector entries| / h bounds the FD
// roundoff: a derivative smaller than the difference of two large
// residuals can resolve is vacuously accepted (e.g. a 1e-17 A/V entry
// against mA-scale node currents), which is an FD resolution limit, not
// a stamp-consistency statement.
//
// Bias points are drawn from a fixed seed, so the (measure-zero) C1 kinks
// of the limited exponentials and the MOSFET triode/saturation join are
// never straddled and the check is deterministic run to run.
#pragma once

#include <cmath>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/device_batch.hpp"
#include "circuit/netlist.hpp"
#include "numeric/dense_matrix.hpp"

namespace psmn::fdcheck {

struct FdOptions {
  Real relTol = 1e-6;       // per-entry relative tolerance
  /// Absolute floor, default off. The per-entry noise bound below models
  /// FD roundoff from the assembled vector entries; at a SOLVED operating
  /// point the residual entries are ~1e-9 while the differences are
  /// limited by cancellation of the device-scale (mA) partial sums behind
  /// them, so deck-level checks at a DC solution set a floor (~1e-14,
  /// still many orders below the signal scale) under which entries pass
  /// vacuously. Keep 0 for the randomized per-device sweeps.
  Real absTol = 0.0;
  Real h = 1e-6;            // central-difference base step
  int biasPoints = 3;       // randomized iterates per netlist
  uint64_t seed = 20070604;  // fixed: deterministic, kink-free points
  Real biasSpan = 1.0;      // node voltages uniform in [-span, span]
  Real branchSpan = 1e-3;   // branch currents uniform in [-span, span]
  Real gmin = 1e-12;        // stamped like the assembler would
  Real time = 0.0;
};

/// One full assembly at iterate x: F, Q and (optionally) dense G, C.
inline void evalAll(const Netlist& nl, const RealVector& x,
                    const FdOptions& opt, RealVector& f, RealVector& q,
                    RealMatrix* g, RealMatrix* c) {
  const size_t n = nl.unknownCount();
  f.assign(n, 0.0);
  q.assign(n, 0.0);
  Stamper s(x, opt.time, n);
  s.setGmin(opt.gmin);
  s.attachVectors(&f, &q);
  if (g && c) {
    g->resize(n, n);
    c->resize(n, n);
    s.attachDense(g, c);
  }
  for (const auto& dev : nl.devices()) dev->eval(s);
}

namespace detail {

/// A few tens of ulps: multiplier for the FD roundoff bound.
inline constexpr Real kNoiseEps = 1e-14;

inline bool entryOk(Real a, Real fd, Real colScale, Real noise, Real relTol,
                    Real absTol) {
  const Real err = std::fabs(a - fd);
  return err <= relTol * (std::max(std::fabs(a), std::fabs(fd)) + colScale) +
                    noise + absTol;
}

inline Real columnScale(const RealMatrix& m, size_t col) {
  Real s = 0.0;
  for (size_t r = 0; r < m.rows(); ++r) {
    s = std::max(s, std::fabs(m(r, col)));
  }
  return s;
}

inline Real vectorScale(const RealVector& v) {
  Real s = 0.0;
  for (Real e : v) s = std::max(s, std::fabs(e));
  return s;
}

inline RealVector randomIterate(const Netlist& nl, std::mt19937_64& rng,
                                const FdOptions& opt) {
  const size_t n = nl.unknownCount();
  const size_t nodes = n - nl.branchCount();
  RealVector x(n);
  std::uniform_real_distribution<Real> nodeDist(-opt.biasSpan, opt.biasSpan);
  std::uniform_real_distribution<Real> branchDist(-opt.branchSpan,
                                                  opt.branchSpan);
  for (size_t j = 0; j < n; ++j) {
    x[j] = j < nodes ? nodeDist(rng) : branchDist(rng);
  }
  return x;
}

}  // namespace detail

/// Checks G == dF/dx and C == dQ/dx at iterate x. Appends one message per
/// offending matrix entry (capped) to `failures`.
inline void checkJacobiansAt(const Netlist& nl, const RealVector& x,
                             const FdOptions& opt,
                             std::vector<std::string>& failures) {
  const size_t n = nl.unknownCount();
  RealVector f0, q0;
  RealMatrix g, c;
  evalAll(nl, x, opt, f0, q0, &g, &c);

  RealVector fp1, qp1, fm1, qm1, fp2, qp2, fm2, qm2;
  for (size_t j = 0; j < n; ++j) {
    const Real hj = opt.h * (1.0 + std::fabs(x[j]));
    RealVector xs = x;
    xs[j] = x[j] + hj;
    evalAll(nl, xs, opt, fp1, qp1, nullptr, nullptr);
    xs[j] = x[j] - hj;
    evalAll(nl, xs, opt, fm1, qm1, nullptr, nullptr);
    xs[j] = x[j] + 0.5 * hj;
    evalAll(nl, xs, opt, fp2, qp2, nullptr, nullptr);
    xs[j] = x[j] - 0.5 * hj;
    evalAll(nl, xs, opt, fm2, qm2, nullptr, nullptr);
    const Real gScale = detail::columnScale(g, j);
    const Real cScale = detail::columnScale(c, j);
    for (size_t i = 0; i < n; ++i) {
      // Richardson: (4*D(h/2) - D(h)) / 3, error O(h^4).
      const Real fdG =
          (8.0 * (fp2[i] - fm2[i]) - (fp1[i] - fm1[i])) / (6.0 * hj);
      const Real fdC =
          (8.0 * (qp2[i] - qm2[i]) - (qp1[i] - qm1[i])) / (6.0 * hj);
      const Real noiseG = detail::kNoiseEps / hj *
                          (std::fabs(fp1[i]) + std::fabs(fm1[i]) +
                           std::fabs(fp2[i]) + std::fabs(fm2[i]));
      const Real noiseC = detail::kNoiseEps / hj *
                          (std::fabs(qp1[i]) + std::fabs(qm1[i]) +
                           std::fabs(qp2[i]) + std::fabs(qm2[i]));
      if (!detail::entryOk(g(i, j), fdG, gScale, noiseG, opt.relTol,
                            opt.absTol)) {
        std::ostringstream os;
        os << "G(" << nl.unknownName(i) << ", " << nl.unknownName(j)
           << "): analytic " << g(i, j) << " vs FD " << fdG;
        failures.push_back(os.str());
      }
      if (!detail::entryOk(c(i, j), fdC, cScale, noiseC, opt.relTol,
                            opt.absTol)) {
        std::ostringstream os;
        os << "C(" << nl.unknownName(i) << ", " << nl.unknownName(j)
           << "): analytic " << c(i, j) << " vs FD " << fdC;
        failures.push_back(os.str());
      }
    }
  }
}

/// Checks every device's dF/dp and dQ/dp columns against central
/// differences of the assembled F/Q under setMismatchDelta (centered at
/// the current deltas, normally zero).
inline void checkMismatchDerivativesAt(const Netlist& nl, const RealVector& x,
                                       const FdOptions& opt,
                                       std::vector<std::string>& failures) {
  const size_t n = nl.unknownCount();
  RealVector bf(n), bq(n), scratch(n);
  RealVector fp, qp, fm, qm;
  for (const auto& ref : nl.mismatchParams()) {
    Device& dev = *ref.device;
    const size_t k = ref.index;

    bf.assign(n, 0.0);
    scratch.assign(n, 0.0);
    {
      Stamper s(x, opt.time, n);
      s.setGmin(opt.gmin);
      s.attachVectors(&bf, &scratch);
      dev.mismatchStampF(k, s);
    }
    bq.assign(n, 0.0);
    scratch.assign(n, 0.0);
    {
      // mismatchStampQ uses addQ, so bq rides in the stamper's q slot.
      Stamper s(x, opt.time, n);
      s.setGmin(opt.gmin);
      s.attachVectors(&scratch, &bq);
      dev.mismatchStampQ(k, s);
    }

    // Step in the parameter's own units: a fixed fraction of its sigma
    // keeps the perturbation physical (never drives R/C/beta negative)
    // and well-scaled for parameters living at 1e-12.
    const Real d0 = dev.mismatchDelta(k);
    const Real hd =
        ref.param.sigma > 0.0 ? 1e-3 * ref.param.sigma : opt.h;
    RealVector fp2, qp2, fm2, qm2;
    dev.setMismatchDelta(k, d0 + hd);
    evalAll(nl, x, opt, fp, qp, nullptr, nullptr);
    dev.setMismatchDelta(k, d0 - hd);
    evalAll(nl, x, opt, fm, qm, nullptr, nullptr);
    dev.setMismatchDelta(k, d0 + 0.5 * hd);
    evalAll(nl, x, opt, fp2, qp2, nullptr, nullptr);
    dev.setMismatchDelta(k, d0 - 0.5 * hd);
    evalAll(nl, x, opt, fm2, qm2, nullptr, nullptr);
    dev.setMismatchDelta(k, d0);

    const Real fScale = detail::vectorScale(bf);
    const Real qScale = detail::vectorScale(bq);
    for (size_t i = 0; i < n; ++i) {
      const Real fdF =
          (8.0 * (fp2[i] - fm2[i]) - (fp[i] - fm[i])) / (6.0 * hd);
      const Real fdQ =
          (8.0 * (qp2[i] - qm2[i]) - (qp[i] - qm[i])) / (6.0 * hd);
      const Real noiseF = detail::kNoiseEps / hd *
                          (std::fabs(fp[i]) + std::fabs(fm[i]) +
                           std::fabs(fp2[i]) + std::fabs(fm2[i]));
      const Real noiseQ = detail::kNoiseEps / hd *
                          (std::fabs(qp[i]) + std::fabs(qm[i]) +
                           std::fabs(qp2[i]) + std::fabs(qm2[i]));
      if (!detail::entryOk(bf[i], fdF, fScale, noiseF, opt.relTol,
                          opt.absTol)) {
        std::ostringstream os;
        os << "dF/dp[" << ref.param.name << "](" << nl.unknownName(i)
           << "): analytic " << bf[i] << " vs FD " << fdF;
        failures.push_back(os.str());
      }
      if (!detail::entryOk(bq[i], fdQ, qScale, noiseQ, opt.relTol,
                          opt.absTol)) {
        std::ostringstream os;
        os << "dQ/dp[" << ref.param.name << "](" << nl.unknownName(i)
           << "): analytic " << bq[i] << " vs FD " << fdQ;
        failures.push_back(os.str());
      }
    }
  }
}

/// Full sweep: Jacobians + mismatch columns at `biasPoints` seeded random
/// iterates. Returns human-readable failure messages (empty = pass).
inline std::vector<std::string> checkNetlist(Netlist& nl,
                                             const FdOptions& opt = {}) {
  nl.finalize();
  std::vector<std::string> failures;
  std::mt19937_64 rng(opt.seed);
  for (int p = 0; p < opt.biasPoints; ++p) {
    const RealVector x = detail::randomIterate(nl, rng, opt);
    const size_t before = failures.size();
    checkJacobiansAt(nl, x, opt, failures);
    checkMismatchDerivativesAt(nl, x, opt, failures);
    if (failures.size() > before) {
      std::ostringstream os;
      os << "(" << failures.size() - before << " failures at bias point " << p
         << ")";
      failures.push_back(os.str());
    }
    if (failures.size() > 40) break;  // enough to diagnose
  }
  return failures;
}

// --- batched-lane verification (the engine/batch_eval.hpp contract) ------

/// One batched assembly: every lane of `batch` stamped at the SAME iterate
/// x through a single structural walk, into dense per-lane targets. (The
/// per-device batched loops are backend-agnostic; the engine-level batch
/// tests cover the sparse slot-stamping path.)
inline void evalAllBatched(const Netlist& nl, const DeviceBatch& batch,
                           const RealVector& x, const FdOptions& opt,
                           std::vector<RealVector>& f,
                           std::vector<RealVector>& q,
                           std::vector<RealMatrix>& g,
                           std::vector<RealMatrix>& c) {
  const size_t n = nl.unknownCount();
  const size_t lanes = batch.laneCount();
  f.assign(lanes, RealVector(n, 0.0));
  q.assign(lanes, RealVector(n, 0.0));
  g.assign(lanes, RealMatrix());
  c.assign(lanes, RealMatrix());
  std::vector<Stamper> stampers;
  stampers.reserve(lanes);
  for (size_t l = 0; l < lanes; ++l) {
    g[l].resize(n, n);
    c[l].resize(n, n);
    Stamper s(x, opt.time, n);
    s.setGmin(opt.gmin);
    s.attachVectors(&f[l], &q[l]);
    s.attachDense(&g[l], &c[l]);
    stampers.push_back(s);
  }
  const std::vector<unsigned char> active(lanes, 1);
  batch.evalLanes(stampers, active);
}

/// Batched-lane sweep over a finalized netlist with `lanes` random
/// per-lane mismatch draws. At each seeded bias point it verifies
///  1. scalar-as-oracle bit-identity: every lane's batched F/Q/G/C equals
///     a scalar eval() with that lane's deltas applied, bit for bit;
///  2. Richardson FD through the batched path on one randomly chosen lane
///     k: perturbing parameter p in lane k's SoA column produces exactly
///     the analytic mismatch columns dF/dp, dQ/dp;
///  3. lane-crosstalk: every one of those perturbed batched evaluations
///     leaves every OTHER lane's stamps bit-unchanged (a perturbation in
///     scenario k must never leak into lane w's stamps).
inline std::vector<std::string> checkBatchedLanes(Netlist& nl, size_t lanes,
                                                  const FdOptions& opt = {}) {
  nl.finalize();
  std::vector<std::string> failures;
  std::mt19937_64 rng(opt.seed + 1);
  DeviceBatch batch(nl, lanes);
  const auto params = nl.mismatchParams();
  std::uniform_real_distribution<Real> unit(-1.0, 1.0);
  for (size_t l = 0; l < lanes; ++l) {
    for (const auto& ref : params) {
      const Real scale = ref.param.sigma > 0.0 ? ref.param.sigma : 1e-3;
      ref.device->setMismatchDelta(ref.index, unit(rng) * scale);
    }
    batch.captureLane(l);
  }

  const size_t n = nl.unknownCount();
  std::vector<RealVector> bf, bq;
  std::vector<RealMatrix> bg, bc;
  for (int p = 0; p < opt.biasPoints; ++p) {
    const RealVector x = detail::randomIterate(nl, rng, opt);
    evalAllBatched(nl, batch, x, opt, bf, bq, bg, bc);

    // 1. Scalar-as-oracle bit-identity per lane.
    RealVector sf, sq;
    RealMatrix sg, sc;
    for (size_t l = 0; l < lanes; ++l) {
      batch.applyLane(l);
      evalAll(nl, x, opt, sf, sq, &sg, &sc);
      if (!(bf[l] == sf) || !(bq[l] == sq) || !(bg[l] == sg) ||
          !(bc[l] == sc)) {
        std::ostringstream os;
        os << "lane " << l
           << ": batched stamps differ from scalar eval at bias point " << p;
        failures.push_back(os.str());
      }
    }
    if (params.empty()) continue;

    // 2 + 3. FD on a randomly chosen lane; crosstalk witness on the rest.
    const size_t k =
        std::uniform_int_distribution<size_t>(0, lanes - 1)(rng);
    batch.applyLane(k);  // the netlist now carries lane k's deltas
    for (const auto& ref : params) {
      Device& dev = *ref.device;
      const size_t pi = ref.index;
      RealVector colF(n, 0.0), colQ(n, 0.0), scratch(n, 0.0);
      {
        Stamper s(x, opt.time, n);
        s.setGmin(opt.gmin);
        s.attachVectors(&colF, &scratch);
        dev.mismatchStampF(pi, s);
      }
      scratch.assign(n, 0.0);
      {
        Stamper s(x, opt.time, n);
        s.setGmin(opt.gmin);
        s.attachVectors(&scratch, &colQ);
        dev.mismatchStampQ(pi, s);
      }

      const Real d0 = dev.mismatchDelta(pi);
      const Real hd = ref.param.sigma > 0.0 ? 1e-3 * ref.param.sigma : opt.h;
      auto perturbedEval = [&](Real delta, std::vector<RealVector>& pf,
                               std::vector<RealVector>& pq) {
        dev.setMismatchDelta(pi, delta);
        batch.captureLane(k);
        std::vector<RealMatrix> pg, pc;
        evalAllBatched(nl, batch, x, opt, pf, pq, pg, pc);
        for (size_t w = 0; w < lanes; ++w) {
          if (w == k) continue;
          if (!(pf[w] == bf[w]) || !(pq[w] == bq[w]) || !(pg[w] == bg[w]) ||
              !(pc[w] == bc[w])) {
            std::ostringstream os;
            os << "lane-crosstalk: perturbing " << ref.param.name
               << " in lane " << k << " changed lane " << w << "'s stamps";
            failures.push_back(os.str());
          }
        }
      };
      std::vector<RealVector> fp, qp, fm, qm, fp2, qp2, fm2, qm2;
      perturbedEval(d0 + hd, fp, qp);
      perturbedEval(d0 - hd, fm, qm);
      perturbedEval(d0 + 0.5 * hd, fp2, qp2);
      perturbedEval(d0 - 0.5 * hd, fm2, qm2);
      dev.setMismatchDelta(pi, d0);
      batch.captureLane(k);  // restore lane k's column bit-exactly

      const Real fScale = detail::vectorScale(colF);
      const Real qScale = detail::vectorScale(colQ);
      for (size_t i = 0; i < n; ++i) {
        const Real fdF = (8.0 * (fp2[k][i] - fm2[k][i]) -
                          (fp[k][i] - fm[k][i])) /
                         (6.0 * hd);
        const Real fdQ = (8.0 * (qp2[k][i] - qm2[k][i]) -
                          (qp[k][i] - qm[k][i])) /
                         (6.0 * hd);
        const Real noiseF = detail::kNoiseEps / hd *
                            (std::fabs(fp[k][i]) + std::fabs(fm[k][i]) +
                             std::fabs(fp2[k][i]) + std::fabs(fm2[k][i]));
        const Real noiseQ = detail::kNoiseEps / hd *
                            (std::fabs(qp[k][i]) + std::fabs(qm[k][i]) +
                             std::fabs(qp2[k][i]) + std::fabs(qm2[k][i]));
        if (!detail::entryOk(colF[i], fdF, fScale, noiseF, opt.relTol,
                             opt.absTol)) {
          std::ostringstream os;
          os << "batched dF/dp[" << ref.param.name << "](lane " << k << ", "
             << nl.unknownName(i) << "): analytic " << colF[i] << " vs FD "
             << fdF;
          failures.push_back(os.str());
        }
        if (!detail::entryOk(colQ[i], fdQ, qScale, noiseQ, opt.relTol,
                             opt.absTol)) {
          std::ostringstream os;
          os << "batched dQ/dp[" << ref.param.name << "](lane " << k << ", "
             << nl.unknownName(i) << "): analytic " << colQ[i] << " vs FD "
             << fdQ;
          failures.push_back(os.str());
        }
      }
      if (failures.size() > 40) return failures;  // enough to diagnose
    }
  }
  return failures;
}

}  // namespace psmn::fdcheck
