// Robustness tests: deterministic fault injection through the solver
// stack, structured FailureDiagnostics on thrown errors, pseudo-arclength
// DC continuation across folds, sweep-level retry escalation with
// bit-identical results for every jobs count, and fundamental-mode
// anchoring for large autonomous rings.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/bjt.hpp"
#include "circuit/controlled.hpp"
#include "circuit/diode.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "circuit/stdcell.hpp"
#include "engine/dc.hpp"
#include "engine/transient.hpp"
#include "rf/pss.hpp"
#include "runtime/scenario_sweep.hpp"
#include "util/fault_injection.hpp"

namespace psmn {
namespace {

// ------------------------------------------------- fault-injection registry

TEST(FaultInjection, ScopeFiresOnExactHitWindow) {
  FaultPlan plan;
  plan.arm("test.site", /*firstHit=*/1, /*count=*/2);
  FaultScope scope(plan);
  // Hits 0..3: the armed window is [1, 3).
  EXPECT_FALSE(faultShouldFire("test.site"));
  EXPECT_TRUE(faultShouldFire("test.site"));
  EXPECT_TRUE(faultShouldFire("test.site"));
  EXPECT_FALSE(faultShouldFire("test.site"));
  EXPECT_FALSE(faultShouldFire("other.site"));
  EXPECT_EQ(scope.hits("test.site"), 4);
  EXPECT_EQ(scope.fired("test.site"), 2);
  EXPECT_EQ(scope.firedTotal(), 2);
  EXPECT_EQ(lastFiredFaultSite(), "test.site");
  clearLastFiredFaultSite();
  EXPECT_TRUE(lastFiredFaultSite().empty());
}

TEST(FaultInjection, DisarmedProbeNeverFires) {
  EXPECT_FALSE(faultShouldFire("dense_lu.factor"));
  EXPECT_FALSE(faultShouldFire("mna.eval"));
}

// --------------------------------------------- structured solver post-mortems

TEST(FaultInjection, DcLadderExhaustionCarriesDiagnostics) {
  // Suppress every DC Newton acceptance: the plain solve, both ladders,
  // and the arclength anchor all stagnate, so solveDc must throw a
  // ConvergenceError whose payload names the injected site.
  Netlist nl;
  const NodeId top = nl.node("top");
  const NodeId mid = nl.node("mid");
  nl.add<VSource>("V1", top, kGround, SourceWave::dc(3.0), nl);
  nl.add<Resistor>("R1", top, mid, 2e3, nl);
  nl.add<Resistor>("R2", mid, kGround, 1e3, nl);
  MnaSystem sys(nl);

  FaultPlan plan;
  plan.arm("dc.newton.converge", 0, -1);  // every acceptance, forever
  FaultScope scope(plan);
  try {
    solveDc(sys);
    FAIL() << "solveDc should have thrown";
  } catch (const ConvergenceError& err) {
    const FailureDiagnostics* d = err.diagnostics();
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->analysis, "dc");
    EXPECT_FALSE(d->stage.empty());
    EXPECT_EQ(d->injectedFault, "dc.newton.converge");
    // describe() renders the payload for logs; it must mention the site.
    EXPECT_NE(d->describe().find("dc.newton.converge"), std::string::npos);
  }
  EXPECT_GT(scope.firedTotal(), 0);
}

TEST(FaultInjection, TransientNanSurfacesAsNumericalError) {
  // Poison the first residual evaluation of the stepping kernel: the
  // non-finite early-out must classify the failure as numerical (NaN
  // escape), not as Newton stagnation, and stamp the failure time.
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add<VSource>("V1", in, kGround, SourceWave::dc(1.0), nl);
  nl.add<Resistor>("R1", in, out, 1e3, nl);
  nl.add<Capacitor>("C1", out, kGround, 1e-9, nl);
  MnaSystem sys(nl);

  TranOptions opt;
  const RealVector uic(sys.size(), 0.0);  // skip the DC solve (UIC)
  opt.initialState = &uic;

  FaultPlan plan;
  plan.arm("mna.eval", 0, 1);
  FaultScope scope(plan);
  try {
    runTransient(sys, 0.0, 1e-6, 1e-8, opt);
    FAIL() << "runTransient should have thrown";
  } catch (const NumericalError& err) {
    const FailureDiagnostics* d = err.diagnostics();
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->analysis, "transient");
    EXPECT_NE(d->stage.find("non-finite"), std::string::npos);
    EXPECT_TRUE(d->hasTime);
    EXPECT_EQ(d->injectedFault, "mna.eval");
  }
  EXPECT_EQ(scope.fired("mna.eval"), 1);
}

// ----------------------------------------------- arclength DC continuation

/// Fold testbench: a node with net negative small-signal conductance
/// (Vccs, -10 mS against a 1 kOhm feed) clamped by a diode on each side.
/// The solution curve in the source-ramp parameter lambda is S-shaped with
/// folds near lambda = +/-0.85, and the only lambda = 1 solution sits on
/// the far branch (v(a) ~ +0.6 V) — reachable from the lambda = 0 anchor
/// only by tracing around the lower fold, which is exactly what defeats
/// monotone source ramping.
NodeId buildFoldDeck(Netlist& nl) {
  const NodeId s = nl.node("s");
  const NodeId a = nl.node("a");
  nl.add<VSource>("V1", s, kGround, SourceWave::dc(5.0), nl);
  nl.add<Resistor>("R1", s, a, 1e3, nl);
  nl.add<Vccs>("Gneg", a, kGround, a, kGround, -1e-2, nl);
  DiodeModel dm;
  dm.is = 1e-12;
  nl.add<Diode>("Dp", a, kGround, dm, nl);
  nl.add<Diode>("Dn", kGround, a, dm, nl);
  return a;
}

TEST(DcArclength, TraversesFoldWithTwoSidedTrace) {
  Netlist nl;
  const NodeId a = buildFoldDeck(nl);
  MnaSystem sys(nl);

  DcOptions opt;
  DcWorkspace ws;
  RealVector x;
  int iterations = 0, steps = 0;
  ASSERT_TRUE(solveDcArclength(sys, x, opt, ws, &iterations, &steps));
  EXPECT_GT(steps, 0);
  // The lambda = 1 solution lies on the diode-clamped upper branch.
  EXPECT_GT(x[nl.nodeIndex(a)], 0.5);
  EXPECT_LT(x[nl.nodeIndex(a)], 0.7);
  RealVector f;
  sys.evalDense(x, 0.0, &f, nullptr, nullptr, nullptr, {});
  for (Real v : f) EXPECT_LT(std::fabs(v), 1e-8);
}

TEST(DcArclength, SolveDcEscalatesToArclengthOnFoldDeck) {
  // gminSteps = 0: the gmin shunt happens to linearize this single-node
  // fold (at full drive the shunted curve is monotone), masking the
  // source-ramp fold the deck models; disabling it isolates the class of
  // circuits whose every ramped ladder stalls on a vanished branch.
  Netlist nl;
  const NodeId a = buildFoldDeck(nl);
  MnaSystem sys(nl);

  DcOptions opt;
  opt.gminSteps = 0;
  const DcResult dc = solveDc(sys, opt);
  EXPECT_TRUE(dc.usedArclength);
  EXPECT_GT(dc.arclengthSteps, 0);
  EXPECT_GT(dc.x[nl.nodeIndex(a)], 0.5);
  RealVector f;
  sys.evalDense(dc.x, 0.0, &f, nullptr, nullptr, nullptr, {});
  for (Real v : f) EXPECT_LT(std::fabs(v), 1e-8);
}

TEST(DcArclength, DefaultOptionsStillSolveFoldDeck) {
  // With the full escalation chain enabled the deck must solve regardless
  // of which strategy lands it.
  Netlist nl;
  const NodeId a = buildFoldDeck(nl);
  MnaSystem sys(nl);
  const DcResult dc = solveDc(sys);
  EXPECT_GT(dc.x[nl.nodeIndex(a)], 0.5);
  RealVector f;
  sys.evalDense(dc.x, 0.0, &f, nullptr, nullptr, nullptr, {});
  for (Real v : f) EXPECT_LT(std::fabs(v), 1e-8);
}

// ------------------------------------------------- sweep retry + recovery

std::unique_ptr<Netlist> makeRcNetlist() {
  auto nl = std::make_unique<Netlist>();
  const NodeId in = nl->node("in");
  const NodeId out = nl->node("out");
  nl->add<VSource>("V1", in, kGround, SourceWave::dc(1.0), *nl);
  nl->add<Resistor>("R1", in, out, 1e3, *nl);
  nl->add<Capacitor>("C1", out, kGround, 1e-9, *nl);
  return nl;
}

/// The armed-sweep fixture: six RC transient scenarios, two of which are
/// injected with failures the retry policy must recover, one with an
/// unrecoverable (forever-armed) failure, and one whose injected LU
/// breakdown the DC ladders absorb without any sweep-level retry.
std::vector<SweepScenario> armedScenarios(const RealVector& uic) {
  std::vector<SweepScenario> scenarios;
  for (int k = 0; k < 6; ++k) {
    SweepScenario sc;
    sc.name = "sc" + std::to_string(k);
    sc.make = makeRcNetlist;
    sc.analysis = SweepAnalysis::kTransient;
    sc.outNode = "out";
    sc.t1 = 1e-6;
    sc.dt = 1e-8;
    sc.retry.maxRetries = 2;
    scenarios.push_back(std::move(sc));
  }
  // sc1: NaN poisoned into the first transient residual evaluation (UIC
  // skips the DC solve, so the single armed hit lands in the stepping
  // kernel). Attempt 1 dies with NumericalError; attempt 2 is clean.
  scenarios[1].tran.initialState = &uic;
  scenarios[1].faults.arm("mna.eval", 0, 1);
  // sc2: suppress transient Newton acceptances for exactly the first
  // attempt's budget. Attempt 1 exhausts maxNewton and throws; the retry
  // (doubled budget) outlives the few leftover fires and converges.
  scenarios[2].faults.arm("tran.newton.converge", 0,
                          scenarios[2].tran.maxNewton);
  // sc3: one dense-LU pivot breakdown in the DC init. The gmin ladder
  // absorbs it inside solveDc — no sweep-level retry should be consumed.
  scenarios[3].faults.arm("dense_lu.factor", 0, 1);
  // sc4: unrecoverable — every residual evaluation is poisoned.
  scenarios[4].tran.initialState = &uic;
  scenarios[4].faults.arm("mna.eval", 0, -1);
  return scenarios;
}

void checkArmedSweep(const std::vector<SweepResult>& results) {
  ASSERT_EQ(results.size(), 6u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
    EXPECT_EQ(results[i].name, "sc" + std::to_string(i));
  }
  // Clean scenarios: first attempt, no recovery.
  for (size_t i : {size_t{0}, size_t{5}}) {
    EXPECT_TRUE(results[i].ok);
    EXPECT_EQ(results[i].attempts, 1);
    EXPECT_FALSE(results[i].recovered);
  }
  // sc1 / sc2: recovered on the first retry, diagnostics of the failed
  // attempt retained.
  for (size_t i : {size_t{1}, size_t{2}}) {
    EXPECT_TRUE(results[i].ok) << results[i].error;
    EXPECT_EQ(results[i].attempts, 2);
    EXPECT_TRUE(results[i].recovered);
    EXPECT_TRUE(results[i].hasDiagnostics);
  }
  EXPECT_EQ(results[1].diagnostics.injectedFault, "mna.eval");
  EXPECT_EQ(results[2].diagnostics.injectedFault, "tran.newton.converge");
  // sc3: the DC ladders recovered inside the analysis; the sweep never saw
  // a failure.
  EXPECT_TRUE(results[3].ok);
  EXPECT_EQ(results[3].attempts, 1);
  EXPECT_FALSE(results[3].recovered);
  // sc4: all attempts exhausted; failure reported as data.
  EXPECT_FALSE(results[4].ok);
  EXPECT_EQ(results[4].attempts, 3);
  EXPECT_FALSE(results[4].recovered);
  EXPECT_TRUE(results[4].hasDiagnostics);
  EXPECT_EQ(results[4].diagnostics.injectedFault, "mna.eval");
  EXPECT_FALSE(results[4].error.empty());
}

TEST(SweepRetry, RecoversInjectedFaultsBitIdenticallyAcrossJobs) {
  RealVector uic(4, 0.0);  // in, out, V1 branch (sized by the first make)
  {
    const auto nl = makeRcNetlist();
    nl->finalize();
    uic.assign(MnaSystem(*nl).size(), 0.0);
  }
  const std::vector<SweepScenario> scenarios = armedScenarios(uic);

  std::vector<std::vector<SweepResult>> runs;
  for (size_t jobs : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(jobs);
    runs.push_back(runScenarioSweep(scenarios, pool));
    checkArmedSweep(runs.back());
  }
  // Bit-identical across jobs counts: injection and retry are pure
  // functions of the scenario, never of scheduling.
  for (size_t r = 1; r < runs.size(); ++r) {
    for (size_t i = 0; i < runs[0].size(); ++i) {
      const SweepResult& ref = runs[0][i];
      const SweepResult& got = runs[r][i];
      EXPECT_EQ(got.ok, ref.ok);
      EXPECT_EQ(got.attempts, ref.attempts);
      EXPECT_EQ(got.recovered, ref.recovered);
      EXPECT_EQ(got.error, ref.error);
      ASSERT_EQ(got.times.size(), ref.times.size());
      ASSERT_EQ(got.waveform.size(), ref.waveform.size());
      for (size_t k = 0; k < ref.waveform.size(); ++k) {
        EXPECT_EQ(got.times[k], ref.times[k]);
        EXPECT_EQ(got.waveform[k], ref.waveform[k]);  // bitwise
      }
      ASSERT_EQ(got.finalState.size(), ref.finalState.size());
      for (size_t k = 0; k < ref.finalState.size(); ++k) {
        EXPECT_EQ(got.finalState[k], ref.finalState[k]);
      }
    }
  }
}

std::unique_ptr<Netlist> makeBjtCeAmp() {
  auto nl = std::make_unique<Netlist>();
  auto model = std::make_shared<BjtModel>();
  const NodeId vcc = nl->node("vcc");
  const NodeId b = nl->node("b");
  const NodeId out = nl->node("out");
  nl->add<VSource>("VCC", vcc, kGround, SourceWave::dc(5.0), *nl);
  nl->add<VSource>("VB", b, kGround,
                   SourceWave::pulse(0.65, 0.7, 100e-9, 10e-9, 10e-9, 1.0,
                                     2.0),
                   *nl);
  nl->add<Resistor>("RC", vcc, out, 1e3, *nl);
  nl->add<Bjt>("Q1", out, b, kGround, std::move(model), 1.0, *nl);
  nl->add<Capacitor>("CL", out, kGround, 1e-12, *nl);
  return nl;
}

TEST(SweepRetry, BjtDeckRecoversInjectedNewtonStall) {
  // Exponential-device flavour of the retry escalation: a pulsed
  // common-emitter BJT stage whose first attempt has every transient
  // Newton acceptance suppressed. The attempt exhausts its budget and
  // throws; the sweep retry (tightened dt, doubled budget) outlives the
  // armed window and recovers, keeping the failed attempt's post-mortem.
  SweepScenario sc;
  sc.name = "bjt-ce";
  sc.make = makeBjtCeAmp;
  sc.analysis = SweepAnalysis::kTransient;
  sc.outNode = "out";
  sc.t1 = 300e-9;
  sc.dt = 1e-9;
  sc.retry.maxRetries = 2;
  sc.faults.arm("tran.newton.converge", 0, sc.tran.maxNewton);

  ThreadPool pool(2);
  const std::vector<SweepScenario> scenarios{sc};
  const auto results = runScenarioSweep(scenarios, pool);
  ASSERT_EQ(results.size(), 1u);
  const SweepResult& r = results[0];
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.attempts, 2);
  EXPECT_TRUE(r.recovered);
  ASSERT_TRUE(r.hasDiagnostics);
  EXPECT_EQ(r.diagnostics.injectedFault, "tran.newton.converge");
  // The recovered waveform is the real amplifier response: the output
  // starts at the RC-loaded bias point and drops when the input steps.
  ASSERT_FALSE(r.waveform.empty());
  EXPECT_GT(r.waveform.front(), 4.0);
  EXPECT_LT(r.waveform.back(), r.waveform.front() - 0.2);
}

// -------------------------------------------- ring fundamental-mode anchor

TEST(RingMode, CountRingModesClassifiesRailedPatterns) {
  auto kit = ProcessKit::cmos130();
  Netlist nl;
  RingOscillatorOptions ropt;
  ropt.stages = 5;
  const RingOscillatorCircuit osc = buildRingOscillator(nl, kit, ropt);
  MnaSystem sys(nl);

  RealVector st(sys.size(), 0.0);
  st[nl.nodeIndex(osc.vddNode)] = kit.vdd;
  auto setStages = [&](std::initializer_list<int> highs) {
    for (int i = 0; i < ropt.stages; ++i) {
      st[nl.nodeIndex(osc.stages[i])] = 0.0;
    }
    for (int i : highs) st[nl.nodeIndex(osc.stages[i])] = kit.vdd;
  };
  // H L H L H: one adjacent same-polarity pair -> one circulating front.
  setStages({0, 2, 4});
  EXPECT_EQ(countRingModes(sys, osc, st), 1);
  // H H L L H: three same-polarity pairs -> three fronts (3-wave mode).
  setStages({0, 1, 4});
  EXPECT_EQ(countRingModes(sys, osc, st), 3);
}

TEST(RingMode, SixtyThreeStageRingLandsFundamentalMode) {
  // The regression behind the mode-anchoring machinery: a 63-stage ring
  // warm-started from an alternating kick settles onto a multi-wave orbit
  // (k circulating fronts), and plain shooting then happily converges onto
  // that k-wave limit cycle. solveRingPss must detect the wrong mode and
  // deliver the fundamental instead.
  auto kit = ProcessKit::cmos130();
  Netlist nl;
  RingOscillatorOptions ropt;
  ropt.stages = 63;
  const RingOscillatorCircuit osc = buildRingOscillator(nl, kit, ropt);
  MnaSystem sys(nl);

  PssOptions opt;
  opt.stepsPerPeriod = 630;  // resolve the ~T/126 stage delay on the grid
  const PssResult res =
      solveRingPss(sys, osc, opt, /*warmRunTime=*/200e-9, /*warmDt=*/25e-12);
  EXPECT_TRUE(res.autonomous);
  EXPECT_GT(res.period, 0.0);
  ASSERT_FALSE(res.states.empty());
  EXPECT_EQ(countRingModes(sys, osc, res.states.front()), 1);

  // Cross-check the period against a small ring: the fundamental scales
  // linearly with stage count (2 * N * t_stage), so a k-wave collapse
  // (period near T/k) would miss this bracket by an integer factor.
  Netlist nl5;
  RingOscillatorOptions r5;
  r5.stages = 5;
  const RingOscillatorCircuit osc5 = buildRingOscillator(nl5, kit, r5);
  MnaSystem sys5(nl5);
  const PssResult res5 = solveRingPss(sys5, osc5, opt);
  const Real scaled = res5.period * 63.0 / 5.0;
  EXPECT_GT(res.period, 0.75 * scaled);
  EXPECT_LT(res.period, 1.35 * scaled);
}

}  // namespace
}  // namespace psmn
