// End-to-end tests of the BJT op-amp benchmark deck (circuit/bjt_opamp):
// DC bias with per-transistor operating-region checks, FD verification of
// the full deck at its true operating point, step-response transient,
// transient-sensitivity sigma cross-validated against a seeded 1000-sample
// Monte Carlo on the output node, scenario-sweep determinism, and the DC
// escalation ladder (arclength continuation, structured diagnostics) on
// BJT-clamped decks.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/bjt_opamp.hpp"
#include "circuit/controlled.hpp"
#include "circuit/diode.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "core/monte_carlo.hpp"
#include "engine/dc.hpp"
#include "engine/transient.hpp"
#include "engine/transient_sensitivity.hpp"
#include "fd_check.hpp"
#include "runtime/scenario_sweep.hpp"
#include "util/fault_injection.hpp"

namespace psmn {
namespace {

std::unique_ptr<Netlist> makeFollower(Real mismatchScale = 1.0) {
  auto nl = std::make_unique<Netlist>();
  buildBjtFollower(*nl, BjtKit::bipolar5(mismatchScale));
  return nl;
}

TEST(BjtOpAmp, BiasesIntoActiveRegionAndTracksInput) {
  Netlist nl;
  const BjtFollowerTestbench tb = buildBjtFollower(nl, BjtKit::bipolar5());
  const BjtOpAmpCircuit& amp = tb.amp;
  ASSERT_EQ(amp.bjts.size(), 20u);
  MnaSystem sys(nl);

  const DcResult dc = solveDc(sys);
  // Follower: the output sits at the input (0 V at t=0) plus the
  // amplifier's systematic offset — a few mV for this topology.
  EXPECT_LT(std::fabs(dc.x[nl.nodeIndex(tb.out)]), 0.05);

  const Stamper s(dc.x, 0.0, sys.size());
  // Every gain-path transistor must be forward active — not saturated,
  // not cut off — and carrying on the order of the 1 mA master current.
  for (const char* name :
       {"QB1", "QB2", "QS1", "QS2", "QE1", "QE2", "QD1", "QD2", "QT", "QM1",
        "QM2", "QG", "QL", "QA1", "QA2", "QO1", "QO2"}) {
    const Bjt* q = amp.bjt(name);
    ASSERT_NE(q, nullptr) << name;
    const BjtOpPoint op = q->opPoint(s);
    EXPECT_TRUE(op.forwardActive) << name << " ic=" << op.ic;
    EXPECT_FALSE(op.saturated) << name;
    EXPECT_GT(std::fabs(op.ic), 20e-6) << name;
    EXPECT_LT(std::fabs(op.ic), 5e-3) << name;
  }
  // The diff pair splits the tail evenly (same-sign collector currents
  // within a few percent of each other).
  const Real icd1 = amp.bjt("QD1")->opPoint(s).ic;
  const Real icd2 = amp.bjt("QD2")->opPoint(s).ic;
  EXPECT_NEAR(icd1, icd2, 0.1 * std::fabs(icd1));
  // Short-circuit protection stays off at the quiescent sense drop.
  for (const char* name : {"QP1", "QP2"}) {
    const BjtOpPoint op = amp.bjt(name)->opPoint(s);
    EXPECT_LT(std::fabs(op.ic), 20e-6) << name;
  }
}

TEST(BjtOpAmp, FdCleanAtOperatingPoint) {
  // The universal FD harness normally sweeps random bias points; here it
  // runs at the amplifier's true DC solution — the linearization the
  // sensitivity and Monte-Carlo cross-validation below actually use.
  Netlist nl;
  buildBjtFollower(nl, BjtKit::bipolar5());
  MnaSystem sys(nl);
  const DcResult dc = solveDc(sys);

  fdcheck::FdOptions opt;
  // Deck-level check at a solved point: FD differences are limited by
  // cancellation of the mA-scale device currents, so sub-fA derivative
  // entries (the OFF protection transistors) need the absolute floor.
  opt.absTol = 1e-14;
  std::vector<std::string> failures;
  fdcheck::checkJacobiansAt(nl, dc.x, opt, failures);
  fdcheck::checkMismatchDerivativesAt(nl, dc.x, opt, failures);
  for (const auto& msg : failures) ADD_FAILURE() << msg;
  EXPECT_TRUE(failures.empty());
}

TEST(BjtOpAmp, FollowerTracksStepTransient) {
  Netlist nl;
  BjtFollowerOptions fopt;
  const BjtFollowerTestbench tb = buildBjtFollower(nl, BjtKit::bipolar5(),
                                                   fopt);
  MnaSystem sys(nl);
  const int outIdx = nl.nodeIndex(tb.out);

  const TransientResult tr = runTransient(sys, 0.0, 600e-9, 2e-9);
  const RealVector wave = tr.waveform(outIdx);
  ASSERT_GT(wave.size(), 10u);
  // Before the step the output holds the input level (plus offset)...
  size_t pre = 0;
  while (pre + 1 < tr.times.size() && tr.times[pre + 1] < fopt.tStep) ++pre;
  EXPECT_LT(std::fabs(wave[pre]), 0.03);
  // ...and after it the follower settles onto the step value.
  EXPECT_NEAR(wave.back(), fopt.vStep, 0.03);
  // Compensated loop: bounded overshoot, no rail excursions.
  Real peak = 0.0;
  for (Real v : wave) peak = std::max(peak, v);
  EXPECT_LT(peak, fopt.vStep + 0.1);
}

TEST(BjtOpAmp, SensitivitySigmaMatchesMonteCarlo) {
  // The acceptance cross-check: sigma(out) from the transient-sensitivity
  // flow (first-order in all 44 mismatch parameters: 2 per BJT plus the
  // degeneration-resistor sigmas) against a seeded 1000-sample Monte
  // Carlo, within 5% at settled probe points. For a unity-gain follower
  // the settled sigma IS the amplifier's input-referred offset sigma.
  Netlist nl;
  buildBjtFollower(nl, BjtKit::bipolar5());
  MnaSystem sys(nl);
  const int outIdx = nl.nodeIndex(*nl.findNode("out"));

  const Real t1 = 600e-9, dt = 2e-9;
  TranOptions topt;
  topt.method = IntegrationMethod::kBackwardEuler;

  const auto sources = sys.collectSources(true, false);
  ASSERT_EQ(sources.size(), 44u);
  const TransientSensitivityResult sens =
      runTransientSensitivity(sys, 0.0, t1, dt, sources, topt);

  // Settled probes: one before the step, one after settling, one at the
  // end of the window.
  auto probeAt = [&](Real t) {
    size_t k = 0;
    while (k + 1 < sens.times.size() && sens.times[k + 1] <= t) ++k;
    return k;
  };
  const std::vector<size_t> probes{probeAt(80e-9), probeAt(400e-9),
                                   sens.times.size() - 1};
  RealVector predicted;
  for (size_t k : probes) {
    Real var = 0.0;
    for (size_t si = 0; si < sources.size(); ++si) {
      const Real d = sens.sens[si][k][outIdx] * sources[si].sigma;
      var += d * d;
    }
    predicted.push_back(std::sqrt(var));
    EXPECT_GT(predicted.back(), 1e-4);  // the offset sigma is real (~mV)
  }

  McOptions mopt;
  mopt.samples = 1000;
  mopt.seed = 20070604;  // fixed: the cross-check must be reproducible
  mopt.jobs = 0;         // parallel samples; bit-identical per contract
  MonteCarloEngine mc(sys, mopt);
  mc.setNetlistFactory([] { return makeFollower(); });
  std::vector<std::string> names;
  for (size_t k : probes) names.push_back("v" + std::to_string(k));
  const McResult res = mc.run(names, [&](const MnaSystem& s) {
    const TransientResult tr = runTransient(s, 0.0, t1, dt, topt);
    RealVector out;
    for (size_t k : probes) out.push_back(tr.states.at(k)[outIdx]);
    return out;
  });
  ASSERT_EQ(res.failedSamples, 0u);

  const TransientResult nominal = runTransient(sys, 0.0, t1, dt, topt);
  ASSERT_EQ(nominal.times.size(), sens.times.size());
  for (size_t j = 0; j < probes.size(); ++j) {
    EXPECT_NEAR(res.meanOf(j), nominal.states.at(probes[j])[outIdx], 1e-3)
        << names[j];
    // The 5% acceptance window (MC sample error at N=1000 is ~2.2%).
    EXPECT_NEAR(res.sigma(j), predicted[j], 0.05 * predicted[j]) << names[j];
  }
}

TEST(BjtOpAmp, ScenarioSweepBitIdenticalAcrossJobs) {
  // Mismatch-severity sweep over the follower deck (the production loop
  // around the paper's single sensitivity solve): results must not depend
  // on the pool's job count.
  std::vector<SweepScenario> scenarios;
  for (Real scale : {0.5, 1.0, 2.0}) {
    SweepScenario sc;
    sc.name = "scale" + std::to_string(scale);
    sc.make = [scale] { return makeFollower(scale); };
    sc.analysis = SweepAnalysis::kTransientSensitivity;
    sc.outNode = "out";
    sc.t1 = 300e-9;
    sc.dt = 2e-9;
    sc.tran.method = IntegrationMethod::kBackwardEuler;
    scenarios.push_back(std::move(sc));
  }

  std::vector<std::vector<SweepResult>> runs;
  for (size_t jobs : {size_t{1}, size_t{4}}) {
    ThreadPool pool(jobs);
    runs.push_back(runScenarioSweep(scenarios, pool));
  }
  for (const auto& results : runs) {
    ASSERT_EQ(results.size(), scenarios.size());
    for (const SweepResult& r : results) {
      EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
      ASSERT_FALSE(r.sigma.empty());
    }
    // Sigma scales linearly with the severity multiplier (first-order
    // mismatch): scale-2 deck shows 4x the scale-0.5 settled sigma.
    const Real s05 = results[0].sigma.back();
    const Real s20 = results[2].sigma.back();
    EXPECT_NEAR(s20, 4.0 * s05, 0.05 * s20);
  }
  for (size_t i = 0; i < runs[0].size(); ++i) {
    const SweepResult& ref = runs[0][i];
    const SweepResult& got = runs[1][i];
    ASSERT_EQ(got.waveform.size(), ref.waveform.size());
    for (size_t k = 0; k < ref.waveform.size(); ++k) {
      EXPECT_EQ(got.waveform[k], ref.waveform[k]);  // bitwise
      EXPECT_EQ(got.sigma[k], ref.sigma[k]);
    }
  }
}

// --------------------------------------------- DC escalation on BJT decks

/// BJT version of the robustness suite's fold deck: a negative-conductance
/// node clamped by diode-connected BJTs instead of diodes. The solution
/// curve in the source-ramp parameter is S-shaped; the lambda = 1 solution
/// sits past a fold, reachable only by the arclength continuation.
NodeId buildBjtFoldDeck(Netlist& nl) {
  const NodeId s = nl.node("s");
  const NodeId a = nl.node("a");
  nl.add<VSource>("V1", s, kGround, SourceWave::dc(5.0), nl);
  nl.add<Resistor>("R1", s, a, 1e3, nl);
  nl.add<Vccs>("Gneg", a, kGround, a, kGround, -1e-2, nl);
  // Power-transistor clamps: IS must be large enough that the junction
  // carries mA-scale current near 0.55 V, which removes the would-be
  // lower-branch solution (a small-signal IS would leave a second
  // lambda = 1 equilibrium the plain ladder happily lands on).
  auto clamp = std::make_shared<BjtModel>();
  clamp->is = 1e-12;
  nl.add<Bjt>("Qp", a, a, kGround, clamp, 1.0, nl);      // diode, clamps up
  nl.add<Bjt>("Qn", kGround, kGround, a, clamp, 1.0, nl);  // clamps down
  return a;
}

TEST(BjtDcLadder, EscalatesToArclengthOnBjtFoldDeck) {
  Netlist nl;
  const NodeId a = buildBjtFoldDeck(nl);
  MnaSystem sys(nl);

  DcOptions opt;
  opt.gminSteps = 0;  // isolate the fold (see test_robustness fold deck)
  const DcResult dc = solveDc(sys, opt);
  EXPECT_TRUE(dc.usedArclength);
  EXPECT_GT(dc.arclengthSteps, 0);
  // The solution lands on the BJT-clamped upper branch (~ one V_BE).
  EXPECT_GT(dc.x[nl.nodeIndex(a)], 0.5);
  EXPECT_LT(dc.x[nl.nodeIndex(a)], 0.8);
  RealVector f;
  sys.evalDense(dc.x, 0.0, &f, nullptr, nullptr, nullptr, {});
  for (Real v : f) EXPECT_LT(std::fabs(v), 1e-8);
}

TEST(BjtDcLadder, OpAmpLadderExhaustionCarriesDiagnostics) {
  // Suppress every DC Newton acceptance on the full op-amp deck: the
  // ladder runs dry and the thrown ConvergenceError must carry the
  // structured post-mortem (analysis, stage, injected site).
  Netlist nl;
  buildBjtFollower(nl, BjtKit::bipolar5());
  MnaSystem sys(nl);

  FaultPlan plan;
  plan.arm("dc.newton.converge", 0, -1);
  FaultScope scope(plan);
  try {
    solveDc(sys);
    FAIL() << "solveDc should have thrown";
  } catch (const ConvergenceError& err) {
    const FailureDiagnostics* d = err.diagnostics();
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->analysis, "dc");
    EXPECT_FALSE(d->stage.empty());
    EXPECT_EQ(d->injectedFault, "dc.newton.converge");
  }
  EXPECT_GT(scope.firedTotal(), 0);
}

}  // namespace
}  // namespace psmn
