// End-to-end integration tests: the paper's three benchmark circuits with
// reduced Monte-Carlo sample counts. The full-size runs live in bench/.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/stdcell.hpp"
#include "core/correlation.hpp"
#include "core/mismatch_analysis.hpp"
#include "core/monte_carlo.hpp"
#include "engine/dc.hpp"
#include "engine/transient.hpp"
#include "meas/measure.hpp"

namespace psmn {
namespace {

TEST(ComparatorIntegration, OffsetSigmaMatchesMonteCarlo) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  const auto tb = buildComparatorTestbench(nl, kit);
  MnaSystem sys(nl);
  const Real T = tb.clkPeriod;

  MismatchAnalysisOptions opt;
  opt.pss.stepsPerPeriod = 400;
  opt.pss.warmupCycles = 40;
  TransientMismatchAnalysis an(sys, opt);
  an.runDriven(T);
  const VariationResult v = an.dcVariation(tb.vosIndex);
  EXPECT_GT(v.sigma(), 5e-3);
  EXPECT_LT(v.sigma(), 100e-3);

  // The input pair must dominate (paper Fig. 10).
  const Real inputShare = (v.varianceFromPrefix("M2.") +
                           v.varianceFromPrefix("M3.")) /
                          v.variance();
  EXPECT_GT(inputShare, 0.5);

  // MC ground truth (small N; 95% conf on sigma ~ +-16%).
  auto measure = [&](const MnaSystem& s) -> RealVector {
    TranOptions topt;
    topt.method = IntegrationMethod::kBackwardEuler;
    topt.storeStates = false;
    RealVector x;
    Real prev = 1e9;
    TranOptions t2 = topt;
    for (int block = 0; block < 8; ++block) {
      t2.initialState = block ? &x : nullptr;
      const TransientResult tr = runTransient(s, 0.0, 20 * T, T / 100, t2);
      x = tr.finalState;
      if (std::fabs(x[tb.vosIndex] - prev) < 2e-4) break;
      prev = x[tb.vosIndex];
    }
    return {x[tb.vosIndex]};
  };
  McOptions mo;
  mo.samples = 80;
  const McResult mc = MonteCarloEngine(sys, mo).run({"vos"}, measure);
  EXPECT_EQ(mc.failedSamples, 0u);
  EXPECT_NEAR(v.sigma() / mc.sigma(), 1.0, 0.3);
}

TEST(ComparatorIntegration, DcMatchCannotSeeDynamicOffsetDominators) {
  // The paper's motivation: the comparator has no informative DC operating
  // point (precharge clamps the outputs), so a DC-based analysis of the
  // output misses the decision-time behaviour that the LPTV analysis
  // captures. We check the testbench is periodic-only: the clock makes the
  // DC point precharged with outp == outn regardless of input offset.
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  const auto tb = buildComparatorTestbench(nl, kit);
  MnaSystem sys(nl);
  tb.comp.fet("M4")->setMismatchDelta(0, 0.05);  // large latch offset
  const DcResult dc = solveDc(sys);
  const Real outDiff = dc.x[nl.nodeIndex(tb.comp.outp)] -
                       dc.x[nl.nodeIndex(tb.comp.outn)];
  // Outputs stay precharged together at DC even with a big latch offset.
  EXPECT_NEAR(outDiff, 0.0, 1e-3);
  nl.clearMismatch();
}

TEST(LogicPathIntegration, DelaySigmaAndCorrelationSplit) {
  for (bool xFirst : {true, false}) {
    Netlist nl;
    auto kit = ProcessKit::cmos130();
    LogicPathOptions lo;
    lo.tRiseX = xFirst ? 1e-9 : 2.5e-9;
    lo.tRiseY = xFirst ? 2.5e-9 : 1e-9;
    const auto lp = buildLogicPath(nl, kit, lo);
    MnaSystem sys(nl);
    const int aIdx = nl.nodeIndex(lp.outA);
    const int bIdx = nl.nodeIndex(lp.outB);
    const Real half = kit.vdd / 2;

    MismatchAnalysisOptions opt;
    opt.pss.stepsPerPeriod = 800;
    opt.pss.warmupCycles = 2;
    TransientMismatchAnalysis an(sys, opt);
    an.runDriven(lp.period);
    const VariationResult dA = an.edgeDelayVariation(aIdx, half, -1);
    const VariationResult dB = an.edgeDelayVariation(bIdx, half, -1);
    const Real rho = correlationOf(dA, dB);
    if (xFirst) {
      // Shared gates a,b -> strong correlation (paper Table I: 0.885).
      EXPECT_GT(rho, 0.5);
      // The shared Y-buffer gates carry most of the shared variance.
      const Real sharedA =
          (dA.varianceFromPrefix("Ga") + dA.varianceFromPrefix("Gb")) /
          dA.variance();
      EXPECT_GT(sharedA, 0.3);
    } else {
      // Disjoint paths -> negligible correlation (paper: 0.01).
      EXPECT_LT(std::fabs(rho), 0.15);
    }

    // Sigma against a small MC.
    auto measure = [&](const MnaSystem& s) -> RealVector {
      TranOptions topt;
      topt.method = IntegrationMethod::kBackwardEuler;
      const TransientResult tr =
          runTransient(s, 0.0, lp.period, lp.period / 800, topt);
      const Waveform win = makeWaveform(
          tr.times, tr.states, nl.nodeIndex(xFirst ? lp.y : lp.x));
      const Waveform wa = makeWaveform(tr.times, tr.states, aIdx);
      const Waveform wb = makeWaveform(tr.times, tr.states, bIdx);
      return {measureDelay(win, wa, half, +1, -1),
              measureDelay(win, wb, half, +1, -1)};
    };
    McOptions mo;
    mo.samples = 120;
    const McResult mc = MonteCarloEngine(sys, mo).run({"dA", "dB"}, measure);
    EXPECT_NEAR(dA.sigma() / mc.sigma(0), 1.0, 0.3);
    EXPECT_NEAR(dB.sigma() / mc.sigma(1), 1.0, 0.3);
  }
}

TEST(LogicPathIntegration, Eq13DifferenceVarianceMatchesMc) {
  // var(dB - dA) from eq. 13 vs. direct MC of the difference (the DNL-style
  // combination of SS V-D).
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  const auto lp = buildLogicPath(nl, kit, {});
  MnaSystem sys(nl);
  const int aIdx = nl.nodeIndex(lp.outA);
  const int bIdx = nl.nodeIndex(lp.outB);
  const Real half = kit.vdd / 2;

  MismatchAnalysisOptions opt;
  opt.pss.stepsPerPeriod = 800;
  opt.pss.warmupCycles = 2;
  TransientMismatchAnalysis an(sys, opt);
  an.runDriven(lp.period);
  const VariationResult dA = an.edgeDelayVariation(aIdx, half, -1);
  const VariationResult dB = an.edgeDelayVariation(bIdx, half, -1);
  const Real sigmaDiff = std::sqrt(differenceVariance(dA, dB));

  auto measure = [&](const MnaSystem& s) -> RealVector {
    TranOptions topt;
    topt.method = IntegrationMethod::kBackwardEuler;
    const TransientResult tr =
        runTransient(s, 0.0, lp.period, lp.period / 800, topt);
    const Waveform wy = makeWaveform(tr.times, tr.states, nl.nodeIndex(lp.y));
    const Waveform wa = makeWaveform(tr.times, tr.states, aIdx);
    const Waveform wb = makeWaveform(tr.times, tr.states, bIdx);
    return {measureDelay(wy, wb, half, +1, -1) -
            measureDelay(wy, wa, half, +1, -1)};
  };
  McOptions mo;
  mo.samples = 150;
  const McResult mc = MonteCarloEngine(sys, mo).run({"dDiff"}, measure);
  EXPECT_NEAR(sigmaDiff / mc.sigma(), 1.0, 0.3);
}

TEST(RingOscillatorIntegration, FrequencySigmaMatchesMonteCarlo) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  const auto osc = buildRingOscillator(nl, kit);
  MnaSystem sys(nl);
  const int phaseIdx = nl.nodeIndex(osc.stages[0]);

  RealVector kick = solveDc(sys, {}).x;
  for (size_t i = 0; i < osc.stages.size(); ++i) {
    kick[nl.nodeIndex(osc.stages[i])] += (i % 2 ? 0.25 : -0.25);
  }
  TranOptions topt;
  topt.method = IntegrationMethod::kBackwardEuler;
  topt.initialState = &kick;
  const TransientResult tr = runTransient(sys, 0.0, 30e-9, 10e-12, topt);
  const Waveform w = makeWaveform(tr.times, tr.states, phaseIdx);
  const Real tGuess = measurePeriod(w, 0.6, 3);

  MismatchAnalysisOptions opt;
  opt.pss.stepsPerPeriod = 400;
  TransientMismatchAnalysis an(sys, opt);
  an.runAutonomous(tGuess, phaseIdx, tr.finalState);
  const VariationResult fv = an.frequencyVariation(phaseIdx);
  const Real f0 = 1.0 / an.pss().period;
  EXPECT_GT(fv.sigma() / f0, 1e-3);
  EXPECT_LT(fv.sigma() / f0, 0.1);

  const Real dt = an.pss().period / 400;
  const RealVector warm = tr.finalState;
  auto measure = [&](const MnaSystem& s) -> RealVector {
    TranOptions t2;
    t2.method = IntegrationMethod::kBackwardEuler;
    t2.initialState = &warm;
    t2.storeStates = true;
    const TransientResult trk = runTransient(s, 0.0, 20 * tGuess, dt, t2);
    const Waveform wk = makeWaveform(trk.times, trk.states, phaseIdx);
    try {
      return {measureFrequency(wk, 0.6, 6)};
    } catch (const Error& e) {
      throw SampleFailure(e.what());
    }
  };
  McOptions mo;
  mo.samples = 100;
  const McResult mc = MonteCarloEngine(sys, mo).run({"f"}, measure);
  EXPECT_LE(mc.failedSamples, 2u);
  EXPECT_NEAR(fv.sigma() / mc.sigma(), 1.0, 0.25);
}

TEST(RingOscillatorIntegration, PaperEq9AgreesWithProjectionReadout) {
  // For a pure-FM oscillator response the |P1|-based eq. 9 variance and the
  // projected variance coincide.
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  const auto osc = buildRingOscillator(nl, kit);
  MnaSystem sys(nl);
  const int phaseIdx = nl.nodeIndex(osc.stages[0]);
  RealVector kick = solveDc(sys, {}).x;
  for (size_t i = 0; i < osc.stages.size(); ++i) {
    kick[nl.nodeIndex(osc.stages[i])] += (i % 2 ? 0.25 : -0.25);
  }
  TranOptions topt;
  topt.method = IntegrationMethod::kBackwardEuler;
  topt.initialState = &kick;
  const TransientResult tr = runTransient(sys, 0.0, 30e-9, 10e-12, topt);
  const Waveform w = makeWaveform(tr.times, tr.states, phaseIdx);
  MismatchAnalysisOptions opt;
  opt.pss.stepsPerPeriod = 400;
  TransientMismatchAnalysis an(sys, opt);
  an.runAutonomous(measurePeriod(w, 0.6, 3), phaseIdx, tr.finalState);
  const VariationResult fv = an.frequencyVariation(phaseIdx);
  EXPECT_NEAR(std::sqrt(fv.paperVariance) / fv.sigma(), 1.0, 0.1);
}

}  // namespace
}  // namespace psmn
