// Golden dense-vs-sparse agreement tests for the RF engines: shooting PSS
// (driven and autonomous), the LPTV solver, periodic noise, and the
// time-domain statistical waveform must produce the same answers through
// the dense per-step factorizations and through the sparse
// TransientWorkspace path (cached pattern, SparseLU refactorization,
// batched monodromy/closure solves). Fixtures sit on both sides of the
// kAuto crossover so the sparse path is exercised where it is the default
// and where it is forced.
//
// Also holds the regression fixture for the autonomous-shooting FD step:
// shooting on the ring oscillator must converge in a handful of
// iterations (the 1e-7*T finite-difference step once made it limp to the
// iteration cap).
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/stdcell.hpp"
#include "engine/dc.hpp"
#include "rf/lptv.hpp"
#include "rf/pnoise.hpp"
#include "rf/ppv.hpp"
#include "rf/pss.hpp"
#include "rf/timedomain_noise.hpp"
#include "runtime/thread_pool.hpp"

namespace psmn {
namespace {

constexpr Real kGoldenTol = 1e-8;

PssOptions pssOptions(LinearSolverKind solver, int stepsPerPeriod) {
  PssOptions opt;
  opt.stepsPerPeriod = stepsPerPeriod;
  opt.solver = solver;
  return opt;
}

void expectStatesMatch(const PssResult& a, const PssResult& b, Real tol) {
  ASSERT_EQ(a.states.size(), b.states.size());
  for (size_t k = 0; k < a.states.size(); ++k) {
    for (size_t i = 0; i < a.states[k].size(); ++i) {
      EXPECT_NEAR(a.states[k][i], b.states[k][i], tol)
          << "k=" << k << " unknown " << i;
    }
  }
}

// ------------------------------------------------------------ driven PSS

struct ChainFixture {
  Netlist nl;
  std::unique_ptr<MnaSystem> sys;
  Real period = 0.0;
  int outIdx = -1;
  std::vector<InjectionSource> sources;

  explicit ChainFixture(int rows) {
    auto kit = ProcessKit::cmos130();
    InverterChainOptions copt;
    copt.stages = 8;
    copt.rows = rows;
    const auto chain = buildInverterChain(nl, kit, copt);
    sys = std::make_unique<MnaSystem>(nl);
    period = copt.period;
    outIdx = nl.nodeIndex(chain.taps.back());
    sources = sys->collectSources(true, false);
  }
};

class PssDrivenGolden : public ::testing::TestWithParam<int> {};

TEST_P(PssDrivenGolden, DenseAndSparseAgree) {
  ChainFixture ckt(GetParam());
  const PssResult dense =
      solvePssDriven(*ckt.sys, ckt.period, pssOptions(LinearSolverKind::kDense, 100));
  const PssResult sparse =
      solvePssDriven(*ckt.sys, ckt.period, pssOptions(LinearSolverKind::kSparse, 100));

  EXPECT_FALSE(dense.sparseLinearizations);
  EXPECT_TRUE(sparse.sparseLinearizations);
  EXPECT_FALSE(dense.gMats.empty());
  EXPECT_FALSE(sparse.gSpMats.empty());
  expectStatesMatch(dense, sparse, kGoldenTol);
  // Same discrete problem, same Newton: the shooting trajectories match.
  EXPECT_EQ(dense.shootingIterations, sparse.shootingIterations);
  for (size_t i = 0; i < ckt.sys->size(); ++i) {
    for (size_t j = 0; j < ckt.sys->size(); ++j) {
      EXPECT_NEAR(sparse.monodromy(i, j), dense.monodromy(i, j), kGoldenTol);
    }
  }
  // Stored linearizations agree (sparse pattern holds every dense entry).
  const size_t kMid = dense.stepCount() / 2;
  EXPECT_LT(maxAbsDiff(sparse.gSpMats[kMid].toDense(), dense.gMats[kMid]),
            1e-9);
  EXPECT_LT(maxAbsDiff(sparse.cSpMats[kMid].toDense(), dense.cMats[kMid]),
            1e-9);
}

// Below (rows=1: ~12 unknowns) and above (rows=8: ~66 unknowns) the kAuto
// sparse crossover.
INSTANTIATE_TEST_SUITE_P(ChainSizes, PssDrivenGolden, ::testing::Values(1, 8));

TEST(PssDrivenGolden, AutoSelectsSparseAboveThreshold) {
  ChainFixture big(8);
  ASSERT_GT(big.sys->size(), kSparseSolverThreshold);
  const PssResult pss =
      solvePssDriven(*big.sys, big.period, pssOptions(LinearSolverKind::kAuto, 60));
  EXPECT_TRUE(pss.sparseLinearizations);
  EXPECT_TRUE(pss.gMats.empty());  // no dense orbit storage on the sparse path

  ChainFixture small(1);
  ASSERT_LT(small.sys->size(), kSparseSolverThreshold);
  const PssResult pssSmall =
      solvePssDriven(*small.sys, small.period, pssOptions(LinearSolverKind::kAuto, 60));
  EXPECT_FALSE(pssSmall.sparseLinearizations);
}

// -------------------------------------------------------- autonomous PSS

struct RingGolden {
  Netlist nl;
  std::unique_ptr<MnaSystem> sys;
  RingOscillatorCircuit osc;
  RingWarmup warm;

  explicit RingGolden(int stages, Real runTime, Real dt) {
    auto kit = ProcessKit::cmos130();
    RingOscillatorOptions oopt;
    oopt.stages = stages;
    osc = buildRingOscillator(nl, kit, oopt);
    sys = std::make_unique<MnaSystem>(nl);
    warm = warmupRingOscillator(*sys, osc, runTime, dt);
  }
};

void expectAutonomousAgree(RingGolden& ring, Real periodGuess,
                           const RealVector& x0, int stepsPerPeriod,
                           Real periodTol, Real stateTol, Real dxdTTol) {
  const PssResult dense = solvePssAutonomous(
      *ring.sys, periodGuess, ring.warm.phaseIndex, x0,
      pssOptions(LinearSolverKind::kDense, stepsPerPeriod));
  const PssResult sparse = solvePssAutonomous(
      *ring.sys, periodGuess, ring.warm.phaseIndex, x0,
      pssOptions(LinearSolverKind::kSparse, stepsPerPeriod));

  // Period: the headline quantity of the oscillator analyses.
  EXPECT_NEAR(sparse.period, dense.period, periodTol * dense.period);
  expectStatesMatch(dense, sparse, stateTol);
  // dxdT is a finite difference over dT = 1e-4*T, so the per-backend
  // Newton noise floor is amplified by 1/dT: compare it to a tolerance
  // that respects the fixture's conditioning, not the golden tolerance.
  for (size_t i = 0; i < ring.sys->size(); ++i) {
    EXPECT_NEAR(sparse.dxdT[i], dense.dxdT[i],
                dxdTTol * std::max(1.0, std::fabs(dense.dxdT[i])));
  }
}

TEST(PssAutonomousGolden, SmallRingDenseAndSparseAgree) {
  // 7 unknowns: below the crossover. Both backends run the full shooting
  // sequence from the transient warmup state.
  RingGolden ring(5, 30e-9, 10e-12);
  expectAutonomousAgree(ring, ring.warm.periodEstimate, ring.warm.state, 300,
                        1e-8, 1e-7, 1e-6);
}

TEST(PssAutonomousGolden, LargeRingDenseAndSparseAgree) {
  // 63 stages = 65 unknowns: above the crossover. The alternating kick
  // settles onto a multi-wave rotating mode: (Phi - I) is badly
  // conditioned and the phase level is crossed once per wave, so distinct
  // far-from-orbit starts can legitimately lock onto different (time
  // shifted) solutions. For a meaningful golden comparison, shoot once
  // with the cheap sparse path to land on the orbit, then let both
  // backends solve the same seeded problem — every ingredient (period
  // integration, monodromy accumulation, bordered update, trajectory
  // pack) still runs per backend, and the answers must coincide almost to
  // machine precision.
  RingGolden ring(63, 400e-9, 20e-12);
  const PssResult seed = solvePssAutonomous(
      *ring.sys, ring.warm.periodEstimate, ring.warm.phaseIndex,
      ring.warm.state, pssOptions(LinearSolverKind::kSparse, 180));
  EXPECT_TRUE(seed.sparseLinearizations);
  expectAutonomousAgree(ring, seed.period, seed.states[0], 180, 1e-10, 1e-9,
                        5e-3);
}

TEST(PssAutonomousGolden, ShootingConvergesFastOnRingOscillator) {
  // Regression fixture for the FD period-derivative step: with the step at
  // 1e-7*T the bordered Jacobian drowned in inner-Newton noise and
  // shooting limped to ~58 iterations; at 1e-4*T it converges in ~14. Pin
  // a hard ceiling so the fragility cannot silently return (on either
  // backend).
  RingGolden ring(5, 30e-9, 10e-12);
  for (LinearSolverKind solver :
       {LinearSolverKind::kDense, LinearSolverKind::kSparse}) {
    const PssResult pss = solvePssAutonomous(
        *ring.sys, ring.warm.periodEstimate, ring.warm.phaseIndex,
        ring.warm.state, pssOptions(solver, 300));
    EXPECT_LE(pss.shootingIterations, 20)
        << (solver == LinearSolverKind::kDense ? "dense" : "sparse");
  }
}

// ------------------------------------------------------------- LPTV

TEST(LptvGolden, TransferAgreesAcrossBackendsOnLargeChain) {
  ChainFixture ckt(8);
  ASSERT_GT(ckt.sys->size(), kSparseSolverThreshold);
  const PssResult dense =
      solvePssDriven(*ckt.sys, ckt.period, pssOptions(LinearSolverKind::kDense, 80));
  const PssResult sparse =
      solvePssDriven(*ckt.sys, ckt.period, pssOptions(LinearSolverKind::kSparse, 80));

  const std::span<const InjectionSource> srcs(ckt.sources.data(), 12);
  LptvSolver denseSolver(*ckt.sys, dense);
  LptvSolver sparseSolver(*ckt.sys, sparse);
  const Real fOff = 1.0;
  const LptvSolution dSol = denseSolver.solveDirect(srcs, fOff);
  const LptvSolution sSol = sparseSolver.solveDirect(srcs, fOff);
  for (size_t s = 0; s < srcs.size(); ++s) {
    for (int harmonic : {0, 1, -1}) {
      const Cplx d = dSol.harmonic(s, ckt.outIdx, harmonic);
      const Cplx sp = sSol.harmonic(s, ckt.outIdx, harmonic);
      EXPECT_LT(std::abs(sp - d), kGoldenTol + 1e-6 * std::abs(d))
          << "source " << s << " harmonic " << harmonic;
    }
  }
  // Adjoint path: sparse transposed solves against the dense adjoint.
  const CplxVector dAdj = denseSolver.solveAdjoint(srcs, fOff, ckt.outIdx, 0);
  const CplxVector sAdj = sparseSolver.solveAdjoint(srcs, fOff, ckt.outIdx, 0);
  for (size_t s = 0; s < srcs.size(); ++s) {
    EXPECT_LT(std::abs(sAdj[s] - dAdj[s]), kGoldenTol + 1e-6 * std::abs(dAdj[s]));
  }
  // And adjoint == direct within the sparse backend itself.
  for (size_t s = 0; s < srcs.size(); ++s) {
    const Cplx d = sSol.harmonic(s, ckt.outIdx, 0);
    EXPECT_LT(std::abs(sAdj[s] - d), 1e-9 + 1e-6 * std::abs(d));
  }
}

// ----------------------------------------------------- noise / sigma(t)

TEST(PnoiseGolden, SidebandPsdAndStatisticalWaveformAgree) {
  ChainFixture ckt(8);
  const PssResult dense =
      solvePssDriven(*ckt.sys, ckt.period, pssOptions(LinearSolverKind::kDense, 80));
  const PssResult sparse =
      solvePssDriven(*ckt.sys, ckt.period, pssOptions(LinearSolverKind::kSparse, 80));

  std::vector<InjectionSource> srcs(ckt.sources.begin(),
                                    ckt.sources.begin() + 12);
  PnoiseAnalysis pnDense(*ckt.sys, dense, srcs, PnoiseOptions{});
  PnoiseAnalysis pnSparse(*ckt.sys, sparse, srcs, PnoiseOptions{});
  pnDense.run();
  pnSparse.run();

  for (int harmonic : {0, 1}) {
    const PnoiseSideband sbD = pnDense.sideband(ckt.outIdx, harmonic);
    const PnoiseSideband sbS = pnSparse.sideband(ckt.outIdx, harmonic);
    EXPECT_NEAR(sbS.totalPsd, sbD.totalPsd,
                kGoldenTol + 1e-6 * sbD.totalPsd);
    for (size_t s = 0; s < srcs.size(); ++s) {
      EXPECT_NEAR(sbS.contribution[s], sbD.contribution[s],
                  kGoldenTol + 1e-6 * sbD.contribution[s]);
    }
  }

  const StatisticalWaveform swD = statisticalWaveform(pnDense, ckt.outIdx);
  const StatisticalWaveform swS = statisticalWaveform(pnSparse, ckt.outIdx);
  ASSERT_EQ(swD.sigma.size(), swS.sigma.size());
  for (size_t k = 0; k < swD.sigma.size(); ++k) {
    EXPECT_NEAR(swS.sigma[k], swD.sigma[k], kGoldenTol + 1e-6 * swD.sigma[k]);
    EXPECT_NEAR(swS.nominal[k], swD.nominal[k], kGoldenTol);
  }
}

// ------------------------------------- parallel RF paths (pool handles)

constexpr Real kParallelTol = 1e-12;

TEST(PssParallelGolden, DrivenMonodromyMatchesSerialAcrossJobCounts) {
  // The parallel monodromy partitions the column block across pool slots
  // against the shared accepted-step factorization: each column's
  // assembly, solve, and write-back involve only that column, so the
  // whole shooting solve must match the serial path to the last bit —
  // asserted here at 1e-12 on both backends and several jobs counts.
  for (LinearSolverKind solver :
       {LinearSolverKind::kDense, LinearSolverKind::kSparse}) {
    ChainFixture ckt(8);
    const PssOptions sopt = pssOptions(solver, 60);
    const PssResult serial = solvePssDriven(*ckt.sys, ckt.period, sopt);
    for (size_t jobs : {2u, 4u}) {
      ThreadPool pool(jobs);
      PssOptions popt = sopt;
      popt.pool = &pool;
      const PssResult par = solvePssDriven(*ckt.sys, ckt.period, popt);
      EXPECT_EQ(par.shootingIterations, serial.shootingIterations);
      expectStatesMatch(serial, par, kParallelTol);
      for (size_t i = 0; i < ckt.sys->size(); ++i) {
        for (size_t j = 0; j < ckt.sys->size(); ++j) {
          EXPECT_NEAR(par.monodromy(i, j), serial.monodromy(i, j),
                      kParallelTol)
              << "jobs=" << jobs << " (" << i << "," << j << ")";
        }
      }
    }
  }
}

TEST(PssParallelGolden, AutonomousShootingMatchesSerialWithPool) {
  RingGolden ring(5, 30e-9, 10e-12);
  for (LinearSolverKind solver :
       {LinearSolverKind::kDense, LinearSolverKind::kSparse}) {
    const PssOptions sopt = pssOptions(solver, 200);
    const PssResult serial =
        solvePssAutonomous(*ring.sys, ring.warm.periodEstimate,
                           ring.warm.phaseIndex, ring.warm.state, sopt);
    ThreadPool pool(4);
    PssOptions popt = sopt;
    popt.pool = &pool;
    const PssResult par =
        solvePssAutonomous(*ring.sys, ring.warm.periodEstimate,
                           ring.warm.phaseIndex, ring.warm.state, popt);
    EXPECT_EQ(par.shootingIterations, serial.shootingIterations);
    EXPECT_NEAR(par.period, serial.period, kParallelTol * serial.period);
    expectStatesMatch(serial, par, kParallelTol);
  }
}

TEST(PssParallelGolden, IntegrateMonodromyMatchesSerialOnWarmOrbit) {
  // The exposed kernel (what BM_MonodromyParallel times): one period of
  // monodromy accumulation from a warm state, pool vs serial.
  RingGolden ring(5, 30e-9, 10e-12);
  PssOptions opt = pssOptions(LinearSolverKind::kSparse, 200);
  PssWorkspace wsSerial;
  RealVector xSerial = ring.warm.state;
  const RealMatrix serial =
      integrateMonodromy(*ring.sys, xSerial, 0.0, ring.warm.periodEstimate,
                         opt.stepsPerPeriod, opt, wsSerial);
  ThreadPool pool(4);
  opt.pool = &pool;
  PssWorkspace wsPar;
  RealVector xPar = ring.warm.state;
  const RealMatrix par =
      integrateMonodromy(*ring.sys, xPar, 0.0, ring.warm.periodEstimate,
                         opt.stepsPerPeriod, opt, wsPar);
  for (size_t i = 0; i < ring.sys->size(); ++i) {
    EXPECT_EQ(xPar[i], xSerial[i]) << i;  // integration itself is serial
    for (size_t j = 0; j < ring.sys->size(); ++j) {
      EXPECT_NEAR(par(i, j), serial(i, j), kParallelTol);
    }
  }
}

TEST(LptvParallelGolden, DirectAndAdjointMatchSerialAcrossJobCounts) {
  // The B_k / V_k recursions fan their column blocks across the pool;
  // every envelope and every adjoint transfer must match the serial
  // solver at 1e-12, on both orbit backends.
  for (LinearSolverKind solver :
       {LinearSolverKind::kDense, LinearSolverKind::kSparse}) {
    ChainFixture ckt(8);
    const PssResult pss =
        solvePssDriven(*ckt.sys, ckt.period, pssOptions(solver, 60));
    const std::span<const InjectionSource> srcs(ckt.sources.data(), 8);
    const Real fOff = 1.0;
    const LptvSolver serial(*ckt.sys, pss);
    const LptvSolution sSol = serial.solveDirect(srcs, fOff);
    const CplxVector sAdj = serial.solveAdjoint(srcs, fOff, ckt.outIdx, 0);
    for (size_t jobs : {2u, 4u}) {
      ThreadPool pool(jobs);
      const LptvSolver par(*ckt.sys, pss, LptvOptions{&pool});
      const LptvSolution pSol = par.solveDirect(srcs, fOff);
      ASSERT_EQ(pSol.envelopes.size(), sSol.envelopes.size());
      for (size_t s = 0; s < srcs.size(); ++s) {
        ASSERT_EQ(pSol.envelopes[s].size(), sSol.envelopes[s].size());
        for (size_t k = 0; k < sSol.envelopes[s].size(); ++k) {
          for (size_t i = 0; i < ckt.sys->size(); ++i) {
            EXPECT_NEAR(std::abs(pSol.envelopes[s][k][i] -
                                 sSol.envelopes[s][k][i]),
                        0.0, kParallelTol)
                << "jobs=" << jobs << " s=" << s << " k=" << k;
          }
        }
      }
      const CplxVector pAdj = par.solveAdjoint(srcs, fOff, ckt.outIdx, 0);
      for (size_t s = 0; s < srcs.size(); ++s) {
        EXPECT_NEAR(std::abs(pAdj[s] - sAdj[s]), 0.0, kParallelTol)
            << "jobs=" << jobs << " s=" << s;
      }
    }
  }
}

// --------------------------------------------------------------- PPV

TEST(PpvGolden, FrequencySensitivityAgreesAcrossBackends) {
  RingGolden ring(5, 30e-9, 10e-12);
  const PssResult dense = solvePssAutonomous(
      *ring.sys, ring.warm.periodEstimate, ring.warm.phaseIndex,
      ring.warm.state, pssOptions(LinearSolverKind::kDense, 300));
  const PssResult sparse = solvePssAutonomous(
      *ring.sys, ring.warm.periodEstimate, ring.warm.phaseIndex,
      ring.warm.state, pssOptions(LinearSolverKind::kSparse, 300));
  const PpvResult ppvD = computePpv(*ring.sys, dense);
  const PpvResult ppvS = computePpv(*ring.sys, sparse);
  const auto sources = ring.sys->collectSources(true, false);
  for (size_t s = 0; s < std::min<size_t>(4, sources.size()); ++s) {
    const Real d = ppvD.frequencySensitivity(*ring.sys, dense, sources[s]);
    const Real sp = ppvS.frequencySensitivity(*ring.sys, sparse, sources[s]);
    EXPECT_NEAR(sp, d, 1e-6 * std::fabs(d) + 1e-9) << sources[s].name;
  }
}

}  // namespace
}  // namespace psmn
