// Golden agreement tests for the sparse solver path: the sparse engines
// (cached-pattern assembly + SparseLU refactorization + batched multi-RHS
// sensitivity solves) must reproduce the dense path on the benchmark
// fixtures to near machine precision. Newton tolerances are tightened so
// both backends converge to the same discrete solution and the comparison
// threshold of 1e-10 is meaningful.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/stdcell.hpp"
#include "engine/dc.hpp"
#include "engine/transient.hpp"
#include "engine/transient_sensitivity.hpp"

namespace psmn {
namespace {

constexpr Real kGoldenTol = 1e-10;

TranOptions tightOptions(LinearSolverKind solver) {
  TranOptions opt;
  opt.method = IntegrationMethod::kBackwardEuler;
  opt.residualTol = 1e-12;
  opt.updateTol = 1e-12;
  opt.solver = solver;
  return opt;
}

// ------------------------------------------------------------- assembly

TEST(SparseMna, EvalSparseMatchesEvalDense) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  buildComparatorTestbench(nl, kit);
  MnaSystem sys(nl);
  const size_t n = sys.size();
  RealVector x(n);
  for (size_t i = 0; i < n; ++i) x[i] = 0.3 + 0.05 * static_cast<Real>(i % 7);

  MnaSystem::EvalOptions eopt;
  eopt.gshunt = 1e-6;  // exercises the node-diagonal slots
  RealVector fd, qd, fs, qs;
  RealMatrix g, c;
  RealSparse gsp, csp;
  sys.evalDense(x, 0.7e-9, &fd, &qd, &g, &c, eopt);
  sys.evalSparse(x, 0.7e-9, &fs, &qs, &gsp, &csp, eopt);

  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(fs[i], fd[i], 1e-14) << "f[" << i << "]";
    EXPECT_NEAR(qs[i], qd[i], 1e-14) << "q[" << i << "]";
  }
  EXPECT_LT(maxAbsDiff(gsp.toDense(), g), 1e-14);
  EXPECT_LT(maxAbsDiff(csp.toDense(), c), 1e-14);

  // Re-stamping at a different iterate reuses the pattern and still agrees.
  const size_t nnzG = gsp.nonZeros();
  for (size_t i = 0; i < n; ++i) x[i] = 0.9 - 0.04 * static_cast<Real>(i % 5);
  sys.evalDense(x, 1.3e-9, &fd, &qd, &g, &c, eopt);
  sys.evalSparse(x, 1.3e-9, &fs, &qs, &gsp, &csp, eopt);
  EXPECT_EQ(gsp.nonZeros(), nnzG);  // cached pattern, not rebuilt
  EXPECT_LT(maxAbsDiff(gsp.toDense(), g), 1e-14);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(fs[i], fd[i], 1e-14);
}

// ------------------------------------------------------------------- DC

TEST(SparseDc, OperatingPointMatchesDense) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  buildInverterChain(nl, kit, {});
  MnaSystem sys(nl);
  DcOptions dense;
  dense.solver = LinearSolverKind::kDense;
  DcOptions sparse;
  sparse.solver = LinearSolverKind::kSparse;
  const DcResult xd = solveDc(sys, dense);
  const DcResult xs = solveDc(sys, sparse);
  for (size_t i = 0; i < sys.size(); ++i) {
    EXPECT_NEAR(xs.x[i], xd.x[i], kGoldenTol) << "unknown " << i;
  }
}

// -------------------------------------------------------------- transient

TEST(SparseTransient, InverterChainMatchesDense) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  InverterChainOptions copt;
  copt.stages = 12;
  const auto chain = buildInverterChain(nl, kit, copt);
  MnaSystem sys(nl);

  const Real t1 = 2e-9, dt = 5e-12;
  const TransientResult dense =
      runTransient(sys, 0.0, t1, dt, tightOptions(LinearSolverKind::kDense));
  const TransientResult sparse =
      runTransient(sys, 0.0, t1, dt, tightOptions(LinearSolverKind::kSparse));

  ASSERT_EQ(dense.times.size(), sparse.times.size());
  for (size_t k = 0; k < dense.times.size(); ++k) {
    for (size_t i = 0; i < sys.size(); ++i) {
      EXPECT_NEAR(sparse.states[k][i], dense.states[k][i], kGoldenTol)
          << "t=" << dense.times[k] << " unknown " << i;
    }
  }
}

TEST(SparseTransient, RingOscillatorMatchesDense) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  const auto osc = buildRingOscillator(nl, kit);
  MnaSystem sys(nl);
  RealVector kick = solveDc(sys, {}).x;
  for (size_t i = 0; i < osc.stages.size(); ++i) {
    kick[nl.nodeIndex(osc.stages[i])] += (i % 2 ? 0.25 : -0.25);
  }

  TranOptions dopt = tightOptions(LinearSolverKind::kDense);
  dopt.initialState = &kick;
  TranOptions sopt = tightOptions(LinearSolverKind::kSparse);
  sopt.initialState = &kick;
  const Real t1 = 1e-9, dt = 5e-12;
  const TransientResult dense = runTransient(sys, 0.0, t1, dt, dopt);
  const TransientResult sparse = runTransient(sys, 0.0, t1, dt, sopt);

  ASSERT_EQ(dense.times.size(), sparse.times.size());
  for (size_t k = 0; k < dense.times.size(); ++k) {
    for (size_t i = 0; i < sys.size(); ++i) {
      EXPECT_NEAR(sparse.states[k][i], dense.states[k][i], kGoldenTol)
          << "t=" << dense.times[k] << " unknown " << i;
    }
  }
}

TEST(SparseTransient, TrapezoidalAdaptiveMatchesDense) {
  // The non-BE methods and the adaptive controller share the same kernel;
  // spot-check they agree across backends too.
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  InverterChainOptions copt;
  copt.stages = 10;
  buildInverterChain(nl, kit, copt);
  MnaSystem sys(nl);

  TranOptions dopt = tightOptions(LinearSolverKind::kDense);
  dopt.method = IntegrationMethod::kTrapezoidal;
  dopt.adaptive = true;
  TranOptions sopt = dopt;
  sopt.solver = LinearSolverKind::kSparse;
  const TransientResult dense = runTransient(sys, 0.0, 1e-9, 5e-12, dopt);
  const TransientResult sparse = runTransient(sys, 0.0, 1e-9, 5e-12, sopt);

  ASSERT_EQ(dense.times.size(), sparse.times.size());
  for (size_t k = 0; k < dense.times.size(); ++k) {
    for (size_t i = 0; i < sys.size(); ++i) {
      EXPECT_NEAR(sparse.states[k][i], dense.states[k][i], kGoldenTol);
    }
  }
}

// ------------------------------------------------------------ sensitivity

TEST(SparseSensitivity, InverterChainMatchesDense) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  InverterChainOptions copt;
  copt.stages = 10;
  buildInverterChain(nl, kit, copt);
  MnaSystem sys(nl);
  const auto sources = sys.collectSources(true, false);
  ASSERT_GT(sources.size(), 10u);  // two mismatch params per MOSFET

  const Real t1 = 1.5e-9, dt = 5e-12;
  const TransientSensitivityResult dense = runTransientSensitivity(
      sys, 0.0, t1, dt, sources, tightOptions(LinearSolverKind::kDense));
  const TransientSensitivityResult sparse = runTransientSensitivity(
      sys, 0.0, t1, dt, sources, tightOptions(LinearSolverKind::kSparse));

  ASSERT_EQ(dense.times.size(), sparse.times.size());
  for (size_t k = 0; k < dense.times.size(); ++k) {
    for (size_t i = 0; i < sys.size(); ++i) {
      EXPECT_NEAR(sparse.states[k][i], dense.states[k][i], kGoldenTol);
    }
  }
  for (size_t s = 0; s < sources.size(); ++s) {
    for (size_t k = 0; k < dense.times.size(); ++k) {
      for (size_t i = 0; i < sys.size(); ++i) {
        const Real ref = dense.sens[s][k][i];
        EXPECT_NEAR(sparse.sens[s][k][i], ref,
                    kGoldenTol * std::max(1.0, std::fabs(ref)))
            << sources[s].name << " t=" << dense.times[k];
      }
    }
  }
  // The shared-Jacobian recursion must not add factorizations beyond the
  // Newton kernel's own (plus the initial DC-sensitivity factor).
  EXPECT_LE(sparse.luFactorizations,
            sparse.times.size() * 10);  // sanity ceiling, not a perf claim
}

TEST(SparseSensitivity, RingOscillatorMatchesDense) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  const auto osc = buildRingOscillator(nl, kit);
  MnaSystem sys(nl);
  const auto sources = sys.collectSources(true, false);
  RealVector kick = solveDc(sys, {}).x;
  for (size_t i = 0; i < osc.stages.size(); ++i) {
    kick[nl.nodeIndex(osc.stages[i])] += (i % 2 ? 0.25 : -0.25);
  }

  TranOptions dopt = tightOptions(LinearSolverKind::kDense);
  dopt.initialState = &kick;
  TranOptions sopt = tightOptions(LinearSolverKind::kSparse);
  sopt.initialState = &kick;
  const Real t1 = 0.5e-9, dt = 2e-12;
  const TransientSensitivityResult dense =
      runTransientSensitivity(sys, 0.0, t1, dt, sources, dopt);
  const TransientSensitivityResult sparse =
      runTransientSensitivity(sys, 0.0, t1, dt, sources, sopt);

  ASSERT_EQ(dense.times.size(), sparse.times.size());
  for (size_t s = 0; s < sources.size(); ++s) {
    for (size_t k = 0; k < dense.times.size(); ++k) {
      for (size_t i = 0; i < sys.size(); ++i) {
        const Real ref = dense.sens[s][k][i];
        EXPECT_NEAR(sparse.sens[s][k][i], ref,
                    kGoldenTol * std::max(1.0, std::fabs(ref)));
      }
    }
  }
}

}  // namespace
}  // namespace psmn
