// Golden agreement tests for the sparse solver path: the sparse engines
// (cached-pattern assembly + SparseLU refactorization + batched multi-RHS
// sensitivity solves) must reproduce the dense path on the benchmark
// fixtures to near machine precision. Newton tolerances are tightened so
// both backends converge to the same discrete solution and the comparison
// threshold of 1e-10 is meaningful.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/stdcell.hpp"
#include "engine/dc.hpp"
#include "engine/transient.hpp"
#include "engine/transient_sensitivity.hpp"

namespace psmn {
namespace {

constexpr Real kGoldenTol = 1e-10;

TranOptions tightOptions(LinearSolverKind solver) {
  TranOptions opt;
  opt.method = IntegrationMethod::kBackwardEuler;
  opt.residualTol = 1e-12;
  opt.updateTol = 1e-12;
  opt.solver = solver;
  return opt;
}

// ------------------------------------------------------------- assembly

TEST(SparseMna, EvalSparseMatchesEvalDense) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  buildComparatorTestbench(nl, kit);
  MnaSystem sys(nl);
  const size_t n = sys.size();
  RealVector x(n);
  for (size_t i = 0; i < n; ++i) x[i] = 0.3 + 0.05 * static_cast<Real>(i % 7);

  MnaSystem::EvalOptions eopt;
  eopt.gshunt = 1e-6;  // exercises the node-diagonal slots
  RealVector fd, qd, fs, qs;
  RealMatrix g, c;
  RealSparse gsp, csp;
  sys.evalDense(x, 0.7e-9, &fd, &qd, &g, &c, eopt);
  sys.evalSparse(x, 0.7e-9, &fs, &qs, &gsp, &csp, eopt);

  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(fs[i], fd[i], 1e-14) << "f[" << i << "]";
    EXPECT_NEAR(qs[i], qd[i], 1e-14) << "q[" << i << "]";
  }
  EXPECT_LT(maxAbsDiff(gsp.toDense(), g), 1e-14);
  EXPECT_LT(maxAbsDiff(csp.toDense(), c), 1e-14);

  // Re-stamping at a different iterate reuses the pattern and still agrees.
  const size_t nnzG = gsp.nonZeros();
  for (size_t i = 0; i < n; ++i) x[i] = 0.9 - 0.04 * static_cast<Real>(i % 5);
  sys.evalDense(x, 1.3e-9, &fd, &qd, &g, &c, eopt);
  sys.evalSparse(x, 1.3e-9, &fs, &qs, &gsp, &csp, eopt);
  EXPECT_EQ(gsp.nonZeros(), nnzG);  // cached pattern, not rebuilt
  EXPECT_LT(maxAbsDiff(gsp.toDense(), g), 1e-14);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(fs[i], fd[i], 1e-14);
}

// ------------------------------------------------------------------- DC

TEST(SparseDc, OperatingPointMatchesDense) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  buildInverterChain(nl, kit, {});
  MnaSystem sys(nl);
  DcOptions dense;
  dense.solver = LinearSolverKind::kDense;
  DcOptions sparse;
  sparse.solver = LinearSolverKind::kSparse;
  const DcResult xd = solveDc(sys, dense);
  const DcResult xs = solveDc(sys, sparse);
  for (size_t i = 0; i < sys.size(); ++i) {
    EXPECT_NEAR(xs.x[i], xd.x[i], kGoldenTol) << "unknown " << i;
  }
}

// -------------------------------------------------------------- transient

TEST(SparseTransient, InverterChainMatchesDense) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  InverterChainOptions copt;
  copt.stages = 12;
  const auto chain = buildInverterChain(nl, kit, copt);
  MnaSystem sys(nl);

  const Real t1 = 2e-9, dt = 5e-12;
  const TransientResult dense =
      runTransient(sys, 0.0, t1, dt, tightOptions(LinearSolverKind::kDense));
  const TransientResult sparse =
      runTransient(sys, 0.0, t1, dt, tightOptions(LinearSolverKind::kSparse));

  ASSERT_EQ(dense.times.size(), sparse.times.size());
  for (size_t k = 0; k < dense.times.size(); ++k) {
    for (size_t i = 0; i < sys.size(); ++i) {
      EXPECT_NEAR(sparse.states[k][i], dense.states[k][i], kGoldenTol)
          << "t=" << dense.times[k] << " unknown " << i;
    }
  }
}

TEST(SparseTransient, RingOscillatorMatchesDense) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  const auto osc = buildRingOscillator(nl, kit);
  MnaSystem sys(nl);
  RealVector kick = solveDc(sys, {}).x;
  for (size_t i = 0; i < osc.stages.size(); ++i) {
    kick[nl.nodeIndex(osc.stages[i])] += (i % 2 ? 0.25 : -0.25);
  }

  TranOptions dopt = tightOptions(LinearSolverKind::kDense);
  dopt.initialState = &kick;
  TranOptions sopt = tightOptions(LinearSolverKind::kSparse);
  sopt.initialState = &kick;
  const Real t1 = 1e-9, dt = 5e-12;
  const TransientResult dense = runTransient(sys, 0.0, t1, dt, dopt);
  const TransientResult sparse = runTransient(sys, 0.0, t1, dt, sopt);

  ASSERT_EQ(dense.times.size(), sparse.times.size());
  for (size_t k = 0; k < dense.times.size(); ++k) {
    for (size_t i = 0; i < sys.size(); ++i) {
      EXPECT_NEAR(sparse.states[k][i], dense.states[k][i], kGoldenTol)
          << "t=" << dense.times[k] << " unknown " << i;
    }
  }
}

TEST(SparseTransient, TrapezoidalAdaptiveMatchesDense) {
  // The non-BE methods and the adaptive controller share the same kernel;
  // spot-check they agree across backends too.
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  InverterChainOptions copt;
  copt.stages = 10;
  buildInverterChain(nl, kit, copt);
  MnaSystem sys(nl);

  TranOptions dopt = tightOptions(LinearSolverKind::kDense);
  dopt.method = IntegrationMethod::kTrapezoidal;
  dopt.adaptive = true;
  TranOptions sopt = dopt;
  sopt.solver = LinearSolverKind::kSparse;
  const TransientResult dense = runTransient(sys, 0.0, 1e-9, 5e-12, dopt);
  const TransientResult sparse = runTransient(sys, 0.0, 1e-9, 5e-12, sopt);

  ASSERT_EQ(dense.times.size(), sparse.times.size());
  for (size_t k = 0; k < dense.times.size(); ++k) {
    for (size_t i = 0; i < sys.size(); ++i) {
      EXPECT_NEAR(sparse.states[k][i], dense.states[k][i], kGoldenTol);
    }
  }
}

// ------------------------------------------------------------ sensitivity

TEST(SparseSensitivity, InverterChainMatchesDense) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  InverterChainOptions copt;
  copt.stages = 10;
  buildInverterChain(nl, kit, copt);
  MnaSystem sys(nl);
  const auto sources = sys.collectSources(true, false);
  ASSERT_GT(sources.size(), 10u);  // two mismatch params per MOSFET

  const Real t1 = 1.5e-9, dt = 5e-12;
  const TransientSensitivityResult dense = runTransientSensitivity(
      sys, 0.0, t1, dt, sources, tightOptions(LinearSolverKind::kDense));
  const TransientSensitivityResult sparse = runTransientSensitivity(
      sys, 0.0, t1, dt, sources, tightOptions(LinearSolverKind::kSparse));

  ASSERT_EQ(dense.times.size(), sparse.times.size());
  for (size_t k = 0; k < dense.times.size(); ++k) {
    for (size_t i = 0; i < sys.size(); ++i) {
      EXPECT_NEAR(sparse.states[k][i], dense.states[k][i], kGoldenTol);
    }
  }
  for (size_t s = 0; s < sources.size(); ++s) {
    for (size_t k = 0; k < dense.times.size(); ++k) {
      for (size_t i = 0; i < sys.size(); ++i) {
        const Real ref = dense.sens[s][k][i];
        EXPECT_NEAR(sparse.sens[s][k][i], ref,
                    kGoldenTol * std::max(1.0, std::fabs(ref)))
            << sources[s].name << " t=" << dense.times[k];
      }
    }
  }
  // The shared-Jacobian recursion must not add factorizations beyond the
  // Newton kernel's own (plus the initial DC-sensitivity factor).
  EXPECT_LE(sparse.stats.totalFactorizations(),
            sparse.times.size() * 10);  // sanity ceiling, not a perf claim
}

TEST(SparseSensitivity, RingOscillatorMatchesDense) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  const auto osc = buildRingOscillator(nl, kit);
  MnaSystem sys(nl);
  const auto sources = sys.collectSources(true, false);
  RealVector kick = solveDc(sys, {}).x;
  for (size_t i = 0; i < osc.stages.size(); ++i) {
    kick[nl.nodeIndex(osc.stages[i])] += (i % 2 ? 0.25 : -0.25);
  }

  TranOptions dopt = tightOptions(LinearSolverKind::kDense);
  dopt.initialState = &kick;
  TranOptions sopt = tightOptions(LinearSolverKind::kSparse);
  sopt.initialState = &kick;
  const Real t1 = 0.5e-9, dt = 2e-12;
  const TransientSensitivityResult dense =
      runTransientSensitivity(sys, 0.0, t1, dt, sources, dopt);
  const TransientSensitivityResult sparse =
      runTransientSensitivity(sys, 0.0, t1, dt, sources, sopt);

  ASSERT_EQ(dense.times.size(), sparse.times.size());
  for (size_t s = 0; s < sources.size(); ++s) {
    for (size_t k = 0; k < dense.times.size(); ++k) {
      for (size_t i = 0; i < sys.size(); ++i) {
        const Real ref = dense.sens[s][k][i];
        EXPECT_NEAR(sparse.sens[s][k][i], ref,
                    kGoldenTol * std::max(1.0, std::fabs(ref)));
      }
    }
  }
}

// ------------------------------------------------- fill-reducing ordering

// Assembles the transient Jacobian pattern J = G + a*C of a system at a
// given state and reports nnz(L+U) under the requested column ordering.
size_t jacobianFactorNnz(const MnaSystem& sys, const RealVector& x,
                         OrderingKind kind) {
  RealSparse gsp, csp;
  sys.evalSparse(x, 0.0, nullptr, nullptr, &gsp, &csp, {});
  MergedSparseAssembler<Real> jac;
  jac.assemble(gsp, csp, 1.0 / 5e-12);
  SparseLU<Real> lu(jac.matrix, 0.1, kind);
  return lu.factorNonZeros();
}

// The acceptance fixture: 16 rows x 8 stages = 130+ unknowns. The chain
// grid's Jacobian admits a perfect (zero-fill) elimination, which AMD
// finds and the static degree sort does not.
TEST(SparseOrdering, AmdReducesFillOnInverterChain) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  InverterChainOptions copt;
  copt.stages = 8;
  copt.rows = 16;
  buildInverterChain(nl, kit, copt);
  MnaSystem sys(nl);
  ASSERT_GE(sys.size(), 129u);
  const RealVector x = solveDc(sys, {}).x;

  const size_t amd = jacobianFactorNnz(sys, x, OrderingKind::kAmd);
  const size_t degree = jacobianFactorNnz(sys, x, OrderingKind::kDegree);
  EXPECT_LT(amd, degree);
}

// 63-stage ring: the Jacobian graph is a wheel (cycle + vdd hub), whose
// minimum fill is exactly the n-3-edge cycle triangulation. The degree
// ordering already achieves it, so AMD can only match — the assertion is
// that it never does worse, on top of hitting the known optimum.
TEST(SparseOrdering, AmdMatchesOptimalFillOnRing) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  RingOscillatorOptions oopt;
  oopt.stages = 63;
  buildRingOscillator(nl, kit, oopt);
  MnaSystem sys(nl);
  RealVector x(sys.size(), 0.6);

  const size_t amd = jacobianFactorNnz(sys, x, OrderingKind::kAmd);
  const size_t degree = jacobianFactorNnz(sys, x, OrderingKind::kDegree);
  EXPECT_LE(amd, degree);
}

// Golden agreement across orderings: the ordering changes roundoff, not
// the converged solution. Run the sparse transient under all three
// orderings and compare trajectories to the dense path.
TEST(SparseOrdering, TransientAgreesAcrossOrderings) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  InverterChainOptions copt;
  copt.stages = 12;
  buildInverterChain(nl, kit, copt);
  MnaSystem sys(nl);

  const Real t1 = 1e-9, dt = 5e-12;
  const TransientResult dense =
      runTransient(sys, 0.0, t1, dt, tightOptions(LinearSolverKind::kDense));
  for (OrderingKind kind : {OrderingKind::kNatural, OrderingKind::kDegree,
                            OrderingKind::kAmd}) {
    TranOptions sopt = tightOptions(LinearSolverKind::kSparse);
    sopt.ordering = kind;
    const TransientResult sparse = runTransient(sys, 0.0, t1, dt, sopt);
    ASSERT_EQ(dense.times.size(), sparse.times.size());
    for (size_t k = 0; k < dense.times.size(); ++k) {
      for (size_t i = 0; i < sys.size(); ++i) {
        EXPECT_NEAR(sparse.states[k][i], dense.states[k][i], kGoldenTol)
            << "ordering " << static_cast<int>(kind) << " t="
            << dense.times[k] << " unknown " << i;
      }
    }
  }
}

// Refactor-after-reorder: one workspace steps the ring for many steps;
// the AMD symbolic factorization from step 1 must be reused (numeric
// refactorizations, not fresh symbolic factors) and keep producing the
// dense-path trajectory.
TEST(SparseOrdering, WorkspaceReusesAmdSymbolicAcrossSteps) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  const auto osc = buildRingOscillator(nl, kit);
  MnaSystem sys(nl);
  RealVector kick = solveDc(sys, {}).x;
  for (size_t i = 0; i < osc.stages.size(); ++i) {
    kick[nl.nodeIndex(osc.stages[i])] += (i % 2 ? 0.25 : -0.25);
  }

  TranOptions sopt = tightOptions(LinearSolverKind::kSparse);
  sopt.ordering = OrderingKind::kAmd;
  sopt.method = IntegrationMethod::kBackwardEuler;

  const size_t n = sys.size();
  TransientWorkspace ws;
  RealVector x = kick, q;
  sys.evalDense(x, 0.0, nullptr, &q, nullptr, nullptr, {});
  RealVector qd(n, 0.0);
  const Real h = 5e-12;
  for (int k = 0; k < 100; ++k) {
    ASSERT_TRUE(integrateStep(sys, sopt.method, k == 0, k * h, h, x, q, qd,
                              nullptr, sopt, ws));
  }
  EXPECT_EQ(ws.stats.factorizations, 1u);   // one AMD symbolic analysis
  EXPECT_GE(ws.stats.refactorizations, 99u);  // everything else rode the pattern
}

}  // namespace
}  // namespace psmn
