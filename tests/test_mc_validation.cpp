// Monte-Carlo cross-validation of the paper's sensitivity-based variation
// estimates — the reproduction's end-to-end claim. Two flows are checked
// on small mismatch circuits with a seeded, fixed-size MC run as ground
// truth:
//
//  * transient: sigma(t) from runTransientSensitivity (sqrt of
//    sum_i |ds/dp_i|^2 sigma_i^2) against the sample sigma of repeated
//    mismatched transients at the same grid points;
//  * periodic steady state: sigma(t) from the PSS + 1 Hz LPTV statistical
//    waveform (paper Fig. 8) against the sample sigma of per-sample PSS
//    re-solves.
//
// The sensitivity estimates are first-order in the mismatch deltas and the
// MC sample sigma carries a ~1/sqrt(2N) statistical error, so the
// comparisons use a tolerance well above both (seeded RNG keeps the run
// deterministic, not flaky).
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "core/monte_carlo.hpp"
#include "engine/transient.hpp"
#include "engine/transient_sensitivity.hpp"
#include "rf/pnoise.hpp"
#include "rf/pss.hpp"
#include "rf/timedomain_noise.hpp"

namespace psmn {
namespace {

TEST(MonteCarloValidation, TransientSigmaMatchesSampleSigma) {
  // Pulse-driven RC divider with two mismatched resistors: v(mid) sweeps
  // through a transition, so the per-parameter sensitivities (and sigma(t))
  // genuinely vary over the window.
  Netlist nl;
  const NodeId top = nl.node("top");
  const NodeId mid = nl.node("mid");
  nl.add<VSource>("V1", top, kGround,
                  SourceWave::pulse(0.0, 2.0, 1e-9, 0.5e-9, 0.5e-9, 6e-9,
                                    20e-9),
                  nl);
  nl.add<Resistor>("R1", top, mid, 1e3, nl, /*sigma=*/10.0);
  nl.add<Resistor>("R2", mid, kGround, 1e3, nl, /*sigma=*/10.0);
  nl.add<Capacitor>("C1", mid, kGround, 1e-12, nl);
  MnaSystem sys(nl);
  const int midIdx = nl.nodeIndex(mid);

  const Real t1 = 4e-9, dt = 50e-12;
  TranOptions topt;
  topt.method = IntegrationMethod::kBackwardEuler;

  // Paper estimate: forward sensitivities of the whole waveform.
  const auto sources = sys.collectSources(true, false);
  ASSERT_EQ(sources.size(), 2u);
  const TransientSensitivityResult sens =
      runTransientSensitivity(sys, 0.0, t1, dt, sources, topt);

  // Probe a few grid points across the transition.
  const std::vector<size_t> probes{20, 40, 60, sens.times.size() - 1};
  RealVector predicted;
  for (size_t k : probes) {
    Real var = 0.0;
    for (size_t s = 0; s < sources.size(); ++s) {
      const Real d = sens.sens[s][k][midIdx] * sources[s].sigma;
      var += d * d;
    }
    predicted.push_back(std::sqrt(var));
  }

  // Ground truth: seeded Monte Carlo over the same measurement.
  McOptions mopt;
  mopt.samples = 400;
  mopt.seed = 20070611;  // fixed: the run must be reproducible
  MonteCarloEngine mc(sys, mopt);
  std::vector<std::string> names;
  for (size_t k : probes) names.push_back("v" + std::to_string(k));
  const McResult res = mc.run(names, [&](const MnaSystem& s) {
    const TransientResult tr = runTransient(s, 0.0, t1, dt, topt);
    RealVector out;
    for (size_t k : probes) out.push_back(tr.states.at(k)[midIdx]);
    return out;
  });
  ASSERT_EQ(res.failedSamples, 0u);

  const TransientResult nominal = runTransient(sys, 0.0, t1, dt, topt);
  ASSERT_EQ(nominal.times.size(), sens.times.size());  // same BE grid
  for (size_t j = 0; j < probes.size(); ++j) {
    // Means track the nominal waveform...
    EXPECT_NEAR(res.meanOf(j), nominal.states.at(probes[j])[midIdx],
                5e-3 * std::max(0.05, std::fabs(res.meanOf(j))))
        << names[j];
    // ...and the sensitivity-based sigma matches the sample sigma within
    // the MC statistical tolerance (~1/sqrt(2N) ~ 3.5% at N=400).
    EXPECT_NEAR(res.sigma(j), predicted[j], 0.12 * predicted[j] + 1e-6)
        << names[j];
  }
}

TEST(MonteCarloValidation, PssStatisticalWaveformMatchesSampleSigma) {
  // Sine-driven RC lowpass with a mismatched series resistor: the PSS +
  // LPTV statistical waveform sigma(t) (quasi-static 1 Hz pseudo-noise)
  // must match the sample sigma of re-shot periodic steady states.
  Netlist nl;
  const Real freq = 1e6;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add<VSource>("V1", in, kGround, SourceWave::sine(0.5, 0.4, freq), nl);
  nl.add<Resistor>("R1", in, out, 1e3, nl, /*sigma=*/10.0);
  nl.add<Capacitor>("C1", out, kGround, 20e-12, nl);
  MnaSystem sys(nl);
  const int outIdx = nl.nodeIndex(out);

  PssOptions popt;
  popt.stepsPerPeriod = 120;
  popt.warmupCycles = 2;
  const Real period = 1.0 / freq;
  const PssResult pss = solvePssDriven(sys, period, popt);

  PnoiseAnalysis pn(sys, pss, PnoiseOptions{});
  pn.run();
  const StatisticalWaveform sw = statisticalWaveform(pn, outIdx);

  const std::vector<size_t> probes{0, 30, 60, 90};
  McOptions mopt;
  mopt.samples = 250;
  mopt.seed = 7;
  MonteCarloEngine mc(sys, mopt);
  std::vector<std::string> names;
  for (size_t k : probes) names.push_back("p" + std::to_string(k));
  const McResult res = mc.run(names, [&](const MnaSystem& s) {
    const PssResult p = solvePssDriven(s, period, popt);
    RealVector v;
    for (size_t k : probes) v.push_back(p.states.at(k)[outIdx]);
    return v;
  });
  ASSERT_EQ(res.failedSamples, 0u);

  for (size_t j = 0; j < probes.size(); ++j) {
    EXPECT_NEAR(res.meanOf(j), sw.nominal[probes[j]], 1e-3) << names[j];
    EXPECT_NEAR(res.sigma(j), sw.sigma[probes[j]],
                0.15 * sw.sigma[probes[j]] + 1e-7)
        << names[j];
  }
}

}  // namespace
}  // namespace psmn
