// Universal finite-difference verification of every device's stamps: the
// analytic G/C matrices and the mismatch dF/dp / dQ/dp columns must match
// central differences of the assembled F/Q vectors at randomized bias
// points (see fd_check.hpp for the numerics). Every device family in the
// repo gets a fixture here; a new device is expected to add one.
#include <gtest/gtest.h>

#include <memory>

#include "circuit/bjt.hpp"
#include "circuit/controlled.hpp"
#include "circuit/diode.hpp"
#include "circuit/mosfet.hpp"
#include "circuit/noise_source.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "fd_check.hpp"

namespace psmn {
namespace {

void expectFdClean(Netlist& nl, fdcheck::FdOptions opt = {}) {
  const auto failures = fdcheck::checkNetlist(nl, opt);
  for (const auto& msg : failures) ADD_FAILURE() << msg;
  EXPECT_TRUE(failures.empty());
}

TEST(DeviceFd, PassivesAndIndependentSources) {
  Netlist nl;
  const NodeId a = nl.node("a"), b = nl.node("b"), c = nl.node("c");
  nl.add<Resistor>("R1", a, b, 1e3, nl, 50.0);
  nl.add<Capacitor>("C1", b, kGround, 1e-12, nl, 0.05e-12);
  nl.add<Inductor>("L1", b, c, 1e-6, nl, 0.02e-6);
  nl.add<VSource>("V1", a, kGround, SourceWave::dc(1.0), nl);
  nl.add<ISource>("I1", c, kGround, SourceWave::dc(1e-3), nl);
  expectFdClean(nl);
}

TEST(DeviceFd, ControlledSources) {
  Netlist nl;
  const NodeId in1 = nl.node("in1"), in2 = nl.node("in2");
  const NodeId o1 = nl.node("o1"), o2 = nl.node("o2"), o3 = nl.node("o3"),
               o4 = nl.node("o4");
  nl.add<Resistor>("Rt1", o1, kGround, 1e3, nl);
  nl.add<Resistor>("Rt2", o2, kGround, 1e3, nl);
  nl.add<Resistor>("Rt3", o3, kGround, 1e3, nl);
  nl.add<Resistor>("Rt4", o4, kGround, 1e3, nl);
  // The sense source is the first branch-allocating device, so its branch
  // unknown lands right after the node voltages.
  const int senseBranch = static_cast<int>(nl.nodeCount()) - 1;
  auto& vs = nl.add<VSource>("Vsense", in1, kGround, SourceWave::dc(0.0), nl);
  nl.add<Vcvs>("E1", o1, kGround, nl,
               std::vector<ControlTerm>{{nl.nodeIndex(in1), -1, 2.0},
                                        {nl.nodeIndex(in2), -1, -0.5}},
               0.1);
  nl.add<Vccs>("G1", o2, kGround, in1, in2, 1e-3, nl);
  nl.add<Ccvs>("H1", o3, kGround, senseBranch, 50.0, nl);
  nl.add<Cccs>("F1", o4, kGround, senseBranch, 3.0, nl);
  nl.finalize();
  ASSERT_EQ(vs.branchIndex(), senseBranch);
  expectFdClean(nl);
}

TEST(DeviceFd, DiodeWithJunctionCap) {
  Netlist nl;
  const NodeId a = nl.node("a"), c = nl.node("c");
  DiodeModel dm;
  dm.is = 1e-14;
  dm.n = 1.5;
  dm.cj0 = 2e-12;
  nl.add<Diode>("D1", a, c, dm, nl);
  nl.add<Resistor>("R1", a, kGround, 1e3, nl);
  nl.add<Resistor>("R2", c, kGround, 1e3, nl);
  expectFdClean(nl);
}

std::shared_ptr<const MosModel> mosModel(bool pmos) {
  auto m = std::make_shared<MosModel>();
  m->pmos = pmos;
  m->lambda = 0.05;
  m->gamma = 0.4;
  return m;
}

TEST(DeviceFd, MosfetNmos) {
  Netlist nl;
  const NodeId d = nl.node("d"), g = nl.node("g"), s = nl.node("s"),
               b = nl.node("b");
  nl.add<Mosfet>("M1", d, g, s, b, mosModel(false), 2e-6, 0.13e-6, nl);
  nl.add<Resistor>("Rd", d, kGround, 1e4, nl);
  nl.add<Resistor>("Rs", s, kGround, 1e4, nl);
  expectFdClean(nl);
}

TEST(DeviceFd, MosfetPmos) {
  Netlist nl;
  const NodeId d = nl.node("d"), g = nl.node("g"), s = nl.node("s"),
               b = nl.node("b");
  nl.add<Mosfet>("M1", d, g, s, b, mosModel(true), 2e-6, 0.13e-6, nl);
  nl.add<Resistor>("Rd", d, kGround, 1e4, nl);
  nl.add<Resistor>("Rs", s, kGround, 1e4, nl);
  expectFdClean(nl);
}

std::shared_ptr<const BjtModel> bjtModel(bool pnp) {
  auto m = std::make_shared<BjtModel>();
  m->pnp = pnp;
  m->is = 5e-15;
  m->bf = 150.0;
  m->br = 4.0;
  m->vaf = 80.0;
  m->cje = 1e-12;
  m->cjc = 0.5e-12;
  m->tf = 0.4e-9;
  return m;
}

TEST(DeviceFd, BjtNpn) {
  Netlist nl;
  const NodeId c = nl.node("c"), b = nl.node("b"), e = nl.node("e");
  nl.add<Bjt>("Q1", c, b, e, bjtModel(false), 1.0, nl);
  nl.add<Resistor>("Rc", c, kGround, 1e4, nl);
  nl.add<Resistor>("Re", e, kGround, 1e4, nl);
  expectFdClean(nl);
}

TEST(DeviceFd, BjtPnp) {
  Netlist nl;
  const NodeId c = nl.node("c"), b = nl.node("b"), e = nl.node("e");
  nl.add<Bjt>("Q1", c, b, e, bjtModel(true), 1.0, nl);
  nl.add<Resistor>("Rc", c, kGround, 1e4, nl);
  nl.add<Resistor>("Re", e, kGround, 1e4, nl);
  expectFdClean(nl);
}

TEST(DeviceFd, BjtWithSeriesResistanceAndArea) {
  // RB/RC/RE > 0 create internal nodes; area = 2 scales IS, the charges,
  // the parasitics, and the mismatch sigmas. The FD sweep covers both the
  // junction core at the internal nodes and the linear parasitic stamps.
  auto m = std::make_shared<BjtModel>(*bjtModel(false));
  m->rb = 100.0;
  m->rc = 20.0;
  m->re = 2.0;
  Netlist nl;
  const NodeId c = nl.node("c"), b = nl.node("b"), e = nl.node("e");
  auto& q = nl.add<Bjt>("Q1", c, b, e, std::move(m), 2.0, nl);
  nl.add<Resistor>("Rc", c, kGround, 1e4, nl);
  nl.add<Resistor>("Re", e, kGround, 1e4, nl);
  EXPECT_NEAR(q.sigmaIs(), q.model().ais / std::sqrt(2.0), 1e-15);
  expectFdClean(nl);
}

TEST(DeviceFd, BjtAtNonzeroMismatchDeltas) {
  // The injection columns depend on the current deltas (dI/d(dis) =
  // I/(1+dis)); verify consistency away from the nominal point too.
  Netlist nl;
  const NodeId c = nl.node("c"), b = nl.node("b"), e = nl.node("e");
  auto& q = nl.add<Bjt>("Q1", c, b, e, bjtModel(false), 1.0, nl);
  nl.add<Resistor>("Rc", c, kGround, 1e4, nl);
  nl.add<Resistor>("Re", e, kGround, 1e4, nl);
  q.setMismatchDelta(0, 0.07);
  q.setMismatchDelta(1, -0.04);
  expectFdClean(nl);
}

TEST(DeviceFd, BehavioralMismatchSource) {
  // At delta = 0 the element contributes nothing to F/G (its documented
  // Jacobian approximation only bites at nonzero delta), but its dF/dp
  // column must equal the modulation current m(x).
  Netlist nl;
  const NodeId a = nl.node("a"), b = nl.node("b");
  const int ia = nl.nodeIndex(a), ib = nl.nodeIndex(b);
  nl.add<Resistor>("R1", a, kGround, 1e3, nl);
  nl.add<Resistor>("R2", b, kGround, 1e3, nl);
  nl.add<BehavioralMismatch>(
      "X1", a, b, 1e-3,
      [ia, ib](const Stamper& s) {
        const Real v = s.v(ia) - s.v(ib);
        return 1e-3 * v + 2e-4 * v * v;
      },
      nl);
  expectFdClean(nl);
}

TEST(DeviceFd, MixedDeviceNetlist) {
  // Everything at once: catches cross-device assembly issues (double
  // stamps, wrong indices after branch allocation) that the per-family
  // fixtures cannot.
  Netlist nl;
  const NodeId n1 = nl.node("n1"), n2 = nl.node("n2"), n3 = nl.node("n3"),
               n4 = nl.node("n4");
  nl.add<VSource>("V1", n1, kGround, SourceWave::dc(1.0), nl);
  nl.add<Resistor>("R1", n1, n2, 1e3, nl, 20.0);
  nl.add<Capacitor>("C1", n2, kGround, 1e-12, nl, 0.02e-12);
  nl.add<Mosfet>("M1", n3, n2, kGround, kGround, mosModel(false), 1e-6,
                 0.13e-6, nl);
  nl.add<Bjt>("Q1", n4, n3, kGround, bjtModel(false), 1.0, nl);
  nl.add<Diode>("D1", n4, kGround, DiodeModel{.is = 1e-14, .cj0 = 1e-12}, nl);
  nl.add<Inductor>("L1", n4, n1, 1e-6, nl, 0.01e-6);
  expectFdClean(nl);
}

}  // namespace
}  // namespace psmn
