// Measurement-layer tests plus end-to-end checks of the sparse assembly
// path and the correlated-source PNOISE entry point.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "core/correlated_mismatch.hpp"
#include "engine/dc.hpp"
#include "meas/measure.hpp"
#include "numeric/dense_lu.hpp"
#include "numeric/sparse_lu.hpp"
#include "rf/pnoise.hpp"
#include "rf/pss.hpp"

namespace psmn {
namespace {

Waveform sineWave(Real freq, Real amp, Real offset, Real tEnd, size_t n) {
  Waveform w;
  for (size_t k = 0; k <= n; ++k) {
    const Real t = tEnd * static_cast<Real>(k) / static_cast<Real>(n);
    w.times.push_back(t);
    w.values.push_back(offset +
                       amp * std::sin(2 * std::numbers::pi * freq * t));
  }
  return w;
}

TEST(Measure, CrossingsOfSine) {
  const Waveform w = sineWave(1e6, 1.0, 0.0, 3e-6, 3000);
  const auto rises = w.crossings(0.0, +1);
  const auto falls = w.crossings(0.0, -1);
  ASSERT_EQ(rises.size(), 3u);  // t = 0+, 1u, 2u (t=0 sample is exactly 0)
  ASSERT_EQ(falls.size(), 3u);  // t = 0.5u, 1.5u, 2.5u
  EXPECT_NEAR(falls[0], 0.5e-6, 2e-9);
  EXPECT_NEAR(measurePeriod(w, 0.0, 2), 1e-6, 2e-9);
  EXPECT_NEAR(measureFrequency(w, 0.0, 2), 1e6, 5e3);
}

TEST(Measure, DelayBetweenWaveforms) {
  Waveform stim, resp;
  for (int k = 0; k <= 100; ++k) {
    const Real t = k * 1e-9;
    stim.times.push_back(t);
    resp.times.push_back(t);
    stim.values.push_back(t > 10e-9 ? 1.0 : 0.0);
    resp.values.push_back(t > 25e-9 ? 0.0 : 1.0);  // falls later
  }
  EXPECT_NEAR(measureDelay(stim, resp, 0.5, +1, -1), 15e-9, 1.1e-9);
  // Missing edge throws.
  EXPECT_THROW(measureDelay(resp, stim, 0.5, +1, -1), Error);
}

TEST(Measure, SettledValueAndDetection) {
  Waveform w;
  for (int k = 0; k <= 1000; ++k) {
    const Real t = k * 1e-9;
    w.times.push_back(t);
    w.values.push_back(2.0 * (1.0 - std::exp(-t / 100e-9)));
  }
  EXPECT_NEAR(measureSettledValue(w, 50e-9), 2.0, 1e-3);
  EXPECT_TRUE(isSettled(w, 50e-9, 1e-2));
  EXPECT_FALSE(isSettled(w, 900e-9, 1e-3));
}

TEST(Measure, ValueAtInterpolates) {
  Waveform w;
  w.times = {0.0, 1.0, 2.0};
  w.values = {0.0, 2.0, 0.0};
  EXPECT_DOUBLE_EQ(w.valueAt(0.25), 0.5);
  EXPECT_DOUBLE_EQ(w.valueAt(1.5), 1.0);
}

// ------------------------------------------------ sparse assembly path

TEST(SparseAssembly, TripletStampsMatchDenseOnLadder) {
  // A 60-node RC ladder: assemble G via the triplet backend and check the
  // sparse LU solution of G x = b against the dense path.
  Netlist nl;
  NodeId prev = nl.node("in");
  nl.add<VSource>("V1", prev, kGround, SourceWave::dc(1.0), nl);
  for (int k = 0; k < 60; ++k) {
    const NodeId next = nl.node("n" + std::to_string(k));
    nl.add<Resistor>("R" + std::to_string(k), prev, next, 1e3, nl);
    nl.add<Capacitor>("C" + std::to_string(k), next, kGround, 1e-12, nl);
    prev = next;
  }
  nl.add<Resistor>("Rload", prev, kGround, 1e3, nl);
  MnaSystem sys(nl);
  const size_t n = sys.size();
  const RealVector x(n, 0.0);

  // Dense path.
  RealMatrix gDense;
  RealVector f;
  sys.evalDense(x, 0.0, &f, nullptr, &gDense, nullptr, {});

  // Triplet path through the Stamper directly.
  std::vector<Triplet<Real>> trips;
  RealVector f2(n, 0.0);
  Stamper st(x, 0.0, n);
  st.attachVectors(&f2, nullptr);
  st.attachTriplets(&trips, nullptr);
  for (const auto& dev : nl.devices()) dev->eval(st);
  const auto gSparse = RealSparse::fromTriplets(n, n, trips);

  EXPECT_LT(maxAbsDiff(gSparse.toDense(), gDense), 1e-14);
  // Sparsity is real: the ladder G has ~4 entries per row.
  EXPECT_LT(gSparse.nonZeros(), n * 6);

  // Solve the DC system both ways.
  RealVector rhs(n, 0.0);
  for (size_t i = 0; i < n; ++i) rhs[i] = -f[i];
  const RealVector xs = SparseLU<Real>(gSparse).solve(rhs);
  const RealVector xd = luSolve(gDense, std::span<const Real>(rhs));
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9);
}

// --------------------------------- correlated sources through PNOISE

TEST(PnoiseCorrelated, CompositeSourcesReduceDividerVariance) {
  // Same physics as the DC test, but through the full PSS+PNOISE pipeline:
  // fully correlated resistor mismatch cancels in the divider ratio.
  Netlist nl;
  const NodeId top = nl.node("top");
  const NodeId mid = nl.node("mid");
  nl.add<VSource>("V1", top, kGround, SourceWave::dc(2.0), nl);
  auto& r1 = nl.add<Resistor>("R1", top, mid, 1e3, nl, 10.0);
  auto& r2 = nl.add<Resistor>("R2", mid, kGround, 1e3, nl, 10.0);
  nl.add<Capacitor>("C1", mid, kGround, 1e-12, nl);
  MnaSystem sys(nl);

  PssOptions popt;
  popt.stepsPerPeriod = 100;
  const PssResult pss = solvePssDriven(sys, 1e-6, popt);

  // Independent: sigma = sqrt(2)*5mV.
  PnoiseAnalysis indep(sys, pss, PnoiseOptions{});
  indep.run();
  EXPECT_NEAR(std::sqrt(indep.sideband(nl.nodeIndex(mid), 0).totalPsd),
              std::sqrt(2.0) * 5e-3, 1e-5);

  // Fully correlated: ~0.
  CorrelatedMismatch corr;
  corr.addUniformCorrelationGroup({{&r1, 0}, {&r2, 0}}, 1.0);
  PnoiseAnalysis correlated(
      sys, pss, corr.transformSources(sys.collectSources(true, false)), {});
  correlated.run();
  EXPECT_NEAR(std::sqrt(correlated.sideband(nl.nodeIndex(mid), 0).totalPsd),
              0.0, 1e-7);
}

}  // namespace
}  // namespace psmn
