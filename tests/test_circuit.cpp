// Unit and property tests for the circuit layer: device stamps, the MOSFET
// model (finite-difference Jacobian checks across operating regions),
// mismatch stamps, waveforms, and the netlist parser.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/bjt.hpp"
#include "circuit/controlled.hpp"
#include "circuit/diode.hpp"
#include "circuit/mosfet.hpp"
#include "circuit/netlist.hpp"
#include "circuit/noise_source.hpp"
#include "circuit/parser.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "circuit/stdcell.hpp"
#include "engine/mna.hpp"
#include "numeric/rng.hpp"

namespace psmn {
namespace {

// Helper: evaluate f and G at state x.
struct Eval {
  RealVector f, q;
  RealMatrix g, c;
};

Eval evalAll(const MnaSystem& sys, const RealVector& x, Real t = 0.0) {
  Eval e;
  sys.evalDense(x, t, &e.f, &e.q, &e.g, &e.c, {});
  return e;
}

/// Property: G must equal dF/dx by central finite difference.
void expectJacobianConsistent(const MnaSystem& sys, const RealVector& x,
                              Real tol = 1e-4) {
  const size_t n = sys.size();
  const Eval e0 = evalAll(sys, x);
  for (size_t j = 0; j < n; ++j) {
    const Real h = 1e-7 * (1.0 + std::fabs(x[j]));
    RealVector xp = x, xm = x;
    xp[j] += h;
    xm[j] -= h;
    const Eval ep = evalAll(sys, xp);
    const Eval em = evalAll(sys, xm);
    for (size_t i = 0; i < n; ++i) {
      const Real fd = (ep.f[i] - em.f[i]) / (2.0 * h);
      EXPECT_NEAR(e0.g(i, j), fd, tol * (1.0 + std::fabs(fd)))
          << "dF[" << i << "]/dx[" << j << "]";
      const Real fdq = (ep.q[i] - em.q[i]) / (2.0 * h);
      EXPECT_NEAR(e0.c(i, j), fdq, tol * (1.0 + std::fabs(fdq)))
          << "dQ[" << i << "]/dx[" << j << "]";
    }
  }
}

// --------------------------------------------------------------- netlist

TEST(Netlist, NodeManagement) {
  Netlist nl;
  EXPECT_EQ(nl.node("0"), kGround);
  EXPECT_EQ(nl.node("gnd"), kGround);
  const NodeId a = nl.node("a");
  EXPECT_EQ(nl.node("A"), a);  // case-insensitive
  EXPECT_NE(nl.node("b"), a);
  EXPECT_FALSE(nl.findNode("zzz").has_value());
}

TEST(Netlist, RejectsDuplicateDeviceNames) {
  Netlist nl;
  const NodeId a = nl.node("a");
  nl.add<Resistor>("R1", a, kGround, 1e3, nl);
  EXPECT_THROW(nl.add<Resistor>("R1", a, kGround, 2e3, nl), Error);
}

TEST(Netlist, UnknownNamesAndBranches) {
  Netlist nl;
  const NodeId a = nl.node("out");
  nl.add<VSource>("V1", a, kGround, SourceWave::dc(1.0), nl);
  nl.finalize();
  EXPECT_EQ(nl.unknownCount(), 2u);
  EXPECT_EQ(nl.unknownName(0), "v(out)");
  EXPECT_EQ(nl.unknownName(1), "i(V1)");
}

TEST(Netlist, MismatchParamEnumeration) {
  Netlist nl;
  const NodeId a = nl.node("a");
  nl.add<Resistor>("R1", a, kGround, 1e3, nl, /*sigma=*/10.0);
  nl.add<Resistor>("R2", a, kGround, 1e3, nl);  // no mismatch
  auto kit = ProcessKit::cmos130();
  nl.add<Mosfet>("M1", a, a, kGround, kGround, kit.nmos, 1e-6, 0.13e-6, nl);
  const auto params = nl.mismatchParams();
  ASSERT_EQ(params.size(), 3u);  // R1.dr, M1.dvt, M1.dbeta
  EXPECT_EQ(params[0].param.name, "R1.dr");
  EXPECT_EQ(params[1].param.name, "M1.dvt");
  EXPECT_EQ(params[2].param.name, "M1.dbeta");
}

// ------------------------------------------------------------ waveforms

TEST(SourceWave, PulseShape) {
  const auto w = SourceWave::pulse(0.0, 1.0, 1.0, 0.5, 0.5, 2.0, 10.0);
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(1.25), 0.5);  // mid-rise
  EXPECT_DOUBLE_EQ(w.value(2.0), 1.0);   // high
  EXPECT_DOUBLE_EQ(w.value(3.75), 0.5);  // mid-fall
  EXPECT_DOUBLE_EQ(w.value(5.0), 0.0);   // low
  EXPECT_DOUBLE_EQ(w.value(11.25), 0.5); // next period
}

TEST(SourceWave, PulseBreakpoints) {
  const auto w = SourceWave::pulse(0.0, 1.0, 1.0, 0.5, 0.5, 2.0, 10.0);
  std::vector<Real> bps;
  w.collectBreakpoints(0.0, 12.0, bps);
  // First period corners: 1, 1.5, 3.5, 4; second period: 11, 11.5.
  ASSERT_GE(bps.size(), 6u);
  EXPECT_DOUBLE_EQ(bps[0], 1.0);
  EXPECT_DOUBLE_EQ(bps[1], 1.5);
  EXPECT_DOUBLE_EQ(bps[2], 3.5);
  EXPECT_DOUBLE_EQ(bps[3], 4.0);
}

TEST(SourceWave, PulseRejectsZeroRise) {
  EXPECT_THROW(SourceWave::pulse(0, 1, 0, 0.0, 1e-12, 1, 10), Error);
}

TEST(SourceWave, SineAndPwl) {
  const auto s = SourceWave::sine(0.5, 2.0, 1e3);
  EXPECT_NEAR(s.value(0.0), 0.5, 1e-12);
  EXPECT_NEAR(s.value(0.25e-3), 2.5, 1e-9);
  EXPECT_DOUBLE_EQ(s.period(), 1e-3);

  const auto p = SourceWave::pwl({0.0, 1.0, 2.0}, {0.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(p.value(0.5), 2.5);
  EXPECT_DOUBLE_EQ(p.value(3.0), 5.0);
}

// ------------------------------------------------------- passive stamps

TEST(Stamps, ResistorDividerResidual) {
  Netlist nl;
  const NodeId mid = nl.node("mid");
  const NodeId top = nl.node("top");
  nl.add<VSource>("V1", top, kGround, SourceWave::dc(2.0), nl);
  nl.add<Resistor>("R1", top, mid, 1e3, nl);
  nl.add<Resistor>("R2", mid, kGround, 1e3, nl);
  MnaSystem sys(nl);
  // At the analytic solution the residual must vanish.
  RealVector x(sys.size(), 0.0);
  x[nl.nodeIndex(mid)] = 1.0;
  x[nl.nodeIndex(top)] = 2.0;
  x[2] = -1e-3;  // branch current: 1 mA flows out of the + terminal
  const Eval e = evalAll(sys, x);
  for (size_t i = 0; i < sys.size(); ++i) EXPECT_NEAR(e.f[i], 0.0, 1e-15);
}

TEST(Stamps, JacobianConsistencyRlcNetwork) {
  Netlist nl;
  const NodeId a = nl.node("a");
  const NodeId b = nl.node("b");
  nl.add<VSource>("V1", a, kGround, SourceWave::dc(1.0), nl);
  nl.add<Resistor>("R1", a, b, 2e3, nl);
  nl.add<Capacitor>("C1", b, kGround, 1e-9, nl);
  nl.add<Inductor>("L1", b, kGround, 1e-3, nl);
  MnaSystem sys(nl);
  RealVector x(sys.size());
  Rng rng(4);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  expectJacobianConsistent(sys, x);
}

TEST(Stamps, ControlledSourcesJacobian) {
  Netlist nl;
  const NodeId a = nl.node("a");
  const NodeId b = nl.node("b");
  const NodeId c = nl.node("c");
  nl.add<ISource>("I1", kGround, a, SourceWave::dc(1e-3), nl);
  nl.add<Resistor>("R1", a, kGround, 1e3, nl);
  nl.add<Vcvs>("E1", b, kGround, a, kGround, 2.0, nl);
  nl.add<Resistor>("R2", b, c, 1e3, nl);
  nl.add<Vccs>("G1", c, kGround, a, kGround, 1e-3, nl);
  nl.add<Resistor>("R3", c, kGround, 1e3, nl);
  MnaSystem sys(nl);
  RealVector x(sys.size());
  Rng rng(6);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  expectJacobianConsistent(sys, x);
}

TEST(Stamps, DiodeJacobian) {
  Netlist nl;
  const NodeId a = nl.node("a");
  nl.add<ISource>("I1", kGround, a, SourceWave::dc(1e-4), nl);
  DiodeModel dm;
  dm.cj0 = 1e-12;
  nl.add<Diode>("D1", a, kGround, dm, nl);
  MnaSystem sys(nl);
  for (Real v : {-0.5, 0.0, 0.3, 0.6, 0.7}) {
    RealVector x{v};
    expectJacobianConsistent(sys, x, 1e-3);
  }
}

// ----------------------------------------------------------- MOSFET model

struct MosBias {
  Real vd, vg, vs, vb;
  bool pmos;
};

class MosfetJacobian : public ::testing::TestWithParam<MosBias> {};

TEST_P(MosfetJacobian, MatchesFiniteDifference) {
  const MosBias bias = GetParam();
  auto kit = ProcessKit::cmos130();
  Netlist nl;
  const NodeId d = nl.node("d");
  const NodeId g = nl.node("g");
  const NodeId s = nl.node("s");
  const NodeId b = nl.node("b");
  nl.add<Mosfet>("M1", d, g, s, b, bias.pmos ? kit.pmos : kit.nmos, 2e-6,
                 0.13e-6, nl);
  // Pin every node so the state is exactly the chosen bias.
  MnaSystem sys(nl);
  RealVector x(sys.size(), 0.0);
  x[nl.nodeIndex(d)] = bias.vd;
  x[nl.nodeIndex(g)] = bias.vg;
  x[nl.nodeIndex(s)] = bias.vs;
  x[nl.nodeIndex(b)] = bias.vb;
  expectJacobianConsistent(sys, x, 2e-3);
}

INSTANTIATE_TEST_SUITE_P(
    OperatingRegions, MosfetJacobian,
    ::testing::Values(
        MosBias{1.2, 1.0, 0.0, 0.0, false},   // nmos saturation
        MosBias{0.1, 1.0, 0.0, 0.0, false},   // nmos triode
        MosBias{1.2, 0.2, 0.0, 0.0, false},   // nmos near cutoff
        MosBias{0.0, 1.0, 1.2, 0.0, false},   // nmos swapped d/s
        MosBias{0.6, 0.8, 0.0, -0.3, false},  // nmos with body bias
        MosBias{0.0, 0.2, 1.2, 1.2, true},    // pmos saturation
        MosBias{1.1, 0.2, 1.2, 1.2, true},    // pmos triode
        MosBias{0.0, 1.0, 1.2, 1.2, true},    // pmos near cutoff
        MosBias{1.2, 0.2, 0.0, 1.2, true}));  // pmos swapped

TEST(Mosfet, CurrentContinuityAcrossVdsZero) {
  // The drain-source swap must not introduce a current discontinuity.
  auto kit = ProcessKit::cmos130();
  Netlist nl;
  const NodeId d = nl.node("d");
  const NodeId g = nl.node("g");
  nl.add<Mosfet>("M1", d, g, kGround, kGround, kit.nmos, 2e-6, 0.13e-6, nl);
  MnaSystem sys(nl);
  RealVector f;
  auto idAt = [&](Real vds) {
    RealVector x(sys.size(), 0.0);
    x[nl.nodeIndex(d)] = vds;
    x[nl.nodeIndex(g)] = 1.0;
    sys.evalDense(x, 0.0, &f, nullptr, nullptr, nullptr, {});
    return f[nl.nodeIndex(d)];
  };
  const Real eps = 1e-9;
  EXPECT_NEAR(idAt(eps), -idAt(-eps), 1e-12);
  EXPECT_NEAR(idAt(0.0), 0.0, 1e-15);
}

TEST(Mosfet, SaturationCurrentMagnitude) {
  // 2u/0.13u nmos, vgs=1.0: ids ~ 0.5*kp*(W/L)*veff^2*(1+lambda*vds).
  auto kit = ProcessKit::cmos130();
  Netlist nl;
  const NodeId d = nl.node("d");
  const NodeId g = nl.node("g");
  nl.add<Mosfet>("M1", d, g, kGround, kGround, kit.nmos, 2e-6, 0.13e-6, nl);
  MnaSystem sys(nl);
  RealVector x(sys.size(), 0.0);
  x[nl.nodeIndex(d)] = 1.2;
  x[nl.nodeIndex(g)] = 1.0;
  RealVector f;
  sys.evalDense(x, 0.0, &f, nullptr, nullptr, nullptr, {});
  const Real id = f[nl.nodeIndex(d)];
  // veff ~ vgs - vt0 (smoothing adds a little): expect within 10% of the
  // ideal square-law number.
  const Real ideal = 0.5 * kit.nmos->kp * (2e-6 / 0.13e-6) * 0.65 * 0.65 *
                     (1.0 + kit.nmos->lambda * 1.2);
  EXPECT_NEAR(id, ideal, 0.1 * ideal);
  EXPECT_GT(id, 0.0);
}

TEST(Mosfet, PmosConductsWithLowGate) {
  auto kit = ProcessKit::cmos130();
  Netlist nl;
  const NodeId d = nl.node("d");
  const NodeId g = nl.node("g");
  const NodeId s = nl.node("s");
  nl.add<Mosfet>("M1", d, g, s, s, kit.pmos, 2e-6, 0.13e-6, nl);
  MnaSystem sys(nl);
  RealVector x(sys.size(), 0.0);
  x[nl.nodeIndex(s)] = 1.2;
  x[nl.nodeIndex(g)] = 0.0;  // on
  x[nl.nodeIndex(d)] = 0.0;
  RealVector f;
  sys.evalDense(x, 0.0, &f, nullptr, nullptr, nullptr, {});
  // Current must flow INTO the drain node from the device (f negative at d
  // means the device pushes current into the node).
  EXPECT_LT(f[nl.nodeIndex(d)], -1e-5);
}

TEST(Mosfet, PelgromSigmaScalesWithArea) {
  auto kit = ProcessKit::cmos130();
  Netlist nl;
  const NodeId d = nl.node("d");
  auto& m1 = nl.add<Mosfet>("M1", d, d, kGround, kGround, kit.nmos, 1e-6,
                            0.13e-6, nl);
  auto& m4 = nl.add<Mosfet>("M4", d, d, kGround, kGround, kit.nmos, 4e-6,
                            0.13e-6, nl);
  EXPECT_NEAR(m1.sigmaVt() / m4.sigmaVt(), 2.0, 1e-12);
  EXPECT_NEAR(m1.sigmaVt(), 6.5e-9 / std::sqrt(1e-6 * 0.13e-6), 1e-12);
  EXPECT_NEAR(m1.sigmaBetaRel(), 3.25e-8 / std::sqrt(1e-6 * 0.13e-6), 1e-12);
}

TEST(Mosfet, MismatchStampMatchesFiniteDifference) {
  // dF/d(dvt) and dF/d(dbeta) from mismatchStampF must equal the finite
  // difference of the residual under setMismatchDelta.
  auto kit = ProcessKit::cmos130();
  for (bool pmos : {false, true}) {
    Netlist nl;
    const NodeId d = nl.node("d");
    const NodeId g = nl.node("g");
    const NodeId s = nl.node("s");
    auto& fet = nl.add<Mosfet>("M1", d, g, s, s,
                               pmos ? kit.pmos : kit.nmos, 2e-6, 0.13e-6, nl);
    MnaSystem sys(nl);
    RealVector x(sys.size(), 0.0);
    if (pmos) {
      x[nl.nodeIndex(s)] = 1.2;
      x[nl.nodeIndex(g)] = 0.2;
      x[nl.nodeIndex(d)] = 0.4;
    } else {
      x[nl.nodeIndex(g)] = 1.0;
      x[nl.nodeIndex(d)] = 0.8;
    }
    for (size_t k = 0; k < 2; ++k) {
      InjectionSource src;
      src.kind = InjectionSource::Kind::kMismatch;
      src.components = {{&fet, k, 1.0}};
      RealVector bf;
      sys.evalInjection(src, x, 0.0, &bf, nullptr);

      const Real h = (k == 0) ? 1e-6 : 1e-6;
      RealVector fp, fm;
      fet.setMismatchDelta(k, h);
      sys.evalDense(x, 0.0, &fp, nullptr, nullptr, nullptr, {});
      fet.setMismatchDelta(k, -h);
      sys.evalDense(x, 0.0, &fm, nullptr, nullptr, nullptr, {});
      fet.setMismatchDelta(k, 0.0);
      for (size_t i = 0; i < sys.size(); ++i) {
        const Real fd = (fp[i] - fm[i]) / (2.0 * h);
        EXPECT_NEAR(bf[i], fd, 1e-6 + 1e-4 * std::fabs(fd))
            << (pmos ? "pmos" : "nmos") << " param " << k << " row " << i;
      }
    }
  }
}

TEST(Resistor, MismatchStampMatchesFiniteDifference) {
  Netlist nl;
  const NodeId a = nl.node("a");
  auto& r = nl.add<Resistor>("R1", a, kGround, 1e3, nl, /*sigma=*/10.0);
  nl.add<ISource>("I1", kGround, a, SourceWave::dc(1e-3), nl);
  MnaSystem sys(nl);
  RealVector x{1.0};
  InjectionSource src;
  src.components = {{&r, 0, 1.0}};
  RealVector bf;
  sys.evalInjection(src, x, 0.0, &bf, nullptr);
  const Real h = 1e-3;
  RealVector fp, fm;
  r.setMismatchDelta(0, h);
  sys.evalDense(x, 0.0, &fp, nullptr, nullptr, nullptr, {});
  r.setMismatchDelta(0, -h);
  sys.evalDense(x, 0.0, &fm, nullptr, nullptr, nullptr, {});
  r.setMismatchDelta(0, 0.0);
  EXPECT_NEAR(bf[0], (fp[0] - fm[0]) / (2 * h), 1e-9);
  // Analytic: dI/dR = -(v/R)/R = -1e-3/1e3 = -1e-6 A/ohm.
  EXPECT_NEAR(bf[0], -1e-6, 1e-12);
}

TEST(Capacitor, MismatchChargeStamp) {
  Netlist nl;
  const NodeId a = nl.node("a");
  auto& c = nl.add<Capacitor>("C1", a, kGround, 1e-9, nl, /*sigma=*/1e-11);
  MnaSystem sys(nl);
  RealVector x{2.5};
  InjectionSource src;
  src.components = {{&c, 0, 1.0}};
  RealVector bq;
  sys.evalInjection(src, x, 0.0, nullptr, &bq);
  EXPECT_NEAR(bq[0], 2.5, 1e-15);  // dQ/dC = v
}

TEST(BehavioralMismatch, StampUsesModulation) {
  Netlist nl;
  const NodeId a = nl.node("a");
  nl.add<Resistor>("R1", a, kGround, 1e3, nl);
  auto& bm = nl.add<BehavioralMismatch>(
      "X1", a, kGround, 0.01,
      [idx = nl.nodeIndex(a)](const Stamper& s) { return 2.0 * s.v(idx); },
      nl);
  MnaSystem sys(nl);
  RealVector x{1.5};
  InjectionSource src;
  src.components = {{&bm, 0, 1.0}};
  RealVector bf;
  sys.evalInjection(src, x, 0.0, &bf, nullptr);
  EXPECT_NEAR(bf[0], 3.0, 1e-15);  // modulation = 2*v(a)
  // And eval applies delta * modulation as a real current.
  bm.setMismatchDelta(0, 0.1);
  RealVector f;
  sys.evalDense(x, 0.0, &f, nullptr, nullptr, nullptr, {});
  EXPECT_NEAR(f[0], 1.5e-3 + 0.1 * 3.0, 1e-12);
  bm.setMismatchDelta(0, 0.0);
}

// --------------------------------------------------------------- parser

TEST(Parser, ParsesRcDivider) {
  const auto pc = parseNetlistString(R"(
test divider
V1 in 0 DC 2.0
R1 in mid 1k
R2 mid 0 1k sigma=10
.op
.end
)");
  EXPECT_EQ(pc.title, "test divider");
  ASSERT_NE(pc.netlist->find("R1"), nullptr);
  ASSERT_NE(pc.netlist->find("R2"), nullptr);
  EXPECT_EQ(pc.netlist->mismatchParams().size(), 1u);
  ASSERT_EQ(pc.analyses.size(), 1u);
  EXPECT_EQ(pc.analyses[0].kind, "op");
}

TEST(Parser, ParsesMosWithModel) {
  const auto pc = parseNetlistString(R"(
.model mynmos nmos (kp=400u vto=0.35 lambda=0.15 avt=6.5n abeta=32.5n)
M1 d g 0 0 mynmos W=2u L=0.13u
V1 d 0 1.2
V2 g 0 PULSE(0 1.2 0 0.1n 0.1n 4n 10n)
.tran 0.1n 20n
)");
  const auto* m = dynamic_cast<const Mosfet*>(pc.netlist->find("M1"));
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->width(), 2e-6);
  EXPECT_DOUBLE_EQ(m->model().kp, 400e-6);
  EXPECT_FALSE(m->model().pmos);
  EXPECT_EQ(pc.netlist->mismatchParams().size(), 2u);
  ASSERT_EQ(pc.analyses.size(), 1u);
  EXPECT_EQ(pc.analyses[0].kind, "tran");
  ASSERT_EQ(pc.analyses[0].args.size(), 2u);
}

TEST(Parser, ContinuationLinesAndComments) {
  const auto pc = parseNetlistString(
      "* full-line comment\n"
      "V1 a 0 PULSE(0 1\n"
      "+ 0 1n 1n 5n 20n) ; trailing comment\n"
      "R1 a 0 1k\n");
  EXPECT_NE(pc.netlist->find("V1"), nullptr);
  EXPECT_NE(pc.netlist->find("R1"), nullptr);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parseNetlistString("R1 a 0\n");
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
  EXPECT_THROW(parseNetlistString("M1 d g 0 0 nomodel W=1u L=1u\n"),
               NetlistError);
  // Unknown element letter (after the title line, which is skipped).
  EXPECT_THROW(parseNetlistString("some title\nX1 a b c\n"), NetlistError);
}

TEST(Parser, ParsesBjtWithModel) {
  const auto pc = parseNetlistString(R"(
.model fastnpn npn (is=2f bf=180 br=3 vaf=90 cje=1p cjc=0.6p tf=0.35n
+ rb=120 rc=15 re=2)
.model fastpnp pnp (is=1f bf=60)
Q1 c b e fastnpn area=2
Q2 c2 b2 e2 fastpnp
V1 c 0 3.0
.op
)");
  const auto* q1 = dynamic_cast<const Bjt*>(pc.netlist->find("Q1"));
  ASSERT_NE(q1, nullptr);
  EXPECT_DOUBLE_EQ(q1->model().is, 2e-15);
  EXPECT_DOUBLE_EQ(q1->model().bf, 180.0);
  EXPECT_DOUBLE_EQ(q1->model().vaf, 90.0);
  EXPECT_DOUBLE_EQ(q1->model().rb, 120.0);
  EXPECT_DOUBLE_EQ(q1->area(), 2.0);
  EXPECT_FALSE(q1->model().pnp);
  const auto* q2 = dynamic_cast<const Bjt*>(pc.netlist->find("Q2"));
  ASSERT_NE(q2, nullptr);
  EXPECT_TRUE(q2->model().pnp);
  EXPECT_DOUBLE_EQ(q2->area(), 1.0);
  // Two mismatch parameters (dIS/IS, dBF/BF) per BJT.
  EXPECT_EQ(pc.netlist->mismatchParams().size(), 4u);
  // RB/RC/RE > 0 on Q1 adds three internal nodes.
  EXPECT_NE(pc.netlist->findNode("Q1:b"), std::nullopt);
  EXPECT_NE(pc.netlist->findNode("Q1:c"), std::nullopt);
  EXPECT_NE(pc.netlist->findNode("Q1:e"), std::nullopt);
  EXPECT_EQ(pc.netlist->findNode("Q2:b"), std::nullopt);
}

// Malformed .model cards must fail loudly with the offending line number —
// never fall back to silent defaults.
TEST(Parser, RejectsUnknownModelParameter) {
  try {
    parseNetlistString(".model m1 npn (is=1f bff=100)\n");
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 1"), std::string::npos) << what;
    EXPECT_NE(what.find("unknown parameter 'bff'"), std::string::npos) << what;
  }
  // Same strictness for the other model types and element cards.
  EXPECT_THROW(parseNetlistString(".model m1 nmos (kpp=1)\n"), NetlistError);
  EXPECT_THROW(parseNetlistString(".model m1 d (isx=1f)\n"), NetlistError);
  EXPECT_THROW(parseNetlistString("R1 a 0 1k sgma=10\n"), NetlistError);
  EXPECT_THROW(parseNetlistString(
                   ".model m1 npn (is=1f)\nQ1 c b e m1 aerea=2\n"),
               NetlistError);
}

TEST(Parser, RejectsDuplicateModelNames) {
  try {
    parseNetlistString(
        ".model m1 npn (is=1f)\n"
        ".model m1 d (is=2f)\n");
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("duplicate model name 'm1'"), std::string::npos)
        << what;
  }
  // Duplicate parameters within one card are rejected too.
  EXPECT_THROW(parseNetlistString(".model m1 npn (is=1f is=2f)\n"),
               NetlistError);
}

TEST(Parser, RejectsMalformedBjtCards) {
  // Too few nodes.
  EXPECT_THROW(parseNetlistString("Q1 c b\n"), NetlistError);
  // Unknown model.
  EXPECT_THROW(parseNetlistString("Q1 c b e nomodel\n"), NetlistError);
  // Non-positive area.
  EXPECT_THROW(parseNetlistString(
                   ".model m1 npn (is=1f)\nQ1 c b e m1 area=0\n"),
               NetlistError);
  // Unknown model type.
  EXPECT_THROW(parseNetlistString(".model m1 bjt (is=1f)\n"), NetlistError);
  // Dangling key without value.
  EXPECT_THROW(parseNetlistString(".model m1 npn (is)\n"), NetlistError);
}

// --------------------------------------------------------------- stdcell

TEST(StdCell, ComparatorHasElevenFets) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  const auto tb = buildComparatorTestbench(nl, kit);
  EXPECT_EQ(tb.comp.fets.size(), 11u);
  EXPECT_EQ(tb.comp.fet("M2")->width(), ComparatorOptions{}.wInput);
  // 22 mismatch parameters: 2 per transistor.
  EXPECT_EQ(nl.mismatchParams().size(), 22u);
  EXPECT_GE(tb.vosIndex, 0);
}

TEST(StdCell, LogicPathStructure) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  const auto lp = buildLogicPath(nl, kit);
  nl.finalize();
  // 4 inverters (2 fets) + 2 nands (4 fets) = 16 fets = 32 params.
  EXPECT_EQ(nl.mismatchParams().size(), 32u);
  EXPECT_NE(lp.srcX, nullptr);
}

TEST(StdCell, RingOscillatorStageCount) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  const auto osc = buildRingOscillator(nl, kit);
  EXPECT_EQ(osc.stages.size(), 5u);
  Netlist nl2;
  EXPECT_THROW(buildRingOscillator(nl2, kit, {.stages = 4}), Error);
}

}  // namespace
}  // namespace psmn
