#!/usr/bin/env python3
"""CLI integration tests for the built netlist_runner binary.

Each CTest `cli_<case>` invocation runs ONE case from this file against
the real executable: card-mode runs, in-process and multi-process sweeps,
run-report generation (validated with scripts/check_run_report.py's own
checkers, so the CLI tier and CI enforce the identical schema), and the
bad-input exit codes scripted flows depend on.

Usage: cli_test.py --runner <netlist_runner> --repo <repo root> <case>
"""

import argparse
import importlib.util
import json
import os
import subprocess
import sys
import tempfile

DECK = "examples/decks/bjt_diffamp.sp"
SWEEP = ["--sweep", "mc:4", "--jobs", "1", "--seed", "1", "--probe", "out"]


def load_report_checker(repo):
    path = os.path.join(repo, "scripts", "check_run_report.py")
    spec = importlib.util.spec_from_file_location("check_run_report", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class Cli:
    def __init__(self, runner, repo, tmp):
        self.runner = runner
        self.repo = repo
        self.tmp = tmp
        self.checker = load_report_checker(repo)

    def run(self, *args):
        return subprocess.run([self.runner] + list(args), cwd=self.tmp,
                              capture_output=True, text=True, timeout=480)

    def deck(self):
        return os.path.join(self.repo, DECK)

    def check_report(self, metrics=None, trace=None):
        errors = []
        if metrics is not None:
            self.checker.check_metrics(metrics, errors)
        if trace is not None:
            self.checker.check_trace(trace, errors)
        assert not errors, "\n".join(errors)


def expect(cond, what, proc):
    assert cond, (f"{what}\nexit={proc.returncode}\n"
                  f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")


def sweep_lines(stdout):
    """The per-scenario `mc<k> v(out) = ...` lines plus the summary."""
    return [ln.strip() for ln in stdout.splitlines()
            if "v(out) = " in ln or ln.startswith("summary:")]


# ---------------------------------------------------------------- cases

def case_card_demo(cli):
    """No arguments: the built-in demo deck runs its cards and exits 0."""
    p = cli.run()
    expect(p.returncode == 0, "demo run failed", p)
    expect("built-in demo" in p.stdout, "missing demo banner", p)
    expect("title:" in p.stdout, "missing title line", p)


def case_card_deck(cli):
    """Card mode over a real deck, with a validated metrics report."""
    metrics = os.path.join(cli.tmp, "metrics.json")
    p = cli.run(cli.deck(), "--metrics", metrics)
    expect(p.returncode == 0, "card run failed", p)
    expect("title: bjt differential amplifier" in p.stdout,
           "deck title missing", p)
    cli.check_report(metrics=metrics)
    doc = json.load(open(metrics))
    expect(doc["procs"] == 1, "card mode must report procs=1", p)
    expect(doc["analyses"], "card mode must record analyses", p)


def case_sweep_mc(cli):
    """In-process seeded sweep: report schema + per-scenario accounting."""
    metrics = os.path.join(cli.tmp, "metrics.json")
    p = cli.run(cli.deck(), *SWEEP, "--metrics", metrics)
    expect(p.returncode == 0, "sweep failed", p)
    cli.check_report(metrics=metrics)
    doc = json.load(open(metrics))
    sweep = doc["sweep"]
    expect(sweep["scenarios"] == 4, "expected 4 scenarios", p)
    expect(sweep["failed"] == 0, "unexpected scenario failures", p)
    expect(doc["procs"] == 1, "in-process sweep must report procs=1", p)
    expect(len(sweep_lines(p.stdout)) == 5, "expected 4 results + summary", p)


def case_sweep_procs(cli):
    """Multi-process sweep smoke: same schema, procs field recorded."""
    metrics = os.path.join(cli.tmp, "metrics.json")
    p = cli.run(cli.deck(), *SWEEP, "--procs", "2", "--metrics", metrics)
    expect(p.returncode == 0, "multi-process sweep failed", p)
    expect("2 proc(s)" in p.stdout, "banner must name the topology", p)
    cli.check_report(metrics=metrics)
    doc = json.load(open(metrics))
    expect(doc["procs"] == 2, "metrics must record --procs", p)
    expect(doc["sweep"]["failed"] == 0, "unexpected scenario failures", p)
    expect(all(sc["ok"] for sc in doc["sweep"]["per_scenario"]),
           "every scenario must succeed", p)


def case_sweep_trace(cli):
    """Sweep with both report files; the trace must validate too."""
    metrics = os.path.join(cli.tmp, "metrics.json")
    trace = os.path.join(cli.tmp, "trace.json")
    p = cli.run(cli.deck(), "--sweep", "mc:2", "--jobs", "1", "--probe",
                "out", "--metrics", metrics, "--trace", trace)
    expect(p.returncode == 0, "traced sweep failed", p)
    cli.check_report(metrics=metrics, trace=trace)


def case_sweep_procs_identity(cli):
    """The determinism contract at the CLI surface: identical per-scenario
    values, stats, and merged counters for procs=1 vs procs=2."""
    out = {}
    for procs in (1, 2):
        metrics = os.path.join(cli.tmp, f"metrics{procs}.json")
        p = cli.run(cli.deck(), *SWEEP, "--procs", str(procs),
                    "--metrics", metrics)
        expect(p.returncode == 0, f"procs={procs} sweep failed", p)
        cli.check_report(metrics=metrics)
        out[procs] = (json.load(open(metrics)), sweep_lines(p.stdout))
    m1, lines1 = out[1]
    m2, lines2 = out[2]
    assert lines1 == lines2, (
        f"printed sweep values differ:\n{lines1}\nvs\n{lines2}")
    for key in ("sweep", "counters", "solve_stats"):
        assert m1.get(key) == m2.get(key), (
            f"metrics '{key}' differs between procs=1 and procs=2:\n"
            f"{m1.get(key)}\nvs\n{m2.get(key)}")


def case_bad_inputs(cli):
    """Exit codes and one-line causes scripted flows rely on."""
    p = cli.run("/nonexistent/deck.sp")
    expect(p.returncode == 1 and "cannot open" in p.stderr,
           "missing deck must exit 1 with 'cannot open'", p)

    bad = os.path.join(cli.tmp, "bad.sp")
    with open(bad, "w") as f:
        f.write("* malformed deck\nr1 a\n")
    p = cli.run(bad)
    expect(p.returncode == 1 and "error:" in p.stderr,
           "malformed deck must exit 1 with a parse error", p)

    p = cli.run(cli.deck(), "--frobnicate")
    expect(p.returncode == 1 and "unknown flag" in p.stderr,
           "unknown flag must exit 1", p)

    p = cli.run(cli.deck(), "--sweep", "xyz")
    expect(p.returncode == 1 and "--sweep expects mc:<N>" in p.stderr,
           "bad sweep spec must exit 1", p)

    p = cli.run(cli.deck(), "--sweep", "mc:2")
    expect(p.returncode == 1 and "--probe" in p.stderr,
           "sweep without probe must exit 1", p)

    p = cli.run(cli.deck(), "--sweep", "mc:2", "--probe", "no_such_node")
    expect(p.returncode == 1 and "probe node" in p.stderr,
           "unknown probe node must exit 1", p)

    p = cli.run(cli.deck(), "--procs", "0")
    expect(p.returncode == 1 and "--procs" in p.stderr,
           "--procs 0 must exit 1", p)


CASES = {
    "card_demo": case_card_demo,
    "card_deck": case_card_deck,
    "sweep_mc": case_sweep_mc,
    "sweep_procs": case_sweep_procs,
    "sweep_trace": case_sweep_trace,
    "sweep_procs_identity": case_sweep_procs_identity,
    "bad_inputs": case_bad_inputs,
}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--runner", required=True,
                    help="path to the built netlist_runner")
    ap.add_argument("--repo", required=True, help="repository root")
    ap.add_argument("case", choices=sorted(CASES))
    args = ap.parse_args()
    with tempfile.TemporaryDirectory(prefix="psmn_cli_") as tmp:
        CASES[args.case](Cli(args.runner, args.repo, tmp))
    print(f"cli case '{args.case}' OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
