// Parallel execution runtime tests: thread-pool coverage and failure
// semantics, deterministic chunked reduction, and the PR's core promise —
// scenario sweeps, parallel multi-RHS sensitivity, and Monte-Carlo batches
// are bit-identical across jobs counts (1/2/8) and across repeated runs
// with the same seed.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <cmath>

#include "circuit/parser.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "circuit/stdcell.hpp"
#include "core/monte_carlo.hpp"
#include "engine/transient.hpp"
#include "engine/transient_sensitivity.hpp"
#include "runtime/ipc.hpp"
#include "runtime/process_sweep.hpp"
#include "runtime/scenario_sweep.hpp"
#include "runtime/thread_pool.hpp"

namespace psmn {
namespace {

// ------------------------------------------------------------ thread pool

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.jobCount(), 4u);
  constexpr size_t kN = 1013;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallelFor(kN, 7, [&](size_t b, size_t e, size_t slot) {
    EXPECT_LT(slot, pool.jobCount());
    for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, SingleJobRunsInlineAndZeroNIsANoop) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.jobCount(), 1u);
  size_t calls = 0;
  pool.parallelFor(10, 4, [&](size_t b, size_t e, size_t slot) {
    EXPECT_EQ(slot, 0u);
    calls += e - b;
  });
  EXPECT_EQ(calls, 10u);
  pool.parallelFor(0, 4, [&](size_t, size_t, size_t) { FAIL(); });
}

TEST(ThreadPool, ReduceIsBitIdenticalAcrossJobCounts) {
  // A sum whose result depends on association order: identical partials
  // combined in chunk order must give the same bits for every jobs count.
  const auto mapChunk = [](size_t b, size_t e) {
    Real acc = 0.0;
    for (size_t i = b; i < e; ++i) {
      acc += std::sin(static_cast<Real>(i)) * 1e-3 + 1.0 / (1.0 + i);
    }
    return acc;
  };
  const auto combine = [](Real a, Real b) { return a + b; };
  ThreadPool p1(1), p2(2), p8(8);
  const Real r1 = parallelReduce(p1, 4097, 64, 0.0, mapChunk, combine);
  const Real r2 = parallelReduce(p2, 4097, 64, 0.0, mapChunk, combine);
  const Real r8 = parallelReduce(p8, 4097, 64, 0.0, mapChunk, combine);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1, r8);
}

TEST(ThreadPool, LowestFailedChunkWinsDeterministically) {
  ThreadPool pool(8);
  for (int repeat = 0; repeat < 20; ++repeat) {
    try {
      pool.parallelFor(100, 10, [](size_t b, size_t, size_t) {
        const size_t c = b / 10;
        if (c == 3 || c == 7) {
          throw Error("chunk " + std::to_string(c) + " failed");
        }
      });
      FAIL() << "expected an exception";
    } catch (const Error& e) {
      EXPECT_STREQ(e.what(), "chunk 3 failed");
    }
  }
}

TEST(ThreadPool, IdleSlotStealsQueuedChunksFromABusyOne) {
  // Two slots, four chunks: the block partition gives slot 0 chunks {0,1}
  // and slot 1 chunks {2,3}. Chunk 0 blocks its owner until every other
  // chunk has run — chunk 1 can then only run if slot 1 STEALS it from
  // slot 0's deque. Per-slot deques without stealing would leave chunk 1
  // stranded behind chunk 0 and time out here.
  ThreadPool pool(2);
  std::atomic<int> finished{0};
  std::atomic<int> timeouts{0};
  pool.parallelFor(4, 1, [&](size_t b, size_t, size_t) {
    if (b == 0) {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (finished.load() < 3) {
        if (std::chrono::steady_clock::now() > deadline) {
          timeouts.fetch_add(1);
          break;
        }
        std::this_thread::yield();
      }
    }
    finished.fetch_add(1);
  });
  EXPECT_EQ(timeouts.load(), 0);
  EXPECT_EQ(finished.load(), 4);
}

TEST(ThreadPool, StolenChunkExceptionPropagatesAsLowestFailedChunk) {
  // Force the failing chunk to run on a thief: slot 0 owns chunks {0..3}
  // but sits in chunk 0 until chunk 3 has run, so chunk 3 — which throws —
  // is stolen and fails on slot 1. The error must still surface as the
  // lowest failed chunk, exactly as if its owner had run it.
  ThreadPool pool(2);
  for (int repeat = 0; repeat < 10; ++repeat) {
    std::atomic<bool> chunk3Ran{false};
    try {
      pool.parallelFor(80, 10, [&](size_t b, size_t, size_t) {
        const size_t c = b / 10;
        if (c == 0) {
          const auto deadline =
              std::chrono::steady_clock::now() + std::chrono::seconds(10);
          while (!chunk3Ran.load() &&
                 std::chrono::steady_clock::now() < deadline) {
            std::this_thread::yield();
          }
        }
        if (c == 3) {
          chunk3Ran.store(true);
          throw Error("chunk 3 failed");
        }
        if (c == 5) throw Error("chunk 5 failed");
      });
      FAIL() << "expected an exception";
    } catch (const Error& e) {
      EXPECT_STREQ(e.what(), "chunk 3 failed");
    }
  }
}

TEST(ThreadPool, NestedParallelForCompletesInline) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  pool.parallelFor(8, 1, [&](size_t b, size_t, size_t) {
    // Nested loop on the same (busy) pool: must run inline, not deadlock.
    pool.parallelFor(8, 2, [&](size_t ib, size_t ie, size_t) {
      for (size_t i = ib; i < ie; ++i) hits[b * 8 + i].fetch_add(1);
    });
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, DifferentPoolFansOutFromAWorkerThread) {
  // A worker of pool A driving pool B must still fan out on B — only
  // SAME-pool nesting serializes (B's workers drain their own queue, so
  // no deadlock). The MC-batch-inside-a-sweep path relies on this. The
  // check is concurrency, not timing: each inner body spins until both
  // inner chunks have *started*, which can only happen when two inner
  // slots run them concurrently; a serialized inner loop would time out.
  ThreadPool outer(2);
  std::atomic<int> overlapFailures{0};
  outer.parallelFor(2, 1, [&](size_t, size_t, size_t) {
    ThreadPool inner(2);
    std::atomic<int> started{0};
    inner.parallelFor(2, 1, [&](size_t, size_t, size_t) {
      started.fetch_add(1);
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (started.load() < 2) {
        if (std::chrono::steady_clock::now() > deadline) {
          overlapFailures.fetch_add(1);
          break;
        }
        std::this_thread::yield();
      }
    });
  });
  EXPECT_EQ(overlapFailures.load(), 0);
}

// ------------------------------------------------- fixtures for the sweeps

std::unique_ptr<Netlist> makeChainNetlist(int stages, int rows, Real cLoad) {
  auto nl = std::make_unique<Netlist>();
  const ProcessKit kit = ProcessKit::cmos130();
  InverterChainOptions copt;
  copt.stages = stages;
  copt.rows = rows;
  copt.cLoad = cLoad;
  buildInverterChain(*nl, kit, copt);
  return nl;
}

std::unique_ptr<Netlist> makeRcDividerNetlist() {
  auto nl = std::make_unique<Netlist>();
  const NodeId top = nl->node("top");
  const NodeId mid = nl->node("mid");
  nl->add<VSource>("V1", top, kGround,
                   SourceWave::pulse(0.0, 2.0, 1e-9, 0.5e-9, 0.5e-9, 6e-9,
                                     20e-9),
                   *nl);
  nl->add<Resistor>("R1", top, mid, 1e3, *nl, /*sigma=*/10.0);
  nl->add<Resistor>("R2", mid, kGround, 1e3, *nl, /*sigma=*/10.0);
  nl->add<Capacitor>("C1", mid, kGround, 1e-12, *nl);
  return nl;
}

// ---------------------------------------------------------- scenario sweep

std::vector<SweepScenario> chainTransientScenarios() {
  std::vector<SweepScenario> scenarios;
  for (int i = 0; i < 6; ++i) {
    SweepScenario sc;
    sc.name = "cload_" + std::to_string(i);
    const Real cLoad = 2e-15 * (i + 1);
    sc.make = [cLoad] { return makeChainNetlist(4, 1, cLoad); };
    sc.analysis = SweepAnalysis::kTransient;
    sc.outNode = "ch4";  // last tap of the chain (see buildInverterChain)
    sc.t0 = 0.0;
    sc.t1 = 2e-9;
    sc.dt = 20e-12;
    scenarios.push_back(std::move(sc));
  }
  return scenarios;
}

TEST(ScenarioSweep, InputOrderAndBitIdenticalAcrossJobCounts) {
  const auto scenarios = chainTransientScenarios();
  ThreadPool p1(1), p2(2), p8(8);
  const auto r1 = runScenarioSweep(scenarios, p1);
  const auto r2 = runScenarioSweep(scenarios, p2);
  const auto r8 = runScenarioSweep(scenarios, p8);
  const auto r2again = runScenarioSweep(scenarios, p2);
  ASSERT_EQ(r1.size(), scenarios.size());
  for (size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(r1[i].name, scenarios[i].name);
    EXPECT_EQ(r1[i].index, i);
    ASSERT_TRUE(r1[i].ok) << r1[i].error;
    ASSERT_TRUE(r2[i].ok) << r2[i].error;
    ASSERT_TRUE(r8[i].ok) << r8[i].error;
    ASSERT_EQ(r1[i].waveform.size(), r2[i].waveform.size());
    ASSERT_EQ(r1[i].waveform.size(), r8[i].waveform.size());
    for (size_t k = 0; k < r1[i].waveform.size(); ++k) {
      EXPECT_EQ(r1[i].waveform[k], r2[i].waveform[k]);
      EXPECT_EQ(r1[i].waveform[k], r8[i].waveform[k]);
      EXPECT_EQ(r1[i].waveform[k], r2again[i].waveform[k]);
    }
  }
}

TEST(ScenarioSweep, RaggedMixBitIdenticalAcrossJobCounts) {
  // A deliberately ragged scenario mix — mostly small chains, one slow
  // outlier (8x2, ~4x the unknowns and twice the window) sitting at a
  // block boundary so a work-stealing schedule actually redistributes the
  // small scenarios queued behind it. Output must not depend on who ran
  // what: bit-identical across jobs counts and repeats.
  std::vector<SweepScenario> scenarios;
  const int stageMix[] = {2, 6, 2, 10, 2, 4, 2, 8, 2, 4, 6, 2};
  for (size_t i = 0; i < std::size(stageMix); ++i) {
    SweepScenario sc;
    sc.name = "ragged_" + std::to_string(i);
    const int stages = stageMix[i];
    const bool outlier = (i == 3);
    sc.make = [stages, outlier] {
      return makeChainNetlist(stages, outlier ? 2 : 1, 4e-15);
    };
    sc.analysis = SweepAnalysis::kTransient;
    sc.outNode = outlier ? "chr1" + std::to_string(stages)
                         : "ch" + std::to_string(stages);
    sc.t1 = outlier ? 4e-9 : 2e-9;
    sc.dt = 20e-12;
    scenarios.push_back(std::move(sc));
  }
  ThreadPool p1(1), p2(2), p8(8);
  const auto r1 = runScenarioSweep(scenarios, p1);
  const auto r2 = runScenarioSweep(scenarios, p2);
  const auto r8 = runScenarioSweep(scenarios, p8);
  const auto r8again = runScenarioSweep(scenarios, p8);
  ASSERT_EQ(r1.size(), scenarios.size());
  for (size_t i = 0; i < scenarios.size(); ++i) {
    ASSERT_TRUE(r1[i].ok) << r1[i].error;
    ASSERT_TRUE(r2[i].ok) << r2[i].error;
    ASSERT_TRUE(r8[i].ok) << r8[i].error;
    ASSERT_EQ(r1[i].waveform.size(), r2[i].waveform.size());
    ASSERT_EQ(r1[i].waveform.size(), r8[i].waveform.size());
    for (size_t k = 0; k < r1[i].waveform.size(); ++k) {
      EXPECT_EQ(r1[i].waveform[k], r2[i].waveform[k]) << i << " " << k;
      EXPECT_EQ(r1[i].waveform[k], r8[i].waveform[k]) << i << " " << k;
      EXPECT_EQ(r1[i].waveform[k], r8again[i].waveform[k]) << i << " " << k;
    }
  }
}

TEST(ScenarioSweep, FailuresAreReportedInPlaceNotThrown) {
  auto scenarios = chainTransientScenarios();
  scenarios[2].outNode = "no_such_node";  // deterministic per-scenario death
  ThreadPool pool(4);
  const auto results = runScenarioSweep(scenarios, pool);
  ASSERT_EQ(results.size(), scenarios.size());
  for (size_t i = 0; i < results.size(); ++i) {
    if (i == 2) {
      EXPECT_FALSE(results[i].ok);
      EXPECT_NE(results[i].error.find("no_such_node"), std::string::npos)
          << results[i].error;
    } else {
      EXPECT_TRUE(results[i].ok) << results[i].error;
    }
  }
}

TEST(ScenarioSweep, SensitivityScenarioMatchesDirectEngineCall) {
  SweepScenario sc;
  sc.name = "rc_sens";
  sc.make = makeRcDividerNetlist;
  sc.analysis = SweepAnalysis::kTransientSensitivity;
  sc.outNode = "mid";
  sc.t1 = 4e-9;
  sc.dt = 50e-12;
  sc.tran.method = IntegrationMethod::kBackwardEuler;

  ThreadPool pool(2);
  const auto results = runScenarioSweep({&sc, 1}, pool);
  ASSERT_TRUE(results[0].ok) << results[0].error;

  // Reference: the same analysis run directly.
  auto nl = makeRcDividerNetlist();
  nl->finalize();
  MnaSystem sys(*nl);
  const int mid = nl->nodeIndex("mid");
  const auto sources = sys.collectSources(true, false);
  const auto ref =
      runTransientSensitivity(sys, 0.0, sc.t1, sc.dt, sources, sc.tran);
  ASSERT_EQ(results[0].times.size(), ref.times.size());
  for (size_t k = 0; k < ref.times.size(); ++k) {
    Real var = 0.0;
    for (size_t i = 0; i < sources.size(); ++i) {
      const Real d = ref.sens[i][k][mid] * sources[i].sigma;
      var += d * d;
    }
    EXPECT_EQ(results[0].sigma[k], std::sqrt(var)) << k;
    EXPECT_EQ(results[0].waveform[k], ref.states[k][mid]) << k;
  }
}

// ------------------------------------------- parallel multi-RHS sensitivity

void expectSensitivityBitIdentical(int stages, int rows,
                                   LinearSolverKind solver) {
  auto nl = makeChainNetlist(stages, rows, 5e-15);
  nl->finalize();
  MnaSystem sys(*nl);
  const auto sources = sys.collectSources(true, false);
  ASSERT_GE(sources.size(), 8u);

  TranOptions opt;
  opt.method = IntegrationMethod::kBackwardEuler;
  opt.solver = solver;
  const auto serial =
      runTransientSensitivity(sys, 0.0, 1e-9, 25e-12, sources, opt);

  for (size_t jobs : {2u, 8u}) {
    ThreadPool pool(jobs);
    TranOptions popt = opt;
    popt.pool = &pool;
    const auto par =
        runTransientSensitivity(sys, 0.0, 1e-9, 25e-12, sources, popt);
    ASSERT_EQ(par.times.size(), serial.times.size());
    ASSERT_EQ(par.sens.size(), serial.sens.size());
    for (size_t i = 0; i < serial.sens.size(); ++i) {
      for (size_t k = 0; k < serial.sens[i].size(); ++k) {
        for (size_t r = 0; r < serial.sens[i][k].size(); ++r) {
          // Bit-identical, not just close: each column's arithmetic is
          // independent of the partition.
          EXPECT_EQ(par.sens[i][k][r], serial.sens[i][k][r])
              << "jobs=" << jobs << " src=" << i << " k=" << k;
        }
      }
    }
  }
}

TEST(ParallelSensitivity, DenseBackendBitIdenticalAcrossJobCounts) {
  expectSensitivityBitIdentical(4, 1, LinearSolverKind::kDense);
}

TEST(ParallelSensitivity, SparseBackendBitIdenticalAcrossJobCounts) {
  expectSensitivityBitIdentical(6, 2, LinearSolverKind::kSparse);
}

// --------------------------------------------------- Monte-Carlo batches

RealVector measureMidFinal(const MnaSystem& s) {
  TranOptions topt;
  topt.method = IntegrationMethod::kBackwardEuler;
  topt.storeStates = false;
  const TransientResult tr = runTransient(s, 0.0, 2e-9, 50e-12, topt);
  const int mid = s.netlist().nodeIndex("mid");
  // Deterministic per-sample failure: extreme draws are rejected the way a
  // production measurement rejects a non-settling corner. Exercises the
  // failure accounting on both the serial and parallel paths.
  if (tr.finalState[mid] > 0.755) {
    throw SampleFailure("mid overshoot");
  }
  return {tr.finalState[mid]};
}

TEST(ParallelMonteCarlo, BitIdenticalAcrossJobCountsAndRepeats) {
  McOptions base;
  base.samples = 48;
  base.seed = 41;

  auto runWithJobs = [&](size_t jobs) {
    auto nl = makeRcDividerNetlist();
    nl->finalize();
    MnaSystem sys(*nl);
    McOptions opt = base;
    opt.jobs = jobs;
    MonteCarloEngine mc(sys, opt);
    mc.setNetlistFactory(makeRcDividerNetlist);
    return mc.run({"mid"}, measureMidFinal);
  };

  const McResult serial = runWithJobs(1);
  // The failure threshold must actually trip for this seed, or the
  // accounting parity below tests nothing.
  ASSERT_GT(serial.failedSamples, 0u);
  ASSERT_GT(serial.samples.size(), 0u);

  for (size_t jobs : {2u, 8u}) {
    const McResult par = runWithJobs(jobs);
    EXPECT_EQ(par.failedSamples, serial.failedSamples) << jobs;
    ASSERT_EQ(par.samples.size(), serial.samples.size()) << jobs;
    for (size_t k = 0; k < serial.samples.size(); ++k) {
      EXPECT_EQ(par.samples[k][0], serial.samples[k][0]) << k;
    }
    EXPECT_EQ(par.meanOf(0), serial.meanOf(0));
    EXPECT_EQ(par.sigma(0), serial.sigma(0));
  }
  const McResult repeat = runWithJobs(8);
  EXPECT_EQ(repeat.meanOf(0), runWithJobs(8).meanOf(0));
}

// -------------------------------------- multi-process topology matrix
//
// The distributed-sweep determinism contract (docs/architecture.md
// "Distributed sweep"): per-scenario values, SolveStats, and captured
// registry counters are byte-identical across EVERY jobs x procs
// topology — in-process runScenarioSweep at jobs 1/2/8 and
// runProcessSweep at procs 1/2/4 x jobsPerWorker 1/2 — including runs
// where an injected worker crash forces a resend.

constexpr const char* kMismatchDeck = R"(* process-sweep matrix deck
v1 top 0 pulse(0 2 1n 0.5n 0.5n 6n 20n)
r1 top mid 1k sigma=10
r2 mid 0 1k sigma=10
c1 mid 0 1p
)";
constexpr uint64_t kMatrixSeed = 11;
constexpr int kMatrixScenarios = 8;

/// Tests link gtest's main and cannot re-enter themselves with --worker;
/// the build drops the dedicated worker binary next to the test
/// executable for exactly this.
std::string siblingWorkerExe() {
  const std::string self = selfExecutablePath();
  return self.substr(0, self.find_last_of('/') + 1) + "psmn_sweep_worker";
}

std::vector<ProcessScenario> matrixProcScenarios() {
  std::vector<ProcessScenario> scenarios;
  for (int k = 0; k < kMatrixScenarios; ++k) {
    ProcessScenario ps;
    ps.name = "mc" + std::to_string(k);
    ps.deckIndex = 0;
    ps.analysis = SweepAnalysis::kTransient;
    ps.outNode = "mid";
    ps.t1 = 20e-9;
    ps.dt = 0.2e-9;
    ps.applyMismatch = true;
    ps.seed = kMatrixSeed;
    ps.sampleIndex = size_t(k);
    ps.retry.maxRetries = 2;
    scenarios.push_back(std::move(ps));
  }
  return scenarios;
}

/// The in-process reference for the same draws: fresh-stack `make` path
/// (finalize() is idempotent, so the sweep's own call is a no-op and the
/// draw applied here sticks).
std::vector<SweepScenario> matrixInProcessScenarios() {
  std::vector<SweepScenario> scenarios;
  for (int k = 0; k < kMatrixScenarios; ++k) {
    SweepScenario sc;
    sc.name = "mc" + std::to_string(k);
    sc.make = [k] {
      ParsedCircuit pc = parseNetlistString(kMismatchDeck);
      pc.netlist->finalize();
      applyMismatchSample(pc.netlist->mismatchParams(), nullptr, kMatrixSeed,
                          size_t(k));
      return std::move(pc.netlist);
    };
    sc.analysis = SweepAnalysis::kTransient;
    sc.outNode = "mid";
    sc.t1 = 20e-9;
    sc.dt = 0.2e-9;
    sc.retry.maxRetries = 2;
    scenarios.push_back(std::move(sc));
  }
  return scenarios;
}

void expectSameSweepValues(const std::vector<SweepResult>& ref,
                           const std::vector<SweepResult>& got,
                           const std::string& what) {
  ASSERT_EQ(ref.size(), got.size()) << what;
  for (size_t i = 0; i < ref.size(); ++i) {
    ASSERT_TRUE(got[i].ok) << what << " " << i << ": " << got[i].error;
    EXPECT_EQ(got[i].index, i) << what;
    EXPECT_EQ(got[i].name, ref[i].name) << what;
    ASSERT_EQ(got[i].times.size(), ref[i].times.size()) << what << " " << i;
    for (size_t t = 0; t < ref[i].times.size(); ++t) {
      EXPECT_EQ(got[i].times[t], ref[i].times[t]) << what << " " << i;
      EXPECT_EQ(got[i].waveform[t], ref[i].waveform[t])
          << what << " scenario " << i << " point " << t;
    }
    ASSERT_EQ(got[i].finalState.size(), ref[i].finalState.size()) << what;
    for (size_t r = 0; r < ref[i].finalState.size(); ++r) {
      EXPECT_EQ(got[i].finalState[r], ref[i].finalState[r]) << what;
    }
    EXPECT_EQ(got[i].stats.newtonIterations, ref[i].stats.newtonIterations)
        << what << " " << i;
    EXPECT_EQ(got[i].stats.steps, ref[i].stats.steps) << what << " " << i;
    EXPECT_EQ(got[i].stats.factorizations, ref[i].stats.factorizations)
        << what << " " << i;
    EXPECT_EQ(got[i].stats.refactorizations, ref[i].stats.refactorizations)
        << what << " " << i;
    EXPECT_EQ(got[i].stats.solves, ref[i].stats.solves) << what << " " << i;
    EXPECT_EQ(got[i].stats.evals, ref[i].stats.evals) << what << " " << i;
  }
}

std::array<uint64_t, kNumCounters> sumResultCounters(
    const std::vector<SweepResult>& results) {
  std::array<uint64_t, kNumCounters> sum{};
  for (const SweepResult& r : results) {
    EXPECT_TRUE(r.hasCounters) << r.name;
    for (size_t i = 0; i < kNumCounters; ++i) sum[i] += r.counters[i];
  }
  return sum;
}

TEST(ProcessSweep, BitIdenticalAcrossJobsAndProcsTopologies) {
  const auto procScenarios = matrixProcScenarios();
  const auto inprocScenarios = matrixInProcessScenarios();
  const std::vector<std::string> decks = {kMismatchDeck};

  // Reference: in-process, serial, with counter capture.
  ThreadPool p1(1);
  const auto ref = runScenarioSweep(inprocScenarios, p1, nullptr,
                                    /*captureCounters=*/true);
  for (const auto& r : ref) ASSERT_TRUE(r.ok) << r.name << ": " << r.error;
  const auto refCounters = sumResultCounters(ref);

  // In-process at higher job counts.
  for (size_t jobs : {2u, 8u}) {
    ThreadPool pool(jobs);
    const auto got = runScenarioSweep(inprocScenarios, pool, nullptr, true);
    expectSameSweepValues(ref, got, "jobs=" + std::to_string(jobs));
    EXPECT_EQ(sumResultCounters(got), refCounters) << jobs;
  }

  // Multi-process at every procs x jobsPerWorker topology. The registry
  // fold must reproduce the in-process counter totals exactly.
  for (size_t procs : {1u, 2u, 4u}) {
    for (size_t jobsPerWorker : {1u, 2u}) {
      ProcessSweepOptions opt;
      opt.procs = procs;
      opt.jobsPerWorker = jobsPerWorker;
      opt.workerExe = siblingWorkerExe();
      TelemetryRegistry reg(1);
      const auto got = runProcessSweep(decks, procScenarios, opt, &reg);
      const std::string what = "procs=" + std::to_string(procs) +
                               " jobsPerWorker=" +
                               std::to_string(jobsPerWorker);
      expectSameSweepValues(ref, got, what);
      EXPECT_EQ(sumResultCounters(got), refCounters) << what;
      EXPECT_EQ(reg.totals().counters, refCounters) << what;
      for (const auto& r : got) {
        EXPECT_EQ(r.attempts, 1) << what;
        EXPECT_FALSE(r.recovered) << what;
      }
    }
  }
}

TEST(ProcessSweep, CrashRetriedRunStaysBitIdentical) {
  // Kill one worker with the injected "worker.exit" SIGKILL right before
  // its second result write; the parent must strike + respawn + resend,
  // and the merged values AND counter totals must equal the crash-free
  // run's — the struck scenario only shows in attempts/recovered.
  const auto procScenarios = matrixProcScenarios();
  const std::vector<std::string> decks = {kMismatchDeck};

  ThreadPool p1(1);
  const auto ref = runScenarioSweep(matrixInProcessScenarios(), p1, nullptr,
                                    /*captureCounters=*/true);
  const auto refCounters = sumResultCounters(ref);

  ProcessSweepOptions opt;
  opt.procs = 2;
  opt.jobsPerWorker = 1;
  opt.workerExe = siblingWorkerExe();
  FaultPoint fp;
  fp.site = "worker.exit";
  fp.firstHit = 1;  // the second result write in each spawned worker
  fp.count = 1;
  opt.workerFaults.points.push_back(fp);

  TelemetryRegistry reg(1);
  const auto got = runProcessSweep(decks, procScenarios, opt, &reg);
  expectSameSweepValues(ref, got, "crash-retry");
  EXPECT_EQ(sumResultCounters(got), refCounters);
  EXPECT_EQ(reg.totals().counters, refCounters);
  size_t recovered = 0;
  for (const auto& r : got) {
    if (r.recovered) {
      ++recovered;
      EXPECT_GE(r.attempts, 2) << r.name;
    }
  }
  EXPECT_GT(recovered, 0u);
}

TEST(ScenarioSweep, McBatchScenarioMatchesDirectEngine) {
  SweepScenario sc;
  sc.name = "mc_batch";
  sc.make = makeRcDividerNetlist;
  sc.analysis = SweepAnalysis::kMcBatch;
  sc.mc.samples = 16;
  sc.mc.seed = 7;
  sc.mcNames = {"mid"};
  sc.mcMeasure = measureMidFinal;

  ThreadPool pool(4);
  const auto results = runScenarioSweep({&sc, 1}, pool);
  ASSERT_TRUE(results[0].ok) << results[0].error;

  auto nl = makeRcDividerNetlist();
  nl->finalize();
  MnaSystem sys(*nl);
  MonteCarloEngine mc(sys, sc.mc);
  const McResult ref = mc.run({"mid"}, measureMidFinal);
  EXPECT_EQ(results[0].mc.failedSamples, ref.failedSamples);
  EXPECT_EQ(results[0].mc.meanOf(0), ref.meanOf(0));
  EXPECT_EQ(results[0].mc.sigma(0), ref.sigma(0));
}

}  // namespace
}  // namespace psmn
