// Allocation-tracking tests: the transient stepping kernel must not touch
// the heap in the steady state (after the first step has sized the
// workspace, cached the sparsity pattern, and done the symbolic
// factorization). Global operator new/delete are overridden in this
// binary to count allocations; the counters are read only around the
// measured stepping loops, so gtest's own bookkeeping does not interfere.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "circuit/stdcell.hpp"
#include "engine/dc.hpp"
#include "engine/transient.hpp"
#include "rf/pss.hpp"
#include "util/telemetry.hpp"

namespace {
std::atomic<size_t> gAllocCount{0};
}  // namespace

void* operator new(std::size_t size) {
  ++gAllocCount;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  ++gAllocCount;
  if (void* p = std::aligned_alloc(static_cast<size_t>(align), size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace psmn {
namespace {

// Steps the system `warmup + measured` times with a persistent workspace
// and returns the number of allocations during the measured tail.
size_t allocationsPerSteadyState(LinearSolverKind solver, size_t warmup,
                                 size_t measured) {
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  RingOscillatorOptions oopt;
  oopt.stages = 65;  // 67 MNA unknowns: comfortably past the kAuto crossover
  const auto osc = buildRingOscillator(nl, kit, oopt);
  MnaSystem sys(nl);
  const size_t n = sys.size();

  RealVector x = solveDc(sys, {}).x;
  for (size_t i = 0; i < osc.stages.size(); ++i) {
    x[nl.nodeIndex(osc.stages[i])] += (i % 2 ? 0.2 : -0.2);
  }
  RealVector q;
  sys.evalDense(x, 0.0, nullptr, &q, nullptr, nullptr, {});
  RealVector qd(n, 0.0);

  TranOptions opt;
  opt.method = IntegrationMethod::kBackwardEuler;
  opt.solver = solver;
  TransientWorkspace ws;
  const Real h = 5e-12;
  Real t = 0.0;
  bool beStep = true;
  for (size_t k = 0; k < warmup; ++k) {
    EXPECT_TRUE(integrateStep(sys, opt.method, beStep, t, h, x, q, qd,
                              nullptr, opt, ws));
    beStep = false;
    t += h;
  }
  const size_t before = gAllocCount.load();
  for (size_t k = 0; k < measured; ++k) {
    integrateStep(sys, opt.method, false, t, h, x, q, qd, nullptr, opt, ws);
    t += h;
  }
  return gAllocCount.load() - before;
}

TEST(Allocation, SparseSteadyStateStepsAreHeapFree) {
  EXPECT_EQ(allocationsPerSteadyState(LinearSolverKind::kSparse, 20, 100), 0u);
}

TEST(Allocation, DenseSteadyStateStepsAreHeapFree) {
  EXPECT_EQ(allocationsPerSteadyState(LinearSolverKind::kDense, 20, 100), 0u);
}

TEST(Allocation, TelemetryProbesStayHeapFree) {
  // The two tests above already pin the telemetry-DISABLED case (no
  // registry is bound, every probe is one thread-local pointer test). A
  // BOUND registry must not regress the steady state either: counters are
  // plain adds into preallocated slots and spans above the configured
  // detail are compiled down to a load+compare. Only event COLLECTION
  // (--trace) is allowed to allocate, which is why it is opt-in.
  TelemetryRegistry reg(1);  // counters + phase timers, no events
  TelemetryScope scope(reg, 0);
  EXPECT_EQ(allocationsPerSteadyState(LinearSolverKind::kSparse, 20, 100), 0u);
  EXPECT_GT(reg.counterTotal(Counter::kNewtonIterations), 0u);
  EXPECT_GT(reg.counterTotal(Counter::kSparseRefactors), 0u);
}

TEST(Allocation, SparsePssPeriodIntegrationIsHeapFree) {
  // The shooting engines' inner loop: after one warm period integration
  // (pattern cached, symbolic factorization kept, charge-state buffers
  // sized), integrating further periods through the shared PssWorkspace
  // must not touch the heap.
  Netlist nl;
  auto kit = ProcessKit::cmos130();
  RingOscillatorOptions oopt;
  oopt.stages = 65;  // 67 MNA unknowns: comfortably past the kAuto crossover
  const auto osc = buildRingOscillator(nl, kit, oopt);
  MnaSystem sys(nl);

  RealVector x = solveDc(sys, {}).x;
  for (size_t i = 0; i < osc.stages.size(); ++i) {
    x[nl.nodeIndex(osc.stages[i])] += (i % 2 ? 0.2 : -0.2);
  }

  PssOptions opt;
  opt.solver = LinearSolverKind::kSparse;
  PssWorkspace ws;
  const Real period = 1e-9;
  const int steps = 100;
  integratePeriodInPlace(sys, x, 0.0, period, steps, opt, ws);  // warm
  const size_t before = gAllocCount.load();
  integratePeriodInPlace(sys, x, period, period, steps, opt, ws);
  EXPECT_EQ(gAllocCount.load() - before, 0u);
}

}  // namespace
}  // namespace psmn
