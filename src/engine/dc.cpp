#include "engine/dc.hpp"

#include <cmath>

namespace psmn {
namespace {

Real maxAbsVec(std::span<const Real> v) {
  Real m = 0.0;
  for (Real x : v) m = std::max(m, std::fabs(x));
  return m;
}

}  // namespace

bool newtonSolve(const MnaSystem& sys, RealVector& x, const DcOptions& opt,
                 Real sourceScale, Real gshunt, int* iterationsOut,
                 DcWorkspace* ws) {
  const size_t n = sys.size();
  const bool sparse = useSparseSolver(opt.solver, n, opt.sparseThreshold);
  DcWorkspace local;
  if (ws == nullptr) ws = &local;
  RealVector& f = ws->f;
  MnaSystem::EvalOptions eopt;
  eopt.sourceScale = sourceScale;
  eopt.gshunt = gshunt;

  for (int iter = 0; iter < opt.maxIterations; ++iter) {
    if (sparse) {
      sys.evalSparse(x, opt.time, &f, nullptr, &ws->gsp, nullptr, eopt);
    } else {
      sys.evalDense(x, opt.time, &f, nullptr, &ws->g, nullptr, eopt);
    }
    const Real resNorm = maxAbsVec(f);

    // Solve G dx = -f in place; the sparse branch reuses the pivot order
    // and fill pattern cached in the workspace (across iterations and,
    // when the caller passes one, across homotopy rungs).
    try {
      for (Real& v : f) v = -v;
      if (sparse) {
        if (ws->gsp.nonZeros() != ws->patternNnz) {
          ws->sluSymbolic = false;  // pattern was (re)built
          ws->patternNnz = ws->gsp.nonZeros();
        }
        if (!ws->sluSymbolic || !ws->slu.refactor(ws->gsp)) {
          ws->slu.factor(ws->gsp);
          ws->sluSymbolic = true;
        }
        ws->slu.solveInPlace(f);
      } else {
        ws->dlu.factor(ws->g);
        ws->dlu.solveInPlace(f);
      }
    } catch (const NumericalError&) {
      return false;
    }
    const RealVector& dx = f;

    // Clamp the Newton step to keep exponential devices in range.
    const Real stepNorm = maxAbsVec(dx);
    Real scale = 1.0;
    if (stepNorm > opt.maxStep) scale = opt.maxStep / stepNorm;
    for (size_t i = 0; i < n; ++i) x[i] += scale * dx[i];

    if (iterationsOut) *iterationsOut = iter + 1;
    if (resNorm < opt.residualTol && stepNorm * scale < opt.updateTol) {
      return true;
    }
  }
  return false;
}

DcResult solveDc(const MnaSystem& sys, const DcOptions& opt,
                 const RealVector* initialGuess) {
  DcResult result;
  result.x.assign(sys.size(), 0.0);
  if (initialGuess) {
    PSMN_CHECK(initialGuess->size() == sys.size(), "bad initial guess size");
    result.x = *initialGuess;
  }

  // One workspace for every strategy below: the sparsity pattern and
  // symbolic factorization survive across homotopy rungs.
  DcWorkspace ws;

  // Plain Newton first.
  if (newtonSolve(sys, result.x, opt, 1.0, opt.gshunt, &result.iterations,
                  &ws)) {
    return result;
  }

  // Gmin stepping: solve with a strong shunt, then relax it decade by
  // decade, warm-starting each rung.
  if (opt.gminSteps > 0) {
    RealVector x(sys.size(), 0.0);
    bool ok = true;
    Real gshunt = 1e-2;
    for (int step = 0; step < opt.gminSteps && ok; ++step) {
      ok = newtonSolve(sys, x, opt, 1.0, gshunt, &result.iterations, &ws);
      gshunt *= 0.1;
    }
    // Final solve with the caller's shunt only.
    if (ok && newtonSolve(sys, x, opt, 1.0, opt.gshunt, &result.iterations,
                          &ws)) {
      result.x = x;
      result.usedGminStepping = true;
      return result;
    }
  }

  // Source stepping: ramp all independent sources from zero.
  if (opt.sourceSteps > 0) {
    RealVector x(sys.size(), 0.0);
    bool ok = true;
    for (int step = 1; step <= opt.sourceSteps && ok; ++step) {
      const Real scale = static_cast<Real>(step) / opt.sourceSteps;
      ok = newtonSolve(sys, x, opt, scale, opt.gshunt, &result.iterations,
                       &ws);
    }
    if (ok) {
      result.x = x;
      result.usedSourceStepping = true;
      return result;
    }
  }

  throw ConvergenceError("DC operating point failed to converge");
}

}  // namespace psmn
