#include "engine/dc.hpp"

#include <cmath>

namespace psmn {
namespace {

Real maxAbsVec(std::span<const Real> v) {
  Real m = 0.0;
  for (Real x : v) m = std::max(m, std::fabs(x));
  return m;
}

}  // namespace

bool newtonSolve(const MnaSystem& sys, RealVector& x, const DcOptions& opt,
                 Real sourceScale, Real gshunt, int* iterationsOut,
                 DcWorkspace* ws) {
  const size_t n = sys.size();
  const bool sparse = useSparseSolver(opt.solver, n, opt.sparseThreshold);
  DcWorkspace local;
  if (ws == nullptr) ws = &local;
  RealVector& f = ws->f;
  MnaSystem::EvalOptions eopt;
  eopt.sourceScale = sourceScale;
  eopt.gshunt = gshunt;

  for (int iter = 0; iter < opt.maxIterations; ++iter) {
    if (sparse) {
      sys.evalSparse(x, opt.time, &f, nullptr, &ws->gsp, nullptr, eopt);
    } else {
      sys.evalDense(x, opt.time, &f, nullptr, &ws->g, nullptr, eopt);
    }
    const Real resNorm = maxAbsVec(f);
    // A non-finite residual means the iterate escaped the devices' range
    // (exp overflow on a deep logic chain rung): no amount of further
    // iteration recovers, so report failure immediately and let the
    // homotopy ladder backtrack instead of burning maxIterations factors.
    if (!std::isfinite(resNorm)) return false;

    // Solve G dx = -f in place; the sparse branch reuses the pivot order
    // and fill pattern cached in the workspace (across iterations and,
    // when the caller passes one, across homotopy rungs).
    try {
      for (Real& v : f) v = -v;
      if (sparse) {
        if (ws->gsp.nonZeros() != ws->patternNnz) {
          ws->sluSymbolic = false;  // pattern was (re)built
          ws->patternNnz = ws->gsp.nonZeros();
        }
        if (!ws->sluSymbolic || !ws->slu.refactor(ws->gsp)) {
          ws->slu.factor(ws->gsp, 0.1, opt.ordering);
          ws->sluSymbolic = true;
        }
        ws->slu.solveInPlace(f);
      } else {
        ws->dlu.factor(ws->g);
        ws->dlu.solveInPlace(f);
      }
    } catch (const NumericalError&) {
      return false;
    }
    const RealVector& dx = f;

    // Clamp the Newton step to keep exponential devices in range.
    const Real stepNorm = maxAbsVec(dx);
    if (!std::isfinite(stepNorm)) return false;  // don't poison the iterate
    Real scale = 1.0;
    if (stepNorm > opt.maxStep) scale = opt.maxStep / stepNorm;
    for (size_t i = 0; i < n; ++i) x[i] += scale * dx[i];

    if (iterationsOut) *iterationsOut = iter + 1;
    if (resNorm < opt.residualTol && stepNorm * scale < opt.updateTol) {
      return true;
    }
  }
  return false;
}

DcResult solveDc(const MnaSystem& sys, const DcOptions& opt,
                 const RealVector* initialGuess) {
  DcResult result;
  result.x.assign(sys.size(), 0.0);
  if (initialGuess) {
    PSMN_CHECK(initialGuess->size() == sys.size(), "bad initial guess size");
    result.x = *initialGuess;
  }

  // One workspace for every strategy below: the sparsity pattern and
  // symbolic factorization survive across homotopy rungs.
  DcWorkspace ws;

  // Plain Newton first.
  if (newtonSolve(sys, result.x, opt, 1.0, opt.gshunt, &result.iterations,
                  &ws)) {
    return result;
  }

  // Gmin stepping with backtracking: solve with a strong shunt, relax it
  // rung by rung toward zero, warm-starting each rung. A failed rung no
  // longer aborts the ladder (the old behavior, which killed deep logic
  // chains whose Newton escape happens at one specific shunt level):
  // instead the iterate reverts to the last converged rung and the rung is
  // re-tightened — the relaxation ratio backs off toward 1, halving the
  // stride in log-gshunt — then cautiously re-widened after each success.
  if (opt.gminSteps > 0) {
    RealVector x(sys.size(), 0.0);
    RealVector xGood;
    Real g = 1e-2;             // current rung's shunt
    Real gGood = 0.0;          // shunt of the last converged rung
    Real relax = 0.1;          // rung ratio; in [0.1, 1)
    constexpr Real kGminFloor = 1e-14;
    bool haveGood = false;
    // Rung budget including retries: the plain ladder used gminSteps rungs;
    // backtracking may re-walk hard levels at a finer stride.
    for (int attempt = 0; attempt < 6 * opt.gminSteps; ++attempt) {
      if (newtonSolve(sys, x, opt, 1.0, g, &result.iterations, &ws)) {
        xGood = x;
        gGood = g;
        haveGood = true;
        if (g <= kGminFloor) break;  // ladder bottomed out
        relax = std::max(0.1, relax * relax);  // re-widen the stride
        g = std::max(g * relax, kGminFloor);
      } else if (!haveGood) {
        // Even the strongest rung so far diverged: stiffen the start. The
        // failed Newton may have left x huge-but-finite; restart the
        // stiffer rung from zero or it inherits the escaped iterate.
        if (g >= 1e6) break;
        x.assign(sys.size(), 0.0);
        g *= 100.0;
      } else {
        // Backtrack to the last converged rung and take a smaller
        // relaxation step from there.
        x = xGood;
        relax = std::sqrt(relax);
        if (relax > 0.97) break;  // stride collapsed: give up this ladder
        g = std::max(gGood * relax, kGminFloor);
      }
    }
    // Final solve with the caller's shunt only.
    if (haveGood) {
      x = xGood;
      if (newtonSolve(sys, x, opt, 1.0, opt.gshunt, &result.iterations,
                      &ws)) {
        result.x = x;
        result.usedGminStepping = true;
        return result;
      }
    }
  }

  // Source stepping with backtracking: ramp all independent sources from
  // zero; a failed rung reverts to the last converged scale and halves the
  // ramp increment instead of aborting.
  if (opt.sourceSteps > 0) {
    RealVector x(sys.size(), 0.0);
    RealVector xGood(sys.size(), 0.0);
    Real scale = 0.0;
    const Real dsNominal = 1.0 / opt.sourceSteps;
    Real ds = dsNominal;
    constexpr Real kDsMin = 1e-4;
    bool stalled = false;
    for (int attempt = 0; attempt < 8 * opt.sourceSteps && scale < 1.0;
         ++attempt) {
      const Real target = std::min(1.0, scale + ds);
      if (newtonSolve(sys, x, opt, target, opt.gshunt, &result.iterations,
                      &ws)) {
        scale = target;
        xGood = x;
        ds = std::min(ds * 2.0, dsNominal);  // re-widen after success
      } else {
        x = xGood;
        ds *= 0.5;  // re-tighten the rung
        if (ds < kDsMin) {
          stalled = true;
          break;
        }
      }
    }
    if (!stalled && scale >= 1.0) {
      result.x = x;
      result.usedSourceStepping = true;
      return result;
    }
  }

  throw ConvergenceError("DC operating point failed to converge");
}

}  // namespace psmn
