#include "engine/dc.hpp"

#include <cmath>
#include <limits>

#include "util/fault_injection.hpp"
#include "util/telemetry.hpp"

namespace psmn {
namespace {

// Max-norm that propagates non-finites: std::max drops NaN (the comparison
// is false), so a poisoned residual would otherwise read as norm 0 and be
// accepted as converged.
Real maxAbsVec(std::span<const Real> v) {
  Real m = 0.0;
  for (Real x : v) {
    if (!std::isfinite(x)) return std::numeric_limits<Real>::quiet_NaN();
    m = std::max(m, std::fabs(x));
  }
  return m;
}

Real dotVec(std::span<const Real> a, std::span<const Real> b) {
  Real s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

/// Cold-path failure recorder for newtonSolve / the arclength corrector.
void recordFailure(DcWorkspace& ws, const MnaSystem& sys, const char* stage,
                   int iteration, Real residual, std::span<const Real> f) {
  ws.lastFailure = {};
  ws.lastFailure.analysis = "dc";
  ws.lastFailure.stage = stage;
  ws.lastFailure.iteration = iteration;
  if (std::isfinite(residual)) ws.lastFailure.residual = residual;
  ws.lastFailure.suspectNodes = sys.suspectUnknowns(f);
  ws.lastFailure.injectedFault = lastFiredFaultSite();
  ws.haveFailure = true;
}

}  // namespace

bool newtonSolve(const MnaSystem& sys, RealVector& x, const DcOptions& opt,
                 Real sourceScale, Real gshunt, int* iterationsOut,
                 DcWorkspace* ws) {
  const size_t n = sys.size();
  const bool sparse = useSparseSolver(opt.solver, n, opt.sparseThreshold);
  DcWorkspace local;
  if (ws == nullptr) ws = &local;
  RealVector& f = ws->f;
  MnaSystem::EvalOptions eopt;
  eopt.sourceScale = sourceScale;
  eopt.gshunt = gshunt;

  TraceSpan rungSpan(Phase::kStep, "newton_solve", TraceDetail::kStep);
  Real lastRes = -1.0;
  for (int iter = 0; iter < opt.maxIterations; ++iter) {
    TraceSpan iterSpan(Phase::kNewton, "newton_iter", TraceDetail::kKernel);
    if (sparse) {
      sys.evalSparse(x, opt.time, &f, nullptr, &ws->gsp, nullptr, eopt);
    } else {
      sys.evalDense(x, opt.time, &f, nullptr, &ws->g, nullptr, eopt);
    }
    ++ws->stats.evals;
    const Real resNorm = maxAbsVec(f);
    // A non-finite residual means the iterate escaped the devices' range
    // (exp overflow on a deep logic chain rung): no amount of further
    // iteration recovers, so report failure immediately and let the
    // homotopy ladder backtrack instead of burning maxIterations factors.
    if (!std::isfinite(resNorm)) {
      recordFailure(*ws, sys, "newton/non-finite-residual", iter, lastRes, f);
      return false;
    }
    lastRes = resNorm;

    // Solve G dx = -f in place; the sparse branch reuses the pivot order
    // and fill pattern cached in the workspace (across iterations and,
    // when the caller passes one, across homotopy rungs).
    try {
      for (Real& v : f) v = -v;
      if (sparse) {
        if (ws->gsp.nonZeros() != ws->patternNnz) {
          ws->sluSymbolic = false;  // pattern was (re)built
          ws->patternNnz = ws->gsp.nonZeros();
        }
        if (!ws->sluSymbolic || !ws->slu.refactor(ws->gsp)) {
          ws->slu.factor(ws->gsp, 0.1, opt.ordering);
          ws->sluSymbolic = true;
          ++ws->stats.factorizations;
        } else {
          ++ws->stats.refactorizations;
        }
        ws->stats.factorNnz = ws->slu.factorNonZeros();
        ws->slu.solveInPlace(f);
      } else {
        ws->dlu.factor(ws->g);
        ++ws->stats.factorizations;
        ws->dlu.solveInPlace(f);
      }
      ++ws->stats.solves;
    } catch (const NumericalError&) {
      for (Real& v : f) v = -v;  // restore f for the suspect report
      recordFailure(*ws, sys, "newton/factorization", iter, resNorm, f);
      return false;
    }
    const RealVector& dx = f;

    // Clamp the Newton step to keep exponential devices in range.
    const Real stepNorm = maxAbsVec(dx);
    if (!std::isfinite(stepNorm)) {  // don't poison the iterate
      recordFailure(*ws, sys, "newton/non-finite-step", iter, resNorm, {});
      return false;
    }
    Real scale = 1.0;
    if (stepNorm > opt.maxStep) scale = opt.maxStep / stepNorm;
    for (size_t i = 0; i < n; ++i) x[i] += scale * dx[i];

    if (iterationsOut) *iterationsOut = iter + 1;
    ++ws->stats.newtonIterations;
    telemetryCount(Counter::kNewtonIterations);
    if (resNorm < opt.residualTol && stepNorm * scale < opt.updateTol) {
      // Injected stagnation: refuse this acceptance and keep iterating, so
      // the kernel exhausts maxIterations exactly like a genuinely stuck
      // Newton (the recovery paths cannot tell the difference).
      if (faultShouldFire("dc.newton.converge")) continue;
      return true;
    }
  }
  recordFailure(*ws, sys, "newton/stagnation", opt.maxIterations, lastRes,
                ws->f);
  return false;
}

bool solveDcArclength(const MnaSystem& sys, RealVector& x,
                      const DcOptions& opt, DcWorkspace& ws,
                      int* iterationsOut, int* stepsOut) {
  if (opt.arclengthSteps <= 0) return false;
  TraceSpan span(Phase::kDc, "dc_arclength");
  const size_t n = sys.size();
  const bool sparse = useSparseSolver(opt.solver, n, opt.sparseThreshold);
  MnaSystem::EvalOptions eopt;
  eopt.gshunt = opt.gshunt;
  const Real dLamFd = 1e-6;  // FD step for f_lambda (lambda is O(1))

  // Evaluates f and factors J = df/dx at (xe, lambda) into the shared
  // workspace. False on a pivot breakdown or a non-finite residual.
  auto factorAt = [&](const RealVector& xe, Real lambda) -> bool {
    eopt.sourceScale = lambda;
    try {
      if (sparse) {
        sys.evalSparse(xe, opt.time, &ws.f, nullptr, &ws.gsp, nullptr, eopt);
        if (ws.gsp.nonZeros() != ws.patternNnz) {
          ws.sluSymbolic = false;
          ws.patternNnz = ws.gsp.nonZeros();
        }
        ++ws.stats.evals;
        if (!ws.sluSymbolic || !ws.slu.refactor(ws.gsp)) {
          ws.slu.factor(ws.gsp, 0.1, opt.ordering);
          ws.sluSymbolic = true;
          ++ws.stats.factorizations;
        } else {
          ++ws.stats.refactorizations;
        }
        ws.stats.factorNnz = ws.slu.factorNonZeros();
      } else {
        sys.evalDense(xe, opt.time, &ws.f, nullptr, &ws.g, nullptr, eopt);
        ++ws.stats.evals;
        ws.dlu.factor(ws.g);
        ++ws.stats.factorizations;
      }
    } catch (const NumericalError&) {
      return false;
    }
    return std::isfinite(maxAbsVec(ws.f));
  };
  auto solveJ = [&](RealVector& rhs) {
    if (sparse) ws.slu.solveInPlace(rhs);
    else ws.dlu.solveInPlace(rhs);
    ++ws.stats.solves;
  };
  // f_lambda at (xe, lambda) by forward difference against fAt (= f there).
  RealVector fPert;
  auto evalFLambda = [&](const RealVector& xe, Real lambda,
                         std::span<const Real> fAt, RealVector& fl) {
    MnaSystem::EvalOptions pe = eopt;
    pe.sourceScale = lambda + dLamFd;
    sys.evalDense(xe, opt.time, &fPert, nullptr, nullptr, nullptr, pe);
    ++ws.stats.evals;
    fl.resize(n);
    for (size_t i = 0; i < n; ++i) fl[i] = (fPert[i] - fAt[i]) / dLamFd;
  };

  // Anchor the curve at lambda = 0 (all independent sources off). If even
  // that fails there is nothing to continue from.
  x.assign(n, 0.0);
  if (!newtonSolve(sys, x, opt, 0.0, opt.gshunt, iterationsOut, &ws)) {
    return false;
  }
  const RealVector xAnchor = x;

  RealVector fl(n), w(n), ab(2 * n), xc(n), fAccept(n);

  // Traces the solution curve from the anchor with the given starting
  // orientation (+1: toward +lambda, -1: toward -lambda). True once a
  // lambda = 1 crossing has been polished to a solution (left in x).
  auto traceFrom = [&](Real orient) -> bool {
  x = xAnchor;
  Real lam = 0.0;
  RealVector tx(n, 0.0);  // tangent, x part (previous step's, for
  Real tl = orient;       // orientation); seeded along `orient`
  Real ds = opt.arclengthDs;
  int accepted = 0;

  for (int step = 0; step < opt.arclengthSteps; ++step) {
    // --- Tangent at the accepted point: J w = -f_lambda, t ~ (w, 1).
    if (!factorAt(x, lam)) {
      recordFailure(ws, sys, "arclength/tangent", step, -1.0, ws.f);
      return false;
    }
    fAccept = ws.f;
    evalFLambda(x, lam, fAccept, fl);
    w.assign(fl.begin(), fl.end());
    for (Real& v : w) v = -v;
    solveJ(w);
    Real norm = std::sqrt(dotVec(w, w) + 1.0);
    if (!std::isfinite(norm) || norm == 0.0) {
      recordFailure(ws, sys, "arclength/tangent", step, -1.0, fAccept);
      return false;
    }
    Real tauL = 1.0 / norm;
    // Orient along the previous tangent so the trace never doubles back;
    // through a fold this flips the sign of the lambda component — exactly
    // the turning-point traversal the ladders cannot do.
    const Real dir = dotVec(w, tx) / norm + tauL * tl;
    Real sgn = dir >= 0.0 ? 1.0 : -1.0;
    for (size_t i = 0; i < n; ++i) tx[i] = sgn * w[i] / norm;
    tl = sgn * tauL;

    // --- Predictor + corrector, halving ds until a step is accepted.
    bool stepAccepted = false;
    Real lamc = lam;
    while (!stepAccepted) {
      for (size_t i = 0; i < n; ++i) xc[i] = x[i] + ds * tx[i];
      lamc = lam + ds * tl;

      bool converged = false;
      for (int it = 0; it < opt.arclengthNewton; ++it) {
        if (!factorAt(xc, lamc)) break;
        const Real resNorm = maxAbsVec(ws.f);
        evalFLambda(xc, lamc, ws.f, fl);
        // Bordered system by block elimination on the factored J:
        //   [ J    f_l ] [dx ]   [ -f ]        J a = f,  J b = f_l
        //   [ tx^T tl  ] [dl ] = [ -N ]   =>   dl = (tx.a - N)/(tl - tx.b)
        //                                      dx = -a - dl*b
        // One batched 2-column solve against the factorization.
        for (size_t i = 0; i < n; ++i) ab[i] = ws.f[i];
        for (size_t i = 0; i < n; ++i) ab[n + i] = fl[i];
        if (sparse) ws.slu.solveManyInPlace(ab, 2);
        else ws.dlu.solveManyInPlace(ab, 2);
        ws.stats.solves += 2;
        const std::span<const Real> a(ab.data(), n);
        const std::span<const Real> b(ab.data() + n, n);
        Real bigN = tl * (lamc - lam) - ds;
        for (size_t i = 0; i < n; ++i) bigN += tx[i] * (xc[i] - x[i]);
        const Real denom = tl - dotVec(tx, b);
        const Real dl = (dotVec(tx, a) - bigN) / denom;
        if (!std::isfinite(dl)) break;
        Real stepNorm = std::fabs(dl);
        for (size_t i = 0; i < n; ++i) {
          stepNorm = std::max(stepNorm, std::fabs(a[i] + dl * b[i]));
        }
        if (!std::isfinite(stepNorm)) break;
        Real scale = 1.0;
        if (stepNorm > opt.maxStep) scale = opt.maxStep / stepNorm;
        for (size_t i = 0; i < n; ++i) {
          xc[i] += scale * (-a[i] - dl * b[i]);
        }
        lamc += scale * dl;
        if (iterationsOut) ++*iterationsOut;
        ++ws.stats.newtonIterations;
        telemetryCount(Counter::kNewtonIterations);
        if (resNorm < opt.residualTol && stepNorm * scale < opt.updateTol) {
          converged = true;
          // Grow the arc step after an easy corrector (few iterations).
          if (it <= 3) ds = std::min(ds * 1.5, opt.arclengthDsMax);
          break;
        }
      }
      if (converged) {
        stepAccepted = true;
      } else {
        ds *= 0.5;
        if (ds < opt.arclengthDsMin) {
          recordFailure(ws, sys, "arclength/step-collapse", step, -1.0, ws.f);
          return false;
        }
      }
    }

    // --- Crossing lambda = 1: polish with plain Newton from the
    // interpolated crossing point. A miss is not fatal — the curve may
    // fold back and cross again; keep tracing.
    if ((lam - 1.0) * (lamc - 1.0) <= 0.0 && lamc != lam) {
      const Real frac = (1.0 - lam) / (lamc - lam);
      RealVector xi(n);
      for (size_t i = 0; i < n; ++i) xi[i] = x[i] + frac * (xc[i] - x[i]);
      if (newtonSolve(sys, xi, opt, 1.0, opt.gshunt, iterationsOut, &ws)) {
        x = xi;
        if (stepsOut) *stepsOut = accepted + 1;
        return true;
      }
    }

    x = xc;
    lam = lamc;
    ++accepted;
    // Runaway guard: a trace this far outside the homotopy interval is
    // following a disconnected branch and will not reach lambda = 1.
    if (lam < -1.0 || lam > 3.0) {
      recordFailure(ws, sys, "arclength/lambda-escape", step, -1.0, ws.f);
      return false;
    }
  }
  recordFailure(ws, sys, "arclength/out-of-steps", opt.arclengthSteps, -1.0,
                ws.f);
  return false;
  };  // traceFrom

  // Two-sided tracing: the physical branch through lambda = 1 sometimes
  // leaves the anchor in the -lambda direction first (around a lower fold)
  // — a one-sided trace would follow the other arm to a dead end.
  for (const Real orient : {1.0, -1.0}) {
    if (traceFrom(orient)) return true;
  }
  return false;
}

DcResult solveDc(const MnaSystem& sys, const DcOptions& opt,
                 const RealVector* initialGuess) {
  TraceSpan span(Phase::kDc, "dc");
  DcResult result;
  result.x.assign(sys.size(), 0.0);
  if (initialGuess) {
    PSMN_CHECK(initialGuess->size() == sys.size(), "bad initial guess size");
    result.x = *initialGuess;
  }

  // One workspace for every strategy below: the sparsity pattern and
  // symbolic factorization survive across homotopy rungs.
  DcWorkspace ws;

  // Plain Newton first.
  if (newtonSolve(sys, result.x, opt, 1.0, opt.gshunt, nullptr, &ws)) {
    result.stats = ws.stats;
    return result;
  }

  // Gmin stepping with backtracking: solve with a strong shunt, relax it
  // rung by rung toward zero, warm-starting each rung. A failed rung no
  // longer aborts the ladder (the old behavior, which killed deep logic
  // chains whose Newton escape happens at one specific shunt level):
  // instead the iterate reverts to the last converged rung and the rung is
  // re-tightened — the relaxation ratio backs off toward 1, halving the
  // stride in log-gshunt — then cautiously re-widened after each success.
  if (opt.gminSteps > 0) {
    RealVector x(sys.size(), 0.0);
    RealVector xGood;
    Real g = 1e-2;             // current rung's shunt
    Real gGood = 0.0;          // shunt of the last converged rung
    Real relax = 0.1;          // rung ratio; in [0.1, 1)
    constexpr Real kGminFloor = 1e-14;
    bool haveGood = false;
    // Rung budget including retries: the plain ladder used gminSteps rungs;
    // backtracking may re-walk hard levels at a finer stride.
    for (int attempt = 0; attempt < 6 * opt.gminSteps; ++attempt) {
      if (newtonSolve(sys, x, opt, 1.0, g, nullptr, &ws)) {
        xGood = x;
        gGood = g;
        haveGood = true;
        if (g <= kGminFloor) break;  // ladder bottomed out
        relax = std::max(0.1, relax * relax);  // re-widen the stride
        g = std::max(g * relax, kGminFloor);
      } else if (!haveGood) {
        // Even the strongest rung so far diverged: stiffen the start. The
        // failed Newton may have left x huge-but-finite; restart the
        // stiffer rung from zero or it inherits the escaped iterate.
        if (g >= 1e6) break;
        x.assign(sys.size(), 0.0);
        g *= 100.0;
      } else {
        // Backtrack to the last converged rung and take a smaller
        // relaxation step from there.
        x = xGood;
        relax = std::sqrt(relax);
        if (relax > 0.97) break;  // stride collapsed: give up this ladder
        g = std::max(gGood * relax, kGminFloor);
      }
    }
    // Final solve with the caller's shunt only.
    if (haveGood) {
      x = xGood;
      if (newtonSolve(sys, x, opt, 1.0, opt.gshunt, nullptr, &ws)) {
        result.x = x;
        result.usedGminStepping = true;
        result.stats = ws.stats;
        return result;
      }
    }
  }

  // Source stepping with backtracking: ramp all independent sources from
  // zero; a failed rung reverts to the last converged scale and halves the
  // ramp increment instead of aborting.
  if (opt.sourceSteps > 0) {
    RealVector x(sys.size(), 0.0);
    RealVector xGood(sys.size(), 0.0);
    Real scale = 0.0;
    const Real dsNominal = 1.0 / opt.sourceSteps;
    Real ds = dsNominal;
    constexpr Real kDsMin = 1e-4;
    bool stalled = false;
    for (int attempt = 0; attempt < 8 * opt.sourceSteps && scale < 1.0;
         ++attempt) {
      const Real target = std::min(1.0, scale + ds);
      if (newtonSolve(sys, x, opt, target, opt.gshunt, nullptr, &ws)) {
        scale = target;
        xGood = x;
        ds = std::min(ds * 2.0, dsNominal);  // re-widen after success
      } else {
        x = xGood;
        ds *= 0.5;  // re-tighten the rung
        if (ds < kDsMin) {
          stalled = true;
          break;
        }
      }
    }
    if (!stalled && scale >= 1.0) {
      result.x = x;
      result.usedSourceStepping = true;
      result.stats = ws.stats;
      return result;
    }
  }

  // Pseudo-arclength continuation: both ramped ladders stalled, which on a
  // circuit with a fold means the branch they were following vanished.
  // Trace the solution curve itself instead.
  {
    RealVector x;
    if (solveDcArclength(sys, x, opt, ws, nullptr,
                         &result.arclengthSteps)) {
      result.x = x;
      result.usedArclength = true;
      result.stats = ws.stats;
      return result;
    }
  }

  FailureDiagnostics diag;
  if (ws.haveFailure) diag = ws.lastFailure;
  diag.analysis = "dc";
  if (diag.stage.empty()) diag.stage = "ladder";
  throw ConvergenceError(
      "DC operating point failed to converge (gmin/source ladders and "
      "arclength continuation exhausted): " + diag.describe(),
      std::move(diag));
}

}  // namespace psmn
