#include "engine/dc.hpp"

#include <cmath>

#include "numeric/dense_lu.hpp"

namespace psmn {
namespace {

Real maxAbsVec(std::span<const Real> v) {
  Real m = 0.0;
  for (Real x : v) m = std::max(m, std::fabs(x));
  return m;
}

}  // namespace

bool newtonSolve(const MnaSystem& sys, RealVector& x, const DcOptions& opt,
                 Real sourceScale, Real gshunt, int* iterationsOut) {
  const size_t n = sys.size();
  RealVector f;
  RealMatrix g;
  MnaSystem::EvalOptions eopt;
  eopt.sourceScale = sourceScale;
  eopt.gshunt = gshunt;

  for (int iter = 0; iter < opt.maxIterations; ++iter) {
    sys.evalDense(x, opt.time, &f, nullptr, &g, nullptr, eopt);
    const Real resNorm = maxAbsVec(f);

    RealVector dx;
    try {
      DenseLU<Real> lu(g);
      for (Real& v : f) v = -v;
      dx = lu.solve(f);
    } catch (const NumericalError&) {
      return false;
    }

    // Clamp the Newton step to keep exponential devices in range.
    const Real stepNorm = maxAbsVec(dx);
    Real scale = 1.0;
    if (stepNorm > opt.maxStep) scale = opt.maxStep / stepNorm;
    for (size_t i = 0; i < n; ++i) x[i] += scale * dx[i];

    if (iterationsOut) *iterationsOut = iter + 1;
    if (resNorm < opt.residualTol && stepNorm * scale < opt.updateTol) {
      return true;
    }
  }
  return false;
}

DcResult solveDc(const MnaSystem& sys, const DcOptions& opt,
                 const RealVector* initialGuess) {
  DcResult result;
  result.x.assign(sys.size(), 0.0);
  if (initialGuess) {
    PSMN_CHECK(initialGuess->size() == sys.size(), "bad initial guess size");
    result.x = *initialGuess;
  }

  // Plain Newton first.
  if (newtonSolve(sys, result.x, opt, 1.0, opt.gshunt, &result.iterations)) {
    return result;
  }

  // Gmin stepping: solve with a strong shunt, then relax it decade by
  // decade, warm-starting each rung.
  if (opt.gminSteps > 0) {
    RealVector x(sys.size(), 0.0);
    bool ok = true;
    Real gshunt = 1e-2;
    for (int step = 0; step < opt.gminSteps && ok; ++step) {
      ok = newtonSolve(sys, x, opt, 1.0, gshunt, &result.iterations);
      gshunt *= 0.1;
    }
    // Final solve with the caller's shunt only.
    if (ok && newtonSolve(sys, x, opt, 1.0, opt.gshunt, &result.iterations)) {
      result.x = x;
      result.usedGminStepping = true;
      return result;
    }
  }

  // Source stepping: ramp all independent sources from zero.
  if (opt.sourceSteps > 0) {
    RealVector x(sys.size(), 0.0);
    bool ok = true;
    for (int step = 1; step <= opt.sourceSteps && ok; ++step) {
      const Real scale = static_cast<Real>(step) / opt.sourceSteps;
      ok = newtonSolve(sys, x, opt, scale, opt.gshunt, &result.iterations);
    }
    if (ok) {
      result.x = x;
      result.usedSourceStepping = true;
      return result;
    }
  }

  throw ConvergenceError("DC operating point failed to converge");
}

}  // namespace psmn
