#include "engine/transient_sensitivity.hpp"

#include <cmath>

#include "engine/dc.hpp"
#include "numeric/dense_lu.hpp"
#include "numeric/interp.hpp"

namespace psmn {

TransientSensitivityResult runTransientSensitivity(
    const MnaSystem& sys, Real t0, Real t1, Real dt,
    std::span<const InjectionSource> sources, const TranOptions& opt) {
  PSMN_CHECK(t1 > t0 && dt > 0.0, "bad transient window");
  const size_t n = sys.size();
  const size_t ns = sources.size();
  TransientSensitivityResult result;

  // Initial state: DC operating point (or caller-provided), with initial
  // sensitivities from the DC system: G s = -df/dp.
  RealVector x;
  if (opt.initialState) {
    x = *opt.initialState;
  } else {
    DcOptions dopt;
    dopt.time = t0;
    x = solveDc(sys, dopt).x;
  }
  RealVector f, q, bf, bq;
  RealMatrix g, c;
  sys.evalDense(x, t0, nullptr, &q, &g, nullptr, {});
  std::vector<RealVector> s(ns, RealVector(n, 0.0));
  std::vector<RealVector> qp(ns, RealVector(n, 0.0));  // dq/dp at t
  {
    DenseLU<Real> lu(g);
    ++result.luFactorizations;
    for (size_t i = 0; i < ns; ++i) {
      sys.evalInjection(sources[i], x, t0, &bf, &bq);
      for (Real& v : bf) v = -v;
      if (opt.initialState == nullptr) s[i] = lu.solve(bf);
      qp[i] = bq;
    }
  }

  result.times.push_back(t0);
  result.states.push_back(x);
  result.sens.assign(ns, {});
  for (size_t i = 0; i < ns; ++i) result.sens[i].push_back(s[i]);

  // Fixed-step backward Euler with breakpoint-aligned segments.
  // Merge near-coincident stops (see runTransient for the rationale).
  std::vector<Real> stops;
  for (Real bp : sys.collectBreakpoints(t0, t1)) {
    if (bp < t1 - 1e-3 * dt &&
        (stops.empty() || bp - stops.back() > 1e-3 * dt)) {
      stops.push_back(bp);
    }
  }
  stops.push_back(t1);

  TranOptions stepOpt = opt;
  stepOpt.method = IntegrationMethod::kBackwardEuler;
  Real t = t0;
  RealVector qd(n, 0.0);
  for (Real stop : stops) {
    if (stop <= t) continue;
    const auto count = static_cast<size_t>(
        std::max<Real>(1.0, std::ceil((stop - t) / dt - 1e-9)));
    const Real h = (stop - t) / static_cast<Real>(count);
    for (size_t k = 0; k < count; ++k) {
      const RealVector qOld = q;
      const RealVector xOld = x;
      if (!integrateStep(sys, IntegrationMethod::kBackwardEuler, true, t, h, x,
                         q, qd, nullptr, stepOpt, nullptr)) {
        throw ConvergenceError("transient-sensitivity Newton failed at t=" +
                               std::to_string(t + h));
      }
      t += h;
      // Sensitivity update at the accepted point:
      //   (G1 + C1/h) s1 = (C0/h) s0 - [bf1 + (bq1 - bq0)/h]
      // with C0 s0 approximated by C1-at-old-x; we store dq/dp (= bq) and
      // d q/dx * s as combined charge sensitivity to keep the recursion
      // exact:  d/dt [ C s + dq/dp ] -> ((C1 s1 + bq1) - (C0 s0 + bq0))/h.
      sys.evalDense(x, t, nullptr, nullptr, &g, &c, {});
      // J = G + C/h.
      RealMatrix j = g;
      for (size_t r = 0; r < n; ++r) {
        auto jr = j.row(r);
        const auto cr = c.row(r);
        for (size_t cc = 0; cc < n; ++cc) jr[cc] += cr[cc] / h;
      }
      DenseLU<Real> lu(j);
      ++result.luFactorizations;
      // C at the previous point (linearization around xOld).
      RealMatrix cOld;
      sys.evalDense(xOld, t - h, nullptr, nullptr, nullptr, &cOld, {});
      for (size_t i = 0; i < ns; ++i) {
        sys.evalInjection(sources[i], x, t, &bf, &bq);
        // rhs = C0/h * s0 - bf - (bq - bqOld)/h
        RealVector rhs = matvec(cOld, std::span<const Real>(s[i]));
        for (size_t r = 0; r < n; ++r) {
          rhs[r] = rhs[r] / h - bf[r] - (bq[r] - qp[i][r]) / h;
        }
        s[i] = lu.solve(rhs);
        qp[i] = bq;
      }
      result.times.push_back(t);
      result.states.push_back(x);
      for (size_t i = 0; i < ns; ++i) result.sens[i].push_back(s[i]);
    }
  }
  return result;
}

Real TransientSensitivityResult::crossingTimeSensitivity(size_t sourceIndex,
                                                         int outIndex,
                                                         Real level,
                                                         int direction) const {
  PSMN_CHECK(sourceIndex < sens.size(), "bad source index");
  PSMN_CHECK(outIndex >= 0, "bad output index");
  const auto& sv = sens[sourceIndex];
  for (size_t k = 1; k < times.size(); ++k) {
    const Real y0 = states[k - 1][outIndex];
    const Real y1 = states[k][outIndex];
    const bool crosses = direction >= 0 ? (y0 < level && y1 >= level)
                                        : (y0 > level && y1 <= level);
    if (!crosses) continue;
    const Real vdot = (y1 - y0) / (times[k] - times[k - 1]);
    PSMN_CHECK(vdot != 0.0, "flat crossing");
    // Interpolate the sensitivity at the crossing.
    const Real u = (level - y0) / (y1 - y0);
    const Real sAtCross =
        sv[k - 1][outIndex] + u * (sv[k][outIndex] - sv[k - 1][outIndex]);
    return -sAtCross / vdot;
  }
  throw Error("crossingTimeSensitivity: no crossing found");
}

}  // namespace psmn
