#include "engine/transient_sensitivity.hpp"

#include <cmath>

#include "engine/dc.hpp"
#include "runtime/thread_pool.hpp"

namespace psmn {
namespace {

/// Per-slot scratch for the parallel column update: at most one chunk of
/// source columns runs per slot at a time (ThreadPool contract), so no
/// locking is needed. Persists across time steps — the steady-state loop
/// stays allocation-free once every slot's buffers are warm.
struct SensSlotScratch {
  RealVector bf, bq;
  RealVector c0s;  // C0 * s_i
  LuSolveScratch<Real> lu;
};

}  // namespace

TransientSensitivityResult runTransientSensitivity(
    const MnaSystem& sys, Real t0, Real t1, Real dt,
    std::span<const InjectionSource> sources, const TranOptions& opt) {
  PSMN_CHECK(t1 > t0 && dt > 0.0, "bad transient window");
  TraceSpan span(Phase::kSensitivity, "transient_sensitivity");
  const size_t n = sys.size();
  const size_t ns = sources.size();
  TransientSensitivityResult result;

  TranOptions stepOpt = opt;
  stepOpt.method = IntegrationMethod::kBackwardEuler;

  // One workspace for the whole run: the Newton kernel factors the
  // accepted-step Jacobian J = G1 + C1/h exactly once per step (sparse:
  // mostly numeric refactorizations), and the sensitivity update below
  // reuses that factorization for all `ns` injection columns at once.
  TransientWorkspace ws;
  ws.chooseBackend(n, stepOpt);

  // Initial state: DC operating point (or caller-provided), with initial
  // sensitivities from the DC system: G s = -df/dp.
  RealVector x;
  if (opt.initialState) {
    x = *opt.initialState;
  } else {
    DcOptions dopt;
    dopt.time = t0;
    dopt.solver = opt.solver;
    dopt.sparseThreshold = opt.sparseThreshold;
    dopt.ordering = opt.ordering;
    x = solveDc(sys, dopt).x;
  }

  // Initial linearization: q, G (initial sensitivities), and C (the C0 of
  // the first step's charge-derivative term).
  RealVector q, bf, bq;
  if (ws.sparse) {
    sys.evalSparse(x, t0, nullptr, &q, &ws.gsp, &ws.csp, {});
  } else {
    sys.evalDense(x, t0, nullptr, &q, &ws.j, &ws.c, {});
  }

  std::vector<RealVector> s(ns, RealVector(n, 0.0));
  std::vector<RealVector> qp(ns, RealVector(n, 0.0));  // dq/dp at t
  RealVector rhsAll(n * ns, 0.0);  // column-major batch of all ns columns
  for (size_t i = 0; i < ns; ++i) {
    sys.evalInjection(sources[i], x, t0, &bf, &bq);
    for (size_t r = 0; r < n; ++r) rhsAll[i * n + r] = -bf[r];
    qp[i] = bq;
  }
  if (opt.initialState == nullptr && ns > 0) {
    if (ws.sparse) {
      SparseLU<Real> lu(ws.gsp, 0.1, opt.ordering);
      lu.solveManyInPlace(rhsAll, ns);
    } else {
      DenseLU<Real> lu(ws.j);
      lu.solveManyInPlace(rhsAll, ns);
    }
    ++result.stats.factorizations;
    result.stats.solves += ns;
    for (size_t i = 0; i < ns; ++i) {
      s[i].assign(rhsAll.begin() + i * n, rhsAll.begin() + (i + 1) * n);
    }
  }

  // C at the latest accepted point ("C0" in the recursion). A full-matrix
  // copy, refreshed each step from the workspace; the assignments reuse
  // capacity, so the steady-state loop stays heap-quiet.
  RealSparse cPrevSp;
  RealMatrix cPrevDn;
  if (ws.sparse) cPrevSp = ws.csp;
  else cPrevDn = ws.c;

  result.times.push_back(t0);
  result.states.push_back(x);
  result.sens.assign(ns, {});
  for (size_t i = 0; i < ns; ++i) result.sens[i].push_back(s[i]);

  // Fixed-step backward Euler with breakpoint-aligned segments.
  // Merge near-coincident stops (see runTransient for the rationale).
  std::vector<Real> stops;
  for (Real bp : sys.collectBreakpoints(t0, t1)) {
    if (bp < t1 - 1e-3 * dt &&
        (stops.empty() || bp - stops.back() > 1e-3 * dt)) {
      stops.push_back(bp);
    }
  }
  stops.push_back(t1);

  Real t = t0;
  Real hCur = dt;  // step size seen by the column update (set per segment)
  RealVector qd(n, 0.0);

  // Column partition across the execution runtime: the update below is
  // embarrassingly parallel over injection sources — the accepted-step
  // factorization is read-only after the Newton kernel built it, every
  // column's triangular solve touches only that column, and each slot
  // carries private stamp/solve scratch. Chunk boundaries depend only on
  // (ns, slots), and each column's arithmetic is identical however the
  // block is chunked, so results are bit-identical for every jobs count.
  const size_t slots = columnBlockSlots(opt.pool, ns);
  std::vector<SensSlotScratch> slotScratch(slots);
  for (auto& sl : slotScratch) sl.c0s.resize(n);
  const auto updateColumns = [&](size_t i0, size_t i1, size_t slot) {
    SensSlotScratch& sl = slotScratch[slot];
    for (size_t i = i0; i < i1; ++i) {
      sys.evalInjection(sources[i], x, t, &sl.bf, &sl.bq);
      if (ws.sparse) {
        cPrevSp.multiplyInto(s[i], sl.c0s);
      } else {
        for (size_t r = 0; r < n; ++r) {
          const auto row = cPrevDn.row(r);
          Real acc = 0.0;
          for (size_t cc = 0; cc < n; ++cc) acc += row[cc] * s[i][cc];
          sl.c0s[r] = acc;
        }
      }
      Real* col = rhsAll.data() + i * n;
      const Real h = hCur;  // the segment's accepted step size
      for (size_t r = 0; r < n; ++r) {
        col[r] = sl.c0s[r] / h - sl.bf[r] - (sl.bq[r] - qp[i][r]) / h;
      }
      qp[i] = sl.bq;
    }
    ws.solveAcceptedInPlace({rhsAll.data() + i0 * n, (i1 - i0) * n},
                            i1 - i0, sl.lu);
    for (size_t i = i0; i < i1; ++i) {
      s[i].assign(rhsAll.begin() + i * n, rhsAll.begin() + (i + 1) * n);
    }
  };

  for (Real stop : stops) {
    if (stop <= t) continue;
    const auto count = static_cast<size_t>(
        std::max<Real>(1.0, std::ceil((stop - t) / dt - 1e-9)));
    const Real h = (stop - t) / static_cast<Real>(count);
    for (size_t k = 0; k < count; ++k) {
      if (!integrateStep(sys, IntegrationMethod::kBackwardEuler, true, t, h, x,
                         q, qd, nullptr, stepOpt, ws)) {
        throw ConvergenceError("transient-sensitivity Newton failed at t=" +
                               std::to_string(t + h));
      }
      t += h;
      // Sensitivity update at the accepted point:
      //   (G1 + C1/h) s1 = (C0/h) s0 - [bf1 + (bq1 - bq0)/h]
      // with C0 s0 linearized around the previous accepted point; we store
      // dq/dp (= bq) and d q/dx * s as combined charge sensitivity to keep
      // the recursion exact:
      //   d/dt [ C s + dq/dp ] -> ((C1 s1 + bq1) - (C0 s0 + bq0))/h.
      // The Jacobian J = G1 + C1/h is exactly the matrix the Newton kernel
      // factored to accept this step, and C1 was evaluated there too: the
      // update costs no extra evaluation or factorization, just the
      // multi-RHS substitutions for all ns injection columns — fanned
      // across the pool's slots when the caller supplied one.
      hCur = h;
      forEachColumnBlock(opt.pool, ns, updateColumns);
      // Fan-out accounting on the dispatching side: the per-slot solves run
      // on worker threads, but their column total is deterministic.
      result.stats.solves += ns;
      ++result.stats.steps;
      telemetryCount(Counter::kStepsAccepted);
      if (ws.sparse) cPrevSp = ws.csp;
      else cPrevDn = ws.c;
      result.times.push_back(t);
      result.states.push_back(x);
      for (size_t i = 0; i < ns; ++i) result.sens[i].push_back(s[i]);
    }
  }
  result.stats.add(ws.stats);
  return result;
}

Real TransientSensitivityResult::crossingTimeSensitivity(size_t sourceIndex,
                                                         int outIndex,
                                                         Real level,
                                                         int direction) const {
  PSMN_CHECK(sourceIndex < sens.size(), "bad source index");
  PSMN_CHECK(outIndex >= 0, "bad output index");
  const auto& sv = sens[sourceIndex];
  for (size_t k = 1; k < times.size(); ++k) {
    const Real y0 = states[k - 1][outIndex];
    const Real y1 = states[k][outIndex];
    const bool crosses = direction >= 0 ? (y0 < level && y1 >= level)
                                        : (y0 > level && y1 <= level);
    if (!crosses) continue;
    const Real vdot = (y1 - y0) / (times[k] - times[k - 1]);
    PSMN_CHECK(vdot != 0.0, "flat crossing");
    // Interpolate the sensitivity at the crossing.
    const Real u = (level - y0) / (y1 - y0);
    const Real sAtCross =
        sv[k - 1][outIndex] + u * (sv[k][outIndex] - sv[k - 1][outIndex]);
    return -sAtCross / vdot;
  }
  throw Error("crossingTimeSensitivity: no crossing found");
}

}  // namespace psmn
