// DC operating-point solver: damped Newton with gmin-stepping and
// source-stepping homotopies as fallbacks, and — when both ladders stall —
// a pseudo-arclength continuation that walks the source-scale homotopy
// around turning points (folds) instead of trying to ramp through them.
#pragma once

#include "engine/mna.hpp"
#include "numeric/dense_lu.hpp"
#include "numeric/sparse_lu.hpp"
#include "util/telemetry.hpp"

namespace psmn {

struct DcOptions {
  int maxIterations = 150;
  Real residualTol = 1e-9;   // max |f| (A)
  Real updateTol = 1e-9;     // max |dx| (V / A)
  Real maxStep = 0.5;        // Newton step clamp (V per iteration)
  Real gshunt = 0.0;         // extra shunt held during the solve
  Real time = 0.0;           // sources evaluated at this time
  int gminSteps = 12;        // homotopy ladder length (0 disables)
  int sourceSteps = 10;      // source-stepping ladder (0 disables)
  bool quiet = true;
  /// Linear-solver backend; kAuto switches to sparse at sparseThreshold
  /// unknowns (the sparse path reuses one symbolic factorization across
  /// all Newton iterations).
  LinearSolverKind solver = LinearSolverKind::kAuto;
  size_t sparseThreshold = kSparseSolverThreshold;
  /// Fill-reducing column pre-ordering for the sparse backend.
  OrderingKind ordering = OrderingKind::kAmd;

  // Pseudo-arclength continuation (the escalation behind the ladders).
  // Traces the curve H(x, lambda) = f(x; lambda-scaled sources) = 0 from
  // (x(0), 0) by predictor-corrector steps of arclength ds, so a fold in
  // lambda — where the ramped ladders lose their branch and stall — is
  // walked around: lambda decreases through the turn and recovers.
  int arclengthSteps = 200;    // max predictor-corrector steps (0 disables)
  Real arclengthDs = 0.1;      // initial arc step (V-ish units)
  Real arclengthDsMin = 1e-6;  // give up when the step collapses below this
  Real arclengthDsMax = 0.5;   // growth cap after easy correctors
  int arclengthNewton = 20;    // corrector iterations per step
};

struct DcResult {
  RealVector x;
  /// Cumulative cost over every strategy attempted (plain Newton, every
  /// homotopy rung including retries, and the arclength trace). The old
  /// `iterations` field reported only the last newtonSolve's count;
  /// `stats.newtonIterations` is the true total.
  SolveStats stats;
  bool usedGminStepping = false;
  bool usedSourceStepping = false;
  bool usedArclength = false;
  int arclengthSteps = 0;  // accepted continuation steps when used
};

/// Reusable Newton scratch: cached sparsity pattern, symbolic
/// factorization, and solve buffers shared across homotopy rungs (gmin /
/// source stepping re-solve the same structure up to ~23 times).
struct DcWorkspace {
  RealVector f;
  RealMatrix g;
  DenseLU<Real> dlu;
  RealSparse gsp;
  SparseLU<Real> slu;
  bool sluSymbolic = false;
  size_t patternNnz = 0;
  /// Post-mortem of the most recent newtonSolve that returned false
  /// (iteration, residual, suspect unknowns). solveDc folds it into the
  /// ConvergenceError it throws; ladder rungs overwrite it freely.
  FailureDiagnostics lastFailure;
  bool haveFailure = false;
  /// Cumulative cost of every solve run through this workspace.
  SolveStats stats;
};

/// Solves f(x, t) = 0. Throws ConvergenceError (with FailureDiagnostics)
/// if every strategy — plain Newton, both homotopy ladders, and the
/// arclength continuation — fails.
DcResult solveDc(const MnaSystem& sys, const DcOptions& opt = {},
                 const RealVector* initialGuess = nullptr);

/// Raw damped-Newton kernel used by solveDc and the transient engine.
/// Returns false instead of throwing when Newton stalls (the failure
/// post-mortem lands in ws->lastFailure). `ws` carries the cached solver
/// state between calls; pass null for a one-off solve.
bool newtonSolve(const MnaSystem& sys, RealVector& x, const DcOptions& opt,
                 Real sourceScale, Real gshunt, int* iterationsOut = nullptr,
                 DcWorkspace* ws = nullptr);

/// Pseudo-arclength continuation over the source-scale homotopy, exposed
/// for tests and for callers that want continuation without the ladder
/// attempts first. Traces from (x(lambda=0), 0) until the curve crosses
/// lambda = 1 and a plain Newton polish lands there; `x` receives the
/// solution. Returns false when the trace runs out of steps, the step
/// collapses, or no crossing converges. `stepsOut` (optional) reports
/// accepted continuation steps.
bool solveDcArclength(const MnaSystem& sys, RealVector& x,
                      const DcOptions& opt, DcWorkspace& ws,
                      int* iterationsOut = nullptr, int* stepsOut = nullptr);

}  // namespace psmn
