// DC operating-point solver: damped Newton with gmin-stepping and
// source-stepping homotopies as fallbacks.
#pragma once

#include "engine/mna.hpp"
#include "numeric/dense_lu.hpp"
#include "numeric/sparse_lu.hpp"

namespace psmn {

struct DcOptions {
  int maxIterations = 150;
  Real residualTol = 1e-9;   // max |f| (A)
  Real updateTol = 1e-9;     // max |dx| (V / A)
  Real maxStep = 0.5;        // Newton step clamp (V per iteration)
  Real gshunt = 0.0;         // extra shunt held during the solve
  Real time = 0.0;           // sources evaluated at this time
  int gminSteps = 12;        // homotopy ladder length (0 disables)
  int sourceSteps = 10;      // source-stepping ladder (0 disables)
  bool quiet = true;
  /// Linear-solver backend; kAuto switches to sparse at sparseThreshold
  /// unknowns (the sparse path reuses one symbolic factorization across
  /// all Newton iterations).
  LinearSolverKind solver = LinearSolverKind::kAuto;
  size_t sparseThreshold = kSparseSolverThreshold;
  /// Fill-reducing column pre-ordering for the sparse backend.
  OrderingKind ordering = OrderingKind::kAmd;
};

struct DcResult {
  RealVector x;
  int iterations = 0;
  bool usedGminStepping = false;
  bool usedSourceStepping = false;
};

/// Reusable Newton scratch: cached sparsity pattern, symbolic
/// factorization, and solve buffers shared across homotopy rungs (gmin /
/// source stepping re-solve the same structure up to ~23 times).
struct DcWorkspace {
  RealVector f;
  RealMatrix g;
  DenseLU<Real> dlu;
  RealSparse gsp;
  SparseLU<Real> slu;
  bool sluSymbolic = false;
  size_t patternNnz = 0;
};

/// Solves f(x, t) = 0. Throws ConvergenceError if all strategies fail.
DcResult solveDc(const MnaSystem& sys, const DcOptions& opt = {},
                 const RealVector* initialGuess = nullptr);

/// Raw damped-Newton kernel used by solveDc and the transient engine.
/// Returns false instead of throwing when Newton stalls. `ws` carries the
/// cached solver state between calls; pass null for a one-off solve.
bool newtonSolve(const MnaSystem& sys, RealVector& x, const DcOptions& opt,
                 Real sourceScale, Real gshunt, int* iterationsOut = nullptr,
                 DcWorkspace* ws = nullptr);

}  // namespace psmn
