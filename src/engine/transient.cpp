#include "engine/transient.hpp"

#include <cmath>

#include "numeric/dense_lu.hpp"
#include "util/units.hpp"

namespace psmn {
namespace {

Real maxAbsVec(std::span<const Real> v) {
  Real m = 0.0;
  for (Real x : v) m = std::max(m, std::fabs(x));
  return m;
}

}  // namespace

RealVector TransientResult::waveform(int mnaIndex) const {
  PSMN_CHECK(mnaIndex >= 0, "waveform of ground requested");
  RealVector w(states.size());
  for (size_t i = 0; i < states.size(); ++i) {
    w[i] = states[i][static_cast<size_t>(mnaIndex)];
  }
  return w;
}

bool integrateStep(const MnaSystem& sys, IntegrationMethod method, bool beStep,
                   Real t, Real h, RealVector& x, RealVector& q,
                   RealVector& qd, const RealVector* qm1,
                   const TranOptions& opt, size_t* newtonCount) {
  const size_t n = sys.size();
  const Real t1 = t + h;
  IntegrationMethod m = beStep ? IntegrationMethod::kBackwardEuler : method;
  if (m == IntegrationMethod::kGear2 && qm1 == nullptr) {
    m = IntegrationMethod::kBackwardEuler;
  }

  // Integration coefficients: R = f1 + a*q1 + rhsQ, J = G1 + a*C1.
  Real a = 0.0;
  RealVector rhsQ(n, 0.0);
  switch (m) {
    case IntegrationMethod::kBackwardEuler:
      a = 1.0 / h;
      for (size_t i = 0; i < n; ++i) rhsQ[i] = -q[i] / h;
      break;
    case IntegrationMethod::kTrapezoidal:
      a = 2.0 / h;
      for (size_t i = 0; i < n; ++i) rhsQ[i] = -2.0 * q[i] / h - qd[i];
      break;
    case IntegrationMethod::kGear2:
      a = 1.5 / h;
      for (size_t i = 0; i < n; ++i) {
        rhsQ[i] = (-4.0 * q[i] + (*qm1)[i]) / (2.0 * h);
      }
      break;
  }

  RealVector x1 = x;  // predictor: previous point
  RealVector f, q1;
  RealMatrix g, c;
  MnaSystem::EvalOptions eopt;
  eopt.gshunt = opt.gshunt;

  bool converged = false;
  for (int iter = 0; iter < opt.maxNewton; ++iter) {
    sys.evalDense(x1, t1, &f, &q1, &g, &c, eopt);
    RealVector r(n);
    for (size_t i = 0; i < n; ++i) r[i] = f[i] + a * q1[i] + rhsQ[i];
    const Real resNorm = maxAbsVec(r);
    // J = G + a*C.
    for (size_t i = 0; i < n; ++i) {
      auto grow = g.row(i);
      const auto crow = c.row(i);
      for (size_t j = 0; j < n; ++j) grow[j] += a * crow[j];
    }
    RealVector dx;
    try {
      DenseLU<Real> lu(g);
      for (Real& v : r) v = -v;
      dx = lu.solve(r);
    } catch (const NumericalError&) {
      return false;
    }
    const Real stepNorm = maxAbsVec(dx);
    Real scale = 1.0;
    if (stepNorm > opt.maxStep) scale = opt.maxStep / stepNorm;
    for (size_t i = 0; i < n; ++i) x1[i] += scale * dx[i];
    if (newtonCount) ++*newtonCount;
    if (resNorm < opt.residualTol && stepNorm * scale < opt.updateTol) {
      converged = true;
      break;
    }
  }
  if (!converged) return false;

  // Accept: recompute q at the accepted point and update the charge state.
  sys.evalDense(x1, t1, nullptr, &q1, nullptr, nullptr, eopt);
  RealVector qd1(n);
  switch (m) {
    case IntegrationMethod::kBackwardEuler:
      for (size_t i = 0; i < n; ++i) qd1[i] = (q1[i] - q[i]) / h;
      break;
    case IntegrationMethod::kTrapezoidal:
      for (size_t i = 0; i < n; ++i) qd1[i] = 2.0 * (q1[i] - q[i]) / h - qd[i];
      break;
    case IntegrationMethod::kGear2:
      for (size_t i = 0; i < n; ++i) {
        qd1[i] = (3.0 * q1[i] - 4.0 * q[i] + (*qm1)[i]) / (2.0 * h);
      }
      break;
  }
  x = std::move(x1);
  q = std::move(q1);
  qd = std::move(qd1);
  return true;
}

TransientResult runTransient(const MnaSystem& sys, Real t0, Real t1, Real dt,
                             const TranOptions& opt) {
  PSMN_CHECK(t1 > t0 && dt > 0.0, "bad transient window");
  const size_t n = sys.size();
  TransientResult result;

  // Initial state: DC operating point unless an explicit state is given.
  RealVector x;
  if (opt.initialState) {
    PSMN_CHECK(opt.initialState->size() == n, "bad initial state size");
    x = *opt.initialState;
  } else {
    DcOptions dopt;
    dopt.time = t0;
    dopt.gshunt = opt.gshunt;
    x = solveDc(sys, dopt).x;
  }
  RealVector q;
  sys.evalDense(x, t0, nullptr, &q, nullptr, nullptr, {});
  RealVector qd(n, 0.0);
  RealVector qPrev;  // q at the pre-previous accepted point (Gear2)
  bool havePrev = false;

  if (opt.storeStates) {
    result.times.push_back(t0);
    result.states.push_back(x);
  }

  // Segment the window at breakpoints; merge stops closer than a fraction
  // of the nominal step (a breakpoint coinciding with t1 would otherwise
  // create a degenerate femtosecond segment).
  std::vector<Real> stops;
  if (opt.useBreakpoints) {
    for (Real bp : sys.collectBreakpoints(t0, t1)) {
      if (bp < t1 - 1e-3 * dt &&
          (stops.empty() || bp - stops.back() > 1e-3 * dt)) {
        stops.push_back(bp);
      }
    }
  }
  stops.push_back(t1);

  const Real dtMin = opt.dtMin > 0.0 ? opt.dtMin : dt * 1e-6;
  const Real dtMax = opt.dtMax > 0.0 ? opt.dtMax : dt * 4.0;

  Real t = t0;
  Real h = dt;
  bool forceBE = true;  // first step and first step after each breakpoint
  for (Real stop : stops) {
    if (stop <= t) continue;
    if (!opt.adaptive) {
      // Uniform grid within the segment.
      const auto count = static_cast<size_t>(
          std::max<Real>(1.0, std::ceil((stop - t) / dt - 1e-9)));
      const Real hseg = (stop - t) / static_cast<Real>(count);
      for (size_t k = 0; k < count; ++k) {
        RealVector qSave = q;
        if (!integrateStep(sys, opt.method, forceBE, t, hseg, x, q, qd,
                           havePrev ? &qPrev : nullptr, opt,
                           &result.newtonIterations)) {
          throw ConvergenceError("transient Newton failed at t=" +
                                 formatEng(t + hseg) + "s");
        }
        qPrev = std::move(qSave);
        havePrev = true;
        forceBE = false;
        t += hseg;
        ++result.steps;
        if (opt.storeStates) {
          result.times.push_back(t);
          result.states.push_back(x);
        }
      }
    } else {
      while (t < stop - 1e-15 * (t1 - t0)) {
        Real hTry = std::min({h, dtMax, stop - t});
        hTry = std::max(hTry, dtMin);
        RealVector xSave = x, qSave = q, qdSave = qd;
        bool ok = integrateStep(sys, opt.method, forceBE, t, hTry, x, q, qd,
                                havePrev ? &qPrev : nullptr, opt,
                                &result.newtonIterations);
        Real err = 0.0;
        if (ok) {
          // Step-size control from the local charge-derivative change; a
          // cheap curvature proxy that needs no extra evaluations.
          for (size_t i = 0; i < n; ++i) {
            const Real dqd = std::fabs(qd[i] - qdSave[i]) * hTry;
            const Real scale = opt.reltol * std::fabs(q[i]) + opt.abstol;
            err = std::max(err, dqd / scale);
          }
        }
        if (!ok || (err > 2.0 && hTry > dtMin * 1.01)) {
          // Reject and retry with half the step.
          x = std::move(xSave);
          q = std::move(qSave);
          qd = std::move(qdSave);
          h = std::max(hTry * 0.5, dtMin);
          if (!ok && hTry <= dtMin * 1.01) {
            throw ConvergenceError("transient Newton failed at minimum step");
          }
          continue;
        }
        qPrev = std::move(qSave);
        havePrev = true;
        forceBE = false;
        t += hTry;
        ++result.steps;
        if (opt.storeStates) {
          result.times.push_back(t);
          result.states.push_back(x);
        }
        if (err < 0.5) h = std::min(hTry * 1.5, dtMax);
        else h = hTry;
      }
    }
    forceBE = true;  // restart the integrator after each breakpoint
    havePrev = false;
  }

  result.finalState = std::move(x);
  return result;
}

}  // namespace psmn
