#include "engine/transient.hpp"

#include <cmath>
#include <limits>

#include "util/fault_injection.hpp"
#include "util/telemetry.hpp"
#include "util/units.hpp"

namespace psmn {
namespace {

// Max-norm that propagates non-finites: std::max drops NaN (the comparison
// is false), so a poisoned residual would otherwise read as norm 0 and be
// accepted as converged.
Real maxAbsVec(std::span<const Real> v) {
  Real m = 0.0;
  for (Real x : v) {
    if (!std::isfinite(x)) return std::numeric_limits<Real>::quiet_NaN();
    m = std::max(m, std::fabs(x));
  }
  return m;
}

/// Cold-path failure recorder for integrateStep.
void recordStepFailure(TransientWorkspace& ws, const MnaSystem& sys,
                       const char* stage, int iteration, Real residual,
                       Real t, bool nonFinite) {
  ws.lastFailure = {};
  ws.lastFailure.analysis = "transient";
  ws.lastFailure.stage = stage;
  ws.lastFailure.iteration = iteration;
  if (std::isfinite(residual)) ws.lastFailure.residual = residual;
  ws.lastFailure.time = t;
  ws.lastFailure.hasTime = true;
  ws.lastFailure.suspectNodes = sys.suspectUnknowns(ws.r);
  ws.lastFailure.injectedFault = lastFiredFaultSite();
  ws.haveFailure = true;
  ws.lastFailureNonFinite = nonFinite;
}

}  // namespace

RealVector TransientResult::waveform(int mnaIndex) const {
  PSMN_CHECK(mnaIndex >= 0, "waveform of ground requested");
  RealVector w(states.size());
  for (size_t i = 0; i < states.size(); ++i) {
    w[i] = states[i][static_cast<size_t>(mnaIndex)];
  }
  return w;
}

IntegrationMethod stepMethod(IntegrationMethod method, bool beStep,
                             bool haveQm1) {
  IntegrationMethod m = beStep ? IntegrationMethod::kBackwardEuler : method;
  if (m == IntegrationMethod::kGear2 && !haveQm1) {
    m = IntegrationMethod::kBackwardEuler;
  }
  return m;
}

Real stepCoefficients(IntegrationMethod m, Real h, const RealVector& q,
                      const RealVector& qd, const RealVector* qm1,
                      RealVector& rhsQ) {
  // Integration coefficients: R = f1 + a*q1 + rhsQ, J = G1 + a*C1.
  const size_t n = q.size();
  Real a = 0.0;
  rhsQ.resize(n);
  switch (m) {
    case IntegrationMethod::kBackwardEuler:
      a = 1.0 / h;
      for (size_t i = 0; i < n; ++i) rhsQ[i] = -q[i] / h;
      break;
    case IntegrationMethod::kTrapezoidal:
      a = 2.0 / h;
      for (size_t i = 0; i < n; ++i) rhsQ[i] = -2.0 * q[i] / h - qd[i];
      break;
    case IntegrationMethod::kGear2:
      a = 1.5 / h;
      for (size_t i = 0; i < n; ++i) {
        rhsQ[i] = (-4.0 * q[i] + (*qm1)[i]) / (2.0 * h);
      }
      break;
  }
  return a;
}

NewtonTailOutcome newtonIterationTail(const MnaSystem& sys,
                                      const TranOptions& opt,
                                      TransientWorkspace& ws, Real a, Real t1,
                                      int iter) {
  const size_t n = sys.size();
  // Assemble J = G + a*C from the evaluation the caller just wrote into ws.
  if (ws.sparse) {
    if (ws.jac.assemble(ws.gsp, ws.csp, a)) {
      ws.sluSymbolic = false;  // pattern changed: next factor is symbolic
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      auto jrow = ws.j.row(i);
      const auto crow = ws.c.row(i);
      for (size_t col = 0; col < n; ++col) jrow[col] += a * crow[col];
    }
  }
  ++ws.stats.evals;
  ws.r.resize(n);
  for (size_t i = 0; i < n; ++i) ws.r[i] = ws.f[i] + a * ws.q1[i] + ws.rhsQ[i];
  const Real resNorm = maxAbsVec(ws.r);
  // Non-finite residual early-out (matching newtonSolve): the iterate
  // escaped the devices' range; further iteration cannot recover and a
  // NaN would poison the factorization, so fail the step now and let the
  // caller cut the timestep.
  if (!std::isfinite(resNorm)) {
    recordStepFailure(ws, sys, "tran-newton/non-finite-residual", iter,
                      -1.0, t1, /*nonFinite=*/true);
    return NewtonTailOutcome::kFailed;
  }

  // Factor (sparse: numeric refactorization on the kept pivot sequence,
  // full factor only on the first step or after a pivot breakdown).
  try {
    if (ws.sparse) {
      if (ws.sluSymbolic && ws.slu.refactor(ws.jac.matrix)) {
        ++ws.stats.refactorizations;
      } else {
        ws.slu.factor(ws.jac.matrix, 0.1, ws.ordering);
        ws.sluSymbolic = true;
        ++ws.stats.factorizations;
      }
      ws.stats.factorNnz = ws.slu.factorNonZeros();
    } else {
      ws.dlu.factor(ws.j);
      ++ws.stats.factorizations;
    }
  } catch (const NumericalError&) {
    recordStepFailure(ws, sys, "tran-newton/factorization", iter, resNorm,
                      t1, /*nonFinite=*/false);
    return NewtonTailOutcome::kFailed;
  }

  // Newton direction, solved in place on the negated residual.
  for (Real& v : ws.r) v = -v;
  if (ws.sparse) ws.slu.solveInPlace(ws.r);
  else ws.dlu.solveInPlace(ws.r);
  ++ws.stats.solves;

  const Real stepNorm = maxAbsVec(ws.r);
  if (!std::isfinite(stepNorm)) {  // don't poison the iterate
    recordStepFailure(ws, sys, "tran-newton/non-finite-step", iter, resNorm,
                      t1, /*nonFinite=*/true);
    return NewtonTailOutcome::kFailed;
  }
  Real scale = 1.0;
  if (stepNorm > opt.maxStep) scale = opt.maxStep / stepNorm;
  for (size_t i = 0; i < n; ++i) ws.x1[i] += scale * ws.r[i];
  ++ws.stats.newtonIterations;
  telemetryCount(Counter::kNewtonIterations);
  if (resNorm < opt.residualTol && stepNorm * scale < opt.updateTol) {
    // Injected stagnation: refuse the acceptance and keep iterating (see
    // the matching probe in newtonSolve).
    if (faultShouldFire("tran.newton.converge")) {
      return NewtonTailOutcome::kContinue;
    }
    // Accept x1 after this sub-updateTol correction, but keep the final
    // iteration's q1/C/factored-J: they were evaluated a distance
    // < updateTol from the accepted point, an O(dx) error the tolerances
    // already admit, and skipping the re-evaluation removes one full
    // system eval per step. The sensitivity engine reuses the same
    // factorization, so each step factors the Jacobian exactly once.
    return NewtonTailOutcome::kConverged;
  }
  return NewtonTailOutcome::kContinue;
}

void recordNewtonStagnation(const MnaSystem& sys, const TranOptions& opt,
                            TransientWorkspace& ws, Real t1) {
  recordStepFailure(ws, sys, "tran-newton/stagnation", opt.maxNewton, -1.0,
                    t1, /*nonFinite=*/false);
}

void acceptIntegrationStep(IntegrationMethod m, Real h, RealVector& x,
                           RealVector& q, RealVector& qd,
                           const RealVector* qm1, TransientWorkspace& ws) {
  // Update the charge state from the accepted-point q1 (already evaluated).
  const size_t n = q.size();
  ws.qd1.resize(n);
  switch (m) {
    case IntegrationMethod::kBackwardEuler:
      for (size_t i = 0; i < n; ++i) ws.qd1[i] = (ws.q1[i] - q[i]) / h;
      break;
    case IntegrationMethod::kTrapezoidal:
      for (size_t i = 0; i < n; ++i) {
        ws.qd1[i] = 2.0 * (ws.q1[i] - q[i]) / h - qd[i];
      }
      break;
    case IntegrationMethod::kGear2:
      for (size_t i = 0; i < n; ++i) {
        ws.qd1[i] = (3.0 * ws.q1[i] - 4.0 * q[i] + (*qm1)[i]) / (2.0 * h);
      }
      break;
  }
  // Swap (not move) so the workspace keeps the old buffers' capacity and
  // the next step's copies stay allocation-free.
  std::swap(x, ws.x1);
  std::swap(q, ws.q1);
  std::swap(qd, ws.qd1);
}

bool integrateStep(const MnaSystem& sys, IntegrationMethod method, bool beStep,
                   Real t, Real h, RealVector& x, RealVector& q,
                   RealVector& qd, const RealVector* qm1,
                   const TranOptions& opt, TransientWorkspace& ws) {
  TraceSpan stepSpan(Phase::kStep, "tran_step", TraceDetail::kStep);
  ws.chooseBackend(sys.size(), opt);
  const Real t1 = t + h;
  const IntegrationMethod m = stepMethod(method, beStep, qm1 != nullptr);
  const Real a = stepCoefficients(m, h, q, qd, qm1, ws.rhsQ);

  ws.acceptedA = a;
  ws.x1.assign(x.begin(), x.end());  // predictor: previous point
  MnaSystem::EvalOptions eopt;
  eopt.gshunt = opt.gshunt;

  bool converged = false;
  for (int iter = 0; iter < opt.maxNewton; ++iter) {
    TraceSpan iterSpan(Phase::kNewton, "newton_iter", TraceDetail::kKernel);
    if (ws.sparse) {
      sys.evalSparse(ws.x1, t1, &ws.f, &ws.q1, &ws.gsp, &ws.csp, eopt);
    } else {
      sys.evalDense(ws.x1, t1, &ws.f, &ws.q1, &ws.j, &ws.c, eopt);
    }
    const NewtonTailOutcome outcome =
        newtonIterationTail(sys, opt, ws, a, t1, iter);
    if (outcome == NewtonTailOutcome::kFailed) return false;
    if (outcome == NewtonTailOutcome::kConverged) {
      converged = true;
      break;
    }
  }
  if (!converged) {
    recordNewtonStagnation(sys, opt, ws, t1);
    return false;
  }

  acceptIntegrationStep(m, h, x, q, qd, qm1, ws);
  return true;
}

bool integrateStep(const MnaSystem& sys, IntegrationMethod method, bool beStep,
                   Real t, Real h, RealVector& x, RealVector& q,
                   RealVector& qd, const RealVector* qm1,
                   const TranOptions& opt) {
  TransientWorkspace ws;
  return integrateStep(sys, method, beStep, t, h, x, q, qd, qm1, opt, ws);
}

FailureDiagnostics stepFailureDiagnostics(const TransientWorkspace& ws,
                                          Real t) {
  FailureDiagnostics diag;
  if (ws.haveFailure) diag = ws.lastFailure;
  diag.analysis = "transient";
  if (!diag.hasTime) {
    diag.time = t;
    diag.hasTime = true;
  }
  return diag;
}

std::vector<Real> transientStops(const MnaSystem& sys, Real t0, Real t1,
                                 Real dt, bool useBreakpoints) {
  // Segment the window at breakpoints; merge stops closer than a fraction
  // of the nominal step (a breakpoint coinciding with t1 would otherwise
  // create a degenerate femtosecond segment).
  std::vector<Real> stops;
  if (useBreakpoints) {
    for (Real bp : sys.collectBreakpoints(t0, t1)) {
      if (bp < t1 - 1e-3 * dt &&
          (stops.empty() || bp - stops.back() > 1e-3 * dt)) {
        stops.push_back(bp);
      }
    }
  }
  stops.push_back(t1);
  return stops;
}

namespace {

/// Builds and throws the run-level error from the workspace post-mortem: a
/// NaN/Inf escape surfaces as NumericalError, a stalled Newton as
/// ConvergenceError.
[[noreturn]] void throwStepFailure(const TransientWorkspace& ws, Real t,
                                   const std::string& what) {
  FailureDiagnostics diag = stepFailureDiagnostics(ws, t);
  const std::string msg = what + ": " + diag.describe();
  if (ws.haveFailure && ws.lastFailureNonFinite) {
    throw NumericalError(msg, std::move(diag));
  }
  throw ConvergenceError(msg, std::move(diag));
}

}  // namespace

TransientResult runTransient(const MnaSystem& sys, Real t0, Real t1, Real dt,
                             const TranOptions& opt) {
  TransientWorkspace ws;
  return runTransient(sys, t0, t1, dt, opt, ws);
}

TransientResult runTransient(const MnaSystem& sys, Real t0, Real t1, Real dt,
                             const TranOptions& opt, TransientWorkspace& ws) {
  PSMN_CHECK(t1 > t0 && dt > 0.0, "bad transient window");
  TraceSpan span(Phase::kTransient, "transient");
  const size_t n = sys.size();
  const SolveStats statsBefore = ws.stats;
  TransientResult result;

  // Initial state: DC operating point unless an explicit state is given.
  RealVector x;
  if (opt.initialState) {
    PSMN_CHECK(opt.initialState->size() == n, "bad initial state size");
    x = *opt.initialState;
  } else {
    DcOptions dopt;
    dopt.time = t0;
    dopt.gshunt = opt.gshunt;
    dopt.solver = opt.solver;
    dopt.sparseThreshold = opt.sparseThreshold;
    dopt.ordering = opt.ordering;
    x = solveDc(sys, dopt).x;
  }
  RealVector q;
  sys.evalDense(x, t0, nullptr, &q, nullptr, nullptr, {});
  RealVector qd(n, 0.0);
  RealVector qPrev;  // q at the pre-previous accepted point (Gear2)
  bool havePrev = false;

  if (opt.storeStates) {
    result.times.push_back(t0);
    result.states.push_back(x);
  }

  const std::vector<Real> stops =
      transientStops(sys, t0, t1, dt, opt.useBreakpoints);

  const Real dtMin = opt.dtMin > 0.0 ? opt.dtMin : dt * 1e-6;
  const Real dtMax = opt.dtMax > 0.0 ? opt.dtMax : dt * 4.0;

  // The workspace (caller-owned or the wrapper's throwaway) carries the
  // sparsity pattern, symbolic factorization, and step scratch across
  // every step below. The save buffers are swapped (never moved-from) so
  // the steady-state loop does not allocate.
  RealVector qSave, xSave, qdSave;

  Real t = t0;
  Real h = dt;
  bool forceBE = true;  // first step and first step after each breakpoint
  for (Real stop : stops) {
    if (stop <= t) continue;
    if (!opt.adaptive) {
      // Uniform grid within the segment.
      const auto count = static_cast<size_t>(
          std::max<Real>(1.0, std::ceil((stop - t) / dt - 1e-9)));
      const Real hseg = (stop - t) / static_cast<Real>(count);
      for (size_t k = 0; k < count; ++k) {
        qSave.assign(q.begin(), q.end());
        if (!integrateStep(sys, opt.method, forceBE, t, hseg, x, q, qd,
                           havePrev ? &qPrev : nullptr, opt, ws)) {
          throwStepFailure(ws, t + hseg, "transient Newton failed at t=" +
                                             formatEng(t + hseg) + "s");
        }
        std::swap(qPrev, qSave);
        havePrev = true;
        forceBE = false;
        t += hseg;
        ++ws.stats.steps;
        telemetryCount(Counter::kStepsAccepted);
        if (opt.storeStates) {
          result.times.push_back(t);
          result.states.push_back(x);
        }
      }
    } else {
      while (t < stop - 1e-15 * (t1 - t0)) {
        Real hTry = std::min({h, dtMax, stop - t});
        hTry = std::max(hTry, dtMin);
        xSave.assign(x.begin(), x.end());
        qSave.assign(q.begin(), q.end());
        qdSave.assign(qd.begin(), qd.end());
        bool ok = integrateStep(sys, opt.method, forceBE, t, hTry, x, q, qd,
                                havePrev ? &qPrev : nullptr, opt, ws);
        Real err = 0.0;
        if (ok) {
          // Step-size control from the local charge-derivative change; a
          // cheap curvature proxy that needs no extra evaluations.
          for (size_t i = 0; i < n; ++i) {
            const Real dqd = std::fabs(qd[i] - qdSave[i]) * hTry;
            const Real scale = opt.reltol * std::fabs(q[i]) + opt.abstol;
            err = std::max(err, dqd / scale);
          }
        }
        if (!ok || (err > 2.0 && hTry > dtMin * 1.01)) {
          // Reject and retry with half the step.
          std::swap(x, xSave);
          std::swap(q, qSave);
          std::swap(qd, qdSave);
          h = std::max(hTry * 0.5, dtMin);
          if (!ok && hTry <= dtMin * 1.01) {
            throwStepFailure(ws, t + hTry,
                             "transient Newton failed at minimum step");
          }
          continue;
        }
        std::swap(qPrev, qSave);
        havePrev = true;
        forceBE = false;
        t += hTry;
        ++ws.stats.steps;
        telemetryCount(Counter::kStepsAccepted);
        if (opt.storeStates) {
          result.times.push_back(t);
          result.states.push_back(x);
        }
        if (err < 0.5) h = std::min(hTry * 1.5, dtMax);
        else h = hTry;
      }
    }
    forceBE = true;  // restart the integrator after each breakpoint
    havePrev = false;
  }

  result.stats = SolveStats::since(statsBefore, ws.stats);
  result.finalState = std::move(x);
  return result;
}

}  // namespace psmn
