// Direct transient sensitivity analysis (Hocevar et al. [23] in the paper):
// propagates s_i(t) = dx(t)/dp_i for every mismatch parameter alongside a
// fixed-step backward-Euler transient.
//
// This is the method the paper argues *against* for mismatch analysis of
// periodic measurements (SS IV): its cost grows with simulation length and
// it wastes effort on the settling transient. It is implemented here as the
// ablation baseline (bench_ablation_sens_methods) and as an independent
// cross-check of the LPTV results.
#pragma once

#include "engine/mna.hpp"
#include "engine/transient.hpp"

namespace psmn {

struct TransientSensitivityResult {
  std::vector<Real> times;
  std::vector<RealVector> states;             // x at each time point
  /// sens[i] is the sensitivity waveform matrix for source i: one vector
  /// dx/dp_i per time point.
  std::vector<std::vector<RealVector>> sens;
  /// Run cost. stats.totalFactorizations() counts every factorization of
  /// the linearized system (Newton full factorizations + sparse numeric
  /// refactorizations + the initial DC-sensitivity factor) — the old
  /// `luFactorizations` field. The sensitivity recursion itself adds no
  /// factorizations (it reuses the accepted-step Newton factorization for
  /// all sources); its per-step multi-RHS substitutions land in
  /// stats.solves (ns columns per accepted step).
  SolveStats stats;

  /// Sensitivity of the crossing time of unknown `outIndex` through `level`
  /// (direction +1 rising / -1 falling) w.r.t. parameter i:
  ///   dtc/dp = -s_out(tc) / vdot(tc).
  Real crossingTimeSensitivity(size_t sourceIndex, int outIndex, Real level,
                               int direction) const;
};

TransientSensitivityResult runTransientSensitivity(
    const MnaSystem& sys, Real t0, Real t1, Real dt,
    std::span<const InjectionSource> sources, const TranOptions& opt = {});

}  // namespace psmn
