// MNA system assembly: evaluates the netlist's residual
//     F(x,t) = f(x,t) + d/dt q(x)
// pieces (f, q) and Jacobians (G = df/dx, C = dq/dx) into dense or sparse
// storage, and provides the mismatch/noise injection vectors used by the
// sensitivity, noise, and LPTV analyses.
#pragma once

#include <algorithm>
#include <cmath>

#include "circuit/netlist.hpp"
#include "numeric/dense_matrix.hpp"

namespace psmn {

/// One mismatch or physical-noise injection source, flattened out of the
/// netlist. `sigma` is meaningful for mismatch sources (pseudo-noise PSD at
/// 1 Hz is sigma^2); physical sources carry their magnitude inside the
/// stamp and have sigma == 1.
///
/// A source normally wraps a single device parameter (one component of
/// weight 1). Correlated mismatch (paper SS III-C) is modeled by *composite*
/// sources: each underlying unit-variance independent variable xi_j becomes
/// one InjectionSource whose components carry the column weights a_ij of
/// the factor A with covariance = A A^T (paper eq. 6).
struct InjectionSource {
  enum class Kind { kMismatch, kPhysicalWhite, kPhysicalFlicker };

  struct Component {
    Device* device = nullptr;
    size_t index = 0;   // device-local mismatch/noise index
    Real weight = 1.0;  // parameter units per unit of this source
  };

  Kind kind = Kind::kMismatch;
  std::string name;
  std::vector<Component> components;
  Real sigma = 1.0;     // source std-dev (1 for composite & physical)
  MismatchKind mkind = MismatchKind::kGeneric;

  /// Convenience accessors for the common single-component case.
  Device* device() const {
    return components.size() == 1 ? components[0].device : nullptr;
  }
  size_t index() const {
    return components.size() == 1 ? components[0].index : 0;
  }

  /// Stationary PSD factor at frequency f: pseudo-noise is flicker-shaped
  /// with PSD sigma^2 at 1 Hz (paper SS III); physical white is flat.
  Real psd(Real f) const {
    switch (kind) {
      case Kind::kMismatch:
      case Kind::kPhysicalFlicker:
        return sigma * sigma / std::max(f, 1e-30);
      case Kind::kPhysicalWhite:
        return sigma * sigma;
    }
    return 0.0;
  }
};

/// Linear-solver backend selection shared by the DC and transient engines.
/// kAuto picks sparse once the system is large enough that the O(n^3)
/// dense factorization loses to the pattern-reusing sparse LU.
enum class LinearSolverKind { kAuto, kDense, kSparse };

/// Default kAuto crossover (MNA unknowns). Below this the dense path's
/// cache friendliness wins; above it the sparse path's O(nnz) assembly and
/// near-linear refactorization take over (see bench_kernels).
inline constexpr size_t kSparseSolverThreshold = 40;

inline bool useSparseSolver(LinearSolverKind kind, size_t n,
                            size_t threshold = kSparseSolverThreshold) {
  switch (kind) {
    case LinearSolverKind::kDense: return false;
    case LinearSolverKind::kSparse: return true;
    case LinearSolverKind::kAuto: return n >= threshold;
  }
  return false;
}

/// Options for one MNA evaluation pass.
struct MnaEvalOptions {
  Real sourceScale = 1.0;
  /// Shunt conductance from every node (not branch) unknown to ground;
  /// used by gmin-stepping homotopy and as a convergence aid.
  Real gshunt = 0.0;
  /// Junction gmin handed to devices.
  Real gmin = 1e-12;
};

class MnaSystem {
 public:
  explicit MnaSystem(Netlist& netlist);

  Netlist& netlist() { return *netlist_; }
  const Netlist& netlist() const { return *netlist_; }
  size_t size() const { return n_; }

  using EvalOptions = MnaEvalOptions;

  /// Dense evaluation. Any output pointer may be null. Matrices/vectors are
  /// resized and zeroed here.
  void evalDense(std::span<const Real> x, Real t, RealVector* f, RealVector* q,
                 RealMatrix* g, RealMatrix* c,
                 const EvalOptions& opt = {}) const;

  /// Sparse evaluation into caller-owned pattern matrices. On the first
  /// call (`g`/`c` empty) a symbolic pass runs the devices in triplet mode
  /// and freezes the union sparsity pattern — including every node-diagonal
  /// slot, so gshunt homotopy stamps in place. Subsequent calls zero the
  /// stored values and stamp straight into the CSC slots: no heap
  /// allocation. A stamp landing outside the cached pattern (e.g. a MOSFET
  /// drain/source swap reaching a new position) triggers an automatic
  /// pattern extension and re-stamp, so results are always exact; callers
  /// caching factorizations should watch nonZeros() for pattern growth.
  void evalSparse(std::span<const Real> x, Real t, RealVector* f,
                  RealVector* q, RealSparse* g, RealSparse* c,
                  const EvalOptions& opt = {}) const;

  /// dF/dp injection vectors for source `src` at iterate x: the static part
  /// into `bf` and the charge part into `bq` (either may be null).
  void evalInjection(const InjectionSource& src, std::span<const Real> x,
                     Real t, RealVector* bf, RealVector* bq) const;

  /// All mismatch pseudo-noise sources (paper's DC-mismatch -> AC noise
  /// mapping), optionally plus physical device noise.
  std::vector<InjectionSource> collectSources(bool includeMismatch = true,
                                              bool includePhysical = false) const;

  /// Breakpoints from all devices in (t0, t1], sorted and deduplicated.
  std::vector<Real> collectBreakpoints(Real t0, Real t1) const;

  /// Number of node-voltage unknowns (gshunt applies to these only).
  size_t nodeUnknowns() const { return nodeUnknowns_; }

  /// Names of the `count` unknowns with the worst residual entries of `f`
  /// (non-finite entries first, then by magnitude) — the suspect list the
  /// solvers attach to FailureDiagnostics when Newton dies.
  std::vector<std::string> suspectUnknowns(std::span<const Real> f,
                                           size_t count = 3) const;

 private:
  Netlist* netlist_;
  size_t n_ = 0;
  size_t nodeUnknowns_ = 0;
};

/// Rebuilds `m` as a pattern matrix: union of its existing pattern, the
/// accumulated triplets, and `diagonals` leading diagonal slots (G gets the
/// node diagonals so gshunt homotopy stamps in place). Values are zeroed;
/// the caller re-stamps through the slots. Shared by MnaSystem::evalSparse
/// and the batched evaluator (engine/batch_eval.cpp).
void mnaRebuildPattern(RealSparse* m, size_t n,
                       std::vector<Triplet<Real>>& trips, size_t diagonals);

}  // namespace psmn
