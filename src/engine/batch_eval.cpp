#include "engine/batch_eval.hpp"

#include <cmath>
#include <limits>

#include "util/fault_injection.hpp"
#include "util/telemetry.hpp"
#include "util/units.hpp"

namespace psmn {

namespace {

/// One lane's private integrator state. The workspace is the same
/// TransientWorkspace the scalar path uses, so each lane owns its pattern
/// caches, merged-Jacobian scatter maps, and SparseLU pivot sequence —
/// sharing any of those across lanes would round differently than a
/// scalar run of that scenario.
struct LaneState {
  TransientWorkspace ws;
  RealVector x, q, qd, qPrev, qSave;
  bool running = false;  // DC init succeeded and no step has failed yet
  bool stepConverged = false;
  bool stepFailed = false;
  Real a = 0.0;
  BatchLaneOutcome out;
};

Stamper makeLaneStamper(LaneState& ln, Real t1, size_t n,
                        const MnaSystem::EvalOptions& eopt, bool sparse) {
  Stamper s(ln.ws.x1, t1, n);
  s.attachVectors(&ln.ws.f, &ln.ws.q1);
  if (sparse) {
    s.attachSparse(&ln.ws.gsp, &ln.ws.csp);
  } else {
    s.attachDense(&ln.ws.j, &ln.ws.c);
  }
  s.setSourceScale(eopt.sourceScale);
  s.setGmin(eopt.gmin);
  return s;
}

/// Symbolic discovery for one lane: a triplet-mode walk of that lane alone
/// at its current iterate, frozen into the lane's pattern matrices exactly
/// as MnaSystem::evalSparse does for a scalar scenario.
void buildLanePattern(const MnaSystem& sys, const DeviceBatch& batch,
                      std::vector<LaneState>& lanes, size_t l, Real t1,
                      const MnaSystem::EvalOptions& eopt,
                      std::vector<Stamper>& scratch,
                      std::vector<unsigned char>& solo) {
  const size_t n = sys.size();
  std::vector<Triplet<Real>> gTrips, cTrips;
  scratch.clear();
  for (size_t j = 0; j < lanes.size(); ++j) {
    scratch.emplace_back(lanes[j].ws.x1, t1, n);
  }
  scratch[l].attachTriplets(&gTrips, &cTrips);
  scratch[l].setSourceScale(eopt.sourceScale);
  scratch[l].setGmin(eopt.gmin);
  solo.assign(lanes.size(), 0);
  solo[l] = 1;
  batch.evalLanes(scratch, solo);
  mnaRebuildPattern(&lanes[l].ws.gsp, n, gTrips, sys.nodeUnknowns());
  mnaRebuildPattern(&lanes[l].ws.csp, n, cTrips, 0);
}

/// One Newton iteration's system evaluation for every active lane:
/// replicates MnaSystem::evalSparse / evalDense per lane but performs a
/// single structural device walk that stamps all of them (the batched
/// inner loops in Device::evalBatch).
void batchEvalIteration(const MnaSystem& sys, const DeviceBatch& batch,
                        std::vector<LaneState>& lanes,
                        const std::vector<unsigned char>& active, Real t1,
                        const MnaSystem::EvalOptions& eopt, bool sparse,
                        std::vector<Stamper>& stampers,
                        std::vector<Stamper>& scratch,
                        std::vector<unsigned char>& solo) {
  const size_t n = sys.size();
  const size_t L = lanes.size();

  // Counter parity with the scalar eval entry points: one kMnaEvals per
  // lane evaluated, regardless of how many walks deliver them.
  for (size_t l = 0; l < L; ++l) {
    if (active[l]) telemetryCount(Counter::kMnaEvals);
  }

  if (sparse) {
    // Amortized symbolic construction: the first lane needing a pattern
    // runs the triplet discovery pass; the rest copy its CSC skeleton.
    // Sound because stamp POSITIONS are value-independent (a MOSFET's
    // operating-region frame swap permutes the same 8-slot multiset, and
    // fromTriplets sorts/dedups), so discovery in any lane yields the
    // same pattern — hence the same AMD ordering and the same rounding —
    // that a scalar run of each scenario would have built for itself.
    int src = -1;
    for (size_t l = 0; l < L; ++l) {
      if (active[l] && lanes[l].ws.gsp.rows() == n) {
        src = static_cast<int>(l);
        break;
      }
    }
    for (size_t l = 0; l < L; ++l) {
      if (!active[l] || lanes[l].ws.gsp.rows() == n) continue;
      if (src >= 0) {
        lanes[l].ws.gsp = lanes[static_cast<size_t>(src)].ws.gsp;
        lanes[l].ws.csp = lanes[static_cast<size_t>(src)].ws.csp;
        telemetryCount(Counter::kBatchSymbolicReuse);
      } else {
        buildLanePattern(sys, batch, lanes, l, t1, eopt, scratch, solo);
        src = static_cast<int>(l);
      }
    }
  }

  stampers.clear();
  for (size_t l = 0; l < L; ++l) {
    LaneState& ln = lanes[l];
    if (active[l]) {
      ln.ws.f.assign(n, 0.0);
      ln.ws.q1.assign(n, 0.0);
      if (sparse) {
        ln.ws.gsp.zeroValues();
        ln.ws.csp.zeroValues();
      } else {
        ln.ws.j.resize(n, n);
        ln.ws.c.resize(n, n);
      }
    }
    stampers.push_back(makeLaneStamper(ln, t1, n, eopt, sparse));
  }
  batch.evalLanes(stampers, active);

  // Pattern-miss fixups stay lane-local, mirroring evalSparse's
  // two-attempt loop: rebuild that lane's pattern, re-stamp only it.
  if (sparse) {
    for (size_t l = 0; l < L; ++l) {
      if (!active[l] || !stampers[l].sparseMiss()) continue;
      buildLanePattern(sys, batch, lanes, l, t1, eopt, scratch, solo);
      LaneState& ln = lanes[l];
      ln.ws.f.assign(n, 0.0);
      ln.ws.q1.assign(n, 0.0);
      ln.ws.gsp.zeroValues();
      ln.ws.csp.zeroValues();
      stampers[l] = makeLaneStamper(ln, t1, n, eopt, sparse);
      solo.assign(L, 0);
      solo[l] = 1;
      batch.evalLanes(stampers, solo);
      PSMN_CHECK(!stampers[l].sparseMiss(),
                 "batched eval: pattern miss after rebuild");
    }
  }

  // gshunt homotopy shunt and fault poisoning, per lane, exactly as the
  // scalar eval tail applies them.
  for (size_t l = 0; l < L; ++l) {
    if (!active[l]) continue;
    LaneState& ln = lanes[l];
    if (eopt.gshunt > 0.0) {
      for (size_t i = 0; i < sys.nodeUnknowns(); ++i) {
        ln.ws.f[i] += eopt.gshunt * ln.ws.x1[i];
        if (sparse) {
          *ln.ws.gsp.find(static_cast<int>(i), static_cast<int>(i)) +=
              eopt.gshunt;
        } else {
          ln.ws.j(i, i) += eopt.gshunt;
        }
      }
    }
    if (faultShouldFire("mna.eval")) {
      ln.ws.f[0] = std::numeric_limits<Real>::quiet_NaN();
    }
  }
}

}  // namespace

std::vector<BatchLaneOutcome> runTransientBatch(const MnaSystem& sys,
                                                DeviceBatch& batch, Real t0,
                                                Real t1, Real dt,
                                                const TranOptions& opt) {
  PSMN_CHECK(t1 > t0 && dt > 0.0, "bad transient window");
  PSMN_CHECK(!opt.adaptive, "runTransientBatch: fixed grid only");
  PSMN_CHECK(opt.initialState == nullptr,
             "runTransientBatch: per-lane DC init only");
  PSMN_CHECK(&batch.netlist() == &sys.netlist(),
             "runTransientBatch: batch built over a different netlist");
  TraceSpan span(Phase::kTransient, "transient_batch");
  const size_t n = sys.size();
  const size_t L = batch.laneCount();
  std::vector<LaneState> lanes(L);

  // Per-lane prologue: scalar DC operating point and charge init, with the
  // lane's deltas applied to the shared netlist for the duration. This is
  // the same code path (and so the same bits) as the scalar runTransient
  // prologue for that scenario.
  for (size_t l = 0; l < L; ++l) {
    LaneState& ln = lanes[l];
    ln.ws.chooseBackend(n, opt);
    batch.applyLane(l);
    try {
      DcOptions dopt;
      dopt.time = t0;
      dopt.gshunt = opt.gshunt;
      dopt.solver = opt.solver;
      dopt.sparseThreshold = opt.sparseThreshold;
      dopt.ordering = opt.ordering;
      ln.x = solveDc(sys, dopt).x;
    } catch (const Error& e) {
      ln.out.error = e.what();
      if (const FailureDiagnostics* d = e.diagnostics()) {
        ln.out.diagnostics = *d;
        ln.out.hasDiagnostics = true;
      }
      continue;
    }
    sys.evalDense(ln.x, t0, nullptr, &ln.q, nullptr, nullptr, {});
    ln.qd.assign(n, 0.0);
    ln.running = true;
    if (opt.storeStates) {
      ln.out.result.times.push_back(t0);
      ln.out.result.states.push_back(ln.x);
    }
  }

  const std::vector<Real> stops =
      transientStops(sys, t0, t1, dt, opt.useBreakpoints);
  const bool sparse = useSparseSolver(opt.solver, n, opt.sparseThreshold);
  MnaSystem::EvalOptions eopt;
  eopt.gshunt = opt.gshunt;

  std::vector<Stamper> stampers, scratch;
  stampers.reserve(L);
  scratch.reserve(L);
  std::vector<unsigned char> active(L, 0), solo(L, 0);

  // Lockstep stepping over the shared fixed grid: every surviving lane
  // takes the same (t, h) sequence the scalar runTransient would, and
  // every per-lane state transition runs through the shared step-kernel
  // pieces of engine/transient.hpp. The only batched code is the device
  // walk inside batchEvalIteration.
  Real t = t0;
  bool forceBE = true;   // first step and first step after each breakpoint
  bool havePrev = false;
  for (Real stop : stops) {
    if (stop <= t) continue;
    const auto count = static_cast<size_t>(
        std::max<Real>(1.0, std::ceil((stop - t) / dt - 1e-9)));
    const Real hseg = (stop - t) / static_cast<Real>(count);
    for (size_t k = 0; k < count; ++k) {
      const Real tNext = t + hseg;
      const IntegrationMethod m = stepMethod(opt.method, forceBE, havePrev);
      for (size_t l = 0; l < L; ++l) {
        LaneState& ln = lanes[l];
        if (!ln.running) continue;
        ln.qSave.assign(ln.q.begin(), ln.q.end());
        ln.a = stepCoefficients(m, hseg, ln.q, ln.qd,
                                havePrev ? &ln.qPrev : nullptr, ln.ws.rhsQ);
        ln.ws.acceptedA = ln.a;
        ln.ws.x1.assign(ln.x.begin(), ln.x.end());
        ln.stepConverged = false;
        ln.stepFailed = false;
      }
      for (int iter = 0; iter < opt.maxNewton; ++iter) {
        size_t pending = 0;
        for (size_t l = 0; l < L; ++l) {
          LaneState& ln = lanes[l];
          active[l] =
              (ln.running && !ln.stepConverged && !ln.stepFailed) ? 1 : 0;
          pending += active[l];
        }
        if (pending == 0) break;
        TraceSpan iterSpan(Phase::kNewton, "newton_iter_batch",
                           TraceDetail::kKernel);
        batchEvalIteration(sys, batch, lanes, active, tNext, eopt, sparse,
                           stampers, scratch, solo);
        for (size_t l = 0; l < L; ++l) {
          if (!active[l]) continue;
          LaneState& ln = lanes[l];
          const NewtonTailOutcome outcome =
              newtonIterationTail(sys, opt, ln.ws, ln.a, tNext, iter);
          if (outcome == NewtonTailOutcome::kConverged) {
            ln.stepConverged = true;
          } else if (outcome == NewtonTailOutcome::kFailed) {
            ln.stepFailed = true;
          }
        }
      }
      for (size_t l = 0; l < L; ++l) {
        LaneState& ln = lanes[l];
        if (!ln.running) continue;
        if (ln.stepConverged) {
          acceptIntegrationStep(m, hseg, ln.x, ln.q, ln.qd,
                                havePrev ? &ln.qPrev : nullptr, ln.ws);
          std::swap(ln.qPrev, ln.qSave);
          ++ln.ws.stats.steps;
          telemetryCount(Counter::kStepsAccepted);
          if (opt.storeStates) {
            ln.out.result.times.push_back(tNext);
            ln.out.result.states.push_back(ln.x);
          }
        } else {
          // Same post-mortem (and error text) the scalar runTransient
          // attaches when it throws for this scenario; the lane drops out
          // and the surviving lanes keep stepping.
          if (!ln.stepFailed) recordNewtonStagnation(sys, opt, ln.ws, tNext);
          FailureDiagnostics diag = stepFailureDiagnostics(ln.ws, tNext);
          ln.out.error = "transient Newton failed at t=" + formatEng(tNext) +
                         "s: " + diag.describe();
          ln.out.diagnostics = std::move(diag);
          ln.out.hasDiagnostics = true;
          ln.running = false;
        }
      }
      havePrev = true;
      forceBE = false;
      t = tNext;
    }
    forceBE = true;  // restart the integrator after each breakpoint
    havePrev = false;
  }

  std::vector<BatchLaneOutcome> out;
  out.reserve(L);
  for (size_t l = 0; l < L; ++l) {
    LaneState& ln = lanes[l];
    if (ln.running) {
      ln.out.ok = true;
      ln.out.result.stats = SolveStats::since(SolveStats{}, ln.ws.stats);
      ln.out.result.finalState = std::move(ln.x);
    }
    out.push_back(std::move(ln.out));
  }
  return out;
}

}  // namespace psmn
