#include "engine/mna.hpp"

#include <algorithm>
#include <cmath>

namespace psmn {

MnaSystem::MnaSystem(Netlist& netlist) : netlist_(&netlist) {
  netlist.finalize();
  n_ = netlist.unknownCount();
  nodeUnknowns_ = netlist.nodeCount() - 1;
  PSMN_CHECK(n_ > 0, "empty netlist");
}

void MnaSystem::evalDense(std::span<const Real> x, Real t, RealVector* f,
                          RealVector* q, RealMatrix* g, RealMatrix* c,
                          const EvalOptions& opt) const {
  PSMN_CHECK(x.size() == n_, "state size mismatch");
  if (f) f->assign(n_, 0.0);
  if (q) q->assign(n_, 0.0);
  if (g) g->resize(n_, n_);
  if (c) c->resize(n_, n_);

  Stamper s(x, t, n_);
  s.attachVectors(f, q);
  s.attachDense(g, c);
  s.setSourceScale(opt.sourceScale);
  s.setGmin(opt.gmin);
  for (const auto& dev : netlist_->devices()) dev->eval(s);

  if (opt.gshunt > 0.0) {
    for (size_t i = 0; i < nodeUnknowns_; ++i) {
      if (f) (*f)[i] += opt.gshunt * x[i];
      if (g) (*g)(i, i) += opt.gshunt;
    }
  }
}

void MnaSystem::evalInjection(const InjectionSource& src,
                              std::span<const Real> x, Real t, RealVector* bf,
                              RealVector* bq) const {
  PSMN_CHECK(x.size() == n_, "state size mismatch");
  if (bf) bf->assign(n_, 0.0);
  if (bq) bq->assign(n_, 0.0);
  PSMN_CHECK(!src.components.empty(), "injection source has no components");

  RealVector tmpF, tmpQ;
  for (const auto& comp : src.components) {
    PSMN_CHECK(comp.device != nullptr, "injection component has no device");
    if (src.kind == InjectionSource::Kind::kMismatch) {
      if (bf) {
        tmpF.assign(n_, 0.0);
        Stamper s(x, t, n_);
        s.attachVectors(&tmpF, nullptr);
        comp.device->mismatchStampF(comp.index, s);
        for (size_t i = 0; i < n_; ++i) (*bf)[i] += comp.weight * tmpF[i];
      }
      if (bq) {
        tmpQ.assign(n_, 0.0);
        Stamper s(x, t, n_);
        s.attachVectors(nullptr, &tmpQ);
        comp.device->mismatchStampQ(comp.index, s);
        for (size_t i = 0; i < n_; ++i) (*bq)[i] += comp.weight * tmpQ[i];
      }
    } else if (bf) {
      tmpF.assign(n_, 0.0);
      Stamper s(x, t, n_);
      s.attachVectors(&tmpF, nullptr);
      comp.device->noiseStamp(comp.index, s);
      for (size_t i = 0; i < n_; ++i) (*bf)[i] += comp.weight * tmpF[i];
      // Physical noise sources are current injections only (no charge part).
    }
  }
}

std::vector<InjectionSource> MnaSystem::collectSources(
    bool includeMismatch, bool includePhysical) const {
  std::vector<InjectionSource> out;
  if (includeMismatch) {
    for (const auto& ref : netlist_->mismatchParams()) {
      InjectionSource s;
      s.kind = InjectionSource::Kind::kMismatch;
      s.name = ref.param.name;
      s.components = {{ref.device, ref.index, 1.0}};
      s.sigma = ref.param.sigma;
      s.mkind = ref.param.kind;
      out.push_back(std::move(s));
    }
  }
  if (includePhysical) {
    for (const auto& ref : netlist_->noiseSources()) {
      InjectionSource s;
      s.kind = ref.desc.kind == NoiseKind::kWhite
                   ? InjectionSource::Kind::kPhysicalWhite
                   : InjectionSource::Kind::kPhysicalFlicker;
      s.name = ref.desc.name;
      s.components = {{ref.device, ref.index, 1.0}};
      s.sigma = 1.0;
      out.push_back(std::move(s));
    }
  }
  return out;
}

std::vector<Real> MnaSystem::collectBreakpoints(Real t0, Real t1) const {
  std::vector<Real> bps;
  for (const auto& dev : netlist_->devices()) {
    dev->collectBreakpoints(t0, t1, bps);
  }
  std::sort(bps.begin(), bps.end());
  // Merge breakpoints closer than a relative epsilon.
  const Real eps = 1e-12 * std::max(std::fabs(t0), std::fabs(t1)) + 1e-21;
  std::vector<Real> out;
  for (Real t : bps) {
    if (out.empty() || t - out.back() > eps) out.push_back(t);
  }
  return out;
}

}  // namespace psmn
