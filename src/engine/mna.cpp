#include "engine/mna.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/fault_injection.hpp"
#include "util/telemetry.hpp"

namespace psmn {

MnaSystem::MnaSystem(Netlist& netlist) : netlist_(&netlist) {
  netlist.finalize();
  n_ = netlist.unknownCount();
  nodeUnknowns_ = netlist.nodeCount() - 1;
  PSMN_CHECK(n_ > 0, "empty netlist");
}

void MnaSystem::evalDense(std::span<const Real> x, Real t, RealVector* f,
                          RealVector* q, RealMatrix* g, RealMatrix* c,
                          const EvalOptions& opt) const {
  PSMN_CHECK(x.size() == n_, "state size mismatch");
  telemetryCount(Counter::kMnaEvals);
  if (f) f->assign(n_, 0.0);
  if (q) q->assign(n_, 0.0);
  if (g) g->resize(n_, n_);
  if (c) c->resize(n_, n_);

  Stamper s(x, t, n_);
  s.attachVectors(f, q);
  s.attachDense(g, c);
  s.setSourceScale(opt.sourceScale);
  s.setGmin(opt.gmin);
  for (const auto& dev : netlist_->devices()) dev->eval(s);

  if (opt.gshunt > 0.0) {
    for (size_t i = 0; i < nodeUnknowns_; ++i) {
      if (f) (*f)[i] += opt.gshunt * x[i];
      if (g) (*g)(i, i) += opt.gshunt;
    }
  }
  if (f && faultShouldFire("mna.eval")) {
    (*f)[0] = std::numeric_limits<Real>::quiet_NaN();
  }
}

void mnaRebuildPattern(RealSparse* m, size_t n,
                       std::vector<Triplet<Real>>& trips, size_t diagonals) {
  if (m == nullptr) return;
  if (m->rows() == n) {
    const auto ptr = m->colPointers();
    const auto idx = m->rowIndices();
    for (size_t c = 0; c < n; ++c) {
      for (int k = ptr[c]; k < ptr[c + 1]; ++k) {
        trips.push_back({idx[k], static_cast<int>(c), 0.0});
      }
    }
  }
  for (size_t i = 0; i < diagonals; ++i) {
    trips.push_back({static_cast<int>(i), static_cast<int>(i), 0.0});
  }
  *m = RealSparse::fromTriplets(n, n, trips);
  m->zeroValues();
}

void MnaSystem::evalSparse(std::span<const Real> x, Real t, RealVector* f,
                           RealVector* q, RealSparse* g, RealSparse* c,
                           const EvalOptions& opt) const {
  PSMN_CHECK(x.size() == n_, "state size mismatch");
  telemetryCount(Counter::kMnaEvals);
  PSMN_CHECK(g != nullptr || c != nullptr,
             "evalSparse needs a matrix target; use evalDense for f/q only");

  // One-time symbolic pass: run the devices in triplet mode at the current
  // iterate to discover the pattern.
  if ((g && g->rows() != n_) || (c && c->rows() != n_)) {
    std::vector<Triplet<Real>> gTrips, cTrips;
    Stamper s(x, t, n_);
    s.attachTriplets(g ? &gTrips : nullptr, c ? &cTrips : nullptr);
    s.setSourceScale(opt.sourceScale);
    s.setGmin(opt.gmin);
    for (const auto& dev : netlist_->devices()) dev->eval(s);
    mnaRebuildPattern(g, n_, gTrips, nodeUnknowns_);
    mnaRebuildPattern(c, n_, cTrips, 0);
  }

  // Slot-stamping passes: normally one; a pattern miss (a device reaching a
  // position the symbolic pass never saw) extends the pattern and retries.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (f) f->assign(n_, 0.0);
    if (q) q->assign(n_, 0.0);
    if (g) g->zeroValues();
    if (c) c->zeroValues();

    Stamper s(x, t, n_);
    s.attachVectors(f, q);
    s.attachSparse(g, c);
    s.setSourceScale(opt.sourceScale);
    s.setGmin(opt.gmin);
    for (const auto& dev : netlist_->devices()) dev->eval(s);

    if (!s.sparseMiss()) break;
    PSMN_CHECK(attempt == 0, "evalSparse: pattern miss after rebuild");
    std::vector<Triplet<Real>> gTrips, cTrips;
    Stamper ts(x, t, n_);
    ts.attachTriplets(g ? &gTrips : nullptr, c ? &cTrips : nullptr);
    ts.setSourceScale(opt.sourceScale);
    ts.setGmin(opt.gmin);
    for (const auto& dev : netlist_->devices()) dev->eval(ts);
    mnaRebuildPattern(g, n_, gTrips, nodeUnknowns_);
    mnaRebuildPattern(c, n_, cTrips, 0);
  }

  if (opt.gshunt > 0.0) {
    for (size_t i = 0; i < nodeUnknowns_; ++i) {
      if (f) (*f)[i] += opt.gshunt * x[i];
      if (g) *g->find(static_cast<int>(i), static_cast<int>(i)) += opt.gshunt;
    }
  }
  if (f && faultShouldFire("mna.eval")) {
    (*f)[0] = std::numeric_limits<Real>::quiet_NaN();
  }
}

void MnaSystem::evalInjection(const InjectionSource& src,
                              std::span<const Real> x, Real t, RealVector* bf,
                              RealVector* bq) const {
  PSMN_CHECK(x.size() == n_, "state size mismatch");
  if (bf) bf->assign(n_, 0.0);
  if (bq) bq->assign(n_, 0.0);
  PSMN_CHECK(!src.components.empty(), "injection source has no components");

  // Weighted accumulation straight into the output vectors: the stamper's
  // stamp scale carries the component weight, so composite sources need no
  // temporary per component and the hot sensitivity loop stays heap-free.
  for (const auto& comp : src.components) {
    PSMN_CHECK(comp.device != nullptr, "injection component has no device");
    Stamper s(x, t, n_);
    s.attachVectors(bf, bq);
    s.setStampScale(comp.weight);
    if (src.kind == InjectionSource::Kind::kMismatch) {
      if (bf) comp.device->mismatchStampF(comp.index, s);
      if (bq) comp.device->mismatchStampQ(comp.index, s);
    } else if (bf) {
      comp.device->noiseStamp(comp.index, s);
      // Physical noise sources are current injections only (no charge part).
    }
  }
}

std::vector<InjectionSource> MnaSystem::collectSources(
    bool includeMismatch, bool includePhysical) const {
  std::vector<InjectionSource> out;
  if (includeMismatch) {
    for (const auto& ref : netlist_->mismatchParams()) {
      InjectionSource s;
      s.kind = InjectionSource::Kind::kMismatch;
      s.name = ref.param.name;
      s.components = {{ref.device, ref.index, 1.0}};
      s.sigma = ref.param.sigma;
      s.mkind = ref.param.kind;
      out.push_back(std::move(s));
    }
  }
  if (includePhysical) {
    for (const auto& ref : netlist_->noiseSources()) {
      InjectionSource s;
      s.kind = ref.desc.kind == NoiseKind::kWhite
                   ? InjectionSource::Kind::kPhysicalWhite
                   : InjectionSource::Kind::kPhysicalFlicker;
      s.name = ref.desc.name;
      s.components = {{ref.device, ref.index, 1.0}};
      s.sigma = 1.0;
      out.push_back(std::move(s));
    }
  }
  return out;
}

std::vector<std::string> MnaSystem::suspectUnknowns(std::span<const Real> f,
                                                    size_t count) const {
  // Rank by "badness": non-finite entries outrank every finite one; finite
  // entries rank by magnitude. Cold path (failure reporting only).
  std::vector<size_t> order(std::min(f.size(), n_));
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto badness = [&](size_t i) {
    return std::isfinite(f[i]) ? std::fabs(f[i])
                               : std::numeric_limits<Real>::infinity();
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return badness(a) > badness(b); });
  std::vector<std::string> names;
  for (size_t k = 0; k < order.size() && k < count; ++k) {
    if (badness(order[k]) == 0.0) break;  // a zero residual is not suspect
    names.push_back(netlist_->unknownName(order[k]));
  }
  return names;
}

std::vector<Real> MnaSystem::collectBreakpoints(Real t0, Real t1) const {
  std::vector<Real> bps;
  for (const auto& dev : netlist_->devices()) {
    dev->collectBreakpoints(t0, t1, bps);
  }
  std::sort(bps.begin(), bps.end());
  // Merge breakpoints closer than a relative epsilon.
  const Real eps = 1e-12 * std::max(std::fabs(t0), std::fabs(t1)) + 1e-21;
  std::vector<Real> out;
  for (Real t : bps) {
    if (out.empty() || t - out.back() > eps) out.push_back(t);
  }
  return out;
}

}  // namespace psmn
