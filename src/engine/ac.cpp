#include "engine/ac.hpp"

#include <cmath>
#include <numbers>

#include "circuit/sources.hpp"
#include "numeric/dense_lu.hpp"

namespace psmn {

CplxVector acRhsForVSource(const MnaSystem& sys, const VSource& src) {
  CplxVector rhs(sys.size(), Cplx{});
  // Branch equation residual is v(a)-v(b)-V; a unit AC amplitude moves the
  // residual by -1, i.e. +1 on the right-hand side.
  PSMN_CHECK(src.branchIndex() >= 0, "source not finalized");
  rhs[src.branchIndex()] = 1.0;
  return rhs;
}

CplxVector acRhsForISource(const MnaSystem& sys, const ISource& src) {
  CplxVector rhs(sys.size(), Cplx{});
  if (src.nodeA() >= 0) rhs[src.nodeA()] -= 1.0;
  if (src.nodeB() >= 0) rhs[src.nodeB()] += 1.0;
  return rhs;
}

void linearize(const MnaSystem& sys, std::span<const Real> xop, RealMatrix* g,
               RealMatrix* c, Real gshunt) {
  MnaSystem::EvalOptions eopt;
  eopt.gshunt = gshunt;
  sys.evalDense(xop, 0.0, nullptr, nullptr, g, c, eopt);
}

CplxVector solveAc(const RealMatrix& g, const RealMatrix& c, Real freq,
                   std::span<const Cplx> rhs) {
  const size_t n = g.rows();
  PSMN_CHECK(rhs.size() == n, "AC rhs size mismatch");
  const Cplx jw(0.0, 2.0 * std::numbers::pi_v<Real> * freq);
  CplxMatrix a(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) a(i, j) = g(i, j) + jw * c(i, j);
  return DenseLU<Cplx>(a).solve(rhs);
}

std::vector<CplxVector> solveAcSweep(const MnaSystem& sys,
                                     std::span<const Real> xop,
                                     std::span<const Real> freqs,
                                     std::span<const Cplx> rhs) {
  RealMatrix g, c;
  linearize(sys, xop, &g, &c);
  std::vector<CplxVector> out;
  out.reserve(freqs.size());
  for (Real f : freqs) out.push_back(solveAc(g, c, f, rhs));
  return out;
}

RealVector logspace(Real fStart, Real fStop, int pointsPerDecade) {
  PSMN_CHECK(fStart > 0.0 && fStop > fStart && pointsPerDecade > 0,
             "bad logspace parameters");
  RealVector fs;
  const Real decades = std::log10(fStop / fStart);
  const int count = static_cast<int>(std::ceil(decades * pointsPerDecade)) + 1;
  for (int i = 0; i < count; ++i) {
    fs.push_back(fStart *
                 std::pow(10.0, decades * i / std::max(1, count - 1)));
  }
  return fs;
}

}  // namespace psmn
