// Transient analysis.
//
// Integrates f(x,t) + dq/dt = 0 with backward-Euler, trapezoidal, or
// 2nd-order Gear, in the "charge-state" formulation: the integrator tracks
// (x, q, qdot) so purely algebraic equations stay exact under trapezoidal
// integration (no DAE ringing) and breakpoints restart cleanly with a BE
// step.
#pragma once

#include "engine/dc.hpp"
#include "engine/mna.hpp"

namespace psmn {

enum class IntegrationMethod { kBackwardEuler, kTrapezoidal, kGear2 };

struct TranOptions {
  IntegrationMethod method = IntegrationMethod::kTrapezoidal;
  int maxNewton = 60;
  Real residualTol = 1e-9;
  Real updateTol = 1e-9;
  Real maxStep = 0.5;  // Newton dx clamp (V); vital for regenerative latches
  Real gshunt = 0.0;
  bool useBreakpoints = true;
  bool storeStates = true;
  /// Adaptive timestep control (fixed grid when false). The nominal dt is
  /// the starting step; it shrinks/grows within [dtMin, dtMax].
  bool adaptive = false;
  Real reltol = 1e-3;
  Real abstol = 1e-6;
  Real dtMin = 0.0;   // 0 -> dt/1e6
  Real dtMax = 0.0;   // 0 -> 4*dt
  /// Start from this state instead of a DC solve (SPICE "UIC").
  const RealVector* initialState = nullptr;
};

struct TransientResult {
  std::vector<Real> times;
  std::vector<RealVector> states;  // one state per accepted time point
  RealVector finalState;
  size_t newtonIterations = 0;  // total, for cost reporting
  size_t steps = 0;

  /// Extracts the waveform of one MNA unknown.
  RealVector waveform(int mnaIndex) const;
};

TransientResult runTransient(const MnaSystem& sys, Real t0, Real t1, Real dt,
                             const TranOptions& opt = {});

/// Single integration step from (x0,q0,qd0,t) to t+h; updates all three.
/// `beStep` forces backward Euler (first step, post-breakpoint). Returns
/// false if Newton failed. qm1 is q at the pre-previous point (Gear2).
bool integrateStep(const MnaSystem& sys, IntegrationMethod method, bool beStep,
                   Real t, Real h, RealVector& x, RealVector& q,
                   RealVector& qd, const RealVector* qm1,
                   const TranOptions& opt, size_t* newtonCount = nullptr);

}  // namespace psmn
