// Transient analysis.
//
// Integrates f(x,t) + dq/dt = 0 with backward-Euler, trapezoidal, or
// 2nd-order Gear, in the "charge-state" formulation: the integrator tracks
// (x, q, qdot) so purely algebraic equations stay exact under trapezoidal
// integration (no DAE ringing) and breakpoints restart cleanly with a BE
// step.
//
// The Newton kernel runs on one of two linear-solver backends selected by
// system size (TranOptions::solver): the dense path factors G + a*C with
// DenseLU each iteration; the sparse path stamps into a cached sparsity
// pattern and reuses the symbolic factorization (SparseLU::refactor) across
// iterations and time steps. All per-step scratch lives in a
// TransientWorkspace so the steady-state stepping loop performs no heap
// allocation (tests/test_alloc.cpp pins this down).
#pragma once

#include "engine/dc.hpp"
#include "engine/mna.hpp"
#include "numeric/dense_lu.hpp"
#include "numeric/sparse_lu.hpp"

namespace psmn {

class ThreadPool;  // runtime/thread_pool.hpp

enum class IntegrationMethod { kBackwardEuler, kTrapezoidal, kGear2 };

struct TranOptions {
  IntegrationMethod method = IntegrationMethod::kTrapezoidal;
  int maxNewton = 60;
  Real residualTol = 1e-9;
  Real updateTol = 1e-9;
  Real maxStep = 0.5;  // Newton dx clamp (V); vital for regenerative latches
  Real gshunt = 0.0;
  bool useBreakpoints = true;
  bool storeStates = true;
  /// Linear-solver backend; kAuto switches to sparse at sparseThreshold
  /// unknowns.
  LinearSolverKind solver = LinearSolverKind::kAuto;
  size_t sparseThreshold = kSparseSolverThreshold;
  /// Fill-reducing column pre-ordering used by the sparse backend's
  /// symbolic analysis (numeric refactorizations inherit it).
  OrderingKind ordering = OrderingKind::kAmd;
  /// Adaptive timestep control (fixed grid when false). The nominal dt is
  /// the starting step; it shrinks/grows within [dtMin, dtMax].
  bool adaptive = false;
  Real reltol = 1e-3;
  Real abstol = 1e-6;
  Real dtMin = 0.0;   // 0 -> dt/1e6
  Real dtMax = 0.0;   // 0 -> 4*dt
  /// Start from this state instead of a DC solve (SPICE "UIC").
  const RealVector* initialState = nullptr;
  /// Optional execution runtime. runTransientSensitivity partitions its
  /// injection-source columns across this pool's slots (results are
  /// bit-identical for every jobs count); runTransient ignores it — a
  /// single Newton path has no column parallelism to exploit.
  ThreadPool* pool = nullptr;
};

/// Reusable scratch + cached solver state for the stepping kernel. Create
/// one per (system, run) and pass it to every integrateStep call: the
/// sparsity pattern, symbolic factorization, and all vectors/matrices are
/// reused, so steps after the first do not allocate.
///
/// After a successful step the workspace exposes the accepted-point
/// linearization: `dlu`/`slu` hold the factored J = G + a*C at the
/// accepted (x, t+h) (a = 1/h for the BE steps the sensitivity engine
/// takes), and `c`/`csp` hold C there. The sensitivity engine solves
/// against it via solveAcceptedInPlace() instead of re-evaluating and
/// re-factoring.
struct TransientWorkspace {
  // Backend and ordering, fixed on first use.
  bool sparse = false;
  bool chosen = false;
  OrderingKind ordering = OrderingKind::kAmd;

  // Scratch vectors.
  RealVector f, q1, r, rhsQ, x1, qd1;

  // Dense backend: j accumulates G then J = G + a*C in place; c holds C.
  RealMatrix j, c;
  DenseLU<Real> dlu;

  // Sparse backend: cached-pattern G/C and the cached-pattern Jacobian
  // assembler (J = G + a*C with precomputed value-scatter maps).
  RealSparse gsp, csp;
  MergedSparseAssembler<Real> jac;
  SparseLU<Real> slu;
  bool sluSymbolic = false;  // slu carries a reusable symbolic factorization

  // Integration coefficient `a` of the most recent step (J = G + a*C; 1/h
  // for BE). Lets consumers of the accepted-step linearization recover
  // G = J - a*C from the dense workspace without a re-evaluation (the
  // sparse workspace keeps G and C separately). Set by integrateStep.
  Real acceptedA = 0.0;

  // Cost counters, cumulative over the workspace lifetime (the old
  // fullFactorizations/refactorizations fields live on as
  // stats.factorizations/stats.refactorizations).
  SolveStats stats;

  /// Post-mortem of the most recent integrateStep that returned false
  /// (iteration, residual, suspect unknowns). runTransient folds it into
  /// the error it throws; `lastFailureNonFinite` distinguishes a NaN/Inf
  /// escape (surfaced as NumericalError) from plain Newton stagnation
  /// (ConvergenceError).
  FailureDiagnostics lastFailure;
  bool haveFailure = false;
  bool lastFailureNonFinite = false;

  void chooseBackend(size_t n, const TranOptions& opt) {
    if (chosen) return;
    sparse = useSparseSolver(opt.solver, n, opt.sparseThreshold);
    ordering = opt.ordering;
    chosen = true;
  }

  /// Prepares a long-lived workspace for a fresh run over new device
  /// values (the process-sweep workers reuse one workspace across their
  /// whole shard). Invalidates the cached pivot sequence so the run's
  /// first factorization is a full SparseLU::factor — refactor() reuses
  /// pivots chosen for a DIFFERENT matrix's values, which rounds
  /// differently than a fresh factor and would break the bit-identity of
  /// cached-context runs against fresh-workspace runs. What survives the
  /// reset is exactly the value-independent state: buffer capacities, the
  /// cached sparsity patterns, and the merged-pattern scatter maps.
  void resetForNewValues() {
    sluSymbolic = false;
    haveFailure = false;
    lastFailureNonFinite = false;
    acceptedA = 0.0;
  }

  /// Solves J y = b in place against the accepted-step factorization.
  void solveAcceptedInPlace(std::span<Real> b, size_t nrhs = 1) const {
    if (sparse) slu.solveManyInPlace(b, nrhs);
    else dlu.solveManyInPlace(b, nrhs);
  }
  /// Concurrently callable variant: threads sharing the accepted-step
  /// factorization solve disjoint column blocks, one scratch per thread.
  void solveAcceptedInPlace(std::span<Real> b, size_t nrhs,
                            LuSolveScratch<Real>& scratch) const {
    if (sparse) slu.solveManyInPlace(b, nrhs, scratch);
    else dlu.solveManyInPlace(b, nrhs, scratch);
  }
};

struct TransientResult {
  std::vector<Real> times;
  std::vector<RealVector> states;  // one state per accepted time point
  RealVector finalState;
  /// Run cost: stats.steps counts accepted steps, stats.newtonIterations
  /// every Newton iteration including rejected adaptive attempts. The
  /// initial DC solve is not included (matching the old counters).
  SolveStats stats;

  /// Extracts the waveform of one MNA unknown.
  RealVector waveform(int mnaIndex) const;
};

TransientResult runTransient(const MnaSystem& sys, Real t0, Real t1, Real dt,
                             const TranOptions& opt = {});

/// Variant running against a caller-owned workspace so repeated runs over
/// the same system reuse the pattern caches, scatter maps, and buffer
/// allocations (the process-sweep workers' shard cache). The caller must
/// call ws.resetForNewValues() between runs whose device values changed;
/// results and SolveStats are then bit-identical to the fresh-workspace
/// overload. result.stats reports this run's deltas, not the workspace's
/// cumulative counters.
TransientResult runTransient(const MnaSystem& sys, Real t0, Real t1, Real dt,
                             const TranOptions& opt, TransientWorkspace& ws);

/// Single integration step from (x0,q0,qd0,t) to t+h; updates all three.
/// `beStep` forces backward Euler (first step, post-breakpoint). Returns
/// false if Newton failed. qm1 is q at the pre-previous point (Gear2).
/// The accepted point keeps the final Newton iterate's f/q/G/C/LU
/// consistent in `ws` — no post-convergence re-evaluation happens.
bool integrateStep(const MnaSystem& sys, IntegrationMethod method, bool beStep,
                   Real t, Real h, RealVector& x, RealVector& q,
                   RealVector& qd, const RealVector* qm1,
                   const TranOptions& opt, TransientWorkspace& ws);

/// Convenience overload with a throwaway workspace (one-off steps; the
/// engines hold a workspace across steps instead).
bool integrateStep(const MnaSystem& sys, IntegrationMethod method, bool beStep,
                   Real t, Real h, RealVector& x, RealVector& q,
                   RealVector& qd, const RealVector* qm1,
                   const TranOptions& opt);

// --- shared step-kernel pieces -------------------------------------------
// integrateStep is decomposed into the helpers below so the scenario-batched
// lockstep driver (engine/batch_eval.cpp) runs the SAME compiled code for
// everything around the system evaluation. That is what makes batched
// results bit-identical to scalar ones by construction: the only difference
// between the paths is which loop calls the device stamps.

/// Method actually used for a step: BE forcing (first step, post-breakpoint)
/// and the Gear2 startup fallback when no q[n-2] exists yet.
IntegrationMethod stepMethod(IntegrationMethod method, bool beStep,
                             bool haveQm1);

/// Integration coefficient `a` of R = f1 + a*q1 + rhsQ (J = G + a*C);
/// fills rhsQ from the charge state.
Real stepCoefficients(IntegrationMethod m, Real h, const RealVector& q,
                      const RealVector& qd, const RealVector* qm1,
                      RealVector& rhsQ);

enum class NewtonTailOutcome { kContinue, kConverged, kFailed };

/// One Newton iteration's post-evaluation tail: the caller has just
/// evaluated the system at ws.x1/t1 into ws.f/ws.q1 and ws.gsp/ws.csp
/// (sparse) or ws.j/ws.c (dense). Assembles J = G + a*C, forms the
/// residual, factors, solves, and applies the clamped update to ws.x1.
/// kFailed records the post-mortem on ws.
NewtonTailOutcome newtonIterationTail(const MnaSystem& sys,
                                      const TranOptions& opt,
                                      TransientWorkspace& ws, Real a, Real t1,
                                      int iter);

/// Records the Newton-stagnation post-mortem on ws (the caller exhausted
/// opt.maxNewton iterations without a kConverged tail).
void recordNewtonStagnation(const MnaSystem& sys, const TranOptions& opt,
                            TransientWorkspace& ws, Real t1);

/// Accepted-step epilogue: updates the charge state from the accepted-point
/// q1 and swaps (x, q, qd) with the workspace buffers.
void acceptIntegrationStep(IntegrationMethod m, Real h, RealVector& x,
                           RealVector& q, RealVector& qd,
                           const RealVector* qm1, TransientWorkspace& ws);

/// The breakpoint-segmented stop list runTransient integrates over; the
/// last entry is t1.
std::vector<Real> transientStops(const MnaSystem& sys, Real t0, Real t1,
                                 Real dt, bool useBreakpoints);

/// Run-level failure post-mortem from the workspace (what runTransient
/// folds into the error it throws; the batched driver records it per lane).
FailureDiagnostics stepFailureDiagnostics(const TransientWorkspace& ws,
                                          Real t);

}  // namespace psmn
