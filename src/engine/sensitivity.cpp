#include "engine/sensitivity.hpp"

#include "engine/ac.hpp"
#include "numeric/dense_lu.hpp"

namespace psmn {

RealVector solveDcSensitivity(const MnaSystem& sys, std::span<const Real> xop,
                              int outIndex,
                              std::span<const InjectionSource> sources) {
  PSMN_CHECK(outIndex >= 0 && outIndex < static_cast<int>(sys.size()),
             "bad output index");
  RealMatrix g;
  linearize(sys, xop, &g, nullptr);
  DenseLU<Real> lu(g);

  RealVector eout(sys.size(), 0.0);
  eout[outIndex] = 1.0;
  const RealVector lambda = lu.solveTransposed(eout);

  RealVector out;
  out.reserve(sources.size());
  RealVector bf;
  for (const auto& src : sources) {
    sys.evalInjection(src, xop, 0.0, &bf, nullptr);
    Real s = 0.0;
    for (size_t i = 0; i < bf.size(); ++i) s += lambda[i] * bf[i];
    out.push_back(-s);
  }
  return out;
}

RealVector solveDcSensitivityDirect(const MnaSystem& sys,
                                    std::span<const Real> xop, int outIndex,
                                    std::span<const InjectionSource> sources) {
  PSMN_CHECK(outIndex >= 0 && outIndex < static_cast<int>(sys.size()),
             "bad output index");
  RealMatrix g;
  linearize(sys, xop, &g, nullptr);
  DenseLU<Real> lu(g);

  RealVector out;
  out.reserve(sources.size());
  RealVector bf;
  for (const auto& src : sources) {
    sys.evalInjection(src, xop, 0.0, &bf, nullptr);
    for (Real& v : bf) v = -v;
    const RealVector dx = lu.solve(bf);
    out.push_back(dx[outIndex]);
  }
  return out;
}

}  // namespace psmn
