// Small-signal AC analysis around a DC operating point:
//   (G + j*2*pi*f*C) X = b.
#pragma once

#include "engine/mna.hpp"

namespace psmn {

class VSource;
class ISource;

/// Unit AC injection vectors (the SPICE "AC 1" source).
CplxVector acRhsForVSource(const MnaSystem& sys, const VSource& src);
CplxVector acRhsForISource(const MnaSystem& sys, const ISource& src);

/// Builds G and C at the operating point xop (sources at time t=0).
void linearize(const MnaSystem& sys, std::span<const Real> xop, RealMatrix* g,
               RealMatrix* c, Real gshunt = 0.0);

/// Single-frequency solve.
CplxVector solveAc(const RealMatrix& g, const RealMatrix& c, Real freq,
                   std::span<const Cplx> rhs);

/// Frequency sweep; returns one response vector per frequency.
std::vector<CplxVector> solveAcSweep(const MnaSystem& sys,
                                     std::span<const Real> xop,
                                     std::span<const Real> freqs,
                                     std::span<const Cplx> rhs);

/// Log-spaced frequency grid (decade sweep).
RealVector logspace(Real fStart, Real fStop, int pointsPerDecade);

}  // namespace psmn
