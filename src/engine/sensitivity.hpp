// DC sensitivity analysis (SPICE .SENS) via the adjoint method:
//   f(x, p) = 0  =>  dx/dp = -G^{-1} (df/dp),
// and for a single output y = x[out]:
//   dy/dp_i = -lambda^T (df/dp_i)  with  G^T lambda = e_out.
#pragma once

#include "engine/mna.hpp"

namespace psmn {

/// dx[out]/dp for each source (mismatch parameter), one adjoint solve total.
RealVector solveDcSensitivity(const MnaSystem& sys, std::span<const Real> xop,
                              int outIndex,
                              std::span<const InjectionSource> sources);

/// Direct method (one solve per parameter); cross-check for tests.
RealVector solveDcSensitivityDirect(const MnaSystem& sys,
                                    std::span<const Real> xop, int outIndex,
                                    std::span<const InjectionSource> sources);

}  // namespace psmn
