// Scenario-batched transient evaluation.
//
// Drives N mismatch/sweep parameter lanes (a DeviceBatch) through one
// lockstep fixed-grid transient: every Newton iteration performs ONE
// structural device walk that stamps all still-iterating lanes
// (Device::evalBatch SoA inner loops), against per-lane cached sparsity
// patterns whose symbolic construction is amortized across the batch —
// lane 0 runs the triplet discovery pass once and the other lanes copy
// the resulting CSC skeleton (Counter::kBatchSymbolicReuse counts the
// copies). Each lane keeps its OWN SparseLU (first full factor, then
// refactor) because sharing pivot sequences across lanes would round
// differently than the scalar path and break bit-identity.
//
// Everything around the device walk — step method selection, integration
// coefficients, the Newton tail (assemble/factor/solve/clamp), the
// accepted-step charge update, breakpoint segmentation, and failure
// post-mortems — is the SAME compiled code the scalar runTransient uses
// (the shared step-kernel pieces in engine/transient.hpp). Batched lane
// results are therefore bit-identical to scalar runs by construction;
// the scalar path stays the oracle (tests/test_batch_eval.cpp).
#pragma once

#include <string>
#include <vector>

#include "circuit/device_batch.hpp"
#include "engine/transient.hpp"

namespace psmn {

/// Batched-evaluation knob threaded through the sweep/MC drivers and the
/// CLI (--batch). Scalar evaluation remains the default and the oracle.
struct BatchOptions {
  bool enabled = false;
  /// Lanes per batch tile. Tiles are independent, so the sweep drivers
  /// parallelize across tiles with the existing deterministic pool.
  size_t lanes = 16;
};

/// Per-lane outcome of a batched transient. A failed lane carries the
/// same error text and diagnostics the scalar runTransient would have
/// thrown for that scenario; callers typically re-run failed lanes
/// through the scalar path (which also re-runs any retry escalation).
struct BatchLaneOutcome {
  bool ok = false;
  std::string error;
  bool hasDiagnostics = false;
  FailureDiagnostics diagnostics;
  TransientResult result;
};

/// Runs all lanes of `batch` over [t0, t1] on the fixed dt grid.
/// Restrictions versus runTransient: fixed grid only (!opt.adaptive) and
/// per-lane DC initial conditions (opt.initialState == nullptr) — the
/// statistical workloads this serves use exactly that configuration.
/// Lane k's DC solve and q-init run scalar (batch.applyLane(k)), then the
/// stepping loop advances every surviving lane in lockstep; a lane whose
/// Newton dies drops out without disturbing the others.
std::vector<BatchLaneOutcome> runTransientBatch(const MnaSystem& sys,
                                                DeviceBatch& batch, Real t0,
                                                Real t1, Real dt,
                                                const TranOptions& opt);

}  // namespace psmn
