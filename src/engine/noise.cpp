#include "engine/noise.hpp"

#include <numbers>

#include "engine/ac.hpp"
#include "numeric/dense_lu.hpp"

namespace psmn {
namespace {

CplxMatrix acMatrix(const MnaSystem& sys, std::span<const Real> xop,
                    Real freq) {
  RealMatrix g, c;
  linearize(sys, xop, &g, &c);
  const size_t n = g.rows();
  const Cplx jw(0.0, 2.0 * std::numbers::pi_v<Real> * freq);
  CplxMatrix a(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) a(i, j) = g(i, j) + jw * c(i, j);
  return a;
}

/// Injection rhs for a source at the operating point: b = -dF/dp (static
/// part) - jw * dQ/dp (charge part).
CplxVector injectionRhs(const MnaSystem& sys, const InjectionSource& src,
                        std::span<const Real> xop, Real freq) {
  RealVector bf, bq;
  sys.evalInjection(src, xop, 0.0, &bf, &bq);
  const Cplx jw(0.0, 2.0 * std::numbers::pi_v<Real> * freq);
  CplxVector b(bf.size());
  for (size_t i = 0; i < bf.size(); ++i) b[i] = -bf[i] - jw * bq[i];
  return b;
}

}  // namespace

NoiseResult solveNoise(const MnaSystem& sys, std::span<const Real> xop,
                       int outIndex, Real freq,
                       std::span<const InjectionSource> sources) {
  PSMN_CHECK(outIndex >= 0 && outIndex < static_cast<int>(sys.size()),
             "bad output index");
  const CplxMatrix a = acMatrix(sys, xop, freq);
  DenseLU<Cplx> lu(a);

  // Adjoint: A^T lambda = e_out, then TF_i = lambda^T b_i.
  CplxVector eout(sys.size(), Cplx{});
  eout[outIndex] = 1.0;
  const CplxVector lambda = lu.solveTransposed(eout);

  NoiseResult result;
  for (const auto& src : sources) {
    const CplxVector b = injectionRhs(sys, src, xop, freq);
    Cplx tf{};
    for (size_t i = 0; i < b.size(); ++i) tf += lambda[i] * b[i];
    NoiseContribution nc;
    nc.name = src.name;
    nc.transfer = tf;
    nc.sourcePsd = src.psd(freq);
    nc.psd = std::norm(tf) * nc.sourcePsd;
    result.totalPsd += nc.psd;
    result.contributions.push_back(std::move(nc));
  }
  return result;
}

NoiseResult solveNoiseDirect(const MnaSystem& sys, std::span<const Real> xop,
                             int outIndex, Real freq,
                             std::span<const InjectionSource> sources) {
  PSMN_CHECK(outIndex >= 0 && outIndex < static_cast<int>(sys.size()),
             "bad output index");
  const CplxMatrix a = acMatrix(sys, xop, freq);
  DenseLU<Cplx> lu(a);

  NoiseResult result;
  for (const auto& src : sources) {
    const CplxVector b = injectionRhs(sys, src, xop, freq);
    const CplxVector x = lu.solve(b);
    NoiseContribution nc;
    nc.name = src.name;
    nc.transfer = x[outIndex];
    nc.sourcePsd = src.psd(freq);
    nc.psd = std::norm(nc.transfer) * nc.sourcePsd;
    result.totalPsd += nc.psd;
    result.contributions.push_back(std::move(nc));
  }
  return result;
}

}  // namespace psmn
