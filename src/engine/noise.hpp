// Linear time-invariant noise analysis (SPICE .NOISE) at a DC operating
// point, with per-source contribution breakdown.
//
// When run with the mismatch pseudo-noise sources at f = 1 Hz this *is* the
// classic DC-match analysis of Oehm & Schumacher (paper eq. 1): the output
// "noise PSD" equals the variance of the DC quantity. The transient
// extension (paper's contribution) lives in rf/pnoise.hpp.
#pragma once

#include "engine/mna.hpp"

namespace psmn {

struct NoiseContribution {
  std::string name;
  Real psd = 0.0;       // contribution to the output PSD (V^2/Hz)
  Cplx transfer{};      // complex transfer from source to output
  Real sourcePsd = 0.0; // stationary source PSD at the analysis frequency
};

struct NoiseResult {
  Real totalPsd = 0.0;
  std::vector<NoiseContribution> contributions;
};

/// Adjoint LTI noise analysis: one transposed solve gives the transfer from
/// every source to the output unknown `outIndex`.
NoiseResult solveNoise(const MnaSystem& sys, std::span<const Real> xop,
                       int outIndex, Real freq,
                       std::span<const InjectionSource> sources);

/// Direct (per-source) variant; used to cross-check the adjoint in tests.
NoiseResult solveNoiseDirect(const MnaSystem& sys, std::span<const Real> xop,
                             int outIndex, Real freq,
                             std::span<const InjectionSource> sources);

}  // namespace psmn
