#include "runtime/scenario_sweep.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <optional>

#include "engine/transient_sensitivity.hpp"
#include "util/telemetry.hpp"

namespace psmn {
namespace {

void runOneScenario(const SweepScenario& sc, SweepResult& out) {
  // The private fresh stack (`make`) or the borrowed slot-confined cached
  // one (`acquire`); the acquire path resets the workspace so the two are
  // bit-identical (tests/test_runtime.cpp pins this across topologies).
  std::unique_ptr<Netlist> owned;
  TransientWorkspace localWs;
  Netlist* nl = nullptr;
  MnaSystem* sysPtr = nullptr;
  std::unique_ptr<MnaSystem> ownedSys;
  TransientWorkspace* ws = &localWs;
  if (sc.acquire) {
    PSMN_CHECK(sc.analysis == SweepAnalysis::kTransient ||
                   sc.analysis == SweepAnalysis::kTransientSensitivity,
               "acquire-path scenarios support transient analyses only");
    ScenarioContext* ctx = sc.acquire();
    PSMN_CHECK(ctx != nullptr && ctx->netlist != nullptr &&
                   ctx->sys != nullptr,
               "scenario acquire returned an incomplete context");
    nl = ctx->netlist.get();
    sysPtr = ctx->sys.get();
    ws = &ctx->tran;
    ws->resetForNewValues();
  } else {
    PSMN_CHECK(sc.make != nullptr, "scenario has no netlist factory");
    owned = sc.make();
    PSMN_CHECK(owned != nullptr, "scenario factory returned null");
    owned->finalize();
    nl = owned.get();
    ownedSys = std::make_unique<MnaSystem>(*nl);
    sysPtr = ownedSys.get();
  }
  MnaSystem& sys = *sysPtr;

  int outIdx = -1;
  if (sc.analysis != SweepAnalysis::kMcBatch) {
    PSMN_CHECK(!sc.outNode.empty(), "scenario needs an output node");
    outIdx = nl->nodeIndex(sc.outNode);
    PSMN_CHECK(outIdx >= 0, "unknown output node '" + sc.outNode + "'");
  }

  switch (sc.analysis) {
    case SweepAnalysis::kTransient: {
      const TransientResult tr =
          runTransient(sys, sc.t0, sc.t1, sc.dt, sc.tran, *ws);
      out.times = tr.times;
      out.waveform = tr.waveform(outIdx);
      out.finalState = tr.finalState;
      out.stats = tr.stats;
      break;
    }
    case SweepAnalysis::kTransientSensitivity: {
      const auto sources = sys.collectSources(true, false);
      const TransientSensitivityResult sr =
          runTransientSensitivity(sys, sc.t0, sc.t1, sc.dt, sources, sc.tran);
      out.times = sr.times;
      out.waveform.resize(sr.states.size());
      out.sigma.assign(sr.times.size(), 0.0);
      for (size_t k = 0; k < sr.times.size(); ++k) {
        out.waveform[k] = sr.states[k][outIdx];
        Real var = 0.0;
        for (size_t i = 0; i < sources.size(); ++i) {
          const Real d = sr.sens[i][k][outIdx] * sources[i].sigma;
          var += d * d;
        }
        out.sigma[k] = std::sqrt(var);
      }
      if (!sr.states.empty()) out.finalState = sr.states.back();
      out.stats = sr.stats;
      break;
    }
    case SweepAnalysis::kPssDriven: {
      PSMN_CHECK(sc.period > 0.0, "PSS scenario needs a period");
      const PssResult pss = solvePssDriven(sys, sc.period, sc.pss);
      out.waveform = pss.waveform(outIdx);  // M periodic samples
      out.times.assign(pss.times.begin(),
                       pss.times.begin() + out.waveform.size());
      if (!pss.states.empty()) out.finalState = pss.states.front();
      out.stats = pss.stats;
      break;
    }
    case SweepAnalysis::kMcBatch: {
      PSMN_CHECK(sc.mcMeasure != nullptr, "MC scenario needs a measurement");
      MonteCarloEngine engine(sys, sc.mc);
      engine.setNetlistFactory(sc.make);
      out.mc = engine.run(sc.mcNames, sc.mcMeasure);
      break;
    }
  }
  out.ok = true;
}

/// One rung of the bounded escalation: tighter stepping, bigger Newton
/// budgets; the final rung may fall back to backward Euler.
void tightenScenario(SweepScenario& sc, bool finalAttempt) {
  const Real f = sc.retry.tightenFactor;
  if (sc.dt > 0.0 && f > 0.0 && f < 1.0) sc.dt *= f;
  sc.tran.maxNewton *= 2;
  sc.pss.maxNewton *= 2;
  sc.pss.maxShootingIterations += sc.pss.maxShootingIterations / 2;
  if (finalAttempt && sc.retry.robustFinalAttempt) {
    sc.tran.method = IntegrationMethod::kBackwardEuler;
  }
}

void resetAttemptOutputs(SweepResult& out) {
  out.times.clear();
  out.waveform.clear();
  out.sigma.clear();
  out.finalState.clear();
  out.mc = {};
  out.stats = {};
}

}  // namespace

std::vector<SweepResult> runScenarioSweep(
    std::span<const SweepScenario> scenarios, ThreadPool& pool,
    const SweepProgressFn& onProgress, bool captureCounters) {
  std::vector<SweepResult> results(scenarios.size());
  std::mutex progressMutex;
  // Chunk of 1: scenarios are coarse units of work, and slot order must
  // not batch them (a slow scenario would serialize its chunk-mates).
  pool.parallelFor(scenarios.size(), 1, [&](size_t b, size_t e, size_t) {
    for (size_t i = b; i < e; ++i) {
      SweepResult& out = results[i];
      out.index = i;
      out.name = scenarios[i].name;
      // Capture mode: a scenario-local registry shadows whatever binding
      // the pool installed, so every probe of this scenario's attempts —
      // all on this thread — lands in the local slot and travels with the
      // result instead of dying with the process.
      std::optional<TelemetryRegistry> localReg;
      std::optional<TelemetryScope> localScope;
      if (captureCounters) {
        localReg.emplace(1);
        localScope.emplace(*localReg, 0);
      }
      TraceSpan span(Phase::kScenario, "scenario", scenarios[i].name);
      telemetryCount(Counter::kScenariosRun);
      // Armed faults live for all of this scenario's attempts: the scope's
      // hit counters make injection a pure function of the scenario, and a
      // count=1 fault fires once and lets the retry pass.
      clearLastFiredFaultSite();
      std::optional<FaultScope> faults;
      if (!scenarios[i].faults.empty()) faults.emplace(scenarios[i].faults);

      SweepScenario attempt = scenarios[i];
      const int maxAttempts = 1 + std::max(0, scenarios[i].retry.maxRetries);
      for (int a = 0; a < maxAttempts; ++a) {
        out.attempts = a + 1;
        resetAttemptOutputs(out);
        // Scenario failures are data, not control flow: production sweeps
        // must deliver the passing corners even when one corner dies.
        try {
          runOneScenario(attempt, out);
          out.recovered = a > 0;
          out.error.clear();
          break;
        } catch (const Error& err) {
          out.ok = false;
          out.error = err.what();
          if (const FailureDiagnostics* d = err.diagnostics()) {
            out.diagnostics = *d;
            out.hasDiagnostics = true;
          }
        } catch (const std::exception& err) {
          out.ok = false;
          out.error = err.what();
        }
        if (a + 1 < maxAttempts) {
          telemetryCount(Counter::kScenarioRetries);
          tightenScenario(attempt, /*finalAttempt=*/a + 2 == maxAttempts);
        }
      }
      if (captureCounters) {
        out.hasCounters = true;
        out.counters = localReg->totals().counters;
      }
      if (onProgress) {
        std::lock_guard<std::mutex> lock(progressMutex);
        onProgress(out);
      }
    }
  });
  return results;
}

std::vector<SweepResult> runScenarioSweepBatched(
    const BatchSweepSpec& spec, ThreadPool& pool,
    const SweepProgressFn& onProgress) {
  PSMN_CHECK(spec.make != nullptr, "batched sweep needs a deck factory");
  PSMN_CHECK(spec.configure != nullptr,
             "batched sweep needs a scenario configurator");
  PSMN_CHECK(!spec.outNode.empty(), "batched sweep needs an output node");
  PSMN_CHECK(spec.batch.lanes > 0, "batched sweep needs at least one lane");
  std::vector<SweepResult> results(spec.count);
  if (spec.count == 0) return results;

  const size_t lanes = spec.batch.lanes;
  const size_t tiles = (spec.count + lanes - 1) / lanes;
  std::mutex progressMutex;
  // Tiles are the coarse work units: each owns a private netlist/system/
  // batch stack, so tile evaluation is self-contained and the sweep stays
  // deterministic for every pool jobs count, like the scalar sweep.
  pool.parallelFor(tiles, 1, [&](size_t tb, size_t te, size_t) {
    for (size_t tile = tb; tile < te; ++tile) {
      const size_t base = tile * lanes;
      const size_t laneN = std::min(lanes, spec.count - base);

      std::unique_ptr<Netlist> nl = spec.make();
      PSMN_CHECK(nl != nullptr, "batched sweep factory returned null");
      nl->finalize();
      MnaSystem sys(*nl);
      DeviceBatch db(*nl, laneN);
      for (size_t l = 0; l < laneN; ++l) {
        spec.configure(*nl, base + l);
        db.captureLane(l);
      }
      const int outIdx = nl->nodeIndex(spec.outNode);
      PSMN_CHECK(outIdx >= 0, "unknown output node '" + spec.outNode + "'");

      std::vector<BatchLaneOutcome> outcomes =
          runTransientBatch(sys, db, spec.t0, spec.t1, spec.dt, spec.tran);

      // Lanes the batch could not finish are re-run wholesale through the
      // scalar sweep: its first attempt fails bit-identically (same code,
      // same values), and its retry ladder then escalates exactly as a
      // scalar-only sweep would. The lane's batch output is discarded, so
      // kScenariosRun for these lanes is counted by the fallback alone.
      std::vector<SweepScenario> fallback;
      std::vector<size_t> fallbackIdx;
      for (size_t l = 0; l < laneN; ++l) {
        const size_t k = base + l;
        BatchLaneOutcome& lane = outcomes[l];
        if (!lane.ok) {
          SweepScenario sc;
          sc.name = spec.namePrefix + std::to_string(k);
          sc.make = [make = spec.make, configure = spec.configure, k]() {
            std::unique_ptr<Netlist> nl2 = make();
            nl2->finalize();
            configure(*nl2, k);
            return nl2;
          };
          sc.analysis = SweepAnalysis::kTransient;
          sc.outNode = spec.outNode;
          sc.t0 = spec.t0;
          sc.t1 = spec.t1;
          sc.dt = spec.dt;
          sc.tran = spec.tran;
          sc.retry = spec.retry;
          fallback.push_back(std::move(sc));
          fallbackIdx.push_back(k);
          continue;
        }
        SweepResult& out = results[k];
        out.index = k;
        out.name = spec.namePrefix + std::to_string(k);
        out.ok = true;
        out.attempts = 1;
        out.times = std::move(lane.result.times);
        out.waveform = lane.result.waveform(outIdx);
        out.finalState = std::move(lane.result.finalState);
        out.stats = lane.result.stats;
        telemetryCount(Counter::kScenariosRun);
        if (onProgress) {
          std::lock_guard<std::mutex> lock(progressMutex);
          onProgress(out);
        }
      }
      if (!fallback.empty()) {
        // Nested parallelFor runs inline on this slot — the fallback does
        // not disturb the deterministic tile schedule.
        std::vector<SweepResult> fixed =
            runScenarioSweep(fallback, pool, nullptr);
        for (size_t j = 0; j < fixed.size(); ++j) {
          fixed[j].index = fallbackIdx[j];
          results[fallbackIdx[j]] = std::move(fixed[j]);
          if (onProgress) {
            std::lock_guard<std::mutex> lock(progressMutex);
            onProgress(results[fallbackIdx[j]]);
          }
        }
      }
    }
  });
  return results;
}

}  // namespace psmn
