#include "runtime/ipc.hpp"

#include <fcntl.h>
#include <spawn.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

#include "util/fault_injection.hpp"
#include "util/status.hpp"
#include "util/wire.hpp"

extern char** environ;

namespace psmn {
namespace {

constexpr size_t kHeaderSize = 24;  // magic + type + length + checksum

void putLe32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(char((v >> (8 * i)) & 0xff));
}
void putLe64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(char((v >> (8 * i)) & 0xff));
}
uint32_t getLe32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= uint32_t(uint8_t(p[i])) << (8 * i);
  return v;
}
uint64_t getLe64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= uint64_t(uint8_t(p[i])) << (8 * i);
  return v;
}

}  // namespace

uint64_t ipcChecksum(std::string_view payload) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : payload) {
    h ^= uint8_t(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string buildFrame(uint32_t type, std::string_view payload,
                       bool forceCorrupt) {
  uint64_t checksum = ipcChecksum(payload);
  if (faultShouldFire("ipc.frame") || forceCorrupt) checksum ^= 0xbadull;
  std::string frame;
  frame.reserve(kHeaderSize + payload.size());
  putLe32(frame, kIpcMagic);
  putLe32(frame, type);
  putLe64(frame, payload.size());
  putLe64(frame, checksum);
  frame.append(payload.data(), payload.size());
  return frame;
}

FrameParser::Status FrameParser::next(uint32_t& type, std::string& payload) {
  if (corrupt_) return Status::kCorrupt;
  if (buf_.size() < kHeaderSize) return Status::kNeedMore;
  const char* p = buf_.data();
  if (getLe32(p) != kIpcMagic) {
    corrupt_ = true;
    return Status::kCorrupt;
  }
  const uint64_t length = getLe64(p + 8);
  if (length > kIpcMaxPayload) {
    corrupt_ = true;
    return Status::kCorrupt;
  }
  if (buf_.size() < kHeaderSize + length) return Status::kNeedMore;
  const uint64_t checksum = getLe64(p + 16);
  type = getLe32(p + 4);
  payload.assign(buf_, kHeaderSize, length);
  buf_.erase(0, kHeaderSize + length);
  if (ipcChecksum(payload) != checksum) {
    corrupt_ = true;
    return Status::kCorrupt;
  }
  return Status::kFrame;
}

bool readFrameBlocking(int fd, FrameParser& parser, uint32_t& type,
                       std::string& payload) {
  char buf[65536];
  for (;;) {
    switch (parser.next(type, payload)) {
      case FrameParser::Status::kFrame:
        return true;
      case FrameParser::Status::kCorrupt:
        throw Error("ipc: corrupt inbound frame");
      case FrameParser::Status::kNeedMore:
        break;
    }
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      parser.feed(buf, size_t(n));
      continue;
    }
    if (n == 0) {
      PSMN_CHECK(parser.buffered() == 0, "ipc: EOF inside a frame");
      return false;
    }
    if (errno == EINTR) continue;
    throw Error(std::string("ipc: read failed: ") + std::strerror(errno));
  }
}

bool writeFrameBlocking(int fd, uint32_t type, std::string_view payload,
                        bool forceCorrupt) {
  const std::string frame = buildFrame(type, payload, forceCorrupt);
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n =
        ::send(fd, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += size_t(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) return false;
    throw Error(std::string("ipc: write failed: ") + std::strerror(errno));
  }
  return true;
}

ChildProcess spawnWorkerProcess(const std::string& exe,
                                const std::vector<std::string>& args) {
  // SOCK_CLOEXEC keeps previously-spawned workers' parent-side fds from
  // leaking into this child (a leaked parent end would hold a sibling's
  // connection open past its death). dup2 below clears the flag on the
  // child's 0/1, so the child's own channel survives the exec.
  int sv[2];
  PSMN_CHECK(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) == 0,
             std::string("ipc: socketpair failed: ") + std::strerror(errno));
  const int parentFd = sv[0];
  const int childFd = sv[1];

  posix_spawn_file_actions_t actions;
  posix_spawn_file_actions_init(&actions);
  posix_spawn_file_actions_adddup2(&actions, childFd, 0);
  posix_spawn_file_actions_adddup2(&actions, childFd, 1);
  posix_spawn_file_actions_addclose(&actions, childFd);
  posix_spawn_file_actions_addclose(&actions, parentFd);

  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(exe.c_str()));
  for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  pid_t pid = -1;
  const int rc =
      ::posix_spawn(&pid, exe.c_str(), &actions, nullptr, argv.data(), environ);
  posix_spawn_file_actions_destroy(&actions);
  ::close(childFd);
  if (rc != 0) {
    ::close(parentFd);
    throw Error("ipc: cannot spawn worker '" + exe +
                "': " + std::strerror(rc));
  }
  const int flags = ::fcntl(parentFd, F_GETFL, 0);
  ::fcntl(parentFd, F_SETFL, flags | O_NONBLOCK);
  return ChildProcess{pid, parentFd};
}

int killAndReapChild(pid_t pid) {
  if (pid <= 0) return -1;
  ::kill(pid, SIGKILL);
  int status = 0;
  for (;;) {
    const pid_t r = ::waitpid(pid, &status, 0);
    if (r == pid) return status;
    if (r < 0 && errno == EINTR) continue;
    return -1;
  }
}

int reapChild(pid_t pid, int graceMs) {
  if (pid <= 0) return -1;
  // Poll for a voluntary exit; a worker that ignores shutdown is killed.
  for (int waited = 0; waited <= graceMs; waited += 5) {
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) return status;
    if (r < 0 && errno != EINTR) break;
    ::usleep(5000);
  }
  return killAndReapChild(pid);
}

std::string describeWaitStatus(int status) {
  if (status < 0) return "unknown exit";
  if (WIFEXITED(status)) {
    return "exit code " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    std::string s = "signal " + std::to_string(sig);
    if (const char* name = ::strsignal(sig)) s += std::string(" (") + name + ")";
    return s;
  }
  return "status " + std::to_string(status);
}

std::string selfExecutablePath() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  PSMN_CHECK(n > 0, "ipc: cannot resolve /proc/self/exe");
  return std::string(buf, size_t(n));
}

}  // namespace psmn
