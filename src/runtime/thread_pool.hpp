// Work-stealing thread pool and deterministic data-parallel helpers — the
// execution runtime under the scenario sweep, the parallel multi-RHS
// sensitivity columns, the shooting-PSS monodromy blocks, and the
// Monte-Carlo sample batches.
//
// Design rules (see docs/architecture.md "The parallel runtime"):
//   * ThreadPool(jobs) provides `jobs` concurrent execution slots: jobs-1
//     worker threads plus the calling thread, which always participates in
//     parallelFor. ThreadPool(1) spawns no threads and runs everything
//     inline, so `--jobs 1` is exactly the serial code path.
//   * parallelFor is a work-stealing scheduler at chunk granularity: the
//     [begin, end) chunks — boundaries a pure function of (n, chunk), never
//     of timing — are block-partitioned across per-slot deques up front.
//     A slot drains its own deque from the front (adjacent chunks run in
//     order on one slot, with warm per-slot scratch — placement the old
//     shared-cursor scheduler left to timing) and, when dry, steals from
//     the BACK of the other deques, so ragged chunk mixes stay balanced
//     to within one chunk-length. The body receives a `slot` in
//     [0, jobCount()): at most one chunk runs per slot at a time, so
//     per-slot scratch (LU solve buffers, injection vectors) needs no
//     locking — a stolen chunk simply runs with the thief's scratch.
//   * Stealing moves chunks between slots, never changes what a chunk
//     computes: each chunk's arithmetic reads only its own [begin, end)
//     range, so outputs are bit-identical for every jobs count and every
//     steal schedule.
//   * Failure propagation is deterministic: every chunk's exception is
//     captured (on whichever slot ran it, owner or thief), and after the
//     loop joins, the exception of the *lowest* failed chunk is rethrown —
//     independent of thread count and timing.
//   * parallelReduce combines per-chunk partials in chunk order, so
//     floating-point reductions are bit-identical across jobs counts.
//   * Nesting on the SAME pool is safe but serial: a parallelFor issued
//     from one of the pool's own workers runs its chunks on the calling
//     slot (inner drivers would queue behind busy workers). A different
//     pool's parallelFor fans out normally — its workers drain their own
//     queue independently, so no deadlock is possible.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.hpp"

namespace psmn {

class TelemetryRegistry;  // util/telemetry.hpp

class ThreadPool {
 public:
  /// `jobs` = number of concurrent execution slots (0 -> hardwareJobs()).
  explicit ThreadPool(size_t jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Concurrent execution slots: worker threads + the calling thread.
  size_t jobCount() const { return workers_.size() + 1; }

  /// std::thread::hardware_concurrency with a floor of 1.
  static size_t hardwareJobs();

  /// Attaches a metrics registry: every parallelFor driver binds its
  /// execution slot to the registry (TelemetryScope) for the duration of
  /// the loop, so probes fired from worker threads land in slot-local
  /// storage. The registry should have at least jobCount() slots (extra
  /// drivers clamp to the last slot). A driver that is already bound —
  /// nested inline parallelFor on a worker, or a caller that bound its own
  /// scope — keeps its existing binding. Pass nullptr to detach. The
  /// registry must outlive every loop run on this pool.
  void attachTelemetry(TelemetryRegistry* registry) { telemetry_ = registry; }
  TelemetryRegistry* telemetry() const { return telemetry_; }

  /// Enqueues a task on the work queue (fire-and-forget; exceptions from
  /// queued tasks terminate, so wrap fallible work in parallelFor instead).
  void post(std::function<void()> task);

  /// Runs body(begin, end, slot) over [0, n) in chunks of `chunk`, blocking
  /// until every chunk finished. Chunk boundaries are a pure function of
  /// (n, chunk), never of timing; idle slots steal queued chunks from busy
  /// ones. Rethrows the lowest failed chunk's exception after completion.
  void parallelFor(size_t n, size_t chunk,
                   const std::function<void(size_t, size_t, size_t)>& body);

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  TelemetryRegistry* telemetry_ = nullptr;
};

/// Number of per-slot scratch instances a column-block fan-out over n
/// independent columns needs: the pool's slot count, or 1 (serial) when
/// there is no pool or nothing to split. Size scratch with this; the
/// dispatch below derives the same count from the same (pool, n).
inline size_t columnBlockSlots(const ThreadPool* pool, size_t n) {
  return (pool != nullptr && n > 1) ? pool->jobCount() : 1;
}

/// Fans body(j0, j1, slot) over [0, n) in one contiguous block per slot —
/// the canonical dispatch for per-column-independent batched solves (the
/// multi-RHS sensitivity columns, the shooting monodromy block, the LPTV
/// B_k/V_k recursions). Serial (no pool, or n <= 1) runs inline as a
/// single block, which is bit-identical to any partition because every
/// column's arithmetic involves only that column.
inline void forEachColumnBlock(
    ThreadPool* pool, size_t n,
    const std::function<void(size_t, size_t, size_t)>& body) {
  const size_t slots = columnBlockSlots(pool, n);
  if (slots > 1) {
    pool->parallelFor(n, (n + slots - 1) / slots, body);
  } else if (n > 0) {
    body(0, n, 0);
  }
}

/// Deterministic chunked map-reduce: mapChunk(begin, end) produces one
/// partial per chunk (on any slot, in any order — stealing included);
/// partials are then combined strictly in chunk order, so the result is
/// bit-identical for every jobs count, including 1.
template <class R, class Map, class Combine>
R parallelReduce(ThreadPool& pool, size_t n, size_t chunk, R init,
                 const Map& mapChunk, const Combine& combine) {
  PSMN_CHECK(chunk > 0, "parallelReduce: chunk must be positive");
  if (n == 0) return init;
  const size_t numChunks = (n + chunk - 1) / chunk;
  std::vector<R> partials(numChunks);
  pool.parallelFor(n, chunk, [&](size_t begin, size_t end, size_t) {
    partials[begin / chunk] = mapChunk(begin, end);
  });
  R acc = std::move(init);
  for (size_t c = 0; c < numChunks; ++c) {
    acc = combine(std::move(acc), std::move(partials[c]));
  }
  return acc;
}

}  // namespace psmn
