#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <optional>

#include "util/telemetry.hpp"

namespace psmn {
namespace {

/// Shared state of one work-stealing parallelFor invocation. The chunk
/// indices are block-partitioned across per-slot deques before any driver
/// starts; drivers (queued tasks plus the calling thread) drain their own
/// deque from the front and steal from the back of the others when dry.
/// The last driver to retire signals completion.
struct LoopState {
  size_t n = 0;
  size_t chunk = 0;
  const std::function<void(size_t, size_t, size_t)>* body = nullptr;

  /// One deque of pending chunk indices per driver, each with its own
  /// lock. Chunks are coarse (a scenario, a column block), so a mutex per
  /// deque costs nothing measurable next to the chunk bodies and keeps the
  /// push/pop/steal protocol obviously correct.
  struct Slot {
    std::mutex mutex;
    std::deque<size_t> chunks;
  };
  std::vector<Slot> slots;

  std::atomic<size_t> activeDrivers{0};
  std::mutex mutex;
  std::condition_variable done;
  // Lowest failed chunk wins; guarded by `mutex` (failure path only).
  size_t failedChunk = SIZE_MAX;
  std::exception_ptr error;

  /// Pops the next chunk for `slot`: own deque front first, then a steal
  /// scan over the other deques' backs (starting at slot+1, wrapping).
  /// Returns SIZE_MAX when no queued work is left anywhere — in-flight
  /// chunks belong to drivers that have not retired yet.
  size_t nextChunk(size_t slot) {
    {
      Slot& own = slots[slot];
      std::lock_guard<std::mutex> lock(own.mutex);
      if (!own.chunks.empty()) {
        const size_t c = own.chunks.front();
        own.chunks.pop_front();
        return c;
      }
    }
    const size_t numSlots = slots.size();
    for (size_t k = 1; k < numSlots; ++k) {
      Slot& victim = slots[(slot + k) % numSlots];
      std::lock_guard<std::mutex> lock(victim.mutex);
      if (!victim.chunks.empty()) {
        const size_t c = victim.chunks.back();
        victim.chunks.pop_back();
        return c;
      }
    }
    return SIZE_MAX;
  }

  void drive(size_t slot) {
    for (;;) {
      const size_t c = nextChunk(slot);
      if (c == SIZE_MAX) break;
      const size_t begin = c * chunk;
      const size_t end = std::min(n, begin + chunk);
      try {
        (*body)(begin, end, slot);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (c < failedChunk) {
          failedChunk = c;
          error = std::current_exception();
        }
      }
    }
  }

  void retireDriver() {
    if (activeDrivers.fetch_sub(1) == 1) {
      std::lock_guard<std::mutex> lock(mutex);
      done.notify_all();
    }
  }
};

// The pool owning the current thread (null on non-worker threads). A
// parallelFor issued from one of the SAME pool's workers must not block on
// queued drivers (every other worker may be blocked the same way —
// deadlock); it runs inline on the current slot instead, the documented
// nested-parallelism semantics. A different pool's parallelFor is safe to
// fan out: its workers drain their own queue independently.
thread_local const void* tlsWorkerPool = nullptr;

}  // namespace

size_t ThreadPool::hardwareJobs() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(size_t jobs) {
  if (jobs == 0) jobs = hardwareJobs();
  workers_.reserve(jobs - 1);
  for (size_t i = 0; i + 1 < jobs; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::workerLoop() {
  tlsWorkerPool = this;  // the thread belongs to this pool for its lifetime
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallelFor(
    size_t n, size_t chunk,
    const std::function<void(size_t, size_t, size_t)>& body) {
  PSMN_CHECK(chunk > 0, "parallelFor: chunk must be positive");
  if (n == 0) return;
  const size_t numChunks = (n + chunk - 1) / chunk;
  const size_t drivers =
      tlsWorkerPool == this ? 1 : std::min(jobCount(), numChunks);
  // Bind the calling thread to registry slot 0 unless it already carries a
  // binding (a worker running a nested inline loop, or a caller that
  // installed its own TelemetryScope) — rebinding would misattribute the
  // outer scope's slot.
  std::optional<TelemetryScope> callerScope;
  if (telemetry_ != nullptr && !telemetryBound()) {
    callerScope.emplace(*telemetry_, 0);
  }
  if (drivers <= 1) {
    // Serial fast path: run inline on slot 0, exceptions propagate as-is.
    for (size_t begin = 0; begin < n; begin += chunk) {
      body(begin, std::min(n, begin + chunk), 0);
    }
    return;
  }

  auto state = std::make_shared<LoopState>();
  state->n = n;
  state->chunk = chunk;
  state->body = &body;
  state->slots = std::vector<LoopState::Slot>(drivers);
  // Deterministic initial distribution: contiguous chunk blocks, slot d
  // owning chunks [d*numChunks/drivers, (d+1)*numChunks/drivers). The
  // block partition keeps an owner's chunks adjacent (locality) and puts
  // the highest-indexed chunks at the back of each deque, which is where
  // thieves take from — so a steal grabs the chunk its owner would have
  // reached last.
  for (size_t d = 0; d < drivers; ++d) {
    const size_t lo = d * numChunks / drivers;
    const size_t hi = (d + 1) * numChunks / drivers;
    for (size_t c = lo; c < hi; ++c) state->slots[d].chunks.push_back(c);
  }
  state->activeDrivers.store(drivers);
  // Queue drivers for slots 1..drivers-1; the calling thread is slot 0 and
  // starts pulling chunks immediately, so a busy pool can never deadlock
  // this loop — worst case the caller runs every chunk itself (stealing
  // the queued drivers' blocks once its own is drained).
  TelemetryRegistry* const telemetry = telemetry_;
  for (size_t slot = 1; slot < drivers; ++slot) {
    post([state, slot, telemetry] {
      std::optional<TelemetryScope> scope;
      if (telemetry != nullptr && !telemetryBound()) {
        scope.emplace(*telemetry, slot);
      }
      state->drive(slot);
      state->retireDriver();
    });
  }
  state->drive(0);
  state->retireDriver();
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait(lock,
                     [&] { return state->activeDrivers.load() == 0; });
    if (state->error) std::rethrow_exception(state->error);
  }
}

}  // namespace psmn
