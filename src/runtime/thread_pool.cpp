#include "runtime/thread_pool.hpp"

#include <algorithm>

namespace psmn {
namespace {

/// Shared state of one parallelFor invocation. Drivers (queued tasks plus
/// the calling thread) pull chunks from `next` until exhausted; the last
/// driver to retire signals completion.
struct LoopState {
  size_t n = 0;
  size_t chunk = 0;
  const std::function<void(size_t, size_t, size_t)>* body = nullptr;
  std::atomic<size_t> next{0};
  std::atomic<size_t> activeDrivers{0};
  std::mutex mutex;
  std::condition_variable done;
  // Lowest failed chunk wins; guarded by `mutex` (failure path only).
  size_t failedChunk = SIZE_MAX;
  std::exception_ptr error;

  void drive(size_t slot) {
    for (;;) {
      const size_t begin = next.fetch_add(chunk);
      if (begin >= n) break;
      const size_t end = std::min(n, begin + chunk);
      try {
        (*body)(begin, end, slot);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        const size_t c = begin / chunk;
        if (c < failedChunk) {
          failedChunk = c;
          error = std::current_exception();
        }
      }
    }
  }

  void retireDriver() {
    if (activeDrivers.fetch_sub(1) == 1) {
      std::lock_guard<std::mutex> lock(mutex);
      done.notify_all();
    }
  }
};

// The pool owning the current thread (null on non-worker threads). A
// parallelFor issued from one of the SAME pool's workers must not block on
// queued drivers (every other worker may be blocked the same way —
// deadlock); it runs inline on the current slot instead, the documented
// nested-parallelism semantics. A different pool's parallelFor is safe to
// fan out: its workers drain their own queue independently.
thread_local const void* tlsWorkerPool = nullptr;

}  // namespace

size_t ThreadPool::hardwareJobs() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(size_t jobs) {
  if (jobs == 0) jobs = hardwareJobs();
  workers_.reserve(jobs - 1);
  for (size_t i = 0; i + 1 < jobs; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::workerLoop() {
  tlsWorkerPool = this;  // the thread belongs to this pool for its lifetime
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallelFor(
    size_t n, size_t chunk,
    const std::function<void(size_t, size_t, size_t)>& body) {
  PSMN_CHECK(chunk > 0, "parallelFor: chunk must be positive");
  if (n == 0) return;
  const size_t numChunks = (n + chunk - 1) / chunk;
  const size_t drivers =
      tlsWorkerPool == this ? 1 : std::min(jobCount(), numChunks);
  if (drivers <= 1) {
    // Serial fast path: run inline on slot 0, exceptions propagate as-is.
    for (size_t begin = 0; begin < n; begin += chunk) {
      body(begin, std::min(n, begin + chunk), 0);
    }
    return;
  }

  auto state = std::make_shared<LoopState>();
  state->n = n;
  state->chunk = chunk;
  state->body = &body;
  state->activeDrivers.store(drivers);
  // Queue drivers for slots 1..drivers-1; the calling thread is slot 0 and
  // starts pulling chunks immediately, so a busy pool can never deadlock
  // this loop — worst case the caller runs every chunk itself.
  for (size_t slot = 1; slot < drivers; ++slot) {
    post([state, slot] {
      state->drive(slot);
      state->retireDriver();
    });
  }
  state->drive(0);
  state->retireDriver();
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait(lock,
                     [&] { return state->activeDrivers.load() == 0; });
    if (state->error) std::rethrow_exception(state->error);
  }
}

}  // namespace psmn
