// Scenario sweep: fans one analysis specification across N scenarios on
// the execution runtime — corners, mismatch configurations, seeded MC
// batches — the production sign-off loop around the paper's single
// sensitivity solve.
//
// Ownership rules (docs/architecture.md "The parallel runtime"): every
// scenario owns its full stack — a private Netlist built by its factory on
// the evaluating slot, the MnaSystem over it, and the engine workspaces
// (TransientWorkspace/PssWorkspace) the analyses allocate internally.
// Nothing is shared between scenarios, so device mutation (mismatch
// deltas) and workspace reuse need no locking. Results land in input
// order; a failing scenario (ConvergenceError, NumericalError, ...) is
// reported in its SweepResult instead of aborting the sweep.
#pragma once

#include <array>
#include <functional>
#include <span>

#include "core/monte_carlo.hpp"
#include "engine/batch_eval.hpp"
#include "engine/transient.hpp"
#include "rf/pss.hpp"
#include "runtime/thread_pool.hpp"
#include "util/fault_injection.hpp"
#include "util/telemetry.hpp"

namespace psmn {

enum class SweepAnalysis {
  kTransient,             // waveform of `outNode`
  kTransientSensitivity,  // waveform + mismatch sigma(t) of `outNode`
  kPssDriven,             // periodic steady-state waveform of `outNode`
  kMcBatch,               // seeded Monte-Carlo batch (mcMeasure/mcNames)
};

/// Per-scenario bounded-escalation retry policy. Retry k (k = 1..
/// maxRetries) reruns the failed scenario with the timestep scaled by
/// tightenFactor^k and the Newton budgets doubled; when robustFinalAttempt
/// is set the last retry additionally falls back to the backward-Euler
/// integrator (the most heavily damped one). DC solves inside the analysis
/// escalate on their own through the gmin/source ladders into arclength
/// continuation (engine/dc). A scenario that still fails reports its
/// FailureDiagnostics in the SweepResult instead of aborting the sweep.
struct SweepRetryPolicy {
  int maxRetries = 0;        // extra attempts after the first (0 = off)
  Real tightenFactor = 0.5;  // dt multiplier per retry
  bool robustFinalAttempt = true;
};

/// Slot-confined reusable execution context for scenarios that share a
/// deck: the parsed netlist, the MnaSystem over it (whose cached CSC
/// stamping pattern is the expensive value-independent symbolic state),
/// and a transient workspace whose pattern caches, scatter maps, and
/// buffer allocations persist across runs. The process-sweep workers hand
/// one of these per (slot, deck) to SweepScenario::acquire; the sweep
/// resets the workspace per scenario (TransientWorkspace::resetForNewValues)
/// so results stay bit-identical to the fresh-stack `make` path.
struct ScenarioContext {
  std::unique_ptr<Netlist> netlist;
  std::unique_ptr<MnaSystem> sys;
  TransientWorkspace tran;
};

struct SweepScenario {
  std::string name;
  /// Builds this scenario's private netlist (finalize() is called by the
  /// sweep). Runs on the evaluating slot; must not touch shared state.
  NetlistFactory make;

  /// Alternative to `make`: returns a borrowed, slot-confined context
  /// whose netlist is already finalized and carries this scenario's
  /// device values (e.g. its mismatch draw applied). The callee keeps
  /// ownership and may hand the same context to every scenario on the
  /// slot — the sweep resets the workspace per scenario, never caches
  /// value-dependent state across scenarios, and supports the transient
  /// analyses only on this path (kTransient, kTransientSensitivity).
  /// Takes precedence over `make` when set. Called once per attempt, so
  /// the draw must be re-applied idempotently (applyMismatchSample is).
  std::function<ScenarioContext*()> acquire;

  SweepAnalysis analysis = SweepAnalysis::kTransient;
  /// Node whose waveform (and sigma(t)) is recorded; required for every
  /// analysis except kMcBatch.
  std::string outNode;

  // kTransient / kTransientSensitivity window and engine options. The
  // TranOptions::pool field is ignored here: scenarios already occupy the
  // pool, and nested parallelFor would serialize anyway.
  Real t0 = 0.0, t1 = 0.0, dt = 0.0;
  TranOptions tran;

  // kPssDriven.
  Real period = 0.0;
  PssOptions pss;

  // kMcBatch: the batch engine runs on this scenario's netlist; `make` is
  // reused as the engine's factory, so mc.jobs > 1 works — though inside a
  // sweep the scenario fan-out is normally parallelism enough.
  McOptions mc;
  std::vector<std::string> mcNames;
  McMeasure mcMeasure;

  /// Retry escalation when this scenario's analysis throws.
  SweepRetryPolicy retry;
  /// Deterministic fault injection (tests): the plan is armed in a
  /// FaultScope around ALL of this scenario's attempts on its evaluating
  /// slot. FaultScope is thread-confined and the hit counters persist
  /// across retries, so what fires is a pure function of the scenario —
  /// never of scheduling — and a count=1 fault fires on the first attempt
  /// only, exercising exactly one recovery.
  FaultPlan faults;
};

struct SweepResult {
  size_t index = 0;  // input-order position
  std::string name;
  bool ok = false;
  std::string error;  // exception text when !ok
  int attempts = 1;        // 1 + retries actually taken
  bool recovered = false;  // ok on a retry after at least one failure
  /// Structured post-mortem of the most recent failed attempt (whether or
  /// not a later retry recovered). Check `hasDiagnostics` before reading.
  bool hasDiagnostics = false;
  FailureDiagnostics diagnostics;

  /// Cost counters of the successful attempt (zero when !ok, and for
  /// kMcBatch, whose per-sample costs stay internal to the batch engine).
  SolveStats stats;

  /// Registry-counter deltas over ALL of this scenario's attempts,
  /// captured when the sweep runs in counter-capture mode (see
  /// runScenarioSweep). The process-sweep workers ship these with each
  /// result so the parent's merged registry totals match an in-process
  /// run exactly — including the counts of failed attempts, which
  /// `stats` deliberately excludes. Zero when capture is off.
  bool hasCounters = false;
  std::array<uint64_t, kNumCounters> counters{};

  // Waveform analyses.
  std::vector<Real> times;
  RealVector waveform;  // outNode at each time point
  RealVector sigma;     // kTransientSensitivity: mismatch sigma(t)
  RealVector finalState;

  // kMcBatch.
  McResult mc;
};

/// Called (serialized under an internal mutex) as each scenario finishes,
/// in completion order — progress reporting, not result consumption;
/// results still land in input order in the returned vector.
using SweepProgressFn = std::function<void(const SweepResult&)>;

/// Runs every scenario on the pool, one slot per scenario at a time, and
/// returns results in input order. Deterministic: scenario evaluation is
/// self-contained, so results are independent of the pool's job count (the
/// optional progress callback observes completion order, which is not).
///
/// With `captureCounters` set, each scenario's registry-counter deltas are
/// recorded into its SweepResult::counters instead of any bound registry:
/// a scenario-local one-slot registry is bound around the attempts (every
/// scenario runs wholly on its evaluating thread, so the local scope sees
/// exactly that scenario's probes). The process-sweep workers run in this
/// mode so completed scenarios' counters survive a later worker crash —
/// they travel with the result frame, not with the process.
std::vector<SweepResult> runScenarioSweep(
    std::span<const SweepScenario> scenarios, ThreadPool& pool,
    const SweepProgressFn& onProgress = nullptr,
    bool captureCounters = false);

/// Specification of a homogeneous transient sweep — N scenarios that share
/// one deck and differ only in mismatch/sweep parameter values — eligible
/// for scenario-batched evaluation (engine/batch_eval.hpp). `configure`
/// applies scenario k's parameter values to the shared netlist (it must be
/// idempotent; applyMismatchSample is).
struct BatchSweepSpec {
  NetlistFactory make;                              // shared deck factory
  std::function<void(Netlist&, size_t)> configure;  // scenario k's values
  size_t count = 0;
  std::string namePrefix = "mc";  // scenario k is named namePrefix + k
  std::string outNode;
  Real t0 = 0.0, t1 = 0.0, dt = 0.0;
  TranOptions tran;
  /// Applied by the scalar fallback only (see runScenarioSweepBatched).
  SweepRetryPolicy retry;
  BatchOptions batch;
};

/// Batched counterpart of runScenarioSweep for homogeneous transient
/// sweeps: scenarios are tiled into batches of `spec.batch.lanes` lanes,
/// tiles run in parallel on the pool (deterministic for every jobs count —
/// tiles are self-contained, results land in input order), and each tile
/// advances its lanes in lockstep through runTransientBatch. A lane that
/// fails in the batch is re-run WHOLESALE through the scalar
/// runScenarioSweep — including its retry escalation — so failed-scenario
/// results (error text, diagnostics, attempts, recovered) are exactly what
/// the scalar sweep would have reported. Successful lanes are bit-identical
/// to the scalar path by the batch evaluator's construction.
std::vector<SweepResult> runScenarioSweepBatched(
    const BatchSweepSpec& spec, ThreadPool& pool,
    const SweepProgressFn& onProgress = nullptr);

}  // namespace psmn
