// Scenario sweep: fans one analysis specification across N scenarios on
// the execution runtime — corners, mismatch configurations, seeded MC
// batches — the production sign-off loop around the paper's single
// sensitivity solve.
//
// Ownership rules (docs/architecture.md "The parallel runtime"): every
// scenario owns its full stack — a private Netlist built by its factory on
// the evaluating slot, the MnaSystem over it, and the engine workspaces
// (TransientWorkspace/PssWorkspace) the analyses allocate internally.
// Nothing is shared between scenarios, so device mutation (mismatch
// deltas) and workspace reuse need no locking. Results land in input
// order; a failing scenario (ConvergenceError, NumericalError, ...) is
// reported in its SweepResult instead of aborting the sweep.
#pragma once

#include <span>

#include "core/monte_carlo.hpp"
#include "engine/transient.hpp"
#include "rf/pss.hpp"
#include "runtime/thread_pool.hpp"

namespace psmn {

enum class SweepAnalysis {
  kTransient,             // waveform of `outNode`
  kTransientSensitivity,  // waveform + mismatch sigma(t) of `outNode`
  kPssDriven,             // periodic steady-state waveform of `outNode`
  kMcBatch,               // seeded Monte-Carlo batch (mcMeasure/mcNames)
};

struct SweepScenario {
  std::string name;
  /// Builds this scenario's private netlist (finalize() is called by the
  /// sweep). Runs on the evaluating slot; must not touch shared state.
  NetlistFactory make;

  SweepAnalysis analysis = SweepAnalysis::kTransient;
  /// Node whose waveform (and sigma(t)) is recorded; required for every
  /// analysis except kMcBatch.
  std::string outNode;

  // kTransient / kTransientSensitivity window and engine options. The
  // TranOptions::pool field is ignored here: scenarios already occupy the
  // pool, and nested parallelFor would serialize anyway.
  Real t0 = 0.0, t1 = 0.0, dt = 0.0;
  TranOptions tran;

  // kPssDriven.
  Real period = 0.0;
  PssOptions pss;

  // kMcBatch: the batch engine runs on this scenario's netlist; `make` is
  // reused as the engine's factory, so mc.jobs > 1 works — though inside a
  // sweep the scenario fan-out is normally parallelism enough.
  McOptions mc;
  std::vector<std::string> mcNames;
  McMeasure mcMeasure;
};

struct SweepResult {
  size_t index = 0;  // input-order position
  std::string name;
  bool ok = false;
  std::string error;  // exception text when !ok

  // Waveform analyses.
  std::vector<Real> times;
  RealVector waveform;  // outNode at each time point
  RealVector sigma;     // kTransientSensitivity: mismatch sigma(t)
  RealVector finalState;

  // kMcBatch.
  McResult mc;
};

/// Runs every scenario on the pool, one slot per scenario at a time, and
/// returns results in input order. Deterministic: scenario evaluation is
/// self-contained, so results are independent of the pool's job count.
std::vector<SweepResult> runScenarioSweep(
    std::span<const SweepScenario> scenarios, ThreadPool& pool);

}  // namespace psmn
