#include "runtime/process_sweep.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "circuit/parser.hpp"
#include "core/monte_carlo.hpp"
#include "runtime/ipc.hpp"
#include "util/telemetry.hpp"
#include "util/wire.hpp"

namespace psmn {
namespace {

using Clock = std::chrono::steady_clock;

// Protocol frame types. Parent -> worker: hello, deck, scenario,
// end-of-shard, shutdown. Worker -> parent: result.
enum FrameType : uint32_t {
  kFrameHello = 1,
  kFrameDeck = 2,
  kFrameScenario = 3,
  kFrameEndOfShard = 4,
  kFrameShutdown = 5,
  kFrameResult = 6,
};

// ---------------------------------------------------------------------------
// Wire codecs for the protocol payloads.

void writeTranOptions(WireWriter& w, const TranOptions& o) {
  w.u8(static_cast<uint8_t>(o.method));
  w.i32(o.maxNewton);
  w.f64(o.residualTol);
  w.f64(o.updateTol);
  w.f64(o.maxStep);
  w.f64(o.gshunt);
  w.boolean(o.useBreakpoints);
  w.boolean(o.storeStates);
  w.u8(static_cast<uint8_t>(o.solver));
  w.u64(o.sparseThreshold);
  w.u8(static_cast<uint8_t>(o.ordering));
  w.boolean(o.adaptive);
  w.f64(o.reltol);
  w.f64(o.abstol);
  w.f64(o.dtMin);
  w.f64(o.dtMax);
}

void readTranOptions(WireReader& r, TranOptions& o) {
  o.method = static_cast<IntegrationMethod>(r.u8());
  o.maxNewton = r.i32();
  o.residualTol = r.f64();
  o.updateTol = r.f64();
  o.maxStep = r.f64();
  o.gshunt = r.f64();
  o.useBreakpoints = r.boolean();
  o.storeStates = r.boolean();
  o.solver = static_cast<LinearSolverKind>(r.u8());
  o.sparseThreshold = r.u64();
  o.ordering = static_cast<OrderingKind>(r.u8());
  o.adaptive = r.boolean();
  o.reltol = r.f64();
  o.abstol = r.f64();
  o.dtMin = r.f64();
  o.dtMax = r.f64();
}

std::string encodeScenario(uint64_t globalIndex, const ProcessScenario& ps) {
  WireWriter w;
  w.u64(globalIndex);
  w.str(ps.name);
  w.u64(ps.deckIndex);
  w.u8(static_cast<uint8_t>(ps.analysis));
  w.str(ps.outNode);
  w.f64(ps.t0);
  w.f64(ps.t1);
  w.f64(ps.dt);
  writeTranOptions(w, ps.tran);
  w.boolean(ps.applyMismatch);
  w.u64(ps.seed);
  w.u64(ps.sampleIndex);
  w.i32(ps.retry.maxRetries);
  w.f64(ps.retry.tightenFactor);
  w.boolean(ps.retry.robustFinalAttempt);
  wireWrite(w, ps.faults);
  return w.take();
}

uint64_t decodeScenario(WireReader& r, ProcessScenario& ps) {
  const uint64_t globalIndex = r.u64();
  ps.name = r.str();
  ps.deckIndex = r.u64();
  ps.analysis = static_cast<SweepAnalysis>(r.u8());
  ps.outNode = r.str();
  ps.t0 = r.f64();
  ps.t1 = r.f64();
  ps.dt = r.f64();
  readTranOptions(r, ps.tran);
  ps.applyMismatch = r.boolean();
  ps.seed = r.u64();
  ps.sampleIndex = r.u64();
  ps.retry.maxRetries = r.i32();
  ps.retry.tightenFactor = r.f64();
  ps.retry.robustFinalAttempt = r.boolean();
  wireRead(r, ps.faults);
  return globalIndex;
}

std::string encodeResult(uint64_t globalIndex, const SweepResult& res) {
  WireWriter w;
  w.u64(globalIndex);
  w.str(res.name);
  w.boolean(res.ok);
  w.str(res.error);
  w.i32(res.attempts);
  w.boolean(res.recovered);
  w.boolean(res.hasDiagnostics);
  if (res.hasDiagnostics) wireWrite(w, res.diagnostics);
  wireWrite(w, res.stats);
  w.boolean(res.hasCounters);
  if (res.hasCounters) {
    w.u64vec(std::span<const uint64_t>(res.counters.data(), kNumCounters));
  }
  w.f64vec(res.times);
  w.f64vec(res.waveform);
  w.f64vec(res.sigma);
  w.f64vec(res.finalState);
  return w.take();
}

uint64_t decodeResult(WireReader& r, SweepResult& res) {
  const uint64_t globalIndex = r.u64();
  res.name = r.str();
  res.ok = r.boolean();
  res.error = r.str();
  res.attempts = r.i32();
  res.recovered = r.boolean();
  res.hasDiagnostics = r.boolean();
  if (res.hasDiagnostics) wireRead(r, res.diagnostics);
  wireRead(r, res.stats);
  res.hasCounters = r.boolean();
  if (res.hasCounters) {
    const auto v = r.u64vec();
    PSMN_CHECK(v.size() == kNumCounters, "ipc: bad counter vector size");
    std::copy(v.begin(), v.end(), res.counters.begin());
  }
  res.times = r.f64vec();
  res.waveform = r.f64vec();
  res.sigma = r.f64vec();
  res.finalState = r.f64vec();
  return globalIndex;
}

// ---------------------------------------------------------------------------
// Worker side.

/// Manual fault check against the hello-shipped plan: worker-level sites
/// fire by result-write ordinal, counted process-wide (results are
/// written from pool threads, where a thread-confined FaultScope armed on
/// the protocol thread would never be consulted).
bool planFires(const FaultPlan& plan, const char* site, int hit) {
  for (const FaultPoint& p : plan.points) {
    if (p.site == site && hit >= p.firstHit &&
        (p.count < 0 || hit < p.firstHit + p.count)) {
      return true;
    }
  }
  return false;
}

/// Per-thread shard cache: one reusable ScenarioContext per deck hash.
/// Thread-local (not worker-global) so every pool slot owns its private
/// netlist/system/workspace — the same no-sharing rule the in-process
/// sweep's per-scenario stacks follow, with no locking.
std::unordered_map<uint64_t, std::unique_ptr<ScenarioContext>>&
threadContextCache() {
  static thread_local std::unordered_map<uint64_t,
                                         std::unique_ptr<ScenarioContext>>
      cache;
  return cache;
}

SweepScenario toSweepScenario(const ProcessScenario& ps,
                              std::shared_ptr<const std::string> deck,
                              uint64_t deckHash) {
  SweepScenario sc;
  sc.name = ps.name;
  sc.analysis = ps.analysis;
  sc.outNode = ps.outNode;
  sc.t0 = ps.t0;
  sc.t1 = ps.t1;
  sc.dt = ps.dt;
  sc.tran = ps.tran;
  sc.retry = ps.retry;
  sc.faults = ps.faults;
  sc.acquire = [deck = std::move(deck), deckHash, apply = ps.applyMismatch,
                seed = ps.seed, k = ps.sampleIndex]() -> ScenarioContext* {
    auto& slot = threadContextCache()[deckHash];
    if (!slot) {
      slot = std::make_unique<ScenarioContext>();
      ParsedCircuit pc = parseNetlistString(*deck);
      slot->netlist = std::move(pc.netlist);
      slot->netlist->finalize();
      slot->sys = std::make_unique<MnaSystem>(*slot->netlist);
    }
    // The context is shared across this slot's scenarios, so the draw (or
    // its absence) must overwrite whatever the previous scenario left.
    const auto& params = slot->netlist->mismatchParams();
    if (apply) {
      applyMismatchSample(params, nullptr, seed, k);
    } else {
      for (const auto& p : params) p.device->setMismatchDelta(p.index, 0.0);
    }
    return slot.get();
  };
  return sc;
}

int workerLoop(int inFd, int outFd) {
  FrameParser inParser;  // persists across reads: frames arrive in bursts
  uint32_t type = 0;
  std::string payload;
  if (!readFrameBlocking(inFd, inParser, type, payload)) return 0;
  PSMN_CHECK(type == kFrameHello, "worker: expected hello frame");
  WireReader hello(payload);
  const uint32_t version = hello.u32();
  PSMN_CHECK(version == kIpcProtocolVersion,
             "worker: protocol version mismatch");
  const uint64_t jobs = hello.u64();
  FaultPlan workerFaults;
  wireRead(hello, workerFaults);

  ThreadPool pool(jobs == 0 ? 1 : jobs);
  std::unordered_map<uint64_t,
                     std::pair<std::shared_ptr<const std::string>, uint64_t>>
      decks;  // deckIndex -> (text, hash)
  std::vector<uint64_t> globalIndex;
  std::vector<SweepScenario> batch;
  std::atomic<int> resultWrites{0};

  // Streams one completed scenario back per progress callback (serialized
  // by the sweep). A completed-but-unsent scenario dying with the process
  // is exactly what the "worker.exit" site injects; the parent's resend
  // makes it cost one bounded retry.
  const SweepProgressFn streamResult = [&](const SweepResult& r) {
    const int ordinal = resultWrites.fetch_add(1);
    if (planFires(workerFaults, "worker.exit", ordinal)) {
      ::raise(SIGKILL);
    }
    const bool corrupt = planFires(workerFaults, "ipc.frame", ordinal);
    const std::string bytes = encodeResult(globalIndex[r.index], r);
    if (!writeFrameBlocking(outFd, kFrameResult, bytes, corrupt)) {
      // Parent is gone; nothing left to compute for.
      std::_Exit(0);
    }
  };

  for (;;) {
    if (!readFrameBlocking(inFd, inParser, type, payload)) {
      return 0;  // parent gone
    }
    switch (type) {
      case kFrameShutdown:
        return 0;
      case kFrameDeck: {
        WireReader r(payload);
        const uint64_t index = r.u64();
        auto text = std::make_shared<const std::string>(r.str());
        const uint64_t hash = ipcChecksum(*text);
        decks[index] = {std::move(text), hash};
        break;
      }
      case kFrameScenario: {
        WireReader r(payload);
        ProcessScenario ps;
        const uint64_t gi = decodeScenario(r, ps);
        const auto it = decks.find(ps.deckIndex);
        PSMN_CHECK(it != decks.end(), "worker: scenario before its deck");
        PSMN_CHECK(ps.analysis == SweepAnalysis::kTransient ||
                       ps.analysis == SweepAnalysis::kTransientSensitivity,
                   "worker: unsupported analysis kind");
        globalIndex.push_back(gi);
        batch.push_back(
            toSweepScenario(ps, it->second.first, it->second.second));
        break;
      }
      case kFrameEndOfShard: {
        if (!batch.empty()) {
          runScenarioSweep(batch, pool, streamResult,
                           /*captureCounters=*/true);
          batch.clear();
          globalIndex.clear();
        }
        break;
      }
      default:
        PSMN_CHECK(false, "worker: unexpected frame type " +
                              std::to_string(type));
    }
  }
}

// ---------------------------------------------------------------------------
// Parent side.

struct WorkerSlot {
  ChildProcess proc;
  FrameParser parser;
  std::string outBuf;             // serialized frames awaiting write
  std::deque<uint64_t> pending;   // outstanding global indices, send order
  bool shutdownSent = false;
  bool dead = false;  // reaped; no fd, no pending work
  bool progressedThisSpawn = false;
  int spawnsWithoutProgress = 0;
  Clock::time_point lastActivity;
};

}  // namespace

std::vector<SweepResult> runProcessSweep(
    std::span<const std::string> decks,
    std::span<const ProcessScenario> scenarios, const ProcessSweepOptions& opt,
    TelemetryRegistry* registry, const SweepProgressFn& onProgress) {
  const size_t n = scenarios.size();
  std::vector<SweepResult> results(n);
  if (n == 0) return results;
  for (const ProcessScenario& ps : scenarios) {
    PSMN_CHECK(ps.analysis == SweepAnalysis::kTransient ||
                   ps.analysis == SweepAnalysis::kTransientSensitivity,
               "process sweep supports transient analyses only");
    PSMN_CHECK(ps.deckIndex < decks.size(),
               "scenario deckIndex out of range");
  }

  const size_t procs = std::min(std::max<size_t>(1, opt.procs), n);
  const std::string exe =
      opt.workerExe.empty() ? selfExecutablePath() : opt.workerExe;
  std::vector<std::string> args = opt.workerArgs;
  args.push_back("--worker");

  std::vector<bool> done(n, false);
  std::vector<int> infraStrikes(n, 0);
  size_t completed = 0;

  const auto finishScenario = [&](uint64_t i, SweepResult&& out) {
    results[i] = std::move(out);
    done[i] = true;
    ++completed;
    if (registry != nullptr && results[i].hasCounters) {
      registry->addExternalCounters(results[i].counters);
    }
    if (onProgress) onProgress(results[i]);
  };

  std::vector<WorkerSlot> workers(procs);
  // Deterministic contiguous block shards: worker p owns
  // [p*n/P, (p+1)*n/P). The partition is a pure function of (n, P);
  // results merge by global index, so the topology never shows in the
  // output.
  for (size_t p = 0; p < procs; ++p) {
    const size_t lo = p * n / procs;
    const size_t hi = (p + 1) * n / procs;
    for (size_t i = lo; i < hi; ++i) workers[p].pending.push_back(i);
  }

  // Serializes one spawn's full outbound conversation: hello, the decks
  // the shard references, every outstanding scenario, end-of-shard. Used
  // both for the initial spawn and for crash respawns (which resend the
  // outstanding scenarios UNCHANGED — infrastructure retries must not
  // alter numerical options or results would depend on crash timing).
  const auto loadOutbound = [&](WorkerSlot& w) {
    WireWriter hello;
    hello.u32(kIpcProtocolVersion);
    hello.u64(opt.jobsPerWorker);
    wireWrite(hello, opt.workerFaults);
    w.outBuf += buildFrame(kFrameHello, hello.bytes());
    std::unordered_set<size_t> sentDecks;
    for (uint64_t i : w.pending) {
      const size_t di = scenarios[i].deckIndex;
      if (!sentDecks.insert(di).second) continue;
      WireWriter d;
      d.u64(di);
      d.str(decks[di]);
      w.outBuf += buildFrame(kFrameDeck, d.bytes());
    }
    for (uint64_t i : w.pending) {
      w.outBuf += buildFrame(kFrameScenario, encodeScenario(i, scenarios[i]));
    }
    w.outBuf += buildFrame(kFrameEndOfShard, {});
  };

  const auto spawn = [&](WorkerSlot& w) {
    w.parser = FrameParser();
    w.outBuf.clear();
    w.shutdownSent = false;
    w.progressedThisSpawn = false;
    w.proc = spawnWorkerProcess(exe, args);
    loadOutbound(w);
    w.lastActivity = Clock::now();
  };

  // Worker failure: kill + reap, strike the first outstanding scenario
  // (the only one whose processing the parent cannot rule out as the
  // cause; each failure strikes exactly one, bounding total respawns by
  // the sum of per-scenario budgets), then respawn with the remainder.
  const auto failWorker = [&](WorkerSlot& w, const std::string& reason) {
    const int status = killAndReapChild(w.proc.pid);
    ::close(w.proc.fd);
    w.proc = ChildProcess{};
    std::string describe = reason;
    if (status >= 0) describe += ", " + describeWaitStatus(status);

    if (w.progressedThisSpawn) {
      w.spawnsWithoutProgress = 0;
    } else {
      ++w.spawnsWithoutProgress;
    }

    const auto failScenario = [&](uint64_t i, const std::string& why) {
      SweepResult out;
      out.index = i;
      out.name = scenarios[i].name;
      out.ok = false;
      out.error = "worker failure: " + why;
      out.attempts = std::max(1, infraStrikes[i]);
      out.hasDiagnostics = true;
      out.diagnostics.analysis = "process-sweep";
      out.diagnostics.stage = reason;
      finishScenario(i, std::move(out));
    };

    if (!w.pending.empty()) {
      const uint64_t suspect = w.pending.front();
      ++infraStrikes[suspect];
      if (infraStrikes[suspect] > scenarios[suspect].retry.maxRetries) {
        w.pending.pop_front();
        failScenario(suspect, describe);
      }
    }
    if (w.spawnsWithoutProgress >= std::max(1, opt.maxSpawnsWithoutProgress)) {
      // The worker binary cannot even start (bad exe, immediate death):
      // fail the whole remaining shard instead of burning every
      // scenario's budget one respawn at a time.
      while (!w.pending.empty()) {
        const uint64_t i = w.pending.front();
        w.pending.pop_front();
        infraStrikes[i] = std::max(infraStrikes[i], 1);
        failScenario(i, "worker cannot start (" + describe + ")");
      }
    }
    if (w.pending.empty()) {
      w.dead = true;
      return;
    }
    spawn(w);
  };

  // Drains and verifies one result frame; false demands a worker failure.
  const auto handleResult = [&](WorkerSlot& w, const std::string& payload) {
    SweepResult out;
    uint64_t idx = 0;
    try {
      WireReader r(payload);
      idx = decodeResult(r, out);
    } catch (const Error&) {
      return false;
    }
    if (idx >= n || done[idx]) return false;
    const auto it = std::find(w.pending.begin(), w.pending.end(), idx);
    if (it == w.pending.end()) return false;
    w.pending.erase(it);
    out.index = idx;
    // Infrastructure strikes ride on top of the worker's own attempt
    // count; a scenario that succeeded after a crash-forced resend is a
    // recovery even when the rerun itself passed first try.
    out.attempts += infraStrikes[idx];
    if (out.ok && infraStrikes[idx] > 0) out.recovered = true;
    w.progressedThisSpawn = true;
    w.lastActivity = Clock::now();
    finishScenario(idx, std::move(out));
    return true;
  };

  const auto flushOutbound = [&](WorkerSlot& w) {
    while (!w.outBuf.empty()) {
      const ssize_t k = ::send(w.proc.fd, w.outBuf.data(), w.outBuf.size(),
                               MSG_NOSIGNAL);
      if (k > 0) {
        w.outBuf.erase(0, size_t(k));
        continue;
      }
      if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      if (k < 0 && errno == EINTR) continue;
      return false;  // EPIPE and friends: the worker died mid-send
    }
    return true;
  };

  for (auto& w : workers) spawn(w);

  std::vector<pollfd> fds;
  std::vector<size_t> fdOwner;
  char readBuf[65536];
  while (completed < n) {
    fds.clear();
    fdOwner.clear();
    for (size_t p = 0; p < procs; ++p) {
      WorkerSlot& w = workers[p];
      if (w.dead) continue;
      // A finished worker gets its shutdown queued here; it exits and the
      // EOF below reaps it.
      if (w.pending.empty() && !w.shutdownSent) {
        w.outBuf += buildFrame(kFrameShutdown, {});
        w.shutdownSent = true;
      }
      pollfd pf{};
      pf.fd = w.proc.fd;
      pf.events = POLLIN;
      if (!w.outBuf.empty()) pf.events |= POLLOUT;
      fds.push_back(pf);
      fdOwner.push_back(p);
    }
    if (fds.empty()) break;  // everything remaining was failed as data

    const int timeoutMs = opt.inactivityTimeout > 0.0 ? 50 : -1;
    const int rc = ::poll(fds.data(), nfds_t(fds.size()), timeoutMs);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("process sweep: poll failed: ") +
                  std::strerror(errno));
    }

    for (size_t k = 0; k < fds.size(); ++k) {
      WorkerSlot& w = workers[fdOwner[k]];
      if (w.dead) continue;
      const short rev = fds[k].revents;
      if (rev & POLLOUT) {
        if (!flushOutbound(w)) {
          failWorker(w, "worker died during send");
          continue;
        }
      }
      if (rev & (POLLIN | POLLHUP | POLLERR)) {
        bool failed = false;
        bool eof = false;
        for (;;) {
          const ssize_t got = ::read(w.proc.fd, readBuf, sizeof readBuf);
          if (got > 0) {
            w.parser.feed(readBuf, size_t(got));
            continue;
          }
          if (got == 0) {
            eof = true;
            break;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          if (errno == EINTR) continue;
          failed = true;
          break;
        }
        uint32_t type = 0;
        std::string payload;
        while (!failed) {
          const auto st = w.parser.next(type, payload);
          if (st == FrameParser::Status::kNeedMore) break;
          if (st == FrameParser::Status::kCorrupt) {
            failWorker(w, "corrupt result frame");
            failed = true;
            break;
          }
          if (type != kFrameResult || !handleResult(w, payload)) {
            failWorker(w, "protocol violation from worker");
            failed = true;
            break;
          }
        }
        if (failed) continue;
        if (eof) {
          if (w.pending.empty() && w.shutdownSent) {
            // Clean exit after shutdown.
            ::close(w.proc.fd);
            reapChild(w.proc.pid, /*graceMs=*/2000);
            w.proc = ChildProcess{};
            w.dead = true;
          } else {
            failWorker(w, "worker exited unexpectedly");
          }
          continue;
        }
      }
    }

    if (opt.inactivityTimeout > 0.0) {
      const auto now = Clock::now();
      for (auto& w : workers) {
        if (w.dead || w.pending.empty()) continue;
        const double idle =
            std::chrono::duration<double>(now - w.lastActivity).count();
        if (idle > opt.inactivityTimeout) {
          failWorker(w, "inactivity timeout");
        }
      }
    }
  }

  // Sweep complete (or everything failed as data): shut the survivors
  // down. Remaining outbound bytes are best-effort — the workers exit on
  // EOF anyway when the fd closes.
  for (auto& w : workers) {
    if (w.dead) continue;
    if (!w.shutdownSent) {
      w.outBuf += buildFrame(kFrameShutdown, {});
      w.shutdownSent = true;
    }
    flushOutbound(w);
    ::close(w.proc.fd);
    reapChild(w.proc.pid, /*graceMs=*/2000);
    w.dead = true;
  }
  return results;
}

int runSweepWorker(int inFd, int outFd) {
  try {
    return workerLoop(inFd, outFd);
  } catch (const std::exception& err) {
    // stderr passes through to the parent's terminal for diagnostics;
    // stdout is the frame channel and stays untouched.
    std::fprintf(stderr, "worker: %s\n", err.what());
    return 3;
  }
}

}  // namespace psmn
