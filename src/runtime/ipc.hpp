// Crash-tolerant IPC for the multi-process sweep: length-prefixed,
// checksummed frames over a socketpair, plus worker-process spawning.
//
// Frame layout (all little-endian, fixed 24-byte header):
//
//   [u32 magic "PSW1"] [u32 type] [u64 payload length] [u64 FNV-1a-64
//   checksum of the payload] [payload bytes]
//
// The checksum is what makes a truncated write, an interleaved write from
// a dying worker, or an injected corruption ("ipc.frame" fault site)
// DETECTABLE instead of silently parsed: the coordinator treats a corrupt
// frame exactly like a worker crash — kill, respawn, retry the
// outstanding scenarios under the per-scenario budget. Nothing downstream
// ever consumes unverified bytes (util/wire.hpp re-validates lengths
// inside the payload on top of this).
//
// Transport: one AF_UNIX stream socketpair per worker, the child end
// dup2'd onto the worker's stdin AND stdout. A socketpair (not a pipe)
// because the parent writes with send(MSG_NOSIGNAL) — a dead worker then
// yields EPIPE instead of a process-killing SIGPIPE, without mutating
// global signal disposition. Workers use blocking reads/writes; the
// parent runs its ends non-blocking under poll() (process_sweep.cpp).
//
// Linux-only by charter (spawning via posix_spawn, /proc/self/exe for the
// re-entry path); the library proper stays portable — only the process
// sweep depends on this header.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace psmn {

inline constexpr uint32_t kIpcMagic = 0x31575350;  // "PSW1"
/// Bumped on any wire-format change; exchanged in the hello frame so a
/// stale worker binary fails loudly instead of misparsing.
inline constexpr uint32_t kIpcProtocolVersion = 1;
/// Upper bound on a frame payload; a corrupt length past this is rejected
/// before any allocation.
inline constexpr uint64_t kIpcMaxPayload = uint64_t{1} << 30;

/// FNV-1a 64-bit over the payload bytes.
uint64_t ipcChecksum(std::string_view payload);

/// Assembles a complete frame. Probes the "ipc.frame" fault site (and
/// honors `forceCorrupt`, the worker-side injection path, where fault
/// scopes cannot reach — see util/fault_injection.hpp): a firing probe
/// flips checksum bits so the receiver classifies the frame as corrupt.
std::string buildFrame(uint32_t type, std::string_view payload,
                       bool forceCorrupt = false);

/// Incremental frame parser over a byte stream fed in arbitrary chunks
/// (the parent's non-blocking reads). One instance per connection.
class FrameParser {
 public:
  enum class Status {
    kNeedMore,  // no complete frame buffered yet
    kFrame,     // a verified frame was produced
    kCorrupt,   // bad magic / implausible length / checksum mismatch
  };

  void feed(const char* data, size_t n) { buf_.append(data, n); }

  /// Extracts the next verified frame. After kCorrupt the stream is
  /// unrecoverable by design — resynchronizing inside a byte stream can
  /// misparse attacker- or garbage-controlled data; the caller kills the
  /// connection instead.
  Status next(uint32_t& type, std::string& payload);

  size_t buffered() const { return buf_.size(); }

 private:
  std::string buf_;
  bool corrupt_ = false;
};

/// Blocking single-frame read for the worker side. `parser` is the
/// connection's persistent parser — reads land in it, so bytes beyond the
/// returned frame stay buffered for the next call (frames arrive in
/// bursts; a per-call parser would silently drop them). Returns false on
/// clean EOF; throws Error on a corrupt frame or I/O error (a worker with
/// a corrupt inbound stream cannot do anything useful but die — the
/// parent treats the death as the failure signal).
bool readFrameBlocking(int fd, FrameParser& parser, uint32_t& type,
                       std::string& payload);

/// Blocking full write of one frame. Returns false when the peer is gone
/// (EPIPE/ECONNRESET); throws Error on other I/O errors.
bool writeFrameBlocking(int fd, uint32_t type, std::string_view payload,
                        bool forceCorrupt = false);

/// A spawned worker process and the parent's end of its socketpair.
struct ChildProcess {
  pid_t pid = -1;
  int fd = -1;  // parent end: read results, write commands
};

/// Spawns `exe args...` with the child end of a fresh socketpair dup2'd
/// onto the child's fd 0 and 1 (stderr passes through for diagnostics).
/// The parent end is returned O_NONBLOCK. Throws Error on spawn failure.
ChildProcess spawnWorkerProcess(const std::string& exe,
                                const std::vector<std::string>& args);

/// SIGKILLs (if still alive) and reaps the child; returns the raw waitpid
/// status, or -1 if the child could not be reaped. Closes nothing — the
/// caller owns the fd.
int killAndReapChild(pid_t pid);

/// Reaps without killing (for children expected to exit on their own
/// after a shutdown frame); falls back to SIGKILL after `graceMs`.
int reapChild(pid_t pid, int graceMs);

/// Human-readable waitpid status ("exit code 86", "signal 9 (SIGKILL)").
std::string describeWaitStatus(int status);

/// Absolute path of the running executable (/proc/self/exe); the default
/// worker re-entry binary.
std::string selfExecutablePath();

}  // namespace psmn
