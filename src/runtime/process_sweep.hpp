// Multi-process scenario sweep: rung (a) of the distributed sweep
// service (ROADMAP "Distributed sweep service"). Shards a scenario list
// across N worker PROCESSES — each a re-entry of the calling binary with
// `--worker` — ships serialized scenario specs over crash-tolerant framed
// sockets (runtime/ipc.hpp), and merges the streamed results back in
// input order.
//
// Why a process boundary when the ThreadPool already scales: address-space
// isolation (a worker segfault, OOM kill, or injected crash costs a
// bounded per-scenario retry, never the sweep), and the serialization
// contract this forces is exactly rung (b)'s network protocol.
//
// Determinism contract (docs/architecture.md "Distributed sweep"): a
// scenario's results, SolveStats, and captured registry counters are a
// pure function of the scenario spec — workers rebuild each scenario's
// device values from its (seed, sampleIndex) draw, and the shard cache
// reuses only value-independent state (parsed deck, MNA stamping pattern,
// workspace allocations; TransientWorkspace::resetForNewValues forces a
// full first factorization per scenario). Sharding is a fixed contiguous
// block partition and results merge by global index, so a sweep's output
// is BYTE-identical across every jobs × procs topology, including runs
// where crashes force retries.
//
// Failure model: a worker death (crash, injected "worker.exit" SIGKILL,
// corrupt frame, inactivity timeout) strikes ONE outstanding scenario —
// the first unacknowledged one, the only one whose processing the parent
// cannot rule out as the cause — and the worker is respawned with all
// outstanding scenarios resent UNCHANGED. Infrastructure retries must not
// tighten the numerical options, or a crash would change results;
// in-worker numerical failures keep the existing SweepRetryPolicy
// escalation ladder, applied inside the worker by runScenarioSweep. A
// scenario struck past its retry budget becomes a failed SweepResult with
// a "process-sweep" FailureDiagnostics — failures are data here too.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "runtime/scenario_sweep.hpp"

namespace psmn {

class TelemetryRegistry;

/// Serializable scenario specification — the subset of SweepScenario a
/// process boundary can carry (no std::function factories: workers
/// rebuild the netlist from the deck text + the mismatch draw). Supported
/// analyses: kTransient and kTransientSensitivity.
struct ProcessScenario {
  std::string name;
  /// Index into the deck-text table passed to runProcessSweep. Workers
  /// cache parse + MNA pattern + workspace per (slot, deck).
  size_t deckIndex = 0;
  SweepAnalysis analysis = SweepAnalysis::kTransient;
  std::string outNode;
  Real t0 = 0.0, t1 = 0.0, dt = 0.0;
  /// Engine options (initialState/pool do not serialize and stay unset).
  TranOptions tran;
  /// Mismatch draw: when `applyMismatch` is set the worker applies
  /// applyMismatchSample(seed, sampleIndex) — the MC engine's stream, so
  /// scenario k reproduces MC sample k bit-exactly.
  bool applyMismatch = false;
  uint64_t seed = 1;
  uint64_t sampleIndex = 0;
  /// In-worker numerical retry ladder AND the parent-side budget for
  /// infrastructure (crash/timeout/corruption) retries.
  SweepRetryPolicy retry;
  /// Numerical fault plan, armed around the scenario's attempts inside
  /// the worker (tests).
  FaultPlan faults;
};

struct ProcessSweepOptions {
  /// Worker process count (capped at the scenario count; >= 1).
  size_t procs = 1;
  /// ThreadPool jobs inside each worker.
  size_t jobsPerWorker = 1;
  /// Worker binary, exec'd with `--worker` appended; empty selects the
  /// calling binary itself (/proc/self/exe) — netlist_runner's re-entry.
  std::string workerExe;
  /// Extra argv before --worker (none needed for the standard re-entry).
  std::vector<std::string> workerArgs;
  /// Per-worker inactivity timeout in seconds while results are
  /// outstanding; 0 disables. Expiry is treated as a worker failure
  /// (kill, strike, respawn).
  double inactivityTimeout = 0.0;
  /// Consecutive spawns of one worker slot that die without delivering a
  /// single result before the parent stops respawning it and fails its
  /// remaining scenarios — the broken-binary fast path that keeps a
  /// misconfigured workerExe from burning the whole n*(retries+1) budget.
  int maxSpawnsWithoutProgress = 3;
  /// Process-wide fault plan shipped in the hello frame and checked by
  /// the worker at its result writes ("worker.exit", "ipc.frame" — see
  /// util/fault_injection.hpp on why these are not FaultScope-armed).
  FaultPlan workerFaults;
};

/// Runs the scenarios across worker processes and returns results in
/// input order. `decks` is the table ProcessScenario::deckIndex points
/// into; only decks a worker's shard references are shipped to it. When
/// `registry` is non-null every result's captured counters are folded in
/// (addExternalCounters) from the calling thread, keeping registry totals
/// equal to an in-process run's. `onProgress` fires per completed
/// scenario in completion order, like runScenarioSweep's.
std::vector<SweepResult> runProcessSweep(
    std::span<const std::string> decks,
    std::span<const ProcessScenario> scenarios, const ProcessSweepOptions& opt,
    TelemetryRegistry* registry = nullptr,
    const SweepProgressFn& onProgress = nullptr);

/// The worker side: speaks the protocol on (inFd, outFd) until shutdown
/// or EOF. `netlist_runner --worker` calls this on (0, 1) — stdout
/// carries frames, so worker code must never printf. Returns the process
/// exit code.
int runSweepWorker(int inFd, int outFd);

}  // namespace psmn
