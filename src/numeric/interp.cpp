#include "numeric/interp.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace psmn {

Real interpLinear(std::span<const Real> xs, std::span<const Real> ys, Real x) {
  PSMN_CHECK(xs.size() == ys.size() && !xs.empty(),
             "interpLinear: bad input lengths");
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const size_t hi = static_cast<size_t>(it - xs.begin());
  const size_t lo = hi - 1;
  const Real t = (x - xs[lo]) / (xs[hi] - xs[lo]);
  return ys[lo] + t * (ys[hi] - ys[lo]);
}

Real crossingPoint(Real x0, Real y0, Real x1, Real y1, Real level) {
  PSMN_CHECK(y0 != y1, "crossingPoint: degenerate bracket");
  const Real t = (level - y0) / (y1 - y0);
  return x0 + t * (x1 - x0);
}

}  // namespace psmn
