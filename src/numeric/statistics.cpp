#include "numeric/statistics.hpp"

#include <cmath>
#include <numbers>

#include "util/status.hpp"

namespace psmn {

void MomentAccumulator::add(Real x) {
  // Pebay's single-pass update of central moments.
  const size_t n1 = n_;
  n_ += 1;
  const Real delta = x - mean_;
  const Real deltaN = delta / static_cast<Real>(n_);
  const Real deltaN2 = deltaN * deltaN;
  const Real term1 = delta * deltaN * static_cast<Real>(n1);
  mean_ += deltaN;
  m4_ += term1 * deltaN2 * static_cast<Real>(n_ * n_ - 3 * n_ + 3) +
         6.0 * deltaN2 * m2_ - 4.0 * deltaN * m3_;
  m3_ += term1 * deltaN * static_cast<Real>(n_ - 2) - 3.0 * deltaN * m2_;
  m2_ += term1;
}

void MomentAccumulator::merge(const MomentAccumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const Real na = static_cast<Real>(n_), nb = static_cast<Real>(other.n_);
  const Real nab = na + nb;
  const Real delta = other.mean_ - mean_;
  const Real mean = mean_ + delta * nb / nab;
  const Real m2 = m2_ + other.m2_ + delta * delta * na * nb / nab;
  const Real m3 = m3_ + other.m3_ +
                  delta * delta * delta * na * nb * (na - nb) / (nab * nab) +
                  3.0 * delta * (na * other.m2_ - nb * m2_) / nab;
  const Real d2 = delta * delta;
  const Real m4 =
      m4_ + other.m4_ +
      d2 * d2 * na * nb * (na * na - na * nb + nb * nb) / (nab * nab * nab) +
      6.0 * d2 * (na * na * other.m2_ + nb * nb * m2_) / (nab * nab) +
      4.0 * delta * (na * other.m3_ - nb * m3_) / nab;
  n_ += other.n_;
  mean_ = mean;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
}

Real MomentAccumulator::variance() const {
  return n_ > 1 ? m2_ / static_cast<Real>(n_ - 1) : 0.0;
}

Real MomentAccumulator::stddev() const { return std::sqrt(variance()); }

Real MomentAccumulator::thirdCentralMoment() const {
  return n_ > 0 ? m3_ / static_cast<Real>(n_) : 0.0;
}

Real MomentAccumulator::skewness() const {
  const Real sd = stddev();
  return sd > 0.0 ? thirdCentralMoment() / (sd * sd * sd) : 0.0;
}

Real MomentAccumulator::normalizedSkewness() const {
  const Real sd = stddev();
  if (sd <= 0.0) return 0.0;
  const Real mu3 = thirdCentralMoment();
  return std::copysign(std::cbrt(std::fabs(mu3)), mu3) / sd;
}

void CorrelationAccumulator::add(Real x, Real y) {
  n_ += 1;
  const Real n = static_cast<Real>(n_);
  const Real dx = x - meanX_;
  const Real dy = y - meanY_;
  meanX_ += dx / n;
  meanY_ += dy / n;
  m2x_ += dx * (x - meanX_);
  m2y_ += dy * (y - meanY_);
  cxy_ += dx * (y - meanY_);
}

Real CorrelationAccumulator::covariance() const {
  return n_ > 1 ? cxy_ / static_cast<Real>(n_ - 1) : 0.0;
}

Real CorrelationAccumulator::varianceX() const {
  return n_ > 1 ? m2x_ / static_cast<Real>(n_ - 1) : 0.0;
}

Real CorrelationAccumulator::varianceY() const {
  return n_ > 1 ? m2y_ / static_cast<Real>(n_ - 1) : 0.0;
}

Real CorrelationAccumulator::correlation() const {
  const Real denom = std::sqrt(varianceX() * varianceY());
  return denom > 0.0 ? covariance() / denom : 0.0;
}

Real mean(std::span<const Real> xs) {
  PSMN_CHECK(!xs.empty(), "mean of empty span");
  Real acc = 0.0;
  for (Real x : xs) acc += x;
  return acc / static_cast<Real>(xs.size());
}

Real variance(std::span<const Real> xs) {
  MomentAccumulator acc;
  for (Real x : xs) acc.add(x);
  return acc.variance();
}

Real stddev(std::span<const Real> xs) { return std::sqrt(variance(xs)); }

Real correlation(std::span<const Real> xs, std::span<const Real> ys) {
  PSMN_CHECK(xs.size() == ys.size(), "correlation: length mismatch");
  CorrelationAccumulator acc;
  for (size_t i = 0; i < xs.size(); ++i) acc.add(xs[i], ys[i]);
  return acc.correlation();
}

Real sigmaConfidence95(size_t n) {
  if (n < 2) return std::numeric_limits<Real>::infinity();
  return 1.96 / std::sqrt(2.0 * static_cast<Real>(n - 1));
}

Real gaussPdf(Real x, Real mu, Real sigma) {
  const Real z = (x - mu) / sigma;
  return std::exp(-0.5 * z * z) /
         (sigma * std::sqrt(2.0 * std::numbers::pi_v<Real>));
}

}  // namespace psmn
