// Deterministic random number generation for Monte-Carlo runs.
//
// Each Monte-Carlo sample derives its own stream from (seed, sampleIndex)
// via SplitMix64, so results are reproducible and independent of evaluation
// order (and therefore of any future parallelization of the sample loop).
#pragma once

#include <cstdint>
#include <random>

#include "numeric/types.hpp"

namespace psmn {

/// SplitMix64: converts a (seed, stream) pair into a well-mixed 64-bit seed.
uint64_t splitMix64(uint64_t state);

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  /// Deterministic per-sample stream.
  static Rng forSample(uint64_t seed, uint64_t sampleIndex);

  /// Standard normal draw.
  Real gaussian() { return normal_(engine_); }
  /// N(mu, sigma^2) draw.
  Real gaussian(Real mu, Real sigma) { return mu + sigma * gaussian(); }
  /// Uniform in [0,1).
  Real uniform() { return uniform_(engine_); }
  /// Uniform in [lo,hi).
  Real uniform(Real lo, Real hi) { return lo + (hi - lo) * uniform(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::normal_distribution<Real> normal_{0.0, 1.0};
  std::uniform_real_distribution<Real> uniform_{0.0, 1.0};
};

}  // namespace psmn
