// Sparse matrix support: a triplet (COO) accumulator that MNA assembly
// writes into, and a compressed-sparse-column (CSC) form consumed by the
// sparse LU factorization.
//
// Duplicate triplet entries are summed, matching how device stamps
// accumulate conductances onto shared matrix positions.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "numeric/dense_matrix.hpp"
#include "numeric/types.hpp"

namespace psmn {

template <class T>
struct Triplet {
  int row = 0;
  int col = 0;
  T value{};
};

template <class T>
class SparseMatrix {
 public:
  SparseMatrix() = default;
  SparseMatrix(size_t rows, size_t cols) : rows_(rows), cols_(cols) {}

  /// Builds CSC from triplets, summing duplicates.
  static SparseMatrix fromTriplets(size_t rows, size_t cols,
                                   std::span<const Triplet<T>> triplets);

  static SparseMatrix fromDense(const Matrix<T>& dense, double dropTol = 0.0);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nonZeros() const { return values_.size(); }

  std::span<const int> colPointers() const { return colPtr_; }
  std::span<const int> rowIndices() const { return rowIdx_; }
  std::span<const T> values() const { return values_; }
  std::span<T> values() { return values_; }

  /// Pointer to the stored value at (row, col), or nullptr when the
  /// position is not part of the sparsity pattern. Branch-light binary
  /// search within the column (row indices are kept sorted per column);
  /// inline because the MNA assembly path calls it for every device stamp.
  T* find(int row, int col) {
    if (row < 0 || col < 0 || static_cast<size_t>(col) >= cols_) {
      return nullptr;
    }
    const int* base = rowIdx_.data() + colPtr_[col];
    size_t len = static_cast<size_t>(colPtr_[col + 1] - colPtr_[col]);
    while (len > 1) {
      const size_t half = len / 2;
      base += (base[half - 1] < row) ? half : 0;
      len -= half;
    }
    if (len == 0 || *base != row) return nullptr;
    return values_.data() + (base - rowIdx_.data());
  }
  const T* find(int row, int col) const {
    return const_cast<SparseMatrix*>(this)->find(row, col);
  }

  /// Zeroes the stored values, keeping the pattern. Used to reset a cached
  /// assembly pattern before re-stamping.
  void zeroValues() { std::fill(values_.begin(), values_.end(), T{}); }

  /// y = A x.
  std::vector<T> multiply(std::span<const T> x) const;

  /// y = A x into caller storage (no allocation).
  void multiplyInto(std::span<const T> x, std::span<T> y) const;

  Matrix<T> toDense() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<int> colPtr_;  // size cols+1
  std::vector<int> rowIdx_;  // size nnz, sorted within each column
  std::vector<T> values_;    // size nnz
};

using RealSparse = SparseMatrix<Real>;
using CplxSparse = SparseMatrix<Cplx>;

/// Merges the patterns of two same-shape matrices into `out` (values
/// zeroed) and fills the scatter maps from each input's value slots into
/// `out`'s, so callers can re-assemble `out = f(a, b)` allocation-free:
///   outVals[aToOut[p]] += aVals[p]; outVals[bToOut[p]] += coef*bVals[p].
/// Shared by the transient workspace's Jacobian (J = G + a*C), the LPTV
/// step matrices (K = G + (1/h + jw) C), and the PPV backward sweep.
template <class T, class U>
void mergeSparsePatterns(const SparseMatrix<U>& a, const SparseMatrix<U>& b,
                         SparseMatrix<T>& out, std::vector<int>& aToOut,
                         std::vector<int>& bToOut);

/// Cached-pattern assembler for the ubiquitous `M = A + coef*B` stamp over
/// two same-shape sparse inputs (transient Jacobian J = G + a*C, LPTV step
/// matrix K = G + (1/h + jw)*C, PPV sweep J = G + C/h). Re-stamping into
/// the cached merged pattern is allocation-free; a pattern change in the
/// inputs (detected by nonzero count — evalSparse patterns only ever grow)
/// rebuilds the merge. Callers holding a factorization of `matrix` must
/// treat it as stale whenever assemble() returns true.
template <class T>
struct MergedSparseAssembler {
  SparseMatrix<T> matrix;

  /// Stamps matrix = a + coef*b; returns true when the cached pattern had
  /// to be rebuilt (symbolic factorizations of `matrix` are then stale).
  bool assemble(const SparseMatrix<Real>& a, const SparseMatrix<Real>& b,
                T coef) {
    bool rebuilt = false;
    if (a.nonZeros() != aMap_.size() || b.nonZeros() != bMap_.size()) {
      mergeSparsePatterns(a, b, matrix, aMap_, bMap_);
      rebuilt = true;
    }
    matrix.zeroValues();
    const auto av = a.values();
    const auto bv = b.values();
    const auto mv = matrix.values();
    for (size_t k = 0; k < av.size(); ++k) mv[aMap_[k]] += av[k];
    for (size_t k = 0; k < bv.size(); ++k) mv[bMap_[k]] += coef * bv[k];
    return rebuilt;
  }

 private:
  std::vector<int> aMap_, bMap_;
};

}  // namespace psmn
