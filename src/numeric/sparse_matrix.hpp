// Sparse matrix support: a triplet (COO) accumulator that MNA assembly
// writes into, and a compressed-sparse-column (CSC) form consumed by the
// sparse LU factorization.
//
// Duplicate triplet entries are summed, matching how device stamps
// accumulate conductances onto shared matrix positions.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "numeric/dense_matrix.hpp"
#include "numeric/types.hpp"

namespace psmn {

template <class T>
struct Triplet {
  int row = 0;
  int col = 0;
  T value{};
};

template <class T>
class SparseMatrix {
 public:
  SparseMatrix() = default;
  SparseMatrix(size_t rows, size_t cols) : rows_(rows), cols_(cols) {}

  /// Builds CSC from triplets, summing duplicates.
  static SparseMatrix fromTriplets(size_t rows, size_t cols,
                                   std::span<const Triplet<T>> triplets);

  static SparseMatrix fromDense(const Matrix<T>& dense, double dropTol = 0.0);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nonZeros() const { return values_.size(); }

  std::span<const int> colPointers() const { return colPtr_; }
  std::span<const int> rowIndices() const { return rowIdx_; }
  std::span<const T> values() const { return values_; }
  std::span<T> values() { return values_; }

  /// Pointer to the stored value at (row, col), or nullptr when the
  /// position is not part of the sparsity pattern. Branch-light binary
  /// search within the column (row indices are kept sorted per column);
  /// inline because the MNA assembly path calls it for every device stamp.
  T* find(int row, int col) {
    if (row < 0 || col < 0 || static_cast<size_t>(col) >= cols_) {
      return nullptr;
    }
    const int* base = rowIdx_.data() + colPtr_[col];
    size_t len = static_cast<size_t>(colPtr_[col + 1] - colPtr_[col]);
    while (len > 1) {
      const size_t half = len / 2;
      base += (base[half - 1] < row) ? half : 0;
      len -= half;
    }
    if (len == 0 || *base != row) return nullptr;
    return values_.data() + (base - rowIdx_.data());
  }
  const T* find(int row, int col) const {
    return const_cast<SparseMatrix*>(this)->find(row, col);
  }

  /// Zeroes the stored values, keeping the pattern. Used to reset a cached
  /// assembly pattern before re-stamping.
  void zeroValues() { std::fill(values_.begin(), values_.end(), T{}); }

  /// y = A x.
  std::vector<T> multiply(std::span<const T> x) const;

  /// y = A x into caller storage (no allocation).
  void multiplyInto(std::span<const T> x, std::span<T> y) const;

  Matrix<T> toDense() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<int> colPtr_;  // size cols+1
  std::vector<int> rowIdx_;  // size nnz, sorted within each column
  std::vector<T> values_;    // size nnz
};

using RealSparse = SparseMatrix<Real>;
using CplxSparse = SparseMatrix<Cplx>;

}  // namespace psmn
