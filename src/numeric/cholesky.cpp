#include "numeric/cholesky.hpp"

#include <cmath>

namespace psmn {

bool isSymmetric(const RealMatrix& c, double tol) {
  if (c.rows() != c.cols()) return false;
  for (size_t i = 0; i < c.rows(); ++i)
    for (size_t j = i + 1; j < c.cols(); ++j)
      if (std::abs(c(i, j) - c(j, i)) > tol) return false;
  return true;
}

RealMatrix choleskyFactor(const RealMatrix& c, double semidefTol) {
  PSMN_CHECK(c.rows() == c.cols(), "cholesky requires a square matrix");
  PSMN_CHECK(isSymmetric(c, semidefTol * maxAbs(c) + 1e-300),
             "cholesky requires a symmetric matrix");
  const size_t n = c.rows();
  const double scale = maxAbs(c);
  RealMatrix a(n, n);
  for (size_t j = 0; j < n; ++j) {
    double diag = c(j, j);
    for (size_t k = 0; k < j; ++k) diag -= a(j, k) * a(j, k);
    if (diag < -semidefTol * scale) {
      throw NumericalError("cholesky: matrix is not positive semi-definite");
    }
    const double ajj = diag > 0.0 ? std::sqrt(diag) : 0.0;
    a(j, j) = ajj;
    for (size_t i = j + 1; i < n; ++i) {
      double acc = c(i, j);
      for (size_t k = 0; k < j; ++k) acc -= a(i, k) * a(j, k);
      // A zero pivot with a nonzero off-diagonal would mean an indefinite
      // matrix; within tolerance we zero the column (semi-definite case).
      a(i, j) = (ajj > 0.0) ? acc / ajj : 0.0;
      if (ajj == 0.0 && std::abs(acc) > semidefTol * scale) {
        throw NumericalError("cholesky: matrix is not positive semi-definite");
      }
    }
  }
  return a;
}

}  // namespace psmn
