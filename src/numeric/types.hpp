// Scalar types used throughout psmn.
#pragma once

#include <complex>
#include <vector>

namespace psmn {

using Real = double;
using Cplx = std::complex<double>;

using RealVector = std::vector<Real>;
using CplxVector = std::vector<Cplx>;

inline constexpr Real kBoltzmann = 1.380649e-23;  // J/K
inline constexpr Real kRoomTempK = 300.15;        // 27 C, SPICE default
inline constexpr Real kElemCharge = 1.602176634e-19;  // C

}  // namespace psmn
