// Scalar types used throughout psmn.
#pragma once

#include <complex>
#include <vector>

namespace psmn {

using Real = double;
using Cplx = std::complex<double>;

using RealVector = std::vector<Real>;
using CplxVector = std::vector<Cplx>;

/// Caller-owned scratch for the LU triangular-solve paths. The scratch
/// overloads of DenseLU/SparseLU::solve*InPlace are const and touch only
/// the factorization (read-only), the RHS, and this object — so concurrent
/// solves against one shared factorization are safe when every thread
/// passes its own scratch (the parallel multi-RHS sensitivity relies on
/// this). The scratch-less overloads use a member buffer instead and stay
/// single-threaded per object.
template <class T>
struct LuSolveScratch {
  std::vector<T> rhs, x;
};

inline constexpr Real kBoltzmann = 1.380649e-23;  // J/K
inline constexpr Real kRoomTempK = 300.15;        // 27 C, SPICE default
inline constexpr Real kElemCharge = 1.602176634e-19;  // C

}  // namespace psmn
