#include "numeric/dense_lu.hpp"

#include <algorithm>
#include <cmath>

#include "util/fault_injection.hpp"
#include "util/telemetry.hpp"

namespace psmn {

template <class T>
void DenseLU<T>::factor(const Matrix<T>& a) {
  PSMN_CHECK(a.rows() == a.cols(), "LU requires a square matrix");
  if (faultShouldFire("dense_lu.factor")) {
    throw NumericalError("dense LU: injected pivot failure");
  }
  const size_t n = a.rows();
  lu_ = a;
  perm_.resize(n);
  for (size_t i = 0; i < n; ++i) perm_[i] = static_cast<int>(i);

  double minPivot = std::numeric_limits<double>::infinity();
  double maxPivot = 0.0;

  for (size_t k = 0; k < n; ++k) {
    // Partial pivoting: find the largest magnitude entry in column k.
    size_t pivotRow = k;
    double best = std::abs(lu_(k, k));
    for (size_t i = k + 1; i < n; ++i) {
      const double mag = std::abs(lu_(i, k));
      if (mag > best) {
        best = mag;
        pivotRow = i;
      }
    }
    if (best == 0.0) {
      throw NumericalError("dense LU: singular matrix at column " +
                           std::to_string(k));
    }
    if (pivotRow != k) {
      std::swap(perm_[k], perm_[pivotRow]);
      for (size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(pivotRow, j));
    }
    const T pivot = lu_(k, k);
    minPivot = std::min(minPivot, std::abs(pivot));
    maxPivot = std::max(maxPivot, std::abs(pivot));
    for (size_t i = k + 1; i < n; ++i) {
      const T factor = lu_(i, k) / pivot;
      lu_(i, k) = factor;
      if (factor == T{}) continue;
      const auto krow = lu_.row(k);
      auto irow = lu_.row(i);
      for (size_t j = k + 1; j < n; ++j) irow[j] -= factor * krow[j];
    }
  }
  pivotRatio_ = (maxPivot > 0.0) ? minPivot / maxPivot : 0.0;
  telemetryCount(Counter::kDenseFactors);
}

template <class T>
void DenseLU<T>::solveInPlace(std::span<T> b) const {
  solveInPlace(b, scratch_);
}

template <class T>
void DenseLU<T>::solveInPlace(std::span<T> b,
                              LuSolveScratch<T>& scratch) const {
  const size_t n = size();
  PSMN_CHECK(b.size() == n, "LU solve: rhs size mismatch");
  telemetryCount(Counter::kSolveColumns);
  // Apply permutation.
  scratch.x.resize(n);
  std::span<T> x = scratch.x;
  for (size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  // Forward substitution (L has unit diagonal).
  for (size_t i = 1; i < n; ++i) {
    T acc = x[i];
    const auto irow = lu_.row(i);
    for (size_t j = 0; j < i; ++j) acc -= irow[j] * x[j];
    x[i] = acc;
  }
  // Backward substitution.
  for (size_t ii = n; ii-- > 0;) {
    T acc = x[ii];
    const auto irow = lu_.row(ii);
    for (size_t j = ii + 1; j < n; ++j) acc -= irow[j] * x[j];
    x[ii] = acc / irow[ii];
  }
  std::copy(x.begin(), x.end(), b.begin());
}

template <class T>
std::vector<T> DenseLU<T>::solve(std::span<const T> b) const {
  std::vector<T> x(b.begin(), b.end());
  solveInPlace(x);
  return x;
}

template <class T>
void DenseLU<T>::solveTransposedInPlace(std::span<T> b) const {
  solveTransposedInPlace(b, scratch_);
}

template <class T>
void DenseLU<T>::solveTransposedInPlace(std::span<T> b,
                                        LuSolveScratch<T>& scratch) const {
  // A = P^T L U  =>  A^T x = b  <=>  U^T L^T P x = b.
  const size_t n = size();
  PSMN_CHECK(b.size() == n, "LU solveT: rhs size mismatch");
  telemetryCount(Counter::kSolveColumns);
  std::vector<T>& x = scratch.x;
  x.assign(b.begin(), b.end());
  // Solve U^T y = b (U^T is lower triangular).
  for (size_t i = 0; i < n; ++i) {
    T acc = x[i];
    for (size_t j = 0; j < i; ++j) acc -= lu_(j, i) * x[j];
    x[i] = acc / lu_(i, i);
  }
  // Solve L^T z = y (L^T is upper triangular, unit diagonal).
  for (size_t ii = n; ii-- > 0;) {
    T acc = x[ii];
    for (size_t j = ii + 1; j < n; ++j) acc -= lu_(j, ii) * x[j];
    x[ii] = acc;
  }
  // x = P^T z: row perm_[i] of the original matrix became row i, so the
  // solution component perm_[i] receives z[i].
  for (size_t i = 0; i < n; ++i) b[perm_[i]] = x[i];
}

template <class T>
std::vector<T> DenseLU<T>::solveTransposed(std::span<const T> b) const {
  std::vector<T> x(b.begin(), b.end());
  solveTransposedInPlace(x);
  return x;
}

template <class T>
Matrix<T> DenseLU<T>::solveMatrix(const Matrix<T>& b) const {
  PSMN_CHECK(b.rows() == size(), "LU solveMatrix: shape mismatch");
  Matrix<T> x(b.rows(), b.cols());
  std::vector<T> col(b.rows());
  for (size_t j = 0; j < b.cols(); ++j) {
    for (size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
    solveInPlace(col);
    for (size_t i = 0; i < b.rows(); ++i) x(i, j) = col[i];
  }
  return x;
}

template <class T>
void DenseLU<T>::solveManyInPlace(std::span<T> b, size_t nrhs) const {
  solveManyInPlace(b, nrhs, scratch_);
}

template <class T>
void DenseLU<T>::solveManyInPlace(std::span<T> b, size_t nrhs,
                                  LuSolveScratch<T>& scratch) const {
  const size_t n = size();
  PSMN_CHECK(b.size() == n * nrhs, "LU solve: rhs block size mismatch");
  for (size_t r = 0; r < nrhs; ++r) {
    solveInPlace(b.subspan(r * n, n), scratch);
  }
}

template <class T>
void DenseLU<T>::solveTransposedManyInPlace(std::span<T> b,
                                            size_t nrhs) const {
  solveTransposedManyInPlace(b, nrhs, scratch_);
}

template <class T>
void DenseLU<T>::solveTransposedManyInPlace(std::span<T> b, size_t nrhs,
                                            LuSolveScratch<T>& scratch) const {
  const size_t n = size();
  PSMN_CHECK(b.size() == n * nrhs, "LU solveT: rhs block size mismatch");
  for (size_t r = 0; r < nrhs; ++r) {
    solveTransposedInPlace(b.subspan(r * n, n), scratch);
  }
}

template <class T>
double DenseLU<T>::absDeterminant() const {
  double logDet = 0.0;
  for (size_t i = 0; i < size(); ++i) logDet += std::log(std::abs(lu_(i, i)));
  return std::exp(logDet);
}

template <class T>
std::vector<T> luSolve(const Matrix<T>& a, std::span<const T> b) {
  return DenseLU<T>(a).solve(b);
}

template <class T>
Matrix<T> inverse(const Matrix<T>& a) {
  return DenseLU<T>(a).solveMatrix(Matrix<T>::identity(a.rows()));
}

template class DenseLU<Real>;
template class DenseLU<Cplx>;
template std::vector<Real> luSolve(const Matrix<Real>&, std::span<const Real>);
template std::vector<Cplx> luSolve(const Matrix<Cplx>&, std::span<const Cplx>);
template Matrix<Real> inverse(const Matrix<Real>&);
template Matrix<Cplx> inverse(const Matrix<Cplx>&);

}  // namespace psmn
