#include "numeric/sparse_matrix.hpp"

#include <algorithm>
#include <cmath>

namespace psmn {

template <class T>
SparseMatrix<T> SparseMatrix<T>::fromTriplets(
    size_t rows, size_t cols, std::span<const Triplet<T>> triplets) {
  SparseMatrix m(rows, cols);
  // Count entries per column (with duplicates for now).
  std::vector<Triplet<T>> sorted(triplets.begin(), triplets.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.col != b.col ? a.col < b.col : a.row < b.row;
  });
  m.colPtr_.assign(cols + 1, 0);
  for (size_t i = 0; i < sorted.size();) {
    size_t j = i + 1;
    T sum = sorted[i].value;
    while (j < sorted.size() && sorted[j].col == sorted[i].col &&
           sorted[j].row == sorted[i].row) {
      sum += sorted[j].value;
      ++j;
    }
    PSMN_CHECK(sorted[i].row >= 0 && sorted[i].row < static_cast<int>(rows) &&
                   sorted[i].col >= 0 && sorted[i].col < static_cast<int>(cols),
               "triplet index out of range");
    m.rowIdx_.push_back(sorted[i].row);
    m.values_.push_back(sum);
    m.colPtr_[sorted[i].col + 1]++;
    i = j;
  }
  for (size_t c = 0; c < cols; ++c) m.colPtr_[c + 1] += m.colPtr_[c];
  return m;
}

template <class T>
SparseMatrix<T> SparseMatrix<T>::fromDense(const Matrix<T>& dense,
                                           double dropTol) {
  std::vector<Triplet<T>> trips;
  for (size_t j = 0; j < dense.cols(); ++j)
    for (size_t i = 0; i < dense.rows(); ++i)
      if (std::abs(dense(i, j)) > dropTol)
        trips.push_back({static_cast<int>(i), static_cast<int>(j), dense(i, j)});
  return fromTriplets(dense.rows(), dense.cols(), trips);
}

template <class T>
std::vector<T> SparseMatrix<T>::multiply(std::span<const T> x) const {
  std::vector<T> y(rows_, T{});
  multiplyInto(x, y);
  return y;
}

template <class T>
void SparseMatrix<T>::multiplyInto(std::span<const T> x,
                                   std::span<T> y) const {
  PSMN_CHECK(x.size() == cols_ && y.size() == rows_,
             "sparse multiply: shape mismatch");
  std::fill(y.begin(), y.end(), T{});
  for (size_t c = 0; c < cols_; ++c) {
    const T xc = x[c];
    if (xc == T{}) continue;
    for (int k = colPtr_[c]; k < colPtr_[c + 1]; ++k) {
      y[rowIdx_[k]] += values_[k] * xc;
    }
  }
}

template <class T>
Matrix<T> SparseMatrix<T>::toDense() const {
  Matrix<T> d(rows_, cols_);
  for (size_t c = 0; c < cols_; ++c)
    for (int k = colPtr_[c]; k < colPtr_[c + 1]; ++k) d(rowIdx_[k], c) = values_[k];
  return d;
}

template class SparseMatrix<Real>;
template class SparseMatrix<Cplx>;

template <class T, class U>
void mergeSparsePatterns(const SparseMatrix<U>& a, const SparseMatrix<U>& b,
                         SparseMatrix<T>& out, std::vector<int>& aToOut,
                         std::vector<int>& bToOut) {
  PSMN_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
             "pattern merge: shape mismatch");
  const size_t cols = a.cols();
  std::vector<Triplet<T>> trips;
  trips.reserve(a.nonZeros() + b.nonZeros());
  for (const SparseMatrix<U>* m : {&a, &b}) {
    const auto ptr = m->colPointers();
    const auto idx = m->rowIndices();
    for (size_t c = 0; c < cols; ++c) {
      for (int k = ptr[c]; k < ptr[c + 1]; ++k) {
        trips.push_back({idx[k], static_cast<int>(c), T{}});
      }
    }
  }
  out = SparseMatrix<T>::fromTriplets(a.rows(), cols, trips);
  const T* base = out.values().data();
  auto mapInto = [&](const SparseMatrix<U>& m, std::vector<int>& map) {
    map.resize(m.nonZeros());
    const auto ptr = m.colPointers();
    const auto idx = m.rowIndices();
    for (size_t c = 0; c < cols; ++c) {
      for (int k = ptr[c]; k < ptr[c + 1]; ++k) {
        const T* slot = out.find(idx[k], static_cast<int>(c));
        PSMN_CHECK(slot != nullptr, "pattern merge lost a slot");
        map[k] = static_cast<int>(slot - base);
      }
    }
  };
  mapInto(a, aToOut);
  mapInto(b, bToOut);
}

template void mergeSparsePatterns(const RealSparse&, const RealSparse&,
                                  RealSparse&, std::vector<int>&,
                                  std::vector<int>&);
template void mergeSparsePatterns(const RealSparse&, const RealSparse&,
                                  CplxSparse&, std::vector<int>&,
                                  std::vector<int>&);

}  // namespace psmn
