// Dense LU factorization with partial pivoting, over double or complex.
//
// The factorization object is reusable: factor once, solve many right-hand
// sides (the shooting and LPTV kernels rely on this heavily).
#pragma once

#include <span>
#include <vector>

#include "numeric/dense_matrix.hpp"

namespace psmn {

template <class T>
class DenseLU {
 public:
  DenseLU() = default;

  /// Factors A in place (a copy is taken). Throws NumericalError when the
  /// matrix is numerically singular.
  explicit DenseLU(const Matrix<T>& a) { factor(a); }

  void factor(const Matrix<T>& a);

  /// Solves A x = b.
  std::vector<T> solve(std::span<const T> b) const;
  void solveInPlace(std::span<T> b) const;
  /// Concurrently callable variant: uses the caller's scratch instead of
  /// the member buffer, so threads sharing one factorization may solve in
  /// parallel (one scratch per thread).
  void solveInPlace(std::span<T> b, LuSolveScratch<T>& scratch) const;

  /// Solves A^T x = b (plain transpose; for complex T this is A^T, not A^H —
  /// conjugate the RHS and the result to get an A^H solve).
  std::vector<T> solveTransposed(std::span<const T> b) const;
  void solveTransposedInPlace(std::span<T> b) const;
  /// Concurrently callable variant (see solveInPlace above).
  void solveTransposedInPlace(std::span<T> b, LuSolveScratch<T>& scratch) const;

  /// Batched transposed solve, column-major like solveManyInPlace (mirrors
  /// SparseLU::solveTransposedManyInPlace for backend switching).
  void solveTransposedManyInPlace(std::span<T> b, size_t nrhs) const;
  /// Concurrently callable variant (see solveInPlace above).
  void solveTransposedManyInPlace(std::span<T> b, size_t nrhs,
                                  LuSolveScratch<T>& scratch) const;

  /// Solves A X = B for a full matrix of right-hand sides.
  Matrix<T> solveMatrix(const Matrix<T>& b) const;

  /// Batched in-place solve of `nrhs` right-hand sides stored column-major
  /// in `b` (column r occupies b[r*n .. r*n + n-1]); mirrors
  /// SparseLU::solveManyInPlace so the engines can switch backends.
  void solveManyInPlace(std::span<T> b, size_t nrhs) const;
  /// Concurrently callable variant (see solveInPlace above).
  void solveManyInPlace(std::span<T> b, size_t nrhs,
                        LuSolveScratch<T>& scratch) const;

  size_t size() const { return lu_.rows(); }
  bool factored() const { return !lu_.empty(); }

  /// |det A| estimate via the product of pivots (log-scaled internally).
  double absDeterminant() const;

  /// The reciprocal of the max-pivot/min-pivot ratio; a cheap conditioning
  /// indicator (1 = perfectly conditioned, 0 = singular).
  double pivotRatio() const { return pivotRatio_; }

 private:
  Matrix<T> lu_;
  std::vector<int> perm_;
  double pivotRatio_ = 0.0;
  // Member solve scratch, reused so repeated solves on a kept factorization
  // are allocation-free (the transient engine's steady state relies on
  // this). Consequence: the scratch-less const solve methods are not
  // thread-safe per object — concurrent callers must pass their own
  // LuSolveScratch via the explicit overloads.
  mutable LuSolveScratch<T> scratch_;
};

/// Convenience one-shot solve.
template <class T>
std::vector<T> luSolve(const Matrix<T>& a, std::span<const T> b);

/// Dense inverse (used in small shooting/correlation algebra only).
template <class T>
Matrix<T> inverse(const Matrix<T>& a);

}  // namespace psmn
