// Approximate minimum degree (AMD) on the quotient graph, after Amestoy,
// Davis & Duff. The elimination graph is never formed: eliminating a
// variable p turns it into an *element* whose member list L_p records the
// clique the elimination would have created, and the graph seen by later
// steps is (remaining variables) + (elements), with a variable's true
// adjacency the union of its variable neighbors and its elements' members.
//
// The implementation keeps, per node i:
//   adjV_[i]  — principal supervariable neighbors (lazily purged),
//   adjE_[i]  — adjacent elements (lazily purged),
//   elemV_[e] — an element's member variables (lazily purged),
//   nv_[i]    — supervariable weight (#original columns represented).
// and the classic machinery on top:
//   * element absorption  — every element adjacent to p is subsumed by the
//     new element L_p (plus aggressive absorption of elements that turn
//     out to be subsets of L_p);
//   * supervariable merging — members of L_p with identical quotient-graph
//     adjacency (hash + exact compare) collapse into one weighted node;
//   * mass elimination    — members whose entire neighborhood lies inside
//     L_p ∪ {p} are eliminated with p at zero extra fill;
//   * approximate degrees — d_i <= |A_i \ L_p| + |L_p \ i| + sum |L_e \ L_p|,
//     with each |L_e \ L_p| computed for all touched elements in one
//     stamped scan over L_p (the "w trick" that makes AMD approximate:
//     overlap *between* elements is not subtracted).
#include "numeric/ordering.hpp"

#include <algorithm>
#include <cstdint>

namespace psmn {
namespace {

enum class Node : uint8_t {
  kLive,        // principal supervariable, not yet eliminated
  kEliminated,  // principal turned element (may still be a live element)
  kMerged,      // variable absorbed into another supervariable
  kDeadElem,    // element absorbed into a newer element
};

class AmdState {
 public:
  AmdState(size_t n, std::span<const int> colPtr, std::span<const int> rowIdx)
      : n_(static_cast<int>(n)),
        state_(n, Node::kLive),
        nv_(n, 1),
        adjV_(n),
        adjE_(n),
        elemV_(n),
        members_(n),
        deg_(n, 0),
        bucketPrev_(n, -1),
        bucketNext_(n, -1),
        bucketHead_(n + 1, -1),
        markV_(n, 0),
        markE_(n, 0),
        w_(n, 0) {
    // Symmetrize the pattern: every off-diagonal entry of A contributes an
    // undirected edge; duplicates from A having both (i,j) and (j,i) are
    // removed by a per-node sort+unique.
    for (int j = 0; j < n_; ++j) {
      for (int p = colPtr[j]; p < colPtr[j + 1]; ++p) {
        const int i = rowIdx[p];
        if (i == j) continue;
        adjV_[i].push_back(j);
        adjV_[j].push_back(i);
      }
    }
    for (int i = 0; i < n_; ++i) {
      auto& av = adjV_[i];
      std::sort(av.begin(), av.end());
      av.erase(std::unique(av.begin(), av.end()), av.end());
      members_[i].push_back(i);
      deg_[i] = static_cast<int>(av.size());
      bucketInsert(i);
    }
  }

  std::vector<int> run() {
    std::vector<int> order;
    order.reserve(n_);
    int remaining = n_;  // total weight of live variables
    int minDeg = 0;
    std::vector<int> lp;        // members of the element being formed
    std::vector<int> hashes;    // per-Lp-member adjacency hashes
    while (remaining > 0) {
      while (bucketHead_[minDeg] < 0) ++minDeg;
      const int p = bucketHead_[minDeg];
      bucketRemove(p);
      ++stamp_;

      // ---- Form L_p: live principals adjacent to p, directly or through
      // one of p's elements. Every such element is absorbed into L_p.
      lp.clear();
      int lpWeight = 0;
      markV_[p] = stamp_;
      auto addMember = [&](int v) {
        if (state_[v] == Node::kLive && markV_[v] != stamp_) {
          markV_[v] = stamp_;
          lp.push_back(v);
          lpWeight += nv_[v];
        }
      };
      for (int v : adjV_[p]) addMember(v);
      for (int e : adjE_[p]) {
        if (state_[e] != Node::kEliminated) continue;  // already absorbed
        for (int v : elemV_[e]) addMember(v);
        state_[e] = Node::kDeadElem;
        freeList(elemV_[e]);
      }
      state_[p] = Node::kEliminated;
      elemV_[p] = lp;
      freeList(adjV_[p]);
      freeList(adjE_[p]);
      remaining -= nv_[p];

      // ---- Purge each member's adjacency: variable neighbors inside L_p
      // are now reached through element p (quotient-graph compression),
      // dead nodes drop out.
      for (int i : lp) {
        bucketRemove(i);
        auto& av = adjV_[i];
        av.erase(std::remove_if(av.begin(), av.end(),
                                [&](int v) {
                                  return state_[v] != Node::kLive ||
                                         markV_[v] == stamp_;
                                }),
                 av.end());
        auto& ae = adjE_[i];
        ae.erase(std::remove_if(
                     ae.begin(), ae.end(),
                     [&](int e) { return state_[e] != Node::kEliminated; }),
                 ae.end());
      }

      // ---- Stamped scan: w_[e] = weight(L_e \ L_p) for every element
      // adjacent to L_p, via one pass that purges and weighs each element
      // the first time it is touched, then subtracts the overlapping
      // member weights.
      for (int i : lp) {
        for (int e : adjE_[i]) {
          if (markE_[e] != stamp_) {
            markE_[e] = stamp_;
            auto& ev = elemV_[e];
            ev.erase(std::remove_if(
                         ev.begin(), ev.end(),
                         [&](int v) { return state_[v] != Node::kLive; }),
                     ev.end());
            int wt = 0;
            for (int v : ev) wt += nv_[v];
            w_[e] = wt;
          }
          w_[e] -= nv_[i];
        }
      }
      // Aggressive absorption: an element fully inside L_p carries no
      // information beyond element p — kill it and drop the references.
      for (int i : lp) {
        auto& ae = adjE_[i];
        ae.erase(std::remove_if(ae.begin(), ae.end(),
                                [&](int e) {
                                  if (w_[e] == 0) {
                                    state_[e] = Node::kDeadElem;
                                    freeList(elemV_[e]);
                                    return true;
                                  }
                                  return false;
                                }),
                 ae.end());
      }

      // ---- Supervariable detection: members of L_p with identical
      // quotient adjacency (same variable neighbors outside L_p, same
      // element list — both about to gain p) are indistinguishable and
      // merge into one weighted node. Hash first, compare exactly on
      // collision.
      hashes.assign(lp.size(), 0);
      for (size_t a = 0; a < lp.size(); ++a) {
        const int i = lp[a];
        std::sort(adjV_[i].begin(), adjV_[i].end());
        std::sort(adjE_[i].begin(), adjE_[i].end());
        uint64_t h = 1469598103934665603ull;
        for (int v : adjV_[i]) h = (h ^ static_cast<uint64_t>(v)) * 1099511628211ull;
        for (int e : adjE_[i]) {
          h = (h ^ (static_cast<uint64_t>(e) + static_cast<uint64_t>(n_))) *
              1099511628211ull;
        }
        hashes[a] = static_cast<int>(h % 1000000007ull);
      }
      for (size_t a = 0; a < lp.size(); ++a) {
        const int i = lp[a];
        if (state_[i] != Node::kLive) continue;
        for (size_t b = a + 1; b < lp.size(); ++b) {
          const int j = lp[b];
          if (state_[j] != Node::kLive || hashes[a] != hashes[b]) continue;
          if (adjV_[i] != adjV_[j] || adjE_[i] != adjE_[j]) continue;
          // Merge j into i.
          nv_[i] += nv_[j];
          nv_[j] = 0;
          state_[j] = Node::kMerged;
          auto& mi = members_[i];
          auto& mj = members_[j];
          mi.insert(mi.end(), mj.begin(), mj.end());
          freeList(mj);
          freeList(adjV_[j]);
          freeList(adjE_[j]);
        }
      }

      // ---- Mass elimination + approximate degree update for the
      // surviving members; survivors gain element p and re-enter the
      // degree buckets.
      for (int i : lp) {
        if (state_[i] != Node::kLive) continue;  // merged above
        if (adjV_[i].empty() && adjE_[i].empty()) {
          // Entire neighborhood is inside L_p ∪ {p}: eliminating i right
          // after p adds no fill — fold it into p's output block.
          auto& mp = members_[p];
          auto& mi = members_[i];
          mp.insert(mp.end(), mi.begin(), mi.end());
          freeList(mi);
          state_[i] = Node::kMerged;
          remaining -= nv_[i];
          lpWeight -= nv_[i];
          nv_[i] = 0;
          continue;
        }
        long d = 0;
        for (int v : adjV_[i]) d += nv_[v];
        for (int e : adjE_[i]) d += w_[e];  // every e was stamped above
        d += lpWeight - nv_[i];
        const long cap = remaining - nv_[i];  // can't exceed what's left
        deg_[i] = static_cast<int>(std::min(d, cap));
        adjE_[i].push_back(p);
        bucketInsert(i);
        minDeg = std::min(minDeg, deg_[i]);
      }

      for (int v : members_[p]) order.push_back(v);
      freeList(members_[p]);
    }
    return order;
  }

 private:
  static void freeList(std::vector<int>& v) {
    v.clear();
    v.shrink_to_fit();
  }

  void bucketInsert(int i) {
    const int d = deg_[i];
    bucketPrev_[i] = -1;
    bucketNext_[i] = bucketHead_[d];
    if (bucketHead_[d] >= 0) bucketPrev_[bucketHead_[d]] = i;
    bucketHead_[d] = i;
  }

  void bucketRemove(int i) {
    if (bucketPrev_[i] >= 0) {
      bucketNext_[bucketPrev_[i]] = bucketNext_[i];
    } else if (bucketHead_[deg_[i]] == i) {
      bucketHead_[deg_[i]] = bucketNext_[i];
    } else {
      return;  // not linked (already removed this round)
    }
    if (bucketNext_[i] >= 0) bucketPrev_[bucketNext_[i]] = bucketPrev_[i];
    bucketPrev_[i] = bucketNext_[i] = -1;
  }

  int n_;
  int stamp_ = 0;
  std::vector<Node> state_;
  std::vector<int> nv_;
  std::vector<std::vector<int>> adjV_, adjE_, elemV_, members_;
  std::vector<int> deg_, bucketPrev_, bucketNext_, bucketHead_;
  std::vector<int> markV_, markE_, w_;
};

}  // namespace

std::vector<int> amdOrder(size_t n, std::span<const int> colPtr,
                          std::span<const int> rowIdx) {
  if (n == 0) return {};
  return AmdState(n, colPtr, rowIdx).run();
}

}  // namespace psmn
