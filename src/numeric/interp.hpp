// Interpolation helpers shared by the measurement and transient modules.
#pragma once

#include <span>

#include "numeric/types.hpp"

namespace psmn {

/// Linear interpolation of (xs, ys) at x. xs must be strictly increasing.
/// Values outside the range clamp to the end values.
Real interpLinear(std::span<const Real> xs, std::span<const Real> ys, Real x);

/// Given bracketing samples (x0,y0), (x1,y1) with y0 != y1, returns the x at
/// which the line crosses `level`.
Real crossingPoint(Real x0, Real y0, Real x1, Real y1, Real level);

}  // namespace psmn
