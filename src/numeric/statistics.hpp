// Streaming and batch statistics used by the Monte-Carlo baseline and by
// the accuracy benchmarks (Fig. 9/11/12): mean, variance, skewness
// (normalized as mu3^(1/3)/sigma per the paper §VIII), correlation, and
// Monte-Carlo confidence intervals for sigma estimates.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "numeric/types.hpp"

namespace psmn {

/// Welford-style online accumulator for the first four central moments.
class MomentAccumulator {
 public:
  void add(Real x);
  void merge(const MomentAccumulator& other);

  size_t count() const { return n_; }
  Real mean() const { return mean_; }
  /// Unbiased (n-1) sample variance.
  Real variance() const;
  Real stddev() const;
  /// Third central moment E[(X-mu)^3].
  Real thirdCentralMoment() const;
  /// Standard skewness mu3 / sigma^3.
  Real skewness() const;
  /// The paper's "normalized skewness": sign(mu3)*|mu3|^(1/3) / sigma.
  Real normalizedSkewness() const;

 private:
  size_t n_ = 0;
  Real mean_ = 0.0;
  Real m2_ = 0.0;
  Real m3_ = 0.0;
  Real m4_ = 0.0;
};

/// Pearson correlation accumulator for paired samples.
class CorrelationAccumulator {
 public:
  void add(Real x, Real y);
  size_t count() const { return n_; }
  Real covariance() const;   // unbiased
  Real correlation() const;  // Pearson r
  Real meanX() const { return meanX_; }
  Real meanY() const { return meanY_; }
  Real varianceX() const;
  Real varianceY() const;

 private:
  size_t n_ = 0;
  Real meanX_ = 0.0, meanY_ = 0.0;
  Real m2x_ = 0.0, m2y_ = 0.0, cxy_ = 0.0;
};

Real mean(std::span<const Real> xs);
Real variance(std::span<const Real> xs);  // unbiased
Real stddev(std::span<const Real> xs);
Real correlation(std::span<const Real> xs, std::span<const Real> ys);

/// Relative half-width of the ~95% confidence interval on a Monte-Carlo
/// sigma estimate from n samples (Gaussian theory: 1.96/sqrt(2(n-1))).
/// n=1000 -> ~4.4%, n=10000 -> ~1.4%, matching the paper's ±4.5%/±1.4%.
Real sigmaConfidence95(size_t n);

/// Standard normal PDF.
Real gaussPdf(Real x, Real mu = 0.0, Real sigma = 1.0);

}  // namespace psmn
