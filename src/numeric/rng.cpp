#include "numeric/rng.hpp"

namespace psmn {

uint64_t splitMix64(uint64_t state) {
  uint64_t z = state + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Rng Rng::forSample(uint64_t seed, uint64_t sampleIndex) {
  return Rng(splitMix64(splitMix64(seed) ^ (sampleIndex * 0xA24BAED4963EE407ull)));
}

}  // namespace psmn
