// Fill-reducing column orderings for the sparse LU factorization.
//
// The factor cost of every sparse analysis (transient Newton, multi-RHS
// sensitivity, shooting PSS, LPTV, PPV) is dominated by the nonzeros of
// L+U, and those are a function of the column elimination order alone
// (given the threshold pivoting keeps pivots near the diagonal). The
// orderings here pre-compute that order from the matrix pattern:
//
//   * kNatural — the input order; optimal for banded assemblies.
//   * kDegree  — columns sorted by nonzero count, a static stand-in for
//     minimum degree (the pre-AMD default).
//   * kAmd     — approximate minimum degree on the symmetrized pattern
//     A + A^T: quotient-graph elimination with supervariable merging,
//     mass elimination, element absorption, and approximate external
//     degrees. MNA matrices are structurally near-symmetric, so AMD on
//     the symmetrized pattern is the right model (same choice as KLU);
//     it is the default ordering everywhere above the sparse threshold.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace psmn {

enum class OrderingKind { kNatural, kDegree, kAmd };

/// Approximate-minimum-degree ordering of the undirected graph of
/// A + A^T, given A's CSC pattern (`colPtr` size n+1, `rowIdx` size nnz;
/// values are irrelevant, diagonal entries are ignored). Returns the
/// elimination order: order[k] is the column eliminated at step k.
std::vector<int> amdOrder(size_t n, std::span<const int> colPtr,
                          std::span<const int> rowIdx);

}  // namespace psmn
