#include "numeric/dense_matrix.hpp"

#include <cmath>

namespace psmn {

template <class T>
Matrix<T>& Matrix<T>::operator+=(const Matrix& other) {
  PSMN_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
             "matrix shape mismatch in +=");
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

template <class T>
Matrix<T>& Matrix<T>::operator-=(const Matrix& other) {
  PSMN_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
             "matrix shape mismatch in -=");
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

template <class T>
Matrix<T>& Matrix<T>::operator*=(T scale) {
  for (auto& v : data_) v *= scale;
  return *this;
}

template <class T>
Matrix<T> matmul(const Matrix<T>& a, const Matrix<T>& b) {
  PSMN_CHECK(a.cols() == b.rows(), "matmul shape mismatch");
  Matrix<T> c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      const T aik = a(i, k);
      if (aik == T{}) continue;
      const auto brow = b.row(k);
      auto crow = c.row(i);
      for (size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

template <class T>
std::vector<T> matvec(const Matrix<T>& a, std::span<const T> x) {
  PSMN_CHECK(a.cols() == x.size(), "matvec shape mismatch");
  std::vector<T> y(a.rows(), T{});
  for (size_t i = 0; i < a.rows(); ++i) {
    T acc{};
    const auto arow = a.row(i);
    for (size_t j = 0; j < a.cols(); ++j) acc += arow[j] * x[j];
    y[i] = acc;
  }
  return y;
}

template <class T>
std::vector<T> matvecT(const Matrix<T>& a, std::span<const T> x) {
  PSMN_CHECK(a.rows() == x.size(), "matvecT shape mismatch");
  std::vector<T> y(a.cols(), T{});
  for (size_t i = 0; i < a.rows(); ++i) {
    const T xi = x[i];
    if (xi == T{}) continue;
    const auto arow = a.row(i);
    for (size_t j = 0; j < a.cols(); ++j) y[j] += arow[j] * xi;
  }
  return y;
}

template <class T>
Matrix<T> transpose(const Matrix<T>& a) {
  Matrix<T> t(a.cols(), a.rows());
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  return t;
}

template <class T>
double maxAbsDiff(const Matrix<T>& a, const Matrix<T>& b) {
  PSMN_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
             "maxAbsDiff shape mismatch");
  double m = 0.0;
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t j = 0; j < a.cols(); ++j)
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
  return m;
}

template <class T>
double maxAbs(const Matrix<T>& a) {
  double m = 0.0;
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t j = 0; j < a.cols(); ++j) m = std::max(m, std::abs(a(i, j)));
  return m;
}

Matrix<Cplx> toComplex(const Matrix<Real>& a) {
  Matrix<Cplx> c(a.rows(), a.cols());
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t j = 0; j < a.cols(); ++j) c(i, j) = a(i, j);
  return c;
}

template class Matrix<Real>;
template class Matrix<Cplx>;
template Matrix<Real> matmul(const Matrix<Real>&, const Matrix<Real>&);
template Matrix<Cplx> matmul(const Matrix<Cplx>&, const Matrix<Cplx>&);
template std::vector<Real> matvec(const Matrix<Real>&, std::span<const Real>);
template std::vector<Cplx> matvec(const Matrix<Cplx>&, std::span<const Cplx>);
template std::vector<Real> matvecT(const Matrix<Real>&, std::span<const Real>);
template std::vector<Cplx> matvecT(const Matrix<Cplx>&, std::span<const Cplx>);
template Matrix<Real> transpose(const Matrix<Real>&);
template Matrix<Cplx> transpose(const Matrix<Cplx>&);
template double maxAbsDiff(const Matrix<Real>&, const Matrix<Real>&);
template double maxAbsDiff(const Matrix<Cplx>&, const Matrix<Cplx>&);
template double maxAbs(const Matrix<Real>&);
template double maxAbs(const Matrix<Cplx>&);

}  // namespace psmn
