// Fourier-series helpers for uniformly sampled periodic waveforms.
//
// The PSS engine produces one period of a waveform on a uniform grid of M
// points x_0..x_{M-1} (x_M == x_0 excluded). The N-th Fourier coefficient
//   X_N = (1/M) sum_k x_k exp(-j 2*pi*N*k / M)
// is the complex amplitude of the exp(+j 2*pi*N*f0*t) component; for a real
// signal the "amplitude of the fundamental" in the paper's sense is
// Ac = 2 |X_1|.
#pragma once

#include <span>

#include "numeric/types.hpp"

namespace psmn {

/// Single Fourier coefficient X_N of a real periodic sample set.
Cplx fourierCoefficient(std::span<const Real> samples, int harmonic);

/// Single Fourier coefficient of a complex periodic sample set.
Cplx fourierCoefficient(std::span<const Cplx> samples, int harmonic);

/// All coefficients X_0..X_{count-1}.
CplxVector fourierCoefficients(std::span<const Real> samples, int count);

/// Reconstructs the real signal value at phase fraction u in [0,1) from
/// coefficients X_0..X_{H-1} (using conjugate symmetry for negatives).
Real fourierEval(std::span<const Cplx> coeffs, Real u);

/// Amplitude of harmonic N of a real signal: 2|X_N| for N>0, |X_0| for N=0.
Real harmonicAmplitude(std::span<const Real> samples, int harmonic);

}  // namespace psmn
