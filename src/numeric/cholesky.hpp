// Cholesky / LDL^T factorization of symmetric positive (semi-)definite
// matrices. Used to build correlated mismatch sources: given a desired
// covariance C, the factor A with C = A A^T maps independent unit-variance
// pseudo-noise sources onto correlated parameter deltas (paper §III-C, eq. 6).
#pragma once

#include "numeric/dense_matrix.hpp"

namespace psmn {

/// Lower-triangular A with C = A A^T. Throws NumericalError when C is not
/// positive definite beyond `semidefTol` (relative); small negative pivots
/// within tolerance are clamped to zero so that positive *semi*-definite
/// covariances (perfect correlation) are accepted.
RealMatrix choleskyFactor(const RealMatrix& c, double semidefTol = 1e-10);

/// True when c is symmetric within tol (absolute).
bool isSymmetric(const RealMatrix& c, double tol = 0.0);

}  // namespace psmn
