#include "numeric/fourier.hpp"

#include <cmath>
#include <numbers>

#include "util/status.hpp"

namespace psmn {

namespace {
constexpr Real kTwoPi = 2.0 * std::numbers::pi_v<Real>;
}

Cplx fourierCoefficient(std::span<const Real> samples, int harmonic) {
  PSMN_CHECK(!samples.empty(), "fourierCoefficient: empty sample set");
  const size_t m = samples.size();
  Cplx acc{};
  for (size_t k = 0; k < m; ++k) {
    const Real phase = -kTwoPi * harmonic * static_cast<Real>(k) / m;
    acc += samples[k] * Cplx(std::cos(phase), std::sin(phase));
  }
  return acc / static_cast<Real>(m);
}

Cplx fourierCoefficient(std::span<const Cplx> samples, int harmonic) {
  PSMN_CHECK(!samples.empty(), "fourierCoefficient: empty sample set");
  const size_t m = samples.size();
  Cplx acc{};
  for (size_t k = 0; k < m; ++k) {
    const Real phase = -kTwoPi * harmonic * static_cast<Real>(k) / m;
    acc += samples[k] * Cplx(std::cos(phase), std::sin(phase));
  }
  return acc / static_cast<Real>(m);
}

CplxVector fourierCoefficients(std::span<const Real> samples, int count) {
  CplxVector out(count);
  for (int n = 0; n < count; ++n) out[n] = fourierCoefficient(samples, n);
  return out;
}

Real fourierEval(std::span<const Cplx> coeffs, Real u) {
  if (coeffs.empty()) return 0.0;
  Real value = coeffs[0].real();
  for (size_t n = 1; n < coeffs.size(); ++n) {
    const Real phase = kTwoPi * static_cast<Real>(n) * u;
    value += 2.0 * (coeffs[n].real() * std::cos(phase) -
                    coeffs[n].imag() * std::sin(phase));
  }
  return value;
}

Real harmonicAmplitude(std::span<const Real> samples, int harmonic) {
  const Cplx x = fourierCoefficient(samples, harmonic);
  return harmonic == 0 ? std::abs(x) : 2.0 * std::abs(x);
}

}  // namespace psmn
