// Dense row-major matrix over double or std::complex<double>.
//
// Sized for MNA systems of the benchmark circuits (tens of unknowns) and for
// monodromy / shooting algebra; the sparse path (sparse_matrix.hpp) covers
// larger netlists.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "numeric/types.hpp"
#include "util/status.hpp"

namespace psmn {

template <class T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  static Matrix identity(size_t n) {
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  T& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  const T& operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  std::span<T> row(size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const T> row(size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  void setZero() { data_.assign(data_.size(), T{}); }

  void resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, T{});
  }

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(T scale);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }

  bool operator==(const Matrix&) const = default;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<T> data_;
};

/// C = A * B.
template <class T>
Matrix<T> matmul(const Matrix<T>& a, const Matrix<T>& b);

/// y = A * x.
template <class T>
std::vector<T> matvec(const Matrix<T>& a, std::span<const T> x);

/// y = A^T * x (A^H for complex T? no — plain transpose; see matvecConjT).
template <class T>
std::vector<T> matvecT(const Matrix<T>& a, std::span<const T> x);

/// Transpose.
template <class T>
Matrix<T> transpose(const Matrix<T>& a);

/// Max |a_ij - b_ij|.
template <class T>
double maxAbsDiff(const Matrix<T>& a, const Matrix<T>& b);

/// Frobenius-ish max-abs norm.
template <class T>
double maxAbs(const Matrix<T>& a);

/// Converts a real matrix into a complex one.
Matrix<Cplx> toComplex(const Matrix<Real>& a);

using RealMatrix = Matrix<Real>;
using CplxMatrix = Matrix<Cplx>;

}  // namespace psmn
