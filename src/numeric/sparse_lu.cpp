#include "numeric/sparse_lu.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace psmn {
namespace {

// Cheap fill-reducing column ordering: sort columns by nonzero count
// (a degenerate but effective stand-in for minimum degree on MNA systems,
// which are near-symmetric).
template <class T>
std::vector<int> orderColumnsByDegree(const SparseMatrix<T>& a) {
  const size_t n = a.cols();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  const auto ptr = a.colPointers();
  std::stable_sort(order.begin(), order.end(), [&](int x, int y) {
    return (ptr[x + 1] - ptr[x]) < (ptr[y + 1] - ptr[y]);
  });
  return order;
}

}  // namespace

template <class T>
void SparseLU<T>::factor(const SparseMatrix<T>& a, double pivotThreshold) {
  PSMN_CHECK(a.rows() == a.cols(), "sparse LU requires a square matrix");
  PSMN_CHECK(pivotThreshold > 0.0 && pivotThreshold <= 1.0,
             "pivot threshold must be in (0,1]");
  n_ = a.rows();
  const auto aPtr = a.colPointers();
  const auto aIdx = a.rowIndices();
  const auto aVal = a.values();

  colOrder_ = orderColumnsByDegree(a);
  invColOrder_.assign(n_, 0);
  for (size_t k = 0; k < n_; ++k) invColOrder_[colOrder_[k]] = static_cast<int>(k);

  rowPerm_.assign(n_, -1);  // original row -> permuted position
  std::vector<int> permRow(n_, -1);  // permuted position -> original row

  lPtr_.assign(1, 0);
  uPtr_.assign(1, 0);
  lIdx_.clear(); lVal_.clear();
  uIdx_.clear(); uVal_.clear();

  // Dense workspace for the current column (Gilbert–Peierls sparse solve
  // would use DFS reachability; for MNA sizes the dense-column variant is
  // simpler and still O(nnz) per column in practice).
  std::vector<T> work(n_, T{});
  std::vector<char> mark(n_, 0);
  std::vector<int> pattern;
  pattern.reserve(n_);

  for (size_t kcol = 0; kcol < n_; ++kcol) {
    const int j = colOrder_[kcol];
    // Scatter column j of A into the workspace (in original row indices).
    pattern.clear();
    for (int p = aPtr[j]; p < aPtr[j + 1]; ++p) {
      work[aIdx[p]] = aVal[p];
      if (!mark[aIdx[p]]) {
        mark[aIdx[p]] = 1;
        pattern.push_back(aIdx[p]);
      }
    }
    // Left-looking update: apply previously computed L columns, in
    // elimination order, for every upper entry of this column.
    for (size_t t = 0; t < kcol; ++t) {
      const int prow = permRow[t];  // original row eliminated at step t
      if (!mark[prow] || work[prow] == T{}) continue;
      const T ujt = work[prow];  // value of U(t, kcol)
      // work -= ujt * L(:, t)
      for (int p = lPtr_[t]; p < lPtr_[t + 1]; ++p) {
        const int r = lIdx_[p];
        if (!mark[r]) {
          mark[r] = 1;
          pattern.push_back(r);
        }
        work[r] -= ujt * lVal_[p];
      }
    }
    // Choose pivot among not-yet-eliminated rows with threshold pivoting.
    double maxMag = 0.0;
    for (int r : pattern) {
      if (rowPerm_[r] >= 0) continue;
      maxMag = std::max(maxMag, std::abs(work[r]));
    }
    if (maxMag == 0.0) {
      throw NumericalError("sparse LU: structurally/numerically singular at column " +
                           std::to_string(j));
    }
    int pivotRow = -1;
    double pivotMag = -1.0;
    // Prefer the diagonal entry when it passes the threshold test.
    if (rowPerm_[j] < 0 && mark[j] && std::abs(work[j]) >= pivotThreshold * maxMag &&
        work[j] != T{}) {
      pivotRow = j;
      pivotMag = std::abs(work[j]);
    } else {
      for (int r : pattern) {
        if (rowPerm_[r] >= 0) continue;
        const double mag = std::abs(work[r]);
        if (mag > pivotMag) {
          pivotMag = mag;
          pivotRow = r;
        }
      }
    }
    PSMN_CHECK(pivotRow >= 0, "sparse LU: no pivot candidate");
    const T pivot = work[pivotRow];
    rowPerm_[pivotRow] = static_cast<int>(kcol);
    permRow[kcol] = pivotRow;

    // Emit U entries (rows already eliminated) and L entries (the rest).
    for (int r : pattern) {
      const T v = work[r];
      work[r] = T{};
      mark[r] = 0;
      if (v == T{}) continue;
      if (rowPerm_[r] >= 0 && rowPerm_[r] < static_cast<int>(kcol)) {
        uIdx_.push_back(rowPerm_[r]);
        uVal_.push_back(v);
      } else if (r == pivotRow) {
        // diagonal of U, stored last within the column for easy access
      } else {
        lIdx_.push_back(r);  // keep original row index for L
        lVal_.push_back(v / pivot);
      }
    }
    uIdx_.push_back(static_cast<int>(kcol));
    uVal_.push_back(pivot);
    lPtr_.push_back(static_cast<int>(lIdx_.size()));
    uPtr_.push_back(static_cast<int>(uIdx_.size()));
  }
}

template <class T>
void SparseLU<T>::solveInPlace(std::span<T> b) const {
  PSMN_CHECK(b.size() == n_, "sparse LU solve: rhs size mismatch");
  // permRow maps elimination step -> original pivot row.
  std::vector<int> permRow(n_);
  for (size_t r = 0; r < n_; ++r) permRow[rowPerm_[r]] = static_cast<int>(r);

  // Forward solve L y = P b, with L unit-diagonal; L columns carry original
  // row indices, so updates scatter into the (still original-indexed) rhs.
  std::vector<T> rhs(b.begin(), b.end());
  std::vector<T> x(n_, T{});
  for (size_t t = 0; t < n_; ++t) {
    const T yt = rhs[permRow[t]];
    x[t] = yt;
    if (yt == T{}) continue;
    for (int p = lPtr_[t]; p < lPtr_[t + 1]; ++p) {
      rhs[lIdx_[p]] -= lVal_[p] * yt;
    }
  }
  // Column-oriented backward substitution: process columns from last to
  // first; after dividing by the diagonal, scatter updates to earlier rows.
  for (size_t tt = n_; tt-- > 0;) {
    const int diagPos = uPtr_[tt + 1] - 1;
    const T diag = uVal_[diagPos];
    const T xt = x[tt] / diag;
    x[tt] = xt;
    if (xt == T{}) continue;
    for (int p = uPtr_[tt]; p < diagPos; ++p) {
      x[uIdx_[p]] -= uVal_[p] * xt;
    }
  }
  // Un-permute columns: elimination step t corresponds to original column
  // colOrder_[t].
  for (size_t t = 0; t < n_; ++t) b[colOrder_[t]] = x[t];
}

template <class T>
std::vector<T> SparseLU<T>::solve(std::span<const T> b) const {
  std::vector<T> x(b.begin(), b.end());
  solveInPlace(x);
  return x;
}

template class SparseLU<Real>;
template class SparseLU<Cplx>;

}  // namespace psmn
