#include "numeric/sparse_lu.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/fault_injection.hpp"
#include "util/telemetry.hpp"

namespace psmn {
namespace {

// Static fill-reducing stand-in: sort columns by nonzero count. Kept as
// OrderingKind::kDegree (the pre-AMD default) for comparison and as a
// fallback; unlike AMD it never reacts to fill created mid-elimination.
template <class T>
std::vector<int> orderColumnsByDegree(const SparseMatrix<T>& a) {
  const size_t n = a.cols();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  const auto ptr = a.colPointers();
  std::stable_sort(order.begin(), order.end(), [&](int x, int y) {
    return (ptr[x + 1] - ptr[x]) < (ptr[y + 1] - ptr[y]);
  });
  return order;
}

template <class T>
std::vector<int> orderColumns(const SparseMatrix<T>& a, OrderingKind kind) {
  switch (kind) {
    case OrderingKind::kNatural: {
      std::vector<int> order(a.cols());
      std::iota(order.begin(), order.end(), 0);
      return order;
    }
    case OrderingKind::kDegree:
      return orderColumnsByDegree(a);
    case OrderingKind::kAmd:
      return amdOrder(a.cols(), a.colPointers(), a.rowIndices());
  }
  PSMN_CHECK(false, "unknown ordering kind");
  return {};
}

}  // namespace

template <class T>
void SparseLU<T>::factor(const SparseMatrix<T>& a, double pivotThreshold,
                         OrderingKind ordering) {
  PSMN_CHECK(a.rows() == a.cols(), "sparse LU requires a square matrix");
  PSMN_CHECK(pivotThreshold > 0.0 && pivotThreshold <= 1.0,
             "pivot threshold must be in (0,1]");
  if (faultShouldFire("sparse_lu.factor")) {
    valid_ = false;
    throw NumericalError("sparse LU: injected pivot failure");
  }
  valid_ = false;
  n_ = a.rows();
  patternNnz_ = a.nonZeros();
  const auto aPtr = a.colPointers();
  const auto aIdx = a.rowIndices();
  const auto aVal = a.values();

  colOrder_ = orderColumns(a, ordering);
  invColOrder_.assign(n_, 0);
  for (size_t k = 0; k < n_; ++k) invColOrder_[colOrder_[k]] = static_cast<int>(k);

  rowPerm_.assign(n_, -1);  // original row -> permuted position
  permRow_.assign(n_, -1);  // permuted position -> original row

  lPtr_.assign(1, 0);
  uPtr_.assign(1, 0);
  lIdx_.clear(); lVal_.clear();
  uIdx_.clear(); uVal_.clear();

  // Dense workspace for the current column (Gilbert–Peierls sparse solve
  // would use DFS reachability; for MNA sizes the dense-column variant is
  // simpler and still O(nnz) per column in practice).
  std::vector<T> work(n_, T{});
  std::vector<char> mark(n_, 0);
  std::vector<int> pattern;
  pattern.reserve(n_);
  std::vector<std::pair<int, T>> ucol;  // U entries of the current column

  for (size_t kcol = 0; kcol < n_; ++kcol) {
    const int j = colOrder_[kcol];
    // Scatter column j of A into the workspace (in original row indices).
    pattern.clear();
    for (int p = aPtr[j]; p < aPtr[j + 1]; ++p) {
      work[aIdx[p]] = aVal[p];
      if (!mark[aIdx[p]]) {
        mark[aIdx[p]] = 1;
        pattern.push_back(aIdx[p]);
      }
    }
    // Left-looking update: apply previously computed L columns, in
    // elimination order, for every *structurally* reachable upper entry of
    // this column. Numerically-zero U entries still propagate their L
    // pattern so the stored fill pattern is value-independent and
    // refactor() can replay it with different numbers.
    for (size_t t = 0; t < kcol; ++t) {
      const int prow = permRow_[t];  // original row eliminated at step t
      if (!mark[prow]) continue;
      const T ujt = work[prow];  // value of U(t, kcol)
      // work -= ujt * L(:, t)
      for (int p = lPtr_[t]; p < lPtr_[t + 1]; ++p) {
        const int r = lIdx_[p];
        if (!mark[r]) {
          mark[r] = 1;
          pattern.push_back(r);
        }
        work[r] -= ujt * lVal_[p];
      }
    }
    // Choose pivot among not-yet-eliminated rows with threshold pivoting.
    double maxMag = 0.0;
    for (int r : pattern) {
      if (rowPerm_[r] >= 0) continue;
      maxMag = std::max(maxMag, std::abs(work[r]));
    }
    if (maxMag == 0.0) {
      throw NumericalError("sparse LU: structurally/numerically singular at column " +
                           std::to_string(j));
    }
    int pivotRow = -1;
    double pivotMag = -1.0;
    // Prefer the diagonal entry when it passes the threshold test.
    if (rowPerm_[j] < 0 && mark[j] && std::abs(work[j]) >= pivotThreshold * maxMag &&
        work[j] != T{}) {
      pivotRow = j;
      pivotMag = std::abs(work[j]);
    } else {
      for (int r : pattern) {
        if (rowPerm_[r] >= 0) continue;
        const double mag = std::abs(work[r]);
        if (mag > pivotMag) {
          pivotMag = mag;
          pivotRow = r;
        }
      }
    }
    PSMN_CHECK(pivotRow >= 0, "sparse LU: no pivot candidate");
    const T pivot = work[pivotRow];
    rowPerm_[pivotRow] = static_cast<int>(kcol);
    permRow_[kcol] = pivotRow;

    // Emit U entries (rows already eliminated) and L entries (the rest).
    // Exact numeric zeros are kept: the pattern must cover every position a
    // refactor() with different values could fill.
    ucol.clear();
    for (int r : pattern) {
      const T v = work[r];
      work[r] = T{};
      mark[r] = 0;
      if (rowPerm_[r] >= 0 && rowPerm_[r] < static_cast<int>(kcol)) {
        ucol.emplace_back(rowPerm_[r], v);
      } else if (r == pivotRow) {
        // diagonal of U, appended after the sort below
      } else {
        lIdx_.push_back(r);  // keep original row index for L
        lVal_.push_back(v / pivot);
      }
    }
    // U column sorted ascending by permuted row so refactor() replays the
    // updates in elimination order; the diagonal (largest index) sits last.
    std::sort(ucol.begin(), ucol.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    for (const auto& [row, v] : ucol) {
      uIdx_.push_back(row);
      uVal_.push_back(v);
    }
    uIdx_.push_back(static_cast<int>(kcol));
    uVal_.push_back(pivot);
    lPtr_.push_back(static_cast<int>(lIdx_.size()));
    uPtr_.push_back(static_cast<int>(uIdx_.size()));
  }
  valid_ = true;
  telemetryCount(Counter::kSparseFactors);
  telemetryCount(Counter::kFactorNnzTotal, lVal_.size() + uVal_.size());
}

template <class T>
bool SparseLU<T>::refactor(const SparseMatrix<T>& a, double pivotTol) {
  // !valid_ also covers a factor() that threw mid-build: its partially
  // constructed pattern must not be replayed.
  if (n_ == 0 || !valid_ || a.rows() != n_ || a.cols() != n_ ||
      a.nonZeros() != patternNnz_) {
    valid_ = false;
    return false;
  }
  if (faultShouldFire("sparse_lu.refactor")) {
    // An injected kept-pivot breakdown: report it exactly like an organic
    // one so the caller's full-factor fallback path is exercised.
    valid_ = false;
    return false;
  }
  const auto aPtr = a.colPointers();
  const auto aIdx = a.rowIndices();
  const auto aVal = a.values();
  work_.assign(n_, T{});

  for (size_t kcol = 0; kcol < n_; ++kcol) {
    const int j = colOrder_[kcol];
    for (int p = aPtr[j]; p < aPtr[j + 1]; ++p) work_[aIdx[p]] = aVal[p];

    const int ubeg = uPtr_[kcol];
    const int uend = uPtr_[kcol + 1] - 1;  // diagonal stored last
    for (int p = ubeg; p < uend; ++p) {
      const int t = uIdx_[p];
      const T ujt = work_[permRow_[t]];
      uVal_[p] = ujt;
      if (ujt == T{}) continue;
      for (int lp = lPtr_[t]; lp < lPtr_[t + 1]; ++lp) {
        work_[lIdx_[lp]] -= lVal_[lp] * ujt;
      }
    }
    const int pivotRow = permRow_[kcol];
    const T pivot = work_[pivotRow];
    // The kept pivot must not have collapsed relative to the remaining
    // candidates in its column; `!(.. > ..)` also rejects NaN.
    double colMax = std::abs(pivot);
    for (int lp = lPtr_[kcol]; lp < lPtr_[kcol + 1]; ++lp) {
      colMax = std::max(colMax, std::abs(work_[lIdx_[lp]]));
    }
    if (!(std::abs(pivot) > pivotTol * colMax) || pivot == T{}) {
      work_.assign(n_, T{});
      valid_ = false;
      return false;
    }
    uVal_[uend] = pivot;
    for (int lp = lPtr_[kcol]; lp < lPtr_[kcol + 1]; ++lp) {
      lVal_[lp] = work_[lIdx_[lp]] / pivot;
    }
    // Clear exactly the positions this column touched (its structural
    // closure: A-scatter and L-update targets all land in U, L, or the
    // pivot), leaving work_ all-zero for the next column.
    for (int p = ubeg; p <= uend; ++p) work_[permRow_[uIdx_[p]]] = T{};
    for (int lp = lPtr_[kcol]; lp < lPtr_[kcol + 1]; ++lp) {
      work_[lIdx_[lp]] = T{};
    }
  }
  valid_ = true;
  telemetryCount(Counter::kSparseRefactors);
  telemetryCount(Counter::kFactorNnzTotal, lVal_.size() + uVal_.size());
  return true;
}

template <class T>
void SparseLU<T>::solveInPlace(std::span<T> b) const {
  solveInPlace(b, scratch_);
}

template <class T>
void SparseLU<T>::solveInPlace(std::span<T> b,
                               LuSolveScratch<T>& scratch) const {
  PSMN_CHECK(b.size() == n_, "sparse LU solve: rhs size mismatch");
  PSMN_CHECK(valid_, "sparse LU solve: not factored");
  telemetryCount(Counter::kSolveColumns);
  std::vector<T>& solveRhs_ = scratch.rhs;
  std::vector<T>& solveX_ = scratch.x;
  solveRhs_.assign(b.begin(), b.end());
  solveX_.assign(n_, T{});
  // Forward solve L y = P b, with L unit-diagonal; L columns carry original
  // row indices, so updates scatter into the (still original-indexed) rhs.
  for (size_t t = 0; t < n_; ++t) {
    const T yt = solveRhs_[permRow_[t]];
    solveX_[t] = yt;
    if (yt == T{}) continue;
    for (int p = lPtr_[t]; p < lPtr_[t + 1]; ++p) {
      solveRhs_[lIdx_[p]] -= lVal_[p] * yt;
    }
  }
  // Column-oriented backward substitution: process columns from last to
  // first; after dividing by the diagonal, scatter updates to earlier rows.
  for (size_t tt = n_; tt-- > 0;) {
    const int diagPos = uPtr_[tt + 1] - 1;
    const T diag = uVal_[diagPos];
    const T xt = solveX_[tt] / diag;
    solveX_[tt] = xt;
    if (xt == T{}) continue;
    for (int p = uPtr_[tt]; p < diagPos; ++p) {
      solveX_[uIdx_[p]] -= uVal_[p] * xt;
    }
  }
  // Un-permute columns: elimination step t corresponds to original column
  // colOrder_[t].
  for (size_t t = 0; t < n_; ++t) b[colOrder_[t]] = solveX_[t];
}

template <class T>
void SparseLU<T>::solveManyInPlace(std::span<T> b, size_t nrhs) const {
  solveManyInPlace(b, nrhs, scratch_);
}

template <class T>
void SparseLU<T>::solveManyInPlace(std::span<T> b, size_t nrhs,
                                   LuSolveScratch<T>& scratch) const {
  PSMN_CHECK(b.size() == n_ * nrhs, "sparse LU solve: rhs block size mismatch");
  PSMN_CHECK(valid_, "sparse LU solve: not factored");
  if (nrhs == 0) return;
  if (nrhs == 1) {
    solveInPlace(b, scratch);
    return;
  }
  telemetryCount(Counter::kSolveColumns, nrhs);
  std::vector<T>& solveRhs_ = scratch.rhs;
  std::vector<T>& solveX_ = scratch.x;
  solveRhs_.assign(b.begin(), b.end());
  solveX_.assign(n_ * nrhs, T{});
  T* rhs = solveRhs_.data();
  T* x = solveX_.data();
  // Forward solve: one traversal of each L column updates every RHS.
  for (size_t t = 0; t < n_; ++t) {
    const int pr = permRow_[t];
    for (size_t r = 0; r < nrhs; ++r) x[r * n_ + t] = rhs[r * n_ + pr];
    for (int p = lPtr_[t]; p < lPtr_[t + 1]; ++p) {
      const int idx = lIdx_[p];
      const T lv = lVal_[p];
      for (size_t r = 0; r < nrhs; ++r) {
        rhs[r * n_ + idx] -= lv * x[r * n_ + t];
      }
    }
  }
  // Backward substitution, again amortizing the pattern walk over all RHS.
  for (size_t tt = n_; tt-- > 0;) {
    const int diagPos = uPtr_[tt + 1] - 1;
    const T diag = uVal_[diagPos];
    for (size_t r = 0; r < nrhs; ++r) x[r * n_ + tt] /= diag;
    for (int p = uPtr_[tt]; p < diagPos; ++p) {
      const int idx = uIdx_[p];
      const T uv = uVal_[p];
      for (size_t r = 0; r < nrhs; ++r) {
        x[r * n_ + idx] -= uv * x[r * n_ + tt];
      }
    }
  }
  for (size_t t = 0; t < n_; ++t) {
    const int oc = colOrder_[t];
    for (size_t r = 0; r < nrhs; ++r) b[r * n_ + oc] = x[r * n_ + t];
  }
}

template <class T>
void SparseLU<T>::solveTransposedInPlace(std::span<T> b) const {
  solveTransposedInPlace(b, scratch_);
}

template <class T>
void SparseLU<T>::solveTransposedInPlace(std::span<T> b,
                                         LuSolveScratch<T>& scratch) const {
  PSMN_CHECK(b.size() == n_, "sparse LU solveT: rhs size mismatch");
  PSMN_CHECK(valid_, "sparse LU solveT: not factored");
  telemetryCount(Counter::kSolveColumns);
  // With A^{-1} = Q U^{-1} L^{-1} P (see solveInPlace), the transposed
  // solve is A^{-T} = P^T L^{-T} U^{-T} Q^T. Both triangular passes turn
  // into gathers over the stored CSC columns: a column of U (resp. L) is a
  // row of U^T (resp. L^T), so no scatter scratch is needed.
  std::vector<T>& solveX_ = scratch.x;
  solveX_.resize(n_);
  for (size_t t = 0; t < n_; ++t) solveX_[t] = b[colOrder_[t]];
  // Forward solve U^T w = z: column t of U holds U(t', t), t' < t, with the
  // diagonal stored last.
  for (size_t t = 0; t < n_; ++t) {
    const int diagPos = uPtr_[t + 1] - 1;
    T acc = solveX_[t];
    for (int p = uPtr_[t]; p < diagPos; ++p) acc -= uVal_[p] * solveX_[uIdx_[p]];
    solveX_[t] = acc / uVal_[diagPos];
  }
  // Backward solve L^T v = w (unit diagonal): column t of L holds entries at
  // original rows r that are eliminated later (rowPerm_[r] > t).
  for (size_t tt = n_; tt-- > 0;) {
    T acc = solveX_[tt];
    for (int p = lPtr_[tt]; p < lPtr_[tt + 1]; ++p) {
      acc -= lVal_[p] * solveX_[rowPerm_[lIdx_[p]]];
    }
    solveX_[tt] = acc;
  }
  for (size_t t = 0; t < n_; ++t) b[permRow_[t]] = solveX_[t];
}

template <class T>
void SparseLU<T>::solveTransposedManyInPlace(std::span<T> b, size_t nrhs) const {
  solveTransposedManyInPlace(b, nrhs, scratch_);
}

template <class T>
void SparseLU<T>::solveTransposedManyInPlace(std::span<T> b, size_t nrhs,
                                             LuSolveScratch<T>& scratch) const {
  PSMN_CHECK(b.size() == n_ * nrhs,
             "sparse LU solveT: rhs block size mismatch");
  PSMN_CHECK(valid_, "sparse LU solveT: not factored");
  if (nrhs == 0) return;
  if (nrhs == 1) {
    solveTransposedInPlace(b, scratch);
    return;
  }
  telemetryCount(Counter::kSolveColumns, nrhs);
  std::vector<T>& solveX_ = scratch.x;
  solveX_.resize(n_ * nrhs);
  T* x = solveX_.data();
  for (size_t t = 0; t < n_; ++t) {
    const int oc = colOrder_[t];
    for (size_t r = 0; r < nrhs; ++r) x[r * n_ + t] = b[r * n_ + oc];
  }
  // One traversal of each U (then L) column serves every right-hand side.
  for (size_t t = 0; t < n_; ++t) {
    const int diagPos = uPtr_[t + 1] - 1;
    const T diag = uVal_[diagPos];
    for (int p = uPtr_[t]; p < diagPos; ++p) {
      const int idx = uIdx_[p];
      const T uv = uVal_[p];
      for (size_t r = 0; r < nrhs; ++r) x[r * n_ + t] -= uv * x[r * n_ + idx];
    }
    for (size_t r = 0; r < nrhs; ++r) x[r * n_ + t] /= diag;
  }
  for (size_t tt = n_; tt-- > 0;) {
    for (int p = lPtr_[tt]; p < lPtr_[tt + 1]; ++p) {
      const size_t idx = static_cast<size_t>(rowPerm_[lIdx_[p]]);
      const T lv = lVal_[p];
      for (size_t r = 0; r < nrhs; ++r) x[r * n_ + tt] -= lv * x[r * n_ + idx];
    }
  }
  for (size_t t = 0; t < n_; ++t) {
    const int pr = permRow_[t];
    for (size_t r = 0; r < nrhs; ++r) b[r * n_ + pr] = x[r * n_ + t];
  }
}

template <class T>
std::vector<T> SparseLU<T>::solveTransposed(std::span<const T> b) const {
  std::vector<T> x(b.begin(), b.end());
  solveTransposedInPlace(x);
  return x;
}

template <class T>
std::vector<T> SparseLU<T>::solve(std::span<const T> b) const {
  std::vector<T> x(b.begin(), b.end());
  solveInPlace(x);
  return x;
}

template class SparseLU<Real>;
template class SparseLU<Cplx>;

}  // namespace psmn
