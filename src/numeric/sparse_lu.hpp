// Sparse LU factorization: left-looking Gilbert–Peierls with threshold
// partial pivoting and a fill-reducing column pre-ordering (AMD by
// default; see numeric/ordering.hpp). This is the solver used for
// netlists too large for the dense path; for the paper's benchmark
// circuits either backend works and tests assert that they agree.
//
// Designed around the transient engine's access pattern:
//   * factor() once does the symbolic work (column ordering, pivot
//     sequence, fill pattern);
//   * refactor() renumbers the same pattern for a matrix with identical
//     structure but new values (every Newton iteration / time step),
//     allocation-free, falling back to a full factor() when a kept pivot
//     goes bad;
//   * solveInPlace()/solveManyInPlace() reuse member scratch so repeated
//     solves (multi-RHS sensitivity columns) never touch the heap.
//
// Thread safety: the scratch-less const solve methods mutate member
// scratch and stay single-threaded per object. The LuSolveScratch
// overloads touch only the (read-only) factorization, the RHS, and the
// caller's scratch — the parallel sensitivity engine partitions RHS
// columns across threads against one shared factorization this way, one
// scratch per thread. factor()/refactor() remain exclusive.
#pragma once

#include <span>
#include <vector>

#include "numeric/ordering.hpp"
#include "numeric/sparse_matrix.hpp"

namespace psmn {

template <class T>
class SparseLU {
 public:
  SparseLU() = default;

  /// `pivotThreshold` in (0,1]: 1.0 is full partial pivoting; smaller values
  /// trade stability for sparsity preservation (SPICE-style 0.001..0.1).
  /// `ordering` selects the fill-reducing column pre-ordering computed
  /// during symbolic analysis; refactor() reuses it along with the pivot
  /// sequence and fill pattern.
  explicit SparseLU(const SparseMatrix<T>& a, double pivotThreshold = 0.1,
                    OrderingKind ordering = OrderingKind::kAmd) {
    factor(a, pivotThreshold, ordering);
  }

  void factor(const SparseMatrix<T>& a, double pivotThreshold = 0.1,
              OrderingKind ordering = OrderingKind::kAmd);

  /// Numeric-only refactorization: reuses the pivot sequence, column order,
  /// and fill pattern of the last factor(). `a` must have the same sparsity
  /// pattern as the matrix passed to factor(). Returns false (leaving the
  /// factorization invalid) when a reused pivot fails the relative pivot
  /// check — the caller should then do a full factor(). `pivotTol` guards
  /// against kept pivots that the new values have demoted: a pivot below
  /// pivotTol * (column max) means the old pivot order is no longer
  /// trustworthy (values drifted far, e.g. a DC homotopy rung), and
  /// accepting it would poison the factorization.
  bool refactor(const SparseMatrix<T>& a, double pivotTol = 1e-3);

  std::vector<T> solve(std::span<const T> b) const;
  void solveInPlace(std::span<T> b) const;
  /// Concurrently callable variant: uses the caller's scratch instead of
  /// the member buffers (one scratch per thread).
  void solveInPlace(std::span<T> b, LuSolveScratch<T>& scratch) const;

  /// Batched solve of `nrhs` right-hand sides stored column-major in `b`
  /// (column r occupies b[r*n .. r*n + n-1]); one traversal of the L/U
  /// pattern serves all columns.
  void solveManyInPlace(std::span<T> b, size_t nrhs) const;
  /// Concurrently callable variant (see solveInPlace above). Chunking a
  /// column block across threads is bit-identical to one batched call:
  /// every column's arithmetic involves only that column.
  void solveManyInPlace(std::span<T> b, size_t nrhs,
                        LuSolveScratch<T>& scratch) const;

  /// Solves A^T x = b (plain transpose; for complex T this is A^T, not
  /// A^H — mirrors DenseLU::solveTransposed so the adjoint LPTV/PPV
  /// engines can switch backends). The transposed substitution gathers
  /// instead of scattering, so it reuses the same stored L/U pattern.
  std::vector<T> solveTransposed(std::span<const T> b) const;
  void solveTransposedInPlace(std::span<T> b) const;
  /// Concurrently callable variant (see solveInPlace above).
  void solveTransposedInPlace(std::span<T> b, LuSolveScratch<T>& scratch) const;

  /// Batched transposed solve, column-major like solveManyInPlace.
  void solveTransposedManyInPlace(std::span<T> b, size_t nrhs) const;
  /// Concurrently callable variant; chunking a column block across threads
  /// is bit-identical to one batched call, like solveManyInPlace.
  void solveTransposedManyInPlace(std::span<T> b, size_t nrhs,
                                  LuSolveScratch<T>& scratch) const;

  size_t size() const { return n_; }
  bool factored() const { return n_ > 0 && valid_; }
  size_t factorNonZeros() const { return lVal_.size() + uVal_.size(); }

 private:
  size_t n_ = 0;
  bool valid_ = false;
  size_t patternNnz_ = 0;  // nnz of the matrix factor() consumed
  // L (unit diagonal implicit) and U in CSC, column by column. U columns are
  // sorted ascending by permuted row index so the diagonal sits last and
  // refactor() can replay the left-looking updates in elimination order.
  std::vector<int> lPtr_, lIdx_;
  std::vector<T> lVal_;
  std::vector<int> uPtr_, uIdx_;
  std::vector<T> uVal_;
  std::vector<int> rowPerm_;     // rowPerm_[original row] = permuted row
  std::vector<int> permRow_;     // inverse: permuted row -> original row
  std::vector<int> colOrder_;    // column elimination order
  std::vector<int> invColOrder_; // inverse of colOrder_
  // Scratch reused across refactor/solve calls (kept zeroed between uses).
  // work_ backs refactor() (exclusive); scratch_ backs the scratch-less
  // const solves, which are therefore not concurrently callable.
  mutable std::vector<T> work_;
  mutable LuSolveScratch<T> scratch_;
};

}  // namespace psmn
