// Sparse LU factorization: left-looking Gilbert–Peierls with threshold
// partial pivoting and an approximate-minimum-degree-flavoured column
// pre-ordering. This is the solver used for netlists too large for the
// dense path; for the paper's benchmark circuits either backend works and
// tests assert that they agree.
#pragma once

#include <span>
#include <vector>

#include "numeric/sparse_matrix.hpp"

namespace psmn {

template <class T>
class SparseLU {
 public:
  SparseLU() = default;

  /// `pivotThreshold` in (0,1]: 1.0 is full partial pivoting; smaller values
  /// trade stability for sparsity preservation (SPICE-style 0.001..0.1).
  explicit SparseLU(const SparseMatrix<T>& a, double pivotThreshold = 0.1) {
    factor(a, pivotThreshold);
  }

  void factor(const SparseMatrix<T>& a, double pivotThreshold = 0.1);

  std::vector<T> solve(std::span<const T> b) const;
  void solveInPlace(std::span<T> b) const;

  size_t size() const { return n_; }
  bool factored() const { return n_ > 0; }
  size_t factorNonZeros() const { return lVal_.size() + uVal_.size(); }

 private:
  size_t n_ = 0;
  // L (unit diagonal implicit) and U in CSC, column by column.
  std::vector<int> lPtr_, lIdx_;
  std::vector<T> lVal_;
  std::vector<int> uPtr_, uIdx_;
  std::vector<T> uVal_;
  std::vector<int> rowPerm_;     // rowPerm_[original row] = permuted row
  std::vector<int> colOrder_;    // column elimination order
  std::vector<int> invColOrder_; // inverse of colOrder_
};

}  // namespace psmn
