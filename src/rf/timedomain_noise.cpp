#include "rf/timedomain_noise.hpp"

#include <cmath>

namespace psmn {

RealVector StatisticalWaveform::upper3() const {
  RealVector out(nominal.size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = nominal[i] + 3.0 * sigma[i];
  return out;
}

RealVector StatisticalWaveform::lower3() const {
  RealVector out(nominal.size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = nominal[i] - 3.0 * sigma[i];
  return out;
}

StatisticalWaveform statisticalWaveform(const PnoiseAnalysis& pnoise,
                                        int outIndex) {
  const LptvSolution& sol = pnoise.solution();
  const PssResult& pss = pnoise.pss();
  const auto& sources = pnoise.sources();
  const size_t m = sol.steps;

  StatisticalWaveform w;
  w.times.assign(pss.times.begin(), pss.times.begin() + m);
  w.nominal = pss.waveform(outIndex);
  w.sigma.assign(m, 0.0);
  const Real f = pnoise.offsetFreq();
  for (size_t k = 0; k < m; ++k) {
    Real var = 0.0;
    for (size_t s = 0; s < sources.size(); ++s) {
      var += std::norm(sol.envelopes[s][k][outIndex]) * sources[s].psd(f);
    }
    w.sigma[k] = std::sqrt(var);
  }
  return w;
}

}  // namespace psmn
