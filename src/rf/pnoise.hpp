// Periodic (cyclostationary) noise analysis — the engine behind the
// paper's mismatch analysis.
//
// Runs the LPTV solver at a small offset frequency (1 Hz by default, the
// paper's "virtual DC") for every injection source and reports, per output
// and per sideband N, the stationary-equivalent PSD at N*f0 + f together
// with the per-source contribution breakdown (paper SS V, eq. 10-11).
//
// The linear-solver backend follows the PSS result: a sparsely-integrated
// orbit (PssOptions::solver, kAuto above the crossover) makes every cyclic
// solve here ride the sparse LPTV factor cache; tests/test_rf_sparse.cpp
// pins dense-vs-sparse agreement of the PSD readouts.
#pragma once

#include <optional>

#include "rf/lptv.hpp"

namespace psmn {

struct PnoiseOptions {
  Real offsetFreq = 1.0;        // Hz; must be << f0
  bool includeMismatch = true;  // pseudo-noise sources from device mismatch
  bool includePhysical = false; // thermal/flicker device noise
  /// Optional execution runtime, forwarded to the LPTV solver
  /// (LptvOptions::pool): the B_k/V_k matrix recursions fan their column
  /// blocks across the pool with bit-identical results.
  ThreadPool* pool = nullptr;
};

/// Per-(output, sideband) noise readout.
struct PnoiseSideband {
  int harmonic = 0;
  Real offsetFreq = 1.0;
  Real totalPsd = 0.0;                // sum of contributions
  std::vector<Cplx> transfer;         // per source: P_N[out]
  std::vector<Real> contribution;     // per source: |P_N|^2 * S_src(f)
};

class PnoiseAnalysis {
 public:
  PnoiseAnalysis(const MnaSystem& sys, const PssResult& pss,
                 PnoiseOptions opt = {});

  /// Custom source-list variant, e.g. correlated-mismatch composite
  /// sources from CorrelatedMismatch::transformSources (paper SS III-C).
  PnoiseAnalysis(const MnaSystem& sys, const PssResult& pss,
                 std::vector<InjectionSource> sources, PnoiseOptions opt = {});

  /// Solves the LPTV system for all sources (direct method).
  void run();

  const std::vector<InjectionSource>& sources() const { return sources_; }
  const LptvSolution& solution() const;
  const PssResult& pss() const { return *pss_; }
  Real offsetFreq() const { return opt_.offsetFreq; }

  /// Readout at output unknown `outIndex`, sideband N (0 = baseband).
  PnoiseSideband sideband(int outIndex, int harmonic) const;

  /// Same readout through the adjoint LPTV solve (cross-check / ablation).
  PnoiseSideband sidebandAdjoint(int outIndex, int harmonic) const;

 private:
  const MnaSystem* sys_;
  const PssResult* pss_;
  PnoiseOptions opt_;
  std::vector<InjectionSource> sources_;
  LptvSolver solver_;
  std::optional<LptvSolution> solution_;
};

}  // namespace psmn
