#include "rf/ppv.hpp"

#include <cmath>

#include "numeric/dense_lu.hpp"
#include "numeric/sparse_lu.hpp"

namespace psmn {
namespace {

/// One backward-sweep step on dense linearizations:
/// z_k = (G_k + C_k/h)^{-T} y_k;  y_{k-1} = (C_{k-1}/h)^T z_k.
void sweepStepDense(const PssResult& pss, size_t k, Real h, RealVector& y,
                    RealVector& zk) {
  const size_t n = y.size();
  RealMatrix j = pss.gMats[k];
  for (size_t r = 0; r < n; ++r) {
    auto jr = j.row(r);
    const auto cr = pss.cMats[k].row(r);
    for (size_t c = 0; c < n; ++c) jr[c] += cr[c] / h;
  }
  DenseLU<Real> luJ(j);
  zk = luJ.solveTransposed(y);
  RealVector yPrev = matvecT(pss.cMats[k - 1], std::span<const Real>(zk));
  for (Real& v : yPrev) v /= h;
  y = std::move(yPrev);
}

/// Sparse backward sweep: assembles J_k = G_k + C_k/h into one merged
/// cached pattern and reuses the symbolic factorization downward through
/// the orbit (numeric refactor per step, exactly like the transient
/// workspace), with the transposed solve gathering over the kept pattern.
struct SparseSweep {
  MergedSparseAssembler<Real> jAsm;
  SparseLU<Real> lu;
  bool symbolic = false;

  void step(const PssResult& pss, size_t k, Real h, RealVector& y,
            RealVector& zk) {
    if (jAsm.assemble(pss.gSpMats[k], pss.cSpMats[k], 1.0 / h)) {
      symbolic = false;
    }
    if (!symbolic || !lu.refactor(jAsm.matrix)) {
      lu.factor(jAsm.matrix, 0.1, pss.ordering);
      symbolic = true;
    }
    zk = lu.solveTransposed(y);
    // y_{k-1} = (C_{k-1}^T z_k)/h: a gather over each CSC column.
    const RealSparse& cPrev = pss.cSpMats[k - 1];
    const auto ptr = cPrev.colPointers();
    const auto idx = cPrev.rowIndices();
    const auto val = cPrev.values();
    const size_t n = y.size();
    for (size_t j = 0; j < n; ++j) {
      Real acc = 0.0;
      for (int p = ptr[j]; p < ptr[j + 1]; ++p) acc += val[p] * zk[idx[p]];
      y[j] = acc / h;
    }
  }
};

}  // namespace

PpvResult computePpv(const MnaSystem& sys, const PssResult& pss) {
  PSMN_CHECK(pss.autonomous && pss.phaseIndex >= 0 && !pss.dxdT.empty(),
             "computePpv needs an autonomous PSS result");
  const size_t n = sys.size();
  const size_t m = pss.stepCount();
  const Real h = pss.stepSize();

  // Transposed bordered system:
  //   [ (Phi - I)^T  e_p ] [w_x]   [0]
  //   [ dxdT^T       0   ] [w_T] = [1]
  RealMatrix a(n + 1, n + 1);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) a(i, j) = pss.monodromy(j, i);
    a(i, i) -= 1.0;
  }
  for (size_t j = 0; j < n; ++j) a(n, j) = pss.dxdT[j];  // row n: dxdT^T
  a(pss.phaseIndex, n) = 1.0;                            // column n: e_phase

  RealVector rhs(n + 1, 0.0);
  rhs[n] = 1.0;
  DenseLU<Real> lu(a);
  const RealVector w = lu.solve(rhs);

  PpvResult res;
  res.wx.assign(w.begin(), w.begin() + n);
  res.wT = w[n];

  // Backward sweep: y_M = w_x; z_k = J_k^{-T} y_k; y_{k-1} = D_k^T z_k.
  res.z.assign(m + 1, RealVector());
  RealVector y = res.wx;
  SparseSweep sweep;
  for (size_t k = m; k >= 1; --k) {
    RealVector zk;
    if (pss.sparseLinearizations) sweep.step(pss, k, h, y, zk);
    else sweepStepDense(pss, k, h, y, zk);
    res.z[k] = std::move(zk);
  }
  return res;
}

Real PpvResult::periodSensitivity(const MnaSystem& sys, const PssResult& pss,
                                  const InjectionSource& src) const {
  const size_t m = pss.stepCount();
  const Real h = pss.stepSize();
  RealVector bf, bq, bqPrev;
  sys.evalInjection(src, pss.states[0], pss.times[0], nullptr, &bqPrev);
  Real acc = 0.0;
  for (size_t k = 1; k <= m; ++k) {
    sys.evalInjection(src, pss.states[k], pss.times[k], &bf, &bq);
    const RealVector& zk = z[k];
    for (size_t i = 0; i < zk.size(); ++i) {
      acc += zk[i] * (bf[i] + (bq[i] - bqPrev[i]) / h);
    }
    bqPrev = bq;
  }
  // dT/dp = w_x^T dx(T)/dp = sum_k z_k^T g_k (signs: the BE recursion for
  // the forward sensitivity is J_k s_k = D_k s_{k-1} - g_k, and
  // dT/dp = -w_x^T s_M).
  return acc;
}

Real PpvResult::frequencySensitivity(const MnaSystem& sys,
                                     const PssResult& pss,
                                     const InjectionSource& src) const {
  const Real f0 = 1.0 / pss.period;
  return -f0 * f0 * periodSensitivity(sys, pss, src);
}

}  // namespace psmn
