// Time-domain cyclostationary noise: sigma(t) of an output along the
// periodic steady state (paper Fig. 8 "statistical waveform").
//
// With quasi-static mismatch pseudo-noise (offset 1 Hz), the complex
// envelope p^{(i)}(t) is the per-parameter sensitivity of the whole orbit,
// so the point-wise standard deviation is
//   sigma(t_k)^2 = sum_i |p^{(i)}_k[out]|^2 * sigma_i^2.
#pragma once

#include "rf/pnoise.hpp"

namespace psmn {

struct StatisticalWaveform {
  std::vector<Real> times;    // one period
  RealVector nominal;         // PSS waveform
  RealVector sigma;           // sigma(t)
  RealVector upper3() const;  // nominal + 3 sigma
  RealVector lower3() const;  // nominal - 3 sigma
};

StatisticalWaveform statisticalWaveform(const PnoiseAnalysis& pnoise,
                                        int outIndex);

}  // namespace psmn
