// Time-domain cyclostationary noise: sigma(t) of an output along the
// periodic steady state (paper Fig. 8 "statistical waveform").
//
// With quasi-static mismatch pseudo-noise (offset 1 Hz), the complex
// envelope p^{(i)}(t) is the per-parameter sensitivity of the whole orbit,
// so the point-wise standard deviation is
//   sigma(t_k)^2 = sum_i |p^{(i)}_k[out]|^2 * sigma_i^2.
// tests/test_mc_validation.cpp cross-checks this estimate against the
// sample sigma of seeded Monte-Carlo PSS re-solves (the paper's Table II
// comparison in miniature), and tests/test_rf_sparse.cpp pins the
// dense-vs-sparse backend agreement of sigma(t).
#pragma once

#include "rf/pnoise.hpp"

namespace psmn {

struct StatisticalWaveform {
  std::vector<Real> times;    // one period
  RealVector nominal;         // PSS waveform
  RealVector sigma;           // sigma(t)
  RealVector upper3() const;  // nominal + 3 sigma
  RealVector lower3() const;  // nominal - 3 sigma
};

StatisticalWaveform statisticalWaveform(const PnoiseAnalysis& pnoise,
                                        int outIndex);

}  // namespace psmn
