#include "rf/lptv.hpp"

#include <cmath>
#include <numbers>

#include "numeric/dense_lu.hpp"
#include "numeric/sparse_lu.hpp"
#include "runtime/thread_pool.hpp"
#include "util/telemetry.hpp"

namespace psmn {
namespace {

constexpr Real kTwoPi = 2.0 * std::numbers::pi_v<Real>;

/// Per-slot scratch for the column-partitioned B_k / V_k recursions: at
/// most one column block runs per slot at a time (ThreadPool contract), so
/// the coupling vectors and the LU solve scratch need no locking.
struct LptvSlotScratch {
  CplxVector col, dv;
  LuSolveScratch<Cplx> lu;
};

CplxMatrix stepMatrix(const RealMatrix& g, const RealMatrix& c, Real invH,
                      Cplx jw) {
  const size_t n = g.rows();
  CplxMatrix k(n, n);
  const Cplx coef = invH + jw;
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) k(i, j) = g(i, j) + coef * c(i, j);
  return k;
}

// ---------------------------------------------------------------------
// Backend-agnostic access to the PSS orbit linearizations: the PSS result
// stores G_k/C_k either dense or in the sparse workspace's cached pattern;
// the cyclic solves below only touch them through these kernels.

/// out = (C_{k-1} v) / h  (the step coupling D_k applied to a complex
/// envelope; C is real, so this is two real sparse multiplies in one).
void applyD(const PssResult& pss, size_t k, std::span<const Cplx> v,
            CplxVector& out, Real invH) {
  const size_t n = v.size();
  out.assign(n, Cplx{});
  if (pss.sparseLinearizations) {
    const RealSparse& c = pss.cSpMats[k - 1];
    const auto ptr = c.colPointers();
    const auto idx = c.rowIndices();
    const auto val = c.values();
    for (size_t j = 0; j < n; ++j) {
      const Cplx xj = v[j];
      if (xj == Cplx{}) continue;
      for (int p = ptr[j]; p < ptr[j + 1]; ++p) out[idx[p]] += val[p] * xj;
    }
  } else {
    const RealMatrix& c = pss.cMats[k - 1];
    for (size_t i = 0; i < n; ++i) {
      Cplx acc{};
      const auto row = c.row(i);
      for (size_t j = 0; j < n; ++j) acc += row[j] * v[j];
      out[i] = acc;
    }
  }
  for (auto& o : out) o *= invH;
}

/// out = (C_{k-1}^T v) / h  (D_k^T for the adjoint sweep).
void applyDT(const PssResult& pss, size_t k, std::span<const Cplx> v,
             CplxVector& out, Real invH) {
  const size_t n = v.size();
  if (pss.sparseLinearizations) {
    const RealSparse& c = pss.cSpMats[k - 1];
    const auto ptr = c.colPointers();
    const auto idx = c.rowIndices();
    const auto val = c.values();
    out.resize(n);
    for (size_t j = 0; j < n; ++j) {
      Cplx acc{};
      for (int p = ptr[j]; p < ptr[j + 1]; ++p) acc += val[p] * v[idx[p]];
      out[j] = acc * invH;
    }
  } else {
    const RealMatrix& c = pss.cMats[k - 1];
    out.assign(n, Cplx{});
    for (size_t i = 0; i < n; ++i) {
      const Cplx vi = v[i];
      if (vi == Cplx{}) continue;
      const auto row = c.row(i);
      for (size_t j = 0; j < n; ++j) out[j] += row[j] * vi;
    }
    for (auto& o : out) o *= invH;
  }
}

/// The LPTV factor cache: K_k = G_k + (1/h + j w) C_k factored for every
/// grid step k = 1..M, kept for the closure and forward/adjoint passes.
/// Dense results use DenseLU as before; sparse results assemble K into one
/// merged complex pattern (cached scatter maps, like the transient
/// workspace's Jacobian) and factor with SparseLU — the symbolic
/// factorization of step 1 is inherited by every later step through a
/// copy + numeric refactor, so the O(n^3)-per-step dense cost collapses to
/// O(fill) per step.
class StepFactors {
 public:
  StepFactors(const PssResult& pss, Real invH, Cplx jw) {
    const size_t m = pss.stepCount();
    sparse_ = pss.sparseLinearizations;
    if (!sparse_) {
      dense_.reserve(m);
      for (size_t k = 1; k <= m; ++k) {
        dense_.emplace_back(stepMatrix(pss.gMats[k], pss.cMats[k], invH, jw));
      }
      return;
    }
    lus_.resize(m);
    const Cplx coef = invH + jw;
    MergedSparseAssembler<Cplx> kAsm;
    bool symbolic = false;
    for (size_t k = 1; k <= m; ++k) {
      // A pattern change along the orbit (an evalSparse extension mid-run)
      // rebuilds the merge and restarts the symbolic reuse chain.
      if (kAsm.assemble(pss.gSpMats[k], pss.cSpMats[k], coef)) {
        symbolic = false;
      }
      SparseLU<Cplx>& lu = lus_[k - 1];
      if (symbolic) {
        lu = lus_[k - 2];  // inherit the symbolic factorization
        if (!lu.refactor(kAsm.matrix)) {
          lu.factor(kAsm.matrix, 0.1, pss.ordering);
        }
      } else {
        lu.factor(kAsm.matrix, 0.1, pss.ordering);
        symbolic = true;
      }
    }
  }

  // k = 1..M selects the step factor, matching the cyclic system indexing.
  void solveInPlace(size_t k, std::span<Cplx> b) const {
    if (sparse_) lus_[k - 1].solveInPlace(b);
    else dense_[k - 1].solveInPlace(b);
  }
  void solveManyInPlace(size_t k, std::span<Cplx> b, size_t nrhs) const {
    if (sparse_) lus_[k - 1].solveManyInPlace(b, nrhs);
    else dense_[k - 1].solveManyInPlace(b, nrhs);
  }
  /// Concurrently callable variant: threads sharing step factor k solve
  /// disjoint column blocks, one scratch per slot.
  void solveManyInPlace(size_t k, std::span<Cplx> b, size_t nrhs,
                        LuSolveScratch<Cplx>& scratch) const {
    if (sparse_) lus_[k - 1].solveManyInPlace(b, nrhs, scratch);
    else dense_[k - 1].solveManyInPlace(b, nrhs, scratch);
  }
  void solveTransposedInPlace(size_t k, std::span<Cplx> b) const {
    if (sparse_) lus_[k - 1].solveTransposedInPlace(b);
    else dense_[k - 1].solveTransposedInPlace(b);
  }
  void solveTransposedManyInPlace(size_t k, std::span<Cplx> b,
                                  size_t nrhs) const {
    if (sparse_) lus_[k - 1].solveTransposedManyInPlace(b, nrhs);
    else dense_[k - 1].solveTransposedManyInPlace(b, nrhs);
  }
  /// Concurrently callable variant (see solveManyInPlace above).
  void solveTransposedManyInPlace(size_t k, std::span<Cplx> b, size_t nrhs,
                                  LuSolveScratch<Cplx>& scratch) const {
    if (sparse_) lus_[k - 1].solveTransposedManyInPlace(b, nrhs, scratch);
    else dense_[k - 1].solveTransposedManyInPlace(b, nrhs, scratch);
  }

 private:
  bool sparse_ = false;
  std::vector<DenseLU<Cplx>> dense_;
  std::vector<SparseLU<Cplx>> lus_;
};

/// Cyclic-closure solver with the oscillator phase-mode correction.
///
/// For an autonomous PSS the continuous-time Floquet multiplier of the
/// phase mode is exactly 1, so the closure matrix S(w) has an eigenvalue
/// lamStar = exp(-j w T). The backward-Euler discretization perturbs it to
/// lam1 = lamStar*(1 + O(h)); at a 1 Hz offset |1 - lamStar| = wT ~ 1e-9
/// is far below that O(h) error, which would wipe out the 1/f phase-noise
/// amplification entirely (the discrete closure looks regular). We restore
/// the analytically-known eigenvalue with a rank-one spectral update
///   S' = S + (lamStar - lam1) u v^T,  v^T u = 1,
/// solved through the Sherman-Morrison identity:
///   (I-S')^{-1} b = (I-S)^{-1} b
///                   + u (v^T b) (lamStar - lam1) / ((1-lam1)(1-lamStar)).
/// (1 - lamStar) is evaluated as 2 sin^2(wT/2) + j sin(wT) to avoid the
/// catastrophic cancellation of 1 - cos(wT).
class ClosureSolver {
 public:
  ClosureSolver(const CplxMatrix& s, bool phaseCorrect, Real omega,
                Real period) {
    const size_t n = s.rows();
    CplxMatrix iMinusS = CplxMatrix::identity(n);
    iMinusS -= s;
    lu_.factor(iMinusS);
    if (!phaseCorrect) return;

    const Real theta = omega * period;
    const Real sh = std::sin(0.5 * theta);
    oneMinusLamStar_ = Cplx(2.0 * sh * sh, std::sin(theta));
    const Cplx lamStar = Cplx(1.0, 0.0) - oneMinusLamStar_;

    // Right/left eigenvectors of S for the eigenvalue nearest lamStar via
    // inverse iteration on (S - lamStar I).
    CplxMatrix shifted = s;
    for (size_t i = 0; i < n; ++i) shifted(i, i) -= lamStar;
    DenseLU<Cplx> inv(shifted);
    u_.assign(n, Cplx(1.0, 0.0));
    v_.assign(n, Cplx(1.0, 0.0));
    for (int it = 0; it < 40; ++it) {
      inv.solveInPlace(u_);
      inv.solveTransposedInPlace(v_);
      Real nu = 0.0, nv = 0.0;
      for (const Cplx& x : u_) nu = std::max(nu, std::abs(x));
      for (const Cplx& x : v_) nv = std::max(nv, std::abs(x));
      PSMN_CHECK(nu > 0.0 && nv > 0.0, "phase-mode inverse iteration died");
      for (Cplx& x : u_) x /= nu;
      for (Cplx& x : v_) x /= nv;
    }
    // Rayleigh quotient lam1 = v^T S u / v^T u and normalization v^T u = 1.
    const CplxVector su = matvec(s, std::span<const Cplx>(u_));
    Cplx vsu{}, vu{};
    for (size_t i = 0; i < n; ++i) {
      vsu += v_[i] * su[i];
      vu += v_[i] * u_[i];
    }
    PSMN_CHECK(std::abs(vu) > 1e-12, "degenerate phase-mode eigenvectors");
    lam1_ = vsu / vu;
    for (Cplx& x : v_) x /= vu;
    corrected_ = true;
  }

  CplxVector solve(std::span<const Cplx> b) const {
    CplxVector x = lu_.solve(b);
    if (!corrected_) return x;
    Cplx vb{};
    for (size_t i = 0; i < b.size(); ++i) vb += v_[i] * b[i];
    const Cplx oneMinusLam1 = Cplx(1.0, 0.0) - lam1_;
    const Cplx gain = vb * (oneMinusLam1 - oneMinusLamStar_) /
                      (oneMinusLam1 * oneMinusLamStar_);
    for (size_t i = 0; i < x.size(); ++i) x[i] += gain * u_[i];
    return x;
  }

 private:
  DenseLU<Cplx> lu_;
  bool corrected_ = false;
  CplxVector u_, v_;
  Cplx lam1_{};
  Cplx oneMinusLamStar_{};
};

}  // namespace

Cplx LptvSolution::harmonic(size_t sourceIdx, int outIndex, int n) const {
  PSMN_CHECK(sourceIdx < envelopes.size(), "bad source index");
  PSMN_CHECK(outIndex >= 0, "bad output index");
  const auto& env = envelopes[sourceIdx];
  Cplx acc{};
  const size_t m = env.size();
  for (size_t k = 0; k < m; ++k) {
    const Real phase = -kTwoPi * n * static_cast<Real>(k) / m;
    acc += env[k][outIndex] * Cplx(std::cos(phase), std::sin(phase));
  }
  return acc / static_cast<Real>(m);
}

LptvSolver::LptvSolver(const MnaSystem& sys, const PssResult& pss,
                       LptvOptions opt)
    : sys_(&sys), pss_(&pss), opt_(opt) {
  PSMN_CHECK(pss.stepCount() > 0, "empty PSS result");
  const size_t stored = pss.sparseLinearizations ? pss.gSpMats.size()
                                                 : pss.gMats.size();
  PSMN_CHECK(stored == pss.times.size(),
             "PSS result lacks stored linearizations");
}

std::vector<CplxVector> LptvSolver::sourceEnvelope(const InjectionSource& src,
                                                   Real offsetFreq) const {
  const size_t n = sys_->size();
  const size_t m = pss_->stepCount();
  const Real h = pss_->stepSize();
  const Cplx jw(0.0, kTwoPi * offsetFreq);

  // bq at all grid points first (including k=0 for the backward difference
  // at k=1; the grid is periodic so bq[0] == bq[M] to PSS tolerance).
  std::vector<RealVector> bqs(m + 1);
  std::vector<RealVector> bfs(m + 1);
  for (size_t k = 0; k <= m; ++k) {
    sys_->evalInjection(src, pss_->states[k], pss_->times[k], &bfs[k],
                        &bqs[k]);
  }
  std::vector<CplxVector> b(m + 1);  // b[k] for k = 1..M (b[0] unused)
  for (size_t k = 1; k <= m; ++k) {
    b[k].assign(n, Cplx{});
    for (size_t i = 0; i < n; ++i) {
      b[k][i] = -bfs[k][i] - (bqs[k][i] - bqs[k - 1][i]) / h - jw * bqs[k][i];
    }
  }
  return b;
}

LptvSolution LptvSolver::solveDirect(std::span<const InjectionSource> sources,
                                     Real offsetFreq) const {
  TraceSpan span(Phase::kLptv, "lptv_direct");
  const size_t n = sys_->size();
  const size_t m = pss_->stepCount();
  const Real h = pss_->stepSize();
  const Real invH = 1.0 / h;
  const Cplx jw(0.0, kTwoPi * offsetFreq);
  const size_t ns = sources.size();

  // Injection envelopes b_k per source.
  std::vector<std::vector<CplxVector>> b(ns);
  for (size_t s = 0; s < ns; ++s) b[s] = sourceEnvelope(sources[s], offsetFreq);

  // Step-matrix factor cache K_k, k = 1..M (dense LU or pattern-sharing
  // sparse LU depending on how the PSS stored its linearizations).
  const StepFactors lus(*pss_, invH, jw);

  // Pass 1: propagate homogeneous (B) and particular (alpha) parts.
  //   alpha_k = K_k^{-1}(D_k alpha_{k-1} + b_k),  B_k = K_k^{-1} D_k B_{k-1}.
  CplxMatrix bMat = CplxMatrix::identity(n);
  std::vector<CplxVector> alpha(ns, CplxVector(n, Cplx{}));
  CplxVector dv(n);
  CplxVector colBuf(n * n);  // column-major block for the batched B update
  // Column fan-out for the B recursion: column j of B_k depends only on
  // column j of B_{k-1}, so the coupling, the batched substitution, and
  // the write-back partition into per-slot blocks with bit-identical
  // results for every jobs count (serial = one block).
  ThreadPool* pool = opt_.pool;
  const size_t slots = columnBlockSlots(pool, n);
  std::vector<LptvSlotScratch> slotScratch(slots);
  const auto updateBColumns = [&](size_t k, size_t j0, size_t j1,
                                  size_t slot) {
    LptvSlotScratch& sl = slotScratch[slot];
    sl.col.resize(n);
    for (size_t j = j0; j < j1; ++j) {
      for (size_t i = 0; i < n; ++i) sl.col[i] = bMat(i, j);
      applyD(*pss_, k, sl.col, sl.dv, invH);
      std::copy(sl.dv.begin(), sl.dv.end(), colBuf.begin() + j * n);
    }
    lus.solveManyInPlace(k,
                         std::span<Cplx>(colBuf.data() + j0 * n,
                                         (j1 - j0) * n),
                         j1 - j0, sl.lu);
    // Safe in-body write-back: no other block reads these columns.
    for (size_t j = j0; j < j1; ++j) {
      for (size_t i = 0; i < n; ++i) bMat(i, j) = colBuf[j * n + i];
    }
  };
  for (size_t k = 1; k <= m; ++k) {
    for (size_t s = 0; s < ns; ++s) {
      applyD(*pss_, k, alpha[s], dv, invH);
      for (size_t i = 0; i < n; ++i) dv[i] += b[s][k][i];
      lus.solveInPlace(k, dv);
      alpha[s].assign(dv.begin(), dv.end());
    }
    forEachColumnBlock(pool, n,
                       [&](size_t j0, size_t j1, size_t slot) {
                         updateBColumns(k, j0, j1, slot);
                       });
  }

  // Cyclic closure: (I - B_M) p_0 = alpha_M, with the phase-mode spectral
  // correction for oscillators.
  const ClosureSolver closure(bMat, pss_->autonomous, kTwoPi * offsetFreq,
                              pss_->period);

  LptvSolution sol;
  sol.omega = kTwoPi * offsetFreq;
  sol.steps = m;
  sol.envelopes.assign(ns, {});
  for (size_t s = 0; s < ns; ++s) {
    CplxVector p0 = closure.solve(alpha[s]);
    // Pass 2: forward-substitute the full envelope with cached factors.
    std::vector<CplxVector> env(m);
    env[0] = p0;
    CplxVector p = std::move(p0);
    for (size_t k = 1; k < m; ++k) {
      applyD(*pss_, k, p, dv, invH);
      for (size_t i = 0; i < n; ++i) dv[i] += b[s][k][i];
      lus.solveInPlace(k, dv);
      p.assign(dv.begin(), dv.end());
      env[k] = p;
    }
    sol.envelopes[s] = std::move(env);
  }
  return sol;
}

CplxVector LptvSolver::solveAdjoint(std::span<const InjectionSource> sources,
                                    Real offsetFreq, int outIndex,
                                    int harmonic) const {
  TraceSpan span(Phase::kLptv, "lptv_adjoint");
  const size_t n = sys_->size();
  const size_t m = pss_->stepCount();
  const Real h = pss_->stepSize();
  const Real invH = 1.0 / h;
  const Cplx jw(0.0, kTwoPi * offsetFreq);
  PSMN_CHECK(outIndex >= 0 && outIndex < static_cast<int>(n),
             "bad output index");

  // Functional: P_N = sum_{k=0}^{M-1} w_k p_k[out] with p_0 == p_M, i.e. in
  // terms of unknowns p_1..p_M the weight of p_M is w_0.
  auto weight = [&](size_t k) {
    const Real phase = -kTwoPi * harmonic * static_cast<Real>(k % m) / m;
    return Cplx(std::cos(phase), std::sin(phase)) / static_cast<Real>(m);
  };

  // Adjoint cyclic system (plain transpose, matching the complex-linear
  // functional):
  //   K_k^T l_k - D_{k+1}^T l_{k+1} = w_k e_out   (k = 1..M-1)
  //   K_M^T l_M - D_1^T   l_1       = w_0 e_out
  // Parametrize l_k = u_k + V_k l_1 downward from k = M.
  const StepFactors lus(*pss_, invH, jw);

  // u_k and V_k, stored for k=1..M.
  std::vector<CplxVector> u(m + 1, CplxVector(n, Cplx{}));
  std::vector<CplxMatrix> vMat(m + 1);
  CplxVector tmp(n);
  CplxVector colBuf(n * n);
  // Column fan-out for the V recursion, mirroring solveDirect's B update:
  // column j of V_k depends only on column j of V_{k+1}.
  ThreadPool* pool = opt_.pool;
  const size_t slots = columnBlockSlots(pool, n);
  std::vector<LptvSlotScratch> slotScratch(slots);
  const auto updateVColumns = [&](size_t k, const CplxMatrix& vNext,
                                  CplxMatrix& vOut, size_t j0, size_t j1,
                                  size_t slot) {
    LptvSlotScratch& sl = slotScratch[slot];
    sl.col.resize(n);
    for (size_t j = j0; j < j1; ++j) {
      for (size_t i = 0; i < n; ++i) sl.col[i] = vNext(i, j);
      applyDT(*pss_, k + 1, sl.col, sl.dv, invH);
      std::copy(sl.dv.begin(), sl.dv.end(), colBuf.begin() + j * n);
    }
    lus.solveTransposedManyInPlace(k,
                                   std::span<Cplx>(colBuf.data() + j0 * n,
                                                   (j1 - j0) * n),
                                   j1 - j0, sl.lu);
    for (size_t j = j0; j < j1; ++j) {
      for (size_t i = 0; i < n; ++i) vOut(i, j) = colBuf[j * n + i];
    }
  };
  // k = M:
  {
    CplxVector rhs(n, Cplx{});
    rhs[outIndex] = weight(0);  // w_0 attaches to p_M
    lus.solveTransposedInPlace(m, rhs);
    u[m] = std::move(rhs);
    // V_M = K_M^{-T} D_1^T. Column j of D_1^T is row j of D_1 = C_0/h;
    // the sparse storage fills the whole column-major block in one CSC
    // sweep: entry C_0(r, c) lands at block position (row c, column r).
    // The assembly scatters across columns, so it stays serial; the
    // transposed substitution partitions per column block.
    std::fill(colBuf.begin(), colBuf.end(), Cplx{});
    if (pss_->sparseLinearizations) {
      const RealSparse& c0 = pss_->cSpMats[0];
      const auto ptr = c0.colPointers();
      const auto idx = c0.rowIndices();
      const auto val = c0.values();
      for (size_t cc = 0; cc < n; ++cc) {
        for (int p = ptr[cc]; p < ptr[cc + 1]; ++p) {
          colBuf[static_cast<size_t>(idx[p]) * n + cc] = val[p] * invH;
        }
      }
    } else {
      for (size_t j = 0; j < n; ++j) {
        for (size_t i = 0; i < n; ++i) {
          colBuf[j * n + i] = pss_->cMats[0](j, i) * invH;
        }
      }
    }
    CplxMatrix vm(n, n);
    forEachColumnBlock(
        pool, n, [&](size_t j0, size_t j1, size_t slot) {
          lus.solveTransposedManyInPlace(
              m,
              std::span<Cplx>(colBuf.data() + j0 * n, (j1 - j0) * n),
              j1 - j0, slotScratch[slot].lu);
          for (size_t j = j0; j < j1; ++j) {
            for (size_t i = 0; i < n; ++i) vm(i, j) = colBuf[j * n + i];
          }
        });
    vMat[m] = std::move(vm);
  }
  for (size_t k = m - 1; k >= 1; --k) {
    // l_k = K_k^{-T}(w_k e_out + D_{k+1}^T (u_{k+1} + V_{k+1} l_1)).
    applyDT(*pss_, k + 1, u[k + 1], tmp, invH);
    tmp[outIndex] += weight(k);
    lus.solveTransposedInPlace(k, tmp);
    u[k].assign(tmp.begin(), tmp.end());
    // V_k = K_k^{-T} D_{k+1}^T V_{k+1}, batched over per-slot column
    // blocks.
    CplxMatrix vk(n, n);
    forEachColumnBlock(pool, n,
                       [&](size_t j0, size_t j1, size_t slot) {
                         updateVColumns(k, vMat[k + 1], vk, j0, j1, slot);
                       });
    vMat[k] = std::move(vk);
  }
  // Close: (I - V_1) l_1 = u_1. The adjoint closure matrix V_1 is a cyclic
  // permutation-transpose of the forward one, so it shares the corrupted
  // phase eigenvalue and receives the same spectral correction.
  const ClosureSolver closure(vMat[1], pss_->autonomous,
                              kTwoPi * offsetFreq, pss_->period);
  CplxVector l1 = closure.solve(u[1]);

  // Recover all lambda_k.
  std::vector<CplxVector> lambda(m + 1);
  lambda[1] = l1;
  for (size_t k = m; k >= 2; --k) {
    lambda[k] = u[k];
    const CplxVector vl = matvec(vMat[k], std::span<const Cplx>(lambda[1]));
    for (size_t i = 0; i < n; ++i) lambda[k][i] += vl[i];
  }

  // Transfer per source: TF_s = sum_k lambda_k^T b_{s,k}.
  CplxVector out(sources.size(), Cplx{});
  for (size_t s = 0; s < sources.size(); ++s) {
    const auto b = sourceEnvelope(sources[s], offsetFreq);
    Cplx acc{};
    for (size_t k = 1; k <= m; ++k) {
      for (size_t i = 0; i < n; ++i) acc += lambda[k][i] * b[k][i];
    }
    out[s] = acc;
  }
  return out;
}

}  // namespace psmn
