#include "rf/pnoise.hpp"

#include "util/telemetry.hpp"

namespace psmn {

PnoiseAnalysis::PnoiseAnalysis(const MnaSystem& sys, const PssResult& pss,
                               PnoiseOptions opt)
    : PnoiseAnalysis(
          sys, pss,
          sys.collectSources(opt.includeMismatch, opt.includePhysical), opt) {}

PnoiseAnalysis::PnoiseAnalysis(const MnaSystem& sys, const PssResult& pss,
                               std::vector<InjectionSource> sources,
                               PnoiseOptions opt)
    : sys_(&sys),
      pss_(&pss),
      opt_(opt),
      sources_(std::move(sources)),
      solver_(sys, pss, LptvOptions{opt.pool}) {
  PSMN_CHECK(opt_.offsetFreq > 0.0, "offset frequency must be positive");
  PSMN_CHECK(!sources_.empty(), "no injection sources");
  const Real f0 = 1.0 / pss.period;
  PSMN_CHECK(opt_.offsetFreq < 0.01 * f0,
             "offset frequency must be far below the fundamental");
}

void PnoiseAnalysis::run() {
  TraceSpan span(Phase::kPnoise, "pnoise");
  solution_ = solver_.solveDirect(sources_, opt_.offsetFreq);
}

const LptvSolution& PnoiseAnalysis::solution() const {
  PSMN_CHECK(solution_.has_value(), "call run() first");
  return *solution_;
}

PnoiseSideband PnoiseAnalysis::sideband(int outIndex, int harmonic) const {
  PSMN_CHECK(solution_.has_value(), "call run() first");
  PnoiseSideband sb;
  sb.harmonic = harmonic;
  sb.offsetFreq = opt_.offsetFreq;
  sb.transfer.reserve(sources_.size());
  sb.contribution.reserve(sources_.size());
  for (size_t s = 0; s < sources_.size(); ++s) {
    const Cplx tf = solution_->harmonic(s, outIndex, harmonic);
    const Real contrib = std::norm(tf) * sources_[s].psd(opt_.offsetFreq);
    sb.transfer.push_back(tf);
    sb.contribution.push_back(contrib);
    sb.totalPsd += contrib;
  }
  return sb;
}

PnoiseSideband PnoiseAnalysis::sidebandAdjoint(int outIndex,
                                               int harmonic) const {
  PnoiseSideband sb;
  sb.harmonic = harmonic;
  sb.offsetFreq = opt_.offsetFreq;
  sb.transfer =
      solver_.solveAdjoint(sources_, opt_.offsetFreq, outIndex, harmonic);
  sb.contribution.reserve(sources_.size());
  for (size_t s = 0; s < sources_.size(); ++s) {
    const Real contrib =
        std::norm(sb.transfer[s]) * sources_[s].psd(opt_.offsetFreq);
    sb.contribution.push_back(contrib);
    sb.totalPsd += contrib;
  }
  return sb;
}

}  // namespace psmn
