#include "rf/pss.hpp"

#include <cmath>

#include <algorithm>

#include "engine/dc.hpp"
#include "meas/measure.hpp"
#include "numeric/dense_lu.hpp"
#include "numeric/fourier.hpp"

namespace psmn {
namespace {

Real maxAbsVec(std::span<const Real> v) {
  Real m = 0.0;
  for (Real x : v) m = std::max(m, std::fabs(x));
  return m;
}

struct PeriodIntegration {
  RealVector xEnd;
  std::vector<RealVector> states;   // 0..M
  std::vector<RealMatrix> gMats;    // 0..M
  std::vector<RealMatrix> cMats;    // 0..M
  RealMatrix monodromy;             // only when wanted
  size_t newtonIterations = 0;
};

/// Integrates one period [t0, t0+T] with M backward-Euler steps from x0.
/// Optionally accumulates the monodromy matrix and stores the trajectory
/// with its linearizations.
PeriodIntegration integratePeriod(const MnaSystem& sys, const RealVector& x0,
                                  Real t0, Real period, int steps,
                                  const PssOptions& opt, bool wantMonodromy,
                                  bool wantTrajectory) {
  const size_t n = sys.size();
  const Real h = period / steps;
  PeriodIntegration out;

  MnaSystem::EvalOptions eopt;
  eopt.gshunt = opt.gshunt;

  RealVector x = x0;
  RealVector f, q, qPrev;
  RealMatrix g, c, cPrev;
  sys.evalDense(x, t0, nullptr, &qPrev, &g, &cPrev, eopt);
  if (wantTrajectory) {
    out.states.push_back(x);
    out.gMats.push_back(g);
    out.cMats.push_back(cPrev);
  }
  if (wantMonodromy) out.monodromy = RealMatrix::identity(n);

  for (int k = 1; k <= steps; ++k) {
    const Real t = t0 + h * k;
    // Backward-Euler Newton: R = f(x1,t) + (q(x1) - qPrev)/h.
    bool converged = false;
    for (int iter = 0; iter < opt.maxNewton; ++iter) {
      sys.evalDense(x, t, &f, &q, &g, &c, eopt);
      RealVector r(n);
      for (size_t i = 0; i < n; ++i) r[i] = f[i] + (q[i] - qPrev[i]) / h;
      const Real resNorm = maxAbsVec(r);
      // J = G + C/h.
      for (size_t i = 0; i < n; ++i) {
        auto grow = g.row(i);
        const auto crow = c.row(i);
        for (size_t j = 0; j < n; ++j) grow[j] += crow[j] / h;
      }
      DenseLU<Real> lu(g);
      for (Real& v : r) v = -v;
      const RealVector dx = lu.solve(r);
      const Real stepNorm = maxAbsVec(dx);
      Real scale = 1.0;
      if (stepNorm > opt.newtonMaxStep) scale = opt.newtonMaxStep / stepNorm;
      for (size_t i = 0; i < n; ++i) x[i] += scale * dx[i];
      ++out.newtonIterations;
      if (resNorm < opt.newtonResidualTol &&
          stepNorm * scale < opt.newtonUpdateTol) {
        converged = true;
        break;
      }
    }
    if (!converged) {
      throw ConvergenceError("PSS inner Newton failed at step " +
                             std::to_string(k));
    }
    // Linearization at the accepted point.
    sys.evalDense(x, t, nullptr, &q, &g, &c, eopt);
    if (wantMonodromy || wantTrajectory) {
      RealMatrix j = g;
      for (size_t i = 0; i < n; ++i) {
        auto jr = j.row(i);
        const auto cr = c.row(i);
        for (size_t jj = 0; jj < n; ++jj) jr[jj] += cr[jj] / h;
      }
      if (wantMonodromy) {
        // Phi <- J^{-1} (C_{k-1}/h) Phi.
        DenseLU<Real> lu(j);
        RealMatrix rhs = matmul(cPrev, out.monodromy);
        rhs *= 1.0 / h;
        out.monodromy = lu.solveMatrix(rhs);
      }
    }
    if (wantTrajectory) {
      out.states.push_back(x);
      out.gMats.push_back(g);
      out.cMats.push_back(c);
    }
    qPrev = q;
    cPrev = c;
  }
  out.xEnd = std::move(x);
  return out;
}

PssResult packResult(const MnaSystem& sys, const RealVector& x0, Real t0,
                     Real period, int steps, const PssOptions& opt,
                     int shootIters, size_t newtonIters) {
  PeriodIntegration fin = integratePeriod(sys, x0, t0, period, steps, opt,
                                          /*wantMonodromy=*/true,
                                          /*wantTrajectory=*/true);
  PssResult res;
  res.period = period;
  res.t0 = t0;
  res.states = std::move(fin.states);
  res.gMats = std::move(fin.gMats);
  res.cMats = std::move(fin.cMats);
  res.monodromy = std::move(fin.monodromy);
  res.shootingIterations = shootIters;
  res.newtonIterations = newtonIters + fin.newtonIterations;
  const Real h = period / steps;
  res.times.resize(steps + 1);
  for (int k = 0; k <= steps; ++k) res.times[k] = t0 + h * k;
  return res;
}

}  // namespace

RealVector PssResult::waveform(int mnaIndex) const {
  PSMN_CHECK(mnaIndex >= 0, "waveform of ground requested");
  const size_t m = stepCount();
  RealVector w(m);
  for (size_t k = 0; k < m; ++k) w[k] = states[k][mnaIndex];
  return w;
}

Cplx PssResult::fourier(int mnaIndex, int harmonic) const {
  const RealVector w = waveform(mnaIndex);
  return fourierCoefficient(w, harmonic);
}

Real PssResult::fundamentalAmplitude(int mnaIndex) const {
  return 2.0 * std::abs(fourier(mnaIndex, 1));
}

RealVector pssWarmup(const MnaSystem& sys, Real period, int cycles,
                     const PssOptions& opt, const RealVector* x0) {
  RealVector x;
  if (x0) {
    x = *x0;
  } else {
    DcOptions dopt;
    dopt.time = 0.0;
    dopt.gshunt = opt.gshunt;
    x = solveDc(sys, dopt).x;
  }
  for (int cyc = 0; cyc < cycles; ++cyc) {
    PeriodIntegration pi =
        integratePeriod(sys, x, cyc * period, period, opt.stepsPerPeriod, opt,
                        false, false);
    x = std::move(pi.xEnd);
  }
  return x;
}

PssResult solvePssDriven(const MnaSystem& sys, Real period,
                         const PssOptions& opt, const RealVector* x0guess) {
  PSMN_CHECK(period > 0.0, "period must be positive");
  const size_t n = sys.size();
  RealVector x0 = x0guess ? *x0guess
                          : pssWarmup(sys, period, opt.warmupCycles, opt);
  PSMN_CHECK(x0.size() == n, "bad initial guess size");

  size_t newtonTotal = 0;
  for (int iter = 0; iter < opt.maxShootingIterations; ++iter) {
    PeriodIntegration pi = integratePeriod(
        sys, x0, 0.0, period, opt.stepsPerPeriod, opt, true, false);
    newtonTotal += pi.newtonIterations;
    RealVector r(n);
    for (size_t i = 0; i < n; ++i) r[i] = pi.xEnd[i] - x0[i];
    const Real rNorm = maxAbsVec(r);
    if (rNorm < opt.shootingTol) {
      return packResult(sys, x0, 0.0, period, opt.stepsPerPeriod, opt,
                        iter + 1, newtonTotal);
    }
    // Newton: dx0 = (I - Phi)^{-1} r.
    RealMatrix iMinusPhi = RealMatrix::identity(n);
    iMinusPhi -= pi.monodromy;
    DenseLU<Real> lu(iMinusPhi);
    const RealVector dx0 = lu.solve(r);
    for (size_t i = 0; i < n; ++i) x0[i] += opt.relax * dx0[i];
  }
  throw ConvergenceError("driven PSS shooting did not converge");
}

PssResult solvePssAutonomous(const MnaSystem& sys, Real periodGuess,
                             int phaseIndex, const RealVector& x0guess,
                             const PssOptions& opt) {
  PSMN_CHECK(periodGuess > 0.0, "period guess must be positive");
  const size_t n = sys.size();
  PSMN_CHECK(phaseIndex >= 0 && phaseIndex < static_cast<int>(n),
             "bad phase index");
  PSMN_CHECK(x0guess.size() == n, "bad initial guess size");

  RealVector x0 = x0guess;
  Real period = periodGuess;
  const Real phaseLevel = x0[phaseIndex];

  size_t newtonTotal = 0;
  for (int iter = 0; iter < opt.maxShootingIterations; ++iter) {
    PeriodIntegration pi = integratePeriod(sys, x0, 0.0, period,
                                           opt.stepsPerPeriod, opt, true,
                                           false);
    newtonTotal += pi.newtonIterations;
    RealVector r(n);
    for (size_t i = 0; i < n; ++i) r[i] = pi.xEnd[i] - x0[i];
    const Real rNorm = maxAbsVec(r);
    const Real phaseRes = x0[phaseIndex] - phaseLevel;
    if (rNorm < opt.shootingTol && std::fabs(phaseRes) < opt.shootingTol) {
      PssResult res = packResult(sys, x0, 0.0, period, opt.stepsPerPeriod,
                                 opt, iter + 1, newtonTotal);
      res.autonomous = true;
      res.phaseIndex = phaseIndex;
      // d x(T)/dT at the solution, for the adjoint period sensitivity.
      const Real dT = 1e-4 * period;
      PeriodIntegration piT = integratePeriod(sys, x0, 0.0, period + dT,
                                              opt.stepsPerPeriod, opt, false,
                                              false);
      res.dxdT.resize(n);
      for (size_t i = 0; i < n; ++i) {
        res.dxdT[i] = (piT.xEnd[i] - pi.xEnd[i]) / dT;
      }
      return res;
    }
    // dx(T)/dT by finite-differencing the whole integration. The FD step
    // must sit well above the inner Newton noise floor (~updateTol per
    // step): 1e-4*T gives a ~1e-4 V signal against ~1e-9 V noise, keeping
    // the bordered Jacobian clean (1e-7*T made shooting limp to the
    // iteration cap).
    const Real dT = 1e-4 * period;
    PeriodIntegration piT = integratePeriod(sys, x0, 0.0, period + dT,
                                            opt.stepsPerPeriod, opt, false,
                                            false);
    newtonTotal += piT.newtonIterations;
    RealVector dxdT(n);
    for (size_t i = 0; i < n; ++i) dxdT[i] = (piT.xEnd[i] - pi.xEnd[i]) / dT;

    // Bordered Newton system on (x0, T):
    //   [ Phi - I   dxdT ] [dx0]   [ -r        ]
    //   [ e_p^T     0    ] [dT ] = [ -phaseRes ]
    RealMatrix a(n + 1, n + 1);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) a(i, j) = pi.monodromy(i, j);
      a(i, i) -= 1.0;
      a(i, n) = dxdT[i];
    }
    a(n, phaseIndex) = 1.0;
    RealVector rhs(n + 1);
    for (size_t i = 0; i < n; ++i) rhs[i] = -r[i];
    rhs[n] = -phaseRes;
    DenseLU<Real> lu(a);
    const RealVector upd = lu.solve(rhs);
    for (size_t i = 0; i < n; ++i) x0[i] += opt.relax * upd[i];
    period += opt.relax * upd[n];
    PSMN_CHECK(period > 0.0, "autonomous shooting drove the period negative");
  }
  throw ConvergenceError("autonomous PSS shooting did not converge");
}


RingWarmup warmupRingOscillator(const MnaSystem& sys,
                                const RingOscillatorCircuit& osc,
                                Real runTime, Real dt) {
  const Netlist& nl = sys.netlist();
  RingWarmup w;
  w.phaseIndex = nl.nodeIndex(osc.stages[0]);
  RealVector kick = solveDc(sys, {}).x;
  for (size_t i = 0; i < osc.stages.size(); ++i) {
    kick[nl.nodeIndex(osc.stages[i])] += (i % 2 ? 0.25 : -0.25);
  }
  TranOptions topt;
  topt.method = IntegrationMethod::kBackwardEuler;
  topt.initialState = &kick;
  const TransientResult tr = runTransient(sys, 0.0, runTime, dt, topt);
  const Waveform wave = makeWaveform(tr.times, tr.states, w.phaseIndex);
  const Real lo = *std::min_element(wave.values.begin(), wave.values.end());
  const Real hi = *std::max_element(wave.values.begin(), wave.values.end());
  w.periodEstimate = measurePeriod(wave, 0.5 * (lo + hi), 3);
  w.state = tr.finalState;
  return w;
}

}  // namespace psmn
