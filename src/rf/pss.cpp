#include "rf/pss.hpp"

#include <cmath>

#include <algorithm>
#include <limits>

#include "engine/dc.hpp"
#include "meas/measure.hpp"
#include "numeric/dense_lu.hpp"
#include "numeric/fourier.hpp"
#include "runtime/thread_pool.hpp"
#include "util/fault_injection.hpp"
#include "util/telemetry.hpp"

namespace psmn {
namespace {

// Max-norm that propagates non-finites: std::max drops NaN (the comparison
// is false), so a poisoned residual would otherwise read as norm 0 and be
// accepted as converged.
Real maxAbsVec(std::span<const Real> v) {
  Real m = 0.0;
  for (Real x : v) {
    if (!std::isfinite(x)) return std::numeric_limits<Real>::quiet_NaN();
    m = std::max(m, std::fabs(x));
  }
  return m;
}

/// Maps the PSS Newton controls onto the transient stepping kernel. The
/// period integration is plain fixed-step backward Euler, so the kernel's
/// accepted-step linearization (factored J = G + C/h, plus C) is exactly
/// the per-step companion Jacobian the monodromy product needs.
TranOptions stepOptions(const PssOptions& opt) {
  TranOptions t;
  t.method = IntegrationMethod::kBackwardEuler;
  t.maxNewton = opt.maxNewton;
  t.residualTol = opt.newtonResidualTol;
  t.updateTol = opt.newtonUpdateTol;
  t.maxStep = opt.newtonMaxStep;
  t.gshunt = opt.gshunt;
  t.solver = opt.solver;
  t.sparseThreshold = opt.sparseThreshold;
  t.ordering = opt.ordering;
  return t;
}

struct PeriodIntegration {
  RealVector xEnd;
  std::vector<RealVector> states;     // 0..M
  std::vector<RealMatrix> gMats;      // 0..M (dense backend)
  std::vector<RealMatrix> cMats;
  std::vector<RealSparse> gSpMats;    // 0..M (sparse backend)
  std::vector<RealSparse> cSpMats;
  RealMatrix monodromy;               // only when wanted
  SolveStats stats;  // cost delta of this integration (workspace snapshot)
};

/// Propagates the monodromy through one accepted step:
///   Phi <- J_k^{-1} (C_{k-1}/h) Phi
/// against the factorization the Newton kernel just produced (no extra
/// evaluation or factorization). Both backends assemble the n-column
/// right-hand-side block column-major in pw.rhsBuf and run the batched
/// accepted-step substitution. With a pool the columns fan out into
/// per-slot blocks: column j's assembly reads only Phi column j, its
/// triangular solve touches only RHS column j, and the write-back lands
/// only in Phi column j — so every partition computes the same bits as
/// the serial batched call (one LuSolveScratch per slot, ThreadPool's
/// at-most-one-chunk-per-slot contract).
void propagateMonodromy(PssWorkspace& pw, RealMatrix& phi, Real h,
                        ThreadPool* pool) {
  const size_t n = phi.rows();
  const TransientWorkspace& ws = pw.tran;
  const Real invH = 1.0 / h;
  pw.rhsBuf.resize(n * n);
  const size_t slots = columnBlockSlots(pool, n);
  if (pw.solveScratch.size() < slots) pw.solveScratch.resize(slots);

  const auto processColumns = [&](size_t j0, size_t j1, size_t slot) {
    Real* buf = pw.rhsBuf.data();
    if (ws.sparse) {
      const auto ptr = pw.cPrevSparse.colPointers();
      const auto idx = pw.cPrevSparse.rowIndices();
      const auto val = pw.cPrevSparse.values();
      for (size_t j = j0; j < j1; ++j) {
        // rhs(r, j) = sum_col C(r, col)/h * Phi(col, j): one CSC sweep of
        // C_{k-1} scattered into this block's column.
        Real* dst = buf + j * n;
        std::fill(dst, dst + n, 0.0);
        for (size_t col = 0; col < n; ++col) {
          const Real xj = phi(col, j);
          if (xj == 0.0) continue;
          for (int p = ptr[col]; p < ptr[col + 1]; ++p) {
            dst[idx[p]] += val[p] * invH * xj;
          }
        }
      }
    } else {
      for (size_t j = j0; j < j1; ++j) {
        Real* dst = buf + j * n;
        for (size_t i = 0; i < n; ++i) {
          Real acc = 0.0;
          const auto row = pw.cPrevDense.row(i);
          for (size_t col = 0; col < n; ++col) acc += row[col] * phi(col, j);
          dst[i] = acc * invH;
        }
      }
    }
    ws.solveAcceptedInPlace(
        std::span<Real>(buf + j0 * n, (j1 - j0) * n), j1 - j0,
        pw.solveScratch[slot]);
    // Safe in-body write-back: no other block ever reads these columns.
    for (size_t j = j0; j < j1; ++j) {
      for (size_t i = 0; i < n; ++i) phi(i, j) = buf[j * n + i];
    }
  };

  forEachColumnBlock(pool, n, processColumns);
}

/// Integrates one period from x0, optionally accumulating the monodromy
/// matrix and storing the trajectory with its linearizations (in the
/// workspace's backend). All solver state lives in `pw` and is reused
/// across calls — shooting iterations share one symbolic factorization.
PeriodIntegration integratePeriod(const MnaSystem& sys, const RealVector& x0,
                                  Real t0, Real period, int steps,
                                  const PssOptions& opt, bool wantMonodromy,
                                  bool wantTrajectory, PssWorkspace& pw) {
  PeriodIntegration out;
  out.xEnd = x0;
  const SolveStats before = pw.tran.stats;
  if (!wantMonodromy && !wantTrajectory) {
    integratePeriodInPlace(sys, out.xEnd, t0, period, steps, opt, pw);
    out.stats = SolveStats::since(before, pw.tran.stats);
    return out;
  }

  const size_t n = sys.size();
  const Real h = period / steps;
  const TranOptions topt = stepOptions(opt);
  TransientWorkspace& ws = pw.tran;
  ws.chooseBackend(n, topt);
  MnaSystem::EvalOptions eopt;
  eopt.gshunt = opt.gshunt;

  // Initial linearization at (x0, t0): C_0 seeds the first monodromy
  // factor, G_0/C_0 the stored trajectory.
  RealVector& x = out.xEnd;
  pw.q.resize(n);
  if (ws.sparse) {
    sys.evalSparse(x, t0, nullptr, &pw.q, &ws.gsp, &ws.csp, eopt);
    if (wantMonodromy) pw.cPrevSparse = ws.csp;
    if (wantTrajectory) {
      out.gSpMats.push_back(ws.gsp);
      out.cSpMats.push_back(ws.csp);
    }
  } else {
    sys.evalDense(x, t0, nullptr, &pw.q, &ws.j, &ws.c, eopt);
    if (wantMonodromy) pw.cPrevDense = ws.c;
    if (wantTrajectory) {
      out.gMats.push_back(ws.j);  // ws.j holds plain G here (no a*C added)
      out.cMats.push_back(ws.c);
    }
  }
  if (wantTrajectory) out.states.push_back(x);
  if (wantMonodromy) out.monodromy = RealMatrix::identity(n);
  ++ws.stats.evals;  // the initial linearization evaluated above
  pw.qd.assign(n, 0.0);

  for (int k = 1; k <= steps; ++k) {
    if (!integrateStep(sys, IntegrationMethod::kBackwardEuler, true,
                       t0 + h * (k - 1), h, x, pw.q, pw.qd, nullptr, topt,
                       ws)) {
      throw ConvergenceError("PSS inner Newton failed at step " +
                             std::to_string(k));
    }
    ++ws.stats.steps;
    telemetryCount(Counter::kStepsAccepted);
    if (wantMonodromy) {
      propagateMonodromy(pw, out.monodromy, h, opt.pool);
      // Fan-out accounting on the dispatching side: the n monodromy
      // columns solve on worker threads, but the total is deterministic.
      ws.stats.solves += n;
      if (ws.sparse) pw.cPrevSparse = ws.csp;
      else pw.cPrevDense = ws.c;
    }
    if (wantTrajectory) {
      out.states.push_back(x);
      if (ws.sparse) {
        out.gSpMats.push_back(ws.gsp);
        out.cSpMats.push_back(ws.csp);
      } else {
        // Recover G = J - a*C from the accepted-step workspace (the kernel
        // assembled J = G + a*C in place over G).
        RealMatrix g = ws.j;
        for (size_t i = 0; i < n; ++i) {
          auto gr = g.row(i);
          const auto cr = ws.c.row(i);
          for (size_t jj = 0; jj < n; ++jj) gr[jj] -= ws.acceptedA * cr[jj];
        }
        out.gMats.push_back(std::move(g));
        out.cMats.push_back(ws.c);
      }
    }
  }
  out.stats = SolveStats::since(before, pw.tran.stats);
  return out;
}

PssResult packResult(const MnaSystem& sys, const RealVector& x0, Real t0,
                     Real period, int steps, const PssOptions& opt,
                     int shootIters, const SolveStats& shootStats,
                     PssWorkspace& pw) {
  PeriodIntegration fin = integratePeriod(sys, x0, t0, period, steps, opt,
                                          /*wantMonodromy=*/true,
                                          /*wantTrajectory=*/true, pw);
  PssResult res;
  res.period = period;
  res.t0 = t0;
  res.states = std::move(fin.states);
  res.sparseLinearizations = pw.tran.sparse;
  res.ordering = opt.ordering;
  res.gMats = std::move(fin.gMats);
  res.cMats = std::move(fin.cMats);
  res.gSpMats = std::move(fin.gSpMats);
  res.cSpMats = std::move(fin.cSpMats);
  res.monodromy = std::move(fin.monodromy);
  res.shootingIterations = shootIters;
  res.stats = shootStats;
  res.stats.add(fin.stats);
  const Real h = period / steps;
  res.times.resize(steps + 1);
  for (int k = 0; k <= steps; ++k) res.times[k] = t0 + h * k;
  return res;
}

}  // namespace

void integratePeriodInPlace(const MnaSystem& sys, RealVector& x, Real t0,
                            Real period, int steps, const PssOptions& opt,
                            PssWorkspace& pw) {
  const size_t n = sys.size();
  const Real h = period / steps;
  const TranOptions topt = stepOptions(opt);
  pw.tran.chooseBackend(n, topt);
  // Charge at the starting point (vector outputs only; the stepping kernel
  // owns the matrix evaluations).
  pw.q.resize(n);
  MnaSystem::EvalOptions eopt;
  eopt.gshunt = opt.gshunt;
  sys.evalDense(x, t0, nullptr, &pw.q, nullptr, nullptr, eopt);
  ++pw.tran.stats.evals;
  pw.qd.resize(n);
  std::fill(pw.qd.begin(), pw.qd.end(), 0.0);
  for (int k = 1; k <= steps; ++k) {
    if (!integrateStep(sys, IntegrationMethod::kBackwardEuler, true,
                       t0 + h * (k - 1), h, x, pw.q, pw.qd, nullptr, topt,
                       pw.tran)) {
      throw ConvergenceError("PSS inner Newton failed at step " +
                             std::to_string(k));
    }
    ++pw.tran.stats.steps;
    telemetryCount(Counter::kStepsAccepted);
  }
}

RealMatrix integrateMonodromy(const MnaSystem& sys, RealVector& x, Real t0,
                              Real period, int steps, const PssOptions& opt,
                              PssWorkspace& ws) {
  PeriodIntegration pi =
      integratePeriod(sys, x, t0, period, steps, opt,
                      /*wantMonodromy=*/true, /*wantTrajectory=*/false, ws);
  x = std::move(pi.xEnd);
  return std::move(pi.monodromy);
}

RealVector PssResult::waveform(int mnaIndex) const {
  PSMN_CHECK(mnaIndex >= 0, "waveform of ground requested");
  const size_t m = stepCount();
  RealVector w(m);
  for (size_t k = 0; k < m; ++k) w[k] = states[k][mnaIndex];
  return w;
}

Cplx PssResult::fourier(int mnaIndex, int harmonic) const {
  const RealVector w = waveform(mnaIndex);
  return fourierCoefficient(w, harmonic);
}

Real PssResult::fundamentalAmplitude(int mnaIndex) const {
  return 2.0 * std::abs(fourier(mnaIndex, 1));
}

RealVector pssWarmup(const MnaSystem& sys, Real period, int cycles,
                     const PssOptions& opt, const RealVector* x0,
                     PssWorkspace* ws) {
  PssWorkspace local;
  PssWorkspace& pw = ws ? *ws : local;
  RealVector x;
  if (x0) {
    x = *x0;
  } else {
    DcOptions dopt;
    dopt.time = 0.0;
    dopt.gshunt = opt.gshunt;
    dopt.solver = opt.solver;
    dopt.sparseThreshold = opt.sparseThreshold;
    dopt.ordering = opt.ordering;
    x = solveDc(sys, dopt).x;
  }
  for (int cyc = 0; cyc < cycles; ++cyc) {
    integratePeriodInPlace(sys, x, cyc * period, period, opt.stepsPerPeriod,
                           opt, pw);
  }
  return x;
}

PssResult solvePssDriven(const MnaSystem& sys, Real period,
                         const PssOptions& opt, const RealVector* x0guess) {
  PSMN_CHECK(period > 0.0, "period must be positive");
  TraceSpan span(Phase::kPss, "pss_driven");
  const size_t n = sys.size();
  PssWorkspace pw;
  RealVector x0 = x0guess
                      ? *x0guess
                      : pssWarmup(sys, period, opt.warmupCycles, opt, nullptr,
                                  &pw);
  PSMN_CHECK(x0.size() == n, "bad initial guess size");

  SolveStats shootStats;
  RealVector prevX0;
  bool haveUpdate = false;
  for (int iter = 0; iter < opt.maxShootingIterations; ++iter) {
    PeriodIntegration pi;
    try {
      pi = integratePeriod(sys, x0, 0.0, period, opt.stepsPerPeriod, opt,
                           true, false, pw);
    } catch (const ConvergenceError&) {
      // The last shooting update overshot into a region where the period
      // integration itself cannot converge; backtrack halfway and spend a
      // shooting iteration on the retry.
      if (!haveUpdate) throw;
      for (size_t i = 0; i < n; ++i) x0[i] = 0.5 * (x0[i] + prevX0[i]);
      continue;
    }
    shootStats.add(pi.stats);
    RealVector r(n);
    for (size_t i = 0; i < n; ++i) r[i] = pi.xEnd[i] - x0[i];
    const Real rNorm = maxAbsVec(r);
    if (rNorm < opt.shootingTol) {
      return packResult(sys, x0, 0.0, period, opt.stepsPerPeriod, opt,
                        iter + 1, shootStats, pw);
    }
    // Newton: dx0 = (I - Phi)^{-1} r.
    RealMatrix iMinusPhi = RealMatrix::identity(n);
    iMinusPhi -= pi.monodromy;
    DenseLU<Real> lu(iMinusPhi);
    const RealVector dx0 = lu.solve(r);
    prevX0 = x0;
    haveUpdate = true;
    for (size_t i = 0; i < n; ++i) x0[i] += opt.relax * dx0[i];
  }
  throw ConvergenceError("driven PSS shooting did not converge");
}

namespace {

/// State threaded through shootAutonomousCore across homotopy rungs:
/// (x0, T) is both the guess in and the solution out; the counters
/// accumulate across calls.
struct AutonomousShoot {
  RealVector x0;
  Real period = 0.0;
  int iterations = 0;
  SolveStats stats;
  /// Conditioning of the last bordered shooting Jacobian (1 = perfect,
  /// 0 = singular). A degenerate multi-wave orbit — extra Floquet
  /// multipliers at 1 — drives this toward 0.
  Real borderedPivotRatio = 1.0;
};

/// One autonomous shooting solve at the gshunt carried in `opt`. Returns
/// false (with `diag` filled) instead of throwing when shooting stalls, so
/// the relaxed-circuit homotopy ladder can re-anchor and retry.
bool shootAutonomousCore(const MnaSystem& sys, AutonomousShoot& st,
                         int phaseIndex, const PssOptions& opt,
                         PssWorkspace& pw, FailureDiagnostics& diag) {
  const size_t n = sys.size();
  RealVector& x0 = st.x0;
  Real& period = st.period;
  const Real phaseLevel = x0[phaseIndex];

  RealVector prevX0;
  Real prevPeriod = period;
  bool haveUpdate = false;
  Real lastRes = -1.0;
  RealVector r(n, 0.0);
  auto fail = [&](const char* stage, int iter) {
    diag = {};
    diag.analysis = "pss";
    diag.stage = stage;
    diag.iteration = iter;
    if (lastRes >= 0.0) diag.residual = lastRes;
    diag.suspectNodes = sys.suspectUnknowns(r);
    diag.injectedFault = lastFiredFaultSite();
    return false;
  };

  for (int iter = 0; iter < opt.maxShootingIterations; ++iter) {
    PeriodIntegration pi;
    try {
      pi = integratePeriod(sys, x0, 0.0, period, opt.stepsPerPeriod, opt,
                           true, false, pw);
    } catch (const ConvergenceError&) {
      // Backtrack the last bordered update (see solvePssDriven); with no
      // update yet the guess itself is outside the integrable region.
      if (!haveUpdate) return fail("shooting/integration", iter);
      for (size_t i = 0; i < n; ++i) x0[i] = 0.5 * (x0[i] + prevX0[i]);
      period = 0.5 * (period + prevPeriod);
      continue;
    }
    st.stats.add(pi.stats);
    for (size_t i = 0; i < n; ++i) r[i] = pi.xEnd[i] - x0[i];
    const Real rNorm = maxAbsVec(r);
    lastRes = rNorm;
    const Real phaseRes = x0[phaseIndex] - phaseLevel;
    if (rNorm < opt.shootingTol && std::fabs(phaseRes) < opt.shootingTol) {
      st.iterations += iter + 1;
      return true;
    }
    // dx(T)/dT by finite-differencing the whole integration. The FD step
    // must sit well above the inner Newton noise floor (~updateTol per
    // step): 1e-4*T gives a ~1e-4 V signal against ~1e-9 V noise, keeping
    // the bordered Jacobian clean (1e-7*T made shooting limp to the
    // iteration cap).
    const Real dT = 1e-4 * period;
    PeriodIntegration piT;
    try {
      piT = integratePeriod(sys, x0, 0.0, period + dT, opt.stepsPerPeriod,
                            opt, false, false, pw);
    } catch (const ConvergenceError&) {
      // The base integration converged but the dT-perturbed one did not:
      // the iterate sits on the edge of the integrable region. Backtrack
      // like a failed base integration instead of aborting the solve.
      if (!haveUpdate) return fail("shooting/integration", iter);
      for (size_t i = 0; i < n; ++i) x0[i] = 0.5 * (x0[i] + prevX0[i]);
      period = 0.5 * (period + prevPeriod);
      continue;
    }
    st.stats.add(piT.stats);
    RealVector dxdT(n);
    for (size_t i = 0; i < n; ++i) dxdT[i] = (piT.xEnd[i] - pi.xEnd[i]) / dT;

    // Bordered Newton system on (x0, T):
    //   [ Phi - I   dxdT ] [dx0]   [ -r        ]
    //   [ e_p^T     0    ] [dT ] = [ -phaseRes ]
    RealMatrix a(n + 1, n + 1);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) a(i, j) = pi.monodromy(i, j);
      a(i, i) -= 1.0;
      a(i, n) = dxdT[i];
    }
    a(n, phaseIndex) = 1.0;
    RealVector rhs(n + 1);
    for (size_t i = 0; i < n; ++i) rhs[i] = -r[i];
    rhs[n] = -phaseRes;
    DenseLU<Real> lu(a);
    st.borderedPivotRatio = lu.pivotRatio();
    const RealVector upd = lu.solve(rhs);
    prevX0 = x0;
    prevPeriod = period;
    haveUpdate = true;
    // Trust region on the state update (the shooting analog of the inner
    // Newton's dx clamp): long rings carry near-marginal Floquet modes
    // (multipliers crowding 1), so Phi - I is nearly singular along them
    // and an unclamped bordered step can launch the iterate tens of volts
    // off the orbit.
    Real updNorm = 0.0;
    for (size_t i = 0; i < n; ++i) {
      updNorm = std::max(updNorm, std::fabs(upd[i]));
    }
    const Real updScale =
        updNorm > opt.newtonMaxStep ? opt.newtonMaxStep / updNorm : 1.0;
    for (size_t i = 0; i < n; ++i) x0[i] += opt.relax * updScale * upd[i];
    // Trust region on the period update (the analog of the inner Newton's
    // dx clamp): far from the orbit the bordered Jacobian can demand a
    // huge dT — on multi-wave ring modes it once drove the period negative
    // or let shooting "converge" onto the DC equilibrium with a
    // seconds-long period. Capping |dT| keeps the iteration inside the
    // basin while leaving converged results untouched.
    Real dPeriod = opt.relax * upd[n];
    const Real maxDT = opt.periodMaxRelStep * period;
    if (std::fabs(dPeriod) > maxDT) dPeriod = std::copysign(maxDT, dPeriod);
    period += dPeriod;
    PSMN_CHECK(period > 0.0, "autonomous shooting drove the period negative");
  }
  return fail("shooting/stagnation", opt.maxShootingIterations);
}

}  // namespace

PssResult solvePssAutonomous(const MnaSystem& sys, Real periodGuess,
                             int phaseIndex, const RealVector& x0guess,
                             const PssOptions& opt) {
  PSMN_CHECK(periodGuess > 0.0, "period guess must be positive");
  TraceSpan span(Phase::kPss, "pss_autonomous");
  const size_t n = sys.size();
  PSMN_CHECK(phaseIndex >= 0 && phaseIndex < static_cast<int>(n),
             "bad phase index");
  PSMN_CHECK(x0guess.size() == n, "bad initial guess size");

  PssWorkspace pw;
  AutonomousShoot st;
  st.x0 = x0guess;
  st.period = periodGuess;
  FailureDiagnostics diag;
  bool ok = shootAutonomousCore(sys, st, phaseIndex, opt, pw, diag);
  bool usedHomotopy = false;

  if (!ok && opt.shuntHomotopyRungs > 0) {
    // Relaxed-circuit shooting homotopy: a node shunt damps the orbit into
    // something smoother and more sinusoidal that shooting handles from a
    // rough guess, then the shunt is walked back toward opt.gshunt with
    // (x0, T) carried rung to rung. A failed rung keeps the previous
    // anchor — the next (milder) rung may still converge from it.
    std::vector<Real> rungs;
    for (Real g = opt.shuntHomotopyStart;
         static_cast<int>(rungs.size()) < opt.shuntHomotopyRungs &&
         g > opt.gshunt;
         g *= 0.1) {
      rungs.push_back(g);
    }
    st = {};
    st.x0 = x0guess;
    st.period = periodGuess;
    for (Real g : rungs) {
      PssOptions ropt = opt;
      ropt.gshunt = g;
      AutonomousShoot rungSt = st;
      FailureDiagnostics rungDiag;
      if (shootAutonomousCore(sys, rungSt, phaseIndex, ropt, pw, rungDiag)) {
        st = std::move(rungSt);
      }
    }
    ok = shootAutonomousCore(sys, st, phaseIndex, opt, pw, diag);
    usedHomotopy = ok;
  }
  if (!ok) {
    throw ConvergenceError(
        "autonomous PSS shooting did not converge: " + diag.describe(),
        std::move(diag));
  }

  // Converged-period bracket guard: a multi-wave ring mode converges
  // perfectly well — to the wrong orbit, with period near guess/k. Reject
  // it here so drivers (solveRingPss) can restart from a mode-corrected
  // warmup instead of silently reporting the k-wave solution.
  if (opt.periodBracketRel > 0.0) {
    const Real dev = std::fabs(st.period - periodGuess);
    if (dev > opt.periodBracketRel * periodGuess) {
      const Real k = std::round(periodGuess / std::max(st.period, 1e-300));
      const bool subharmonic =
          k >= 2.0 && std::fabs(st.period * k - periodGuess) <=
                          opt.periodBracketRel * periodGuess;
      FailureDiagnostics d;
      d.analysis = "pss";
      d.stage = subharmonic ? "shooting/multiwave-mode"
                            : "shooting/period-bracket";
      d.iteration = st.iterations;
      d.residual = st.period;  // the offending period
      throw ConvergenceError(
          "autonomous PSS converged outside the period bracket (period " +
              std::to_string(st.period) + " vs guess " +
              std::to_string(periodGuess) +
              (subharmonic ? ", consistent with a " +
                                 std::to_string(static_cast<int>(k)) +
                                 "-wave mode" +
                                 ", bordered pivot ratio " +
                                 std::to_string(st.borderedPivotRatio)
                           : std::string())
              + ")",
          std::move(d));
    }
  }

  PssResult res = packResult(sys, st.x0, 0.0, st.period, opt.stepsPerPeriod,
                             opt, st.iterations, st.stats, pw);
  res.autonomous = true;
  res.phaseIndex = phaseIndex;
  res.usedShuntHomotopy = usedHomotopy;
  // d x(T)/dT at the solution, for the adjoint period sensitivity.
  const Real dT = 1e-4 * st.period;
  PeriodIntegration pi0 = integratePeriod(sys, st.x0, 0.0, st.period,
                                          opt.stepsPerPeriod, opt, false,
                                          false, pw);
  PeriodIntegration piT = integratePeriod(sys, st.x0, 0.0, st.period + dT,
                                          opt.stepsPerPeriod, opt, false,
                                          false, pw);
  res.dxdT.resize(n);
  for (size_t i = 0; i < n; ++i) {
    res.dxdT[i] = (piT.xEnd[i] - pi0.xEnd[i]) / dT;
  }
  return res;
}

namespace {

/// Free-runs the ring from `start` to its limit cycle and measures the
/// period at stage 0 — the shared tail of both warmup flavors.
RingWarmup settleRing(const MnaSystem& sys, const RingOscillatorCircuit& osc,
                      const RealVector& start, Real runTime, Real dt) {
  const Netlist& nl = sys.netlist();
  RingWarmup w;
  const int stage0 = nl.nodeIndex(osc.stages[0]);
  TranOptions topt;
  topt.method = IntegrationMethod::kBackwardEuler;
  topt.initialState = &start;
  const TransientResult tr = runTransient(sys, 0.0, runTime, dt, topt);
  const Waveform wave = makeWaveform(tr.times, tr.states, stage0);
  const Real lo = *std::min_element(wave.values.begin(), wave.values.end());
  const Real hi = *std::max_element(wave.values.begin(), wave.values.end());
  const Real mid = 0.5 * (lo + hi);
  w.periodEstimate = measurePeriod(wave, mid, 3);
  w.state = tr.finalState;
  // Phase-anchor on the stage closest to mid-swing at the final state. In
  // a long ring, most stages sit railed at any instant (the front is
  // elsewhere), and pinning a railed node gives the shooting solve a
  // phase row the orbit barely moves along — a near-singular bordered
  // Jacobian. The switching stage has the largest |dx/dt| instead.
  w.phaseIndex = stage0;
  Real best = std::numeric_limits<Real>::max();
  for (const NodeId stage : osc.stages) {
    const int idx = nl.nodeIndex(stage);
    const Real d = std::fabs(w.state[idx] - mid);
    if (d < best) {
      best = d;
      w.phaseIndex = idx;
    }
  }
  return w;
}

}  // namespace

RingWarmup warmupRingOscillator(const MnaSystem& sys,
                                const RingOscillatorCircuit& osc,
                                Real runTime, Real dt) {
  const Netlist& nl = sys.netlist();
  RealVector kick = solveDc(sys, {}).x;
  for (size_t i = 0; i < osc.stages.size(); ++i) {
    kick[nl.nodeIndex(osc.stages[i])] += (i % 2 ? 0.25 : -0.25);
  }
  return settleRing(sys, osc, kick, runTime, dt);
}

int countRingModes(const MnaSystem& sys, const RingOscillatorCircuit& osc,
                   std::span<const Real> state) {
  const Netlist& nl = sys.netlist();
  const int vddIdx = nl.nodeIndex(osc.vddNode);
  const Real vdd = vddIdx >= 0 ? state[vddIdx] : 1.0;
  const Real mid = 0.5 * vdd;
  const size_t nStages = osc.stages.size();
  int defects = 0;
  for (size_t i = 0; i < nStages; ++i) {
    const bool hi0 = state[nl.nodeIndex(osc.stages[i])] > mid;
    const bool hi1 = state[nl.nodeIndex(osc.stages[(i + 1) % nStages])] > mid;
    if (hi0 == hi1) ++defects;
  }
  return defects;
}

RingWarmup modeCorrectedRingWarmup(const MnaSystem& sys,
                                   const RingOscillatorCircuit& osc,
                                   Real runTime, Real dt) {
  const Netlist& nl = sys.netlist();
  RealVector x = solveDc(sys, {}).x;
  const int vddIdx = nl.nodeIndex(osc.vddNode);
  const Real vdd = vddIdx >= 0 ? x[vddIdx] : 1.0;
  // Railed alternating state: odd stage count makes exactly one adjacent
  // same-polarity pair, i.e. one circulating front — the fundamental.
  for (size_t i = 0; i < osc.stages.size(); ++i) {
    x[nl.nodeIndex(osc.stages[i])] = (i % 2) ? vdd : 0.0;
  }
  return settleRing(sys, osc, x, runTime, dt);
}

PssResult solveRingPss(const MnaSystem& sys, const RingOscillatorCircuit& osc,
                       const PssOptions& opt, Real warmRunTime, Real warmDt) {
  PssOptions o = opt;
  if (o.periodBracketRel <= 0.0) o.periodBracketRel = 0.35;
  int restarts = 0;
  RingWarmup w = warmupRingOscillator(sys, osc, warmRunTime, warmDt);
  for (int attempt = 0;; ++attempt) {
    if (countRingModes(sys, osc, w.state) != 1) {
      // The kicked warmup settled on a multi-wave orbit (long rings do
      // this routinely); rebuild from the railed alternating state, with
      // a longer settle on each retry.
      w = modeCorrectedRingWarmup(sys, osc, warmRunTime * (attempt + 1),
                                  warmDt);
      ++restarts;
    }
    try {
      PssResult res =
          solvePssAutonomous(sys, w.periodEstimate, w.phaseIndex, w.state, o);
      if (!res.states.empty() &&
          countRingModes(sys, osc, res.states.front()) != 1) {
        FailureDiagnostics d;
        d.analysis = "pss";
        d.stage = "shooting/multiwave-mode";
        d.residual = res.period;
        throw ConvergenceError(
            "ring PSS converged onto a multi-wave orbit", std::move(d));
      }
      res.modeRestarts = restarts;
      return res;
    } catch (const ConvergenceError&) {
      if (attempt >= 2) throw;
      w = modeCorrectedRingWarmup(sys, osc, warmRunTime * (attempt + 2),
                                  warmDt);
      ++restarts;
    }
  }
}

}  // namespace psmn
