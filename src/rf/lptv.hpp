// Linear periodically time-varying (LPTV) small-signal solver on top of a
// PSS solution.
//
// The linearized response to an injection u(t) = b(t) e^{j w t} with b(t)
// T-periodic is x(t) = p(t) e^{j w t} with p(t) T-periodic, where p solves
//     d/dt [C(t) p] + (G(t) + j w C(t)) p = b(t),  p(0) = p(T).
// Backward-Euler on the PSS grid gives the block-cyclic system
//     K_k p_k - D_k p_{k-1} = b_k,   K_k = G_k + (1/h + j w) C_k,
//     D_k = C_{k-1}/h,               k = 1..M,  p_0 = p_M.
// Direct solve: propagate particular/homogeneous parts and close the cycle
// via (I - B_M) p_0 = alpha_M, where B_M is the frequency-shifted monodromy.
// Adjoint solve: one transposed cyclic solve yields the transfer of *every*
// source into one output harmonic (the "breakdown at no extra cost" the
// paper relies on, SS V).
//
// Mismatch sources enter with b(t) = -dF/dp - (d/dt + j w) dq/dp evaluated
// along the orbit (the Verilog-A pseudo-noise modulation of paper Fig. 4);
// physical noise sources enter with their sqrt-PSD-modulated stamps.
#pragma once

#include "engine/mna.hpp"
#include "rf/pss.hpp"

namespace psmn {

struct LptvOptions {
  /// Optional execution runtime. The homogeneous (B_k) and adjoint (V_k)
  /// matrix recursions partition their n right-hand-side columns across
  /// this pool's slots against the shared step factors — every column's
  /// arithmetic involves only that column, so results are bit-identical
  /// for every jobs count (docs/architecture.md "RF parallelism"). The
  /// per-source envelope recursions stay serial: they are sequential in k
  /// and cheap next to the n-column blocks.
  ThreadPool* pool = nullptr;
};

/// Periodic complex envelopes p_k, k = 0..M-1, one per source.
struct LptvSolution {
  Real omega = 0.0;
  size_t steps = 0;
  /// envelopes[s][k] is the full envelope vector of source s at grid k.
  std::vector<std::vector<CplxVector>> envelopes;

  /// Fourier coefficient P_N of output unknown `outIndex` for source s.
  Cplx harmonic(size_t sourceIdx, int outIndex, int n) const;
};

class LptvSolver {
 public:
  LptvSolver(const MnaSystem& sys, const PssResult& pss,
             LptvOptions opt = {});

  /// Direct method: envelopes for all sources at offset frequency f (Hz).
  LptvSolution solveDirect(std::span<const InjectionSource> sources,
                           Real offsetFreq) const;

  /// Adjoint method: transfer coefficients P_N[outIndex] for all sources,
  /// computed from one transposed cyclic solve.
  CplxVector solveAdjoint(std::span<const InjectionSource> sources,
                          Real offsetFreq, int outIndex, int harmonic) const;

  const PssResult& pss() const { return *pss_; }

  /// The periodic injection envelopes b_k (k=1..M) for one source
  /// (exposed for tests).
  std::vector<CplxVector> sourceEnvelope(const InjectionSource& src,
                                         Real offsetFreq) const;

 private:
  const MnaSystem* sys_;
  const PssResult* pss_;
  LptvOptions opt_;
};

}  // namespace psmn
