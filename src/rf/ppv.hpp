// Discrete-adjoint oscillator period/frequency sensitivity — the
// discretely-consistent form of Demir's perturbation projection vector
// (PPV, paper ref. [15]).
//
// The autonomous shooting system solves
//   H(x0, T; p) = [ x(T; x0, p) - x0 ;  x0[phase] - c ] = 0,
// so by the implicit function theorem
//   dT/dp = w_x^T * (dx(T)/dp)|_{x0 fixed},
// where [w_x; w_T] solves the transposed bordered system
//   [ Phi - I   dx(T)/dT ]^T  [w_x]   [0]
//   [ e_p^T         0    ]    [w_T] = [1].
// Expanding dx(T)/dp through the backward-Euler recursion gives
//   dT/dp = sum_k z_k^T g_k,   z_k = J_k^{-T} y_k,  y_{k-1} = D_k^T z_k,
//   y_M = w_x,   g_k = dF/dp at step k,
// i.e. one backward sweep (the discrete PPV waveform z) prices *all*
// parameters by dot products — same economics as Demir's continuous PPV,
// but exact for the discrete system, so it matches finite-difference
// re-shooting to solver tolerance.
//
// Used as the independent cross-check of the paper's eq. 9 frequency
// readout (tests + bench_ablation_sens_methods).
#pragma once

#include "engine/mna.hpp"
#include "rf/pss.hpp"

namespace psmn {

struct PpvResult {
  /// Discrete adjoint waveforms z_k, k = 1..M (index 0 unused).
  std::vector<RealVector> z;
  /// Bordered adjoint solution (w_x, w_T); diagnostics.
  RealVector wx;
  Real wT = 0.0;

  /// dT/dp for one injection source (seconds per unit parameter).
  Real periodSensitivity(const MnaSystem& sys, const PssResult& pss,
                         const InjectionSource& src) const;
  /// df/dp = -f0^2 * dT/dp (Hz per unit parameter).
  Real frequencySensitivity(const MnaSystem& sys, const PssResult& pss,
                            const InjectionSource& src) const;
};

/// Requires an autonomous PSS result (with phaseIndex and dxdT stored).
PpvResult computePpv(const MnaSystem& sys, const PssResult& pss);

}  // namespace psmn
