// Periodic steady-state (PSS) analysis via shooting Newton, for driven
// circuits (fixed period) and autonomous oscillators (period is an extra
// unknown, pinned by a phase condition).
//
// The integration inside shooting uses fixed-step backward Euler so that
// the state-transition (monodromy) matrix is exactly the product of the
// per-step companion Jacobians:
//   x_{k+1}: (G_{k+1} + C_{k+1}/h) dx_{k+1} = (C_k/h) dx_k
//   =>  Phi = prod_k J_k^{-1} (C_{k-1}/h).
// Shooting solves x(T; x0) = x0 by Newton on x0 with Jacobian (Phi - I).
// Stability of the orbit is NOT required (the comparator's regenerative
// metastable orbit has a Floquet multiplier >> 1 and converges fine),
// which is exactly why the paper's comparator testbench (Fig. 6) is
// tractable here while plain transient settling is slow.
#pragma once

#include "circuit/stdcell.hpp"
#include "engine/mna.hpp"
#include "engine/transient.hpp"

namespace psmn {

struct PssOptions {
  int stepsPerPeriod = 400;
  int maxShootingIterations = 60;
  Real shootingTol = 1e-9;   // on max|x(T) - x0|
  int warmupCycles = 3;      // transient cycles to build the initial guess
  Real gshunt = 0.0;
  Real relax = 1.0;          // damping on the shooting update
  // Inner Newton controls (per integration step).
  int maxNewton = 60;
  Real newtonResidualTol = 1e-10;
  Real newtonUpdateTol = 1e-10;
  Real newtonMaxStep = 0.5;  // dx clamp (V)
  /// Autonomous shooting only: per-iteration trust region on the period
  /// update, as a fraction of the current period (the dT analog of
  /// newtonMaxStep; keeps far-off starts from running away).
  Real periodMaxRelStep = 0.1;
  /// Autonomous only: converged-period bracket guard (0 disables). When
  /// set, a converged period farther than this relative distance from the
  /// period guess is rejected with ConvergenceError — and classified as a
  /// multi-wave / subharmonic mode collapse when it lands near guess/k for
  /// integer k >= 2 (the signature of a ring settling on k circulating
  /// waves; the bordered-Jacobian pivot ratio lands in the diagnostics as
  /// supporting evidence, since a degenerate mode drives it toward 0).
  Real periodBracketRel = 0.0;
  /// Autonomous only: relaxed-circuit shooting homotopy used when plain
  /// shooting fails (0 disables). The solve is re-anchored on a damped
  /// variant of the circuit (gshunt = shuntHomotopyStart, smoother and more
  /// sinusoidal orbit), then the shunt is relaxed rung by rung toward
  /// opt.gshunt with (x0, T) carried forward as the next rung's guess.
  int shuntHomotopyRungs = 3;
  Real shuntHomotopyStart = 1e-4;
  bool quiet = true;
  /// Linear-solver backend for the period integration, the warmup DC solve,
  /// and the monodromy propagation; kAuto switches to sparse at
  /// sparseThreshold unknowns (same crossover as the transient engine).
  LinearSolverKind solver = LinearSolverKind::kAuto;
  size_t sparseThreshold = kSparseSolverThreshold;
  /// Fill-reducing ordering for every sparse factorization downstream of
  /// this solve: the period integration, and — via PssResult::ordering —
  /// the LPTV step factors, pnoise, and the PPV backward sweep.
  OrderingKind ordering = OrderingKind::kAmd;
  /// Optional execution runtime. The monodromy propagation partitions its
  /// n right-hand-side columns across this pool's slots against the shared
  /// accepted-step factorization (every column's arithmetic involves only
  /// that column, so results are bit-identical for every jobs count — see
  /// docs/architecture.md "RF parallelism"). The period integration itself
  /// stays serial: a single Newton path has no column parallelism.
  ThreadPool* pool = nullptr;
};

/// Reusable solver state for the shooting engines: the transient workspace
/// (cached sparsity pattern, symbolic factorization, Newton scratch) plus
/// the charge state and monodromy-propagation buffers. One PssWorkspace is
/// shared across every period integration of a shooting solve — warmup
/// cycles, shooting iterations, and the finite-difference period
/// derivative all reuse the same symbolic factorization. Tied to one
/// MnaSystem, like TransientWorkspace.
struct PssWorkspace {
  TransientWorkspace tran;
  RealVector q, qd;        // charge state for the BE stepping kernel
  // Monodromy propagation scratch: n*n column-major right-hand-side block
  // for the batched accepted-step solve (both backends), plus one LU solve
  // scratch per pool slot for the column-partitioned fan-out.
  RealVector rhsBuf;
  std::vector<LuSolveScratch<Real>> solveScratch;
  RealMatrix cPrevDense;   // C at the previous grid point
  RealSparse cPrevSparse;
};

struct PssResult {
  Real period = 0.0;
  Real t0 = 0.0;  // absolute start time of the stored period
  /// True for oscillator solutions: the LPTV solver then applies the
  /// phase-mode spectral correction to the cyclic closure (see lptv.cpp).
  bool autonomous = false;
  /// Autonomous only: the phase-condition unknown and d x(T)/dT at the
  /// solution (used by the discrete-adjoint period sensitivity, rf/ppv).
  int phaseIndex = -1;
  RealVector dxdT;
  /// M+1 uniformly spaced points over one period; states[M] == states[0]
  /// to shooting tolerance.
  std::vector<Real> times;
  std::vector<RealVector> states;
  /// Linearization along the orbit at times[k], k=0..M, in ONE of two
  /// backends: dense gMats/cMats, or (sparseLinearizations) cached-pattern
  /// gSpMats/cSpMats from the sparse workspace. The LPTV and PPV solvers
  /// consume whichever is present.
  bool sparseLinearizations = false;
  /// Ordering the orbit was factored with; consumers of the stored sparse
  /// linearizations (LPTV step factors, PPV sweep) apply the same one.
  OrderingKind ordering = OrderingKind::kAmd;
  std::vector<RealMatrix> gMats;
  std::vector<RealMatrix> cMats;
  std::vector<RealSparse> gSpMats;
  std::vector<RealSparse> cSpMats;
  RealMatrix monodromy;
  int shootingIterations = 0;
  /// Solve cost. Driven: everything after the warmup (shooting iterations
  /// plus the final trajectory pass) — the old `newtonIterations` counting.
  /// Autonomous: the whole solve including homotopy rungs. stats.steps
  /// counts backward-Euler integration sub-steps of those periods;
  /// stats.solves includes the monodromy fan-out columns.
  SolveStats stats;
  /// Autonomous only: plain shooting failed and the relaxed-circuit
  /// homotopy ladder produced this solution.
  bool usedShuntHomotopy = false;
  /// solveRingPss only: how many times the warmup orbit was rebuilt from
  /// the railed alternating state to escape a multi-wave mode.
  int modeRestarts = 0;

  size_t stepCount() const { return times.empty() ? 0 : times.size() - 1; }
  Real stepSize() const { return period / static_cast<Real>(stepCount()); }

  /// Periodic samples (M points, last point excluded) of one unknown.
  RealVector waveform(int mnaIndex) const;
  /// Fourier coefficient X_N of that waveform.
  Cplx fourier(int mnaIndex, int harmonic) const;
  /// Amplitude of the fundamental, Ac = 2|X_1| (paper eq. 7).
  Real fundamentalAmplitude(int mnaIndex) const;
};

/// Driven PSS: sources must be periodic with the given period (or DC).
/// `x0guess` overrides the DC+warmup initial guess.
PssResult solvePssDriven(const MnaSystem& sys, Real period,
                         const PssOptions& opt = {},
                         const RealVector* x0guess = nullptr);

/// Autonomous PSS: period is solved for. `phaseIndex` selects the unknown
/// whose initial value is frozen as the phase condition; `x0guess` must be
/// a point near the orbit (e.g. from a warmup transient) and `periodGuess`
/// within roughly 20% of the true period.
PssResult solvePssAutonomous(const MnaSystem& sys, Real periodGuess,
                             int phaseIndex, const RealVector& x0guess,
                             const PssOptions& opt = {});

/// Utility: runs an `initCycles`-long transient at fixed step and returns
/// the final state (the standard way to seed shooting). `ws` (optional)
/// shares the solver workspace with a subsequent shooting solve.
RealVector pssWarmup(const MnaSystem& sys, Real period, int cycles,
                     const PssOptions& opt, const RealVector* x0 = nullptr,
                     PssWorkspace* ws = nullptr);

/// Integrates one period [t0, t0+T] with `steps` backward-Euler steps,
/// advancing `x` in place — the inner kernel of the shooting engines,
/// exposed for reuse and for the allocation tests: once the workspace is
/// warm (pattern cached, symbolic factorization kept, buffers sized) a
/// call performs no heap allocation.
void integratePeriodInPlace(const MnaSystem& sys, RealVector& x, Real t0,
                            Real period, int steps, const PssOptions& opt,
                            PssWorkspace& ws);

/// Integrates one period like integratePeriodInPlace and additionally
/// accumulates the monodromy Phi = prod_k J_k^{-1} (C_{k-1}/h) — the
/// shooting-Jacobian building block, exposed for the parallel-monodromy
/// benches and goldens (`opt.pool` fans the column blocks out).
RealMatrix integrateMonodromy(const MnaSystem& sys, RealVector& x, Real t0,
                              Real period, int steps, const PssOptions& opt,
                              PssWorkspace& ws);

/// Kicks a ring oscillator from its (metastable) DC point, free-runs it to
/// the limit cycle with backward Euler, and returns the warm state plus a
/// measured period estimate — the standard seed for solvePssAutonomous.
struct RingWarmup {
  RealVector state;
  Real periodEstimate = 0.0;
  int phaseIndex = -1;
};
RingWarmup warmupRingOscillator(const MnaSystem& sys,
                                const RingOscillatorCircuit& osc,
                                Real runTime = 30e-9, Real dt = 10e-12);

/// Number of circulating waves on a ring-oscillator state: counts the
/// adjacent same-polarity stage pairs around the cycle (1 = fundamental).
/// An odd-N inverter ring cannot alternate perfectly, so every snapshot
/// has an odd number of "defect" adjacencies — one per circulating
/// transition front, and the count is conserved as the fronts travel.
/// Long rings kicked from DC routinely settle on mode 3 or 5.
int countRingModes(const MnaSystem& sys, const RingOscillatorCircuit& osc,
                   std::span<const Real> state);

/// Warmup that forces the fundamental mode: starts from the railed
/// alternating state (stage i at vdd/0), whose single defect — automatic
/// from odd parity — seeds exactly one circulating front, then free-runs
/// to the limit cycle like warmupRingOscillator.
RingWarmup modeCorrectedRingWarmup(const MnaSystem& sys,
                                   const RingOscillatorCircuit& osc,
                                   Real runTime = 30e-9, Real dt = 10e-12);

/// Fundamental-mode-anchored autonomous PSS for ring oscillators: warmup,
/// mode check (countRingModes), shooting with the period-bracket guard
/// armed, and — when the warmup or the converged orbit lands on a
/// multi-wave mode — a bounded restart from modeCorrectedRingWarmup.
/// PssResult::modeRestarts reports the rebuilds.
PssResult solveRingPss(const MnaSystem& sys, const RingOscillatorCircuit& osc,
                       const PssOptions& opt = {}, Real warmRunTime = 30e-9,
                       Real warmDt = 10e-12);

}  // namespace psmn
