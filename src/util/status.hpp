// Error handling for psmn.
//
// The library reports unrecoverable misuse (bad netlist, singular matrix,
// non-convergence) via exceptions derived from psmn::Error, following the
// C++ Core Guidelines (E.2: throw to signal that a function can't do its job).
//
// Solver failures additionally carry a structured FailureDiagnostics
// payload — which analysis died, on which homotopy rung / Newton
// iteration, at what residual, and which unknowns look responsible — so a
// scenario sweep can report failures as data (and its retry policy can
// decide how to escalate) instead of forwarding an opaque string.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace psmn {

/// Structured post-mortem attached to ConvergenceError / NumericalError by
/// the solvers. Fields are best-effort: -1 / empty means "not known at the
/// throw site". Values are doubles (not Real) to keep util/ free of the
/// numeric layer.
struct FailureDiagnostics {
  std::string analysis;  // "dc", "transient", "pss", ...
  std::string stage;     // "newton", "gmin-ladder", "arclength", "shooting"
  int rung = -1;         // homotopy rung / ladder attempt index
  int iteration = -1;    // Newton iteration (or step index) at failure
  double residual = -1.0;  // last finite residual max-norm
  double time = 0.0;       // analysis time, when meaningful
  bool hasTime = false;
  /// Unknowns with the largest residual magnitude at the failure point —
  /// the first places to look in the netlist.
  std::vector<std::string> suspectNodes;
  /// Fault-injection site that fired on this thread before the failure
  /// (empty for organic failures). See util/fault_injection.hpp.
  std::string injectedFault;

  /// One-line human-readable rendering for logs and CLI output.
  std::string describe() const;
};

/// Base class for all psmn errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
  Error(const std::string& what, FailureDiagnostics diag)
      : std::runtime_error(what),
        diag_(std::make_shared<const FailureDiagnostics>(std::move(diag))) {}

  /// Structured payload, or null when the throw site attached none.
  /// Shared (not owned) so exceptions stay cheaply copyable.
  const FailureDiagnostics* diagnostics() const { return diag_.get(); }

 private:
  std::shared_ptr<const FailureDiagnostics> diag_;
};

/// Netlist construction / parsing problems.
class NetlistError : public Error {
 public:
  explicit NetlistError(const std::string& what) : Error(what) {}
};

/// Numerical failures (singular systems, ill-conditioning, non-finite
/// values escaping a device evaluation).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
  NumericalError(const std::string& what, FailureDiagnostics diag)
      : Error(what, std::move(diag)) {}
};

/// Iterative analyses that failed to converge (Newton, shooting, ...).
class ConvergenceError : public Error {
 public:
  explicit ConvergenceError(const std::string& what) : Error(what) {}
  ConvergenceError(const std::string& what, FailureDiagnostics diag)
      : Error(what, std::move(diag)) {}
};

namespace detail {
[[noreturn]] void throwCheckFailure(const char* cond, const char* file,
                                    int line, const std::string& msg);
}  // namespace detail

}  // namespace psmn

/// Precondition / invariant check; throws psmn::Error when violated.
/// Always active (these guard API misuse, not hot loops).
#define PSMN_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::psmn::detail::throwCheckFailure(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                      \
  } while (false)
