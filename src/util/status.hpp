// Error handling for psmn.
//
// The library reports unrecoverable misuse (bad netlist, singular matrix,
// non-convergence) via exceptions derived from psmn::Error, following the
// C++ Core Guidelines (E.2: throw to signal that a function can't do its job).
#pragma once

#include <stdexcept>
#include <string>

namespace psmn {

/// Base class for all psmn errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Netlist construction / parsing problems.
class NetlistError : public Error {
 public:
  explicit NetlistError(const std::string& what) : Error(what) {}
};

/// Numerical failures (singular systems, ill-conditioning).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Iterative analyses that failed to converge (Newton, shooting, ...).
class ConvergenceError : public Error {
 public:
  explicit ConvergenceError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throwCheckFailure(const char* cond, const char* file,
                                    int line, const std::string& msg);
}  // namespace detail

}  // namespace psmn

/// Precondition / invariant check; throws psmn::Error when violated.
/// Always active (these guard API misuse, not hot loops).
#define PSMN_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::psmn::detail::throwCheckFailure(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                      \
  } while (false)
