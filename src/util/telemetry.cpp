#include "util/telemetry.hpp"

namespace psmn {

const char* counterName(Counter c) {
  switch (c) {
    case Counter::kDenseFactors: return "dense_factors";
    case Counter::kSparseFactors: return "sparse_factors";
    case Counter::kSparseRefactors: return "sparse_refactors";
    case Counter::kFactorNnzTotal: return "factor_nnz_total";
    case Counter::kSolveColumns: return "solve_columns";
    case Counter::kMnaEvals: return "mna_evals";
    case Counter::kNewtonIterations: return "newton_iterations";
    case Counter::kStepsAccepted: return "steps_accepted";
    case Counter::kScenariosRun: return "scenarios_run";
    case Counter::kScenarioRetries: return "scenario_retries";
    case Counter::kBatchEvals: return "batch_evals";
    case Counter::kBatchSymbolicReuse: return "batch_symbolic_reuse";
    case Counter::kCount_: break;
  }
  return "unknown";
}

const char* phaseName(Phase p) {
  switch (p) {
    case Phase::kParse: return "parse";
    case Phase::kDc: return "dc";
    case Phase::kTransient: return "transient";
    case Phase::kSensitivity: return "sensitivity";
    case Phase::kPss: return "pss";
    case Phase::kLptv: return "lptv";
    case Phase::kPnoise: return "pnoise";
    case Phase::kMc: return "mc";
    case Phase::kScenario: return "scenario";
    case Phase::kStep: return "step";
    case Phase::kNewton: return "newton";
    case Phase::kKernel: return "kernel";
    case Phase::kCount_: break;
  }
  return "unknown";
}

namespace detail {

thread_local TelemetryBinding* tlTelemetry = nullptr;

void telemetryAdd(Counter c, uint64_t n) {
  TelemetryBinding* b = tlTelemetry;
  b->registry->slots_[b->slot].counters[static_cast<size_t>(c)] += n;
}

}  // namespace detail

TelemetryRegistry::TelemetryRegistry(size_t slots, Options opt)
    : slots_(slots == 0 ? 1 : slots),
      epoch_(std::chrono::steady_clock::now()),
      opt_(opt) {}

TelemetryRegistry::Totals TelemetryRegistry::totals() const {
  Totals t;
  for (const Slot& s : slots_) {
    for (size_t i = 0; i < kNumCounters; ++i) t.counters[i] += s.counters[i];
    for (size_t i = 0; i < kNumPhases; ++i) t.phaseNs[i] += s.phaseNs[i];
  }
  return t;
}

uint64_t TelemetryRegistry::counterTotal(Counter c) const {
  uint64_t total = 0;
  for (const Slot& s : slots_) total += s.counters[static_cast<size_t>(c)];
  return total;
}

void TelemetryRegistry::addExternalCounters(
    const std::array<uint64_t, kNumCounters>& deltas) {
  for (size_t i = 0; i < kNumCounters; ++i) {
    slots_[0].counters[i] += deltas[i];
  }
}

std::vector<TraceEvent> TelemetryRegistry::events() const {
  std::vector<TraceEvent> out;
  size_t n = 0;
  for (const Slot& s : slots_) n += s.events.size();
  out.reserve(n);
  for (const Slot& s : slots_)
    out.insert(out.end(), s.events.begin(), s.events.end());
  return out;
}

TelemetryScope::TelemetryScope(TelemetryRegistry& reg, size_t slot) {
  binding_.registry = &reg;
  binding_.slot = slot < reg.slotCount() ? slot : reg.slotCount() - 1;
  binding_.prev = detail::tlTelemetry;
  detail::tlTelemetry = &binding_;
}

TelemetryScope::~TelemetryScope() { detail::tlTelemetry = binding_.prev; }

void TraceSpan::open(Phase phase, const char* name, TraceDetail level) {
  detail::TelemetryBinding* b = detail::tlTelemetry;
  if (b == nullptr || level > b->registry->detail()) return;  // disabled
  binding_ = b;
  phase_ = phase;
  name_ = name;
  start_ = std::chrono::steady_clock::now();
}

TraceSpan::TraceSpan(Phase phase, const char* name, TraceDetail level) {
  open(phase, name, level);
}

TraceSpan::TraceSpan(Phase phase, const char* name, const std::string& arg,
                     TraceDetail level) {
  open(phase, name, level);
  if (binding_ != nullptr) arg_ = arg;
}

TraceSpan::~TraceSpan() {
  if (binding_ == nullptr) return;
  const auto end = std::chrono::steady_clock::now();
  TelemetryRegistry& reg = *binding_->registry;
  TelemetryRegistry::Slot& slot = reg.slots_[binding_->slot];
  const int64_t durNs =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
          .count();
  slot.phaseNs[static_cast<size_t>(phase_)] += static_cast<uint64_t>(durNs);
  if (reg.collectsEvents()) {
    TraceEvent& ev = slot.events.emplace_back();
    ev.name = name_;
    ev.arg = std::move(arg_);
    ev.phase = phase_;
    ev.slot = static_cast<uint32_t>(binding_->slot);
    ev.startNs = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     start_ - reg.epoch_)
                     .count();
    ev.durNs = durNs;
  }
}

}  // namespace psmn
