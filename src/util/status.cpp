#include "util/status.hpp"

#include <sstream>

namespace psmn {

std::string FailureDiagnostics::describe() const {
  std::ostringstream os;
  os << (analysis.empty() ? "analysis" : analysis);
  if (!stage.empty()) os << "/" << stage;
  if (rung >= 0) os << " rung " << rung;
  if (iteration >= 0) os << " iteration " << iteration;
  if (hasTime) os << " at t=" << time << "s";
  if (residual >= 0.0) os << ", residual " << residual;
  if (!suspectNodes.empty()) {
    os << ", suspect unknowns:";
    for (const std::string& n : suspectNodes) os << " " << n;
  }
  if (!injectedFault.empty()) os << " [injected: " << injectedFault << "]";
  return os.str();
}

namespace detail {

void throwCheckFailure(const char* cond, const char* file, int line,
                       const std::string& msg) {
  std::ostringstream os;
  os << "check failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace psmn
