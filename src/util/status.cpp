#include "util/status.hpp"

#include <sstream>

namespace psmn::detail {

void throwCheckFailure(const char* cond, const char* file, int line,
                       const std::string& msg) {
  std::ostringstream os;
  os << "check failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace psmn::detail
