// SPICE-style engineering-number parsing and formatting.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace psmn {

/// Parses a SPICE number with optional engineering suffix:
///   f(emto) p(ico) n(ano) u(micro) m(illi) k(ilo) meg(a) g(iga) t(era).
/// Suffix matching is case-insensitive; trailing unit letters after the
/// suffix are ignored, as in SPICE ("10pF", "3.3k", "2MEG").
/// Returns nullopt if the string does not start with a valid number.
std::optional<double> parseSpiceNumber(std::string_view text);

/// Formats a value in engineering notation with a unit, e.g. "28.7m" or
/// "1.25G". `digits` is the number of significant digits.
std::string formatEng(double value, int digits = 4);

/// Case-insensitive ASCII string comparison.
bool iequals(std::string_view a, std::string_view b);

/// Lower-cases an ASCII string.
std::string toLower(std::string_view s);

}  // namespace psmn
