#include "util/trace_export.hpp"

#include <cinttypes>
#include <cstdio>

namespace psmn {

void JsonWriter::separate() {
  if (needComma_.back()) os_ << ',';
  needComma_.back() = true;
}

void JsonWriter::writeEscaped(std::string_view s) {
  os_ << '"';
  for (char c : s) {
    switch (c) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\n': os_ << "\\n"; break;
      case '\r': os_ << "\\r"; break;
      case '\t': os_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os_ << buf;
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

void JsonWriter::beginObject() {
  separate();
  os_ << '{';
  needComma_.push_back(false);
}

void JsonWriter::endObject() {
  os_ << '}';
  needComma_.pop_back();
}

void JsonWriter::beginArray() {
  separate();
  os_ << '[';
  needComma_.push_back(false);
}

void JsonWriter::endArray() {
  os_ << ']';
  needComma_.pop_back();
}

void JsonWriter::key(std::string_view k) {
  separate();
  writeEscaped(k);
  os_ << ':';
  // The value that follows must not emit its own separator.
  needComma_.back() = false;
}

void JsonWriter::value(std::string_view s) {
  separate();
  writeEscaped(s);
}

void JsonWriter::value(uint64_t v) {
  separate();
  os_ << v;
}

void JsonWriter::value(int64_t v) {
  separate();
  os_ << v;
}

void JsonWriter::value(double v) {
  separate();
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os_ << buf;
}

void JsonWriter::value(bool v) {
  separate();
  os_ << (v ? "true" : "false");
}

void writeChromeTrace(std::ostream& os, const TelemetryRegistry& reg) {
  JsonWriter w(os);
  w.beginObject();
  w.field("displayTimeUnit", std::string_view("ns"));
  w.key("traceEvents");
  w.beginArray();
  for (const TraceEvent& ev : reg.events()) {
    w.beginObject();
    w.field("name", std::string_view(ev.name));
    w.field("cat", std::string_view(phaseName(ev.phase)));
    w.field("ph", std::string_view("X"));
    // Trace-event timestamps are in microseconds; keep ns precision as a
    // fractional part.
    w.field("ts", static_cast<double>(ev.startNs) / 1000.0);
    w.field("dur", static_cast<double>(ev.durNs) / 1000.0);
    w.field("pid", uint64_t{0});
    w.field("tid", uint64_t{ev.slot});
    if (!ev.arg.empty()) {
      w.key("args");
      w.beginObject();
      w.field("label", std::string_view(ev.arg));
      w.endObject();
    }
    w.endObject();
  }
  w.endArray();
  w.endObject();
  os << '\n';
}

void writeRegistrySections(JsonWriter& w, const TelemetryRegistry& reg) {
  const TelemetryRegistry::Totals t = reg.totals();
  w.key("counters");
  w.beginObject();
  for (size_t i = 0; i < kNumCounters; ++i)
    w.field(counterName(static_cast<Counter>(i)), t.counters[i]);
  w.endObject();
  w.key("phase_ns");
  w.beginObject();
  for (size_t i = 0; i < kNumPhases; ++i)
    w.field(phaseName(static_cast<Phase>(i)), t.phaseNs[i]);
  w.endObject();
}

void writeSolveStats(JsonWriter& w, const SolveStats& s) {
  w.beginObject();
  w.field("newton_iterations", s.newtonIterations);
  w.field("steps", s.steps);
  w.field("factorizations", s.factorizations);
  w.field("refactorizations", s.refactorizations);
  w.field("solves", s.solves);
  w.field("evals", s.evals);
  w.field("factor_nnz", s.factorNnz);
  w.endObject();
}

}  // namespace psmn
