#include "util/wire.hpp"

#include <bit>

namespace psmn {

void WireWriter::f64(double v) { u64(std::bit_cast<uint64_t>(v)); }

double WireReader::f64() { return std::bit_cast<double>(u64()); }

std::string_view WireReader::take(size_t n) {
  PSMN_CHECK(remaining() >= n, "wire: truncated payload");
  const std::string_view s = bytes_.substr(pos_, n);
  pos_ += n;
  return s;
}

uint64_t WireReader::readLe(int bytes) {
  const std::string_view s = take(static_cast<size_t>(bytes));
  uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(s[i])) << (8 * i);
  }
  return v;
}

uint64_t WireReader::len() {
  const uint64_t n = u64();
  PSMN_CHECK(n <= remaining(), "wire: length prefix exceeds payload");
  return n;
}

void wireWrite(WireWriter& w, const SolveStats& s) {
  w.u64(s.newtonIterations);
  w.u64(s.steps);
  w.u64(s.factorizations);
  w.u64(s.refactorizations);
  w.u64(s.solves);
  w.u64(s.evals);
  w.u64(s.factorNnz);
}

void wireRead(WireReader& r, SolveStats& s) {
  s.newtonIterations = r.u64();
  s.steps = r.u64();
  s.factorizations = r.u64();
  s.refactorizations = r.u64();
  s.solves = r.u64();
  s.evals = r.u64();
  s.factorNnz = r.u64();
}

void wireWrite(WireWriter& w, const FailureDiagnostics& d) {
  w.str(d.analysis);
  w.str(d.stage);
  w.i32(d.rung);
  w.i32(d.iteration);
  w.f64(d.residual);
  w.f64(d.time);
  w.boolean(d.hasTime);
  w.strvec(d.suspectNodes);
  w.str(d.injectedFault);
}

void wireRead(WireReader& r, FailureDiagnostics& d) {
  d.analysis = r.str();
  d.stage = r.str();
  d.rung = r.i32();
  d.iteration = r.i32();
  d.residual = r.f64();
  d.time = r.f64();
  d.hasTime = r.boolean();
  d.suspectNodes = r.strvec();
  d.injectedFault = r.str();
}

void wireWrite(WireWriter& w, const FaultPlan& p) {
  w.u64(p.points.size());
  for (const FaultPoint& pt : p.points) {
    w.str(pt.site);
    w.i32(pt.firstHit);
    w.i32(pt.count);
  }
}

void wireRead(WireReader& r, FaultPlan& p) {
  const uint64_t n = r.u64();
  p.points.clear();
  PSMN_CHECK(n <= 4096, "wire: implausible fault-plan size");
  p.points.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    FaultPoint pt;
    pt.site = r.str();
    pt.firstHit = r.i32();
    pt.count = r.i32();
    p.points.push_back(std::move(pt));
  }
}

}  // namespace psmn
