#include "util/units.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace psmn {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string toLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::optional<double> parseSpiceNumber(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::string buf(text);
  const char* begin = buf.c_str();
  char* end = nullptr;
  double value = std::strtod(begin, &end);
  if (end == begin) return std::nullopt;

  std::string_view rest(end);
  double scale = 1.0;
  if (!rest.empty()) {
    // "meg" must be checked before "m".
    if (rest.size() >= 3 && iequals(rest.substr(0, 3), "meg")) {
      scale = 1e6;
    } else {
      switch (std::tolower(static_cast<unsigned char>(rest[0]))) {
        case 'f': scale = 1e-15; break;
        case 'p': scale = 1e-12; break;
        case 'n': scale = 1e-9; break;
        case 'u': scale = 1e-6; break;
        case 'm': scale = 1e-3; break;
        case 'k': scale = 1e3; break;
        case 'g': scale = 1e9; break;
        case 't': scale = 1e12; break;
        default: scale = 1.0; break;  // bare unit letters like "V"
      }
    }
  }
  return value * scale;
}

std::string formatEng(double value, int digits) {
  if (value == 0.0 || !std::isfinite(value)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*g", digits, value);
    return buf;
  }
  static const struct { double scale; const char* suffix; } kBands[] = {
      {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""},
      {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
  };
  const double mag = std::fabs(value);
  for (const auto& band : kBands) {
    if (mag >= band.scale * 0.9999999 || band.scale == 1e-15) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.*g%s", digits, value / band.scale,
                    band.suffix);
      return buf;
    }
  }
  return std::to_string(value);
}

}  // namespace psmn
