// Deterministic telemetry: a near-zero-overhead metrics registry plus
// scoped trace spans, threaded through every layer of the solver stack
// (LU kernels, MNA evaluation, the engines, the scenario sweep, the
// runner). This is the observability surface the future distributed
// sweep service exposes as its progress/metrics endpoint.
//
// Design constraints (mirroring util/fault_injection.hpp):
//   * Zero overhead when disabled: every probe is one inline thread-local
//     pointer test. No registry bound -> no counter write, no clock read.
//   * Deterministic totals under work stealing: counters live in
//     thread-slot-local storage (one cache-line-aligned slot per
//     execution slot, at most one thread writing a slot at a time — the
//     ThreadPool contract) and are merged in slot order. Counter totals
//     are sums of per-chunk fixed work, and integer addition is
//     commutative, so the merged totals are bit-identical for every jobs
//     count and every steal schedule — which slot a count lands in varies,
//     the sum never does. Timers are wall-clock and therefore NOT
//     deterministic; only the counters are gated in CI.
//   * The registry never feeds back into the computation: binding,
//     unbinding, or discarding telemetry cannot change a single result
//     bit (tests/test_telemetry.cpp pins this across jobs counts).
//
// Two decoupled mechanisms:
//   * TelemetryRegistry + TelemetryScope + telemetryCount()/TraceSpan:
//     global counters, phase timers, and Chrome-trace events, recorded on
//     whatever thread executes the work (the ThreadPool binds its slots
//     when a registry is attached).
//   * SolveStats: the per-result cost counters embedded in DcResult,
//     TransientResult, TransientSensitivityResult, PssResult, and
//     SweepResult. These are maintained explicitly by the engines on the
//     calling thread (parallel fan-outs add their deterministic totals
//     from the dispatching side), so a result's stats are bit-identical
//     across jobs counts, with or without a registry bound.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace psmn {

/// Shared per-result cost counters — the consolidation of the old ad-hoc
/// fields (DcResult::iterations, PssResult::newtonIterations, the
/// TransientWorkspace factorization counters). All counts are cumulative
/// over the producing call; `factorNnz` is the nnz(L+U) of the most
/// recent sparse factorization (0 on the dense backend).
struct SolveStats {
  uint64_t newtonIterations = 0;  // Newton iterations (all strategies)
  uint64_t steps = 0;             // accepted integration steps
  uint64_t factorizations = 0;    // full LU factorizations (symbolic+numeric)
  uint64_t refactorizations = 0;  // sparse pattern-reusing numeric refactors
  uint64_t solves = 0;            // triangular-solve right-hand-side columns
  uint64_t evals = 0;             // MNA system evaluations
  uint64_t factorNnz = 0;         // nnz(L+U) of the latest sparse factor

  uint64_t totalFactorizations() const {
    return factorizations + refactorizations;
  }

  /// Accumulates `o` into this (factorNnz takes o's when nonzero).
  void add(const SolveStats& o) {
    newtonIterations += o.newtonIterations;
    steps += o.steps;
    factorizations += o.factorizations;
    refactorizations += o.refactorizations;
    solves += o.solves;
    evals += o.evals;
    if (o.factorNnz != 0) factorNnz = o.factorNnz;
  }

  /// Counter deltas `now - before` of one workspace between two snapshots
  /// (factorNnz reports `now`'s value — it is a level, not a count).
  static SolveStats since(const SolveStats& before, const SolveStats& now) {
    SolveStats d;
    d.newtonIterations = now.newtonIterations - before.newtonIterations;
    d.steps = now.steps - before.steps;
    d.factorizations = now.factorizations - before.factorizations;
    d.refactorizations = now.refactorizations - before.refactorizations;
    d.solves = now.solves - before.solves;
    d.evals = now.evals - before.evals;
    d.factorNnz = now.factorNnz;
    return d;
  }

  bool operator==(const SolveStats&) const = default;
};

/// Global registry counters. Recorded at the instrumented sites via
/// telemetryCount(); totals are deterministic across jobs counts (see the
/// file comment). Grep for the counterName() strings to enumerate sites.
enum class Counter : uint8_t {
  kDenseFactors = 0,   // DenseLU<T>::factor
  kSparseFactors,      // SparseLU<T>::factor (symbolic + numeric)
  kSparseRefactors,    // SparseLU<T>::refactor (successful)
  kFactorNnzTotal,     // sum of nnz(L+U) over all sparse (re)factors
  kSolveColumns,       // triangular-solve RHS columns (both backends)
  kMnaEvals,           // MnaSystem::evalDense / evalSparse
  kNewtonIterations,   // DC + transient + PSS-inner Newton iterations
  kStepsAccepted,      // accepted integration steps
  kScenariosRun,       // scenario sweep: scenarios evaluated
  kScenarioRetries,    // scenario sweep: extra attempts taken
  kBatchEvals,         // batched eval: structural walks stamping many lanes
  kBatchSymbolicReuse, // batched eval: lanes that reused a shared pattern
  kCount_
};
inline constexpr size_t kNumCounters = static_cast<size_t>(Counter::kCount_);
const char* counterName(Counter c);

/// Engine phases — the trace-span categories and timer buckets.
enum class Phase : uint8_t {
  kParse = 0,
  kDc,
  kTransient,
  kSensitivity,
  kPss,
  kLptv,
  kPnoise,
  kMc,
  kScenario,
  kStep,    // one integration step / continuation rung
  kNewton,  // one Newton iteration
  kKernel,  // factor / refactor / solve
  kCount_
};
inline constexpr size_t kNumPhases = static_cast<size_t>(Phase::kCount_);
const char* phaseName(Phase p);

/// Span granularity. Spans above the registry's configured detail are
/// compiled down to a thread-local load and a byte compare — no clock
/// read, no event record — so kStep/kKernel instrumentation in the hot
/// loops costs nothing unless explicitly requested.
enum class TraceDetail : uint8_t {
  kPhase = 0,   // engine phases and scenarios only
  kStep = 1,    // + per-step spans
  kKernel = 2,  // + per-Newton-iteration and factor/solve spans
};

/// One completed span, in Chrome trace-event terms: a "complete" ("X")
/// event on track `slot`. `name` points at a static string literal from
/// the span site; `arg` optionally carries a dynamic label (a scenario
/// name). Timestamps are nanoseconds relative to the registry's epoch.
struct TraceEvent {
  const char* name = nullptr;
  std::string arg;
  Phase phase = Phase::kParse;
  uint32_t slot = 0;
  int64_t startNs = 0;
  int64_t durNs = 0;
};

class TelemetryRegistry;

/// Registry configuration (namespace scope so it can default-construct in
/// TelemetryRegistry's default argument).
struct TelemetryOptions {
  bool collectEvents = false;  // record TraceEvents for Chrome export
  TraceDetail detail = TraceDetail::kPhase;
};

namespace detail {
/// Thread -> (registry, slot) binding, a chain like FaultScope's so scopes
/// nest and restore. The ThreadPool installs one per driver when a
/// registry is attached; the runner installs one on the main thread.
struct TelemetryBinding {
  TelemetryRegistry* registry = nullptr;
  size_t slot = 0;
  TelemetryBinding* prev = nullptr;
};
extern thread_local TelemetryBinding* tlTelemetry;
void telemetryAdd(Counter c, uint64_t n);  // slow path, binding non-null
}  // namespace detail

/// Counter probe. Fast path when no registry is bound: one thread-local
/// pointer load (exactly the FaultScope probe shape).
inline void telemetryCount(Counter c, uint64_t n = 1) {
  if (detail::tlTelemetry != nullptr) detail::telemetryAdd(c, n);
}

/// True while a registry is bound on this thread.
inline bool telemetryBound() { return detail::tlTelemetry != nullptr; }

/// The metrics registry: per-slot counters, per-phase timers, and
/// (optionally) trace events. Create one with as many slots as the
/// execution runtime has (ThreadPool::jobCount()); slot data is
/// cache-line aligned so concurrent slots never false-share.
class TelemetryRegistry {
 public:
  using Options = TelemetryOptions;

  explicit TelemetryRegistry(size_t slots = 1, Options opt = Options());

  size_t slotCount() const { return slots_.size(); }
  bool collectsEvents() const { return opt_.collectEvents; }
  TraceDetail detail() const { return opt_.detail; }

  /// Deterministic slot-order merge of the counters and phase timers.
  struct Totals {
    std::array<uint64_t, kNumCounters> counters{};
    std::array<uint64_t, kNumPhases> phaseNs{};
  };
  Totals totals() const;
  uint64_t counterTotal(Counter c) const;

  /// Folds counter deltas produced OUTSIDE this registry — a sweep
  /// worker's per-scenario captures shipped over the process-sweep pipe —
  /// into slot 0. Caller contract matches TelemetryScope's: at most one
  /// thread touches slot 0 at a time (the process-sweep coordinator calls
  /// this from the merging thread only). Determinism is preserved because
  /// the deltas are themselves deterministic per-scenario sums and
  /// counter addition is commutative — the merged totals match what an
  /// in-process run of the same scenarios would have recorded.
  void addExternalCounters(const std::array<uint64_t, kNumCounters>& deltas);

  /// All recorded events, merged in slot order (then per-slot record
  /// order, which is the completion order on that slot).
  std::vector<TraceEvent> events() const;

 private:
  friend class TelemetryScope;
  friend class TraceSpan;
  friend void detail::telemetryAdd(Counter c, uint64_t n);

  struct alignas(64) Slot {
    std::array<uint64_t, kNumCounters> counters{};
    std::array<uint64_t, kNumPhases> phaseNs{};
    std::vector<TraceEvent> events;
  };
  std::vector<Slot> slots_;
  std::chrono::steady_clock::time_point epoch_;
  Options opt_;
};

/// RAII binding of the current thread to one registry slot. Nests like
/// FaultScope: the innermost binding wins, the previous one is restored
/// on exit. The caller must guarantee at most one thread is bound to a
/// given slot at a time (the ThreadPool's slot contract provides this).
class TelemetryScope {
 public:
  TelemetryScope(TelemetryRegistry& reg, size_t slot);
  ~TelemetryScope();
  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

 private:
  detail::TelemetryBinding binding_;
};

/// RAII timed span. Records nothing when no registry is bound or the
/// span's level exceeds the registry's configured detail. Closing happens
/// in the destructor, so spans stay well-formed (properly nested per
/// slot) under exceptions and early returns — Chrome trace viewers
/// require exactly this.
class TraceSpan {
 public:
  TraceSpan(Phase phase, const char* name,
            TraceDetail level = TraceDetail::kPhase);
  /// Variant with a dynamic label (e.g. a scenario name), attached to the
  /// exported event as args.label. The label is only copied when the span
  /// actually records.
  TraceSpan(Phase phase, const char* name, const std::string& arg,
            TraceDetail level = TraceDetail::kPhase);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void open(Phase phase, const char* name, TraceDetail level);

  detail::TelemetryBinding* binding_ = nullptr;  // null: span is disabled
  Phase phase_ = Phase::kParse;
  const char* name_ = nullptr;
  std::string arg_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace psmn
