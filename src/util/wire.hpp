// Binary wire serialization for the multi-process sweep IPC.
//
// WireWriter/WireReader are append/consume cursors over a byte buffer with
// fixed-width primitives. Doubles travel as their raw 8-byte object
// representation (std::bit_cast to uint64_t), so a Real round-trips
// BIT-IDENTICALLY — the cross-topology byte-identity guarantee of the
// process sweep (docs/architecture.md "Distributed sweep") depends on the
// serialization never touching a value's bits. Integers use fixed-width
// little-endian encoding; both ends of the pipe run on the same host, and
// the frame layer (runtime/ipc.hpp) rejects cross-version traffic, so no
// cross-architecture concerns apply.
//
// Alongside the primitives this header carries the wire codecs for the
// util-layer value types the worker protocol ships: SolveStats,
// FailureDiagnostics, and FaultPlan. Higher-layer types (scenario specs,
// sweep results) serialize in runtime/process_sweep.cpp on top of these.
//
// WireReader throws Error("wire: ...") on truncation or malformed data —
// the process-sweep coordinator treats that exactly like a corrupt frame
// (kill + respawn + per-scenario retry), never trusting a peer's bytes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "numeric/types.hpp"
#include "util/fault_injection.hpp"
#include "util/status.hpp"
#include "util/telemetry.hpp"

namespace psmn {

class WireWriter {
 public:
  const std::string& bytes() const { return out_; }
  std::string take() { return std::move(out_); }

  void u8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(uint32_t v) { appendLe(v, 4); }
  void u64(uint64_t v) { appendLe(v, 8); }
  void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// Raw object representation: the value round-trips bit-exactly,
  /// including NaN payloads and signed zeros.
  void f64(double v);
  void str(std::string_view s) {
    u64(s.size());
    out_.append(s.data(), s.size());
  }
  void f64vec(std::span<const double> v) {
    u64(v.size());
    for (double x : v) f64(x);
  }
  void u64vec(std::span<const uint64_t> v) {
    u64(v.size());
    for (uint64_t x : v) u64(x);
  }
  void strvec(const std::vector<std::string>& v) {
    u64(v.size());
    for (const auto& s : v) str(s);
  }

 private:
  void appendLe(uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  std::string out_;
};

class WireReader {
 public:
  explicit WireReader(std::string_view bytes) : bytes_(bytes) {}

  size_t remaining() const { return bytes_.size() - pos_; }
  bool atEnd() const { return pos_ == bytes_.size(); }

  uint8_t u8() { return static_cast<uint8_t>(take(1)[0]); }
  uint32_t u32() { return static_cast<uint32_t>(readLe(4)); }
  uint64_t u64() { return readLe(8); }
  int32_t i32() { return static_cast<int32_t>(u32()); }
  bool boolean() { return u8() != 0; }
  double f64();
  std::string str() {
    const uint64_t n = len();
    const std::string_view s = take(n);
    return std::string(s);
  }
  RealVector f64vec() {
    const uint64_t n = len();
    RealVector v(n);
    for (auto& x : v) x = f64();
    return v;
  }
  std::vector<uint64_t> u64vec() {
    const uint64_t n = len();
    std::vector<uint64_t> v(n);
    for (auto& x : v) x = u64();
    return v;
  }
  std::vector<std::string> strvec() {
    const uint64_t n = len();
    std::vector<std::string> v(n);
    for (auto& s : v) s = str();
    return v;
  }

 private:
  std::string_view take(size_t n);
  uint64_t readLe(int bytes);
  /// Length prefix, sanity-bounded by the bytes actually present so a
  /// corrupt length cannot drive a huge allocation.
  uint64_t len();

  std::string_view bytes_;
  size_t pos_ = 0;
};

// Codecs for the util-layer types the worker protocol ships.
void wireWrite(WireWriter& w, const SolveStats& s);
void wireRead(WireReader& r, SolveStats& s);

void wireWrite(WireWriter& w, const FailureDiagnostics& d);
void wireRead(WireReader& r, FailureDiagnostics& d);

void wireWrite(WireWriter& w, const FaultPlan& p);
void wireRead(WireReader& r, FaultPlan& p);

}  // namespace psmn
