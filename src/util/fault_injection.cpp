#include "util/fault_injection.hpp"

#include <cstring>

namespace psmn {

namespace detail {
thread_local FaultScope* tlFaultScope = nullptr;
namespace {
thread_local std::string tlLastFired;
}  // namespace
}  // namespace detail

FaultScope::FaultScope(const FaultPlan& plan) : plan_(plan) {
  counters_.reserve(plan_.points.size());
  for (const FaultPoint& p : plan_.points) {
    bool known = false;
    for (const SiteCounter& c : counters_) known = known || c.site == p.site;
    if (!known) counters_.push_back({p.site, 0, 0});
  }
  prev_ = detail::tlFaultScope;
  detail::tlFaultScope = this;
  clearLastFiredFaultSite();
}

FaultScope::~FaultScope() { detail::tlFaultScope = prev_; }

int FaultScope::hits(const std::string& site) const {
  for (const SiteCounter& c : counters_) {
    if (c.site == site) return c.hits;
  }
  return 0;
}

int FaultScope::fired(const std::string& site) const {
  for (const SiteCounter& c : counters_) {
    if (c.site == site) return c.fired;
  }
  return 0;
}

int FaultScope::firedTotal() const {
  int total = 0;
  for (const SiteCounter& c : counters_) total += c.fired;
  return total;
}

namespace detail {

bool faultFire(const char* site) {
  FaultScope* scope = tlFaultScope;
  // Counters track only armed sites: un-armed sites stay on the cheap
  // "scan found nothing" path and the hot solvers pay one string compare
  // per armed point, only while a scope is installed.
  for (FaultScope::SiteCounter& c : scope->counters_) {
    if (std::strcmp(c.site.c_str(), site) != 0) continue;
    const int hit = c.hits++;
    for (const FaultPoint& p : scope->plan_.points) {
      if (p.site != site) continue;
      const bool inWindow =
          hit >= p.firstHit && (p.count < 0 || hit < p.firstHit + p.count);
      if (inWindow) {
        ++c.fired;
        tlLastFired = site;
        return true;
      }
    }
    return false;
  }
  return false;
}

}  // namespace detail

const std::string& lastFiredFaultSite() { return detail::tlLastFired; }

void clearLastFiredFaultSite() { detail::tlLastFired.clear(); }

}  // namespace psmn
