// Deterministic fault injection for the numerical stack.
//
// Tests (and only tests — nothing in the library arms faults on its own)
// install a FaultScope on the current thread to force failures at named
// sites inside the solvers: an LU pivot breakdown, a non-finite device
// evaluation, a Newton iteration that refuses to converge. Each armed
// point fires on an exact, reproducible window of "hits" of its site, so
// an injected failure lands on the same Newton iteration / factorization
// every run — which is what lets the retry/recovery paths be tested for
// bit-identical results across thread counts.
//
// Design constraints:
//   * Zero overhead when disarmed: the probe is an inline thread-local
//     pointer test; the registry is consulted only inside a scope.
//   * Thread-confined: a scope arms the installing thread only. The
//     scenario sweep arms each scenario's plan on its evaluating slot, so
//     injection is a pure function of the scenario, never of scheduling.
//   * Counting is per-scope: hit counters reset when a scope is entered,
//     so "fail the 3rd factorization" means the 3rd within this scope.
//
// Instrumented sites (grep for PSMN_FAULT_SITE_* to enumerate):
//   "dense_lu.factor"     DenseLU<T>::factor throws NumericalError
//   "sparse_lu.factor"    SparseLU<T>::factor throws NumericalError
//   "sparse_lu.refactor"  SparseLU<T>::refactor reports pivot failure
//   "mna.eval"            MnaSystem::evalDense/evalSparse poison f[0]=NaN
//   "dc.newton.converge"  newtonSolve suppresses a convergence acceptance
//   "tran.newton.converge" integrateStep suppresses an acceptance
//   "ipc.frame"           buildFrame corrupts the frame checksum (the
//                         receiver sees a malformed frame)
//   "worker.exit"         a sweep worker dies by SIGKILL before writing a
//                         completed scenario's result frame
//
// The two process-sweep sites differ from the in-solver sites in WHERE the
// plan is armed: the parent arms "ipc.frame" with an ordinary FaultScope
// around its own frame writes, while inside a worker both sites are
// counted process-wide against the plan shipped in the hello frame
// (ProcessSweepOptions::workerFaults) — a worker writes results from its
// pool threads, so a thread-confined scope could not count them. Hit
// indices there are result-write ordinals, which follow completion order:
// deterministic for jobsPerWorker=1, scheduling-dependent above (the
// recovery outcome stays correct either way; targeted tests pin
// jobsPerWorker=1).
#pragma once

#include <string>
#include <vector>

namespace psmn {

/// One armed failure point: site `site` fires on hit indices
/// [firstHit, firstHit + count) counted from scope entry (0-based), or on
/// every hit >= firstHit when count < 0.
struct FaultPoint {
  std::string site;
  int firstHit = 0;
  int count = 1;
};

/// A set of armed points; activated per thread via FaultScope. Copyable
/// value type so a SweepScenario can carry its plan by value.
struct FaultPlan {
  std::vector<FaultPoint> points;

  /// Arms `site` to fire `count` times starting at its `firstHit`-th hit.
  void arm(std::string site, int firstHit = 0, int count = 1) {
    points.push_back({std::move(site), firstHit, count});
  }
  bool empty() const { return points.empty(); }
};

namespace detail {
bool faultFire(const char* site);  // slow path behind the inline probe
}  // namespace detail

/// RAII activation of a plan on the constructing thread. Scopes nest; the
/// innermost scope wins (outer scopes are shadowed, not merged). The scope
/// also tallies hits and fires per site for test assertions.
class FaultScope {
 public:
  explicit FaultScope(const FaultPlan& plan);
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  /// Probe hits observed at `site` since scope entry.
  int hits(const std::string& site) const;
  /// Fires (forced failures) delivered at `site` since scope entry.
  int fired(const std::string& site) const;
  /// Total fires across all sites.
  int firedTotal() const;

 private:
  friend bool detail::faultFire(const char* site);
  struct SiteCounter {
    std::string site;
    int hits = 0;
    int fired = 0;
  };
  const FaultPlan plan_;  // copied: the scope must outlive caller mutation
  std::vector<SiteCounter> counters_;
  FaultScope* prev_ = nullptr;  // shadowed outer scope, restored on exit
};

namespace detail {
extern thread_local FaultScope* tlFaultScope;
}  // namespace detail

/// The probe the instrumented sites call. True means "fail now": throw the
/// site's error / poison the site's output. Inline fast path: one
/// thread-local load when no scope is installed.
inline bool faultShouldFire(const char* site) {
  return detail::tlFaultScope != nullptr && detail::faultFire(site);
}

/// Name of the most recent site that fired on this thread ("" when none
/// has). Used to stamp FailureDiagnostics::injectedFault so an injected
/// failure is distinguishable from an organic one in sweep reports.
const std::string& lastFiredFaultSite();

/// Clears the last-fired marker (scope entry does this automatically).
void clearLastFiredFaultSite();

}  // namespace psmn
