// Machine-readable export of telemetry: Chrome trace-event JSON (loads in
// chrome://tracing and Perfetto) and the building blocks of the runner's
// metrics report. Lives in util/ below the runtime layer, so it only
// knows about TelemetryRegistry and SolveStats; callers (the runner)
// compose their own sweep/scenario sections with the same JsonWriter.
#pragma once

#include <ostream>
#include <string_view>
#include <vector>

#include "util/telemetry.hpp"

namespace psmn {

/// Minimal streaming JSON writer: a comma-state stack so nested
/// objects/arrays emit separators correctly, plus string escaping. Enough
/// for the telemetry exports; not a general serializer.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void beginObject();
  void endObject();
  void beginArray();
  void endArray();
  /// Keys the next value (only valid inside an object).
  void key(std::string_view k);
  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(uint64_t v);
  void value(int64_t v);
  void value(double v);
  void value(bool v);

  void field(std::string_view k, std::string_view v) { key(k); value(v); }
  void field(std::string_view k, uint64_t v) { key(k); value(v); }
  void field(std::string_view k, int64_t v) { key(k); value(v); }
  void field(std::string_view k, double v) { key(k); value(v); }
  void field(std::string_view k, bool v) { key(k); value(v); }

 private:
  void separate();
  void writeEscaped(std::string_view s);

  std::ostream& os_;
  // One entry per open object/array: true once the first element has been
  // written (so the next one needs a leading comma).
  std::vector<bool> needComma_{false};
};

/// Writes the registry's events as a Chrome trace-event file:
/// {"traceEvents":[{"name","cat","ph":"X","ts","dur","pid","tid",...}],...}.
/// Timestamps are microseconds (the format's unit) with sub-µs precision
/// kept as fractions; tracks (tid) are registry slots.
void writeChromeTrace(std::ostream& os, const TelemetryRegistry& reg);

/// Writes `"counters": {...}, "phase_ns": {...}` fields (registry totals,
/// merged deterministically in slot order) into the currently open object.
void writeRegistrySections(JsonWriter& w, const TelemetryRegistry& reg);

/// Writes a SolveStats as an object value for the pending key.
void writeSolveStats(JsonWriter& w, const SolveStats& s);

}  // namespace psmn
