// Correlated mismatch (paper SS III-C).
//
// A group declares a joint covariance matrix (in parameter units^2) over a
// set of device mismatch parameters. The Cholesky-like factor A with
// C = A A^T (paper eq. 6) maps independent unit-variance variables xi onto
// the correlated deltas:
//   - Monte-Carlo draws xi ~ N(0, I) and applies delta = A xi;
//   - the pseudo-noise analysis replaces the grouped parameters' individual
//     sources with one composite InjectionSource per xi_j whose stamp is
//     sum_i A[i][j] * (dF/dp_i)  — the "linear combination of independent
//     noise sources" construction of the paper.
#pragma once

#include "circuit/netlist.hpp"
#include "engine/mna.hpp"
#include "numeric/cholesky.hpp"
#include "numeric/rng.hpp"

namespace psmn {

class CorrelatedMismatch {
 public:
  struct ParamRef {
    Device* device = nullptr;
    size_t index = 0;
  };

  /// Adds a group with the given covariance (must be symmetric PSD, sized
  /// params x params). A parameter may belong to at most one group.
  void addGroup(std::vector<ParamRef> params, const RealMatrix& covariance);

  /// Convenience: uniform pairwise correlation rho among parameters that
  /// keep their own sigmas (from mismatchParam()).
  void addUniformCorrelationGroup(std::vector<ParamRef> params, Real rho);

  bool covers(const Device* device, size_t index) const;

  /// Draws all grouped parameters and sets their deltas.
  void applySample(Rng& rng) const;

  /// Composite sources for the pseudo-noise analysis (one per xi_j), to be
  /// used together with the *ungrouped* sources from collectSources.
  std::vector<InjectionSource> compositeSources() const;

  /// Filters a full independent source list: removes sources covered by a
  /// group and appends the composite ones.
  std::vector<InjectionSource> transformSources(
      std::vector<InjectionSource> independent) const;

 private:
  struct Group {
    std::vector<ParamRef> params;
    RealMatrix factor;  // A with C = A A^T
  };
  std::vector<Group> groups_;
};

}  // namespace psmn
