// TransientMismatchAnalysis — the paper's headline flow (Fig. 2):
//
//   1. map device mismatch to low-frequency pseudo-noise sources,
//   2. find the periodic steady state (shooting Newton),
//   3. run LPTV noise analysis at a 1 Hz offset,
//   4. interpret sideband PSDs as performance variations (SS V):
//        N=0 baseband  -> variation of a DC-like quantity (offset voltage)
//        N=1 sideband  -> variation of delay (eq. 8) or frequency (eq. 9)
//
// Readout conventions. Because the 1 Hz pseudo-noise is quasi-static, the
// per-source envelope P_N^{(i)} is the (complex) sensitivity of the N-th
// Fourier coefficient of the output to parameter i. This library's primary
// readout projects out the phase/time-shift component exactly:
//   DC:        S_i = Re(P_0)
//   delay:     S_i = Re[ P_1 / (-j 2 pi f0 V_1) ]   (time-shift projection)
//   frequency: S_i = Re[ P_1 * f_off / V_1 ]
// yielding signed sensitivities S_i and sigma^2 = sum (S_i sigma_i)^2,
// which is what Monte-Carlo converges to for small mismatch. The paper's
// magnitude-based formulas (eq. 8, 9), which fold any residual AM power
// into the same number, are reported alongside as `paperVariance`.
#pragma once

#include <optional>
#include <string>

#include "rf/pnoise.hpp"
#include "rf/timedomain_noise.hpp"

namespace psmn {

/// A measured performance variation with its per-source breakdown.
/// scaledSens[i] = S_i * sigma_i is the "contribution list" of paper
/// eq. 10-11; correlations and derived quantities come from inner products
/// of these lists (core/correlation.hpp).
struct VariationResult {
  std::string measurement;
  std::vector<std::string> sourceNames;
  /// Signed per-source contributions S_i * sigma_i (measurement units).
  RealVector scaledSens;
  /// Sideband-magnitude variance per the paper's eq. 8/9 conventions.
  Real paperVariance = 0.0;

  Real variance() const;
  Real sigma() const;
  /// Contribution (S_i sigma_i)^2 summed over sources whose name starts
  /// with `prefix` (e.g. a device name) — used by eq. 14-16.
  Real varianceFromPrefix(const std::string& prefix) const;
};

struct MismatchAnalysisOptions {
  PssOptions pss;
  PnoiseOptions pnoise;
};

class TransientMismatchAnalysis {
 public:
  explicit TransientMismatchAnalysis(const MnaSystem& sys,
                                     MismatchAnalysisOptions opt = {});

  TransientMismatchAnalysis(const TransientMismatchAnalysis&) = delete;
  TransientMismatchAnalysis& operator=(const TransientMismatchAnalysis&) =
      delete;

  /// Driven circuit: all sources periodic with `period` (or DC).
  void runDriven(Real period, const RealVector* x0guess = nullptr);
  /// Autonomous oscillator (see solvePssAutonomous for the arguments).
  void runAutonomous(Real periodGuess, int phaseIndex,
                     const RealVector& x0guess);

  const PssResult& pss() const;
  const PnoiseAnalysis& pnoise() const;

  /// SS V-A: sigma of the DC component of unknown `outIndex` (e.g. the
  /// comparator offset voltage at the VOS node of the Fig. 6 testbench).
  VariationResult dcVariation(int outIndex) const;

  /// SS V-B: sigma of the time shift (delay) of the periodic waveform at
  /// `outIndex`, from the first-sideband envelope (eq. 8). This reads the
  /// phase of the *fundamental*, i.e. the common shift of the whole
  /// waveform; when the period contains several independently-moving edges
  /// prefer edgeDelayVariation.
  VariationResult delayVariation(int outIndex) const;

  /// Delay variation of one specific edge: the crossing of `level` in
  /// `direction` (+1 rising / -1 falling), occurrence `occurrence` within
  /// the period. Uses the time-domain envelope at the crossing:
  ///   S_i = -Re p_i(tc) / vdot(tc)
  /// (the Fig. 8 statistical waveform evaluated at the edge), which is
  /// exact for a single edge under the linear perturbation model.
  VariationResult edgeDelayVariation(int outIndex, Real level, int direction,
                                     int occurrence = 0) const;

  /// SS V-C: sigma of the oscillation frequency (eq. 9), in Hz.
  VariationResult frequencyVariation(int outIndex) const;

  /// Fig. 8: nominal waveform with the sigma(t) envelope.
  StatisticalWaveform statistical(int outIndex) const;

 private:
  const MnaSystem* sys_;
  MismatchAnalysisOptions opt_;
  std::optional<PssResult> pss_;
  std::optional<PnoiseAnalysis> pnoise_;
};

}  // namespace psmn
