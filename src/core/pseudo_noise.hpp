// The mismatch -> pseudo-noise mapping, made inspectable (paper SS III,
// Fig. 2 step 1, Fig. 3/4).
//
// The mechanics of the mapping live in the device mismatch interface
// (circuit/device.hpp) and MnaSystem::collectSources; this header provides
// the reporting/validation layer: a human-readable description of every
// pseudo-noise source and the Pelgrom-model calibration helpers used to
// reproduce the paper's "3 sigma(IDS) = 14%" process anchor.
#pragma once

#include "circuit/mosfet.hpp"
#include "engine/mna.hpp"

namespace psmn {

struct PseudoNoiseSourceInfo {
  std::string name;
  std::string kind;       // "vth", "beta", "resistance", ...
  Real sigma = 0.0;       // parameter std-dev
  Real psdAt1Hz = 0.0;    // sigma^2 (paper: N^2/f with N^2 = sigma^2)
  bool areaScaled = false;
};

/// Describes every mismatch pseudo-noise source in the netlist.
std::vector<PseudoNoiseSourceInfo> describePseudoNoise(const MnaSystem& sys);

/// One-line-per-source report (examples/quickstart).
std::string formatPseudoNoiseReport(const MnaSystem& sys);

/// Relative drain-current sigma of a saturated MOSFET under the Pelgrom
/// model at gate overdrive `veff`:
///   (sigma_I/I)^2 = (gm/I * sigma_VT)^2 + sigma_beta^2,  gm/I = 2/veff.
/// Used to calibrate the process so that 3*sigma(IDS) matches the paper.
Real relativeIdsSigma(const MosModel& model, Real w, Real l, Real veff);

/// Mismatch scale factor that makes 3*sigma(IDS) equal `target3Sigma` for
/// the given device geometry/overdrive (Fig. 11/12 sweeps).
Real mismatchScaleFor3SigmaIds(const MosModel& model, Real w, Real l,
                               Real veff, Real target3Sigma);

}  // namespace psmn
