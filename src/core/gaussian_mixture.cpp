#include "core/gaussian_mixture.hpp"

#include <cmath>

#include "numeric/statistics.hpp"

namespace psmn {

Real MixtureDistribution::pdf(Real x) const {
  Real acc = 0.0;
  for (const auto& c : components) {
    if (c.sigma <= 0.0) continue;
    acc += c.weight * gaussPdf(x, c.mean, c.sigma);
  }
  return acc;
}

Real MixtureDistribution::mean() const {
  Real wsum = 0.0, acc = 0.0;
  for (const auto& c : components) {
    wsum += c.weight;
    acc += c.weight * c.mean;
  }
  PSMN_CHECK(wsum > 0.0, "empty mixture");
  return acc / wsum;
}

Real MixtureDistribution::variance() const {
  const Real mu = mean();
  Real wsum = 0.0, acc = 0.0;
  for (const auto& c : components) {
    wsum += c.weight;
    const Real d = c.mean - mu;
    acc += c.weight * (c.sigma * c.sigma + d * d);
  }
  return acc / wsum;
}

Real MixtureDistribution::sigma() const { return std::sqrt(variance()); }

Real MixtureDistribution::thirdCentralMoment() const {
  const Real mu = mean();
  Real wsum = 0.0, acc = 0.0;
  for (const auto& c : components) {
    wsum += c.weight;
    const Real d = c.mean - mu;
    // E[(X-mu)^3] for a Gaussian component at offset d: d^3 + 3 d sigma^2.
    acc += c.weight * (d * d * d + 3.0 * d * c.sigma * c.sigma);
  }
  return acc / wsum;
}

Real MixtureDistribution::normalizedSkewness() const {
  const Real sd = sigma();
  if (sd <= 0.0) return 0.0;
  const Real mu3 = thirdCentralMoment();
  return std::copysign(std::cbrt(std::fabs(mu3)), mu3) / sd;
}

MixtureDistribution gaussianMixtureAnalysis(
    Device& device, size_t paramIndex,
    std::span<const MixtureComponent> paramMixture,
    const std::function<std::pair<Real, VariationResult>()>& runAndMeasure) {
  PSMN_CHECK(!paramMixture.empty(), "empty parameter mixture");
  const MismatchParam param = device.mismatchParam(paramIndex);
  PSMN_CHECK(param.sigma > 0.0,
             "mixture analysis requires a parameter with nonzero sigma");
  const Real savedDelta = device.mismatchDelta(paramIndex);

  MixtureDistribution dist;
  for (const auto& pc : paramMixture) {
    device.setMismatchDelta(paramIndex, pc.mean);
    auto [nominal, variation] = runAndMeasure();
    // The perturbed parameter's own contribution must use the component's
    // narrow sigma instead of its full-distribution sigma.
    Real variance = 0.0;
    for (size_t i = 0; i < variation.sourceNames.size(); ++i) {
      Real s = variation.scaledSens[i];
      if (variation.sourceNames[i] == param.name) {
        s *= pc.sigma / param.sigma;
      }
      variance += s * s;
    }
    dist.components.push_back({pc.weight, nominal, std::sqrt(variance)});
  }
  device.setMismatchDelta(paramIndex, savedDelta);
  return dist;
}

}  // namespace psmn
