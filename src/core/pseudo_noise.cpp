#include "core/pseudo_noise.hpp"

#include <cmath>
#include <sstream>

#include "util/units.hpp"

namespace psmn {
namespace {

const char* kindName(MismatchKind k) {
  switch (k) {
    case MismatchKind::kVth: return "vth";
    case MismatchKind::kBetaRel: return "beta";
    case MismatchKind::kResistance: return "resistance";
    case MismatchKind::kCapacitance: return "capacitance";
    case MismatchKind::kInductance: return "inductance";
    case MismatchKind::kGeneric: return "generic";
  }
  return "?";
}

}  // namespace

std::vector<PseudoNoiseSourceInfo> describePseudoNoise(const MnaSystem& sys) {
  std::vector<PseudoNoiseSourceInfo> out;
  for (const auto& ref : sys.netlist().mismatchParams()) {
    PseudoNoiseSourceInfo info;
    info.name = ref.param.name;
    info.kind = kindName(ref.param.kind);
    info.sigma = ref.param.sigma;
    info.psdAt1Hz = ref.param.sigma * ref.param.sigma;
    info.areaScaled = ref.param.areaScaled;
    out.push_back(std::move(info));
  }
  return out;
}

std::string formatPseudoNoiseReport(const MnaSystem& sys) {
  std::ostringstream os;
  os << "mismatch -> pseudo-noise mapping (flicker-shaped, PSD = sigma^2 at "
        "1 Hz):\n";
  for (const auto& info : describePseudoNoise(sys)) {
    os << "  " << info.name << " [" << info.kind
       << "] sigma=" << formatEng(info.sigma)
       << " PSD(1Hz)=" << formatEng(info.psdAt1Hz)
       << (info.areaScaled ? " (Pelgrom 1/sqrt(WL))" : "") << "\n";
  }
  return os.str();
}

Real relativeIdsSigma(const MosModel& model, Real w, Real l, Real veff) {
  PSMN_CHECK(w > 0.0 && l > 0.0 && veff > 0.0, "bad geometry/overdrive");
  const Real area = w * l;
  const Real sigmaVt = model.avt / std::sqrt(area);
  const Real sigmaBeta = model.abeta / std::sqrt(area);
  const Real gmOverId = 2.0 / veff;  // saturated square law
  return std::sqrt(gmOverId * gmOverId * sigmaVt * sigmaVt +
                   sigmaBeta * sigmaBeta);
}

Real mismatchScaleFor3SigmaIds(const MosModel& model, Real w, Real l,
                               Real veff, Real target3Sigma) {
  const Real nominal = 3.0 * relativeIdsSigma(model, w, l, veff);
  PSMN_CHECK(nominal > 0.0, "model has zero mismatch");
  return target3Sigma / nominal;
}

}  // namespace psmn
