#include "core/mismatch_analysis.hpp"

#include <cmath>
#include <numbers>

namespace psmn {

Real VariationResult::variance() const {
  Real acc = 0.0;
  for (Real s : scaledSens) acc += s * s;
  return acc;
}

Real VariationResult::sigma() const { return std::sqrt(variance()); }

Real VariationResult::varianceFromPrefix(const std::string& prefix) const {
  Real acc = 0.0;
  for (size_t i = 0; i < sourceNames.size(); ++i) {
    if (sourceNames[i].rfind(prefix, 0) == 0) {
      acc += scaledSens[i] * scaledSens[i];
    }
  }
  return acc;
}

TransientMismatchAnalysis::TransientMismatchAnalysis(
    const MnaSystem& sys, MismatchAnalysisOptions opt)
    : sys_(&sys), opt_(std::move(opt)) {}

void TransientMismatchAnalysis::runDriven(Real period,
                                          const RealVector* x0guess) {
  pss_ = solvePssDriven(*sys_, period, opt_.pss, x0guess);
  pnoise_.emplace(*sys_, *pss_, opt_.pnoise);
  pnoise_->run();
}

void TransientMismatchAnalysis::runAutonomous(Real periodGuess, int phaseIndex,
                                              const RealVector& x0guess) {
  pss_ = solvePssAutonomous(*sys_, periodGuess, phaseIndex, x0guess, opt_.pss);
  pnoise_.emplace(*sys_, *pss_, opt_.pnoise);
  pnoise_->run();
}

const PssResult& TransientMismatchAnalysis::pss() const {
  PSMN_CHECK(pss_.has_value(), "run the analysis first");
  return *pss_;
}

const PnoiseAnalysis& TransientMismatchAnalysis::pnoise() const {
  PSMN_CHECK(pnoise_.has_value(), "run the analysis first");
  return *pnoise_;
}

VariationResult TransientMismatchAnalysis::dcVariation(int outIndex) const {
  const PnoiseSideband sb = pnoise().sideband(outIndex, 0);
  const auto& sources = pnoise().sources();
  VariationResult r;
  r.measurement = "dc(" + sys_->netlist().unknownName(outIndex) + ")";
  r.paperVariance = sb.totalPsd;  // baseband PSD at 1 Hz == variance (SS V-A)
  for (size_t i = 0; i < sources.size(); ++i) {
    r.sourceNames.push_back(sources[i].name);
    const Real psd = sources[i].psd(sb.offsetFreq);
    r.scaledSens.push_back(sb.transfer[i].real() * std::sqrt(psd));
  }
  return r;
}

VariationResult TransientMismatchAnalysis::delayVariation(int outIndex) const {
  const PnoiseSideband sb = pnoise().sideband(outIndex, 1);
  const auto& sources = pnoise().sources();
  const Real f0 = 1.0 / pss().period;
  const Cplx v1 = pss().fourier(outIndex, 1);
  PSMN_CHECK(std::abs(v1) > 0.0, "output has no fundamental component");
  const Cplx projector =
      1.0 / (Cplx(0.0, -2.0 * std::numbers::pi_v<Real> * f0) * v1);

  VariationResult r;
  r.measurement = "delay(" + sys_->netlist().unknownName(outIndex) + ")";
  // Paper eq. 8: sigma_D^2 = 2 P1 / ((2 pi f0)^2 Ac^2), Ac = 2|V1|.
  const Real ac = 2.0 * std::abs(v1);
  const Real w0 = 2.0 * std::numbers::pi_v<Real> * f0;
  r.paperVariance = 2.0 * sb.totalPsd / (w0 * w0 * ac * ac);
  for (size_t i = 0; i < sources.size(); ++i) {
    r.sourceNames.push_back(sources[i].name);
    const Real psd = sources[i].psd(sb.offsetFreq);
    const Real s = (sb.transfer[i] * projector).real();
    r.scaledSens.push_back(s * std::sqrt(psd));
  }
  return r;
}

VariationResult TransientMismatchAnalysis::edgeDelayVariation(
    int outIndex, Real level, int direction, int occurrence) const {
  const PssResult& ps = pss();
  const LptvSolution& sol = pnoise().solution();
  const auto& sources = pnoise().sources();
  const size_t m = ps.stepCount();
  PSMN_CHECK(outIndex >= 0, "bad output index");

  // Locate the requested crossing on the periodic nominal waveform.
  const RealVector w = ps.waveform(outIndex);
  int found = -1;
  Real frac = 0.0;
  int count = 0;
  for (size_t k = 0; k < m; ++k) {
    const Real y0 = w[k];
    const Real y1 = w[(k + 1) % m];
    const bool rising = y0 < level && y1 >= level;
    const bool falling = y0 > level && y1 <= level;
    if ((direction >= 0 && rising) || (direction <= 0 && falling)) {
      if (count == occurrence) {
        found = static_cast<int>(k);
        frac = (level - y0) / (y1 - y0);
        break;
      }
      ++count;
    }
  }
  PSMN_CHECK(found >= 0, "edgeDelayVariation: crossing not found");
  const size_t k0 = static_cast<size_t>(found);
  const size_t k1 = (k0 + 1) % m;
  const Real slope = (w[k1] - w[k0]) / ps.stepSize();
  PSMN_CHECK(slope != 0.0, "edgeDelayVariation: flat crossing");

  VariationResult r;
  r.measurement = "edge-delay(" + sys_->netlist().unknownName(outIndex) + ")";
  const Real fOff = pnoise().offsetFreq();
  for (size_t i = 0; i < sources.size(); ++i) {
    const Cplx p0 = sol.envelopes[i][k0][outIndex];
    const Cplx p1 = sol.envelopes[i][k1][outIndex];
    const Real dv = ((1.0 - frac) * p0 + frac * p1).real();
    const Real s = -dv / slope;  // dtc/dp
    r.sourceNames.push_back(sources[i].name);
    r.scaledSens.push_back(s * std::sqrt(sources[i].psd(fOff)));
  }
  r.paperVariance = r.variance();
  return r;
}

VariationResult TransientMismatchAnalysis::frequencyVariation(
    int outIndex) const {
  const PnoiseSideband sb = pnoise().sideband(outIndex, 1);
  const auto& sources = pnoise().sources();
  const Cplx v1 = pss().fourier(outIndex, 1);
  PSMN_CHECK(std::abs(v1) > 0.0, "output has no fundamental component");
  const Real fOff = sb.offsetFreq;

  VariationResult r;
  r.measurement = "frequency(" + sys_->netlist().unknownName(outIndex) + ")";
  // Paper eq. 9: sigma_f^2 = 4 f^2 P1 / Ac^2, Ac = 2|V1|.
  const Real ac = 2.0 * std::abs(v1);
  r.paperVariance = 4.0 * fOff * fOff * sb.totalPsd / (ac * ac);
  for (size_t i = 0; i < sources.size(); ++i) {
    r.sourceNames.push_back(sources[i].name);
    const Real psd = sources[i].psd(fOff);
    const Real s = (sb.transfer[i] * fOff / v1).real();
    r.scaledSens.push_back(s * std::sqrt(psd));
  }
  return r;
}

StatisticalWaveform TransientMismatchAnalysis::statistical(
    int outIndex) const {
  return statisticalWaveform(pnoise(), outIndex);
}

}  // namespace psmn
