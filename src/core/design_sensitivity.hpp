// Mismatch sensitivity of a performance variation to design parameters
// (paper SS VII, eq. 14-16).
//
// Under the Pelgrom model both sigma_VT^2 and sigma_beta^2 scale as
// 1/(W*L), so the variation contributed by one transistor scales the same
// way and
//   d sigma_P^2 / dW = -( sigma_{P,VT}^2 + sigma_{P,beta}^2 ) / W
// (eq. 16; same form for L). This uses only the contribution breakdown —
// no additional simulation — which is the paper's key optimization-loop
// advantage over Monte-Carlo. Note it intentionally ignores the effect of
// W on the *nominal* operating point (the paper's convention); the
// finite-difference cross-check lives in bench_fig10_width_sensitivity.
#pragma once

#include "circuit/mosfet.hpp"
#include "core/mismatch_analysis.hpp"

namespace psmn {

struct WidthSensitivity {
  std::string device;
  Real width = 0.0;
  Real varianceShare = 0.0;   // sigma_{P,dev}^2 (this device's contribution)
  Real dVarianceDWidth = 0.0; // d sigma_P^2 / dW  (eq. 16)
  /// Relative form d(sigma_P^2)/sigma_P^2 per relative dW/W — a unitless
  /// ranking of which device to upsize first (paper Fig. 10).
  Real relativeImpact = 0.0;
};

/// Per-MOSFET width sensitivities of the variation `v` (paper Fig. 10).
/// Sources must follow the "<device>.<param>" naming of collectSources.
std::vector<WidthSensitivity> widthSensitivities(const Netlist& netlist,
                                                 const VariationResult& v);

}  // namespace psmn
