// Correlations among performance variations (paper SS V-D).
//
// Two variations measured from the *same* pseudo-noise run share the same
// independent source set, so their covariance is the inner product of the
// signed contribution lists (eq. 12):
//   cov(A, B) = sum_i (S_{A,i} sigma_i)(S_{B,i} sigma_i)
// and derived-quantity variances follow without new simulations, e.g. the
// DNL-style difference (eq. 13):
//   var(B - A) = var(A) + var(B) - 2 cov(A, B).
#pragma once

#include "core/mismatch_analysis.hpp"

namespace psmn {

/// Covariance of two variations (eq. 12). Requires matching source lists.
Real covarianceOf(const VariationResult& a, const VariationResult& b);

/// Pearson correlation coefficient rho = cov / (sigma_a sigma_b).
Real correlationOf(const VariationResult& a, const VariationResult& b);

/// Variance of the difference (b - a), paper eq. 13.
Real differenceVariance(const VariationResult& a, const VariationResult& b);

/// Variance of the sum (a + b).
Real sumVariance(const VariationResult& a, const VariationResult& b);

/// General linear combination ca*a + cb*b.
Real combinedVariance(const VariationResult& a, const VariationResult& b,
                      Real ca, Real cb);

}  // namespace psmn
