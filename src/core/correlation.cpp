#include "core/correlation.hpp"

#include <cmath>

namespace psmn {

Real covarianceOf(const VariationResult& a, const VariationResult& b) {
  PSMN_CHECK(a.sourceNames == b.sourceNames,
             "covariance requires variations from the same source set");
  Real acc = 0.0;
  for (size_t i = 0; i < a.scaledSens.size(); ++i) {
    acc += a.scaledSens[i] * b.scaledSens[i];
  }
  return acc;
}

Real correlationOf(const VariationResult& a, const VariationResult& b) {
  const Real denom = a.sigma() * b.sigma();
  PSMN_CHECK(denom > 0.0, "correlation of a zero-variance quantity");
  return covarianceOf(a, b) / denom;
}

Real combinedVariance(const VariationResult& a, const VariationResult& b,
                      Real ca, Real cb) {
  return ca * ca * a.variance() + cb * cb * b.variance() +
         2.0 * ca * cb * covarianceOf(a, b);
}

Real differenceVariance(const VariationResult& a, const VariationResult& b) {
  return combinedVariance(a, b, -1.0, 1.0);
}

Real sumVariance(const VariationResult& a, const VariationResult& b) {
  return combinedVariance(a, b, 1.0, 1.0);
}

}  // namespace psmn
