#include "core/monte_carlo.hpp"

#include <algorithm>

#include "runtime/thread_pool.hpp"
#include "util/telemetry.hpp"

namespace psmn {

void applyMismatchSample(const std::vector<Netlist::MismatchRef>& params,
                         const CorrelatedMismatch* corr, uint64_t seed,
                         size_t k) {
  Rng rng = Rng::forSample(seed, k);
  // Independent parameters first (a fixed draw order keeps the stream
  // deterministic), then the correlated groups.
  for (const auto& p : params) {
    if (corr && corr->covers(p.device, p.index)) continue;
    Real delta = rng.gaussian(0.0, p.param.sigma);
    // Relative current-factor mismatch cannot physically reach -100%;
    // truncate the Gaussian tail the way production MC flows do. Only
    // matters for extreme severity sweeps (Fig. 11/12 at several x the
    // process mismatch).
    if (p.param.kind == MismatchKind::kBetaRel) {
      delta = std::max(delta, -0.95);
    }
    p.device->setMismatchDelta(p.index, delta);
  }
  if (corr) corr->applySample(rng);
}

namespace {

/// Applies sample k's draw, runs the measurement, and clears the deltas.
/// Returns false on SampleFailure.
bool evalSample(const MnaSystem& sys, Netlist& nl,
                const std::vector<Netlist::MismatchRef>& params,
                const CorrelatedMismatch* corr, uint64_t seed, size_t k,
                const McMeasure& measure, RealVector& out) {
  applyMismatchSample(params, corr, seed, k);
  bool ok = true;
  try {
    out = measure(sys);
  } catch (const SampleFailure&) {
    ok = false;
  }
  nl.clearMismatch();
  return ok;
}

}  // namespace

Real McResult::correlationBetween(size_t i, size_t j) const {
  PSMN_CHECK(!samples.empty(), "sample matrix was not kept");
  CorrelationAccumulator acc;
  for (const auto& row : samples) acc.add(row.at(i), row.at(j));
  return acc.correlation();
}

RealVector McResult::column(size_t j) const {
  PSMN_CHECK(!samples.empty(), "sample matrix was not kept");
  RealVector out;
  out.reserve(samples.size());
  for (const auto& row : samples) out.push_back(row.at(j));
  return out;
}

MonteCarloEngine::MonteCarloEngine(const MnaSystem& sys, McOptions opt)
    : sys_(&sys), opt_(opt) {}

McResult MonteCarloEngine::run(std::vector<std::string> names,
                               const McMeasure& measure) {
  TraceSpan span(Phase::kMc, "monte_carlo");
  McResult result;
  result.names = std::move(names);
  result.moments.assign(result.names.size(), MomentAccumulator{});

  const auto tStart = std::chrono::steady_clock::now();
  const size_t jobs = std::min(
      opt_.jobs == 0 ? ThreadPool::hardwareJobs() : opt_.jobs, opt_.samples);

  // Streams one sample row into the statistics; called in sample order by
  // both paths, so the accumulation is independent of evaluation order.
  const auto accumulate = [&](bool ok, RealVector& row) {
    if (!ok) {
      ++result.failedSamples;
      return;
    }
    PSMN_CHECK(row.size() == result.names.size(),
               "measurement count mismatch");
    for (size_t j = 0; j < row.size(); ++j) result.moments[j].add(row[j]);
    if (opt_.keepSamples) result.samples.push_back(std::move(row));
  };

  if (opt_.batch.enabled && tranSpec_ && tranSpec_->measure && factory_ &&
      corr_ == nullptr) {
    // Scenario-batched path: samples are tiled into lanes-wide batches over
    // a private netlist per tile, and each tile's transients advance in
    // lockstep through one device walk per Newton iteration. Lanes the
    // batch cannot finish fall back to the opaque scalar measurement,
    // which reproduces exactly what the scalar path would have reported
    // for that sample. Rows are buffered and accumulated in sample order,
    // so statistics are bit-identical to the scalar path.
    const McTransientSpec& spec = *tranSpec_;
    const size_t lanes =
        std::min(std::max<size_t>(1, opt_.batch.lanes), opt_.samples);
    std::vector<RealVector> rows(opt_.samples);
    std::vector<char> ok(opt_.samples, 0);
    for (size_t base = 0; base < opt_.samples; base += lanes) {
      const size_t laneN = std::min(lanes, opt_.samples - base);
      std::unique_ptr<Netlist> nl = factory_();
      PSMN_CHECK(nl != nullptr, "netlist factory returned null");
      nl->finalize();
      MnaSystem tileSys(*nl);
      PSMN_CHECK(tileSys.size() == sys_->size(),
                 "netlist factory built a different circuit");
      const auto params = nl->mismatchParams();
      DeviceBatch db(*nl, laneN);
      for (size_t l = 0; l < laneN; ++l) {
        applyMismatchSample(params, nullptr, opt_.seed, base + l);
        db.captureLane(l);
      }
      std::vector<BatchLaneOutcome> outcomes =
          runTransientBatch(tileSys, db, spec.t0, spec.t1, spec.dt, spec.tran);
      for (size_t l = 0; l < laneN; ++l) {
        const size_t k = base + l;
        if (outcomes[l].ok) {
          rows[k] = spec.measure(*nl, outcomes[l].result);
          ok[k] = 1;
        } else {
          ok[k] = evalSample(tileSys, *nl, params, nullptr, opt_.seed, k,
                             measure, rows[k]);
        }
      }
    }
    for (size_t k = 0; k < opt_.samples; ++k) accumulate(ok[k], rows[k]);
  } else if (jobs > 1 && factory_ && corr_ == nullptr) {
    // Parallel path: one private (netlist, system) per execution slot; the
    // batches partition the sample index range, and each sample's stream
    // is seeded by its index, so the draw never depends on the partition.
    ThreadPool pool(jobs);
    struct SlotContext {
      std::unique_ptr<Netlist> nl;
      std::unique_ptr<MnaSystem> sys;
      std::vector<Netlist::MismatchRef> params;
    };
    std::vector<SlotContext> slots(pool.jobCount());
    for (auto& slot : slots) {
      slot.nl = factory_();
      PSMN_CHECK(slot.nl != nullptr, "netlist factory returned null");
      slot.nl->finalize();
      slot.sys = std::make_unique<MnaSystem>(*slot.nl);
      PSMN_CHECK(slot.sys->size() == sys_->size(),
                 "netlist factory built a different circuit");
      slot.params = slot.nl->mismatchParams();
    }
    // The fan-out buffers one row per sample so the post-pass can stream
    // them in index order (O(samples) extra memory, parallel path only).
    std::vector<RealVector> rows(opt_.samples);
    std::vector<char> ok(opt_.samples, 0);
    const size_t chunk =
        std::max<size_t>(1, opt_.samples / (pool.jobCount() * 4));
    pool.parallelFor(
        opt_.samples, chunk, [&](size_t b, size_t e, size_t slotIdx) {
          SlotContext& slot = slots[slotIdx];
          for (size_t k = b; k < e; ++k) {
            ok[k] = evalSample(*slot.sys, *slot.nl, slot.params, nullptr,
                               opt_.seed, k, measure, rows[k]);
          }
        });
    for (size_t k = 0; k < opt_.samples; ++k) accumulate(ok[k], rows[k]);
  } else {
    // Serial path: one row in flight, as before this engine learned to
    // fan out.
    Netlist& nl = const_cast<Netlist&>(sys_->netlist());
    const auto params = nl.mismatchParams();
    RealVector row;
    for (size_t k = 0; k < opt_.samples; ++k) {
      const bool ok =
          evalSample(*sys_, nl, params, corr_, opt_.seed, k, measure, row);
      accumulate(ok, row);
    }
  }
  result.elapsedSeconds =
      std::chrono::duration<Real>(std::chrono::steady_clock::now() - tStart)
          .count();
  return result;
}

}  // namespace psmn
