#include "core/monte_carlo.hpp"

#include <algorithm>

namespace psmn {

Real McResult::correlationBetween(size_t i, size_t j) const {
  PSMN_CHECK(!samples.empty(), "sample matrix was not kept");
  CorrelationAccumulator acc;
  for (const auto& row : samples) acc.add(row.at(i), row.at(j));
  return acc.correlation();
}

RealVector McResult::column(size_t j) const {
  PSMN_CHECK(!samples.empty(), "sample matrix was not kept");
  RealVector out;
  out.reserve(samples.size());
  for (const auto& row : samples) out.push_back(row.at(j));
  return out;
}

MonteCarloEngine::MonteCarloEngine(const MnaSystem& sys, McOptions opt)
    : sys_(&sys), opt_(opt) {}

McResult MonteCarloEngine::run(std::vector<std::string> names,
                               const McMeasure& measure) {
  McResult result;
  result.names = std::move(names);
  result.moments.assign(result.names.size(), MomentAccumulator{});

  Netlist& nl = const_cast<Netlist&>(sys_->netlist());
  const auto params = nl.mismatchParams();

  const auto tStart = std::chrono::steady_clock::now();
  for (size_t k = 0; k < opt_.samples; ++k) {
    Rng rng = Rng::forSample(opt_.seed, k);
    // Independent parameters first (a fixed draw order keeps the stream
    // deterministic), then the correlated groups.
    for (const auto& p : params) {
      if (corr_ && corr_->covers(p.device, p.index)) continue;
      Real delta = rng.gaussian(0.0, p.param.sigma);
      // Relative current-factor mismatch cannot physically reach -100%;
      // truncate the Gaussian tail the way production MC flows do. Only
      // matters for extreme severity sweeps (Fig. 11/12 at several x the
      // process mismatch).
      if (p.param.kind == MismatchKind::kBetaRel) {
        delta = std::max(delta, -0.95);
      }
      p.device->setMismatchDelta(p.index, delta);
    }
    if (corr_) corr_->applySample(rng);

    try {
      const RealVector meas = measure(*sys_);
      PSMN_CHECK(meas.size() == result.names.size(),
                 "measurement count mismatch");
      for (size_t j = 0; j < meas.size(); ++j) result.moments[j].add(meas[j]);
      if (opt_.keepSamples) result.samples.push_back(meas);
    } catch (const SampleFailure&) {
      ++result.failedSamples;
    }
    nl.clearMismatch();
  }
  result.elapsedSeconds =
      std::chrono::duration<Real>(std::chrono::steady_clock::now() - tStart)
          .count();
  return result;
}

}  // namespace psmn
