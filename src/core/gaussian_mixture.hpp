// Gaussian-mixture extension for non-Gaussian mismatch (paper SS VIII,
// Fig. 13).
//
// A non-Gaussian parameter distribution is approximated as a mixture of
// narrow Gaussians. Each component shifts the parameter's nominal value to
// the component mean, re-runs the PSS + pseudo-noise analysis there (its
// own local linear perturbation model), and projects the component into
// performance space. The performance distribution is then the weighted sum
// of the projected Gaussians — possibly non-Gaussian, at the cost of one
// PSS simulation per component (exactly the trade-off the paper describes).
#pragma once

#include <functional>

#include "core/mismatch_analysis.hpp"

namespace psmn {

struct MixtureComponent {
  Real weight = 1.0;
  Real mean = 0.0;   // parameter-space mean offset
  Real sigma = 0.0;  // parameter-space std-dev of this component
};

/// A distribution in performance space: sum of weighted Gaussians.
struct MixtureDistribution {
  std::vector<MixtureComponent> components;  // performance-space components

  Real pdf(Real x) const;
  Real mean() const;
  Real variance() const;
  Real sigma() const;
  /// Third central moment and the paper's normalized skewness.
  Real thirdCentralMoment() const;
  Real normalizedSkewness() const;
};

/// Runs the mixture analysis for a single non-Gaussian parameter.
///
/// `paramMixture` describes the parameter's distribution; `runAndMeasure`
/// must (re)run the pseudo-noise analysis with the netlist's current
/// deltas and return {nominal performance, its VariationResult}. The
/// parameter's own sigma contribution is replaced by each component's
/// narrow sigma; all other parameters keep their Gaussian model.
MixtureDistribution gaussianMixtureAnalysis(
    Device& device, size_t paramIndex,
    std::span<const MixtureComponent> paramMixture,
    const std::function<std::pair<Real, VariationResult>()>& runAndMeasure);

}  // namespace psmn
