// Monte-Carlo mismatch analysis — the baseline the paper benchmarks
// against (SS VI, Table II).
//
// Each sample draws every mismatch parameter from N(0, sigma^2) (or from a
// correlated model, SS III-C), applies the deltas to the devices, runs the
// caller's measurement (typically a transient simulation + waveform
// measurement), and accumulates statistics. Sampling is deterministic per
// (seed, sampleIndex) so results are reproducible.
#pragma once

#include <chrono>
#include <functional>

#include "core/correlated_mismatch.hpp"
#include "engine/mna.hpp"
#include "numeric/rng.hpp"
#include "numeric/statistics.hpp"

namespace psmn {

struct McOptions {
  size_t samples = 1000;
  uint64_t seed = 1;
  bool keepSamples = true;  // store the full sample matrix (histograms)
};

/// Measurement callback: the netlist already carries this sample's mismatch
/// deltas; returns one value per measured quantity. Throwing SampleFailure
/// skips the sample (counted separately).
using McMeasure = std::function<RealVector(const MnaSystem&)>;

class SampleFailure : public Error {
 public:
  explicit SampleFailure(const std::string& what) : Error(what) {}
};

struct McResult {
  std::vector<std::string> names;
  std::vector<MomentAccumulator> moments;
  /// samples[k][j] = measurement j of sample k (when keepSamples).
  std::vector<RealVector> samples;
  size_t failedSamples = 0;
  Real elapsedSeconds = 0.0;

  Real sigma(size_t j = 0) const { return moments.at(j).stddev(); }
  Real meanOf(size_t j = 0) const { return moments.at(j).mean(); }
  /// Pearson correlation between two measured quantities.
  Real correlationBetween(size_t i, size_t j) const;
  /// One column of the sample matrix.
  RealVector column(size_t j) const;
};

class MonteCarloEngine {
 public:
  MonteCarloEngine(const MnaSystem& sys, McOptions opt = {});

  /// Optional correlated-mismatch model; parameters covered by it are drawn
  /// jointly, the rest independently.
  void setCorrelatedMismatch(const CorrelatedMismatch* corr) { corr_ = corr; }

  McResult run(std::vector<std::string> names, const McMeasure& measure);

 private:
  const MnaSystem* sys_;
  McOptions opt_;
  const CorrelatedMismatch* corr_ = nullptr;
};

}  // namespace psmn
