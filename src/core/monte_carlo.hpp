// Monte-Carlo mismatch analysis — the baseline the paper benchmarks
// against (SS VI, Table II).
//
// Each sample draws every mismatch parameter from N(0, sigma^2) (or from a
// correlated model, SS III-C), applies the deltas to the devices, runs the
// caller's measurement (typically a transient simulation + waveform
// measurement), and accumulates statistics. Sampling is deterministic per
// (seed, sampleIndex) so results are reproducible.
#pragma once

#include <chrono>
#include <functional>
#include <optional>

#include "core/correlated_mismatch.hpp"
#include "engine/batch_eval.hpp"
#include "engine/mna.hpp"
#include "numeric/rng.hpp"
#include "numeric/statistics.hpp"

namespace psmn {

struct McOptions {
  size_t samples = 1000;
  uint64_t seed = 1;
  bool keepSamples = true;  // store the full sample matrix (histograms)
  /// Concurrent sample evaluations (0 -> hardware). Values above 1 take
  /// effect only when a netlist factory is installed (each slot needs a
  /// private netlist to perturb) and no correlated-mismatch model is set
  /// (its device references are bound to the primary netlist). Because
  /// every sample's RNG stream is derived from (seed, sampleIndex) and the
  /// statistics are accumulated in sample order after the fan-out, results
  /// are bit-identical for every jobs count.
  size_t jobs = 1;
  /// Scenario-batched evaluation (engine/batch_eval.hpp). Takes effect only
  /// when a netlist factory is installed, no correlated model is set, and a
  /// transient measurement spec is declared (setTransientMeasurement) —
  /// the batched path must run the analysis itself to batch it. Samples
  /// are tiled into `batch.lanes`-wide batches evaluated through one
  /// device walk per Newton iteration; results are bit-identical to the
  /// scalar path, which remains the default and the oracle.
  BatchOptions batch;
};

/// Measurement callback: the netlist already carries this sample's mismatch
/// deltas; returns one value per measured quantity. Throwing SampleFailure
/// skips the sample (counted separately). With jobs > 1 the callback runs
/// concurrently on different MnaSystems (one per slot), so it must not
/// write captured state — measure through the passed-in system only.
using McMeasure = std::function<RealVector(const MnaSystem&)>;

class SampleFailure : public Error {
 public:
  explicit SampleFailure(const std::string& what) : Error(what) {}
};

/// Applies sample `k`'s mismatch draw to `params` — THE definition of the
/// deterministic (seed, index) stream: independent parameters first in
/// flattening order (kBetaRel truncated at -95%, the physical floor of a
/// relative current factor), then the correlated groups. Shared by the MC
/// engine and the netlist_runner sweep so scenario k reproduces MC
/// sample k exactly.
void applyMismatchSample(const std::vector<Netlist::MismatchRef>& params,
                         const CorrelatedMismatch* corr, uint64_t seed,
                         size_t k);

struct McResult {
  std::vector<std::string> names;
  std::vector<MomentAccumulator> moments;
  /// samples[k][j] = measurement j of sample k (when keepSamples).
  std::vector<RealVector> samples;
  size_t failedSamples = 0;
  Real elapsedSeconds = 0.0;

  Real sigma(size_t j = 0) const { return moments.at(j).stddev(); }
  Real meanOf(size_t j = 0) const { return moments.at(j).mean(); }
  /// Pearson correlation between two measured quantities.
  Real correlationBetween(size_t i, size_t j) const;
  /// One column of the sample matrix.
  RealVector column(size_t j) const;
};

/// Rebuilds the engine's circuit from scratch — the parallel path calls it
/// once per execution slot to give every thread a private netlist. It MUST
/// construct the same circuit as the engine's primary netlist (same devices
/// in the same order, so the mismatch-parameter flattening lines up);
/// the determinism tests compare jobs=1 (primary netlist) against jobs=N
/// (factory netlists), which catches a diverging factory.
using NetlistFactory = std::function<std::unique_ptr<Netlist>()>;

/// Declarative transient measurement: the engine runs the transient itself
/// (scenario-batched when McOptions::batch.enabled) and hands the finished
/// run to `measure` for waveform extraction. The spec must compute exactly
/// what the opaque McMeasure passed to run() computes by running its own
/// transient — the McMeasure stays installed as the oracle and as the
/// fallback for lanes the batch cannot finish. The Netlist argument is for
/// node lookups only; it carries unspecified mismatch deltas at call time.
struct McTransientSpec {
  Real t0 = 0.0, t1 = 0.0, dt = 0.0;
  TranOptions tran;
  std::function<RealVector(const Netlist&, const TransientResult&)> measure;
};

class MonteCarloEngine {
 public:
  MonteCarloEngine(const MnaSystem& sys, McOptions opt = {});

  /// Optional correlated-mismatch model; parameters covered by it are drawn
  /// jointly, the rest independently. Forces the serial path (see
  /// McOptions::jobs).
  void setCorrelatedMismatch(const CorrelatedMismatch* corr) { corr_ = corr; }

  /// Enables the parallel path: each execution slot evaluates its samples
  /// on a private netlist built by `factory`.
  void setNetlistFactory(NetlistFactory factory) {
    factory_ = std::move(factory);
  }

  /// Declares the transient the samples measure, enabling the batched path
  /// (see McOptions::batch and McTransientSpec).
  void setTransientMeasurement(McTransientSpec spec) {
    tranSpec_ = std::move(spec);
  }

  McResult run(std::vector<std::string> names, const McMeasure& measure);

 private:
  const MnaSystem* sys_;
  McOptions opt_;
  const CorrelatedMismatch* corr_ = nullptr;
  NetlistFactory factory_;
  std::optional<McTransientSpec> tranSpec_;
};

}  // namespace psmn
