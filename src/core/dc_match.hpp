// DC match analysis — the Oehm & Schumacher / Spectre "dcmatch" baseline
// the paper extends (eq. 1):
//   sigma_out^2 = sum_i (S_i sigma_i)^2
// with S_i the DC sensitivities of a DC voltage/current. Works only for
// quantities measurable at a stable DC operating point; the comparator
// offset of SS IV-A is exactly the case where it fails and the transient
// (LPTV) extension is needed.
#pragma once

#include "core/mismatch_analysis.hpp"
#include "engine/dc.hpp"

namespace psmn {

/// DC-match analysis of unknown `outIndex` at the DC operating point.
VariationResult dcMatchAnalysis(const MnaSystem& sys, int outIndex,
                                const DcOptions& dcOpt = {});

}  // namespace psmn
