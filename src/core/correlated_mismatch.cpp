#include "core/correlated_mismatch.hpp"

namespace psmn {

void CorrelatedMismatch::addGroup(std::vector<ParamRef> params,
                                  const RealMatrix& covariance) {
  PSMN_CHECK(!params.empty(), "empty correlation group");
  PSMN_CHECK(covariance.rows() == params.size() &&
                 covariance.cols() == params.size(),
             "covariance size does not match parameter count");
  for (const auto& p : params) {
    PSMN_CHECK(p.device != nullptr, "null device in correlation group");
    PSMN_CHECK(!covers(p.device, p.index),
               "parameter already belongs to a correlation group");
  }
  Group g;
  g.params = std::move(params);
  g.factor = choleskyFactor(covariance);
  groups_.push_back(std::move(g));
}

void CorrelatedMismatch::addUniformCorrelationGroup(
    std::vector<ParamRef> params, Real rho) {
  PSMN_CHECK(rho >= -1.0 && rho <= 1.0, "correlation must be in [-1,1]");
  const size_t n = params.size();
  RealMatrix cov(n, n);
  for (size_t i = 0; i < n; ++i) {
    const Real si = params[i].device->mismatchParam(params[i].index).sigma;
    for (size_t j = 0; j < n; ++j) {
      const Real sj = params[j].device->mismatchParam(params[j].index).sigma;
      cov(i, j) = (i == j ? 1.0 : rho) * si * sj;
    }
  }
  addGroup(std::move(params), cov);
}

bool CorrelatedMismatch::covers(const Device* device, size_t index) const {
  for (const auto& g : groups_) {
    for (const auto& p : g.params) {
      if (p.device == device && p.index == index) return true;
    }
  }
  return false;
}

void CorrelatedMismatch::applySample(Rng& rng) const {
  for (const auto& g : groups_) {
    const size_t n = g.params.size();
    RealVector xi(n);
    for (Real& x : xi) x = rng.gaussian();
    for (size_t i = 0; i < n; ++i) {
      Real delta = 0.0;
      for (size_t j = 0; j <= i; ++j) delta += g.factor(i, j) * xi[j];
      g.params[i].device->setMismatchDelta(g.params[i].index, delta);
    }
  }
}

std::vector<InjectionSource> CorrelatedMismatch::compositeSources() const {
  std::vector<InjectionSource> out;
  for (size_t gi = 0; gi < groups_.size(); ++gi) {
    const Group& g = groups_[gi];
    const size_t n = g.params.size();
    for (size_t j = 0; j < n; ++j) {
      InjectionSource s;
      s.kind = InjectionSource::Kind::kMismatch;
      s.name = "corr" + std::to_string(gi) + ".xi" + std::to_string(j);
      s.sigma = 1.0;  // xi_j is unit-variance; weights carry the units
      s.mkind = MismatchKind::kGeneric;
      for (size_t i = j; i < n; ++i) {  // factor is lower triangular
        if (g.factor(i, j) == 0.0) continue;
        s.components.push_back(
            {g.params[i].device, g.params[i].index, g.factor(i, j)});
      }
      if (!s.components.empty()) out.push_back(std::move(s));
    }
  }
  return out;
}

std::vector<InjectionSource> CorrelatedMismatch::transformSources(
    std::vector<InjectionSource> independent) const {
  std::vector<InjectionSource> out;
  for (auto& s : independent) {
    if (s.kind == InjectionSource::Kind::kMismatch &&
        s.components.size() == 1 &&
        covers(s.components[0].device, s.components[0].index)) {
      continue;  // replaced by a composite source
    }
    out.push_back(std::move(s));
  }
  for (auto& s : compositeSources()) out.push_back(std::move(s));
  return out;
}

}  // namespace psmn
