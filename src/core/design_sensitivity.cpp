#include "core/design_sensitivity.hpp"

namespace psmn {

std::vector<WidthSensitivity> widthSensitivities(const Netlist& netlist,
                                                 const VariationResult& v) {
  std::vector<WidthSensitivity> out;
  const Real total = v.variance();
  for (const auto& dev : netlist.devices()) {
    const auto* fet = dynamic_cast<const Mosfet*>(dev.get());
    if (!fet) continue;
    WidthSensitivity ws;
    ws.device = fet->name();
    ws.width = fet->width();
    ws.varianceShare = v.varianceFromPrefix(fet->name() + ".");
    ws.dVarianceDWidth = -ws.varianceShare / ws.width;  // eq. 16
    ws.relativeImpact = total > 0.0 ? ws.varianceShare / total : 0.0;
    out.push_back(std::move(ws));
  }
  return out;
}

}  // namespace psmn
