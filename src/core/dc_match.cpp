#include "core/dc_match.hpp"

#include "engine/sensitivity.hpp"

namespace psmn {

VariationResult dcMatchAnalysis(const MnaSystem& sys, int outIndex,
                                const DcOptions& dcOpt) {
  const DcResult dc = solveDc(sys, dcOpt);
  const auto sources = sys.collectSources(true, false);
  const RealVector sens =
      solveDcSensitivity(sys, dc.x, outIndex, sources);

  VariationResult r;
  r.measurement = "dcmatch(" + sys.netlist().unknownName(outIndex) + ")";
  for (size_t i = 0; i < sources.size(); ++i) {
    r.sourceNames.push_back(sources[i].name);
    r.scaledSens.push_back(sens[i] * sources[i].sigma);
  }
  r.paperVariance = r.variance();
  return r;
}

}  // namespace psmn
