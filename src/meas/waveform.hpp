// Waveform container + crossing utilities shared by all measurements.
#pragma once

#include <optional>

#include "numeric/types.hpp"

namespace psmn {

struct Waveform {
  std::vector<Real> times;
  RealVector values;

  size_t size() const { return times.size(); }
  bool empty() const { return times.empty(); }

  Real valueAt(Real t) const;  // linear interpolation

  /// All times where the waveform crosses `level` in the given direction
  /// (+1 rising, -1 falling, 0 both), linearly interpolated.
  std::vector<Real> crossings(Real level, int direction = 0) const;

  /// First crossing at/after tMin; nullopt if none.
  std::optional<Real> firstCrossing(Real level, int direction,
                                    Real tMin = -1e300) const;
};

/// Builds a waveform from parallel time/state storage (e.g. a transient or
/// PSS trajectory) for MNA unknown `index`.
Waveform makeWaveform(const std::vector<Real>& times,
                      const std::vector<RealVector>& states, int index);

}  // namespace psmn
