// Performance measurements on waveforms: delay, period/frequency, settled
// value. These are what the Monte-Carlo baseline measures per sample; the
// pseudo-noise analysis predicts their variations without sampling.
#pragma once

#include "meas/waveform.hpp"

namespace psmn {

/// Delay from the `fromDir` crossing of `stimulus` through `level` to the
/// `toDir` crossing of `response` through `level` (paper Fig. 7: rising
/// input edge to falling output edge). Throws if either edge is missing.
Real measureDelay(const Waveform& stimulus, const Waveform& response,
                  Real level, int fromDir, int toDir);

/// Average period from the rising crossings through `level`, using the
/// last `cycles` full periods. Throws when not enough crossings exist.
Real measurePeriod(const Waveform& w, Real level, int cycles = 4);

Real measureFrequency(const Waveform& w, Real level, int cycles = 4);

/// Mean of the waveform over its final `window` span (settled DC value).
Real measureSettledValue(const Waveform& w, Real window);

/// True when the waveform stays within +-tol of its final value over the
/// trailing `window`.
bool isSettled(const Waveform& w, Real window, Real tol);

}  // namespace psmn
