#include "meas/waveform.hpp"

#include "numeric/interp.hpp"
#include "util/status.hpp"

namespace psmn {

Real Waveform::valueAt(Real t) const {
  return interpLinear(times, values, t);
}

std::vector<Real> Waveform::crossings(Real level, int direction) const {
  std::vector<Real> out;
  for (size_t k = 1; k < times.size(); ++k) {
    const Real y0 = values[k - 1];
    const Real y1 = values[k];
    const bool rising = y0 < level && y1 >= level;
    const bool falling = y0 > level && y1 <= level;
    if ((direction >= 0 && rising) || (direction <= 0 && falling)) {
      out.push_back(crossingPoint(times[k - 1], y0, times[k], y1, level));
    }
  }
  return out;
}

std::optional<Real> Waveform::firstCrossing(Real level, int direction,
                                            Real tMin) const {
  for (size_t k = 1; k < times.size(); ++k) {
    const Real y0 = values[k - 1];
    const Real y1 = values[k];
    const bool rising = y0 < level && y1 >= level;
    const bool falling = y0 > level && y1 <= level;
    if ((direction >= 0 && rising) || (direction <= 0 && falling)) {
      const Real tc = crossingPoint(times[k - 1], y0, times[k], y1, level);
      if (tc >= tMin) return tc;
    }
  }
  return std::nullopt;
}

Waveform makeWaveform(const std::vector<Real>& times,
                      const std::vector<RealVector>& states, int index) {
  PSMN_CHECK(index >= 0, "waveform of ground requested");
  PSMN_CHECK(times.size() == states.size(), "times/states length mismatch");
  Waveform w;
  w.times = times;
  w.values.resize(states.size());
  for (size_t k = 0; k < states.size(); ++k) {
    w.values[k] = states[k][static_cast<size_t>(index)];
  }
  return w;
}

}  // namespace psmn
