#include "meas/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/status.hpp"
#include "util/units.hpp"

namespace psmn {

Histogram Histogram::fromSamples(std::span<const Real> samples, size_t bins,
                                 Real lo, Real hi) {
  PSMN_CHECK(!samples.empty() && bins >= 2, "bad histogram request");
  Histogram h;
  if (lo == 0.0 && hi == 0.0) {
    lo = *std::min_element(samples.begin(), samples.end());
    hi = *std::max_element(samples.begin(), samples.end());
    const Real pad = 1e-9 * (std::fabs(lo) + std::fabs(hi) + 1e-30);
    lo -= pad;
    hi += pad;
  }
  PSMN_CHECK(hi > lo, "degenerate histogram range");
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  for (Real x : samples) {
    if (x < lo || x > hi) continue;
    auto idx = static_cast<size_t>((x - lo) / (hi - lo) * bins);
    if (idx >= bins) idx = bins - 1;
    ++h.counts[idx];
    ++h.total;
  }
  return h;
}

Real Histogram::binWidth() const {
  return (hi - lo) / static_cast<Real>(counts.size());
}

Real Histogram::binCenter(size_t i) const {
  return lo + (static_cast<Real>(i) + 0.5) * binWidth();
}

Real Histogram::density(size_t i) const {
  if (total == 0) return 0.0;
  return static_cast<Real>(counts[i]) /
         (static_cast<Real>(total) * binWidth());
}

std::string Histogram::render(int width,
                              const std::function<Real(Real)>& pdf) const {
  Real maxDensity = 1e-300;
  for (size_t i = 0; i < counts.size(); ++i) {
    maxDensity = std::max(maxDensity, density(i));
    if (pdf) maxDensity = std::max(maxDensity, pdf(binCenter(i)));
  }
  std::ostringstream os;
  for (size_t i = 0; i < counts.size(); ++i) {
    const Real center = binCenter(i);
    const int bar =
        static_cast<int>(std::lround(density(i) / maxDensity * width));
    os << (center < 0 ? "" : " ") << formatEng(center, 3) << "\t|";
    for (int c = 0; c < bar; ++c) os << '#';
    if (pdf) {
      const int mark =
          static_cast<int>(std::lround(pdf(center) / maxDensity * width));
      if (mark > bar) {
        for (int c = bar; c < mark - 1; ++c) os << ' ';
        os << '*';
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace psmn
