// Histogram builder with a terminal renderer, used by the Fig. 9 / Fig. 12
// benches to show the Monte-Carlo histogram against the pseudo-noise
// Gaussian (or mixture) PDF.
#pragma once

#include <functional>
#include <span>
#include <string>

#include "numeric/types.hpp"

namespace psmn {

struct Histogram {
  Real lo = 0.0;
  Real hi = 0.0;
  std::vector<size_t> counts;
  size_t total = 0;

  static Histogram fromSamples(std::span<const Real> samples, size_t bins,
                               Real lo = 0.0, Real hi = 0.0);

  Real binWidth() const;
  Real binCenter(size_t i) const;
  /// Normalized density of bin i (integrates to ~1).
  Real density(size_t i) const;

  /// ASCII rendering; `pdf` (optional) is overlaid as '*' markers, e.g. the
  /// analytic Gaussian from the pseudo-noise sigma.
  std::string render(int width = 60,
                     const std::function<Real(Real)>& pdf = {}) const;
};

}  // namespace psmn
