#include "meas/measure.hpp"

#include <cmath>

#include "util/status.hpp"

namespace psmn {

Real measureDelay(const Waveform& stimulus, const Waveform& response,
                  Real level, int fromDir, int toDir) {
  const auto t0 = stimulus.firstCrossing(level, fromDir);
  PSMN_CHECK(t0.has_value(), "measureDelay: stimulus edge not found");
  const auto t1 = response.firstCrossing(level, toDir, *t0);
  PSMN_CHECK(t1.has_value(), "measureDelay: response edge not found");
  return *t1 - *t0;
}

Real measurePeriod(const Waveform& w, Real level, int cycles) {
  PSMN_CHECK(cycles >= 1, "need at least one cycle");
  const auto rises = w.crossings(level, +1);
  PSMN_CHECK(rises.size() >= static_cast<size_t>(cycles) + 1,
             "measurePeriod: not enough crossings");
  const size_t last = rises.size() - 1;
  return (rises[last] - rises[last - cycles]) / static_cast<Real>(cycles);
}

Real measureFrequency(const Waveform& w, Real level, int cycles) {
  return 1.0 / measurePeriod(w, level, cycles);
}

Real measureSettledValue(const Waveform& w, Real window) {
  PSMN_CHECK(!w.empty(), "empty waveform");
  const Real tEnd = w.times.back();
  const Real tStart = tEnd - window;
  Real acc = 0.0;
  size_t count = 0;
  for (size_t k = 0; k < w.size(); ++k) {
    if (w.times[k] >= tStart) {
      acc += w.values[k];
      ++count;
    }
  }
  PSMN_CHECK(count > 0, "settling window contains no samples");
  return acc / static_cast<Real>(count);
}

bool isSettled(const Waveform& w, Real window, Real tol) {
  if (w.empty()) return false;
  const Real tEnd = w.times.back();
  const Real tStart = tEnd - window;
  const Real ref = w.values.back();
  for (size_t k = 0; k < w.size(); ++k) {
    if (w.times[k] >= tStart && std::fabs(w.values[k] - ref) > tol) {
      return false;
    }
  }
  return true;
}

}  // namespace psmn
