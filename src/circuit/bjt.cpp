#include "circuit/bjt.hpp"

#include <cmath>

#include "circuit/device_batch.hpp"

namespace psmn {

namespace {

/// Junction exponential with the same linearization the Diode uses: above
/// vmax = 40*vt the exponential continues with constant slope, so Newton
/// iterates stay finite without changing any realistic converged solution.
/// Returns the (limited) value of exp(v/vt) and its derivative.
void limexp(Real v, Real vt, Real& e, Real& de) {
  const Real vmax = 40.0 * vt;
  if (v <= vmax) {
    e = std::exp(v / vt);
    de = e / vt;
  } else {
    const Real e0 = std::exp(40.0);
    de = e0 / vt;
    e = e0 + de * (v - vmax);
  }
}

/// SPICE depletion charge: q(v) and c(v) = dq/dv for a junction with
/// zero-bias capacitance cj0, built-in potential vj, grading coefficient m.
/// Below fc*vj the classic power law; above it, the standard linear-in-v
/// capacitance extension (C1-continuous in q and c).
void depletion(Real v, Real cj0, Real vj, Real m, Real fc, Real& q, Real& c) {
  if (cj0 <= 0.0) {
    q = 0.0;
    c = 0.0;
    return;
  }
  const Real vfc = fc * vj;
  if (v < vfc) {
    const Real u = 1.0 - v / vj;
    const Real um = std::pow(u, -m);
    c = cj0 * um;
    q = cj0 * vj / (1.0 - m) * (1.0 - u * um);  // u*um = u^(1-m)
  } else {
    const Real f1 = vj / (1.0 - m) * (1.0 - std::pow(1.0 - fc, 1.0 - m));
    const Real f2 = std::pow(1.0 - fc, 1.0 + m);
    const Real f3 = 1.0 - fc * (1.0 + m);
    c = cj0 / f2 * (f3 + m * v / vj);
    q = cj0 * (f1 + (f3 * (v - vfc) +
                     0.5 * m / vj * (v * v - vfc * vfc)) / f2);
  }
}

}  // namespace

Bjt::Bjt(std::string name, NodeId c, NodeId b, NodeId e,
         std::shared_ptr<const BjtModel> model, Real area, Netlist& nl)
    : Device(std::move(name)),
      c_(nl.nodeIndex(c)),
      b_(nl.nodeIndex(b)),
      e_(nl.nodeIndex(e)),
      model_(std::move(model)),
      area_(area) {
  PSMN_CHECK(model_ != nullptr, "bjt requires a model");
  PSMN_CHECK(area_ > 0.0, "bjt area must be positive");
  PSMN_CHECK(model_->is > 0.0, "bjt IS must be positive");
  PSMN_CHECK(model_->bf > 0.0 && model_->br > 0.0,
             "bjt BF and BR must be positive");
  PSMN_CHECK(model_->vaf >= 0.0, "bjt VAF must be non-negative");
  PSMN_CHECK(model_->fc > 0.0 && model_->fc < 1.0, "bjt FC must be in (0,1)");
  // Series resistances get real internal nodes so the junctions see gmin
  // and gshunt treatment, the unknowns have "v(Q1:b)" names, and the
  // parasitics stamp as ordinary linear conductances.
  ci_ = model_->rc > 0.0 ? nl.nodeIndex(nl.node(this->name() + ":c")) : c_;
  bi_ = model_->rb > 0.0 ? nl.nodeIndex(nl.node(this->name() + ":b")) : b_;
  ei_ = model_->re > 0.0 ? nl.nodeIndex(nl.node(this->name() + ":e")) : e_;
}

Real Bjt::sigmaIs() const { return model_->ais / std::sqrt(area_); }
Real Bjt::sigmaBf() const { return model_->abf / std::sqrt(area_); }

Bjt::Core Bjt::evalCore(Real vbe, Real vbc, Real dis, Real dbf) const {
  const BjtModel& m = *model_;
  const Real vt = m.thermalVoltage();
  const Real a = area_ * (1.0 + dis);
  const Real isa = m.is * a;

  Real ebe, debe, ebc, debc;
  limexp(vbe, m.nf * vt, ebe, debe);
  limexp(vbc, m.nr * vt, ebc, debc);
  const Real ifwd = isa * (ebe - 1.0);
  const Real gif = isa * debe;
  const Real irev = isa * (ebc - 1.0);
  const Real gir = isa * debc;

  // Early factor 1 - vbc/VAF, smoothly clamped at a small positive floor:
  // a wild Newton iterate with vbc >> VAF must not reverse the transport
  // current's sign (that manufactures spurious solutions).
  Real early = 1.0, dEarly = 0.0;
  if (m.vaf > 0.0) {
    const Real emin = 0.05;
    const Real eps = 1e-3;
    const Real y = 1.0 - vbc / m.vaf - emin;
    const Real r = std::sqrt(y * y + 4.0 * eps * eps);
    early = emin + 0.5 * (y + r);
    dEarly = -0.5 * (1.0 + y / r) / m.vaf;
  }

  const Real bfEff = m.bf * (1.0 + dbf);

  Core c{};
  c.ifwd = ifwd;
  c.ict = (ifwd - irev) * early;
  c.gctBe = gif * early;
  c.gctBc = -gir * early + (ifwd - irev) * dEarly;
  c.ibe = ifwd / bfEff;
  c.gpi = gif / bfEff;
  c.ibc = irev / m.br;
  c.gmu = gir / m.br;

  // Charges: diffusion (TF * I_F, B-E only) carries the IS mismatch scale;
  // depletion scales with the raw area factor.
  Real qd, cd;
  depletion(vbe, m.cje * area_, m.vje, m.mje, m.fc, qd, cd);
  c.qbe = m.tf * ifwd + qd;
  c.cbe = m.tf * gif + cd;
  depletion(vbc, m.cjc * area_, m.vjc, m.mjc, m.fc, qd, cd);
  c.qbc = qd;
  c.cbc = cd;
  return c;
}

void Bjt::evalWith(Stamper& s, Real dis, Real dbf) const {
  const Real sgn = model_->pnp ? -1.0 : 1.0;
  const Real vbe = sgn * (s.v(bi_) - s.v(ei_));
  const Real vbc = sgn * (s.v(bi_) - s.v(ci_));
  const Core c = evalCore(vbe, vbc, dis, dbf);

  // Internal-frame node currents; physical current = sgn * internal.
  // Conductance entries are invariant under the sign flip (the sgn on the
  // current cancels the sgn in d v_hat/d v).
  s.addF(ci_, sgn * (c.ict - c.ibc));
  s.addF(bi_, sgn * (c.ibe + c.ibc));
  s.addF(ei_, -sgn * (c.ict + c.ibe));

  // Jacobian of the three node currents w.r.t. (vb, vc, ve); every row and
  // column sums to zero (KCL / ground invariance).
  s.addG(ci_, bi_, c.gctBe + c.gctBc - c.gmu);
  s.addG(ci_, ci_, -c.gctBc + c.gmu);
  s.addG(ci_, ei_, -c.gctBe);
  s.addG(bi_, bi_, c.gpi + c.gmu);
  s.addG(bi_, ci_, -c.gmu);
  s.addG(bi_, ei_, -c.gpi);
  s.addG(ei_, bi_, -(c.gctBe + c.gctBc + c.gpi));
  s.addG(ei_, ci_, c.gctBc);
  s.addG(ei_, ei_, c.gctBe + c.gpi);

  // Convergence aid across both junctions (diode idiom).
  s.stampCurrent(bi_, ei_, s.gmin() * (s.v(bi_) - s.v(ei_)));
  s.stampConductance(bi_, ei_, s.gmin());
  s.stampCurrent(bi_, ci_, s.gmin() * (s.v(bi_) - s.v(ci_)));
  s.stampConductance(bi_, ci_, s.gmin());

  // Junction charges, + plate at the base in the internal frame.
  s.stampCharge(bi_, ei_, sgn * c.qbe);
  s.stampCapacitance(bi_, ei_, c.cbe);
  s.stampCharge(bi_, ci_, sgn * c.qbc);
  s.stampCapacitance(bi_, ci_, c.cbc);

  // Series parasitics: plain conductances, resistance scaled as R/area.
  const BjtModel& m = *model_;
  auto series = [&s, this](int ext, int internal, Real r) {
    if (internal == ext) return;
    const Real g = area_ / r;
    s.stampCurrent(ext, internal, g * (s.v(ext) - s.v(internal)));
    s.stampConductance(ext, internal, g);
  };
  series(c_, ci_, m.rc);
  series(b_, bi_, m.rb);
  series(e_, ei_, m.re);
}

void Bjt::eval(Stamper& s) const { evalWith(s, dis_, dbf_); }

void Bjt::evalBatch(DeviceBatchView& v) const {
  for (size_t l = 0; l < v.laneCount(); ++l) {
    if (v.laneActive(l)) evalWith(v.lane(l), v.delta(0, l), v.delta(1, l));
  }
}

BjtOpPoint Bjt::opPoint(const Stamper& s) const {
  const Real sgn = model_->pnp ? -1.0 : 1.0;
  const Real vbe = sgn * (s.v(bi_) - s.v(ei_));
  const Real vbc = sgn * (s.v(bi_) - s.v(ci_));
  const Core c = evalCore(vbe, vbc);
  BjtOpPoint op;
  op.ic = sgn * (c.ict - c.ibc);
  op.ib = sgn * (c.ibe + c.ibc);
  op.gm = c.gctBe;
  op.gpi = c.gpi;
  // dIc/dvce at fixed vbe: vbc = vbe - vce, so go = -dIc/dvbc.
  op.go = c.gmu - c.gctBc;
  const Real von = 10.0 * model_->thermalVoltage();
  op.forwardActive = vbe > von && vbc < von;
  op.saturated = vbe > von && vbc > von;
  return op;
}

MismatchParam Bjt::mismatchParam(size_t k) const {
  PSMN_CHECK(k < 2, "bad mismatch index");
  // Both are relative factors; kBetaRel gets the -95% truncation in the MC
  // engine that any (1 + delta) multiplier needs to stay physical.
  if (k == 0) return {name() + ".dis", MismatchKind::kBetaRel, sigmaIs(), true};
  return {name() + ".dbf", MismatchKind::kBetaRel, sigmaBf(), true};
}

void Bjt::setMismatchDelta(size_t k, Real delta) {
  PSMN_CHECK(k < 2, "bad mismatch index");
  PSMN_CHECK(1.0 + delta > 0.0, "mismatch drove bjt parameter non-positive");
  if (k == 0) {
    dis_ = delta;
  } else {
    dbf_ = delta;
  }
}

Real Bjt::mismatchDelta(size_t k) const {
  PSMN_CHECK(k < 2, "bad mismatch index");
  return k == 0 ? dis_ : dbf_;
}

void Bjt::mismatchStampF(size_t k, Stamper& s) const {
  PSMN_CHECK(k < 2, "bad mismatch index");
  const Real sgn = model_->pnp ? -1.0 : 1.0;
  const Real vbe = sgn * (s.v(bi_) - s.v(ei_));
  const Real vbc = sgn * (s.v(bi_) - s.v(ci_));
  const Core c = evalCore(vbe, vbc);
  if (k == 0) {
    // dIS/IS scales every junction current: dI/d(dis) = I/(1+dis).
    const Real w = 1.0 / (1.0 + dis_);
    s.addF(ci_, sgn * w * (c.ict - c.ibc));
    s.addF(bi_, sgn * w * (c.ibe + c.ibc));
    s.addF(ei_, -sgn * w * (c.ict + c.ibe));
  } else {
    // dBF/BF only rescales the forward base current:
    // Ibe = I_F/(BF*(1+dbf)) so dIbe/d(dbf) = -Ibe/(1+dbf).
    const Real d = -c.ibe / (1.0 + dbf_);
    s.addF(bi_, sgn * d);
    s.addF(ei_, -sgn * d);
  }
}

void Bjt::mismatchStampQ(size_t k, Stamper& s) const {
  PSMN_CHECK(k < 2, "bad mismatch index");
  if (k != 0 || model_->tf <= 0.0) return;
  // The diffusion charge TF*I_F carries the IS scale, so dIS/IS has a
  // charge derivative too: dQbe/d(dis) = TF*I_F/(1+dis).
  const Real sgn = model_->pnp ? -1.0 : 1.0;
  const Real vbe = sgn * (s.v(bi_) - s.v(ei_));
  const Real vbc = sgn * (s.v(bi_) - s.v(ci_));
  const Core c = evalCore(vbe, vbc);
  const Real dq = model_->tf * c.ifwd / (1.0 + dis_);
  s.addQ(bi_, sgn * dq);
  s.addQ(ei_, -sgn * dq);
}

}  // namespace psmn
