#include "circuit/controlled.hpp"

#include "circuit/device_batch.hpp"

namespace psmn {

// Controlled sources carry no mismatch parameters, so the batched visit is
// the scalar body once per active lane.
namespace {
template <typename D>
void evalAllLanes(const D& dev, DeviceBatchView& v) {
  for (size_t l = 0; l < v.laneCount(); ++l) {
    if (v.laneActive(l)) dev.eval(v.lane(l));
  }
}
}  // namespace

void Vcvs::evalBatch(DeviceBatchView& v) const { evalAllLanes(*this, v); }
void Vccs::evalBatch(DeviceBatchView& v) const { evalAllLanes(*this, v); }
void Ccvs::evalBatch(DeviceBatchView& v) const { evalAllLanes(*this, v); }
void Cccs::evalBatch(DeviceBatchView& v) const { evalAllLanes(*this, v); }

void Vcvs::eval(Stamper& s) const {
  const Real i = s.v(branch_);
  s.addF(a_, i);
  s.addF(b_, -i);
  s.addG(a_, branch_, 1.0);
  s.addG(b_, branch_, -1.0);

  Real rhs = s.v(a_) - s.v(b_) - offset_;
  s.addG(branch_, a_, 1.0);
  s.addG(branch_, b_, -1.0);
  for (const auto& t : terms_) {
    rhs -= t.gain * (s.v(t.p) - s.v(t.n));
    s.addG(branch_, t.p, -t.gain);
    s.addG(branch_, t.n, t.gain);
  }
  s.addF(branch_, rhs);
}

void Vccs::eval(Stamper& s) const {
  Real i = 0.0;
  for (const auto& t : terms_) {
    i += t.gain * (s.v(t.p) - s.v(t.n));
    s.addG(a_, t.p, t.gain);
    s.addG(a_, t.n, -t.gain);
    s.addG(b_, t.p, -t.gain);
    s.addG(b_, t.n, t.gain);
  }
  s.addF(a_, i);
  s.addF(b_, -i);
}

void Ccvs::eval(Stamper& s) const {
  const Real i = s.v(branch_);
  s.addF(a_, i);
  s.addF(b_, -i);
  s.addG(a_, branch_, 1.0);
  s.addG(b_, branch_, -1.0);

  s.addF(branch_, s.v(a_) - s.v(b_) - r_ * s.v(ctrl_));
  s.addG(branch_, a_, 1.0);
  s.addG(branch_, b_, -1.0);
  s.addG(branch_, ctrl_, -r_);
}

void Cccs::eval(Stamper& s) const {
  const Real i = gain_ * s.v(ctrl_);
  s.addF(a_, i);
  s.addF(b_, -i);
  s.addG(a_, ctrl_, gain_);
  s.addG(b_, ctrl_, -gain_);
}

}  // namespace psmn
