#include "circuit/device_batch.hpp"

#include "util/telemetry.hpp"

namespace psmn {

// Generic lane loop: replay lane deltas through the scalar eval(). This IS
// the scalar path per lane, so bit-identity is by construction; devices on
// hot paths override with a loop that reads lane deltas directly.
void Device::evalBatch(DeviceBatchView& v) const {
  Device& self = v.device();
  const size_t nk = mismatchCount();
  for (size_t l = 0; l < v.laneCount(); ++l) {
    if (!v.laneActive(l)) continue;
    for (size_t k = 0; k < nk; ++k) self.setMismatchDelta(k, v.delta(k, l));
    eval(v.lane(l));
  }
}

DeviceBatch::DeviceBatch(Netlist& nl, size_t lanes) : nl_(&nl), lanes_(lanes) {
  PSMN_CHECK(nl.finalized(), "DeviceBatch requires a finalized netlist");
  PSMN_CHECK(lanes > 0, "DeviceBatch needs at least one lane");
  const auto& devs = nl.devices();
  offsets_.resize(devs.size());
  counts_.resize(devs.size());
  size_t total = 0;
  for (size_t d = 0; d < devs.size(); ++d) {
    offsets_[d] = total;
    counts_[d] = devs[d]->mismatchCount();
    total += counts_[d] * lanes_;
  }
  deltas_.assign(total, 0.0);
}

void DeviceBatch::captureLane(size_t l) {
  PSMN_CHECK(l < lanes_, "lane out of range");
  const auto& devs = nl_->devices();
  for (size_t d = 0; d < devs.size(); ++d) {
    for (size_t k = 0; k < counts_[d]; ++k) {
      deltas_[offsets_[d] + k * lanes_ + l] = devs[d]->mismatchDelta(k);
    }
  }
}

void DeviceBatch::applyLane(size_t l) const {
  PSMN_CHECK(l < lanes_, "lane out of range");
  const auto& devs = nl_->devices();
  for (size_t d = 0; d < devs.size(); ++d) {
    for (size_t k = 0; k < counts_[d]; ++k) {
      devs[d]->setMismatchDelta(k, deltas_[offsets_[d] + k * lanes_ + l]);
    }
  }
}

void DeviceBatch::evalLanes(std::vector<Stamper>& stampers,
                            const std::vector<unsigned char>& active) const {
  PSMN_CHECK(stampers.size() == lanes_ && active.size() == lanes_,
             "evalLanes: one stamper and active flag per lane");
  DeviceBatchView v;
  v.stampers_ = &stampers;
  v.active_ = active.data();
  v.lanes_ = lanes_;
  const auto& devs = nl_->devices();
  for (size_t d = 0; d < devs.size(); ++d) {
    v.deltas_ = deltas_.data() + offsets_[d];
    v.current_ = devs[d].get();
    devs[d]->evalBatch(v);
  }
  telemetryCount(Counter::kBatchEvals);
}

}  // namespace psmn
