// Bipolar benchmark circuit: a two-stage, 20-transistor class-AB op-amp
// in the spirit of the classic general-purpose parts (741/NE5534 family),
// built from Bjt devices on a +/-5 V bipolar kit. It is the analog
// counterpart of the MOS decks in stdcell.hpp: every junction-device code
// path — Ebers-Moll stamps, Early effect, depletion/diffusion charges,
// IS/BF mismatch injection — is exercised through a realistic DC bias
// chain, a compensated two-stage loop, and a feedback testbench whose
// output sigma the sensitivity flow must reproduce against Monte Carlo.
//
// Topology (all currents ~1 mA from one bias resistor):
//
//   QB1(pnp diode) - RB - QB2(npn diode)     bias chain, pb / nb rails
//   QS1, QS2 (pnp)                           1 mA sources for the input EFs
//   QE1, QE2 (pnp emitter followers)         level-shift the inputs up
//   QD1, QD2 (npn diff pair) + RE1/RE2       input stage, QT tail sink
//   QM1, QM2 (pnp mirror) + RM1/RM2 + QMH    degenerated load, beta helper
//   QG (pnp CE) + REG, QL (npn sink)         second stage, CC Miller cap
//   QA1, QA2 (npn diodes)                    class-AB bias string
//   QO1 (npn EF), QO2 (pnp EF) + RS1/RS2     complementary output
//   QP1 (npn), QP2 (pnp)                     short-circuit protection (off)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "circuit/bjt.hpp"
#include "circuit/netlist.hpp"

namespace psmn {

/// Bipolar process kit: npn/pnp models + supplies. `mismatchScale`
/// multiplies the Pelgrom-style area coefficients AIS/ABF (and is applied
/// to the resistor sigmas by the builder).
struct BjtKit {
  std::shared_ptr<const BjtModel> npn;
  std::shared_ptr<const BjtModel> pnp;
  Real vcc = 5.0;
  Real vee = -5.0;
  Real mismatchScale = 1.0;

  static BjtKit bipolar5(Real mismatchScale = 1.0);
};

struct BjtOpAmpOptions {
  Real rBias = 8.2e3;     // sets the ~1 mA master current
  Real rDegen = 100.0;    // RE1/RE2 and RM1/RM2 degeneration
  Real rDegenSigma = 0.5; // absolute mismatch sigma of the 100 ohm resistors
  Real rGain = 100.0;     // REG, second-stage local feedback
  Real rShort = 27.0;     // RS1/RS2 output current-sense resistors
  Real cComp = 200e-12;   // CC Miller capacitor (fu ~ Gm1 / 2*pi*CC)
  /// Series zero-nulling resistor for CC, ~1/gm of the second stage: the
  /// raw Miller feedforward zero (gm2/CC, right half plane) would land on
  /// top of fu and turn the follower into a 12 MHz oscillator.
  Real rZero = 150.0;
};

struct BjtOpAmpCircuit {
  NodeId vccNode, veeNode, inp, inn, out;
  NodeId l1, l2, abt, abb, tail;
  std::vector<Bjt*> bjts;  // all 20, in schematic order
  Bjt* bjt(const std::string& name) const;
};

/// Builds the op-amp between the caller's `inp`, `inn` and `out` nodes
/// (pass the same NodeId for `inn` and `out` to close a unity-gain loop)
/// and adds its +/-5 V supply sources.
BjtOpAmpCircuit buildBjtOpAmp(Netlist& nl, const BjtKit& kit, NodeId inp,
                              NodeId inn, NodeId out,
                              const BjtOpAmpOptions& opt = {});

/// Unity-gain follower testbench: input step source + output load. The
/// output tracks the step, so the settled output sigma is the amplifier's
/// input-referred offset sigma — the quantity the transient-sensitivity
/// flow is validated against Monte Carlo on.
struct BjtFollowerTestbench {
  BjtOpAmpCircuit amp;
  NodeId in;   // driven input
  NodeId out;  // load node == inverting input
};

struct BjtFollowerOptions {
  BjtOpAmpOptions amp;
  Real vStep = 0.2;       // input step amplitude
  Real tStep = 100e-9;    // step start
  Real tEdge = 20e-9;     // step rise time
  Real rLoad = 10e3;
  Real cLoad = 100e-12;
};

BjtFollowerTestbench buildBjtFollower(Netlist& nl, const BjtKit& kit,
                                      const BjtFollowerOptions& opt = {});

}  // namespace psmn
