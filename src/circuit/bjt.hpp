// Ebers-Moll bipolar junction transistor (NPN/PNP) with Early effect,
// diffusion + depletion charge storage, optional base/collector/emitter
// series resistance, and area mismatch parameters.
//
// Model notes
// -----------
// * Injection-form Ebers-Moll: with the junction diode currents
//     I_F = IS*a*(exp(vbe/(NF*vt)) - 1),  I_R = IS*a*(exp(vbc/(NR*vt)) - 1)
//   (a = area * (1 + dis) carrying the instance area factor and the IS
//   mismatch delta), the terminal currents are
//     transport  C->E:  Ict = (I_F - I_R) * early(vbc)
//     base->emitter:    Ibe = I_F / (BF*(1+dbf))
//     base->collector:  Ibc = I_R / BR.
// * Newton robustness comes from C1 smoothing, not per-device iteration
//   memory: the junction exponentials are linearized above 40*N*vt (the
//   same limiting the Diode uses), and the Early factor 1 - vbc/VAF is
//   smoothly clamped at a small positive floor so a wild iterate cannot
//   reverse the transport current's sign.
// * Charge storage per junction: diffusion charge TF*I_F (B-E only; TR is
//   omitted) plus the standard SPICE depletion charge with grading
//   coefficient m and built-in potential vj, linearized above fc*vj so
//   c(v) stays finite and C1 through forward bias.
// * RB/RC/RE > 0 allocate internal nodes (real netlist nodes named
//   "<name>:b" etc.) during construction; the junctions then stamp at the
//   internal nodes and the parasitics as linear conductances to the
//   terminals.
// * PNP devices are evaluated in a sign-flipped frame like the Mosfet:
//   internal voltages are negated, currents/charges stamped with the sign
//   factor, and conductance/capacitance entries are invariant.
//
// Mismatch (area scaling analogous to Pelgrom's 1/sqrt(area)):
//   sigma(dIS/IS) = AIS / sqrt(area),  sigma(dBF/BF) = ABF / sqrt(area).
// dF/d(dis) scales every junction current (and the diffusion charge, so
// the parameter has a dQ/dp part); dF/d(dbf) scales only the forward base
// current.
#pragma once

#include <memory>

#include "circuit/device.hpp"
#include "circuit/netlist.hpp"

namespace psmn {

struct BjtModel {
  bool pnp = false;
  Real is = 1e-15;   // transport saturation current (A)
  Real bf = 100.0;   // forward beta
  Real br = 1.0;     // reverse beta
  Real nf = 1.0;     // forward emission coefficient
  Real nr = 1.0;     // reverse emission coefficient
  Real vaf = 0.0;    // forward Early voltage (V); 0 = infinite
  Real cje = 0.0;    // zero-bias B-E depletion capacitance (F)
  Real cjc = 0.0;    // zero-bias B-C depletion capacitance (F)
  Real vje = 0.75;   // B-E built-in potential (V)
  Real vjc = 0.75;   // B-C built-in potential (V)
  Real mje = 0.33;   // B-E grading coefficient
  Real mjc = 0.33;   // B-C grading coefficient
  Real fc = 0.5;     // depletion-cap forward-bias linearization point
  Real tf = 0.0;     // forward transit time (s): diffusion charge TF*I_F
  Real rb = 0.0;     // base series resistance (ohm)
  Real rc = 0.0;     // collector series resistance (ohm)
  Real re = 0.0;     // emitter series resistance (ohm)
  Real temperature = kRoomTempK;

  // Area-mismatch constants: relative sigma of IS and BF at area = 1.
  Real ais = 0.02;   // sigma(dIS/IS) * sqrt(area)
  Real abf = 0.01;   // sigma(dBF/BF) * sqrt(area)

  Real thermalVoltage() const {
    return kBoltzmann * temperature / kElemCharge;
  }

  /// Mismatch-severity helper (mirrors MosModel::scaledMismatch).
  BjtModel scaledMismatch(Real scale) const {
    BjtModel m = *this;
    m.ais *= scale;
    m.abf *= scale;
    return m;
  }
};

/// Operating-point information for measurements and reporting.
struct BjtOpPoint {
  Real ic = 0.0;   // current into the physical collector terminal
  Real ib = 0.0;   // current into the physical base terminal
  Real gm = 0.0;   // d|Ic|/dvbe at fixed vbc (internal frame)
  Real gpi = 0.0;  // dIb/dvbe
  Real go = 0.0;   // output conductance dIc/dvce (Early term)
  bool forwardActive = false;  // B-E on, B-C off
  bool saturated = false;      // both junctions forward biased
};

class Bjt : public Device {
 public:
  /// Terminal order follows the SPICE Q card: collector, base, emitter.
  /// `area` is the instance area factor (scales IS and the charges, and
  /// shrinks the mismatch sigmas by 1/sqrt(area)). The netlist reference
  /// is non-const because RB/RC/RE > 0 create internal nodes.
  Bjt(std::string name, NodeId c, NodeId b, NodeId e,
      std::shared_ptr<const BjtModel> model, Real area, Netlist& nl);

  void eval(Stamper& s) const override;
  void evalBatch(DeviceBatchView& v) const override;

  // --- mismatch: k=0 is dIS/IS (relative), k=1 is dBF/BF (relative) ---
  size_t mismatchCount() const override { return 2; }
  MismatchParam mismatchParam(size_t k) const override;
  void setMismatchDelta(size_t k, Real delta) override;
  Real mismatchDelta(size_t k) const override;
  void mismatchStampF(size_t k, Stamper& s) const override;
  void mismatchStampQ(size_t k, Stamper& s) const override;

  /// Operating point at the given stamper iterate.
  BjtOpPoint opPoint(const Stamper& s) const;

  const BjtModel& model() const { return *model_; }
  Real area() const { return area_; }
  Real sigmaIs() const;
  Real sigmaBf() const;

 private:
  struct Core {
    Real ict, ibe, ibc;        // internal-frame currents (C->E, B->E, B->C)
    Real gctBe, gctBc;         // dIct/dvbe, dIct/dvbc
    Real gpi, gmu;             // dIbe/dvbe, dIbc/dvbc
    Real qbe, qbc;             // junction charges (diffusion + depletion)
    Real cbe, cbc;             // dq/dv of each junction
    Real ifwd;                 // forward injection current (for dF/dp)
  };
  // Mismatch deltas are explicit arguments so the scalar and batched
  // paths share one compiled body (see device_batch.hpp); the no-delta
  // overload forwards the members.
  Core evalCore(Real vbe, Real vbc, Real dis, Real dbf) const;
  Core evalCore(Real vbe, Real vbc) const {
    return evalCore(vbe, vbc, dis_, dbf_);
  }
  void evalWith(Stamper& s, Real dis, Real dbf) const;
  /// Current-scale factor a = area * (1 + dis).
  Real isScale() const { return area_ * (1.0 + dis_); }

  int c_, b_, e_;     // external terminal MNA indices
  int ci_, bi_, ei_;  // internal junction nodes (== external when R == 0)
  std::shared_ptr<const BjtModel> model_;
  Real area_;
  Real dis_ = 0.0;
  Real dbf_ = 0.0;
};

}  // namespace psmn
