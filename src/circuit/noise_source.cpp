#include "circuit/noise_source.hpp"

// BehavioralMismatch is header-only; this TU anchors its vtable.

namespace psmn {}  // namespace psmn
