// Behavioral pseudo-noise element — the C++ equivalent of the paper's
// Verilog-A pseudo-noise modules (Fig. 4b).
//
// Injects nothing into the nominal circuit when its delta is zero, but
// exposes one mismatch parameter whose injection is a current from node a
// to node b with a user-defined bias-dependent modulation m(x):
//   i = delta * m(x),  dF/d(delta) = m(x).
// This is exactly how the paper models bias-dependent mismatch equations
// (SS III-B, "easily translated into Verilog-A description with
// pseudo-noise sources"): any mismatch model expressible as a
// bias-dependent current can be attached without touching device code.
#pragma once

#include <functional>

#include "circuit/device.hpp"
#include "circuit/netlist.hpp"

namespace psmn {

class BehavioralMismatch : public Device {
 public:
  /// `modulation` receives the stamper (for terminal voltages via v()) and
  /// returns the current per unit delta, flowing a -> b.
  using Modulation = std::function<Real(const Stamper&)>;

  BehavioralMismatch(std::string name, NodeId a, NodeId b, Real sigma,
                     Modulation modulation, const Netlist& nl)
      : Device(std::move(name)),
        a_(nl.nodeIndex(a)),
        b_(nl.nodeIndex(b)),
        sigma_(sigma),
        modulation_(std::move(modulation)) {
    PSMN_CHECK(sigma_ > 0.0, "sigma must be positive");
    PSMN_CHECK(modulation_ != nullptr, "modulation required");
  }

  void eval(Stamper& s) const override {
    if (delta_ == 0.0) return;
    // Jacobian of delta*m(x) w.r.t. x is omitted: deltas are small
    // Monte-Carlo perturbations and Newton tolerates the approximation.
    s.stampCurrent(a_, b_, delta_ * modulation_(s));
  }

  size_t mismatchCount() const override { return 1; }
  MismatchParam mismatchParam(size_t k) const override {
    PSMN_CHECK(k == 0, "bad mismatch index");
    return {name() + ".delta", MismatchKind::kGeneric, sigma_, false};
  }
  void setMismatchDelta(size_t k, Real delta) override {
    PSMN_CHECK(k == 0, "bad mismatch index");
    delta_ = delta;
  }
  Real mismatchDelta(size_t k) const override {
    PSMN_CHECK(k == 0, "bad mismatch index");
    return delta_;
  }
  void mismatchStampF(size_t k, Stamper& s) const override {
    PSMN_CHECK(k == 0, "bad mismatch index");
    s.stampCurrent(a_, b_, modulation_(s));
  }

 private:
  int a_, b_;
  Real sigma_;
  Modulation modulation_;
  Real delta_ = 0.0;
};

}  // namespace psmn
