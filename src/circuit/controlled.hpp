// Linear controlled sources. VCVS and VCCS are generalized to a weighted
// sum of controlling node-pairs, which is what behavioral testbenches need
// (e.g. the comparator offset loop of paper Fig. 6 applies
// vin+ = vcm + vos/2, a two-term VCVS).
#pragma once

#include "circuit/device.hpp"
#include "circuit/netlist.hpp"

namespace psmn {

struct ControlTerm {
  int p;  // MNA index of + controlling node (-1 = ground)
  int n;  // MNA index of - controlling node
  Real gain;
};

/// v(a) - v(b) = offset + sum_k gain_k * (v(pk) - v(nk)). One branch unknown.
class Vcvs : public Device {
 public:
  Vcvs(std::string name, NodeId a, NodeId b, const Netlist& nl,
       std::vector<ControlTerm> terms, Real offset = 0.0)
      : Device(std::move(name)),
        a_(nl.nodeIndex(a)),
        b_(nl.nodeIndex(b)),
        terms_(std::move(terms)),
        offset_(offset) {}

  /// Single-control convenience (classic SPICE E element).
  Vcvs(std::string name, NodeId a, NodeId b, NodeId cp, NodeId cn, Real gain,
       const Netlist& nl)
      : Vcvs(std::move(name), a, b, nl,
             {{nl.nodeIndex(cp), nl.nodeIndex(cn), gain}}) {}

  void allocate(BranchAllocator& alloc) override {
    branch_ = alloc.allocate(name());
  }
  void eval(Stamper& s) const override;
  void evalBatch(DeviceBatchView& v) const override;
  int branchIndex() const { return branch_; }

 private:
  int a_, b_;
  int branch_ = -1;
  std::vector<ControlTerm> terms_;
  Real offset_;
};

/// Current from a to b: i = sum_k gain_k * (v(pk) - v(nk)).
class Vccs : public Device {
 public:
  Vccs(std::string name, NodeId a, NodeId b, const Netlist& nl,
       std::vector<ControlTerm> terms)
      : Device(std::move(name)),
        a_(nl.nodeIndex(a)),
        b_(nl.nodeIndex(b)),
        terms_(std::move(terms)) {}

  Vccs(std::string name, NodeId a, NodeId b, NodeId cp, NodeId cn, Real gain,
       const Netlist& nl)
      : Vccs(std::move(name), a, b, nl,
             {{nl.nodeIndex(cp), nl.nodeIndex(cn), gain}}) {}

  void eval(Stamper& s) const override;
  void evalBatch(DeviceBatchView& v) const override;

 private:
  int a_, b_;
  std::vector<ControlTerm> terms_;
};

/// CCVS (H): v(a)-v(b) = r * i(controlling VSource-like branch).
class Ccvs : public Device {
 public:
  Ccvs(std::string name, NodeId a, NodeId b, int ctrlBranch, Real r,
       const Netlist& nl)
      : Device(std::move(name)),
        a_(nl.nodeIndex(a)),
        b_(nl.nodeIndex(b)),
        ctrl_(ctrlBranch),
        r_(r) {}

  void allocate(BranchAllocator& alloc) override {
    branch_ = alloc.allocate(name());
  }
  void eval(Stamper& s) const override;
  void evalBatch(DeviceBatchView& v) const override;

 private:
  int a_, b_;
  int ctrl_;
  int branch_ = -1;
  Real r_;
};

/// CCCS (F): current a->b = gain * i(controlling branch).
class Cccs : public Device {
 public:
  Cccs(std::string name, NodeId a, NodeId b, int ctrlBranch, Real gain,
       const Netlist& nl)
      : Device(std::move(name)),
        a_(nl.nodeIndex(a)),
        b_(nl.nodeIndex(b)),
        ctrl_(ctrlBranch),
        gain_(gain) {}

  void eval(Stamper& s) const override;
  void evalBatch(DeviceBatchView& v) const override;

 private:
  int a_, b_;
  int ctrl_;
  Real gain_;
};

}  // namespace psmn
