// Scenario-batched device evaluation: SoA mismatch-delta storage for a
// batch of parameter "lanes" over ONE shared netlist structure.
//
// Statistical workloads (MC sampling, severity sweeps, gPC collocation)
// solve N perturbations of the same circuit. The scalar path builds N
// private netlists and walks each one per Newton iteration; the batched
// path keeps a single netlist and stores the N parameter sets
// column-major per device:
//
//     deltas_[offset(dev) + k * lanes + l]   (param k, lane l)
//
// so the per-device inner loop over lanes reads contiguous memory
// (SIMD-friendly) and one structural walk stamps all lanes.
//
// Bit-identity contract: the batched stamps must equal the scalar stamps
// bit for bit. Devices guarantee this by routing both paths through ONE
// compiled evaluation body (an `evalWith(stamper, deltas...)` private
// method) — the scalar eval() passes member deltas, evalBatch() passes
// lane deltas — so FP contraction cannot round the two paths differently.
// The generic Device::evalBatch fallback writes lane deltas onto the
// device and calls scalar eval(), which is the scalar path by definition.
#pragma once

#include <vector>

#include "circuit/netlist.hpp"

namespace psmn {

class DeviceBatch;

/// Per-device stamping context handed to Device::evalBatch. Carries one
/// configured Stamper per lane, the active-lane mask, and the current
/// device's SoA delta rows. Built and re-pointed by DeviceBatch::evalLanes.
class DeviceBatchView {
 public:
  size_t laneCount() const { return lanes_; }
  bool laneActive(size_t l) const { return active_[l] != 0; }
  /// Lane l's accumulation target (iterate, time, f/q/G/C attachments are
  /// all lane-specific; configured by the batch driver).
  Stamper& lane(size_t l) const { return (*stampers_)[l]; }
  /// Mismatch delta of the *current* device's parameter k in lane l.
  /// Valid for k < device().mismatchCount().
  Real delta(size_t k, size_t l) const { return deltas_[k * lanes_ + l]; }
  /// Mutable handle used by the generic fallback to replay lane deltas
  /// through the scalar eval(). Always the device being visited.
  Device& device() const { return *current_; }

 private:
  friend class DeviceBatch;
  std::vector<Stamper>* stampers_ = nullptr;
  const unsigned char* active_ = nullptr;
  const Real* deltas_ = nullptr;
  Device* current_ = nullptr;
  size_t lanes_ = 0;
};

/// Owns the SoA delta columns for `lanes` scenarios of one finalized
/// netlist and drives the batched structural walk.
class DeviceBatch {
 public:
  /// The netlist must be finalized; the batch indexes its device list.
  DeviceBatch(Netlist& nl, size_t lanes);

  size_t laneCount() const { return lanes_; }
  Netlist& netlist() const { return *nl_; }

  /// Snapshots every device's current mismatch deltas into lane l's
  /// column. Call after configuring the netlist for scenario l (e.g. via
  /// applyMismatchSample).
  void captureLane(size_t l);
  /// Writes lane l's column back onto the devices — used for the scalar
  /// substeps of a batched run (DC init, q init) and for delegating a
  /// failed lane to the scalar fallback.
  void applyLane(size_t l) const;

  /// Stored delta of device d's parameter k in lane l (test hook).
  Real laneDelta(size_t d, size_t k, size_t l) const {
    return deltas_[offsets_[d] + k * lanes_ + l];
  }

  /// One structural walk: visits every device once and stamps all lanes
  /// with active[l] != 0 through Device::evalBatch. `stampers` must hold
  /// one configured Stamper per lane. Counts Counter::kBatchEvals once.
  void evalLanes(std::vector<Stamper>& stampers,
                 const std::vector<unsigned char>& active) const;

 private:
  Netlist* nl_;
  size_t lanes_;
  std::vector<size_t> offsets_;  // per device: start of its SoA block
  std::vector<size_t> counts_;   // per device: mismatchCount()
  std::vector<Real> deltas_;
};

}  // namespace psmn
