#include "circuit/mosfet.hpp"

#include <cmath>

#include "circuit/device_batch.hpp"

namespace psmn {

Mosfet::Mosfet(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
               std::shared_ptr<const MosModel> model, Real w, Real l,
               const Netlist& nl)
    : Device(std::move(name)),
      d_(nl.nodeIndex(d)),
      g_(nl.nodeIndex(g)),
      s_(nl.nodeIndex(s)),
      b_(nl.nodeIndex(b)),
      model_(std::move(model)),
      w_(w),
      l_(l) {
  PSMN_CHECK(model_ != nullptr, "mosfet requires a model");
  PSMN_CHECK(w_ > 0.0 && l_ > 0.0, "mosfet W and L must be positive");
  setWidth(w_);
}

void Mosfet::setWidth(Real w) {
  PSMN_CHECK(w > 0.0, "mosfet W must be positive");
  w_ = w;
  const MosModel& m = *model_;
  cgs_ = 0.5 * m.cox * w_ * l_ + m.cgso * w_;
  cgd_ = 0.5 * m.cox * w_ * l_ + m.cgdo * w_;
  cdb_ = m.cj * w_ * m.ldiff;
  csb_ = m.cj * w_ * m.ldiff;
}

Real Mosfet::sigmaVt() const { return model_->avt / std::sqrt(w_ * l_); }

Real Mosfet::sigmaBetaRel() const {
  return model_->abeta / std::sqrt(w_ * l_);
}

Mosfet::Core Mosfet::evalCore(Real vgs, Real vds, Real vbs, Real dvt,
                              Real dbeta) const {
  const MosModel& m = *model_;
  // Body effect with a smooth clamp of (phi - vbs) at eps^2 to keep the
  // sqrt real for forward-biased bulk excursions during Newton iterations.
  const Real eps = 1e-3;
  const Real argRaw = m.phi - vbs;
  const Real argS = 0.5 * (argRaw + std::sqrt(argRaw * argRaw + 4.0 * eps * eps));
  const Real dArg = 0.5 * (1.0 + argRaw / std::sqrt(argRaw * argRaw + 4.0 * eps * eps));
  const Real sqrtArg = std::sqrt(argS);
  const Real vth =
      m.vt0 + dvt + (m.gamma > 0.0
                          ? m.gamma * (sqrtArg - std::sqrt(m.phi))
                          : 0.0);
  // dvth/dvbs = gamma * d(sqrt(argS))/dvbs = gamma/(2 sqrtArg) * dArg * (-1)
  const Real dvthDvbs =
      m.gamma > 0.0 ? -m.gamma * dArg / (2.0 * sqrtArg) : 0.0;

  const Real vgst = vgs - vth;
  const Real s2 = std::sqrt(vgst * vgst + 4.0 * m.vsmooth * m.vsmooth);
  const Real veff = 0.5 * (vgst + s2);
  const Real dveff = 0.5 * (1.0 + vgst / s2);

  const Real beta = m.kp * (w_ / l_) * (1.0 + dbeta);
  const Real clm = 1.0 + m.lambda * vds;

  Core c{};
  c.veff = veff;
  Real dIdVeff;
  if (vds < veff) {
    // Triode.
    c.saturated = false;
    c.ids = beta * (veff - 0.5 * vds) * vds * clm;
    dIdVeff = beta * vds * clm;
    c.gds = beta * ((veff - vds) * clm + (veff - 0.5 * vds) * vds * m.lambda);
  } else {
    // Saturation.
    c.saturated = true;
    c.ids = 0.5 * beta * veff * veff * clm;
    dIdVeff = beta * veff * clm;
    c.gds = 0.5 * beta * veff * veff * m.lambda;
  }
  c.gm = dIdVeff * dveff;
  // vth depends on vbs; veff depends on vth.
  c.gmb = -dIdVeff * dveff * dvthDvbs;  // dvthDvbs <= 0 so gmb >= 0
  c.didvt = -dIdVeff * dveff;           // dIds/d(dvt), dvt adds to vth
  c.didbeta = (1.0 + dbeta) != 0.0 ? c.ids / (1.0 + dbeta) : 0.0;
  return c;
}

Mosfet::Frame Mosfet::frame(const Stamper& s) const {
  const Real sgn = model_->pmos ? -1.0 : 1.0;
  const Real vdHat = sgn * s.v(d_);
  const Real vsHat = sgn * s.v(s_);
  Frame f{};
  f.sgn = sgn;
  if (vdHat >= vsHat) {
    f.nd = d_; f.ns = s_; f.swapped = false;
  } else {
    f.nd = s_; f.ns = d_; f.swapped = true;
  }
  f.ng = g_;
  f.nb = b_;
  return f;
}

void Mosfet::evalWith(Stamper& s, Real dvt, Real dbeta) const {
  const Frame fr = frame(s);
  const Real sgn = fr.sgn;
  const Real vgs = sgn * (s.v(fr.ng) - s.v(fr.ns));
  const Real vds = sgn * (s.v(fr.nd) - s.v(fr.ns));
  const Real vbs = sgn * (s.v(fr.nb) - s.v(fr.ns));
  const Core c = evalCore(vgs, vds, vbs, dvt, dbeta);

  // Static current into internal drain, out of internal source. Physical
  // current = sgn * internal current; the conductance entries are invariant
  // under the sign flip (d v_hat/d v = sgn cancels sgn on the current).
  s.addF(fr.nd, sgn * c.ids);
  s.addF(fr.ns, -sgn * c.ids);
  const Real gtot = c.gm + c.gds + c.gmb;
  s.addG(fr.nd, fr.ng, c.gm);
  s.addG(fr.nd, fr.nd, c.gds);
  s.addG(fr.nd, fr.nb, c.gmb);
  s.addG(fr.nd, fr.ns, -gtot);
  s.addG(fr.ns, fr.ng, -c.gm);
  s.addG(fr.ns, fr.nd, -c.gds);
  s.addG(fr.ns, fr.nb, -c.gmb);
  s.addG(fr.ns, fr.ns, gtot);

  // Bias-independent capacitances on physical terminals.
  auto cap = [&s](int a, int b, Real c0) {
    s.stampCharge(a, b, c0 * (s.v(a) - s.v(b)));
    s.stampCapacitance(a, b, c0);
  };
  cap(g_, s_, cgs_);
  cap(g_, d_, cgd_);
  cap(d_, b_, cdb_);
  cap(s_, b_, csb_);
}

void Mosfet::eval(Stamper& s) const { evalWith(s, dvt_, dbeta_); }

void Mosfet::evalBatch(DeviceBatchView& v) const {
  for (size_t l = 0; l < v.laneCount(); ++l) {
    if (v.laneActive(l)) evalWith(v.lane(l), v.delta(0, l), v.delta(1, l));
  }
}

MosOpPoint Mosfet::opPoint(const Stamper& s) const {
  const Frame fr = frame(s);
  const Real sgn = fr.sgn;
  const Core c = evalCore(sgn * (s.v(fr.ng) - s.v(fr.ns)),
                          sgn * (s.v(fr.nd) - s.v(fr.ns)),
                          sgn * (s.v(fr.nb) - s.v(fr.ns)));
  MosOpPoint op;
  // Report current into the physical drain terminal.
  op.ids = (fr.swapped ? -1.0 : 1.0) * sgn * c.ids;
  op.gm = c.gm;
  op.gds = c.gds;
  op.gmb = c.gmb;
  op.veff = c.veff;
  op.saturated = c.saturated;
  op.swapped = fr.swapped;
  return op;
}

MismatchParam Mosfet::mismatchParam(size_t k) const {
  PSMN_CHECK(k < 2, "bad mismatch index");
  if (k == 0) return {name() + ".dvt", MismatchKind::kVth, sigmaVt(), true};
  return {name() + ".dbeta", MismatchKind::kBetaRel, sigmaBetaRel(), true};
}

void Mosfet::setMismatchDelta(size_t k, Real delta) {
  PSMN_CHECK(k < 2, "bad mismatch index");
  if (k == 0) {
    dvt_ = delta;
  } else {
    PSMN_CHECK(1.0 + delta > 0.0, "mismatch drove beta non-positive");
    dbeta_ = delta;
  }
}

Real Mosfet::mismatchDelta(size_t k) const {
  PSMN_CHECK(k < 2, "bad mismatch index");
  return k == 0 ? dvt_ : dbeta_;
}

void Mosfet::mismatchStampF(size_t k, Stamper& s) const {
  PSMN_CHECK(k < 2, "bad mismatch index");
  const Frame fr = frame(s);
  const Real sgn = fr.sgn;
  const Core c = evalCore(sgn * (s.v(fr.ng) - s.v(fr.ns)),
                          sgn * (s.v(fr.nd) - s.v(fr.ns)),
                          sgn * (s.v(fr.nb) - s.v(fr.ns)));
  const Real dIdp = (k == 0) ? c.didvt : c.didbeta;
  // dF/dp: physical drain-node residual changes by sgn * dIdp.
  s.addF(fr.nd, sgn * dIdp);
  s.addF(fr.ns, -sgn * dIdp);
}

size_t Mosfet::noiseCount() const {
  return (model_->thermalNoise ? 1 : 0) + (model_->flickerNoise ? 1 : 0);
}

NoiseDesc Mosfet::noiseDesc(size_t k) const {
  PSMN_CHECK(k < noiseCount(), "bad noise index");
  if (model_->thermalNoise && k == 0) {
    return {name() + ".thermal", NoiseKind::kWhite};
  }
  return {name() + ".flicker", NoiseKind::kFlicker};
}

void Mosfet::noiseStamp(size_t k, Stamper& s) const {
  PSMN_CHECK(k < noiseCount(), "bad noise index");
  const Frame fr = frame(s);
  const Real sgn = fr.sgn;
  const Core c = evalCore(sgn * (s.v(fr.ng) - s.v(fr.ns)),
                          sgn * (s.v(fr.nd) - s.v(fr.ns)),
                          sgn * (s.v(fr.nb) - s.v(fr.ns)));
  const MosModel& m = *model_;
  Real amp = 0.0;
  if (m.thermalNoise && k == 0) {
    amp = std::sqrt(4.0 * kBoltzmann * m.temperature * m.thermalGamma *
                    std::max(c.gm, 0.0));
  } else {
    amp = std::sqrt(m.kf * std::pow(std::fabs(c.ids), m.af) /
                    (m.cox * w_ * l_));
  }
  s.addF(fr.nd, amp);
  s.addF(fr.ns, -amp);
}

Real Mosfet::noiseShape(size_t k, Real f) const {
  PSMN_CHECK(k < noiseCount(), "bad noise index");
  if (model_->thermalNoise && k == 0) return 1.0;
  return 1.0 / std::max(f, 1e-30);  // flicker: PSD ~ 1/f, unity at 1 Hz
}

}  // namespace psmn
