#include "circuit/sources.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace psmn {

SourceWave SourceWave::dc(Real value) {
  SourceWave w;
  w.kind_ = Kind::kDc;
  w.dc_ = value;
  return w;
}

SourceWave SourceWave::pulse(Real v1, Real v2, Real delay, Real rise,
                             Real fall, Real width, Real period) {
  PSMN_CHECK(rise > 0.0 && fall > 0.0,
             "PULSE rise/fall must be positive (finite slew keeps the DAE "
             "well-posed)");
  PSMN_CHECK(period == 0.0 || period >= delay + rise + width + fall,
             "PULSE period shorter than one pulse");
  SourceWave w;
  w.kind_ = Kind::kPulse;
  w.v1_ = v1; w.v2_ = v2; w.delay_ = delay; w.rise_ = rise; w.fall_ = fall;
  w.width_ = width; w.period_ = period;
  return w;
}

SourceWave SourceWave::sine(Real offset, Real amplitude, Real freq, Real delay,
                            Real damping) {
  PSMN_CHECK(freq > 0.0, "SIN frequency must be positive");
  SourceWave w;
  w.kind_ = Kind::kSine;
  w.offset_ = offset; w.amplitude_ = amplitude; w.freq_ = freq;
  w.delay_ = delay; w.damping_ = damping;
  return w;
}

SourceWave SourceWave::pwl(std::vector<Real> times, std::vector<Real> values,
                           Real period) {
  PSMN_CHECK(times.size() == values.size() && times.size() >= 2,
             "PWL needs >= 2 points");
  PSMN_CHECK(std::is_sorted(times.begin(), times.end(),
                            [](Real a, Real b) { return a <= b; }) ||
                 std::is_sorted(times.begin(), times.end()),
             "PWL times must be increasing");
  for (size_t i = 1; i < times.size(); ++i)
    PSMN_CHECK(times[i] > times[i - 1], "PWL times must be strictly increasing");
  if (period > 0.0)
    PSMN_CHECK(times.back() <= period, "PWL points exceed the stated period");
  SourceWave w;
  w.kind_ = Kind::kPwl;
  w.times_ = std::move(times);
  w.values_ = std::move(values);
  w.period_ = period;
  return w;
}

Real SourceWave::period() const {
  switch (kind_) {
    case Kind::kDc: return 0.0;
    case Kind::kPulse: return period_;
    case Kind::kSine: return 1.0 / freq_;
    case Kind::kPwl: return period_;
  }
  return 0.0;
}

Real SourceWave::value(Real t) const {
  switch (kind_) {
    case Kind::kDc:
      return dc_;
    case Kind::kPulse: {
      Real tl = t - delay_;
      if (period_ > 0.0 && tl >= 0.0) tl = std::fmod(tl, period_);
      if (tl < 0.0) return v1_;
      if (tl < rise_) return v1_ + (v2_ - v1_) * tl / rise_;
      if (tl < rise_ + width_) return v2_;
      if (tl < rise_ + width_ + fall_)
        return v2_ + (v1_ - v2_) * (tl - rise_ - width_) / fall_;
      return v1_;
    }
    case Kind::kSine: {
      if (t < delay_) return offset_;
      const Real tau = t - delay_;
      const Real damp = damping_ > 0.0 ? std::exp(-damping_ * tau) : 1.0;
      return offset_ + amplitude_ * damp *
                           std::sin(2.0 * std::numbers::pi_v<Real> * freq_ * tau);
    }
    case Kind::kPwl: {
      Real tl = t;
      if (period_ > 0.0) tl = std::fmod(t, period_);
      if (tl <= times_.front()) {
        if (period_ > 0.0) {
          // interpolate across the wrap between last point and first+period
          const Real span = period_ - times_.back() + times_.front();
          if (span <= 0.0) return values_.front();
          const Real u = (tl + period_ - times_.back()) / span;
          return values_.back() + u * (values_.front() - values_.back());
        }
        return values_.front();
      }
      if (tl >= times_.back()) {
        if (period_ > 0.0) {
          const Real span = period_ - times_.back() + times_.front();
          if (span <= 0.0) return values_.back();
          const Real u = (tl - times_.back()) / span;
          return values_.back() + u * (values_.front() - values_.back());
        }
        return values_.back();
      }
      const auto it = std::upper_bound(times_.begin(), times_.end(), tl);
      const size_t hi = static_cast<size_t>(it - times_.begin());
      const size_t lo = hi - 1;
      const Real u = (tl - times_[lo]) / (times_[hi] - times_[lo]);
      return values_[lo] + u * (values_[hi] - values_[lo]);
    }
  }
  return 0.0;
}

void SourceWave::collectBreakpoints(Real t0, Real t1,
                                    std::vector<Real>& out) const {
  auto push = [&](Real t) {
    if (t > t0 && t <= t1) out.push_back(t);
  };
  switch (kind_) {
    case Kind::kDc:
    case Kind::kSine:
      return;
    case Kind::kPulse: {
      const Real corners[4] = {0.0, rise_, rise_ + width_,
                               rise_ + width_ + fall_};
      if (period_ <= 0.0) {
        for (Real c : corners) push(delay_ + c);
        return;
      }
      const Real firstCycle = std::floor((t0 - delay_) / period_);
      for (Real cyc = std::max(0.0, firstCycle);
           delay_ + cyc * period_ <= t1; cyc += 1.0) {
        for (Real c : corners) push(delay_ + cyc * period_ + c);
      }
      return;
    }
    case Kind::kPwl: {
      if (period_ <= 0.0) {
        for (Real t : times_) push(t);
        return;
      }
      const Real firstCycle = std::floor(t0 / period_);
      for (Real cyc = std::max(0.0, firstCycle); cyc * period_ <= t1;
           cyc += 1.0) {
        for (Real t : times_) push(cyc * period_ + t);
      }
      return;
    }
  }
}

void VSource::eval(Stamper& s) const {
  // KCL: branch current flows a -> b through the source.
  const Real i = s.v(branch_);
  s.addF(a_, i);
  s.addF(b_, -i);
  s.addG(a_, branch_, 1.0);
  s.addG(b_, branch_, -1.0);
  // Branch equation: v(a) - v(b) - V(t) = 0.
  s.addF(branch_, s.v(a_) - s.v(b_) - wave_.value(s.time()) * s.sourceScale());
  s.addG(branch_, a_, 1.0);
  s.addG(branch_, b_, -1.0);
}

void VSource::collectBreakpoints(Real t0, Real t1,
                                 std::vector<Real>& out) const {
  wave_.collectBreakpoints(t0, t1, out);
}

void ISource::eval(Stamper& s) const {
  const Real i = wave_.value(s.time()) * s.sourceScale();
  s.stampCurrent(a_, b_, i);
}

void ISource::collectBreakpoints(Real t0, Real t1,
                                 std::vector<Real>& out) const {
  wave_.collectBreakpoints(t0, t1, out);
}

}  // namespace psmn
