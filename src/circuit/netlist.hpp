// Netlist: owns nodes and devices, assigns the MNA unknown layout.
//
// Node 0 is always ground (named "0"; "gnd" is an alias). MNA unknowns are
// node voltages for nodes 1..N-1 (MNA index = node id - 1) followed by
// branch currents requested by devices during finalize().
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/device.hpp"

namespace psmn {

using NodeId = int;
inline constexpr NodeId kGround = 0;

class Netlist {
 public:
  Netlist();

  /// Returns the node id for `name`, creating it if needed.
  NodeId node(const std::string& name);
  std::optional<NodeId> findNode(const std::string& name) const;
  const std::string& nodeName(NodeId id) const;
  size_t nodeCount() const { return nodeNames_.size(); }  // includes ground

  /// Adds a device; the netlist takes ownership. Returns a typed reference.
  template <class D, class... Args>
  D& add(Args&&... args) {
    PSMN_CHECK(!finalized_, "cannot add devices after finalize()");
    auto dev = std::make_unique<D>(std::forward<Args>(args)...);
    D& ref = *dev;
    PSMN_CHECK(deviceIndex_.emplace(ref.name(), devices_.size()).second,
               "duplicate device name '" + ref.name() + "'");
    devices_.push_back(std::move(dev));
    return ref;
  }

  Device* find(const std::string& name);
  const Device* find(const std::string& name) const;
  const std::vector<std::unique_ptr<Device>>& devices() const {
    return devices_;
  }

  /// Assigns branch unknowns; must be called before simulation. Idempotent.
  void finalize();
  bool finalized() const { return finalized_; }

  /// Number of MNA unknowns (node voltages + branch currents).
  size_t unknownCount() const;
  size_t branchCount() const { return branchNames_.size(); }

  /// MNA index of a node (-1 for ground).
  int nodeIndex(NodeId id) const { return id - 1; }
  int nodeIndex(const std::string& name) const;

  /// Human-readable unknown name: "v(out)" / "i(V1)".
  std::string unknownName(size_t mnaIndex) const;

  /// All mismatch parameters in the netlist, flattened as (device, k) pairs.
  struct MismatchRef {
    Device* device;
    size_t index;
    MismatchParam param;
  };
  std::vector<MismatchRef> mismatchParams() const;

  /// All physical noise sources, flattened.
  struct NoiseRef {
    Device* device;
    size_t index;
    NoiseDesc desc;
  };
  std::vector<NoiseRef> noiseSources() const;

  /// Zeroes every device's mismatch deltas.
  void clearMismatch();

 private:
  std::vector<std::string> nodeNames_;
  std::unordered_map<std::string, NodeId> nodeIndexByName_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::unordered_map<std::string, size_t> deviceIndex_;
  std::vector<std::string> branchNames_;
  bool finalized_ = false;
};

}  // namespace psmn
