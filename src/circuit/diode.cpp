#include "circuit/diode.hpp"

#include <cmath>

#include "circuit/device_batch.hpp"

namespace psmn {

void Diode::eval(Stamper& s) const {
  const Real vt = model_.n * model_.thermalVoltage();
  const Real v = s.v(a_) - s.v(c_);
  // Exponent clamping: above vmax the exponential is linearized, which keeps
  // Newton iterates finite without changing the converged solution for any
  // realistic bias.
  const Real vmax = 40.0 * vt;
  Real id, gd;
  if (v <= vmax) {
    const Real e = std::exp(v / vt);
    id = model_.is * (e - 1.0);
    gd = model_.is * e / vt;
  } else {
    const Real e = std::exp(vmax / vt);
    gd = model_.is * e / vt;
    id = model_.is * (e - 1.0) + gd * (v - vmax);
  }
  s.stampCurrent(a_, c_, id + s.gmin() * v);
  s.stampConductance(a_, c_, gd + s.gmin());

  if (model_.cj0 > 0.0) {
    // Simple constant junction capacitance (bias dependence omitted; the
    // mismatch analysis depends on the linearization, not on cj(v) detail).
    s.stampCharge(a_, c_, model_.cj0 * v);
    s.stampCapacitance(a_, c_, model_.cj0);
  }
}

// No mismatch parameters: every lane sees the same device, so the batched
// visit is the scalar body once per active lane.
void Diode::evalBatch(DeviceBatchView& v) const {
  for (size_t l = 0; l < v.laneCount(); ++l) {
    if (v.laneActive(l)) eval(v.lane(l));
  }
}

}  // namespace psmn
