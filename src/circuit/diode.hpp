// Junction diode with exponential I-V, series-free, optional junction cap.
#pragma once

#include "circuit/device.hpp"
#include "circuit/netlist.hpp"

namespace psmn {

struct DiodeModel {
  Real is = 1e-14;   // saturation current (A)
  Real n = 1.0;      // emission coefficient
  Real cj0 = 0.0;    // zero-bias junction capacitance (F)
  Real temperature = kRoomTempK;

  Real thermalVoltage() const {
    return kBoltzmann * temperature / kElemCharge;
  }
};

class Diode : public Device {
 public:
  Diode(std::string name, NodeId anode, NodeId cathode, DiodeModel model,
        const Netlist& nl)
      : Device(std::move(name)),
        a_(nl.nodeIndex(anode)),
        c_(nl.nodeIndex(cathode)),
        model_(model) {}

  void eval(Stamper& s) const override;
  void evalBatch(DeviceBatchView& v) const override;

  const DiodeModel& model() const { return model_; }

 private:
  int a_, c_;
  DiodeModel model_;
};

}  // namespace psmn
