#include "circuit/device.hpp"

namespace psmn {

MismatchParam Device::mismatchParam(size_t) const {
  throw Error("device '" + name() + "' has no mismatch parameters");
}

void Device::setMismatchDelta(size_t, Real) {
  throw Error("device '" + name() + "' has no mismatch parameters");
}

Real Device::mismatchDelta(size_t) const {
  throw Error("device '" + name() + "' has no mismatch parameters");
}

void Device::mismatchStampF(size_t, Stamper&) const {
  throw Error("device '" + name() + "' has no mismatch parameters");
}

void Device::mismatchStampQ(size_t, Stamper&) const {
  // Most mismatch parameters perturb only static currents; devices with
  // reactive mismatch (C, L) override this.
}

NoiseDesc Device::noiseDesc(size_t) const {
  throw Error("device '" + name() + "' has no noise sources");
}

void Device::noiseStamp(size_t, Stamper&) const {
  throw Error("device '" + name() + "' has no noise sources");
}

Real Device::noiseShape(size_t, Real) const {
  throw Error("device '" + name() + "' has no noise sources");
}

void Device::collectBreakpoints(Real, Real, std::vector<Real>&) const {}

}  // namespace psmn
