// Benchmark-circuit library: the three circuits of the paper's evaluation
// (SS IV, VI) built from Mosfet devices on a 0.13 um-flavoured process kit.
//
//  * StrongARM clocked comparator (paper Fig. 10, ref. [19]) with the
//    offset-nulling feedback testbench of Fig. 6,
//  * the two-output logic path of Fig. 7 (Table I correlations),
//  * a 5-stage ring oscillator (SS IV-C, Fig. 11/12).
#pragma once

#include <memory>

#include "circuit/controlled.hpp"
#include "circuit/mosfet.hpp"
#include "circuit/netlist.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"

namespace psmn {

/// Process kit: transistor models + supply. Paper process anchors:
/// 0.13 um, AVT = 6.5 mV*um, Abeta = 3.25 %*um.
struct ProcessKit {
  std::shared_ptr<const MosModel> nmos;
  std::shared_ptr<const MosModel> pmos;
  Real vdd = 1.2;
  Real lmin = 0.13e-6;

  /// `mismatchScale` multiplies AVT and Abeta (Fig. 11/12 severity sweeps).
  static ProcessKit cmos130(Real mismatchScale = 1.0);
};

// ---------------------------------------------------------------- gates

struct InverterCell {
  Mosfet* mp = nullptr;
  Mosfet* mn = nullptr;
};

/// CMOS inverter between `in` and `out`.
InverterCell addInverter(Netlist& nl, const std::string& name, NodeId in,
                         NodeId out, NodeId vdd, const ProcessKit& kit,
                         Real wn, Real wp);

struct Nand2Cell {
  Mosfet* mpa = nullptr;
  Mosfet* mpb = nullptr;
  Mosfet* mna = nullptr;
  Mosfet* mnb = nullptr;
};

/// CMOS NAND2: out = !(a & b).
Nand2Cell addNand2(Netlist& nl, const std::string& name, NodeId a, NodeId b,
                   NodeId out, NodeId vdd, const ProcessKit& kit, Real wn,
                   Real wp);

// --------------------------------------------------- StrongARM comparator

struct ComparatorCircuit {
  NodeId vddNode, clk, inp, inn, outp, outn, xp, xn, tail;
  std::vector<Mosfet*> fets;  // M1..M11 in paper Fig. 10 order
  Real clkPeriod = 0.0;
  Mosfet* fet(const std::string& name) const;
};

struct ComparatorOptions {
  Real clkPeriod = 2e-9;
  Real wTail = 4e-6;     // M1
  Real wInput = 2e-6;    // M2, M3
  Real wNLatch = 1e-6;   // M4, M5
  Real wPLatch = 1e-6;   // M6, M7
  Real wPre = 1e-6;      // M8..M11 precharge
  /// Output loading. Sized so the in-cycle regenerative gain is ~1e3: the
  /// comparator still decides, but its linear (metastable) window stays
  /// wider than the feedback's per-cycle ripple, which keeps the offset
  /// loop of Fig. 6 settling smoothly and the monodromy double-precision
  /// friendly for the LPTV analysis.
  Real cLoad = 100e-15;
};

/// Bare comparator with ideal clock; inputs are the caller's nodes.
ComparatorCircuit buildComparator(Netlist& nl, const ProcessKit& kit,
                                  NodeId inp, NodeId inn,
                                  const ComparatorOptions& opt = {});

/// Fig. 6 testbench: offset-nulling loop. The VOS node settles to (minus)
/// the input-referred offset; its PSS baseband pseudo-noise PSD is the
/// offset variance (SS V-A).
struct ComparatorTestbench {
  ComparatorCircuit comp;
  NodeId vos;
  int vosIndex = -1;  // MNA index of the VOS node (after finalize)
  Real clkPeriod = 0.0;
};

struct ComparatorTestbenchOptions {
  ComparatorOptions comparator;
  Real vcm = 0.6;       // input common mode
  /// VCCS gain K (A/V). Sized so the per-cycle VOS step stays below the
  /// comparator's linear window: the loop then converges geometrically
  /// (~0.94x per cycle), needing on the order of a hundred clock cycles to
  /// settle a 3-sigma offset — the "long transient" the paper's Table II
  /// charges to Monte-Carlo, while shooting PSS needs a handful of periods.
  Real loopGain = 8e-7;
  Real cIntegrator = 1e-12;
};

ComparatorTestbench buildComparatorTestbench(
    Netlist& nl, const ProcessKit& kit,
    const ComparatorTestbenchOptions& opt = {});

// ----------------------------------------------------- Fig. 7 logic path

/// Two-output logic path (paper Fig. 7). Output A and B fall after the
/// later of (X rise, Y rise):
///   Y -> inv a -> inv b -> yb ;  A = NAND_c(yb, X)
///   X -> inv e -> inv f -> xf ;  B = NAND_d(yb, xf)
/// When X rises first, both critical paths run through gates a and b
/// (highly correlated delays); when Y rises first, the paths through c and
/// through e/f/d share nothing (uncorrelated) — Table I.
struct LogicPathCircuit {
  NodeId x, y, outA, outB;
  NodeId ya, yb, xe, xf;
  Real period = 0.0;
  Real tRiseX = 0.0;  // X rising-edge time within the period
  Real tRiseY = 0.0;
  VSource* srcX = nullptr;
  VSource* srcY = nullptr;
};

struct LogicPathOptions {
  Real period = 8e-9;
  Real tRiseX = 1e-9;
  Real tRiseY = 2e-9;   // Y after X: correlated case. Swap for the other.
  Real edgeTime = 0.1e-9;
  Real wn = 0.6e-6;
  Real wp = 1.2e-6;
  Real cLoad = 10e-15;
};

LogicPathCircuit buildLogicPath(Netlist& nl, const ProcessKit& kit,
                                const LogicPathOptions& opt = {});

// --------------------------------------------------------- inverter chain

/// Driven inverter chain: VDD + pulse source -> `rows` parallel chains of
/// `stages` inverters with load caps, all driven from the same input. The
/// scalable fixture for solver benchmarks and the dense/sparse golden
/// tests — node count is rows*stages + 2, while DC difficulty (Newton
/// iterations grow with logic depth) is set by `stages` alone.
struct InverterChainCircuit {
  NodeId vddNode, in;
  std::vector<NodeId> taps;  // outputs of the first row; taps.back() = end
  std::vector<InverterCell> cells;  // all rows, row-major
  VSource* src = nullptr;
};

struct InverterChainOptions {
  int stages = 8;
  int rows = 1;
  Real wn = 0.6e-6;
  Real wp = 1.2e-6;
  Real cLoad = 5e-15;
  Real period = 4e-9;
  Real edgeTime = 0.1e-9;
};

InverterChainCircuit buildInverterChain(Netlist& nl, const ProcessKit& kit,
                                        const InverterChainOptions& opt = {});

// -------------------------------------------------------- ring oscillator

struct RingOscillatorCircuit {
  std::vector<NodeId> stages;  // stage output nodes, stages[0] is "osc1"
  NodeId vddNode;
  std::vector<InverterCell> cells;
};

struct RingOscillatorOptions {
  int stages = 5;      // odd
  Real wn = 8.3e-6;    // sized so 3*sigma(IDS) ~ 14% (paper's anchor)
  Real wp = 16.6e-6;
  Real cLoad = 10e-15;
};

RingOscillatorCircuit buildRingOscillator(Netlist& nl, const ProcessKit& kit,
                                          const RingOscillatorOptions& opt = {});

}  // namespace psmn
