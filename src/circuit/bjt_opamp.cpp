#include "circuit/bjt_opamp.hpp"

#include "circuit/passives.hpp"
#include "circuit/sources.hpp"

namespace psmn {

BjtKit BjtKit::bipolar5(Real mismatchScale) {
  BjtKit kit;
  kit.mismatchScale = mismatchScale;

  auto npn = std::make_shared<BjtModel>();
  npn->is = 5e-15;
  npn->bf = 200.0;
  npn->br = 4.0;
  npn->vaf = 100.0;
  npn->cje = 1e-12;
  npn->cjc = 0.5e-12;
  npn->tf = 0.3e-9;
  npn->ais = 0.02 * mismatchScale;
  npn->abf = 0.01 * mismatchScale;

  auto pnp = std::make_shared<BjtModel>();
  pnp->pnp = true;
  pnp->is = 2e-15;
  pnp->bf = 50.0;
  pnp->br = 2.0;
  pnp->vaf = 50.0;
  pnp->cje = 1.5e-12;
  pnp->cjc = 1e-12;
  pnp->tf = 1e-9;
  pnp->ais = 0.02 * mismatchScale;
  pnp->abf = 0.01 * mismatchScale;

  kit.npn = std::move(npn);
  kit.pnp = std::move(pnp);
  return kit;
}

Bjt* BjtOpAmpCircuit::bjt(const std::string& name) const {
  for (Bjt* q : bjts) {
    if (q->name() == name) return q;
  }
  return nullptr;
}

BjtOpAmpCircuit buildBjtOpAmp(Netlist& nl, const BjtKit& kit, NodeId inp,
                              NodeId inn, NodeId out,
                              const BjtOpAmpOptions& opt) {
  BjtOpAmpCircuit c;
  c.inp = inp;
  c.inn = inn;
  c.out = out;
  c.vccNode = nl.node("vcc");
  c.veeNode = nl.node("vee");
  const NodeId vcc = c.vccNode, vee = c.veeNode;

  const NodeId pb = nl.node("pb"), nb = nl.node("nb");
  const NodeId ef1 = nl.node("ef1"), ef2 = nl.node("ef2");
  const NodeId pe1 = nl.node("pe1"), pe2 = nl.node("pe2");
  const NodeId m1e = nl.node("m1e"), m2e = nl.node("m2e");
  const NodeId mb = nl.node("mb"), ge = nl.node("ge");
  const NodeId abm = nl.node("abm");
  const NodeId so1 = nl.node("so1"), so2 = nl.node("so2");
  c.l1 = nl.node("l1");
  c.l2 = nl.node("l2");
  c.abt = nl.node("abt");
  c.abb = nl.node("abb");
  c.tail = nl.node("tail");

  nl.add<VSource>("VCC", vcc, kGround, SourceWave::dc(kit.vcc), nl);
  nl.add<VSource>("VEE", vee, kGround, SourceWave::dc(kit.vee), nl);

  auto addQ = [&](const std::string& name, NodeId qc, NodeId qb, NodeId qe,
                  bool pnp) {
    c.bjts.push_back(
        &nl.add<Bjt>(name, qc, qb, qe, pnp ? kit.pnp : kit.npn, 1.0, nl));
  };
  const Real rSigma = opt.rDegenSigma * kit.mismatchScale;

  // Bias chain: one resistor sets the master current; pb/nb are the pnp
  // and npn mirror reference rails.
  addQ("QB1", pb, pb, vcc, true);
  nl.add<Resistor>("RB", pb, nb, opt.rBias, nl);
  addQ("QB2", nb, nb, vee, false);

  // Input emitter followers with pnp current-source loads: shift the
  // inputs one V_EB up so the npn pair's emitters sit near the inputs and
  // the tail sink keeps full headroom. The mirror-diode side (l1) inverts
  // once more through the second stage, so the QD1 branch is the
  // INVERTING input and the QD2/l2 branch the non-inverting one.
  addQ("QS1", ef1, pb, vcc, true);
  addQ("QS2", ef2, pb, vcc, true);
  addQ("QE1", vee, inn, ef1, true);
  addQ("QE2", vee, inp, ef2, true);

  // Input stage: degenerated npn differential pair over a mirrored tail
  // sink, loaded by a degenerated pnp mirror with a beta-helper (QMH
  // supplies the mirror base currents so they do not unbalance l1).
  addQ("QD1", c.l1, ef1, pe1, false);
  addQ("QD2", c.l2, ef2, pe2, false);
  nl.add<Resistor>("RE1", pe1, c.tail, opt.rDegen, nl, rSigma);
  nl.add<Resistor>("RE2", pe2, c.tail, opt.rDegen, nl, rSigma);
  addQ("QT", c.tail, nb, vee, false);
  addQ("QM1", c.l1, mb, m1e, true);
  addQ("QM2", c.l2, mb, m2e, true);
  nl.add<Resistor>("RM1", m1e, vcc, opt.rDegen, nl, rSigma);
  nl.add<Resistor>("RM2", m2e, vcc, opt.rDegen, nl, rSigma);
  addQ("QMH", vee, c.l1, mb, true);

  // Second stage: pnp common-emitter against a mirrored npn sink, Miller
  // compensated across the stage. The class-AB string rides between the
  // stage output (abt) and the sink (abb).
  addQ("QG", c.abt, c.l2, ge, true);
  nl.add<Resistor>("REG", ge, vcc, opt.rGain, nl);
  addQ("QL", c.abb, nb, vee, false);
  const NodeId cz = nl.node("cz");
  nl.add<Capacitor>("CC", c.abt, cz, opt.cComp, nl);
  nl.add<Resistor>("RZ", cz, c.l2, opt.rZero, nl);
  addQ("QA1", c.abt, c.abt, abm, false);
  addQ("QA2", abm, abm, c.abb, false);

  // Complementary output followers with current-sense resistors; QP1/QP2
  // are off at the quiescent ~15 mV sense drop and steal the output
  // drive only under overload.
  addQ("QO1", vcc, c.abt, so1, false);
  addQ("QO2", vee, c.abb, so2, true);
  nl.add<Resistor>("RS1", so1, out, opt.rShort, nl);
  nl.add<Resistor>("RS2", so2, out, opt.rShort, nl);
  addQ("QP1", c.abt, so1, out, false);
  addQ("QP2", c.abb, so2, out, true);

  return c;
}

BjtFollowerTestbench buildBjtFollower(Netlist& nl, const BjtKit& kit,
                                      const BjtFollowerOptions& opt) {
  BjtFollowerTestbench tb;
  tb.in = nl.node("in");
  tb.out = nl.node("out");
  // inn == out: unity-gain feedback.
  tb.amp = buildBjtOpAmp(nl, kit, tb.in, tb.out, tb.out, opt.amp);
  nl.add<VSource>(
      "VIN", tb.in, kGround,
      SourceWave::pulse(0.0, opt.vStep, opt.tStep, opt.tEdge, opt.tEdge,
                        1.0, 2.0),
      nl);
  nl.add<Resistor>("RL", tb.out, kGround, opt.rLoad, nl);
  nl.add<Capacitor>("CL", tb.out, kGround, opt.cLoad, nl);
  return tb;
}

}  // namespace psmn
