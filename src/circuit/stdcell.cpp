#include "circuit/stdcell.hpp"

namespace psmn {

ProcessKit ProcessKit::cmos130(Real mismatchScale) {
  ProcessKit kit;
  auto nmos = std::make_shared<MosModel>();
  nmos->pmos = false;
  nmos->kp = 400e-6;
  nmos->vt0 = 0.35;
  nmos->lambda = 0.15;
  nmos->gamma = 0.30;
  nmos->phi = 0.8;
  nmos->cox = 1.5e-2;
  nmos->cj = 1.0e-3;
  nmos->cgso = 2.5e-10;
  nmos->cgdo = 2.5e-10;
  nmos->avt = 6.5e-9 * mismatchScale;      // 6.5 mV*um
  nmos->abeta = 3.25e-8 * mismatchScale;   // 3.25 %*um

  auto pmos = std::make_shared<MosModel>(*nmos);
  pmos->pmos = true;
  pmos->kp = 100e-6;
  pmos->vt0 = 0.35;
  pmos->lambda = 0.20;

  kit.nmos = std::move(nmos);
  kit.pmos = std::move(pmos);
  return kit;
}

InverterCell addInverter(Netlist& nl, const std::string& name, NodeId in,
                         NodeId out, NodeId vdd, const ProcessKit& kit,
                         Real wn, Real wp) {
  InverterCell cell;
  cell.mp = &nl.add<Mosfet>(name + "p", out, in, vdd, vdd, kit.pmos, wp,
                            kit.lmin, nl);
  cell.mn = &nl.add<Mosfet>(name + "n", out, in, kGround, kGround, kit.nmos,
                            wn, kit.lmin, nl);
  return cell;
}

Nand2Cell addNand2(Netlist& nl, const std::string& name, NodeId a, NodeId b,
                   NodeId out, NodeId vdd, const ProcessKit& kit, Real wn,
                   Real wp) {
  Nand2Cell cell;
  const NodeId mid = nl.node(name + "_mid");
  cell.mpa = &nl.add<Mosfet>(name + "pa", out, a, vdd, vdd, kit.pmos, wp,
                             kit.lmin, nl);
  cell.mpb = &nl.add<Mosfet>(name + "pb", out, b, vdd, vdd, kit.pmos, wp,
                             kit.lmin, nl);
  // Series NMOS stack sized 2x for comparable drive.
  cell.mna = &nl.add<Mosfet>(name + "na", out, a, mid, kGround, kit.nmos,
                             2.0 * wn, kit.lmin, nl);
  cell.mnb = &nl.add<Mosfet>(name + "nb", mid, b, kGround, kGround, kit.nmos,
                             2.0 * wn, kit.lmin, nl);
  return cell;
}

Mosfet* ComparatorCircuit::fet(const std::string& name) const {
  for (Mosfet* f : fets) {
    if (f->name() == name) return f;
  }
  throw Error("comparator has no transistor named '" + name + "'");
}

ComparatorCircuit buildComparator(Netlist& nl, const ProcessKit& kit,
                                  NodeId inp, NodeId inn,
                                  const ComparatorOptions& opt) {
  ComparatorCircuit c;
  c.clkPeriod = opt.clkPeriod;
  c.inp = inp;
  c.inn = inn;
  c.vddNode = nl.node("vdd");
  c.clk = nl.node("clk");
  c.outp = nl.node("outp");
  c.outn = nl.node("outn");
  c.xp = nl.node("xp");
  c.xn = nl.node("xn");
  c.tail = nl.node("tail");

  const Real l = kit.lmin;
  auto& fets = c.fets;
  // M1: clock tail switch.
  fets.push_back(&nl.add<Mosfet>("M1", c.tail, c.clk, kGround, kGround,
                                 kit.nmos, opt.wTail, l, nl));
  // M2/M3: input differential pair.
  fets.push_back(&nl.add<Mosfet>("M2", c.xp, inp, c.tail, kGround, kit.nmos,
                                 opt.wInput, l, nl));
  fets.push_back(&nl.add<Mosfet>("M3", c.xn, inn, c.tail, kGround, kit.nmos,
                                 opt.wInput, l, nl));
  // M4/M5: cross-coupled NMOS of the latch.
  fets.push_back(&nl.add<Mosfet>("M4", c.outp, c.outn, c.xp, kGround,
                                 kit.nmos, opt.wNLatch, l, nl));
  fets.push_back(&nl.add<Mosfet>("M5", c.outn, c.outp, c.xn, kGround,
                                 kit.nmos, opt.wNLatch, l, nl));
  // M6/M7: cross-coupled PMOS.
  fets.push_back(&nl.add<Mosfet>("M6", c.outp, c.outn, c.vddNode, c.vddNode,
                                 kit.pmos, opt.wPLatch, l, nl));
  fets.push_back(&nl.add<Mosfet>("M7", c.outn, c.outp, c.vddNode, c.vddNode,
                                 kit.pmos, opt.wPLatch, l, nl));
  // M8..M11: precharge switches (clock low).
  fets.push_back(&nl.add<Mosfet>("M8", c.outp, c.clk, c.vddNode, c.vddNode,
                                 kit.pmos, opt.wPre, l, nl));
  fets.push_back(&nl.add<Mosfet>("M9", c.outn, c.clk, c.vddNode, c.vddNode,
                                 kit.pmos, opt.wPre, l, nl));
  fets.push_back(&nl.add<Mosfet>("M10", c.xp, c.clk, c.vddNode, c.vddNode,
                                 kit.pmos, opt.wPre, l, nl));
  fets.push_back(&nl.add<Mosfet>("M11", c.xn, c.clk, c.vddNode, c.vddNode,
                                 kit.pmos, opt.wPre, l, nl));

  // Output loading.
  nl.add<Capacitor>("CLP", c.outp, kGround, opt.cLoad, nl);
  nl.add<Capacitor>("CLN", c.outn, kGround, opt.cLoad, nl);

  // Supply and clock. Clock edges land on the PSS grid for any step count
  // that divides 20: rise at [0, T/20], fall at [T/2, T/2 + T/20].
  nl.add<VSource>("VDD", c.vddNode, kGround, SourceWave::dc(kit.vdd), nl);
  const Real edge = opt.clkPeriod / 20.0;
  nl.add<VSource>(
      "VCLK", c.clk, kGround,
      SourceWave::pulse(0.0, kit.vdd, 0.0, edge, edge,
                        opt.clkPeriod / 2.0 - edge, opt.clkPeriod),
      nl);
  return c;
}

ComparatorTestbench buildComparatorTestbench(
    Netlist& nl, const ProcessKit& kit,
    const ComparatorTestbenchOptions& opt) {
  ComparatorTestbench tb;
  tb.clkPeriod = opt.comparator.clkPeriod;
  const NodeId inp = nl.node("inp");
  const NodeId inn = nl.node("inn");
  tb.vos = nl.node("vos");
  const NodeId vcm = nl.node("vcm");

  tb.comp = buildComparator(nl, kit, inp, inn, opt.comparator);

  nl.add<VSource>("VCM", vcm, kGround, SourceWave::dc(opt.vcm), nl);
  // inp = vcm + vos/2, inn = vcm - vos/2 (Fig. 6 input summers).
  nl.add<Vcvs>("EINP", inp, kGround, nl,
               std::vector<ControlTerm>{{nl.nodeIndex(vcm), -1, 1.0},
                                        {nl.nodeIndex(tb.vos), -1, 0.5}});
  nl.add<Vcvs>("EINN", inn, kGround, nl,
               std::vector<ControlTerm>{{nl.nodeIndex(vcm), -1, 1.0},
                                        {nl.nodeIndex(tb.vos), -1, -0.5}});
  // Integrating feedback: C dVos/dt = K (outp - outn). The StrongARM
  // output pair is inverting with respect to (inp - inn) — the side with
  // the higher gate discharges its internal node first and its *output*
  // goes low — so the restoring direction senses (outn, outp).
  nl.add<Capacitor>("CINT", tb.vos, kGround, opt.cIntegrator, nl);
  nl.add<Vccs>("GFB", tb.vos, kGround, nl,
               std::vector<ControlTerm>{{nl.nodeIndex(tb.comp.outn),
                                         nl.nodeIndex(tb.comp.outp),
                                         opt.loopGain}});
  nl.finalize();
  tb.vosIndex = nl.nodeIndex(tb.vos);
  return tb;
}

LogicPathCircuit buildLogicPath(Netlist& nl, const ProcessKit& kit,
                                const LogicPathOptions& opt) {
  LogicPathCircuit lp;
  lp.period = opt.period;
  lp.tRiseX = opt.tRiseX;
  lp.tRiseY = opt.tRiseY;
  const NodeId vdd = nl.node("vdd");
  lp.x = nl.node("x");
  lp.y = nl.node("y");
  lp.ya = nl.node("ya");
  lp.yb = nl.node("yb");
  lp.xe = nl.node("xe");
  lp.xf = nl.node("xf");
  lp.outA = nl.node("outa");
  lp.outB = nl.node("outb");

  if (!nl.find("VDD")) {
    nl.add<VSource>("VDD", vdd, kGround, SourceWave::dc(kit.vdd), nl);
  }

  // Y buffer chain (gates a, b) shared by both outputs when X rises first.
  addInverter(nl, "Ga", lp.y, lp.ya, vdd, kit, opt.wn, opt.wp);
  addInverter(nl, "Gb", lp.ya, lp.yb, vdd, kit, opt.wn, opt.wp);
  // X buffer chain (gates e, f) feeding only output B.
  addInverter(nl, "Ge", lp.x, lp.xe, vdd, kit, opt.wn, opt.wp);
  addInverter(nl, "Gf", lp.xe, lp.xf, vdd, kit, opt.wn, opt.wp);
  // Output NANDs (gates c, d).
  addNand2(nl, "Gc", lp.yb, lp.x, lp.outA, vdd, kit, opt.wn, opt.wp);
  addNand2(nl, "Gd", lp.yb, lp.xf, lp.outB, vdd, kit, opt.wn, opt.wp);

  nl.add<Capacitor>("CLA", lp.outA, kGround, opt.cLoad, nl);
  nl.add<Capacitor>("CLB", lp.outB, kGround, opt.cLoad, nl);

  // Periodic inputs: rise at tRise, fall at 70% of the period (long before
  // the period boundary so edges do not interfere across it, SS IV-B).
  auto pulseFrom = [&](Real tRise) {
    return SourceWave::pulse(0.0, kit.vdd, tRise, opt.edgeTime, opt.edgeTime,
                             0.7 * opt.period - tRise, opt.period);
  };
  lp.srcX = &nl.add<VSource>("VX", lp.x, kGround, pulseFrom(opt.tRiseX), nl);
  lp.srcY = &nl.add<VSource>("VY", lp.y, kGround, pulseFrom(opt.tRiseY), nl);
  return lp;
}

InverterChainCircuit buildInverterChain(Netlist& nl, const ProcessKit& kit,
                                        const InverterChainOptions& opt) {
  PSMN_CHECK(opt.stages >= 1 && opt.rows >= 1,
             "inverter chain needs at least one stage and one row");
  InverterChainCircuit chain;
  chain.vddNode = nl.node("vdd");
  if (!nl.find("VDD")) {
    nl.add<VSource>("VDD", chain.vddNode, kGround, SourceWave::dc(kit.vdd), nl);
  }
  chain.in = nl.node("chin");
  chain.src = &nl.add<VSource>(
      "VCH", chain.in, kGround,
      SourceWave::pulse(0.0, kit.vdd, 0.2e-9, opt.edgeTime, opt.edgeTime,
                        opt.period / 2 - opt.edgeTime, opt.period),
      nl);
  for (int r = 0; r < opt.rows; ++r) {
    const std::string rowTag = opt.rows == 1 ? "" : "r" + std::to_string(r + 1);
    NodeId in = chain.in;
    for (int i = 0; i < opt.stages; ++i) {
      const NodeId out = nl.node("ch" + rowTag + std::to_string(i + 1));
      chain.cells.push_back(addInverter(nl, "CH" + rowTag + std::to_string(i + 1),
                                        in, out, chain.vddNode, kit, opt.wn,
                                        opt.wp));
      nl.add<Capacitor>("CCH" + rowTag + std::to_string(i + 1), out, kGround,
                        opt.cLoad, nl);
      if (r == 0) chain.taps.push_back(out);
      in = out;
    }
  }
  return chain;
}

RingOscillatorCircuit buildRingOscillator(Netlist& nl, const ProcessKit& kit,
                                          const RingOscillatorOptions& opt) {
  PSMN_CHECK(opt.stages >= 3 && opt.stages % 2 == 1,
             "ring needs an odd stage count >= 3");
  RingOscillatorCircuit osc;
  osc.vddNode = nl.node("vdd");
  if (!nl.find("VDD")) {
    nl.add<VSource>("VDD", osc.vddNode, kGround, SourceWave::dc(kit.vdd), nl);
  }
  for (int i = 0; i < opt.stages; ++i) {
    osc.stages.push_back(nl.node("osc" + std::to_string(i + 1)));
  }
  for (int i = 0; i < opt.stages; ++i) {
    const NodeId in = osc.stages[i];
    const NodeId out = osc.stages[(i + 1) % opt.stages];
    osc.cells.push_back(addInverter(nl, "S" + std::to_string(i + 1), in, out,
                                    osc.vddNode, kit, opt.wn, opt.wp));
    nl.add<Capacitor>("CL" + std::to_string(i + 1), out, kGround, opt.cLoad,
                      nl);
  }
  return osc;
}


}  // namespace psmn
