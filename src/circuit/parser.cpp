#include "circuit/parser.hpp"

#include <map>
#include <sstream>

#include "circuit/bjt.hpp"
#include "circuit/controlled.hpp"
#include "circuit/diode.hpp"
#include "circuit/mosfet.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "util/units.hpp"

namespace psmn {
namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw NetlistError("netlist line " + std::to_string(line) + ": " + msg);
}

/// Splits a card into tokens; parentheses and '=' become separators but
/// function-style groups like PULSE(...) keep their head token.
std::vector<std::string> tokenize(const std::string& card) {
  std::vector<std::string> toks;
  std::string cur;
  auto push = [&] {
    if (!cur.empty()) {
      toks.push_back(cur);
      cur.clear();
    }
  };
  for (char ch : card) {
    if (std::isspace(static_cast<unsigned char>(ch)) || ch == '(' ||
        ch == ')' || ch == ',' || ch == '=') {
      push();
    } else {
      cur.push_back(ch);
    }
  }
  push();
  return toks;
}

Real number(const std::string& tok, int line) {
  const auto v = parseSpiceNumber(tok);
  if (!v) fail(line, "expected a number, got '" + tok + "'");
  return *v;
}

struct KeyValues {
  std::map<std::string, Real> kv;
  bool has(const std::string& k) const { return kv.count(k) > 0; }
  Real get(const std::string& k, Real dflt) const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : it->second;
  }
};

/// Parses trailing "key value" pairs starting at index `start` (tokenize
/// already split 'key=value' into two tokens). Every key must appear in
/// `allowed` — an unrecognized parameter is a hard error with the line
/// number, never a silent default.
KeyValues keyValues(const std::vector<std::string>& toks, size_t start,
                    int line,
                    std::initializer_list<const char*> allowed) {
  KeyValues out;
  for (size_t i = start; i + 1 < toks.size(); i += 2) {
    const std::string key = toLower(toks[i]);
    bool known = false;
    for (const char* a : allowed) known = known || key == a;
    if (!known) fail(line, "unknown parameter '" + toks[i] + "'");
    if (!out.kv.emplace(key, number(toks[i + 1], line)).second) {
      fail(line, "duplicate parameter '" + toks[i] + "'");
    }
  }
  if ((toks.size() - start) % 2 != 0) {
    fail(line, "dangling token '" + toks.back() + "' in parameter list");
  }
  return out;
}

SourceWave parseWave(const std::vector<std::string>& toks, size_t i,
                     int line) {
  if (i >= toks.size()) fail(line, "missing source value");
  const std::string head = toLower(toks[i]);
  if (head == "dc") {
    if (i + 1 >= toks.size()) fail(line, "DC needs a value");
    return SourceWave::dc(number(toks[i + 1], line));
  }
  if (head == "pulse") {
    if (i + 7 >= toks.size()) fail(line, "PULSE needs 7 arguments");
    return SourceWave::pulse(
        number(toks[i + 1], line), number(toks[i + 2], line),
        number(toks[i + 3], line), number(toks[i + 4], line),
        number(toks[i + 5], line), number(toks[i + 6], line),
        number(toks[i + 7], line));
  }
  if (head == "sin") {
    if (i + 3 >= toks.size()) fail(line, "SIN needs >= 3 arguments");
    const Real off = number(toks[i + 1], line);
    const Real amp = number(toks[i + 2], line);
    const Real freq = number(toks[i + 3], line);
    const Real td = i + 4 < toks.size() ? number(toks[i + 4], line) : 0.0;
    const Real damp = i + 5 < toks.size() ? number(toks[i + 5], line) : 0.0;
    return SourceWave::sine(off, amp, freq, td, damp);
  }
  if (head == "pwl") {
    std::vector<Real> ts, vs;
    for (size_t k = i + 1; k + 1 < toks.size(); k += 2) {
      ts.push_back(number(toks[k], line));
      vs.push_back(number(toks[k + 1], line));
    }
    if (ts.size() < 2) fail(line, "PWL needs >= 2 points");
    return SourceWave::pwl(std::move(ts), std::move(vs));
  }
  // Bare value -> DC.
  return SourceWave::dc(number(toks[i], line));
}

struct ModelSet {
  std::map<std::string, std::shared_ptr<const MosModel>> mos;
  std::map<std::string, DiodeModel> diode;
  std::map<std::string, std::shared_ptr<const BjtModel>> bjt;

  bool has(const std::string& name) const {
    return mos.count(name) || diode.count(name) || bjt.count(name);
  }
};

void parseModel(const std::vector<std::string>& toks, int line,
                ModelSet& models) {
  if (toks.size() < 3) fail(line, ".model needs a name and a type");
  const std::string name = toLower(toks[1]);
  const std::string type = toLower(toks[2]);
  // One shared namespace for all model types: a redefinition is an error
  // (silently overwriting the first card would retarget every earlier
  // element reference).
  if (models.has(name)) fail(line, "duplicate model name '" + toks[1] + "'");
  if (type == "nmos" || type == "pmos") {
    const KeyValues kv = keyValues(
        toks, 3, line,
        {"kp", "vto", "vt0", "lambda", "gamma", "phi", "cox", "cj", "cgso",
         "cgdo", "avt", "abeta", "vsmooth", "ldiff"});
    auto m = std::make_shared<MosModel>();
    m->pmos = (type == "pmos");
    m->kp = kv.get("kp", m->kp);
    m->vt0 = kv.get("vto", kv.get("vt0", m->vt0));
    m->lambda = kv.get("lambda", m->lambda);
    m->gamma = kv.get("gamma", m->gamma);
    m->phi = kv.get("phi", m->phi);
    m->cox = kv.get("cox", m->cox);
    m->cj = kv.get("cj", m->cj);
    m->cgso = kv.get("cgso", m->cgso);
    m->cgdo = kv.get("cgdo", m->cgdo);
    m->avt = kv.get("avt", m->avt);
    m->abeta = kv.get("abeta", m->abeta);
    m->vsmooth = kv.get("vsmooth", m->vsmooth);
    m->ldiff = kv.get("ldiff", m->ldiff);
    models.mos[name] = std::move(m);
  } else if (type == "d") {
    const KeyValues kv = keyValues(toks, 3, line, {"is", "n", "cj0"});
    DiodeModel d;
    d.is = kv.get("is", d.is);
    d.n = kv.get("n", d.n);
    d.cj0 = kv.get("cj0", d.cj0);
    models.diode[name] = d;
  } else if (type == "npn" || type == "pnp") {
    const KeyValues kv = keyValues(
        toks, 3, line,
        {"is", "bf", "br", "nf", "nr", "vaf", "cje", "cjc", "vje", "vjc",
         "mje", "mjc", "fc", "tf", "rb", "rc", "re", "ais", "abf"});
    auto m = std::make_shared<BjtModel>();
    m->pnp = (type == "pnp");
    m->is = kv.get("is", m->is);
    m->bf = kv.get("bf", m->bf);
    m->br = kv.get("br", m->br);
    m->nf = kv.get("nf", m->nf);
    m->nr = kv.get("nr", m->nr);
    m->vaf = kv.get("vaf", m->vaf);
    m->cje = kv.get("cje", m->cje);
    m->cjc = kv.get("cjc", m->cjc);
    m->vje = kv.get("vje", m->vje);
    m->vjc = kv.get("vjc", m->vjc);
    m->mje = kv.get("mje", m->mje);
    m->mjc = kv.get("mjc", m->mjc);
    m->fc = kv.get("fc", m->fc);
    m->tf = kv.get("tf", m->tf);
    m->rb = kv.get("rb", m->rb);
    m->rc = kv.get("rc", m->rc);
    m->re = kv.get("re", m->re);
    m->ais = kv.get("ais", m->ais);
    m->abf = kv.get("abf", m->abf);
    models.bjt[name] = std::move(m);
  } else {
    fail(line, "unknown model type '" + type + "'");
  }
}

}  // namespace

ParsedCircuit parseNetlist(std::istream& in) {
  ParsedCircuit out;
  out.netlist = std::make_unique<Netlist>();
  Netlist& nl = *out.netlist;
  ModelSet models;

  // Read logical cards (handle '+' continuations), remembering line numbers.
  std::vector<std::pair<int, std::string>> cards;
  std::string line;
  int lineNo = 0;
  bool first = true;
  while (std::getline(in, line)) {
    ++lineNo;
    // Strip comments.
    for (char cchar : {'*', ';'}) {
      const auto pos = line.find(cchar);
      if (pos != std::string::npos &&
          (cchar == ';' || pos == line.find_first_not_of(" \t"))) {
        line.erase(pos);
      }
    }
    const auto firstNonWs = line.find_first_not_of(" \t\r");
    if (firstNonWs == std::string::npos) continue;
    if (first) {
      // SPICE convention: the first non-blank line is the title unless it
      // starts with a device/dot card character we recognize... we keep it
      // simple: treat it as the title only when it starts with a letter
      // that is not a known element and contains no digits-only tokens.
      first = false;
      const char c0 = static_cast<char>(
          std::tolower(static_cast<unsigned char>(line[firstNonWs])));
      if (std::string("rclvieg dmq.").find(c0) == std::string::npos) {
        out.title = line.substr(firstNonWs);
        continue;
      }
    }
    if (line[firstNonWs] == '+') {
      if (cards.empty()) fail(lineNo, "continuation with no previous card");
      cards.back().second += " " + line.substr(firstNonWs + 1);
    } else {
      cards.emplace_back(lineNo, line.substr(firstNonWs));
    }
  }

  for (const auto& [ln, card] : cards) {
    const auto toks = tokenize(card);
    if (toks.empty()) continue;
    const std::string head = toLower(toks[0]);
    if (head == ".end") break;
    if (head == ".title") {
      out.title = card.substr(card.find_first_of(" \t") + 1);
      continue;
    }
    if (head == ".model") {
      parseModel(toks, ln, models);
      continue;
    }
    if (head[0] == '.') {
      AnalysisCard ac;
      ac.kind = head.substr(1);
      ac.args.assign(toks.begin() + 1, toks.end());
      out.analyses.push_back(std::move(ac));
      continue;
    }

    const char kind = head[0];
    auto node = [&](size_t i) -> NodeId {
      if (i >= toks.size()) fail(ln, "missing node");
      return nl.node(toks[i]);
    };
    switch (kind) {
      case 'r': {
        if (toks.size() < 4) fail(ln, "R needs 2 nodes and a value");
        const KeyValues kv = keyValues(toks, 4, ln, {"sigma"});
        nl.add<Resistor>(toks[0], node(1), node(2), number(toks[3], ln), nl,
                         kv.get("sigma", 0.0));
        break;
      }
      case 'c': {
        if (toks.size() < 4) fail(ln, "C needs 2 nodes and a value");
        const KeyValues kv = keyValues(toks, 4, ln, {"sigma"});
        nl.add<Capacitor>(toks[0], node(1), node(2), number(toks[3], ln), nl,
                          kv.get("sigma", 0.0));
        break;
      }
      case 'l': {
        if (toks.size() < 4) fail(ln, "L needs 2 nodes and a value");
        const KeyValues kv = keyValues(toks, 4, ln, {"sigma"});
        nl.add<Inductor>(toks[0], node(1), node(2), number(toks[3], ln), nl,
                         kv.get("sigma", 0.0));
        break;
      }
      case 'v':
        nl.add<VSource>(toks[0], node(1), node(2), parseWave(toks, 3, ln), nl);
        break;
      case 'i':
        nl.add<ISource>(toks[0], node(1), node(2), parseWave(toks, 3, ln), nl);
        break;
      case 'e': {
        if (toks.size() < 6) fail(ln, "E needs 4 nodes and a gain");
        nl.add<Vcvs>(toks[0], node(1), node(2), node(3), node(4),
                     number(toks[5], ln), nl);
        break;
      }
      case 'g': {
        if (toks.size() < 6) fail(ln, "G needs 4 nodes and a gain");
        nl.add<Vccs>(toks[0], node(1), node(2), node(3), node(4),
                     number(toks[5], ln), nl);
        break;
      }
      case 'd': {
        if (toks.size() < 4) fail(ln, "D needs 2 nodes and a model");
        const auto it = models.diode.find(toLower(toks[3]));
        if (it == models.diode.end()) {
          fail(ln, "unknown diode model '" + toks[3] + "'");
        }
        nl.add<Diode>(toks[0], node(1), node(2), it->second, nl);
        break;
      }
      case 'm': {
        if (toks.size() < 6) fail(ln, "M needs 4 nodes and a model");
        const auto it = models.mos.find(toLower(toks[5]));
        if (it == models.mos.end()) {
          fail(ln, "unknown MOS model '" + toks[5] + "'");
        }
        const KeyValues kv = keyValues(toks, 6, ln, {"w", "l"});
        if (!kv.has("w") || !kv.has("l")) fail(ln, "M needs W= and L=");
        nl.add<Mosfet>(toks[0], node(1), node(2), node(3), node(4), it->second,
                       kv.get("w", 0.0), kv.get("l", 0.0), nl);
        break;
      }
      case 'q': {
        if (toks.size() < 5) fail(ln, "Q needs 3 nodes and a model");
        const auto it = models.bjt.find(toLower(toks[4]));
        if (it == models.bjt.end()) {
          fail(ln, "unknown BJT model '" + toks[4] + "'");
        }
        const KeyValues kv = keyValues(toks, 5, ln, {"area"});
        const Real area = kv.get("area", 1.0);
        if (area <= 0.0) fail(ln, "Q area must be positive");
        nl.add<Bjt>(toks[0], node(1), node(2), node(3), it->second, area, nl);
        break;
      }
      default:
        fail(ln, "unknown element '" + toks[0] + "'");
    }
  }
  return out;
}

ParsedCircuit parseNetlistString(const std::string& text) {
  std::istringstream in(text);
  return parseNetlist(in);
}

}  // namespace psmn
