// MOSFET: smoothed square-law (level-1 style) model with channel-length
// modulation, body effect, constant gate/junction capacitances, Pelgrom
// mismatch parameters (paper eq. 4-5) and thermal/flicker noise.
//
// Model notes
// -----------
// * The gate-overdrive kink at vgst=0 is smoothed with
//     veff = (vgst + sqrt(vgst^2 + 4*vsmooth^2)) / 2,
//   giving a C1-continuous I-V everywhere (a weak sub-threshold-like tail
//   instead of a hard cutoff), which keeps Newton iterations well behaved.
// * Triode/saturation are the classic square-law branches, which join with
//   continuous value and first derivative at vds = veff.
// * Drain/source are handled symmetrically (internal swap when vds < 0);
//   PMOS devices are evaluated in a sign-flipped frame.
// * Capacitances are bias-independent: cgs = cgd = cox*W*L/2 + overlap,
//   cdb = csb = cj*W*ldiff. The mismatch analysis depends on the
//   linearization around the PSS, not on cap bias-dependence detail.
//
// Pelgrom mismatch (paper eq. 4-5):
//   sigma_VT    = AVT   / sqrt(W*L)
//   sigma_beta  = Abeta / sqrt(W*L)   (relative dbeta/beta)
#pragma once

#include <memory>

#include "circuit/device.hpp"
#include "circuit/netlist.hpp"

namespace psmn {

struct MosModel {
  bool pmos = false;
  Real kp = 200e-6;        // transconductance factor u*Cox (A/V^2)
  Real vt0 = 0.4;          // zero-bias threshold (V, positive for both types)
  Real lambda = 0.15;      // channel-length modulation (1/V)
  Real gamma = 0.0;        // body-effect coefficient (sqrt(V))
  Real phi = 0.7;          // surface potential 2*phiF (V)
  Real cox = 8e-3;         // gate capacitance density (F/m^2)
  Real cj = 1e-3;          // junction capacitance density (F/m^2)
  Real ldiff = 0.3e-6;     // source/drain diffusion length (m)
  Real cgso = 2e-10;       // gate-source overlap cap (F/m)
  Real cgdo = 2e-10;       // gate-drain overlap cap (F/m)
  Real vsmooth = 20e-3;    // vgst smoothing (V)

  // Pelgrom matching constants. Paper values: AVT = 6.5 mV*um,
  // Abeta = 3.25 %*um for the assumed 0.13um process.
  Real avt = 6.5e-9;       // V*m
  Real abeta = 3.25e-8;    // (relative)*m  (0.0325 * 1e-6)

  // Physical noise (off by default; the paper's pseudo-noise analysis is
  // run with mismatch sources only, see footnote 1).
  bool thermalNoise = false;
  Real thermalGamma = 2.0 / 3.0;
  bool flickerNoise = false;
  Real kf = 0.0;           // flicker coefficient (A^2*s? SPICE-style KF)
  Real af = 1.0;
  Real temperature = kRoomTempK;

  /// Mismatch-scaling helper used for global severity sweeps (Fig. 11/12):
  /// multiplies both AVT and Abeta.
  MosModel scaledMismatch(Real scale) const {
    MosModel m = *this;
    m.avt *= scale;
    m.abeta *= scale;
    return m;
  }
};

/// Operating-point information exported for measurements, pseudo-noise
/// modulation, and design-sensitivity reporting.
struct MosOpPoint {
  Real ids = 0.0;  // current into physical drain terminal
  Real gm = 0.0;   // all derivatives in the internal (hat) frame, >= 0
  Real gds = 0.0;
  Real gmb = 0.0;
  Real veff = 0.0;
  bool saturated = false;
  bool swapped = false;  // internal drain/source swapped vs. physical
};

class Mosfet : public Device {
 public:
  Mosfet(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
         std::shared_ptr<const MosModel> model, Real w, Real l,
         const Netlist& nl);

  void eval(Stamper& s) const override;
  void evalBatch(DeviceBatchView& v) const override;

  // --- mismatch: k=0 is dVT (V), k=1 is dbeta/beta (relative) ---
  size_t mismatchCount() const override { return 2; }
  MismatchParam mismatchParam(size_t k) const override;
  void setMismatchDelta(size_t k, Real delta) override;
  Real mismatchDelta(size_t k) const override;
  void mismatchStampF(size_t k, Stamper& s) const override;

  // --- physical noise ---
  size_t noiseCount() const override;
  NoiseDesc noiseDesc(size_t k) const override;
  void noiseStamp(size_t k, Stamper& s) const override;
  Real noiseShape(size_t k, Real f) const override;

  /// Operating point at the given stamper iterate.
  MosOpPoint opPoint(const Stamper& s) const;

  const MosModel& model() const { return *model_; }
  Real width() const { return w_; }
  Real length() const { return l_; }
  /// Changes W (used by the design-sensitivity verification benches).
  void setWidth(Real w);

  Real sigmaVt() const;
  Real sigmaBetaRel() const;

 private:
  struct Core {
    Real ids, gm, gds, gmb;  // internal-frame values
    Real didvt;              // dIds/d(dvt)
    Real didbeta;            // dIds/d(dbeta)
    Real veff;
    bool saturated;
  };
  // Mismatch deltas are explicit arguments so the scalar and batched
  // paths share one compiled body (see device_batch.hpp); the no-delta
  // overload forwards the members.
  Core evalCore(Real vgs, Real vds, Real vbs, Real dvt, Real dbeta) const;
  Core evalCore(Real vgs, Real vds, Real vbs) const {
    return evalCore(vgs, vds, vbs, dvt_, dbeta_);
  }
  void evalWith(Stamper& s, Real dvt, Real dbeta) const;
  /// Resolves hat-frame terminal assignment; returns (nD,nG,nS,nB) MNA
  /// indices with internal drain/source ordering and the sign factor.
  struct Frame {
    int nd, ng, ns, nb;
    Real sgn;
    bool swapped;
  };
  Frame frame(const Stamper& s) const;

  int d_, g_, s_, b_;
  std::shared_ptr<const MosModel> model_;
  Real w_, l_;
  Real dvt_ = 0.0;
  Real dbeta_ = 0.0;
  // Precomputed capacitances.
  Real cgs_ = 0.0, cgd_ = 0.0, cdb_ = 0.0, csb_ = 0.0;
};

}  // namespace psmn
