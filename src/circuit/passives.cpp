#include "circuit/passives.hpp"

#include <cmath>

#include "circuit/device_batch.hpp"

namespace psmn {

// ---------------------------------------------------------------- Resistor

void Resistor::evalWith(Stamper& s, Real delta) const {
  const Real g = 1.0 / (ohms_ + delta);
  const Real v = s.v(a_) - s.v(b_);
  s.stampCurrent(a_, b_, g * v);
  s.stampConductance(a_, b_, g);
}

void Resistor::eval(Stamper& s) const { evalWith(s, delta_); }

void Resistor::evalBatch(DeviceBatchView& v) const {
  const bool mm = mismatchCount() > 0;
  for (size_t l = 0; l < v.laneCount(); ++l) {
    if (v.laneActive(l)) evalWith(v.lane(l), mm ? v.delta(0, l) : 0.0);
  }
}

MismatchParam Resistor::mismatchParam(size_t k) const {
  PSMN_CHECK(k == 0 && sigma_ > 0.0, "bad mismatch index");
  return {name() + ".dr", MismatchKind::kResistance, sigma_, false};
}

void Resistor::setMismatchDelta(size_t k, Real delta) {
  PSMN_CHECK(k == 0 && sigma_ > 0.0, "bad mismatch index");
  PSMN_CHECK(ohms_ + delta > 0.0, "mismatch drove resistance non-positive");
  delta_ = delta;
}

Real Resistor::mismatchDelta(size_t k) const {
  PSMN_CHECK(k == 0 && sigma_ > 0.0, "bad mismatch index");
  return delta_;
}

void Resistor::mismatchStampF(size_t k, Stamper& s) const {
  PSMN_CHECK(k == 0 && sigma_ > 0.0, "bad mismatch index");
  // I = (va-vb)/R;  dI/dR = -(va-vb)/R^2 = -I/R.
  const Real r = resistance();
  const Real i = (s.v(a_) - s.v(b_)) / r;
  s.stampCurrent(a_, b_, -i / r);
}

NoiseDesc Resistor::noiseDesc(size_t k) const {
  PSMN_CHECK(k == 0 && thermalNoise_, "bad noise index");
  return {name() + ".thermal", NoiseKind::kWhite};
}

void Resistor::noiseStamp(size_t k, Stamper& s) const {
  PSMN_CHECK(k == 0 && thermalNoise_, "bad noise index");
  // Current noise with PSD 4kT/R (single-sided): amplitude sqrt(4kT/R).
  const Real amp = std::sqrt(4.0 * kBoltzmann * temperature_ / resistance());
  s.stampCurrent(a_, b_, amp);
}

Real Resistor::noiseShape(size_t k, Real) const {
  PSMN_CHECK(k == 0 && thermalNoise_, "bad noise index");
  return 1.0;
}

// --------------------------------------------------------------- Capacitor

void Capacitor::evalWith(Stamper& s, Real delta) const {
  const Real c = farads_ + delta;
  const Real v = s.v(a_) - s.v(b_);
  s.stampCharge(a_, b_, c * v);
  s.stampCapacitance(a_, b_, c);
}

void Capacitor::eval(Stamper& s) const { evalWith(s, delta_); }

void Capacitor::evalBatch(DeviceBatchView& v) const {
  const bool mm = mismatchCount() > 0;
  for (size_t l = 0; l < v.laneCount(); ++l) {
    if (v.laneActive(l)) evalWith(v.lane(l), mm ? v.delta(0, l) : 0.0);
  }
}

MismatchParam Capacitor::mismatchParam(size_t k) const {
  PSMN_CHECK(k == 0 && sigma_ > 0.0, "bad mismatch index");
  return {name() + ".dc", MismatchKind::kCapacitance, sigma_, false};
}

void Capacitor::setMismatchDelta(size_t k, Real delta) {
  PSMN_CHECK(k == 0 && sigma_ > 0.0, "bad mismatch index");
  PSMN_CHECK(farads_ + delta > 0.0, "mismatch drove capacitance non-positive");
  delta_ = delta;
}

Real Capacitor::mismatchDelta(size_t k) const {
  PSMN_CHECK(k == 0 && sigma_ > 0.0, "bad mismatch index");
  return delta_;
}

void Capacitor::mismatchStampQ(size_t k, Stamper& s) const {
  PSMN_CHECK(k == 0 && sigma_ > 0.0, "bad mismatch index");
  // Q = C(va-vb);  dQ/dC = va-vb.
  s.stampCharge(a_, b_, s.v(a_) - s.v(b_));
}

// ---------------------------------------------------------------- Inductor

void Inductor::evalWith(Stamper& s, Real delta) const {
  // KCL: branch current i flows a -> b.
  const Real i = s.v(branch_);
  s.addF(a_, i);
  s.addF(b_, -i);
  s.addG(a_, branch_, 1.0);
  s.addG(b_, branch_, -1.0);
  // Branch equation: v(a) - v(b) - d(phi)/dt = 0 with phi = L*i, expressed
  // as f_branch = v(a)-v(b), q_branch = -L*i.
  s.addF(branch_, s.v(a_) - s.v(b_));
  s.addG(branch_, a_, 1.0);
  s.addG(branch_, b_, -1.0);
  const Real l = henries_ + delta;
  s.addQ(branch_, -l * i);
  s.addC(branch_, branch_, -l);
}

void Inductor::eval(Stamper& s) const { evalWith(s, delta_); }

void Inductor::evalBatch(DeviceBatchView& v) const {
  const bool mm = mismatchCount() > 0;
  for (size_t l = 0; l < v.laneCount(); ++l) {
    if (v.laneActive(l)) evalWith(v.lane(l), mm ? v.delta(0, l) : 0.0);
  }
}

MismatchParam Inductor::mismatchParam(size_t k) const {
  PSMN_CHECK(k == 0 && sigma_ > 0.0, "bad mismatch index");
  return {name() + ".dl", MismatchKind::kInductance, sigma_, false};
}

void Inductor::setMismatchDelta(size_t k, Real delta) {
  PSMN_CHECK(k == 0 && sigma_ > 0.0, "bad mismatch index");
  PSMN_CHECK(henries_ + delta > 0.0, "mismatch drove inductance non-positive");
  delta_ = delta;
}

Real Inductor::mismatchDelta(size_t k) const {
  PSMN_CHECK(k == 0 && sigma_ > 0.0, "bad mismatch index");
  return delta_;
}

void Inductor::mismatchStampQ(size_t k, Stamper& s) const {
  PSMN_CHECK(k == 0 && sigma_ > 0.0, "bad mismatch index");
  // q_branch = -L*i;  dq/dL = -i.
  s.addQ(branch_, -s.v(branch_));
}

}  // namespace psmn
