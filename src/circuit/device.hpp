// Device base class and the stamping interface between devices and the
// MNA assembler.
//
// Formulation: the simulator solves the DAE residual
//     F(x, t) = f(x, t) + d/dt q(x) = 0
// where x stacks node voltages (ground excluded) and branch currents.
// Devices contribute:
//   - static currents f and their Jacobian G = df/dx,
//   - charges/fluxes  q and their Jacobian C = dq/dx.
// Independent sources fold their (time-dependent) values into f with the
// appropriate sign, so no separate source vector exists.
//
// Mismatch interface: a device exposes its random mismatch parameters
// (e.g. a MOSFET's dVT and dbeta/beta under the Pelgrom model). Each
// parameter p provides
//   - sigma: the std-dev of its distribution (paper eq. 4-5),
//   - delta get/set: the Monte-Carlo engine perturbs p directly,
//   - dF/dp stamps: the pseudo-noise injection direction used by the
//     LPTV noise analysis (paper SS III): the linearized response obeys
//     C d(dx)/dt + G dx = -(dF/dp) dp.
// The charge part dq/dp is stamped separately since it enters the LPTV
// right-hand side through a time derivative along the periodic orbit.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "numeric/dense_matrix.hpp"
#include "numeric/sparse_matrix.hpp"
#include "numeric/types.hpp"
#include "util/status.hpp"

namespace psmn {

class Device;
class DeviceBatchView;  // circuit/device_batch.hpp

/// Kinds of mismatch parameters; used by the design-sensitivity chain rule
/// (paper eq. 14-16) to know how sigma^2 scales with device geometry.
enum class MismatchKind {
  kVth,       // threshold voltage, sigma^2 = AVT^2/(W*L)
  kBetaRel,   // relative current factor, sigma^2 = Abeta^2/(W*L)
  kResistance,
  kCapacitance,
  kInductance,
  kGeneric,
};

struct MismatchParam {
  std::string name;     // e.g. "M2.dvt"
  MismatchKind kind = MismatchKind::kGeneric;
  Real sigma = 0.0;     // std-dev in the parameter's own units
  bool areaScaled = false;  // sigma^2 proportional to 1/(W*L) (Pelgrom)
};

/// Physical noise kinds (paper footnote 1: physical noise can be simulated
/// alongside the mismatch pseudo-noise and separated via the breakdown).
enum class NoiseKind { kWhite, kFlicker };

struct NoiseDesc {
  std::string name;  // e.g. "M2.thermal"
  NoiseKind kind = NoiseKind::kWhite;
};

/// Hands out branch-current unknowns during Netlist::finalize().
class BranchAllocator {
 public:
  explicit BranchAllocator(int firstIndex) : next_(firstIndex) {}
  /// Returns the MNA index of a new branch-current unknown.
  int allocate(const std::string& name) {
    names_.push_back(name);
    return next_++;
  }
  int next() const { return next_; }
  const std::vector<std::string>& names() const { return names_; }

 private:
  int next_;
  std::vector<std::string> names_;
};

/// Accumulation target devices stamp into. Equation/variable indices are
/// MNA indices; -1 denotes ground (contributions silently dropped).
///
/// Matrix accumulation has two backends: dense (G/C matrices) and triplet
/// (for the sparse solver); vectors are always dense.
class Stamper {
 public:
  Stamper(std::span<const Real> x, Real time, size_t n)
      : x_(x), time_(time), n_(n) {}

  // --- configuration (assembler-side) ---
  void attachDense(RealMatrix* g, RealMatrix* c) { gDense_ = g; cDense_ = c; }
  void attachTriplets(std::vector<Triplet<Real>>* g,
                      std::vector<Triplet<Real>>* c) {
    gTrip_ = g;
    cTrip_ = c;
  }
  /// Pattern-slot accumulation: stamps land in the preallocated CSC slots
  /// of `g`/`c` (no heap traffic). A stamp whose (eq, var) position is
  /// missing from the pattern sets sparseMiss() instead of being dropped,
  /// so the assembler can rebuild the pattern and re-stamp.
  void attachSparse(SparseMatrix<Real>* g, SparseMatrix<Real>* c) {
    gSparse_ = g;
    cSparse_ = c;
  }
  void attachVectors(RealVector* f, RealVector* q) { f_ = f; q_ = q; }
  void setSourceScale(Real s) { sourceScale_ = s; }
  void setGmin(Real g) { gmin_ = g; }
  /// Scales every subsequent contribution; used when accumulating weighted
  /// injection stamps (composite correlated-mismatch sources) without a
  /// temporary vector per component.
  void setStampScale(Real w) { stampScale_ = w; }
  bool sparseMiss() const { return sparseMiss_; }

  // --- device-side queries ---
  /// Voltage/current of unknown `idx` in the current iterate (0 for ground).
  Real v(int idx) const { return idx < 0 ? 0.0 : x_[idx]; }
  Real time() const { return time_; }
  /// Global scale applied by source-stepping homotopy; independent sources
  /// must multiply their values by this.
  Real sourceScale() const { return sourceScale_; }
  /// Convergence aid: conductance every nonlinear device should add from
  /// its non-ground terminals to ground.
  Real gmin() const { return gmin_; }
  bool wantMatrices() const {
    return gDense_ || cDense_ || gTrip_ || cTrip_ || gSparse_ || cSparse_;
  }
  size_t size() const { return n_; }

  // --- device-side accumulation ---
  void addF(int eq, Real val) {
    if (eq >= 0 && f_) (*f_)[eq] += stampScale_ * val;
  }
  void addQ(int eq, Real val) {
    if (eq >= 0 && q_) (*q_)[eq] += stampScale_ * val;
  }
  void addG(int eq, int var, Real val) {
    if (eq < 0 || var < 0) return;
    if (gDense_) (*gDense_)(eq, var) += stampScale_ * val;
    if (gTrip_) gTrip_->push_back({eq, var, stampScale_ * val});
    if (gSparse_) {
      if (Real* slot = gSparse_->find(eq, var)) *slot += stampScale_ * val;
      else sparseMiss_ = true;
    }
  }
  void addC(int eq, int var, Real val) {
    if (eq < 0 || var < 0) return;
    if (cDense_) (*cDense_)(eq, var) += stampScale_ * val;
    if (cTrip_) cTrip_->push_back({eq, var, stampScale_ * val});
    if (cSparse_) {
      if (Real* slot = cSparse_->find(eq, var)) *slot += stampScale_ * val;
      else sparseMiss_ = true;
    }
  }

  /// Conductance stamp between unknowns a and b (the classic 4-entry stamp).
  void stampConductance(int a, int b, Real g) {
    addG(a, a, g);
    addG(b, b, g);
    addG(a, b, -g);
    addG(b, a, -g);
  }
  void stampCapacitance(int a, int b, Real c) {
    addC(a, a, c);
    addC(b, b, c);
    addC(a, b, -c);
    addC(b, a, -c);
  }
  /// Static current `i` flowing from node a to node b through the device.
  void stampCurrent(int a, int b, Real i) {
    addF(a, i);
    addF(b, -i);
  }
  /// Charge `q` stored with + plate at node a, - plate at node b.
  void stampCharge(int a, int b, Real q) {
    addQ(a, q);
    addQ(b, -q);
  }

 private:
  std::span<const Real> x_;
  Real time_ = 0.0;
  size_t n_ = 0;
  Real sourceScale_ = 1.0;
  Real gmin_ = 0.0;
  Real stampScale_ = 1.0;
  bool sparseMiss_ = false;
  RealMatrix* gDense_ = nullptr;
  RealMatrix* cDense_ = nullptr;
  std::vector<Triplet<Real>>* gTrip_ = nullptr;
  std::vector<Triplet<Real>>* cTrip_ = nullptr;
  SparseMatrix<Real>* gSparse_ = nullptr;
  SparseMatrix<Real>* cSparse_ = nullptr;
  RealVector* f_ = nullptr;
  RealVector* q_ = nullptr;
};

class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }

  /// Requests branch-current unknowns (called once by Netlist::finalize).
  virtual void allocate(BranchAllocator&) {}

  /// Accumulates f, q, G, C at the iterate/time carried by the stamper.
  virtual void eval(Stamper& s) const = 0;

  /// Stamps every active lane of a scenario batch in one visit: the view
  /// carries per-lane stampers plus this device's SoA mismatch deltas
  /// (device_batch.hpp). The default walks lanes through the scalar
  /// eval(); devices with mismatch parameters override with a loop that
  /// reads lane deltas directly so the scalar members stay untouched.
  virtual void evalBatch(DeviceBatchView& v) const;

  // --- mismatch interface (default: no mismatch) ---
  virtual size_t mismatchCount() const { return 0; }
  virtual MismatchParam mismatchParam(size_t k) const;
  virtual void setMismatchDelta(size_t k, Real delta);
  virtual Real mismatchDelta(size_t k) const;
  void clearMismatch() {
    for (size_t k = 0; k < mismatchCount(); ++k) setMismatchDelta(k, 0.0);
  }
  /// dF/dp stamps at the stamper's iterate: static part into f-slots...
  virtual void mismatchStampF(size_t k, Stamper& s) const;
  /// ...and charge part into q-slots (zero for most parameters).
  virtual void mismatchStampQ(size_t k, Stamper& s) const;

  // --- physical noise interface (default: noiseless) ---
  virtual size_t noiseCount() const { return 0; }
  virtual NoiseDesc noiseDesc(size_t k) const;
  /// Stamps the sqrt-PSD-modulated injection direction m(x) into f-slots;
  /// the stationary unit-PSD shape comes from noiseShape().
  virtual void noiseStamp(size_t k, Stamper& s) const;
  /// Stationary PSD shape: 1 for white, fRef/f for flicker.
  virtual Real noiseShape(size_t k, Real f) const;

  /// Appends discontinuity times within (t0, t1] (pulse edges etc.).
  virtual void collectBreakpoints(Real t0, Real t1,
                                  std::vector<Real>& out) const;

 private:
  std::string name_;
};

}  // namespace psmn
