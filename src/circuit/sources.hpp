// Independent sources: time-dependent waveforms (DC / PULSE / SIN / PWL)
// driving voltage and current sources.
#pragma once

#include "circuit/device.hpp"
#include "circuit/netlist.hpp"

namespace psmn {

/// SPICE-style source waveform.
class SourceWave {
 public:
  /// Constant value.
  static SourceWave dc(Real value);
  /// PULSE(v1 v2 delay rise fall width period). period==0 -> single pulse.
  static SourceWave pulse(Real v1, Real v2, Real delay, Real rise, Real fall,
                          Real width, Real period);
  /// SIN(offset amplitude freq [delay] [damping]).
  static SourceWave sine(Real offset, Real amplitude, Real freq,
                         Real delay = 0.0, Real damping = 0.0);
  /// Piecewise linear; pairs of (time, value), times strictly increasing.
  /// If `period` > 0 the waveform repeats with that period.
  static SourceWave pwl(std::vector<Real> times, std::vector<Real> values,
                        Real period = 0.0);

  Real value(Real t) const;
  void collectBreakpoints(Real t0, Real t1, std::vector<Real>& out) const;

  /// The waveform period (0 = aperiodic / DC).
  Real period() const;

 private:
  enum class Kind { kDc, kPulse, kSine, kPwl };
  Kind kind_ = Kind::kDc;
  // DC
  Real dc_ = 0.0;
  // PULSE
  Real v1_ = 0.0, v2_ = 0.0, delay_ = 0.0, rise_ = 0.0, fall_ = 0.0,
       width_ = 0.0, period_ = 0.0;
  // SIN
  Real offset_ = 0.0, amplitude_ = 0.0, freq_ = 0.0, damping_ = 0.0;
  // PWL
  std::vector<Real> times_, values_;
};

/// Independent voltage source. Adds one branch-current unknown.
/// Branch equation: v(a) - v(b) - V(t)*sourceScale = 0.
class VSource : public Device {
 public:
  VSource(std::string name, NodeId a, NodeId b, SourceWave wave,
          const Netlist& nl)
      : Device(std::move(name)),
        a_(nl.nodeIndex(a)),
        b_(nl.nodeIndex(b)),
        wave_(std::move(wave)) {}

  void allocate(BranchAllocator& alloc) override {
    branch_ = alloc.allocate(name());
  }
  void eval(Stamper& s) const override;
  void collectBreakpoints(Real t0, Real t1,
                          std::vector<Real>& out) const override;

  int branchIndex() const { return branch_; }
  const SourceWave& wave() const { return wave_; }
  void setWave(SourceWave w) { wave_ = std::move(w); }

 private:
  int a_, b_;
  int branch_ = -1;
  SourceWave wave_;
};

/// Independent current source; current I(t) flows a -> b internally
/// (i.e. out of node a, into node b).
class ISource : public Device {
 public:
  ISource(std::string name, NodeId a, NodeId b, SourceWave wave,
          const Netlist& nl)
      : Device(std::move(name)),
        a_(nl.nodeIndex(a)),
        b_(nl.nodeIndex(b)),
        wave_(std::move(wave)) {}

  void eval(Stamper& s) const override;
  void collectBreakpoints(Real t0, Real t1,
                          std::vector<Real>& out) const override;

  int nodeA() const { return a_; }
  int nodeB() const { return b_; }
  const SourceWave& wave() const { return wave_; }
  void setWave(SourceWave w) { wave_ = std::move(w); }

 private:
  int a_, b_;
  SourceWave wave_;
};

}  // namespace psmn
