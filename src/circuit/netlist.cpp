#include "circuit/netlist.hpp"

#include "util/units.hpp"

namespace psmn {

Netlist::Netlist() {
  nodeNames_.push_back("0");
  nodeIndexByName_["0"] = kGround;
  nodeIndexByName_["gnd"] = kGround;
}

NodeId Netlist::node(const std::string& name) {
  const std::string key = toLower(name);
  auto it = nodeIndexByName_.find(key);
  if (it != nodeIndexByName_.end()) return it->second;
  PSMN_CHECK(!finalized_, "cannot create node '" + name + "' after finalize()");
  const NodeId id = static_cast<NodeId>(nodeNames_.size());
  nodeNames_.push_back(name);
  nodeIndexByName_[key] = id;
  return id;
}

std::optional<NodeId> Netlist::findNode(const std::string& name) const {
  auto it = nodeIndexByName_.find(toLower(name));
  if (it == nodeIndexByName_.end()) return std::nullopt;
  return it->second;
}

const std::string& Netlist::nodeName(NodeId id) const {
  PSMN_CHECK(id >= 0 && id < static_cast<NodeId>(nodeNames_.size()),
             "bad node id");
  return nodeNames_[id];
}

Device* Netlist::find(const std::string& name) {
  auto it = deviceIndex_.find(name);
  return it == deviceIndex_.end() ? nullptr : devices_[it->second].get();
}

const Device* Netlist::find(const std::string& name) const {
  auto it = deviceIndex_.find(name);
  return it == deviceIndex_.end() ? nullptr : devices_[it->second].get();
}

void Netlist::finalize() {
  if (finalized_) return;
  BranchAllocator alloc(static_cast<int>(nodeNames_.size()) - 1);
  for (auto& dev : devices_) dev->allocate(alloc);
  branchNames_ = alloc.names();
  finalized_ = true;
}

size_t Netlist::unknownCount() const {
  PSMN_CHECK(finalized_, "finalize() the netlist first");
  return nodeNames_.size() - 1 + branchNames_.size();
}

int Netlist::nodeIndex(const std::string& name) const {
  auto id = findNode(name);
  PSMN_CHECK(id.has_value(), "unknown node '" + name + "'");
  return nodeIndex(*id);
}

std::string Netlist::unknownName(size_t mnaIndex) const {
  const size_t numNodeUnknowns = nodeNames_.size() - 1;
  if (mnaIndex < numNodeUnknowns) {
    return "v(" + nodeNames_[mnaIndex + 1] + ")";
  }
  const size_t b = mnaIndex - numNodeUnknowns;
  PSMN_CHECK(b < branchNames_.size(), "bad unknown index");
  return "i(" + branchNames_[b] + ")";
}

std::vector<Netlist::MismatchRef> Netlist::mismatchParams() const {
  std::vector<MismatchRef> out;
  for (const auto& dev : devices_) {
    for (size_t k = 0; k < dev->mismatchCount(); ++k) {
      out.push_back({dev.get(), k, dev->mismatchParam(k)});
    }
  }
  return out;
}

std::vector<Netlist::NoiseRef> Netlist::noiseSources() const {
  std::vector<NoiseRef> out;
  for (const auto& dev : devices_) {
    for (size_t k = 0; k < dev->noiseCount(); ++k) {
      out.push_back({dev.get(), k, dev->noiseDesc(k)});
    }
  }
  return out;
}

void Netlist::clearMismatch() {
  for (const auto& dev : devices_) dev->clearMismatch();
}

}  // namespace psmn
