// SPICE-flavoured netlist parser.
//
// Supported cards (case-insensitive, '*'/';' comments, '+' continuation):
//   Rname n+ n- value [sigma=<ohms>]
//   Cname n+ n- value [sigma=<farads>]
//   Lname n+ n- value [sigma=<henries>]
//   Vname n+ n- [dc] <val> | PULSE(v1 v2 td tr tf pw per) |
//                     SIN(off amp freq [td] [damp]) | PWL(t1 v1 t2 v2 ...)
//   Iname n+ n- <same waveforms>
//   Ename out+ out- c+ c- gain          (VCVS)
//   Gname out+ out- c+ c- gain          (VCCS)
//   Dname a c <model>
//   Mname d g s b <model> W=<m> L=<m>
//   Qname c b e <model> [area=<mult>]
//   .model <name> nmos|pmos|d|npn|pnp (param=value ...)
//        MOS params: kp vto lambda gamma phi cox cj cgso cgdo avt abeta
//        Diode params: is n cj0
//        BJT params: is bf br nf nr vaf cje cjc vje vjc mje mjc fc tf
//                    rb rc re ais abf   (ais/abf: relative mismatch
//                    sigmas of IS and BF; area scales IS and the
//                    junction capacitances)
//   .tran <tstep> <tstop> | .op | .ac dec <n> <fstart> <fstop>
//   .pss <period> | .pnoise <offset-freq> | .end
//
// Analysis cards are collected, not executed: the caller decides how to
// run them (see examples/netlist_runner.cpp).
#pragma once

#include <istream>

#include "circuit/netlist.hpp"

namespace psmn {

struct AnalysisCard {
  std::string kind;                // "tran", "op", "ac", "pss", "pnoise"
  std::vector<std::string> args;   // raw argument tokens
};

struct ParsedCircuit {
  std::string title;
  std::unique_ptr<Netlist> netlist;
  std::vector<AnalysisCard> analyses;
};

/// Parses a netlist; throws NetlistError with a line reference on failure.
ParsedCircuit parseNetlist(std::istream& in);
ParsedCircuit parseNetlistString(const std::string& text);

}  // namespace psmn
