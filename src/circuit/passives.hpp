// Passive devices with optional mismatch (paper Fig. 3): resistor,
// capacitor, inductor.
//
// Mismatch pseudo-noise equivalents (paper Fig. 3):
//   R: dF/dR  = -(I_R / R) between the terminals       (current-noise form
//      of the series voltage source with PSD sigmaR^2 * I_R^2 / R^2)
//   C: dQ/dC  = V_C between the terminals (enters the LPTV rhs as d/dt)
//   L: dPhi/dL = I_L on the branch equation
#pragma once

#include "circuit/device.hpp"
#include "circuit/netlist.hpp"

namespace psmn {

class Resistor : public Device {
 public:
  /// `sigma` is the absolute std-dev of the resistance mismatch (ohms).
  Resistor(std::string name, NodeId a, NodeId b, Real ohms, const Netlist& nl,
           Real sigma = 0.0)
      : Device(std::move(name)),
        a_(nl.nodeIndex(a)),
        b_(nl.nodeIndex(b)),
        ohms_(ohms),
        sigma_(sigma) {
    PSMN_CHECK(ohms > 0.0, "resistance must be positive");
    PSMN_CHECK(sigma >= 0.0, "sigma must be non-negative");
  }

  void eval(Stamper& s) const override;
  void evalBatch(DeviceBatchView& v) const override;

  size_t mismatchCount() const override { return sigma_ > 0.0 ? 1 : 0; }
  MismatchParam mismatchParam(size_t k) const override;
  void setMismatchDelta(size_t k, Real delta) override;
  Real mismatchDelta(size_t k) const override;
  void mismatchStampF(size_t k, Stamper& s) const override;

  /// Thermal noise 4kT/R (always present).
  size_t noiseCount() const override { return thermalNoise_ ? 1 : 0; }
  NoiseDesc noiseDesc(size_t k) const override;
  void noiseStamp(size_t k, Stamper& s) const override;
  Real noiseShape(size_t k, Real f) const override;
  void enableThermalNoise(bool on) { thermalNoise_ = on; }

  Real resistance() const { return ohms_ + delta_; }
  Real nominal() const { return ohms_; }

 private:
  // Single compiled stamp body shared by eval() and evalBatch() so both
  // paths round identically (see device_batch.hpp).
  void evalWith(Stamper& s, Real delta) const;

  int a_, b_;
  Real ohms_;
  Real sigma_;
  Real delta_ = 0.0;
  bool thermalNoise_ = false;
  Real temperature_ = kRoomTempK;
};

class Capacitor : public Device {
 public:
  Capacitor(std::string name, NodeId a, NodeId b, Real farads,
            const Netlist& nl, Real sigma = 0.0)
      : Device(std::move(name)),
        a_(nl.nodeIndex(a)),
        b_(nl.nodeIndex(b)),
        farads_(farads),
        sigma_(sigma) {
    PSMN_CHECK(farads > 0.0, "capacitance must be positive");
    PSMN_CHECK(sigma >= 0.0, "sigma must be non-negative");
  }

  void eval(Stamper& s) const override;
  void evalBatch(DeviceBatchView& v) const override;

  size_t mismatchCount() const override { return sigma_ > 0.0 ? 1 : 0; }
  MismatchParam mismatchParam(size_t k) const override;
  void setMismatchDelta(size_t k, Real delta) override;
  Real mismatchDelta(size_t k) const override;
  void mismatchStampF(size_t, Stamper&) const override {}
  void mismatchStampQ(size_t k, Stamper& s) const override;

  Real capacitance() const { return farads_ + delta_; }
  Real nominal() const { return farads_; }

 private:
  void evalWith(Stamper& s, Real delta) const;

  int a_, b_;
  Real farads_;
  Real sigma_;
  Real delta_ = 0.0;
};

class Inductor : public Device {
 public:
  Inductor(std::string name, NodeId a, NodeId b, Real henries,
           const Netlist& nl, Real sigma = 0.0)
      : Device(std::move(name)),
        a_(nl.nodeIndex(a)),
        b_(nl.nodeIndex(b)),
        henries_(henries),
        sigma_(sigma) {
    PSMN_CHECK(henries > 0.0, "inductance must be positive");
    PSMN_CHECK(sigma >= 0.0, "sigma must be non-negative");
  }

  void allocate(BranchAllocator& alloc) override {
    branch_ = alloc.allocate(name());
  }
  void eval(Stamper& s) const override;
  void evalBatch(DeviceBatchView& v) const override;

  size_t mismatchCount() const override { return sigma_ > 0.0 ? 1 : 0; }
  MismatchParam mismatchParam(size_t k) const override;
  void setMismatchDelta(size_t k, Real delta) override;
  Real mismatchDelta(size_t k) const override;
  void mismatchStampF(size_t, Stamper&) const override {}
  void mismatchStampQ(size_t k, Stamper& s) const override;

  Real inductance() const { return henries_ + delta_; }
  int branchIndex() const { return branch_; }

 private:
  void evalWith(Stamper& s, Real delta) const;

  int a_, b_;
  int branch_ = -1;
  Real henries_;
  Real sigma_;
  Real delta_ = 0.0;
};

}  // namespace psmn
