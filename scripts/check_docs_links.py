#!/usr/bin/env python3
"""Markdown link, anchor, and symbol checker for README.md + docs/*.md.

Pure stdlib (runs in CI with no installs). For every markdown file it
verifies that

* relative links (``[text](path)``, images included) resolve to a file
  or directory that exists in the repository,
* anchor links (``#heading`` or ``path#heading``) name a real heading in
  the target file, using GitHub's slugification rules (lowercase, drop
  punctuation, spaces to hyphens, ``-N`` suffixes for duplicates), and
* backtick code spans that *reference the code* still resolve:

  - qualified identifiers (``TranOptions::pool``, ``SparseLU::refactor``,
    ``PssResult::ordering``) — every ``::`` component must appear as a
    word somewhere under ``src/``, so a rename breaks the docs job
    instead of silently rotting the prose. A bracketed segment names an
    optional infix covering two overload families at once:
    ``solveTransposed[Many]InPlace`` checks both ``solveTransposedInPlace``
    and ``solveTransposedManyInPlace``. ``std::``-qualified names are
    skipped (the C++ standard library is not in ``src/``).
  - repo paths (``src/runtime/``, ``scripts/check_bench_trend.py``,
    ``src/numeric/ordering.*``) — must glob-resolve against the repo
    root, like relative links.

External ``http(s)://`` and ``mailto:`` targets are skipped — CI has no
network, and flaky-URL failures would train everyone to ignore the job.
Links inside fenced code blocks are ignored. Exit code 1 lists every
broken reference with its file and line.

Usage:  python3 scripts/check_docs_links.py [file-or-dir ...]
        (defaults to README.md and docs/, relative to the repo root)
"""

import argparse
import glob as globmod
import os
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^(```|~~~)")
CODE_SPAN_RE = re.compile(r"`([^`]+)`")
# Identifier::member chains (call args stripped before matching), with the
# [optional-infix] overload convention (see the module docstring).
QUALIFIED_RE = re.compile(
    r"^~?[A-Za-z_][A-Za-z0-9_]*"
    r"(::~?[A-Za-z_][A-Za-z0-9_]*(\[[A-Za-z0-9_]+\])?[A-Za-z0-9_]*)+$")
# Repo paths inside code spans: first segment must be a tracked top-level
# directory (bare filenames and flag-looking spans are not checked).
PATH_SPAN_RE = re.compile(r"^[A-Za-z0-9_.*/-]+$")
PATH_TOP_DIRS = ("src", "docs", "scripts", "tests", "bench", "examples")
EXTERNAL = ("http://", "https://", "mailto:")


def strip_fences(lines):
    """Yields (lineno, line) for lines outside fenced code blocks."""
    fenced = False
    for no, line in enumerate(lines, 1):
        if FENCE_RE.match(line.strip()):
            fenced = not fenced
            continue
        if not fenced:
            yield no, line


def github_slug(heading, taken):
    """GitHub's anchor slug for a heading text, with duplicate suffixes."""
    # Drop inline markdown decorations, then punctuation.
    text = re.sub(r"[`*]", "", heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    slug = "".join(c for c in text.lower()
                   if c.isalnum() or c in " -_").replace(" ", "-")
    if slug not in taken:
        taken[slug] = 0
        return slug
    taken[slug] += 1
    return f"{slug}-{taken[slug]}"


def collect_anchors(path):
    anchors = set()
    taken = {}
    with open(path, encoding="utf-8") as f:
        for _, line in strip_fences(f.read().splitlines()):
            m = HEADING_RE.match(line)
            if m:
                anchors.add(github_slug(m.group(2), taken))
    return anchors


def collect_links(path):
    links = []
    with open(path, encoding="utf-8") as f:
        for no, line in strip_fences(f.read().splitlines()):
            # Drop inline code spans so `[i](...)`-looking code is ignored.
            cleaned = re.sub(r"`[^`]*`", "", line)
            for m in LINK_RE.finditer(cleaned):
                links.append((no, m.group(1)))
    return links


def collect_code_spans(path):
    spans = []
    with open(path, encoding="utf-8") as f:
        for no, line in strip_fences(f.read().splitlines()):
            for m in CODE_SPAN_RE.finditer(line):
                spans.append((no, m.group(1)))
    return spans


class SourceIndex:
    """Word lookup over everything under src/ (lazy, cached)."""

    def __init__(self, repo_root):
        self.repo_root = repo_root
        self._corpus = None
        self._words = {}

    def _load(self):
        if self._corpus is not None:
            return
        texts = []
        for dirpath, _, names in os.walk(os.path.join(self.repo_root, "src")):
            for name in sorted(names):
                if name.endswith((".hpp", ".cpp", ".h")):
                    with open(os.path.join(dirpath, name),
                              encoding="utf-8") as f:
                        texts.append(f.read())
        self._corpus = "\n".join(texts)

    def has_word(self, word):
        if word not in self._words:
            self._load()
            self._words[word] = re.search(
                r"\b" + re.escape(word) + r"\b", self._corpus) is not None
        return self._words[word]


def expand_optional_infix(component):
    """`solve[Many]InPlace` -> [solveInPlace, solveManyInPlace]."""
    m = re.match(r"^([A-Za-z0-9_~]*)\[([A-Za-z0-9_]+)\]([A-Za-z0-9_]*)$",
                 component)
    if not m:
        return [component]
    head, opt, tail = m.groups()
    return [head + tail, head + opt + tail]


def is_symbol_span(span):
    """True when the span is a checkable `Identifier::member` reference."""
    if span.startswith("std::") or "::" not in span:
        return False
    return QUALIFIED_RE.match(span.split("(", 1)[0]) is not None


def check_symbol_span(span, index):
    """Returns a list of unresolved components of a qualified-id span
    (empty = resolves or span is not a symbol reference)."""
    if not is_symbol_span(span):
        return []
    missing = []
    for component in span.split("(", 1)[0].split("::"):
        for variant in expand_optional_infix(component.lstrip("~")):
            if variant and not index.has_word(variant):
                missing.append(variant)
    return missing


def check_path_span(span, repo_root):
    """Returns an error string for a repo-path-looking span that does not
    glob-resolve, or None."""
    if "/" not in span or not PATH_SPAN_RE.match(span):
        return None
    first = span.split("/", 1)[0]
    if first not in PATH_TOP_DIRS:
        return None
    target = span.rstrip("/")
    if globmod.glob(os.path.join(repo_root, target)):
        return None
    return f"no file matches '{span}'"


def expand_targets(args, repo_root):
    targets = args or ["README.md", "docs"]
    files = []
    for t in targets:
        full = os.path.join(repo_root, t)
        if os.path.isdir(full):
            files.extend(os.path.join(full, n) for n in sorted(os.listdir(full))
                         if n.endswith(".md"))
        elif os.path.exists(full):
            files.append(full)
        else:
            print(f"error: no such file or directory: {t}", file=sys.stderr)
            sys.exit(2)
    return files


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("targets", nargs="*",
                    help="markdown files or directories (default: README.md docs/)")
    ap.add_argument("--no-symbols", action="store_true",
                    help="skip the backtick symbol/path resolution check")
    args = ap.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    files = expand_targets(args.targets, repo_root)

    anchor_cache = {}
    src_index = SourceIndex(repo_root)

    def anchors_of(path):
        if path not in anchor_cache:
            anchor_cache[path] = collect_anchors(path)
        return anchor_cache[path]

    errors = []
    checked = 0
    symbols_checked = 0
    for md in files:
        base = os.path.dirname(md)
        rel_md = os.path.relpath(md, repo_root)
        for lineno, target in collect_links(md):
            if target.startswith(EXTERNAL):
                continue
            checked += 1
            path_part, _, anchor = target.partition("#")
            if path_part:
                dest = os.path.normpath(os.path.join(base, path_part))
                if not os.path.exists(dest):
                    errors.append(f"{rel_md}:{lineno}: broken link "
                                  f"'{target}' (no such file)")
                    continue
            else:
                dest = md  # intra-file anchor
            if anchor:
                if not dest.endswith(".md"):
                    errors.append(f"{rel_md}:{lineno}: anchor on non-markdown "
                                  f"target '{target}'")
                elif anchor not in anchors_of(dest):
                    errors.append(f"{rel_md}:{lineno}: broken anchor "
                                  f"'{target}' (no heading slugs to "
                                  f"'#{anchor}' in "
                                  f"{os.path.relpath(dest, repo_root)})")
        if args.no_symbols:
            continue
        for lineno, span in collect_code_spans(md):
            missing = check_symbol_span(span, src_index)
            if is_symbol_span(span):
                symbols_checked += 1
            if missing:
                errors.append(f"{rel_md}:{lineno}: stale symbol reference "
                              f"'`{span}`' ({', '.join(missing)} not found "
                              f"in src/)")
                continue
            path_err = check_path_span(span, repo_root)
            if path_err:
                errors.append(f"{rel_md}:{lineno}: stale path reference "
                              f"'`{span}`' ({path_err})")
            elif "/" in span and span.split("/", 1)[0] in PATH_TOP_DIRS:
                symbols_checked += 1

    for e in errors:
        print(e, file=sys.stderr)
    print(f"{len(files)} files, {checked} internal links and "
          f"{symbols_checked} code references checked, "
          f"{len(errors)} broken")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
