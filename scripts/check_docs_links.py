#!/usr/bin/env python3
"""Markdown link and anchor checker for README.md + docs/*.md.

Pure stdlib (runs in CI with no installs). For every markdown file it
verifies that

* relative links (``[text](path)``, images included) resolve to a file
  or directory that exists in the repository, and
* anchor links (``#heading`` or ``path#heading``) name a real heading in
  the target file, using GitHub's slugification rules (lowercase, drop
  punctuation, spaces to hyphens, ``-N`` suffixes for duplicates).

External ``http(s)://`` and ``mailto:`` targets are skipped — CI has no
network, and flaky-URL failures would train everyone to ignore the job.
Links inside fenced code blocks are ignored. Exit code 1 lists every
broken link with its file and line.

Usage:  python3 scripts/check_docs_links.py [file-or-dir ...]
        (defaults to README.md and docs/, relative to the repo root)
"""

import argparse
import os
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^(```|~~~)")
EXTERNAL = ("http://", "https://", "mailto:")


def strip_fences(lines):
    """Yields (lineno, line) for lines outside fenced code blocks."""
    fenced = False
    for no, line in enumerate(lines, 1):
        if FENCE_RE.match(line.strip()):
            fenced = not fenced
            continue
        if not fenced:
            yield no, line


def github_slug(heading, taken):
    """GitHub's anchor slug for a heading text, with duplicate suffixes."""
    # Drop inline markdown decorations, then punctuation.
    text = re.sub(r"[`*]", "", heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    slug = "".join(c for c in text.lower()
                   if c.isalnum() or c in " -_").replace(" ", "-")
    if slug not in taken:
        taken[slug] = 0
        return slug
    taken[slug] += 1
    return f"{slug}-{taken[slug]}"


def collect_anchors(path):
    anchors = set()
    taken = {}
    with open(path, encoding="utf-8") as f:
        for _, line in strip_fences(f.read().splitlines()):
            m = HEADING_RE.match(line)
            if m:
                anchors.add(github_slug(m.group(2), taken))
    return anchors


def collect_links(path):
    links = []
    with open(path, encoding="utf-8") as f:
        for no, line in strip_fences(f.read().splitlines()):
            # Drop inline code spans so `[i](...)`-looking code is ignored.
            cleaned = re.sub(r"`[^`]*`", "", line)
            for m in LINK_RE.finditer(cleaned):
                links.append((no, m.group(1)))
    return links


def expand_targets(args, repo_root):
    targets = args or ["README.md", "docs"]
    files = []
    for t in targets:
        full = os.path.join(repo_root, t)
        if os.path.isdir(full):
            files.extend(os.path.join(full, n) for n in sorted(os.listdir(full))
                         if n.endswith(".md"))
        elif os.path.exists(full):
            files.append(full)
        else:
            print(f"error: no such file or directory: {t}", file=sys.stderr)
            sys.exit(2)
    return files


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("targets", nargs="*",
                    help="markdown files or directories (default: README.md docs/)")
    args = ap.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    files = expand_targets(args.targets, repo_root)

    anchor_cache = {}

    def anchors_of(path):
        if path not in anchor_cache:
            anchor_cache[path] = collect_anchors(path)
        return anchor_cache[path]

    errors = []
    checked = 0
    for md in files:
        base = os.path.dirname(md)
        rel_md = os.path.relpath(md, repo_root)
        for lineno, target in collect_links(md):
            if target.startswith(EXTERNAL):
                continue
            checked += 1
            path_part, _, anchor = target.partition("#")
            if path_part:
                dest = os.path.normpath(os.path.join(base, path_part))
                if not os.path.exists(dest):
                    errors.append(f"{rel_md}:{lineno}: broken link "
                                  f"'{target}' (no such file)")
                    continue
            else:
                dest = md  # intra-file anchor
            if anchor:
                if not dest.endswith(".md"):
                    errors.append(f"{rel_md}:{lineno}: anchor on non-markdown "
                                  f"target '{target}'")
                elif anchor not in anchors_of(dest):
                    errors.append(f"{rel_md}:{lineno}: broken anchor "
                                  f"'{target}' (no heading slugs to "
                                  f"'#{anchor}' in "
                                  f"{os.path.relpath(dest, repo_root)})")

    for e in errors:
        print(e, file=sys.stderr)
    print(f"{len(files)} files, {checked} internal links checked, "
          f"{len(errors)} broken")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
