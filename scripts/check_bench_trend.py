#!/usr/bin/env python3
"""Fail CI when a hot-path benchmark regresses against the committed baseline.

Compares a fresh ``bench_kernels`` JSON run against
``bench/baseline/bench_kernels.json``. Absolute timings are useless across
machines (laptop vs CI runner), so every benchmark is first normalized by
an anchor benchmark measured in the *same* run (a dense LU factorization,
which exercises pure FLOPs and cache and tracks overall machine speed).
The check fails when

    (current[name] / current[anchor]) / (baseline[name] / baseline[anchor])

exceeds ``--threshold`` (default 1.25, the ROADMAP "perf trajectory" bar)
for any hot-path benchmark present in both files.

Factor fill: benchmarks that emit a ``factor_nnz`` counter (sparse
factor/refactor kernels, the sparse transient steps, the ordering
fixtures) are additionally checked on nnz(L+U). Fill is a pure function
of the matrix pattern and the column ordering — machine-independent — so
it is compared *un-normalized* against the baseline and fails past
``--fill-threshold`` (default 1.05): a fill regression means the ordering
got worse, not that the runner was slow.

Trend history: ``--prev PATH`` additionally diffs the current run against
the previous CI run's artifact (downloaded by the workflow) across *all*
benchmarks the two runs share — the per-PR trajectory, not just the
absolute bar. The prev diff is informational (run-to-run noise on shared
runners is well above the baseline threshold); it never fails the job, and
a missing or unreadable prev file is reported and skipped so the first run
on a branch still passes.

Regenerate the baseline after an intentional perf change:

    ./build/bench_kernels --benchmark_format=json \
        --benchmark_out=bench/baseline/bench_kernels.json \
        --benchmark_out_format=json
"""

import argparse
import json
import sys

# The benchmarks that guard the product's hot paths: transient stepping,
# multi-RHS sensitivity, sparse refactorization, shooting PSS, and the
# end-to-end BJT op-amp deck (bench_bjt_opamp, gated in its own CI step).
HOT_PREFIXES = (
    "BM_TransientStep",
    "BM_TranSens",
    "BM_SparseLuRefactor",
    "BM_SparseLuSolveMulti",
    "BM_PssShooting",
    "BM_BjtOpAmp",
)
ANCHOR = "BM_DenseLuFactor/64"


def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue  # skip aggregate rows
        out[b["name"]] = float(b["real_time"])
    return out


def load_fill(path):
    """name -> factor_nnz for benchmarks that emit the fill counter."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        if "factor_nnz" in b:
            out[b["name"]] = float(b["factor_nnz"])
    return out


def check_fill(cur_path, base_path, threshold):
    """Un-normalized nnz(L+U) comparison; returns failing benchmark names."""
    current = load_fill(cur_path)
    baseline = load_fill(base_path)
    common = sorted(set(current) & set(baseline))
    if not common:
        print("\nfill trend: no factor_nnz counters in common; skipping")
        return []
    failures = []
    print(f"\nfactor fill vs baseline ({len(common)} benchmarks, "
          f"un-normalized, fail past {threshold:.2f}x):")
    for name in common:
        base = baseline[name]
        ratio = current[name] / base if base > 0 else float("inf")
        verdict = "FAIL" if ratio > threshold else "  ok"
        print(f"{verdict}  {name:<40} nnz {current[name]:8.0f} "
              f"(baseline {base:8.0f}, {ratio:5.2f}x)")
        if ratio > threshold:
            failures.append(name)
    return failures


def diff_against_previous(current, prev_path):
    """Informational normalized diff against the previous run's artifact."""
    try:
        prev = load(prev_path)
    except (OSError, ValueError, KeyError) as e:
        print(f"trend history: no usable previous artifact ({e}); skipping")
        return
    if ANCHOR not in prev or ANCHOR not in current:
        print("trend history: anchor missing from previous run; skipping")
        return
    common = sorted(set(prev) & set(current))
    if not common:
        print("trend history: no benchmarks in common with previous run")
        return
    print(f"\ntrend vs previous run ({len(common)} benchmarks, normalized, "
          "informational):")
    for name in common:
        ratio = (current[name] / current[ANCHOR]) / (prev[name] / prev[ANCHOR])
        marker = "+" if ratio > 1.05 else ("-" if ratio < 0.95 else " ")
        print(f"  {marker} {name:<44} {ratio:5.2f}x previous")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="fresh bench_kernels JSON")
    ap.add_argument("baseline", help="committed baseline JSON")
    ap.add_argument("--threshold", type=float, default=1.25,
                    help="fail when normalized ratio exceeds this (1.25 = +25%%)")
    ap.add_argument("--fill-threshold", type=float, default=1.05,
                    help="fail when factor_nnz exceeds baseline by this "
                         "ratio (deterministic, so the bar is tight)")
    ap.add_argument("--prev", default=None,
                    help="previous CI run's bench JSON (informational "
                         "per-PR trend history; missing file is skipped)")
    args = ap.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)
    for name, table in (("current", current), ("baseline", baseline)):
        if ANCHOR not in table:
            print(f"error: anchor {ANCHOR} missing from {name} run",
                  file=sys.stderr)
            return 2

    cur_anchor = current[ANCHOR]
    base_anchor = baseline[ANCHOR]
    print(f"anchor {ANCHOR}: current {cur_anchor:.0f} ns, "
          f"baseline {base_anchor:.0f} ns")

    failures = []
    checked = 0
    for name in sorted(baseline):
        if not name.startswith(HOT_PREFIXES) or name not in current:
            continue
        checked += 1
        ratio = (current[name] / cur_anchor) / (baseline[name] / base_anchor)
        verdict = "FAIL" if ratio > args.threshold else "  ok"
        print(f"{verdict}  {name:<40} {ratio:5.2f}x baseline (normalized)")
        if ratio > args.threshold:
            failures.append(name)

    if checked == 0:
        print("error: no hot-path benchmarks in common", file=sys.stderr)
        return 2

    fill_failures = check_fill(args.current, args.baseline,
                               args.fill_threshold)

    if args.prev:
        diff_against_previous(current, args.prev)

    if failures or fill_failures:
        if failures:
            print(f"\n{len(failures)} hot-path regression(s) past "
                  f"{args.threshold:.2f}x: {', '.join(failures)}",
                  file=sys.stderr)
        if fill_failures:
            print(f"\n{len(fill_failures)} factor-fill regression(s) past "
                  f"{args.fill_threshold:.2f}x: {', '.join(fill_failures)}",
                  file=sys.stderr)
        return 1
    print(f"\nall {checked} hot-path benchmarks within "
          f"{args.threshold:.2f}x of baseline; fill within "
          f"{args.fill_threshold:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
